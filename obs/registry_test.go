package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildFixtureRegistry registers one of everything with deterministic
// values, exercising ordering, escaping and histogram cumulativeness.
func buildFixtureRegistry() *Registry {
	r := NewRegistry()
	r.Counter("lpsgd_wire_tx_bytes_total", "Payload bytes sent, per peer.",
		Label{"peer", "1"}).Add(4096)
	r.Counter("lpsgd_wire_tx_bytes_total", "Payload bytes sent, per peer.",
		Label{"peer", "0"}).Add(1024)
	r.Gauge("lpsgd_world_size", "Current world size.").Set(4)
	r.Func("lpsgd_control_bytes_total", "Heartbeat control-plane bytes.",
		func() int64 { return 777 })
	h := r.Histogram("lpsgd_step_phase_ns", "Per-phase step durations.",
		[]int64{10, 100, 1000}, Label{"phase", "compute"})
	for _, v := range []int64{5, 50, 500, 5000, 7} {
		h.Observe(v)
	}
	// Escaping: backslash, quote and newline in a label value; newline
	// and backslash in help.
	r.Counter("lpsgd_odd_total", "strange \\ help\nsecond line",
		Label{"path", `a\b"c` + "\n"}).Inc()
	return r
}

func TestWriteTextGolden(t *testing.T) {
	r := buildFixtureRegistry()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	r := buildFixtureRegistry()
	var a, b bytes.Buffer
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of the same registry differ")
	}
}

func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("m", "h", []int64{1, 2, 3})
	for _, v := range []int64{0, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`m_bucket{le="1"} 2`,
		`m_bucket{le="2"} 3`,
		`m_bucket{le="3"} 4`,
		`m_bucket{le="+Inf"} 6`,
		"m_sum 110",
		"m_count 6",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 6 || h.Sum() != 110 {
		t.Fatalf("Count/Sum = %d/%d, want 6/110", h.Count(), h.Sum())
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h", Label{"k", "v"})
	b := r.Counter("c", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct handles")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("handles not shared")
	}
	// Different labels → different series, same family.
	c := r.Counter("c", "h", Label{"k", "w"})
	if c == a {
		t.Fatal("different labels returned the same handle")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as gauge did not panic")
		}
	}()
	r.Gauge("c", "h")
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	c.Inc()
	c.Add(5)
	g := r.Gauge("g", "h")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("m", "h", []int64{1})
	h.Observe(9)
	r.Func("f", "h", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 4, 5)
	want := []int64{1000, 4000, 16000, 64000, 256000}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b[i], want[i])
		}
	}
	// Slow growth must still be strictly increasing.
	b = ExpBuckets(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly increasing: %v", b)
		}
	}
}

// TestHistogramInfBucketMatchesCount: the +Inf bucket and _count are
// the same number by Prometheus convention, even when a scrape races a
// half-finished Observe (bucket bumped, count atomic not yet) — both
// render from the one cumulative bucket total.
func TestHistogramInfBucketMatchesCount(t *testing.T) {
	h := newHistogram([]int64{10})
	h.Observe(5)
	h.Observe(50)
	// An Observe caught mid-flight: the bucket add landed, the count
	// atomic has not.
	h.counts[1].Add(1)
	out := string(h.appendText(nil, "m", ""))
	for _, want := range []string{
		`m_bucket{le="10"} 1`,
		`m_bucket{le="+Inf"} 3`,
		"m_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
