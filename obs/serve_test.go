package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lpsgd_test_total", "h").Add(42)
	tr := NewTracer(8)
	tr.Record(1, PhaseBarrier, "exchange", -1, 0, 10, 20)

	s, err := Serve("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "lpsgd_test_total 42\n") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	code, body = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine: code=%d", code)
	}
	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: code=%d", code)
	}
	spans, err := ReadSpans(strings.NewReader(body))
	if err != nil || len(spans) != 1 || spans[0].Phase != PhaseBarrier {
		t.Fatalf("/trace spans=%v err=%v", spans, err)
	}
}

func TestServeNilPlanes(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()
	for _, path := range []string{"/metrics", "/trace"} {
		code, body := get(t, base+path)
		if code != http.StatusOK || body != "" {
			t.Fatalf("%s with nil planes: code=%d body=%q", path, code, body)
		}
	}
}

func TestServeCloseIdempotentAddr(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if !strings.Contains(addr, ":") {
		t.Fatalf("Addr = %q", addr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The port is released: a second server can bind it again.
	s2, err := Serve(addr, nil, nil)
	if err != nil {
		t.Fatalf("rebind after Close: %v", err)
	}
	s2.Close()
}

// TestServeTraceLimit: /trace is bounded — the default response is
// capped at DefaultTraceLimit, ?limit=N returns the newest N spans,
// ?limit=0 dumps the whole ring, and garbage limits are a 400.
func TestServeTraceLimit(t *testing.T) {
	tr := NewTracer(DefaultTraceLimit + 64)
	for i := 0; i < DefaultTraceLimit+10; i++ {
		tr.Record(0, PhaseCompute, "step", -1, 0, int64(i), 1)
	}
	s, err := Serve("127.0.0.1:0", nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	countSpans := func(url string) []Span {
		t.Helper()
		code, body := get(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: code=%d", url, code)
		}
		spans, err := ReadSpans(strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return spans
	}

	if spans := countSpans(base + "/trace"); len(spans) != DefaultTraceLimit {
		t.Fatalf("default /trace returned %d spans, want the %d cap", len(spans), DefaultTraceLimit)
	}
	spans := countSpans(base + "/trace?limit=3")
	if len(spans) != 3 {
		t.Fatalf("limit=3 returned %d spans", len(spans))
	}
	// The newest spans, oldest of them first.
	if spans[2].StartNS != int64(DefaultTraceLimit+9) || spans[0].StartNS != int64(DefaultTraceLimit+7) {
		t.Fatalf("limit=3 returned the wrong tail: %+v", spans)
	}
	if spans := countSpans(base + "/trace?limit=0"); len(spans) != DefaultTraceLimit+10 {
		t.Fatalf("limit=0 returned %d spans, want the whole ring", len(spans))
	}
	if code, _ := get(t, base+"/trace?limit=bogus"); code != http.StatusBadRequest {
		t.Fatalf("limit=bogus: code=%d, want 400", code)
	}
	if code, _ := get(t, base+"/trace?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("limit=-1: code=%d, want 400", code)
	}
}

// TestServeExtraEndpoints: caller-mounted endpoints are served beside
// the built-ins — the hook /cluster/metrics and /cluster/status use.
func TestServeExtraEndpoints(t *testing.T) {
	s, err := Serve("127.0.0.1:0", nil, nil, Endpoint{
		Pattern: "/cluster/ping",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "pong")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/cluster/ping")
	if code != http.StatusOK || body != "pong" {
		t.Fatalf("extra endpoint: code=%d body=%q", code, body)
	}
}
