package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a series at
// registration time. Labels are baked into the handle — the hot path
// never formats or hashes them.
type Label struct {
	Key, Value string
}

// ValidMetricName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabelName reports whether s is a legal Prometheus label name:
// [a-zA-Z_][a-zA-Z0-9_]*. Names starting with "__" are reserved by the
// exposition format and rejected.
func ValidLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil Counter is a no-op, so instrumented code needs no
// enabled-check.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must not be negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64. A nil Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// kind discriminates what a series renders as.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labelled instance of a metric family.
type series struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() int64
	h      *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	buckets    string // histogram bucket signature, for conflict checks
	series     map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// The zero value is not usable; build one with NewRegistry. A nil
// *Registry hands out nil handles, making every registration and every
// update a no-op — the disabled fast path.
//
// Registration is idempotent: asking for the same (name, labels) again
// returns the existing handle, which is what lets a rejoin round
// re-wire its replacement monitor without double-registering.
// Conflicting re-registration (same name, different kind, help or
// buckets) panics — that is a programming error, not runtime input.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// renderLabels validates and renders a sorted, escaped label block.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !ValidLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// lookup finds or creates the (family, series) slot, enforcing the
// conflict rules. Returns nil when r is nil.
func (r *Registry) lookup(name, help string, k kind, buckets string, labels []Label) *series {
	if r == nil {
		return nil
	}
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: map[string]*series{}}
		r.fams[name] = f
	} else if f.kind != k || f.help != help || f.buckets != buckets {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different kind, help or buckets", name))
	}
	s := f.series[lbl]
	if s == nil {
		s = &series{labels: lbl}
		f.series[lbl] = s
	}
	return s
}

// Counter registers (or finds) a counter series and returns its
// handle. Nil registry → nil handle (no-op).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, "", labels)
	if s == nil {
		return nil
	}
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, "", labels)
	if s == nil {
		return nil
	}
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Func registers a callback-backed gauge: fn is sampled at scrape time
// only, so wiring an existing atomic (a fabric byte counter, a
// detector's phi) costs the hot path nothing. Re-registering the same
// (name, labels) replaces the callback.
func (r *Registry) Func(name, help string, fn func() int64, labels ...Label) {
	s := r.lookup(name, help, kindFunc, "", labels)
	if s == nil {
		return
	}
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a histogram series with the given
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []int64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets must be strictly increasing", name))
		}
	}
	sig := fmt.Sprint(buckets)
	s := r.lookup(name, help, kindHistogram, sig, labels)
	if s == nil {
		return nil
	}
	if s.h == nil {
		s.h = newHistogram(buckets)
	}
	return s.h
}

// WriteText renders every family in the Prometheus text exposition
// format: families sorted by name, series sorted by label block,
// histogram buckets cumulative with _sum and _count. The output is
// deterministic for a fixed set of registrations and values.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot the family structure under the lock; values are read
	// atomically afterwards (callbacks must not run under the registry
	// lock — one could legitimately register lazily elsewhere).
	type row struct {
		s *series
	}
	fams := make([]*family, len(names))
	rows := make([][]*series, len(names))
	for i, n := range names {
		f := r.fams[n]
		fams[i] = f
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rows[i] = append(rows[i], f.series[k])
		}
	}
	r.mu.Unlock()

	var buf []byte
	for i, f := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		for _, s := range rows[i] {
			switch f.kind {
			case kindHistogram:
				buf = s.h.appendText(buf, f.name, s.labels)
			case kindFunc:
				var v int64
				if s.fn != nil {
					v = s.fn()
				}
				buf = appendSample(buf, f.name, s.labels, v)
			case kindCounter:
				buf = appendSample(buf, f.name, s.labels, s.c.Value())
			default:
				buf = appendSample(buf, f.name, s.labels, s.g.Value())
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSample appends one "name{labels} value\n" line.
func appendSample(b []byte, name, labels string, v int64) []byte {
	b = append(b, name...)
	b = append(b, labels...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, v, 10)
	b = append(b, '\n')
	return b
}
