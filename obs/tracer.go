package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies which part of a synchronous step a span covers.
// The vocabulary mirrors the simulator's event kinds so that live and
// simulated timelines can be diffed phase-for-phase.
type Phase uint8

const (
	PhaseCompute Phase = iota
	PhaseQuantise
	PhaseEncode
	PhaseTransfer
	PhaseDecode
	PhaseBarrier
	PhaseControl
	numPhases
)

var phaseNames = [numPhases]string{
	"compute", "quantise", "encode", "transfer", "decode", "barrier", "control",
}

// String returns the lowercase phase name used on the wire and in the
// simulator overlay.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// ParsePhase is the inverse of String.
func ParsePhase(s string) (Phase, error) {
	for i, n := range phaseNames {
		if n == s {
			return Phase(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown phase %q", s)
}

// Span is one traced interval. StartNS is nanoseconds since the
// tracer's creation (a monotonic, process-local origin); DurNS is the
// interval length. Bytes and Peer are -1-free: zero means "not
// applicable" for Bytes, and Peer is -1 when no peer is involved.
type Span struct {
	Rank    int    `json:"rank"`
	Step    int64  `json:"step"`
	Phase   Phase  `json:"-"`
	Op      string `json:"op,omitempty"`
	Peer    int    `json:"peer"`
	Bytes   int64  `json:"bytes"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// spanJSON is the wire shape: phase as its string name.
type spanJSON struct {
	Rank    int    `json:"rank"`
	Step    int64  `json:"step"`
	Phase   string `json:"phase"`
	Op      string `json:"op,omitempty"`
	Peer    int    `json:"peer"`
	Bytes   int64  `json:"bytes"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Tracer records spans into a bounded ring and, optionally, a JSONL
// sink. All methods are nil-safe: a nil *Tracer is the disabled state,
// and instrumented code calls Now/Record unconditionally. Now returns
// 0 when disabled, so the pattern
//
//	t0 := tr.Now()
//	... work ...
//	tr.Record(rank, obs.PhaseTransfer, op, peer, n, t0, tr.Now()-t0)
//
// costs two nil checks and no allocation when tracing is off.
type Tracer struct {
	origin time.Time
	step   atomic.Int64
	// hist, when set, mirrors every recorded span's duration into the
	// per-phase histogram of the matching index (see AttachHistograms),
	// bridging the trace into the /metrics exposition.
	hist atomic.Pointer[[numPhases]*Histogram]

	mu   sync.Mutex
	ring []Span
	next int   // next write index
	n    int   // spans currently held (≤ len(ring))
	seq  int64 // total spans ever recorded

	sink *bufio.Writer
	sc   io.Closer
	buf  []byte // reusable JSONL encode buffer
}

// NewTracer returns a tracer whose ring holds up to capacity spans
// (older spans are overwritten). capacity must be positive.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("obs: tracer capacity must be positive")
	}
	return &Tracer{origin: time.Now(), ring: make([]Span, capacity)}
}

// SetSink attaches a JSONL sink: every recorded span is also appended
// to w as one JSON object per line. If w is an io.Closer, Close closes
// it after flushing.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = bufio.NewWriter(w)
	if c, ok := w.(io.Closer); ok {
		t.sc = c
	}
}

// Now returns nanoseconds since the tracer's origin, or 0 when the
// tracer is nil (disabled).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.origin))
}

// SetStep publishes the current global step; spans recorded by lower
// layers (reducers, fabrics) pick it up so they need no step plumbing.
func (t *Tracer) SetStep(step int64) {
	if t == nil {
		return
	}
	t.step.Store(step)
}

// Step returns the current published step (0 when nil).
func (t *Tracer) Step() int64 {
	if t == nil {
		return 0
	}
	return t.step.Load()
}

// Record stores one span. peer is -1 when no peer is involved. op must
// be a static or pre-built string — building it per call defeats the
// disabled fast path (the obsinert lint check enforces this at
// instrumentation sites).
func (t *Tracer) Record(rank int, ph Phase, op string, peer int, bytes, startNS, durNS int64) {
	if t == nil {
		return
	}
	s := Span{
		Rank:    rank,
		Step:    t.step.Load(),
		Phase:   ph,
		Op:      op,
		Peer:    peer,
		Bytes:   bytes,
		StartNS: startNS,
		DurNS:   durNS,
	}
	if hp := t.hist.Load(); hp != nil && ph < numPhases {
		hp[ph].Observe(durNS)
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.n < len(t.ring) {
		t.n++
	}
	t.seq++
	if t.sink != nil {
		t.buf = appendSpanJSON(t.buf[:0], &s)
		t.sink.Write(t.buf)
	}
	t.mu.Unlock()
}

// Len returns the number of spans currently in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Recorded returns the total number of spans ever recorded, including
// those already overwritten in the ring.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Snapshot returns the ring's spans in chronological (record) order.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// WriteJSONL writes the ring's spans to w, one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	return t.WriteJSONLTail(w, 0)
}

// WriteJSONLTail writes the newest limit spans (oldest of them first)
// to w, one JSON object per line. limit <= 0 writes the whole ring —
// the /trace endpoint passes its response cap here so a large ring
// does not turn a dashboard poll into a megabyte download.
func (t *Tracer) WriteJSONLTail(w io.Writer, limit int) error {
	spans := t.Snapshot()
	if limit > 0 && len(spans) > limit {
		spans = spans[len(spans)-limit:]
	}
	var buf []byte
	for i := range spans {
		buf = appendSpanJSON(buf[:0], &spans[i])
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes the JSONL sink, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink == nil {
		return nil
	}
	return t.sink.Flush()
}

// Close flushes and closes the sink, if any. The tracer itself remains
// usable (further spans go to the ring only).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var err error
	if t.sink != nil {
		err = t.sink.Flush()
		t.sink = nil
	}
	if t.sc != nil {
		if cerr := t.sc.Close(); err == nil {
			err = cerr
		}
		t.sc = nil
	}
	return err
}

// appendSpanJSON hand-encodes one span as a JSONL line. Fields match
// spanJSON; hand-rolled so the sink path allocates nothing per span
// beyond the reusable buffer.
func appendSpanJSON(b []byte, s *Span) []byte {
	b = append(b, `{"rank":`...)
	b = strconv.AppendInt(b, int64(s.Rank), 10)
	b = append(b, `,"step":`...)
	b = strconv.AppendInt(b, s.Step, 10)
	b = append(b, `,"phase":"`...)
	b = append(b, s.Phase.String()...)
	b = append(b, '"')
	if s.Op != "" {
		b = append(b, `,"op":`...)
		b = strconv.AppendQuote(b, s.Op)
	}
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(s.Peer), 10)
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, s.Bytes, 10)
	b = append(b, `,"start_ns":`...)
	b = strconv.AppendInt(b, s.StartNS, 10)
	b = append(b, `,"dur_ns":`...)
	b = strconv.AppendInt(b, s.DurNS, 10)
	b = append(b, "}\n"...)
	return b
}

// ReadSpans parses a JSONL span stream (as written by WriteJSONL or a
// sink) back into spans. Blank lines are skipped. Not a hot path —
// uses encoding/json.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var sj spanJSON
		if err := json.Unmarshal(raw, &sj); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		ph, err := ParsePhase(sj.Phase)
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, Span{
			Rank: sj.Rank, Step: sj.Step, Phase: ph, Op: sj.Op,
			Peer: sj.Peer, Bytes: sj.Bytes, StartNS: sj.StartNS, DurNS: sj.DurNS,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SetPhaseHistograms mirrors every subsequently recorded span's
// duration into hs[span.Phase] — typically the array AttachHistograms
// built. Pass nil to detach.
func (t *Tracer) SetPhaseHistograms(hs *[numPhases]*Histogram) {
	if t == nil {
		return
	}
	t.hist.Store(hs)
}

// AttachHistograms registers one duration histogram per phase under
// name (labelled phase="...") and returns the per-phase array, ready
// for SetPhaseHistograms. A nil registry yields all-nil (still
// observable, no-op) histograms.
func AttachHistograms(reg *Registry, name, help string, buckets []int64) *[numPhases]*Histogram {
	var hs [numPhases]*Histogram
	if reg == nil {
		return &hs
	}
	for p := Phase(0); p < numPhases; p++ {
		hs[p] = reg.Histogram(name, help, buckets, Label{"phase", p.String()})
	}
	return &hs
}
