package obs

import (
	"regexp"
	"strings"
	"testing"
)

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func FuzzValidMetricName(f *testing.F) {
	for _, s := range []string{"", "a", "lpsgd_wire_tx_bytes_total", "0bad",
		"has space", "colon:ok", "_x", ":y", "a-b", "é", "a\x00b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := ValidMetricName(s)
		want := metricNameRE.MatchString(s)
		if got != want {
			t.Fatalf("ValidMetricName(%q) = %v, regexp says %v", s, got, want)
		}
	})
}

func FuzzValidLabelName(f *testing.F) {
	for _, s := range []string{"", "a", "peer", "0bad", "__reserved",
		"_ok", "colon:no", "a b", "é"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := ValidLabelName(s)
		want := labelNameRE.MatchString(s) && !strings.HasPrefix(s, "__")
		if got != want {
			t.Fatalf("ValidLabelName(%q) = %v, reference says %v", s, got, want)
		}
	})
}

// FuzzEscapeLabelValue checks the escaping is injective-friendly: the
// escaped form contains no raw newline or unescaped quote, and
// unescaping recovers the input.
func FuzzEscapeLabelValue(f *testing.F) {
	for _, s := range []string{"", "plain", `back\slash`, `qu"ote`, "new\nline", `all\"` + "\n"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		e := escapeLabelValue(s)
		if strings.Contains(e, "\n") {
			t.Fatalf("escaped value contains raw newline: %q", e)
		}
		// Unescape: \\ -> \, \" -> ", \n -> newline.
		var b strings.Builder
		for i := 0; i < len(e); i++ {
			if e[i] == '\\' && i+1 < len(e) {
				switch e[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					t.Fatalf("unknown escape %q in %q", e[i:i+2], e)
				}
				i++
				continue
			}
			if e[i] == '"' {
				t.Fatalf("unescaped quote in %q", e)
			}
			b.WriteByte(e[i])
		}
		if b.String() != s {
			t.Fatalf("round trip: %q -> %q -> %q", s, e, b.String())
		}
	})
}
