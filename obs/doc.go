// Package obs is the training stack's observability plane: a
// dependency-free metrics registry, a per-step phase tracer, and an
// HTTP surface that exposes both — the live counterpart of the
// discrete-event simulator's timeline (repro/sim).
//
// # Metrics
//
// Registry holds counters, gauges, fixed-bucket histograms and
// callback-backed gauges, all int64-valued and atomic. Handles are
// obtained once at construction time and updated on the hot path with
// plain atomic adds — no locks, no allocation, no formatting. Every
// handle method (and every Tracer method) is nil-safe: instrumented
// code calls them unconditionally, and a nil registry or tracer makes
// the whole plane a no-op, which is what the digest-parity and TCP
// byte-parity tests pin down. WriteText renders the Prometheus text
// exposition format with stable ordering, so the output is
// golden-testable.
//
// # Tracing
//
// Tracer records Spans — (rank, step, phase, start, duration, bytes,
// peer, op) with integer-nanosecond timestamps — into a bounded
// in-memory ring and, optionally, a JSONL sink. The phase vocabulary
// is deliberately the simulator's (see repro/sim: its event kinds
// "compute"/"quant"/"xfer"/"barrier" and the RankSummary phase totals):
//
//	compute   forward+backward of one rank's shard
//	quantise  gradient codec Encode on the sending side
//	encode    full-precision packing (the NCCL ring's packF32)
//	transfer  bytes moving through the fabric (Send/Recv wall time)
//	decode    codec Decode / frame decode on the receiving side
//	barrier   the whole blocking exchange of one rank (the collective
//	          is the step barrier; its fine-grained quantise/encode/
//	          transfer/decode spans break it down, and the remainder
//	          is time spent waiting for stragglers)
//	control   everything off the data path: rendezvous, rejoin,
//	          snapshot transfer, heartbeats
//
// That shared vocabulary is what lets cmd/lpsgd-trace convert a live
// trace into a sim-comparable timeline and diff the two
// (sim.ReadLiveTrace / sim.BuildOverlay).
//
// # Serving
//
// Serve binds an HTTP listener with /metrics (Prometheus text),
// /debug/vars (expvar), /debug/pprof/* (runtime profiles) and /trace
// (the tracer ring as a JSONL download — by default the newest
// DefaultTraceLimit spans; ?limit=N narrows or widens the window and
// ?limit=0 downloads the whole ring). Its one goroutine is joined by
// Close — the golifecycle contract the lint suite enforces for this
// package.
//
// Callers with extra surfaces mount them through Serve's variadic
// Endpoint arguments; cluster.TelemetryHub uses this to serve its
// aggregated /cluster/metrics and /cluster/status beside the
// per-process endpoints (see cmd/lpsgd-top for the dashboard that
// consumes them).
package obs
