package obs

import (
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket int64 histogram. Bucket upper bounds are
// chosen at registration time; Observe is a branch-light linear scan
// plus two atomic adds — no locks, no allocation. A nil Histogram is a
// no-op.
type Histogram struct {
	bounds []int64        // strictly increasing upper bounds (le)
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// appendText renders the series in cumulative Prometheus form:
// name_bucket{le="..."} lines (one per bound plus an explicit +Inf),
// then name_sum and name_count. The +Inf bucket and name_count are by
// Prometheus convention the same number; both are rendered from the
// one cumulative bucket total, so a scrape racing concurrent Observe
// calls can never show them disagreeing (the separate count atomic
// briefly lags the bucket adds).
func (h *Histogram) appendText(b []byte, name, labels string) []byte {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b = appendBucket(b, name, labels, strconv.FormatInt(bound, 10), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	b = appendBucket(b, name, labels, "+Inf", cum)
	b = appendSample(b, name+"_sum", labels, h.sum.Load())
	b = appendSample(b, name+"_count", labels, cum)
	return b
}

// appendBucket appends one name_bucket{...,le="bound"} cum\n line,
// merging le into an existing label block if present.
func appendBucket(b []byte, name, labels, le string, cum int64) []byte {
	b = append(b, name...)
	b = append(b, "_bucket"...)
	if labels == "" {
		b = append(b, `{le="`...)
	} else {
		b = append(b, labels[:len(labels)-1]...) // strip trailing '}'
		b = append(b, `,le="`...)
	}
	b = append(b, le...)
	b = append(b, `"} `...)
	b = strconv.AppendInt(b, cum, 10)
	b = append(b, '\n')
	return b
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// min and multiplying by factor — the usual shape for nanosecond
// latency histograms. min must be positive, factor > 1, n >= 1.
func ExpBuckets(min int64, factor float64, n int) []int64 {
	if min <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires min > 0, factor > 1, n >= 1")
	}
	out := make([]int64, n)
	f := float64(min)
	for i := 0; i < n; i++ {
		v := int64(math.Round(f))
		if i > 0 && v <= out[i-1] {
			v = out[i-1] + 1
		}
		out[i] = v
		f *= factor
	}
	return out
}
