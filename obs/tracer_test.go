package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestPhaseRoundTrip(t *testing.T) {
	for p := Phase(0); p < numPhases; p++ {
		got, err := ParsePhase(p.String())
		if err != nil {
			t.Fatalf("ParsePhase(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if _, err := ParsePhase("bogus"); err == nil {
		t.Fatal("ParsePhase accepted a bogus phase")
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase did not stringify as unknown")
	}
}

func TestTracerRingOrderAndWrap(t *testing.T) {
	tr := NewTracer(4)
	tr.SetStep(7)
	for i := 0; i < 6; i++ {
		tr.Record(i, PhaseCompute, "op", -1, 0, int64(i*10), 5)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Recorded() != 6 {
		t.Fatalf("Recorded = %d, want 6", tr.Recorded())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(spans))
	}
	// Oldest surviving span is rank 2; chronological order preserved.
	for i, s := range spans {
		if s.Rank != i+2 {
			t.Fatalf("span %d rank = %d, want %d", i, s.Rank, i+2)
		}
		if s.Step != 7 {
			t.Fatalf("span %d step = %d, want 7", i, s.Step)
		}
	}
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.SetStep(3)
	tr.Record(0, PhaseQuantise, "fc1.weight", -1, 0, 100, 42)
	tr.Record(1, PhaseTransfer, `odd"op\n`, 2, 4096, 150, 9)
	tr.Record(2, PhaseBarrier, "", -1, 0, 200, 1000)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("span %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTracerSink(t *testing.T) {
	tr := NewTracer(2) // smaller than the number of spans recorded
	var sink bytes.Buffer
	tr.SetSink(&sink)
	for i := 0; i < 5; i++ {
		tr.Record(i, PhaseControl, "rendezvous", -1, 0, int64(i), 1)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&sink)
	if err != nil {
		t.Fatal(err)
	}
	// The sink sees everything, even spans the ring overwrote.
	if len(spans) != 5 {
		t.Fatalf("sink got %d spans, want 5", len(spans))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 {
		t.Fatal("nil Now != 0")
	}
	tr.SetStep(5)
	tr.Record(0, PhaseCompute, "x", -1, 0, 0, 1)
	tr.SetSink(&bytes.Buffer{})
	if tr.Len() != 0 || tr.Recorded() != 0 || tr.Step() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil Snapshot != nil")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	if _, err := ReadSpans(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ReadSpans(strings.NewReader(`{"rank":0,"step":0,"phase":"warp"}` + "\n")); err == nil {
		t.Fatal("accepted unknown phase")
	}
	spans, err := ReadSpans(strings.NewReader("\n\n"))
	if err != nil || len(spans) != 0 {
		t.Fatalf("blank lines: spans=%v err=%v", spans, err)
	}
}

func TestAttachHistograms(t *testing.T) {
	r := NewRegistry()
	hs := AttachHistograms(r, "lpsgd_phase_ns", "h", []int64{10, 100})
	hs[PhaseCompute].Observe(50)
	hs[PhaseTransfer].Observe(5)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lpsgd_phase_ns_count{phase="compute"} 1`,
		`lpsgd_phase_ns_count{phase="transfer"} 1`,
		`lpsgd_phase_ns_count{phase="barrier"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Nil registry: all-nil (but observable) histogram array.
	hs = AttachHistograms(nil, "x", "h", []int64{1})
	hs[PhaseCompute].Observe(1)
}

// BenchmarkTracerOverhead measures the cost of one instrumentation
// site: two Now() calls plus one Record(), tracing enabled vs nil.
func BenchmarkTracerOverhead(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		tr := NewTracer(1 << 12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := tr.Now()
			tr.Record(0, PhaseTransfer, "bench", 1, 4096, t0, tr.Now()-t0)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var tr *Tracer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := tr.Now()
			tr.Record(0, PhaseTransfer, "bench", 1, 4096, t0, tr.Now()-t0)
		}
	})
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_ns", "h", ExpBuckets(1000, 4, 12))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
