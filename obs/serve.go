package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// DefaultTraceLimit caps how many spans an un-parameterised /trace
// request returns. The span ring can hold far more (the CLIs size it
// in the tens of thousands); a dashboard poll that wants the whole
// ring must say so with ?limit=N.
const DefaultTraceLimit = 4096

// Endpoint mounts one extra handler on the Serve mux — the hook the
// cluster coordinator uses to expose /cluster/metrics and
// /cluster/status beside the per-process endpoints.
type Endpoint struct {
	// Pattern is the mux pattern (e.g. "/cluster/metrics").
	Pattern string
	// Handler serves it.
	Handler http.Handler
}

// Server exposes a registry and tracer over HTTP:
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar JSON
//	/debug/pprof/*  runtime profiles (explicit handlers; no global mux)
//	/trace          tracer ring as a JSONL download (newest
//	                DefaultTraceLimit spans; ?limit=N overrides)
//
// plus any extra Endpoints the caller mounts. Close stops the listener
// and joins the serve goroutine.
type Server struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// Serve binds addr (e.g. ":9090", or ":0" for an ephemeral port — see
// Addr) and starts serving. reg and tr may each be nil; their
// endpoints then return empty bodies. extra endpoints are mounted on
// the same mux.
func Serve(addr string, reg *Registry, tr *Tracer, extra ...Endpoint) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		limit := DefaultTraceLimit
		if raw := r.URL.Query().Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				http.Error(w, "limit must be a non-negative integer (0 = whole ring)", http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONLTail(w, limit)
	})
	for _, e := range extra {
		mux.Handle(e.Pattern, e.Handler)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.srv.Serve(ln) // returns ErrServerClosed (or a listener error) on Close
	}()
	return s, nil
}

// Addr returns the bound listen address — useful with ":0".
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the listener, drops open connections and joins the serve
// goroutine.
func (s *Server) Close() error {
	err := s.srv.Close()
	s.wg.Wait()
	return err
}
