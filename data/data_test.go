package data

import (
	"math"
	"testing"

	"repro/rng"
)

func TestMakeImagesShapes(t *testing.T) {
	cfg := ImageConfig{Classes: 4, Channels: 3, H: 8, W: 8, TrainN: 100, TestN: 40, Noise: 0.5, Seed: 1}
	train, test := MakeImages(cfg)
	if train.Len() != 100 || test.Len() != 40 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if train.X.Cols != 3*8*8 {
		t.Fatalf("sample dim %d", train.X.Cols)
	}
	if train.Classes != 4 {
		t.Fatalf("classes %d", train.Classes)
	}
}

func TestMakeImagesDeterministic(t *testing.T) {
	cfg := ImageConfig{Classes: 3, Channels: 1, H: 6, W: 6, TrainN: 50, TestN: 10, Noise: 0.3, Seed: 7}
	a, _ := MakeImages(cfg)
	b, _ := MakeImages(cfg)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 8
	c, _ := MakeImages(cfg)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestImagesAllClassesPresent(t *testing.T) {
	cfg := ImageConfig{Classes: 5, Channels: 1, H: 4, W: 4, TrainN: 500, TestN: 10, Noise: 0.5, Seed: 2}
	train, _ := MakeImages(cfg)
	seen := make([]bool, cfg.Classes)
	for _, l := range train.Labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("class %d absent in 500 samples", c)
		}
	}
}

func TestImagesClassSignalExists(t *testing.T) {
	// Same-class samples must be more correlated than cross-class ones;
	// otherwise the task is unlearnable and the accuracy experiments
	// would measure nothing.
	cfg := ImageConfig{Classes: 2, Channels: 1, H: 8, W: 8, TrainN: 400, TestN: 10, Noise: 0.5, Seed: 3}
	train, _ := MakeImages(cfg)
	var mean [2][]float64
	var count [2]int
	dim := train.X.Cols
	for c := 0; c < 2; c++ {
		mean[c] = make([]float64, dim)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Labels[i]
		count[c]++
		for j, v := range train.X.Row(i) {
			mean[c][j] += float64(v)
		}
	}
	var dist float64
	for j := 0; j < dim; j++ {
		d := mean[0][j]/float64(count[0]) - mean[1][j]/float64(count[1])
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatalf("class means indistinguishable: distance %v", math.Sqrt(dist))
	}
}

func TestMakeSequencesShapes(t *testing.T) {
	cfg := SequenceConfig{Classes: 3, Frames: 10, Features: 4, TrainN: 60, TestN: 20, Noise: 0.4, Seed: 1}
	train, test := MakeSequences(cfg)
	if train.Len() != 60 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if train.X.Cols != 40 {
		t.Fatalf("sample dim %d", train.X.Cols)
	}
}

func TestMakeSequencesDeterministic(t *testing.T) {
	cfg := SequenceConfig{Classes: 2, Frames: 5, Features: 3, TrainN: 30, TestN: 10, Noise: 0.2, Seed: 9}
	a, _ := MakeSequences(cfg)
	b, _ := MakeSequences(cfg)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestGather(t *testing.T) {
	cfg := ImageConfig{Classes: 2, Channels: 1, H: 2, W: 2, TrainN: 10, TestN: 2, Noise: 0.1, Seed: 4}
	train, _ := MakeImages(cfg)
	x, labels := train.Gather([]int{3, 7, 1})
	if x.Rows != 3 || len(labels) != 3 {
		t.Fatalf("gather shape %d/%d", x.Rows, len(labels))
	}
	for j := 0; j < x.Cols; j++ {
		if x.At(0, j) != train.X.At(3, j) {
			t.Fatal("gather copied wrong row")
		}
	}
	if labels[1] != train.Labels[7] {
		t.Fatal("gather copied wrong label")
	}
}

func TestBatchesPartitionEpoch(t *testing.T) {
	cfg := ImageConfig{Classes: 2, Channels: 1, H: 2, W: 2, TrainN: 103, TestN: 2, Noise: 0.1, Seed: 5}
	train, _ := MakeImages(cfg)
	r := rng.New(1)
	batches := train.Batches(r, 32)
	if len(batches) != 4 {
		t.Fatalf("batch count %d, want 4", len(batches))
	}
	if len(batches[3]) != 103-96 {
		t.Fatalf("tail batch size %d", len(batches[3]))
	}
	seen := map[int]bool{}
	for _, b := range batches {
		for _, idx := range b {
			if seen[idx] {
				t.Fatalf("index %d appears twice", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != 103 {
		t.Fatalf("epoch covered %d samples", len(seen))
	}
}

func TestBatchesShuffleVaries(t *testing.T) {
	cfg := ImageConfig{Classes: 2, Channels: 1, H: 2, W: 2, TrainN: 64, TestN: 2, Noise: 0.1, Seed: 6}
	train, _ := MakeImages(cfg)
	r := rng.New(2)
	b1 := train.Batches(r, 64)[0]
	b2 := train.Batches(r, 64)[0]
	same := true
	for i := range b1 {
		if b1[i] != b2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive epochs had identical order")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := []func(){
		func() { MakeImages(ImageConfig{Classes: 1, Channels: 1, H: 2, W: 2}) },
		func() { MakeSequences(SequenceConfig{Classes: 1, Frames: 2, Features: 2}) },
		func() {
			cfg := ImageConfig{Classes: 2, Channels: 1, H: 2, W: 2, TrainN: 4, TestN: 2, Seed: 1}
			tr, _ := MakeImages(cfg)
			tr.Batches(rng.New(1), 0)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
