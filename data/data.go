// Package data generates the deterministic synthetic datasets the
// reproduction trains on. The paper uses ImageNet, CIFAR-10 and the AN4
// speech corpus; those cannot ship with a self-contained repository, so
// this package substitutes class-structured synthetic tasks that exercise
// the same training dynamics: convolutional feature extraction over
// noisy, spatially structured images, and recurrent classification of
// noisy multi-frame sequences (spectrogram-like, as AN4 preprocessing
// produces).
//
// What matters for the paper's accuracy study is not the pixels but the
// optimisation behaviour: gradients with realistic signal-to-noise
// ratios, so that quantisation variance shows up as slower or degraded
// convergence exactly as in Figure 5. Task difficulty is controlled by
// the noise level and by how separated class templates are.
package data

import (
	"fmt"
	"math"

	"repro/rng"
	"repro/tensor"
)

// sqrtf is a float64 sqrt helper kept next to its single use.
func sqrtf(v float64) float64 { return math.Sqrt(v) }

// Dataset is an in-memory labelled dataset with one sample per row.
type Dataset struct {
	// Name identifies the dataset in logs and reports.
	Name string
	// X holds one flattened sample per row.
	X *tensor.Matrix
	// Labels holds the class of each row.
	Labels []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Gather copies the samples at the given indices into a fresh batch.
func (d *Dataset) Gather(indices []int) (*tensor.Matrix, []int) {
	x := tensor.New(len(indices), d.X.Cols)
	labels := make([]int, len(indices))
	for i, idx := range indices {
		copy(x.Row(i), d.X.Row(idx))
		labels[i] = d.Labels[idx]
	}
	return x, labels
}

// Batches returns a shuffled partition of the dataset into minibatches
// of the given size for one epoch (the final short batch is kept).
func (d *Dataset) Batches(r *rng.RNG, batchSize int) [][]int {
	if batchSize <= 0 {
		panic("data: batch size must be positive")
	}
	perm := r.Perm(d.Len())
	var out [][]int
	for start := 0; start < len(perm); start += batchSize {
		end := start + batchSize
		if end > len(perm) {
			end = len(perm)
		}
		out = append(out, perm[start:end])
	}
	return out
}

// ImageConfig parameterises the synthetic image-classification task.
type ImageConfig struct {
	// Classes is the number of categories.
	Classes int
	// Channels, H, W give the image geometry (CHW layout per row).
	Channels, H, W int
	// TrainN and TestN are the split sizes.
	TrainN, TestN int
	// Noise is the pixel noise standard deviation added to each sample;
	// templates have unit scale, so noise ≈ 1 makes a genuinely hard
	// task where convergence speed differences are visible.
	Noise float32
	// Shift enables random ±1-pixel translations of the template so the
	// task rewards convolutional (translation-robust) features.
	Shift bool
	// Seed fixes the generator.
	Seed uint64
}

// MakeImages generates a train/test pair of structured image datasets.
// Each class owns a smooth random template; a sample is the class
// template, optionally shifted by up to one pixel, plus i.i.d. Gaussian
// pixel noise. Both splits draw from the same distribution with disjoint
// random streams.
func MakeImages(cfg ImageConfig) (train, test *Dataset) {
	if cfg.Classes < 2 || cfg.Channels <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		panic(fmt.Sprintf("data: bad image config %+v", cfg))
	}
	r := rng.New(cfg.Seed)
	templates := makeTemplates(r.Fork(0), cfg)
	train = sampleImages(r.Fork(1), cfg, templates, cfg.TrainN, "images-train")
	test = sampleImages(r.Fork(2), cfg, templates, cfg.TestN, "images-test")
	return train, test
}

// makeTemplates builds one smooth unit-scale template per class by
// low-pass filtering white noise (box blur), which yields spatially
// coherent patterns that convolutions can exploit.
func makeTemplates(r *rng.RNG, cfg ImageConfig) []*tensor.Matrix {
	dim := cfg.Channels * cfg.H * cfg.W
	ts := make([]*tensor.Matrix, cfg.Classes)
	for c := range ts {
		raw := tensor.New(1, dim)
		raw.FillNorm(r, 1)
		sm := tensor.New(1, dim)
		for ch := 0; ch < cfg.Channels; ch++ {
			off := ch * cfg.H * cfg.W
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					var sum float32
					var cnt int
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							yy, xx := y+dy, x+dx
							if yy < 0 || yy >= cfg.H || xx < 0 || xx >= cfg.W {
								continue
							}
							sum += raw.Data[off+yy*cfg.W+xx]
							cnt++
						}
					}
					sm.Data[off+y*cfg.W+x] = sum / float32(cnt)
				}
			}
		}
		// Normalise to unit per-pixel RMS so Noise is a direct SNR knob.
		if norm := sm.Norm2(); norm > 0 {
			sm.Scale(float32(sqrtf(float64(len(sm.Data))) / norm))
		}
		ts[c] = sm
	}
	return ts
}

func sampleImages(r *rng.RNG, cfg ImageConfig, templates []*tensor.Matrix, n int, name string) *Dataset {
	dim := cfg.Channels * cfg.H * cfg.W
	d := &Dataset{
		Name:    name,
		X:       tensor.New(n, dim),
		Labels:  make([]int, n),
		Classes: cfg.Classes,
	}
	for i := 0; i < n; i++ {
		c := r.Intn(cfg.Classes)
		d.Labels[i] = c
		row := d.X.Row(i)
		var sx, sy int
		if cfg.Shift {
			sx, sy = r.Intn(3)-1, r.Intn(3)-1
		}
		tpl := templates[c].Data
		for ch := 0; ch < cfg.Channels; ch++ {
			off := ch * cfg.H * cfg.W
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					yy, xx := y+sy, x+sx
					var v float32
					if yy >= 0 && yy < cfg.H && xx >= 0 && xx < cfg.W {
						v = tpl[off+yy*cfg.W+xx]
					}
					row[off+y*cfg.W+x] = v + r.Norm(cfg.Noise)
				}
			}
		}
	}
	return d
}

// SequenceConfig parameterises the synthetic speech-like task.
type SequenceConfig struct {
	// Classes is the number of categories.
	Classes int
	// Frames and Features give the sequence geometry: each sample is
	// Frames consecutive feature vectors (row length Frames·Features).
	Frames, Features int
	// TrainN and TestN are the split sizes.
	TrainN, TestN int
	// Noise is the per-feature noise standard deviation.
	Noise float32
	// Seed fixes the generator.
	Seed uint64
}

// MakeSequences generates a train/test pair of sequence datasets. Each
// class owns a temporal profile (a distinct trajectory through feature
// space); samples follow the profile with additive noise and a random
// per-sample gain, mimicking utterances of the same word by different
// speakers. Discriminating classes requires integrating over time —
// which is what makes it an LSTM workload.
func MakeSequences(cfg SequenceConfig) (train, test *Dataset) {
	if cfg.Classes < 2 || cfg.Frames <= 0 || cfg.Features <= 0 {
		panic(fmt.Sprintf("data: bad sequence config %+v", cfg))
	}
	r := rng.New(cfg.Seed)
	profiles := make([][]float32, cfg.Classes)
	pr := r.Fork(0)
	for c := range profiles {
		p := make([]float32, cfg.Frames*cfg.Features)
		// Smooth random walk through feature space.
		cur := make([]float32, cfg.Features)
		for j := range cur {
			cur[j] = pr.Norm(1)
		}
		for t := 0; t < cfg.Frames; t++ {
			for j := 0; j < cfg.Features; j++ {
				cur[j] = 0.8*cur[j] + 0.2*pr.Norm(1)
				p[t*cfg.Features+j] = cur[j]
			}
		}
		profiles[c] = p
	}
	gen := func(rr *rng.RNG, n int, name string) *Dataset {
		d := &Dataset{
			Name:    name,
			X:       tensor.New(n, cfg.Frames*cfg.Features),
			Labels:  make([]int, n),
			Classes: cfg.Classes,
		}
		for i := 0; i < n; i++ {
			c := rr.Intn(cfg.Classes)
			d.Labels[i] = c
			gain := 1 + rr.Norm(0.1)
			row := d.X.Row(i)
			for j, v := range profiles[c] {
				row[j] = gain*v + rr.Norm(cfg.Noise)
			}
		}
		return d
	}
	return gen(r.Fork(1), cfg.TrainN, "sequences-train"), gen(r.Fork(2), cfg.TestN, "sequences-test")
}
