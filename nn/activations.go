package nn

import (
	"math"

	"repro/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	x    *tensor.Matrix
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	r.x = x
	if r.y == nil || r.y.Rows != x.Rows || r.y.Cols != x.Cols {
		r.y = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		if v > 0 {
			r.y.Data[i] = v
		} else {
			r.y.Data[i] = 0
		}
	}
	return r.y
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if r.dx == nil || r.dx.Rows != dout.Rows || r.dx.Cols != dout.Cols {
		r.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, v := range r.x.Data {
		if v > 0 {
			r.dx.Data[i] = dout.Data[i]
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	name string
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

// NewTanh returns a Tanh layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (t *Tanh) Name() string { return t.name }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if t.y == nil || t.y.Rows != x.Rows || t.y.Cols != x.Cols {
		t.y = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		t.y.Data[i] = float32(math.Tanh(float64(v)))
	}
	return t.y
}

// Backward implements Layer.
func (t *Tanh) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if t.dx == nil || t.dx.Rows != dout.Rows || t.dx.Cols != dout.Cols {
		t.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, y := range t.y.Data {
		t.dx.Data[i] = dout.Data[i] * (1 - y*y)
	}
	return t.dx
}

// sigmoidScalar is the logistic function on a single value.
func sigmoidScalar(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// Sigmoid is the logistic activation.
type Sigmoid struct {
	name string
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if s.y == nil || s.y.Rows != x.Rows || s.y.Cols != x.Cols {
		s.y = tensor.New(x.Rows, x.Cols)
	}
	for i, v := range x.Data {
		s.y.Data[i] = sigmoidScalar(v)
	}
	return s.y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if s.dx == nil || s.dx.Rows != dout.Rows || s.dx.Cols != dout.Cols {
		s.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, y := range s.y.Data {
		s.dx.Data[i] = dout.Data[i] * y * (1 - y)
	}
	return s.dx
}
