package nn

import (
	"bytes"
	"testing"
)

// FuzzNetworkLoad holds the checkpoint decoder to the same standard as
// the quant wire decoders: arbitrary or truncated bytes must yield an
// error, never a panic or an index error. The decoder's allocations
// are bounded by construction — parameter count, names (≤4096) and
// shapes are validated against the live network before any data buffer
// is sized — so a hostile length field cannot make Load allocate
// beyond the model it restores into; the fuzzer guards that property
// by running with ordinary test memory limits.
func FuzzNetworkLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := checkpointNet(1).Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LPSGD\x00\x00\x01"))
	// Valid magic, implausible parameter count.
	f.Add(append([]byte("LPSGD\x00\x00\x01"), 0xff, 0xff, 0xff, 0xff))
	// Truncations of the valid checkpoint at awkward boundaries.
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:9])
	f.Fuzz(func(t *testing.T, wire []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Load panicked: %v", p)
			}
		}()
		net := checkpointNet(2)
		_ = net.Load(bytes.NewReader(wire)) // error return is fine
	})
}
