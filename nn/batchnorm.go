package nn

import (
	"fmt"
	"math"

	"repro/quant"
	"repro/tensor"
)

// BatchNorm normalises activations per channel over the batch (and, for
// convolutional inputs, over spatial positions), then applies a learned
// affine transform — the building block BN-Inception and ResNet rely on.
//
// For inputs of shape (batch, C·spatial) the layer treats each sample row
// as C channels of `spatial` contiguous values; spatial = 1 recovers the
// dense-layer variant.
type BatchNorm struct {
	name       string
	c, spatial int
	momentum   float32
	eps        float32

	gamma, beta *Param

	// Running statistics for evaluation mode.
	runMean, runVar []float32

	// Saved forward state for backward.
	xhat   *tensor.Matrix
	invStd []float32
	y      *tensor.Matrix
	dx     *tensor.Matrix
}

// NewBatchNorm builds a batch-norm layer over c channels with the given
// per-channel spatial extent.
func NewBatchNorm(name string, c, spatial int) *BatchNorm {
	if c <= 0 || spatial <= 0 {
		panic(fmt.Sprintf("nn: bad batchnorm geometry %s", name))
	}
	b := &BatchNorm{
		name:     name,
		c:        c,
		spatial:  spatial,
		momentum: 0.9,
		eps:      1e-5,
		gamma:    newParam(name+".scale", 1, c, quant.Shape{Rows: c, Cols: 1}),
		beta:     newParam(name+".bias", 1, c, quant.Shape{Rows: c, Cols: 1}),
		runMean:  make([]float32, c),
		runVar:   make([]float32, c),
		invStd:   make([]float32, c),
	}
	b.gamma.Value.Fill(1)
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != b.c*b.spatial {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", b.name, b.c*b.spatial, x.Cols))
	}
	if b.y == nil || b.y.Rows != x.Rows {
		b.y = tensor.New(x.Rows, x.Cols)
		b.xhat = tensor.New(x.Rows, x.Cols)
	}
	count := float64(x.Rows * b.spatial)
	for ch := 0; ch < b.c; ch++ {
		base := ch * b.spatial
		var mean, variance float32
		if train {
			var sum float64
			for s := 0; s < x.Rows; s++ {
				row := x.Row(s)
				for p := 0; p < b.spatial; p++ {
					sum += float64(row[base+p])
				}
			}
			mean = float32(sum / count)
			var sq float64
			for s := 0; s < x.Rows; s++ {
				row := x.Row(s)
				for p := 0; p < b.spatial; p++ {
					d := float64(row[base+p] - mean)
					sq += d * d
				}
			}
			variance = float32(sq / count)
			b.runMean[ch] = b.momentum*b.runMean[ch] + (1-b.momentum)*mean
			b.runVar[ch] = b.momentum*b.runVar[ch] + (1-b.momentum)*variance
		} else {
			mean, variance = b.runMean[ch], b.runVar[ch]
		}
		inv := float32(1 / math.Sqrt(float64(variance)+float64(b.eps)))
		b.invStd[ch] = inv
		g, bt := b.gamma.Value.Data[ch], b.beta.Value.Data[ch]
		for s := 0; s < x.Rows; s++ {
			row := x.Row(s)
			xh := b.xhat.Row(s)
			out := b.y.Row(s)
			for p := 0; p < b.spatial; p++ {
				h := (row[base+p] - mean) * inv
				xh[base+p] = h
				out[base+p] = g*h + bt
			}
		}
	}
	return b.y
}

// Backward implements Layer. Standard batch-norm gradients:
//
//	dβ = Σ dy, dγ = Σ dy·x̂,
//	dx = (γ/σ)·(dy − mean(dy) − x̂·mean(dy·x̂))
func (b *BatchNorm) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if b.dx == nil || b.dx.Rows != dout.Rows {
		b.dx = tensor.New(dout.Rows, dout.Cols)
	}
	count := float32(dout.Rows * b.spatial)
	for ch := 0; ch < b.c; ch++ {
		base := ch * b.spatial
		var sumDy, sumDyXhat float64
		for s := 0; s < dout.Rows; s++ {
			row := dout.Row(s)
			xh := b.xhat.Row(s)
			for p := 0; p < b.spatial; p++ {
				dy := float64(row[base+p])
				sumDy += dy
				sumDyXhat += dy * float64(xh[base+p])
			}
		}
		b.beta.Grad.Data[ch] += float32(sumDy)
		b.gamma.Grad.Data[ch] += float32(sumDyXhat)
		g := b.gamma.Value.Data[ch]
		inv := b.invStd[ch]
		meanDy := float32(sumDy) / count
		meanDyXhat := float32(sumDyXhat) / count
		for s := 0; s < dout.Rows; s++ {
			row := dout.Row(s)
			xh := b.xhat.Row(s)
			dIn := b.dx.Row(s)
			for p := 0; p < b.spatial; p++ {
				dIn[base+p] = g * inv * (row[base+p] - meanDy - xh[base+p]*meanDyXhat)
			}
		}
	}
	return b.dx
}
