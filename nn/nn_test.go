package nn

import (
	"math"
	"testing"

	"repro/quant"
	"repro/rng"
	"repro/tensor"
)

func TestNetworkDuplicateNames(t *testing.T) {
	r := rng.New(1)
	_, err := NewNetwork(NewDense("d", 2, 2, r), NewDense("d", 2, 2, r))
	if err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestNetworkParamAccounting(t *testing.T) {
	r := rng.New(2)
	net := MustNetwork(
		NewDense("d1", 10, 20, r), // 200 + 20
		NewReLU("r"),
		NewDense("d2", 20, 5, r), // 100 + 5
	)
	if got := net.NumParams(); got != 325 {
		t.Fatalf("NumParams = %d, want 325", got)
	}
	if got := len(net.Params()); got != 4 {
		t.Fatalf("param tensors = %d, want 4", got)
	}
	infos := net.TensorInfos()
	if infos[0].Name != "d1.W" || infos[0].Shape.Len() != 200 {
		t.Fatalf("unexpected tensor info: %+v", infos[0])
	}
}

func TestZeroGrads(t *testing.T) {
	r := rng.New(3)
	net := MustNetwork(NewDense("d1", 4, 3, r))
	x := tensor.New(2, 4)
	x.FillNorm(r, 1)
	loss := NewSoftmaxCrossEntropy()
	loss.Forward(net.Forward(x, true), []int{0, 1})
	net.Backward(loss.Backward([]int{0, 1}))
	nonzero := false
	for _, p := range net.Params() {
		if p.Grad.Norm2() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("expected nonzero gradients after backward")
	}
	net.ZeroGrads()
	for _, p := range net.Params() {
		if p.Grad.Norm2() != 0 {
			t.Fatal("ZeroGrads left residue")
		}
	}
}

func TestSoftmaxProbsSumToOne(t *testing.T) {
	r := rng.New(4)
	logits := tensor.New(5, 7)
	logits.FillNorm(r, 3)
	loss := NewSoftmaxCrossEntropy()
	labels := []int{0, 1, 2, 3, 4}
	loss.Forward(logits, labels)
	for i := 0; i < 5; i++ {
		var sum float64
		for _, v := range loss.Probs().Row(i) {
			if v < 0 {
				t.Fatal("negative probability")
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d probs sum to %v", i, sum)
		}
	}
}

func TestSoftmaxLossGradientSumsToZero(t *testing.T) {
	// Each row of d(logits) must sum to zero (softmax shift invariance).
	r := rng.New(5)
	logits := tensor.New(4, 6)
	logits.FillNorm(r, 2)
	loss := NewSoftmaxCrossEntropy()
	labels := []int{5, 0, 3, 2}
	loss.Forward(logits, labels)
	g := loss.Backward(labels)
	for i := 0; i < 4; i++ {
		var sum float64
		for _, v := range g.Row(i) {
			sum += float64(v)
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("row %d gradient sums to %v", i, sum)
		}
	}
}

func TestAccuracyAndTopK(t *testing.T) {
	logits := tensor.FromSlice(3, 4, []float32{
		9, 1, 2, 3, // argmax 0
		0, 1, 2, 9, // argmax 3
		5, 6, 4, 3, // argmax 1
	})
	labels := []int{0, 3, 0}
	if got := Accuracy(logits, labels); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := TopKAccuracy(logits, labels, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("top-2 = %v, want 1", got)
	}
	if got := TopKAccuracy(logits, labels, 1); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("top-1 = %v", got)
	}
}

func TestSGDMomentumSemantics(t *testing.T) {
	p := newParam("w", 1, 1, quant.Shape{Rows: 1, Cols: 1})
	params := []*Param{p}
	opt := NewSGD(params, 0.1, 0.9)
	p.Grad.Data[0] = 1
	opt.Step() // v = -0.1, w = -0.1
	if got := p.Value.Data[0]; math.Abs(float64(got+0.1)) > 1e-7 {
		t.Fatalf("after step 1: %v", got)
	}
	p.Grad.Data[0] = 1
	opt.Step() // v = 0.9*(-0.1) - 0.1 = -0.19; w = -0.29
	if got := p.Value.Data[0]; math.Abs(float64(got+0.29)) > 1e-6 {
		t.Fatalf("after step 2: %v", got)
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.1, Every: 10}
	cases := map[int]float32{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01}
	for epoch, want := range cases {
		if got := s.LRAt(epoch); math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("LRAt(%d) = %v, want %v", epoch, got, want)
		}
	}
	c := ConstantLR(0.5)
	if c.LRAt(100) != 0.5 {
		t.Error("ConstantLR should not vary")
	}
}

// TestTrainingLearnsBlobs: a small MLP must fit a linearly separable
// Gaussian-blob problem to high accuracy — the substrate sanity check
// everything in the accuracy study rests on.
func TestTrainingLearnsBlobs(t *testing.T) {
	r := rng.New(42)
	const dim, classes, n = 8, 3, 300
	x := tensor.New(n, dim)
	labels := make([]int, n)
	centers := tensor.New(classes, dim)
	centers.FillNorm(r, 3)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, centers.At(c, j)+r.Norm(0.5))
		}
	}
	net := MustNetwork(
		NewDense("d1", dim, 16, r),
		NewReLU("r1"),
		NewDense("d2", 16, classes, r),
	)
	loss := NewSoftmaxCrossEntropy()
	opt := NewSGD(net.Params(), 0.1, 0.9)
	for epoch := 0; epoch < 30; epoch++ {
		net.ZeroGrads()
		loss.Forward(net.Forward(x, true), labels)
		net.Backward(loss.Backward(labels))
		opt.Step()
	}
	logits := net.Forward(x, false)
	if acc := Accuracy(logits, labels); acc < 0.95 {
		t.Fatalf("MLP failed to fit blobs: accuracy %v", acc)
	}
}

// TestDeterministicTraining: identical seeds produce bit-identical
// trained weights.
func TestDeterministicTraining(t *testing.T) {
	build := func() (*Network, *tensor.Matrix, []int) {
		r := rng.New(7)
		net := MustNetwork(
			NewDense("d1", 4, 8, r),
			NewReLU("r1"),
			NewDense("d2", 8, 2, r),
		)
		x := tensor.New(16, 4)
		x.FillNorm(r, 1)
		labels := make([]int, 16)
		for i := range labels {
			labels[i] = i % 2
		}
		return net, x, labels
	}
	run := func() []float32 {
		net, x, labels := build()
		loss := NewSoftmaxCrossEntropy()
		opt := NewSGD(net.Params(), 0.05, 0.9)
		for it := 0; it < 20; it++ {
			net.ZeroGrads()
			loss.Forward(net.Forward(x, true), labels)
			net.Backward(loss.Backward(labels))
			opt.Step()
		}
		var out []float32
		for _, p := range net.Params() {
			out = append(out, p.Value.Data...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training diverged at weight %d", i)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := rng.New(8)
	bn := NewBatchNorm("bn", 4, 1)
	x := tensor.New(32, 4)
	x.FillNorm(r, 2)
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	// In eval mode the output on the same input should be close to the
	// train-mode normalisation (running stats converge to batch stats).
	trainOut := bn.Forward(x, true).Clone()
	evalOut := bn.Forward(x, false)
	if !trainOut.Equal(evalOut, 0.2) {
		t.Fatal("eval-mode output far from train-mode after stats converged")
	}
}

func TestLSTMShapes(t *testing.T) {
	r := rng.New(9)
	l := NewLSTM("lstm", 5, 3, 7, r)
	x := tensor.New(4, 15)
	x.FillNorm(r, 1)
	y := l.Forward(x, true)
	if y.Rows != 4 || y.Cols != 7 {
		t.Fatalf("LSTM output %dx%d, want 4x7", y.Rows, y.Cols)
	}
	dx := l.Backward(y.Clone())
	if dx.Rows != 4 || dx.Cols != 15 {
		t.Fatalf("LSTM dx %dx%d, want 4x15", dx.Rows, dx.Cols)
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	r1 := rng.New(10)
	r2 := rng.New(11)
	a := MustNetwork(NewDense("d", 3, 3, r1))
	b := MustNetwork(NewDense("d", 3, 3, r2))
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Params()[0].Value.Data {
		if a.Params()[0].Value.Data[i] != b.Params()[0].Value.Data[i] {
			t.Fatal("weights not copied")
		}
	}
}

func BenchmarkForwardBackwardCNN(b *testing.B) {
	r := rng.New(1)
	shape := tensor.ConvShape{InC: 3, InH: 16, InW: 16, OutC: 8, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv := NewConv2D("c1", shape, r)
	net := MustNetwork(conv, NewReLU("r1"), NewDense("d1", conv.OutLen(), 10, r))
	x := tensor.New(16, 3*16*16)
	x.FillNorm(r, 1)
	labels := make([]int, 16)
	loss := NewSoftmaxCrossEntropy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrads()
		loss.Forward(net.Forward(x, true), labels)
		net.Backward(loss.Backward(labels))
	}
}
