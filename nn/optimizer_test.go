package nn

import (
	"math"
	"testing"

	"repro/quant"
	"repro/rng"
)

func TestClipGradNormScales(t *testing.T) {
	p := newParam("w", 1, 4, quant.Shape{Rows: 4, Cols: 1})
	copy(p.Grad.Data, []float32{3, 4, 0, 0}) // norm 5
	before := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(before-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v, want 5", before)
	}
	var sq float64
	for _, v := range p.Grad.Data {
		sq += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-5 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(sq))
	}
	// Direction preserved.
	if p.Grad.Data[0] <= 0 || p.Grad.Data[1] <= 0 {
		t.Fatal("clip changed gradient direction")
	}
}

func TestClipGradNormNoOpBelowBound(t *testing.T) {
	p := newParam("w", 1, 2, quant.Shape{Rows: 2, Cols: 1})
	copy(p.Grad.Data, []float32{0.3, 0.4})
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 || p.Grad.Data[1] != 0.4 {
		t.Fatal("clip modified a gradient within bounds")
	}
}

func TestClipGradNormZeroGradient(t *testing.T) {
	p := newParam("w", 1, 2, quant.Shape{Rows: 2, Cols: 1})
	if norm := ClipGradNorm([]*Param{p}, 1); norm != 0 {
		t.Fatalf("zero gradient norm %v", norm)
	}
}

func TestClipGradNormPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClipGradNorm(nil, 0)
}

func TestWarmupSchedule(t *testing.T) {
	w := Warmup{Base: 1.0, Epochs: 4, After: StepDecay{Base: 1.0, Gamma: 0.1, Every: 10}}
	cases := map[int]float32{0: 0.25, 1: 0.5, 3: 1.0, 4: 1.0, 9: 1.0, 10: 0.1}
	for epoch, want := range cases {
		if got := w.LRAt(epoch); math.Abs(float64(got-want)) > 1e-6 {
			t.Errorf("LRAt(%d) = %v, want %v", epoch, got, want)
		}
	}
}

func TestWarmupWithoutAfter(t *testing.T) {
	w := Warmup{Base: 0.5, Epochs: 2}
	if w.LRAt(10) != 0.5 {
		t.Fatal("warmup without After should hold Base")
	}
}

func TestWeightDecayInStepMath(t *testing.T) {
	p := newParam("w", 1, 1, quant.Shape{Rows: 1, Cols: 1})
	p.Value.Data[0] = 10
	opt := NewSGD([]*Param{p}, 0.1, 0)
	opt.SetWeightDecay(0.5)
	p.Grad.Data[0] = 0
	opt.Step() // effective grad = 0 + 0.5*10 = 5; w -= 0.1*5 = 0.5
	if got := p.Value.Data[0]; math.Abs(float64(got-9.5)) > 1e-6 {
		t.Fatalf("after decay step w = %v, want 9.5", got)
	}
}

// TestClippingStabilisesTraining: with an absurdly large learning rate,
// unclipped SGD on a deep-ish net blows up while the clipped run keeps
// finite loss.
func TestClippingStabilisesTraining(t *testing.T) {
	build := func() (*Network, *SoftmaxCrossEntropy) {
		r := rng.New(50)
		return MustNetwork(
			NewDense("d1", 8, 32, r),
			NewTanh("t1"),
			NewDense("d2", 32, 32, r),
			NewTanh("t2"),
			NewDense("d3", 32, 2, r),
		), NewSoftmaxCrossEntropy()
	}
	r := rng.New(51)
	x, labels := smallBatch(r, 16, 8, 2)
	run := func(clip bool) float64 {
		net, loss := build()
		opt := NewSGD(net.Params(), 5.0, 0.9) // way too hot
		var last float64
		for i := 0; i < 30; i++ {
			net.ZeroGrads()
			last = loss.Forward(net.Forward(x, true), labels)
			net.Backward(loss.Backward(labels))
			if clip {
				ClipGradNorm(net.Params(), 0.5)
			}
			opt.Step()
		}
		return last
	}
	clipped := run(true)
	if math.IsNaN(clipped) || math.IsInf(clipped, 0) || clipped > 10 {
		t.Fatalf("clipped training still unstable: loss %v", clipped)
	}
}
