package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// checkpointMagic identifies the checkpoint format and its version.
const checkpointMagic = "LPSGD\x00\x00\x01"

// Save writes the network's parameter values (not gradients or
// optimiser state) to w in a versioned little-endian binary format, so
// long-running training jobs can checkpoint and resume.
//
// Layout: 8-byte magic, uint32 parameter count, then per parameter:
// uint32 name length, name bytes, uint32 rows, uint32 cols, and
// rows·cols float32 values.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("nn: save magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(n.params))); err != nil {
		return fmt.Errorf("nn: save count: %w", err)
	}
	for _, p := range n.params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Rows)); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Value.Cols)); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
		for _, v := range p.Value.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float32bits(v)); err != nil {
				return fmt.Errorf("nn: save %s: %w", p.Name, err)
			}
		}
	}
	return bw.Flush()
}

// Load restores parameter values previously written by Save into this
// network. The architectures must match: same parameter names, shapes
// and order. Gradients and optimiser state are untouched.
func (n *Network) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: load magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (bad magic %q)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load count: %w", err)
	}
	if int(count) != len(n.params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, network has %d",
			count, len(n.params))
	}
	for _, p := range n.params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: load name length: %w", err)
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: load name: %w", err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint parameter %q, network expects %q",
				name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("nn: load %s rows: %w", p.Name, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("nn: load %s cols: %w", p.Name, err)
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return fmt.Errorf("nn: checkpoint %s is %dx%d, network has %dx%d",
				p.Name, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		buf := make([]byte, 4*rows*cols)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("nn: load %s data: %w", p.Name, err)
		}
		for i := range p.Value.Data {
			p.Value.Data[i] = math.Float32frombits(
				binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return nil
}
