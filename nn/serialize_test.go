package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/rng"
	"repro/tensor"
)

func checkpointNet(seed uint64) *Network {
	r := rng.New(seed)
	return MustNetwork(
		NewDense("d1", 6, 8, r),
		NewReLU("r1"),
		NewBatchNorm("bn1", 8, 1),
		NewDense("d2", 8, 3, r),
	)
}

func TestSaveLoadRoundtrip(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := checkpointNet(2) // different init
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].Value.Data {
			if sp[i].Value.Data[j] != dp[i].Value.Data[j] {
				t.Fatalf("param %s[%d] not restored", sp[i].Name, j)
			}
		}
	}
}

func TestLoadPreservesBehaviour(t *testing.T) {
	r := rng.New(3)
	x := tensor.New(4, 6)
	x.FillNorm(r, 1)
	src := checkpointNet(1)
	want := src.Forward(x, false).Clone()

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := checkpointNet(9)
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := dst.Forward(x, false)
	// Note: batch-norm running statistics are not part of the
	// checkpoint, but in eval mode on a fresh net they are the same
	// defaults for both networks only if neither has trained; compare
	// in train mode to use batch stats instead.
	_ = got
	gotTrain := dst.Forward(x, true)
	wantTrain := src.Forward(x, true)
	if !gotTrain.Equal(wantTrain, 1e-6) {
		t.Fatal("restored network computes different outputs")
	}
	_ = want
}

func TestLoadRejectsBadMagic(t *testing.T) {
	dst := checkpointNet(1)
	if err := dst.Load(strings.NewReader("NOTACKPT0000")); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	dst := checkpointNet(1)
	if err := dst.Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	src := checkpointNet(1)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	other := MustNetwork(NewDense("different", 6, 8, r))
	if err := other.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected parameter-count error")
	}
	wrongShape := MustNetwork(
		NewDense("d1", 6, 9, r), // 9 instead of 8
		NewReLU("r1"),
		NewBatchNorm("bn1", 9, 1),
		NewDense("d2", 9, 3, r),
	)
	if err := wrongShape.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSaveDeterministic(t *testing.T) {
	src := checkpointNet(7)
	var a, b bytes.Buffer
	if err := src.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := src.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("checkpoint bytes differ across saves")
	}
}
