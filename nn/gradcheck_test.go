package nn

import (
	"math"
	"testing"

	"repro/rng"
	"repro/tensor"
)

// numericalGrad estimates dLoss/dParam[idx] by central differences.
func numericalGrad(net *Network, loss *SoftmaxCrossEntropy, x *tensor.Matrix,
	labels []int, p *Param, idx int, eps float32) float64 {
	orig := p.Value.Data[idx]
	p.Value.Data[idx] = orig + eps
	lPlus := loss.Forward(net.Forward(x, true), labels)
	p.Value.Data[idx] = orig - eps
	lMinus := loss.Forward(net.Forward(x, true), labels)
	p.Value.Data[idx] = orig
	return (lPlus - lMinus) / float64(2*eps)
}

// checkGradients verifies backprop gradients against central differences
// on a sample of parameter entries.
func checkGradients(t *testing.T, net *Network, x *tensor.Matrix, labels []int) {
	t.Helper()
	loss := NewSoftmaxCrossEntropy()
	net.ZeroGrads()
	l := loss.Forward(net.Forward(x, true), labels)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("loss is %v", l)
	}
	net.Backward(loss.Backward(labels))

	r := rng.New(999)
	const eps = 1e-2
	for _, p := range net.Params() {
		n := p.Value.Len()
		probes := 6
		if n < probes {
			probes = n
		}
		for k := 0; k < probes; k++ {
			idx := r.Intn(n)
			num := numericalGrad(net, loss, x, labels, p, idx, eps)
			ana := float64(p.Grad.Data[idx])
			denom := math.Abs(num) + math.Abs(ana)
			if denom < 1e-4 {
				continue // both effectively zero
			}
			if rel := math.Abs(num-ana) / denom; rel > 0.08 {
				t.Errorf("%s[%d]: analytic %.6f vs numeric %.6f (rel %.3f)",
					p.Name, idx, ana, num, rel)
			}
		}
	}
}

func smallBatch(r *rng.RNG, batch, dim, classes int) (*tensor.Matrix, []int) {
	x := tensor.New(batch, dim)
	x.FillNorm(r, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	return x, labels
}

func TestGradDenseReLU(t *testing.T) {
	r := rng.New(1)
	net := MustNetwork(
		NewDense("d1", 6, 8, r),
		NewReLU("r1"),
		NewDense("d2", 8, 3, r),
	)
	x, labels := smallBatch(r, 4, 6, 3)
	checkGradients(t, net, x, labels)
}

func TestGradTanhSigmoid(t *testing.T) {
	r := rng.New(2)
	net := MustNetwork(
		NewDense("d1", 5, 7, r),
		NewTanh("t1"),
		NewDense("d2", 7, 7, r),
		NewSigmoid("s1"),
		NewDense("d3", 7, 2, r),
	)
	x, labels := smallBatch(r, 3, 5, 2)
	checkGradients(t, net, x, labels)
}

func TestGradConv2D(t *testing.T) {
	r := rng.New(3)
	shape := tensor.ConvShape{InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3,
		StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	conv := NewConv2D("c1", shape, r)
	net := MustNetwork(
		conv,
		NewReLU("r1"),
		NewDense("d1", conv.OutLen(), 3, r),
	)
	x, labels := smallBatch(r, 2, 2*5*5, 3)
	checkGradients(t, net, x, labels)
}

func TestGradConvStrided(t *testing.T) {
	r := rng.New(4)
	shape := tensor.ConvShape{InC: 1, InH: 8, InW: 8, OutC: 2, KH: 3, KW: 3,
		StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	conv := NewConv2D("c1", shape, r)
	net := MustNetwork(conv, NewDense("d1", conv.OutLen(), 2, r))
	x, labels := smallBatch(r, 2, 64, 2)
	checkGradients(t, net, x, labels)
}

func TestGradMaxPool(t *testing.T) {
	r := rng.New(5)
	pool := NewMaxPool2D("p1", 2, 4, 4, 2, 2, 2, 2)
	net := MustNetwork(
		NewDense("d0", 32, 32, r),
		pool,
		NewDense("d1", pool.OutLen(), 2, r),
	)
	x, labels := smallBatch(r, 3, 32, 2)
	checkGradients(t, net, x, labels)
}

func TestGradGlobalAvgPool(t *testing.T) {
	r := rng.New(6)
	net := MustNetwork(
		NewDense("d0", 18, 18, r),
		NewGlobalAvgPool("g1", 2, 3, 3),
		NewDense("d1", 2, 2, r),
	)
	x, labels := smallBatch(r, 3, 18, 2)
	checkGradients(t, net, x, labels)
}

func TestGradBatchNormDense(t *testing.T) {
	r := rng.New(7)
	net := MustNetwork(
		NewDense("d1", 5, 6, r),
		NewBatchNorm("bn1", 6, 1),
		NewReLU("r1"),
		NewDense("d2", 6, 3, r),
	)
	x, labels := smallBatch(r, 8, 5, 3)
	checkGradients(t, net, x, labels)
}

func TestGradBatchNormSpatial(t *testing.T) {
	r := rng.New(8)
	net := MustNetwork(
		NewDense("d0", 24, 24, r),
		NewBatchNorm("bn1", 2, 12),
		NewDense("d2", 24, 2, r),
	)
	x, labels := smallBatch(r, 4, 24, 2)
	checkGradients(t, net, x, labels)
}

func TestGradResidualBlock(t *testing.T) {
	r := rng.New(9)
	net := MustNetwork(
		NewDense("d0", 6, 6, r),
		NewResidual("res1",
			NewDense("res1.d1", 6, 6, r),
			NewReLU("res1.r"),
			NewDense("res1.d2", 6, 6, r),
		),
		NewDense("d1", 6, 3, r),
	)
	x, labels := smallBatch(r, 4, 6, 3)
	checkGradients(t, net, x, labels)
}

func TestGradLSTM(t *testing.T) {
	r := rng.New(10)
	lstm := NewLSTM("lstm", 4, 3, 5, r)
	net := MustNetwork(
		lstm,
		NewDense("d1", 5, 2, r),
	)
	x, labels := smallBatch(r, 3, 12, 2)
	checkGradients(t, net, x, labels)
}

func TestGradLSTMDeep(t *testing.T) {
	r := rng.New(11)
	// Two stacked LSTMs: the second consumes the first's final hidden
	// state as a length-1 sequence.
	l1 := NewLSTM("lstm1", 3, 4, 6, r)
	l2 := NewLSTM("lstm2", 1, 6, 4, r)
	net := MustNetwork(l1, l2, NewDense("d1", 4, 2, r))
	x, labels := smallBatch(r, 2, 12, 2)
	checkGradients(t, net, x, labels)
}

func TestGradDropoutEvalIdentity(t *testing.T) {
	r := rng.New(12)
	d := NewDropout("drop", 0.5, r)
	x := tensor.New(3, 4)
	x.FillNorm(r, 1)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("dropout in eval mode must be identity")
	}
}
