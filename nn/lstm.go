package nn

import (
	"fmt"
	"math"

	"repro/quant"
	"repro/rng"
	"repro/tensor"
)

// LSTM is a single long short-term memory layer unrolled over fixed-
// length sequences. Inputs arrive one sample per row as T concatenated
// frames of D features (row length T·D); the layer emits the final
// hidden state (batch × H), which a dense classifier head consumes —
// the shape of the paper's AN4 speech model.
//
// Gate order inside the fused weight matrices is input, forget, cell
// candidate, output. The forget-gate bias is initialised to 1, the usual
// trick for trainability over longer sequences.
type LSTM struct {
	name    string
	t, d, h int

	wx, wh, b *Param

	// Per-timestep caches for backpropagation through time.
	xs, hs, cs             []*tensor.Matrix // inputs, hidden, cell (hs/cs have T+1 entries)
	gi, gf, gg, go_, tanhC []*tensor.Matrix

	dx *tensor.Matrix
}

// NewLSTM builds an LSTM over sequences of t frames with d features and
// hidden size h.
func NewLSTM(name string, t, d, h int, r *rng.RNG) *LSTM {
	if t <= 0 || d <= 0 || h <= 0 {
		panic(fmt.Sprintf("nn: bad LSTM geometry %s", name))
	}
	l := &LSTM{
		name: name, t: t, d: d, h: h,
		wx: newParam(name+".Wx", d, 4*h, quant.Shape{Rows: 4 * h, Cols: d}),
		wh: newParam(name+".Wh", h, 4*h, quant.Shape{Rows: 4 * h, Cols: h}),
		b:  newParam(name+".b", 1, 4*h, quant.Shape{Rows: 4 * h, Cols: 1}),
	}
	stdX := float32(math.Sqrt(1.0 / float64(d)))
	stdH := float32(math.Sqrt(1.0 / float64(h)))
	l.wx.Value.FillNorm(r, stdX)
	l.wh.Value.FillNorm(r, stdH)
	for j := h; j < 2*h; j++ { // forget gate bias
		l.b.Value.Data[j] = 1
	}
	return l
}

// HiddenSize returns H.
func (l *LSTM) HiddenSize() int { return l.h }

// Name implements Layer.
func (l *LSTM) Name() string { return l.name }

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// Forward implements Layer.
func (l *LSTM) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != l.t*l.d {
		panic(fmt.Sprintf("nn: %s expects %d inputs (T=%d×D=%d), got %d",
			l.name, l.t*l.d, l.t, l.d, x.Cols))
	}
	batch := x.Rows
	l.ensureCaches(batch)
	l.hs[0].Zero()
	l.cs[0].Zero()

	z := tensor.New(batch, 4*l.h)
	zh := tensor.New(batch, 4*l.h)
	for t := 0; t < l.t; t++ {
		xt := l.xs[t]
		for s := 0; s < batch; s++ {
			copy(xt.Row(s), x.Row(s)[t*l.d:(t+1)*l.d])
		}
		tensor.MatMulAddBias(z, xt, l.wx.Value, l.b.Value)
		tensor.MatMul(zh, l.hs[t], l.wh.Value)
		z.Add(zh)
		hNext, cNext := l.hs[t+1], l.cs[t+1]
		cPrev := l.cs[t]
		for s := 0; s < batch; s++ {
			zr := z.Row(s)
			ir, fr := l.gi[t].Row(s), l.gf[t].Row(s)
			gr, or := l.gg[t].Row(s), l.go_[t].Row(s)
			tc := l.tanhC[t].Row(s)
			cp, cn, hn := cPrev.Row(s), cNext.Row(s), hNext.Row(s)
			for j := 0; j < l.h; j++ {
				i := sigmoidScalar(zr[j])
				f := sigmoidScalar(zr[l.h+j])
				g := float32(math.Tanh(float64(zr[2*l.h+j])))
				o := sigmoidScalar(zr[3*l.h+j])
				c := f*cp[j] + i*g
				th := float32(math.Tanh(float64(c)))
				ir[j], fr[j], gr[j], or[j] = i, f, g, o
				cn[j], tc[j] = c, th
				hn[j] = o * th
			}
		}
	}
	return l.hs[l.t]
}

// Backward implements Layer (backpropagation through time from the final
// hidden state).
func (l *LSTM) Backward(dout *tensor.Matrix) *tensor.Matrix {
	batch := dout.Rows
	if l.dx == nil || l.dx.Rows != batch {
		l.dx = tensor.New(batch, l.t*l.d)
	}
	dh := tensor.New(batch, l.h)
	dh.CopyFrom(dout)
	dc := tensor.New(batch, l.h)
	dz := tensor.New(batch, 4*l.h)
	dxt := tensor.New(batch, l.d)
	dhPrev := tensor.New(batch, l.h)
	dwx := tensor.New(l.d, 4*l.h)
	dwh := tensor.New(l.h, 4*l.h)
	for t := l.t - 1; t >= 0; t-- {
		cPrev := l.cs[t]
		for s := 0; s < batch; s++ {
			dhr, dcr := dh.Row(s), dc.Row(s)
			ir, fr := l.gi[t].Row(s), l.gf[t].Row(s)
			gr, or := l.gg[t].Row(s), l.go_[t].Row(s)
			tc := l.tanhC[t].Row(s)
			cp := cPrev.Row(s)
			dzr := dz.Row(s)
			for j := 0; j < l.h; j++ {
				do := dhr[j] * tc[j]
				dcj := dcr[j] + dhr[j]*or[j]*(1-tc[j]*tc[j])
				di := dcj * gr[j]
				df := dcj * cp[j]
				dg := dcj * ir[j]
				dzr[j] = di * ir[j] * (1 - ir[j])
				dzr[l.h+j] = df * fr[j] * (1 - fr[j])
				dzr[2*l.h+j] = dg * (1 - gr[j]*gr[j])
				dzr[3*l.h+j] = do * or[j] * (1 - or[j])
				dcr[j] = dcj * fr[j] // carried to t-1
			}
		}
		// Parameter gradients.
		tensor.MatMulTransA(dwx, l.xs[t], dz)
		l.wx.Grad.Add(dwx)
		tensor.MatMulTransA(dwh, l.hs[t], dz)
		l.wh.Grad.Add(dwh)
		for s := 0; s < batch; s++ {
			dzr := dz.Row(s)
			for j, v := range dzr {
				l.b.Grad.Data[j] += v
			}
		}
		// Input and previous-hidden gradients.
		tensor.MatMulTransB(dxt, dz, l.wx.Value)
		for s := 0; s < batch; s++ {
			copy(l.dx.Row(s)[t*l.d:(t+1)*l.d], dxt.Row(s))
		}
		tensor.MatMulTransB(dhPrev, dz, l.wh.Value)
		dh.CopyFrom(dhPrev)
	}
	return l.dx
}

func (l *LSTM) ensureCaches(batch int) {
	if len(l.xs) == l.t && l.xs[0].Rows == batch {
		return
	}
	l.xs = make([]*tensor.Matrix, l.t)
	l.gi = make([]*tensor.Matrix, l.t)
	l.gf = make([]*tensor.Matrix, l.t)
	l.gg = make([]*tensor.Matrix, l.t)
	l.go_ = make([]*tensor.Matrix, l.t)
	l.tanhC = make([]*tensor.Matrix, l.t)
	l.hs = make([]*tensor.Matrix, l.t+1)
	l.cs = make([]*tensor.Matrix, l.t+1)
	for t := 0; t < l.t; t++ {
		l.xs[t] = tensor.New(batch, l.d)
		l.gi[t] = tensor.New(batch, l.h)
		l.gf[t] = tensor.New(batch, l.h)
		l.gg[t] = tensor.New(batch, l.h)
		l.go_[t] = tensor.New(batch, l.h)
		l.tanhC[t] = tensor.New(batch, l.h)
	}
	for t := 0; t <= l.t; t++ {
		l.hs[t] = tensor.New(batch, l.h)
		l.cs[t] = tensor.New(batch, l.h)
	}
}
