package nn

import (
	"fmt"

	"repro/tensor"
)

// AvgPool2D is channel-wise average pooling over NCHW inputs flattened
// one sample per row — the pooling flavour BN-Inception's towers use.
type AvgPool2D struct {
	name             string
	c, h, w          int
	kh, kw           int
	strideH, strideW int
	y                *tensor.Matrix
	dx               *tensor.Matrix
}

// NewAvgPool2D builds an average-pooling layer over c×h×w inputs with a
// kh×kw window and the given strides.
func NewAvgPool2D(name string, c, h, w, kh, kw, strideH, strideW int) *AvgPool2D {
	if c <= 0 || h <= 0 || w <= 0 || kh <= 0 || kw <= 0 || strideH <= 0 || strideW <= 0 {
		panic(fmt.Sprintf("nn: bad avgpool geometry %s", name))
	}
	return &AvgPool2D{name: name, c: c, h: h, w: w, kh: kh, kw: kw,
		strideH: strideH, strideW: strideW}
}

// OutH returns the pooled height.
func (p *AvgPool2D) OutH() int { return (p.h-p.kh)/p.strideH + 1 }

// OutW returns the pooled width.
func (p *AvgPool2D) OutW() int { return (p.w-p.kw)/p.strideW + 1 }

// OutLen returns the per-sample output length.
func (p *AvgPool2D) OutLen() int { return p.c * p.OutH() * p.OutW() }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != p.c*p.h*p.w {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", p.name, p.c*p.h*p.w, x.Cols))
	}
	oh, ow := p.OutH(), p.OutW()
	if p.y == nil || p.y.Rows != x.Rows {
		p.y = tensor.New(x.Rows, p.OutLen())
	}
	inv := 1 / float32(p.kh*p.kw)
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := p.y.Row(s)
		for ch := 0; ch < p.c; ch++ {
			chOff := ch * p.h * p.w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for ky := 0; ky < p.kh; ky++ {
						rowOff := chOff + (oy*p.strideH+ky)*p.w
						for kx := 0; kx < p.kw; kx++ {
							sum += in[rowOff+ox*p.strideW+kx]
						}
					}
					out[(ch*oh+oy)*ow+ox] = sum * inv
				}
			}
		}
	}
	return p.y
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	oh, ow := p.OutH(), p.OutW()
	if p.dx == nil || p.dx.Rows != dout.Rows {
		p.dx = tensor.New(dout.Rows, p.c*p.h*p.w)
	}
	p.dx.Zero()
	inv := 1 / float32(p.kh*p.kw)
	for s := 0; s < dout.Rows; s++ {
		dIn := p.dx.Row(s)
		dOut := dout.Row(s)
		for ch := 0; ch < p.c; ch++ {
			chOff := ch * p.h * p.w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dOut[(ch*oh+oy)*ow+ox] * inv
					for ky := 0; ky < p.kh; ky++ {
						rowOff := chOff + (oy*p.strideH+ky)*p.w
						for kx := 0; kx < p.kw; kx++ {
							dIn[rowOff+ox*p.strideW+kx] += g
						}
					}
				}
			}
		}
	}
	return p.dx
}

// Concat runs several tower bodies on the same input and concatenates
// their outputs along the feature axis — the Inception-module pattern.
// Each tower is a stack of layers; towers see the identical input and
// their output columns are laid side by side.
type Concat struct {
	name   string
	towers [][]Layer
	outs   []*tensor.Matrix
	y      *tensor.Matrix
	dx     *tensor.Matrix
	widths []int
}

// NewConcat builds a concatenation block over the given towers.
func NewConcat(name string, towers ...[]Layer) *Concat {
	if len(towers) == 0 {
		panic("nn: concat needs at least one tower")
	}
	return &Concat{name: name, towers: towers, outs: make([]*tensor.Matrix, len(towers)),
		widths: make([]int, len(towers))}
}

// Name implements Layer.
func (c *Concat) Name() string { return c.name }

// Params implements Layer.
func (c *Concat) Params() []*Param {
	var ps []*Param
	for _, tower := range c.towers {
		for _, l := range tower {
			ps = append(ps, l.Params()...)
		}
	}
	return ps
}

// Forward implements Layer.
func (c *Concat) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	total := 0
	for ti, tower := range c.towers {
		h := x
		for _, l := range tower {
			h = l.Forward(h, train)
		}
		if h.Rows != x.Rows {
			panic(fmt.Sprintf("nn: concat %s tower %d changed batch size", c.name, ti))
		}
		c.outs[ti] = h
		c.widths[ti] = h.Cols
		total += h.Cols
	}
	if c.y == nil || c.y.Rows != x.Rows || c.y.Cols != total {
		c.y = tensor.New(x.Rows, total)
	}
	for s := 0; s < x.Rows; s++ {
		dst := c.y.Row(s)
		off := 0
		for ti := range c.towers {
			copy(dst[off:off+c.widths[ti]], c.outs[ti].Row(s))
			off += c.widths[ti]
		}
	}
	return c.y
}

// Backward implements Layer.
func (c *Concat) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if c.dx == nil || c.dx.Rows != dout.Rows {
		c.dx = nil // re-derive from the first tower's dx shape below
	}
	off := 0
	for ti, tower := range c.towers {
		w := c.widths[ti]
		slice := tensor.New(dout.Rows, w)
		for s := 0; s < dout.Rows; s++ {
			copy(slice.Row(s), dout.Row(s)[off:off+w])
		}
		off += w
		d := slice
		var dm *tensor.Matrix = d
		for i := len(tower) - 1; i >= 0; i-- {
			dm = tower[i].Backward(dm)
		}
		if c.dx == nil {
			c.dx = tensor.New(dout.Rows, dm.Cols)
			c.dx.Zero()
		}
		c.dx.Add(dm)
	}
	out := c.dx
	c.dx = nil // towers may resize next batch; rebuild lazily
	return out
}
