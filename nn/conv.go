package nn

import (
	"fmt"
	"math"

	"repro/quant"
	"repro/rng"
	"repro/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs flattened one sample per
// row. Weights are stored as an (outC × inC·kH·kW) matrix so the forward
// pass is a single GEMM against the im2col expansion of each sample.
//
// The wire shape deliberately follows CNTK's layout, where the *kernel
// width* is the first tensor dimension: a 3×3 kernel becomes a 3-row
// matrix on the wire, so classic column-wise 1bitSGD quantises it in
// height-3 columns — two scale floats per three values. This is the
// performance artefact §3.2 ("Reshaped 1bitSGD") dissects.
type Conv2D struct {
	name  string
	shape tensor.ConvShape
	w, b  *Param
	x     *tensor.Matrix
	cols  *tensor.Matrix
	y     *tensor.Matrix
	dx    *tensor.Matrix
}

// NewConv2D builds a convolution layer with He initialisation.
func NewConv2D(name string, shape tensor.ConvShape, r *rng.RNG) *Conv2D {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	patch := shape.PatchLen()
	c := &Conv2D{
		name:  name,
		shape: shape,
		w: newParam(name+".W", shape.OutC, patch,
			quant.Shape{Rows: shape.KW, Cols: shape.KH * shape.InC * shape.OutC}),
		b: newParam(name+".b", 1, shape.OutC,
			quant.Shape{Rows: shape.OutC, Cols: 1}),
	}
	std := float32(math.Sqrt(2.0 / float64(patch)))
	c.w.Value.FillNorm(r, std)
	return c
}

// Shape returns the convolution geometry.
func (c *Conv2D) Shape() tensor.ConvShape { return c.shape }

// OutLen returns the per-sample output length outC·outH·outW.
func (c *Conv2D) OutLen() int { return c.shape.OutC * c.shape.OutH() * c.shape.OutW() }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	inLen := c.shape.InC * c.shape.InH * c.shape.InW
	if x.Cols != inLen {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", c.name, inLen, x.Cols))
	}
	c.x = x
	outHW := c.shape.OutH() * c.shape.OutW()
	if c.y == nil || c.y.Rows != x.Rows {
		c.y = tensor.New(x.Rows, c.OutLen())
	}
	if c.cols == nil {
		c.cols = tensor.New(c.shape.PatchLen(), outHW)
	}
	out := tensor.New(c.shape.OutC, outHW)
	for s := 0; s < x.Rows; s++ {
		tensor.Im2col(c.shape, x.Row(s), c.cols)
		tensor.MatMul(out, c.w.Value, c.cols)
		dst := c.y.Row(s)
		for oc := 0; oc < c.shape.OutC; oc++ {
			bias := c.b.Value.Data[oc]
			orow := out.Row(oc)
			base := oc * outHW
			for p, v := range orow {
				dst[base+p] = v + bias
			}
		}
	}
	return c.y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	outHW := c.shape.OutH() * c.shape.OutW()
	if c.dx == nil || c.dx.Rows != dout.Rows {
		c.dx = tensor.New(dout.Rows, c.shape.InC*c.shape.InH*c.shape.InW)
	}
	c.dx.Zero()
	dOutS := tensor.New(c.shape.OutC, outHW)
	dW := tensor.New(c.shape.OutC, c.shape.PatchLen())
	dCols := tensor.New(c.shape.PatchLen(), outHW)
	for s := 0; s < dout.Rows; s++ {
		src := dout.Row(s)
		copy(dOutS.Data, src)
		// Bias gradient: sum over spatial positions per channel.
		for oc := 0; oc < c.shape.OutC; oc++ {
			var sum float32
			for p := 0; p < outHW; p++ {
				sum += dOutS.Data[oc*outHW+p]
			}
			c.b.Grad.Data[oc] += sum
		}
		// Weight gradient: dW += dOut · colsᵀ (cols recomputed — trades
		// FLOPs for not caching batch×patch activations).
		tensor.Im2col(c.shape, c.x.Row(s), c.cols)
		tensor.MatMulTransB(dW, dOutS, c.cols)
		c.w.Grad.Add(dW)
		// Input gradient: dCols = Wᵀ · dOut, scattered back by col2im.
		tensor.MatMulTransA(dCols, c.w.Value, dOutS)
		tensor.Col2im(c.shape, dCols, c.dx.Row(s))
	}
	return c.dx
}
