package nn

import (
	"fmt"
	"math"

	"repro/tensor"
)

// SGD is stochastic gradient descent with classical momentum, the
// optimiser the paper uses throughout (§4.4: "an SGD optimizer with
// default momentum, 0.9 for most architectures").
type SGD struct {
	lr          float32
	momentum    float32
	weightDecay float32
	params      []*Param
	velocity    []*tensor.Matrix
}

// NewSGD builds an optimiser over params.
func NewSGD(params []*Param, lr, momentum float32) *SGD {
	s := &SGD{lr: lr, momentum: momentum, params: params}
	s.velocity = make([]*tensor.Matrix, len(params))
	for i, p := range params {
		s.velocity[i] = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return s
}

// LR returns the current learning rate.
func (s *SGD) LR() float32 { return s.lr }

// Momentum returns the momentum coefficient μ.
func (s *SGD) Momentum() float32 { return s.momentum }

// WeightDecay returns the L2 regularisation coefficient λ.
func (s *SGD) WeightDecay() float32 { return s.weightDecay }

// Velocity returns the optimiser's momentum buffers, one per parameter
// in parameter order. The matrices alias live optimiser state: resume
// machinery (repro/elastic) reads them to checkpoint mid-run momentum
// and writes them to restore it — a resumed run is only bit-identical
// to an uninterrupted one if v travels with w.
func (s *SGD) Velocity() []*tensor.Matrix { return s.velocity }

// SetLR updates the learning rate (used by schedules between epochs).
func (s *SGD) SetLR(lr float32) { s.lr = lr }

// SetWeightDecay sets the L2 regularisation coefficient λ; the
// effective gradient becomes g + λ·w, as in CNTK's SGD recipes.
func (s *SGD) SetWeightDecay(wd float32) { s.weightDecay = wd }

// Step applies one update: v ← μ·v − η·(g + λ·w); w ← w + v. Gradients
// are consumed as currently stored in each Param.Grad; the caller
// zeroes them afterwards.
func (s *SGD) Step() {
	for i, p := range s.params {
		v := s.velocity[i]
		if s.weightDecay != 0 {
			for j := range v.Data {
				g := p.Grad.Data[j] + s.weightDecay*p.Value.Data[j]
				v.Data[j] = s.momentum*v.Data[j] - s.lr*g
				p.Value.Data[j] += v.Data[j]
			}
			continue
		}
		for j := range v.Data {
			v.Data[j] = s.momentum*v.Data[j] - s.lr*p.Grad.Data[j]
			p.Value.Data[j] += v.Data[j]
		}
	}
}

// ClipGradNorm rescales the concatenated gradient of params so its
// global L2 norm does not exceed maxNorm, returning the norm before
// clipping. CNTK's recurrent recipes clip gradients to stabilise LSTM
// training; the speech experiments use the same guard.
func ClipGradNorm(params []*Param, maxNorm float32) float64 {
	if maxNorm <= 0 {
		panic("nn: ClipGradNorm needs a positive bound")
	}
	var sq float64
	for _, p := range params {
		for _, v := range p.Grad.Data {
			sq += float64(v) * float64(v)
		}
	}
	norm := math.Sqrt(sq)
	if norm <= float64(maxNorm) || norm == 0 {
		return norm
	}
	scale := float32(float64(maxNorm) / norm)
	for _, p := range params {
		p.Grad.Scale(scale)
	}
	return norm
}

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	// LRAt returns the learning rate for the given zero-based epoch.
	LRAt(epoch int) float32
}

// ConstantLR is a fixed learning rate.
type ConstantLR float32

// LRAt implements Schedule.
func (c ConstantLR) LRAt(int) float32 { return float32(c) }

// StepDecay multiplies the base rate by Gamma every Every epochs — the
// staircase schedule CNTK's image recipes use.
type StepDecay struct {
	Base  float32
	Gamma float32
	Every int
}

// LRAt implements Schedule.
func (s StepDecay) LRAt(epoch int) float32 {
	if s.Every <= 0 {
		return s.Base
	}
	lr := s.Base
	for e := s.Every; e <= epoch; e += s.Every {
		lr *= s.Gamma
	}
	return lr
}

// String renders the schedule for logs.
func (s StepDecay) String() string {
	return fmt.Sprintf("step(base=%g, gamma=%g, every=%d)", s.Base, s.Gamma, s.Every)
}

// Warmup linearly ramps the learning rate from Base/Epochs to Base over
// the first Epochs epochs, then delegates to After — the ramp large-
// batch data-parallel training commonly uses to avoid early divergence.
type Warmup struct {
	Base   float32
	Epochs int
	After  Schedule
}

// LRAt implements Schedule.
func (w Warmup) LRAt(epoch int) float32 {
	if w.Epochs > 0 && epoch < w.Epochs {
		return w.Base * float32(epoch+1) / float32(w.Epochs)
	}
	if w.After != nil {
		return w.After.LRAt(epoch)
	}
	return w.Base
}
