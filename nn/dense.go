package nn

import (
	"fmt"
	"math"

	"repro/quant"
	"repro/rng"
	"repro/tensor"
)

// Dense is a fully connected layer: y = x·W + b with W of shape
// (in × out). Its wire shape follows the CNTK convention of putting the
// output dimension first, giving 1bitSGD tall columns — which is why the
// paper observes classic 1bitSGD "effectively does not quantise
// convolutional layers" yet handles FC layers well.
type Dense struct {
	name    string
	in, out int
	w, b    *Param
	x       *tensor.Matrix // cached input for backward
	dx      *tensor.Matrix
	y       *tensor.Matrix
}

// NewDense builds a dense layer with He-initialised weights.
func NewDense(name string, in, out int, r *rng.RNG) *Dense {
	d := &Dense{
		name: name,
		in:   in,
		out:  out,
		w:    newParam(name+".W", in, out, quant.Shape{Rows: out, Cols: in}),
		b:    newParam(name+".b", 1, out, quant.Shape{Rows: out, Cols: 1}),
	}
	std := float32(math.Sqrt(2.0 / float64(in)))
	d.w.Value.FillNorm(r, std)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != d.in {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", d.name, d.in, x.Cols))
	}
	d.x = x
	if d.y == nil || d.y.Rows != x.Rows {
		d.y = tensor.New(x.Rows, d.out)
	}
	tensor.MatMulAddBias(d.y, x, d.w.Value, d.b.Value)
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(dout *tensor.Matrix) *tensor.Matrix {
	// dW += xᵀ · dout
	dw := tensor.New(d.in, d.out)
	tensor.MatMulTransA(dw, d.x, dout)
	d.w.Grad.Add(dw)
	// db += column sums of dout
	for i := 0; i < dout.Rows; i++ {
		row := dout.Row(i)
		for j, v := range row {
			d.b.Grad.Data[j] += v
		}
	}
	// dx = dout · Wᵀ
	if d.dx == nil || d.dx.Rows != dout.Rows {
		d.dx = tensor.New(dout.Rows, d.in)
	}
	tensor.MatMulTransB(d.dx, dout, d.w.Value)
	return d.dx
}
