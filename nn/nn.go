// Package nn is the deep-learning substrate of the reproduction: dense
// float32 layers with hand-written backpropagation, assembled into the
// convolutional and recurrent networks whose training accuracy the paper
// measures under low-precision gradient exchange.
//
// The package plays the role CNTK's computation graph plays in the
// original artefact. Parameters expose their gradients as flat float32
// matrices together with a CNTK-layout wire shape (first tensor dimension
// = rows), because classic 1bitSGD quantises per column of exactly that
// layout — the source of the paper's reshaping discussion (§3.2).
package nn

import (
	"fmt"

	"repro/quant"
	"repro/tensor"
)

// Param is one learnable tensor and its gradient accumulator.
type Param struct {
	// Name identifies the tensor (e.g. "conv1.W").
	Name string
	// Value holds the current weights.
	Value *tensor.Matrix
	// Grad accumulates the gradient of the minibatch loss with respect
	// to Value. Layers add into it; the trainer zeroes it between steps.
	Grad *tensor.Matrix
	// WireShape is the CNTK tensor layout used by the quantisation
	// codecs: Rows is the first tensor dimension, Cols the flattened
	// rest. For a conv kernel stored as [kW][kH·inC·outC] this makes
	// Rows the kernel width — the tiny-column case 1bitSGD trips over.
	WireShape quant.Shape
}

// newParam allocates a parameter with matching gradient storage.
func newParam(name string, rows, cols int, wire quant.Shape) *Param {
	return &Param{
		Name:      name,
		Value:     tensor.New(rows, cols),
		Grad:      tensor.New(rows, cols),
		WireShape: wire,
	}
}

// Info returns the quant.TensorInfo describing this parameter.
func (p *Param) Info() quant.TensorInfo {
	return quant.TensorInfo{Name: p.Name, Shape: p.WireShape}
}

// Layer is one differentiable block. Forward consumes a batch-major
// activation matrix (one sample per row) and returns the output batch;
// Backward consumes the gradient with respect to the output and returns
// the gradient with respect to the input, accumulating parameter
// gradients as a side effect. A Backward call must follow the Forward
// call whose activations it differentiates.
type Layer interface {
	// Name returns a short identifier used in parameter names.
	Name() string
	// Forward runs the layer. train toggles training-only behaviour
	// (dropout masks, batch-norm statistics).
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward propagates dout back through the most recent Forward.
	Backward(dout *tensor.Matrix) *tensor.Matrix
	// Params returns the layer's learnable tensors (possibly empty).
	Params() []*Param
}

// Network is an ordered stack of layers.
type Network struct {
	Layers []Layer
	params []*Param
}

// NewNetwork builds a network from the given layers and validates that
// parameter names are unique.
func NewNetwork(layers ...Layer) (*Network, error) {
	n := &Network{Layers: layers}
	seen := map[string]bool{}
	for _, l := range layers {
		for _, p := range l.Params() {
			if seen[p.Name] {
				return nil, fmt.Errorf("nn: duplicate parameter name %q", p.Name)
			}
			seen[p.Name] = true
			n.params = append(n.params, p)
		}
	}
	return n, nil
}

// MustNetwork is NewNetwork that panics on error, for static model
// definitions.
func MustNetwork(layers ...Layer) *Network {
	n, err := NewNetwork(layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// Forward runs the full stack.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through the full stack.
func (n *Network) Backward(dout *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dout = n.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns every learnable tensor in definition order.
func (n *Network) Params() []*Param { return n.params }

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, p := range n.params {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += p.Value.Len()
	}
	return total
}

// TensorInfos returns the quantisation inventory for the whole model.
func (n *Network) TensorInfos() []quant.TensorInfo {
	infos := make([]quant.TensorInfo, len(n.params))
	for i, p := range n.params {
		infos[i] = p.Info()
	}
	return infos
}

// CopyWeightsFrom copies all parameter values (not gradients) from src.
// The networks must have identical architecture.
func (n *Network) CopyWeightsFrom(src *Network) error {
	if len(n.params) != len(src.params) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(n.params), len(src.params))
	}
	for i, p := range n.params {
		sp := src.params[i]
		if p.Value.Len() != sp.Value.Len() {
			return fmt.Errorf("nn: parameter %q size mismatch", p.Name)
		}
		copy(p.Value.Data, sp.Value.Data)
	}
	return nil
}
