package nn

import (
	"fmt"
	"math"

	"repro/tensor"
)

// SoftmaxCrossEntropy combines the softmax activation with the
// cross-entropy loss, the standard classification head. It is not a
// Layer: it terminates the network, consuming logits and integer labels.
type SoftmaxCrossEntropy struct {
	probs *tensor.Matrix
	dx    *tensor.Matrix
}

// NewSoftmaxCrossEntropy returns a fresh loss head.
func NewSoftmaxCrossEntropy() *SoftmaxCrossEntropy {
	return &SoftmaxCrossEntropy{}
}

// Forward computes the mean cross-entropy of logits against labels and
// caches the softmax probabilities for Backward. labels[i] is the class
// of sample i.
func (l *SoftmaxCrossEntropy) Forward(logits *tensor.Matrix, labels []int) float64 {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(labels), logits.Rows))
	}
	if l.probs == nil || l.probs.Rows != logits.Rows || l.probs.Cols != logits.Cols {
		l.probs = tensor.New(logits.Rows, logits.Cols)
	}
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		// Stabilised softmax.
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		p := l.probs.Row(i)
		for j, v := range row {
			e := math.Exp(float64(v - mx))
			p[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range p {
			p[j] *= inv
		}
		cls := labels[i]
		if cls < 0 || cls >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", cls, logits.Cols))
		}
		loss -= math.Log(math.Max(float64(p[cls]), 1e-12))
	}
	return loss / float64(logits.Rows)
}

// Backward returns the gradient of the mean loss with respect to the
// logits: (softmax − onehot)/batch.
func (l *SoftmaxCrossEntropy) Backward(labels []int) *tensor.Matrix {
	if l.dx == nil || l.dx.Rows != l.probs.Rows || l.dx.Cols != l.probs.Cols {
		l.dx = tensor.New(l.probs.Rows, l.probs.Cols)
	}
	inv := 1 / float32(l.probs.Rows)
	for i := 0; i < l.probs.Rows; i++ {
		p := l.probs.Row(i)
		d := l.dx.Row(i)
		for j, v := range p {
			d[j] = v * inv
		}
		d[labels[i]] -= inv
	}
	return l.dx
}

// Probs returns the most recent softmax probabilities (valid after
// Forward).
func (l *SoftmaxCrossEntropy) Probs() *tensor.Matrix { return l.probs }

// Accuracy returns the top-1 accuracy of logits against labels.
func Accuracy(logits *tensor.Matrix, labels []int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// TopKAccuracy returns the fraction of samples whose true label is among
// the k highest logits (the paper reports top-1 and top-5).
func TopKAccuracy(logits *tensor.Matrix, labels []int, k int) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		target := row[labels[i]]
		higher := 0
		for _, v := range row {
			if v > target {
				higher++
			}
		}
		if higher < k {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
