package nn

import (
	"fmt"

	"repro/rng"
	"repro/tensor"
)

// Dropout zeroes activations with probability p during training and
// rescales survivors by 1/(1−p) ("inverted dropout"), so evaluation is
// the identity.
type Dropout struct {
	name string
	p    float32
	r    *rng.RNG
	mask []float32
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

// NewDropout builds a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(name string, p float32, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{name: name, p: p, r: r}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if d.y == nil || d.y.Rows != x.Rows || d.y.Cols != x.Cols {
		d.y = tensor.New(x.Rows, x.Cols)
		d.mask = make([]float32, x.Len())
	}
	if !train || d.p == 0 {
		copy(d.y.Data, x.Data)
		for i := range d.mask {
			d.mask[i] = 1
		}
		return d.y
	}
	scale := 1 / (1 - d.p)
	for i, v := range x.Data {
		if d.r.Float32() < d.p {
			d.mask[i] = 0
			d.y.Data[i] = 0
		} else {
			d.mask[i] = scale
			d.y.Data[i] = v * scale
		}
	}
	return d.y
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if d.dx == nil || d.dx.Rows != dout.Rows || d.dx.Cols != dout.Cols {
		d.dx = tensor.New(dout.Rows, dout.Cols)
	}
	for i, g := range dout.Data {
		d.dx.Data[i] = g * d.mask[i]
	}
	return d.dx
}
