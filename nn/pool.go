package nn

import (
	"fmt"
	"math"

	"repro/tensor"
)

// MaxPool2D is channel-wise max pooling over NCHW inputs flattened one
// sample per row.
type MaxPool2D struct {
	name             string
	c, h, w          int
	kh, kw           int
	strideH, strideW int
	argmax           []int32 // flat index of the winning input per output
	y                *tensor.Matrix
	dx               *tensor.Matrix
}

// NewMaxPool2D builds a max-pooling layer over c×h×w inputs with a
// kh×kw window and the given strides.
func NewMaxPool2D(name string, c, h, w, kh, kw, strideH, strideW int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || kh <= 0 || kw <= 0 || strideH <= 0 || strideW <= 0 {
		panic(fmt.Sprintf("nn: bad pool geometry %s", name))
	}
	return &MaxPool2D{name: name, c: c, h: h, w: w, kh: kh, kw: kw, strideH: strideH, strideW: strideW}
}

// OutH returns the pooled height.
func (p *MaxPool2D) OutH() int { return (p.h-p.kh)/p.strideH + 1 }

// OutW returns the pooled width.
func (p *MaxPool2D) OutW() int { return (p.w-p.kw)/p.strideW + 1 }

// OutLen returns the per-sample output length.
func (p *MaxPool2D) OutLen() int { return p.c * p.OutH() * p.OutW() }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	if x.Cols != p.c*p.h*p.w {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", p.name, p.c*p.h*p.w, x.Cols))
	}
	oh, ow := p.OutH(), p.OutW()
	outLen := p.OutLen()
	if p.y == nil || p.y.Rows != x.Rows {
		p.y = tensor.New(x.Rows, outLen)
		p.argmax = make([]int32, x.Rows*outLen)
	}
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := p.y.Row(s)
		amBase := s * outLen
		for ch := 0; ch < p.c; ch++ {
			chOff := ch * p.h * p.w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := -1
					for ky := 0; ky < p.kh; ky++ {
						iy := oy*p.strideH + ky
						rowOff := chOff + iy*p.w
						for kx := 0; kx < p.kw; kx++ {
							ix := ox*p.strideW + kx
							if v := in[rowOff+ix]; v > best {
								best = v
								bestIdx = rowOff + ix
							}
						}
					}
					oi := (ch*oh+oy)*ow + ox
					out[oi] = best
					p.argmax[amBase+oi] = int32(bestIdx)
				}
			}
		}
	}
	return p.y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Matrix) *tensor.Matrix {
	if p.dx == nil || p.dx.Rows != dout.Rows {
		p.dx = tensor.New(dout.Rows, p.c*p.h*p.w)
	}
	p.dx.Zero()
	outLen := p.OutLen()
	for s := 0; s < dout.Rows; s++ {
		dIn := p.dx.Row(s)
		dOut := dout.Row(s)
		amBase := s * outLen
		for oi, g := range dOut {
			dIn[p.argmax[amBase+oi]] += g
		}
	}
	return p.dx
}

// GlobalAvgPool averages each channel's spatial plane, mapping a
// (batch, C·H·W) activation to (batch, C) — the classifier head pattern
// ResNet and BN-Inception use.
type GlobalAvgPool struct {
	name    string
	c, h, w int
	y       *tensor.Matrix
	dx      *tensor.Matrix
}

// NewGlobalAvgPool builds the layer for c×h×w inputs.
func NewGlobalAvgPool(name string, c, h, w int) *GlobalAvgPool {
	return &GlobalAvgPool{name: name, c: c, h: h, w: w}
}

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Matrix, _ bool) *tensor.Matrix {
	hw := g.h * g.w
	if x.Cols != g.c*hw {
		panic(fmt.Sprintf("nn: %s expects %d inputs, got %d", g.name, g.c*hw, x.Cols))
	}
	if g.y == nil || g.y.Rows != x.Rows {
		g.y = tensor.New(x.Rows, g.c)
	}
	inv := 1 / float32(hw)
	for s := 0; s < x.Rows; s++ {
		in := x.Row(s)
		out := g.y.Row(s)
		for ch := 0; ch < g.c; ch++ {
			var sum float32
			base := ch * hw
			for p := 0; p < hw; p++ {
				sum += in[base+p]
			}
			out[ch] = sum * inv
		}
	}
	return g.y
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Matrix) *tensor.Matrix {
	hw := g.h * g.w
	if g.dx == nil || g.dx.Rows != dout.Rows {
		g.dx = tensor.New(dout.Rows, g.c*hw)
	}
	inv := 1 / float32(hw)
	for s := 0; s < dout.Rows; s++ {
		dIn := g.dx.Row(s)
		dOut := dout.Row(s)
		for ch := 0; ch < g.c; ch++ {
			v := dOut[ch] * inv
			base := ch * hw
			for p := 0; p < hw; p++ {
				dIn[base+p] = v
			}
		}
	}
	return g.dx
}
