package nn

import (
	"math"
	"testing"

	"repro/rng"
	"repro/tensor"
)

func TestAvgPoolForwardValues(t *testing.T) {
	p := NewAvgPool2D("ap", 1, 2, 2, 2, 2, 2, 2)
	x := tensor.FromSlice(1, 4, []float32{1, 2, 3, 4})
	y := p.Forward(x, false)
	if y.Cols != 1 || math.Abs(float64(y.Data[0]-2.5)) > 1e-6 {
		t.Fatalf("avg of 1..4 = %v, want 2.5", y.Data[0])
	}
}

func TestAvgPoolGeometry(t *testing.T) {
	p := NewAvgPool2D("ap", 3, 8, 8, 2, 2, 2, 2)
	if p.OutH() != 4 || p.OutW() != 4 || p.OutLen() != 48 {
		t.Fatalf("geometry wrong: %dx%d len %d", p.OutH(), p.OutW(), p.OutLen())
	}
}

func TestGradAvgPool(t *testing.T) {
	r := rng.New(40)
	pool := NewAvgPool2D("ap", 2, 4, 4, 2, 2, 2, 2)
	net := MustNetwork(
		NewDense("d0", 32, 32, r),
		pool,
		NewDense("d1", pool.OutLen(), 2, r),
	)
	x, labels := smallBatch(r, 3, 32, 2)
	checkGradients(t, net, x, labels)
}

func TestConcatForwardLayout(t *testing.T) {
	r := rng.New(41)
	towerA := []Layer{NewDense("a", 4, 2, r)}
	towerB := []Layer{NewDense("b", 4, 3, r)}
	c := NewConcat("cat", towerA, towerB)
	x := tensor.New(2, 4)
	x.FillNorm(r, 1)
	y := c.Forward(x, true)
	if y.Cols != 5 {
		t.Fatalf("concat width %d, want 5", y.Cols)
	}
	// Left block must equal tower A's own forward output.
	ya := towerA[0].Forward(x, true)
	for s := 0; s < 2; s++ {
		for j := 0; j < 2; j++ {
			if y.At(s, j) != ya.At(s, j) {
				t.Fatal("tower A block misplaced")
			}
		}
	}
}

func TestGradConcat(t *testing.T) {
	r := rng.New(42)
	c := NewConcat("cat",
		[]Layer{NewDense("t1.d", 6, 4, r), NewReLU("t1.r")},
		[]Layer{NewDense("t2.d", 6, 3, r)},
		[]Layer{NewDense("t3.d1", 6, 5, r), NewTanh("t3.t"), NewDense("t3.d2", 5, 2, r)},
	)
	net := MustNetwork(c, NewDense("head", 9, 3, r))
	x, labels := smallBatch(r, 4, 6, 3)
	checkGradients(t, net, x, labels)
}

func TestGradConcatWithPools(t *testing.T) {
	// A miniature Inception-style module: 1x1 conv tower, 3x3 conv
	// tower, and an avg-pool tower, concatenated.
	r := rng.New(43)
	const chw = 2 * 4 * 4
	c1 := NewConv2D("t1.c", tensor.ConvShape{InC: 2, InH: 4, InW: 4, OutC: 2,
		KH: 1, KW: 1, StrideH: 1, StrideW: 1}, r)
	c3 := NewConv2D("t2.c", tensor.ConvShape{InC: 2, InH: 4, InW: 4, OutC: 2,
		KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)
	ap := NewAvgPool2D("t3.p", 2, 4, 4, 2, 2, 2, 2)
	module := NewConcat("inc",
		[]Layer{c1},
		[]Layer{c3},
		[]Layer{ap},
	)
	width := c1.OutLen() + c3.OutLen() + ap.OutLen()
	net := MustNetwork(module, NewDense("head", width, 2, r))
	x, labels := smallBatch(r, 2, chw, 2)
	checkGradients(t, net, x, labels)
}

func TestConcatParamsCollected(t *testing.T) {
	r := rng.New(44)
	c := NewConcat("cat",
		[]Layer{NewDense("t1", 4, 2, r)},
		[]Layer{NewDense("t2", 4, 2, r)},
	)
	if got := len(c.Params()); got != 4 {
		t.Fatalf("concat exposes %d params, want 4 (2 towers × W+b)", got)
	}
}

func TestConcatPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConcat("bad")
}
