package nn

import (
	"fmt"

	"repro/tensor"
)

// Residual wraps a body of layers with an identity skip connection:
// y = x + body(x). The body must preserve the activation shape, as in the
// basic blocks of the CIFAR ResNet-110 the paper trains.
type Residual struct {
	name string
	body []Layer
	y    *tensor.Matrix
	dx   *tensor.Matrix
}

// NewResidual builds a residual block around body.
func NewResidual(name string, body ...Layer) *Residual {
	if len(body) == 0 {
		panic("nn: residual block needs a body")
	}
	return &Residual{name: name, body: body}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	var ps []*Param
	for _, l := range r.body {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	h := x
	for _, l := range r.body {
		h = l.Forward(h, train)
	}
	if h.Rows != x.Rows || h.Cols != x.Cols {
		panic(fmt.Sprintf("nn: residual %s body changed shape %dx%d -> %dx%d",
			r.name, x.Rows, x.Cols, h.Rows, h.Cols))
	}
	if r.y == nil || r.y.Rows != x.Rows || r.y.Cols != x.Cols {
		r.y = tensor.New(x.Rows, x.Cols)
	}
	r.y.CopyFrom(h)
	r.y.Add(x)
	return r.y
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Matrix) *tensor.Matrix {
	d := dout
	for i := len(r.body) - 1; i >= 0; i-- {
		d = r.body[i].Backward(d)
	}
	if r.dx == nil || r.dx.Rows != dout.Rows || r.dx.Cols != dout.Cols {
		r.dx = tensor.New(dout.Rows, dout.Cols)
	}
	r.dx.CopyFrom(d)
	r.dx.Add(dout)
	return r.dx
}
