package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/comm"
	"repro/elastic"
	"repro/health"
	"repro/obs"
	"repro/quant"
)

// This file implements the elastic-rejoin half of the rendezvous
// protocol (ProtocolVersion 4). The flow mirrors the original
// rendezvous deliberately — same address, same hello/welcome/mesh
// phases, same stray handling — so that a rejoin round is "the
// rendezvous again, minus negotiation, plus a step table":
//
//  1. A peer-death verdict reaches every survivor (repro/health). Each
//     survivor's trainer quiesces at the step barrier its abort unwound
//     to and calls Session.Rejoin.
//  2. Rank 0 re-opens the original rendezvous address and collects one
//     rejoin hello per slot: survivors announce their completed step
//     counts, and a replacement process (cluster.Rejoin, launched by a
//     supervisor as `lpsgd-worker -rejoin`) claims the dead rank's slot
//     with step -1.
//  3. The welcome broadcasts the next session generation and the full
//     step table. Everyone derives the same resume point (the maximum
//     completed step — a synchronous exchange cannot complete anywhere
//     unless every rank contributed, so survivors are at most one step
//     apart and the maximum is a state an uninterrupted run reaches),
//     the same donor (the lowest rank holding it) and the same
//     catch-up set (every rank behind it).
//  4. The mesh and control links are re-established exactly as in the
//     original rendezvous, and the donor streams the elastic.Snapshot
//     to every catch-up rank over the new data links.
//
// If anything fails — the window expires, a second rank dies, the
// coordinator itself was the casualty — Rejoin returns an error and
// the caller surfaces the original verdict: elasticity degrades to
// PR 4's coordinated abort, never to a hang.

// ErrNotElastic is returned by Session.Rejoin when the coordinator did
// not enable elastic sessions for this cluster.
var ErrNotElastic = errors.New("cluster: session is not elastic (the coordinator did not enable rejoin)")

// Rejoin repairs the session after a peer-death verdict: survivors
// re-rendezvous at the original coordinator address, a replacement is
// admitted into the dead rank's slot, the mesh and health plane are
// rebuilt in place, and training state flows from the donor to every
// rank behind the resume point. It implements elastic.Rejoiner and is
// called from the rank's training goroutine; on success the session's
// Fabric, Monitor and Generation are replaced. On failure the old
// plane stays torn down and the caller should surface the original
// verdict.
func (s *Session) Rejoin(verdict error, local elastic.LocalState) (*elastic.Outcome, error) {
	if !s.el.Enable {
		return nil, ErrNotElastic
	}
	var dead health.ErrPeerDead
	if !errors.As(verdict, &dead) {
		return nil, fmt.Errorf("cluster: rejoin needs a health.ErrPeerDead verdict, got: %v", verdict)
	}
	if dead.Rank == 0 {
		return nil, fmt.Errorf("cluster: rank 0 (the coordinator) died; a session cannot outlive its rejoin listener")
	}
	if dead.Rank < 0 || dead.Rank >= s.world || dead.Rank == s.rank {
		return nil, fmt.Errorf("cluster: verdict names rank %d, which rank %d of %d cannot repair", dead.Rank, s.rank, s.world)
	}
	// Quiesce the old plane. Close waits for the in-flight abort
	// broadcast and says its byes even though a verdict is held — a
	// survivor's sockets vanishing unannounced would read as a second
	// death on any peer that has not reached its own verdict yet (see
	// health.Monitor.Close). The fabric was already aborted by the
	// verdict handler, so its Close is an idempotent backstop.
	if s.monitor != nil {
		s.monitor.Close()
	}
	s.fabric.Close()

	rejoinStart := s.tracer.Now()
	deadline := time.Now().Add(s.el.RejoinWindow)
	var out *elastic.Outcome
	var addrs []string
	var err error
	if s.rank == 0 {
		out, addrs, err = s.rejoinCoordinate(dead.Rank, local, deadline)
	} else {
		out, addrs, err = s.rejoinDial(local, deadline)
	}
	if err != nil {
		return nil, err
	}
	s.fabric = out.Fabric
	s.monitor = out.Monitor
	s.generation = out.Generation
	s.peers = addrs
	s.tracer.Record(s.rank, obs.PhaseControl, "rejoin", dead.Rank, 0, rejoinStart, s.tracer.Now()-rejoinStart)
	return out, nil
}

// rejoinCoordinate runs rank 0's side of a rejoin round.
func (s *Session) rejoinCoordinate(deadRank int, local elastic.LocalState, deadline time.Time) (*elastic.Outcome, []string, error) {
	ln, err := net.Listen("tcp", s.rendAddr)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: reopen rendezvous %s: %w", s.rendAddr, err)
	}
	defer ln.Close()

	steps := make([]int64, s.world)
	steps[0] = local.Step
	addrs := make([]string, s.world)
	rendConns := make([]net.Conn, s.world)
	defer func() {
		for _, conn := range rendConns {
			if conn != nil {
				conn.Close()
			}
		}
	}()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for joined := 1; joined < s.world; {
		conn, err := ln.Accept()
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: rejoin accept (have %d of %d ranks): %w",
				joined, s.world, err)
		}
		conn.SetDeadline(graceDeadline(deadline))
		h, err := readHello(conn)
		conn.SetDeadline(deadline)
		if err != nil {
			// Strays are dropped exactly as during the original
			// rendezvous; the window still bounds the wait.
			writeReject(conn, 0, err.Error())
			conn.Close()
			continue
		}
		if err := s.checkRejoinHello(h, deadRank); err != nil {
			// Unlike the fresh rendezvous — where a conflicting hello is
			// one of your own ranks misconfigured and the only honest
			// move is to fail — the rejoin barrier exists to ride out
			// chaos: a wrong-world stray, an old build, a hello for an
			// impossible slot must not kill a repair the window still
			// has time to complete. Reject the connection, keep the
			// barrier open.
			writeReject(conn, h.Version, err.Error())
			conn.Close()
			continue
		}
		if rendConns[h.Rank] != nil {
			// A slot claimed twice: the newest connection wins. The
			// stale one is a replacement (or survivor) that crashed or
			// lost its link after its hello — its supervisor relaunched
			// it, and holding the dead connection would just burn the
			// window.
			rendConns[h.Rank].Close()
			joined--
		}
		rendConns[h.Rank] = conn
		steps[h.Rank] = h.Step
		addrs[h.Rank] = h.MeshAddr
		joined++
	}

	meshRef := ln.Addr()
	for _, conn := range rendConns {
		if conn != nil {
			meshRef = conn.LocalAddr()
			break
		}
	}
	meshLn, err := listenMesh(meshRef)
	if err != nil {
		return nil, nil, err
	}
	defer meshLn.Close()
	addrs[0] = meshLn.Addr().String()

	wel := welcome{
		Codec:             s.policyName,
		Addrs:             addrs,
		HeartbeatInterval: s.hb.Interval,
		HeartbeatTimeout:  s.hb.Timeout,
		Generation:        s.generation + 1,
		RejoinWindow:      s.el.RejoinWindow,
		Steps:             steps,
	}
	for rank := 1; rank < s.world; rank++ {
		if err := writeWelcome(rendConns[rank], wel); err != nil {
			return nil, nil, fmt.Errorf("cluster: rejoin welcome rank %d: %w", rank, err)
		}
	}

	conns := make([]net.Conn, s.world)
	ctrl := make([]net.Conn, s.world) // elastic sessions imply the health plane
	if err := acceptMeshLinks(meshLn, 0, s.world, deadline, conns, ctrl); err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, nil, err
	}
	out, err := finishRejoin(0, s.world, conns, ctrl, s.hb, wel.Generation, steps, local)
	return out, addrs, err
}

// checkRejoinHello validates one hello against an open rejoin barrier.
func (s *Session) checkRejoinHello(h hello, deadRank int) error {
	if h.Version != ProtocolVersion {
		return fmt.Errorf("cluster: rank %d speaks rendezvous protocol version %d, this build speaks %d (elastic rejoin needs matching builds)",
			h.Rank, h.Version, ProtocolVersion)
	}
	if !h.Rejoin {
		return fmt.Errorf("cluster: rank %d sent a fresh hello to a rejoin barrier; a running session lost rank %d and only takes rejoins", h.Rank, deadRank)
	}
	if h.World != s.world {
		return fmt.Errorf("cluster: rank %d expects a world of %d, the session has %d", h.Rank, h.World, s.world)
	}
	if h.Rank <= 0 || h.Rank >= s.world {
		return fmt.Errorf("cluster: rejoin hello claims rank %d outside (0, %d)", h.Rank, s.world)
	}
	if h.MeshAddr == "" {
		return fmt.Errorf("cluster: rank %d advertises no mesh address", h.Rank)
	}
	if h.Rank == deadRank {
		// The replacement never negotiated: it must accept the policy
		// the session already trains under, or it could not decode a
		// single frame.
		if err := acceptsPolicy(h.Accept, s.policyName); err != nil {
			return fmt.Errorf("cluster: replacement for rank %d: %w", deadRank, err)
		}
	} else if h.Step < 0 {
		return fmt.Errorf("cluster: surviving rank %d claims no training state (step %d)", h.Rank, h.Step)
	}
	return nil
}

// acceptsPolicy reports whether an advertised accept set contains the
// session policy by canonical spelling. The Floor is always implicitly
// accepted, exactly as during negotiation.
func acceptsPolicy(accepts []string, policyName string) error {
	if policyName == Floor {
		return nil
	}
	for _, name := range accepts {
		p, err := quant.ParsePolicy(name)
		if err != nil {
			return err
		}
		if p.Name() == policyName {
			return nil
		}
	}
	return fmt.Errorf("does not accept the session policy %q", policyName)
}

// rejoinDial runs a surviving worker's side of a rejoin round.
func (s *Session) rejoinDial(local elastic.LocalState, deadline time.Time) (*elastic.Outcome, []string, error) {
	wel, conns, ctrl, err := rejoinHandshake(s.rendAddr, s.rank, s.world, s.accepts, local.Step, deadline)
	if err != nil {
		return nil, nil, err
	}
	out, err := finishRejoin(s.rank, s.world, conns, ctrl, s.hb, wel.Generation, wel.Steps, local)
	return out, wel.Addrs, err
}

// rejoinHandshake dials the coordinator's reopened rendezvous, claims a
// slot with a rejoin hello, and establishes this rank's share of the
// new mesh. step is the caller's completed step count (-1 for a
// replacement without state). The coordinator may come up after the
// caller — survivors race out of their aborts — so the dial retries
// until the deadline.
func rejoinHandshake(addr string, rank, world int, accepts []string, step int64, deadline time.Time) (welcome, []net.Conn, []net.Conn, error) {
	var wel welcome
	conn, err := dialCoordinator(addr, deadline)
	if err != nil {
		return wel, nil, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(deadline)

	meshLn, err := listenMesh(conn.LocalAddr())
	if err != nil {
		return wel, nil, nil, err
	}
	defer meshLn.Close()

	err = writeHello(conn, hello{
		Rank:     rank,
		World:    world,
		MeshAddr: meshLn.Addr().String(),
		Accept:   accepts,
		Rejoin:   true,
		Step:     step,
	})
	if err != nil {
		return wel, nil, nil, fmt.Errorf("cluster: send rejoin hello: %w", err)
	}
	wel, err = readWelcome(conn)
	if err != nil {
		return wel, nil, nil, err
	}
	if len(wel.Addrs) != world {
		return wel, nil, nil, fmt.Errorf("cluster: rejoin membership table has %d ranks, want %d", len(wel.Addrs), world)
	}
	if len(wel.Steps) != world {
		return wel, nil, nil, fmt.Errorf("cluster: rejoin welcome carries no step table")
	}
	if wel.HeartbeatInterval <= 0 {
		return wel, nil, nil, fmt.Errorf("cluster: rejoin welcome disables the health plane, which elastic sessions require")
	}

	conns := make([]net.Conn, world)
	ctrl := make([]net.Conn, world) // elastic sessions imply the health plane
	if err := establishMeshLinks(meshLn, wel.Addrs, rank, world, deadline, conns, ctrl); err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return wel, nil, nil, err
	}
	return wel, conns, ctrl, nil
}

// finishRejoin stands the new transport plane up over freshly
// handshaken links and runs the state transfer, composing the outcome
// every path (coordinator, survivor, replacement) returns.
func finishRejoin(rank, world int, conns, ctrl []net.Conn, hb health.Config, generation int, steps []int64, local elastic.LocalState) (*elastic.Outcome, error) {
	fabric, monitor, err := establishPlane(rank, world, conns, ctrl, hb)
	if err != nil {
		return nil, err
	}
	installed, err := transferState(fabric, rank, steps, local)
	if err != nil {
		if monitor != nil {
			monitor.Close()
		}
		fabric.Close()
		return nil, err
	}
	resume, _ := resumePoint(steps)
	return &elastic.Outcome{
		Fabric:     fabric,
		Monitor:    monitor,
		Generation: generation,
		ResumeStep: resume,
		Installed:  installed,
	}, nil
}

// resumePoint derives the agreed resume step and the donor from a step
// table: the maximum completed step, donated by the lowest rank that
// holds it. Every rank computes this over the same broadcast table, so
// all agree without another message.
func resumePoint(steps []int64) (resume int64, donor int) {
	donor = -1
	for r, st := range steps {
		if donor < 0 || st > resume {
			resume, donor = st, r
		}
	}
	return resume, donor
}

// transferState moves the donor's snapshot to every rank behind the
// resume point over the new data mesh, and installs a received one
// locally. It returns the snapshot this rank installed (nil for the
// donor and for in-sync survivors).
func transferState(fabric *comm.RemoteFabric, rank int, steps []int64, local elastic.LocalState) (*elastic.Snapshot, error) {
	resume, donor := resumePoint(steps)
	if donor < 0 {
		return nil, fmt.Errorf("cluster: empty step table")
	}
	if rank == donor {
		if local.Snapshot == nil {
			return nil, fmt.Errorf("cluster: rank %d elected donor but supplies no snapshot", rank)
		}
		snap, err := local.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("cluster: donor snapshot: %w", err)
		}
		if snap.Step != resume {
			return nil, fmt.Errorf("cluster: donor snapshot at step %d, resume point is %d", snap.Step, resume)
		}
		var buf bytes.Buffer
		if err := snap.EncodeTo(&buf); err != nil {
			return nil, err
		}
		for r, st := range steps {
			if r == rank || st >= resume {
				continue
			}
			if err := fabric.Send(rank, r, buf.Bytes()); err != nil {
				return nil, fmt.Errorf("cluster: stream snapshot to rank %d: %w", r, err)
			}
		}
		return nil, nil
	}
	if steps[rank] >= resume {
		return nil, nil
	}
	wire, err := fabric.Recv(donor, rank)
	if err != nil {
		return nil, fmt.Errorf("cluster: receive snapshot from donor rank %d: %w", donor, err)
	}
	snap, err := elastic.ReadSnapshot(bytes.NewReader(wire))
	if err != nil {
		return nil, err
	}
	if snap.Step != resume {
		return nil, fmt.Errorf("cluster: snapshot at step %d, resume point is %d", snap.Step, resume)
	}
	if local.Install != nil {
		if err := local.Install(snap); err != nil {
			return nil, fmt.Errorf("cluster: install snapshot: %w", err)
		}
	}
	return snap, nil
}

// Rejoin joins this process into a running elastic session as the
// replacement for a dead rank: it dials the session's rendezvous
// address (retrying while the survivors converge on the rejoin
// barrier), claims cfg.Rank's slot with a step -1 rejoin hello,
// re-establishes the mesh, and receives the session snapshot from the
// donor. The returned session is a full member — future deaths of
// other ranks are repairable through it — and the snapshot is the
// training state to restore before resuming (parallel.Trainer.Restore).
// cfg.Timeout bounds the whole attempt; it should comfortably exceed
// the cluster's failure-detection timeout, since the barrier only opens
// once the survivors reach their verdict.
func Rejoin(cfg Config) (*Session, *elastic.Snapshot, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Rank == 0 {
		return nil, nil, fmt.Errorf("cluster: rank 0 is the coordinator and cannot be replaced")
	}
	rejoinStart := cfg.Tracer.Now()
	deadline := time.Now().Add(cfg.timeout())
	wel, conns, ctrl, err := rejoinHandshake(cfg.Addr, cfg.Rank, cfg.World, cfg.Accept, -1, deadline)
	if err != nil {
		return nil, nil, err
	}
	policy, err := quant.ParsePolicy(wel.Codec)
	if err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, nil, fmt.Errorf("cluster: session policy: %w", err)
	}
	hb := health.Config{
		Interval: wel.HeartbeatInterval,
		Timeout:  wel.HeartbeatTimeout,
		Phi:      cfg.Health.Phi,
	}.Resolved()
	out, err := finishRejoin(cfg.Rank, cfg.World, conns, ctrl, hb, wel.Generation, wel.Steps, elastic.LocalState{Step: -1})
	if err != nil {
		return nil, nil, err
	}
	if out.Installed == nil {
		out.Monitor.Close()
		out.Fabric.Close()
		return nil, nil, fmt.Errorf("cluster: rejoin completed without a state snapshot")
	}
	sess := &Session{
		rank:       cfg.Rank,
		world:      cfg.World,
		policyName: policy.Name(),
		policy:     policy,
		fabric:     out.Fabric,
		monitor:    out.Monitor,
		peers:      wel.Addrs,
		rendAddr:   cfg.Addr,
		hb:         hb,
		el: elastic.Config{
			Enable:       wel.RejoinWindow > 0,
			RejoinWindow: wel.RejoinWindow,
			MaxRejoins:   cfg.Elastic.MaxRejoins,
		}.Resolved(),
		accepts:    append([]string(nil), cfg.Accept...),
		generation: out.Generation,
	}
	sess.tracer = cfg.Tracer
	cfg.Tracer.Record(cfg.Rank, obs.PhaseControl, "rejoin", -1, 0, rejoinStart, cfg.Tracer.Now()-rejoinStart)
	return sess, out.Installed, nil
}
