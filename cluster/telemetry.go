package cluster

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/health"
	"repro/obs"
)

// This file is the aggregation side of the cluster telemetry plane.
// Every rank publishes a health.TelemetrySnapshot over its heartbeat
// links (Monitor.ReportTelemetry); a TelemetryHub — typically on the
// coordinator — collects the local and remote snapshots through one
// Monitor.OnTelemetry attachment and folds them into cluster-level
// series: per-rank step/loss/phase times with staleness, min/mean/max/
// sum across ranks, per-tensor gradient and quantisation-quality
// aggregates, and a bounded loss trend. The hub serves two read-only
// views, mounted on the obs.Serve mux via Endpoints:
//
//	/cluster/metrics  Prometheus text (float-valued gauges)
//	/cluster/status   JSON (the ClusterStatus shape lpsgd-top polls)
//
// The hub is passive: it never writes to the control plane, so
// attaching it cannot perturb training — the inertness argument stays
// with the producers (parallel.Config.TelemetryEvery).

// lossTrendCap bounds the loss-trend ring in ClusterStatus.
const lossTrendCap = 128

// TensorStatus is one tensor's cluster view in a RankStatus.
type TensorStatus struct {
	Name string `json:"name"`
	// GradL2/GradInf are the rank's aggregated-gradient norms.
	GradL2  jsonFloat `json:"grad_l2"`
	GradInf jsonFloat `json:"grad_inf"`
	// RMSE is the live-measured quantisation error for this tensor.
	RMSE jsonFloat `json:"rmse"`
	// Compression is the raw/wire ratio of the tensor's codec.
	Compression jsonFloat `json:"compression"`
}

// RankStatus is one rank's latest snapshot plus staleness, as served
// by /cluster/status.
type RankStatus struct {
	Rank        int            `json:"rank"`
	Step        int64          `json:"step"`
	Loss        jsonFloat      `json:"loss"`
	ComputeNS   int64          `json:"compute_ns"`
	ExchangeNS  int64          `json:"exchange_ns"`
	StalenessMS int64          `json:"staleness_ms"`
	Tensors     []TensorStatus `json:"tensors,omitempty"`
}

// ClusterStatus is the JSON document /cluster/status serves — the
// whole cluster at a glance, the shape cmd/lpsgd-top renders.
type ClusterStatus struct {
	Policy string `json:"policy"`
	// WorldSize is the session's world size; Reporting counts the ranks
	// a snapshot has arrived from.
	WorldSize int `json:"world"`
	Reporting int `json:"reporting"`
	// MinStep/MaxStep bound the per-rank step indices; their gap is the
	// cluster's step skew.
	MinStep int64 `json:"min_step"`
	MaxStep int64 `json:"max_step"`
	// Loss aggregates across reporting ranks.
	MinLoss  jsonFloat `json:"min_loss"`
	MeanLoss jsonFloat `json:"mean_loss"`
	MaxLoss  jsonFloat `json:"max_loss"`
	// Straggler is the reporting rank with the largest step wall time
	// (-1 until snapshots arrive).
	Straggler int `json:"straggler"`
	// LossTrend is a bounded history of the cluster-mean loss, oldest
	// first — the dashboard sparkline.
	LossTrend []jsonFloat  `json:"loss_trend,omitempty"`
	Ranks     []RankStatus `json:"ranks"`
}

// jsonFloat is a float64 that marshals non-finite values as null
// (JSON has no NaN/Inf literals and encoding/json errors on them; a
// diverged loss must degrade to null, not break the status endpoint).
// Unmarshalling null leaves the zero value, so plain decoding works.
type jsonFloat float64

// MarshalJSON implements json.Marshaler.
func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON implements json.Unmarshaler (null → NaN, so a consumer
// can tell "diverged" from a genuine zero).
func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// rankSlot is one rank's latest snapshot inside the hub.
type rankSlot struct {
	known bool
	snap  health.TelemetrySnapshot
	seen  time.Time
}

// trendPoint is one loss-trend sample (cluster-mean loss at a step).
type trendPoint struct {
	step int64
	loss float64
}

// TelemetryHub aggregates per-rank telemetry snapshots into the
// cluster-level series served by /cluster/metrics and /cluster/status.
// All methods are safe for concurrent use.
type TelemetryHub struct {
	world int

	mu     sync.Mutex
	policy string
	ranks  []rankSlot
	trend  []trendPoint
}

// NewTelemetryHub builds a hub for a world of the given size. policy
// is the session's negotiated policy spelling, echoed in the status
// document so dashboards can label the compression columns; pass ""
// and SetPolicy later when the hub is built before the rendezvous
// settles (the worker CLI mounts its endpoints before joining).
func NewTelemetryHub(world int, policy string) *TelemetryHub {
	if world < 1 {
		world = 1
	}
	return &TelemetryHub{world: world, policy: policy, ranks: make([]rankSlot, world)}
}

// SetPolicy stamps the negotiated policy spelling after the fact.
func (h *TelemetryHub) SetPolicy(policy string) {
	h.mu.Lock()
	h.policy = policy
	h.mu.Unlock()
}

// Attach subscribes the hub to a monitor's telemetry stream — local
// ReportTelemetry calls and every peer's received snapshots flow
// through the one OnTelemetry observer.
func (h *TelemetryHub) Attach(m *health.Monitor) {
	if m == nil {
		return
	}
	m.OnTelemetry(func(peer int, s health.TelemetrySnapshot) {
		h.Observe(peer, s)
	})
}

// Observe folds one rank's snapshot into the hub. Out-of-range ranks
// are dropped (a malformed peer must not grow the table).
func (h *TelemetryHub) Observe(rank int, s health.TelemetrySnapshot) {
	if rank < 0 || rank >= h.world {
		return
	}
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ranks[rank] = rankSlot{known: true, snap: s, seen: now}
	// Fold the cluster-mean loss into the trend ring, one point per
	// max-step value: the last point is overwritten while stragglers
	// catch up to the frontier, appended once the frontier moves.
	var sum float64
	var n int
	maxStep := int64(0)
	for i := range h.ranks {
		if !h.ranks[i].known {
			continue
		}
		sum += h.ranks[i].snap.Loss
		n++
		if h.ranks[i].snap.Step > maxStep {
			maxStep = h.ranks[i].snap.Step
		}
	}
	if n == 0 {
		return
	}
	p := trendPoint{step: maxStep, loss: sum / float64(n)}
	if len(h.trend) > 0 && h.trend[len(h.trend)-1].step == maxStep {
		h.trend[len(h.trend)-1] = p
		return
	}
	h.trend = append(h.trend, p)
	if len(h.trend) > lossTrendCap {
		h.trend = h.trend[1:]
	}
}

// Status assembles the current cluster view.
func (h *TelemetryHub) Status() ClusterStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	st := ClusterStatus{
		Policy:    h.policy,
		WorldSize: h.world,
		Straggler: -1,
		MinLoss:   jsonFloat(math.NaN()),
		MeanLoss:  jsonFloat(math.NaN()),
		MaxLoss:   jsonFloat(math.NaN()),
	}
	var lossSum float64
	var slowest time.Duration
	first := true
	for r := range h.ranks {
		slot := &h.ranks[r]
		if !slot.known {
			continue
		}
		s := slot.snap
		rs := RankStatus{
			Rank:        r,
			Step:        s.Step,
			Loss:        jsonFloat(s.Loss),
			ComputeNS:   s.Compute.Nanoseconds(),
			ExchangeNS:  s.Exchange.Nanoseconds(),
			StalenessMS: now.Sub(slot.seen).Milliseconds(),
		}
		for _, t := range s.Tensors {
			rs.Tensors = append(rs.Tensors, TensorStatus{
				Name: t.Name, GradL2: jsonFloat(t.GradL2), GradInf: jsonFloat(t.GradInf),
				RMSE: jsonFloat(t.RMSE), Compression: jsonFloat(t.Compression),
			})
		}
		st.Ranks = append(st.Ranks, rs)
		st.Reporting++
		lossSum += s.Loss
		if first || s.Step < st.MinStep {
			st.MinStep = s.Step
		}
		if s.Step > st.MaxStep {
			st.MaxStep = s.Step
		}
		if first || s.Loss < float64(st.MinLoss) {
			st.MinLoss = jsonFloat(s.Loss)
		}
		if first || s.Loss > float64(st.MaxLoss) {
			st.MaxLoss = jsonFloat(s.Loss)
		}
		if total := s.Compute + s.Exchange; total > slowest {
			slowest, st.Straggler = total, r
		}
		first = false
	}
	if st.Reporting > 0 {
		st.MeanLoss = jsonFloat(lossSum / float64(st.Reporting))
	}
	for _, p := range h.trend {
		st.LossTrend = append(st.LossTrend, jsonFloat(p.loss))
	}
	return st
}

// aggregate is one min/mean/max/sum fold across ranks.
type aggregate struct {
	min, max, sum float64
	n             int
}

func (a *aggregate) add(v float64) {
	if a.n == 0 || v < a.min {
		a.min = v
	}
	if a.n == 0 || v > a.max {
		a.max = v
	}
	a.sum += v
	a.n++
}

func (a *aggregate) mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// appendFloatSample renders one name{labels} value line, Prometheus
// text form, float-valued (the obs registry is int64-only by design —
// the hub's losses and norms need the full float range, so it renders
// its own exposition).
func appendFloatSample(b []byte, name, labels string, v float64) []byte {
	b = append(b, name...)
	b = append(b, labels...)
	b = append(b, ' ')
	switch {
	case math.IsNaN(v):
		b = append(b, "NaN"...)
	case math.IsInf(v, 1):
		b = append(b, "+Inf"...)
	case math.IsInf(v, -1):
		b = append(b, "-Inf"...)
	default:
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
	}
	return append(b, '\n')
}

func appendAgg(b []byte, name, tensorLabel string, a *aggregate) []byte {
	if a.n == 0 {
		return b
	}
	for _, agg := range [...]struct {
		key string
		v   float64
	}{{"min", a.min}, {"mean", a.mean()}, {"max", a.max}, {"sum", a.sum}} {
		label := `{agg="` + agg.key + `"}`
		if tensorLabel != "" {
			label = `{tensor="` + tensorLabel + `",agg="` + agg.key + `"}`
		}
		b = appendFloatSample(b, name, label, agg.v)
	}
	return b
}

// WriteMetrics renders the cluster aggregates as Prometheus text:
// per-rank gauges (step, loss, phase seconds, staleness), cluster
// aggregates (min/mean/max/sum across reporting ranks) and per-tensor
// gradient/quantisation series.
func (h *TelemetryHub) WriteMetrics(w io.Writer) error {
	st := h.Status()
	var b []byte
	b = appendFloatSample(b, "lpsgd_cluster_world", "", float64(st.WorldSize))
	b = appendFloatSample(b, "lpsgd_cluster_ranks_reporting", "", float64(st.Reporting))
	b = appendFloatSample(b, "lpsgd_cluster_straggler_rank", "", float64(st.Straggler))

	var loss, step aggregate
	type tensorAgg struct {
		l2, inf, rmse, comp aggregate
	}
	tensors := map[string]*tensorAgg{}
	var names []string
	for _, rs := range st.Ranks {
		rank := strconv.Itoa(rs.Rank)
		b = appendFloatSample(b, "lpsgd_cluster_rank_step", `{rank="`+rank+`"}`, float64(rs.Step))
		b = appendFloatSample(b, "lpsgd_cluster_rank_loss", `{rank="`+rank+`"}`, float64(rs.Loss))
		b = appendFloatSample(b, "lpsgd_cluster_rank_compute_seconds", `{rank="`+rank+`"}`, time.Duration(rs.ComputeNS).Seconds())
		b = appendFloatSample(b, "lpsgd_cluster_rank_exchange_seconds", `{rank="`+rank+`"}`, time.Duration(rs.ExchangeNS).Seconds())
		b = appendFloatSample(b, "lpsgd_cluster_rank_staleness_seconds", `{rank="`+rank+`"}`, float64(rs.StalenessMS)/1e3)
		loss.add(float64(rs.Loss))
		step.add(float64(rs.Step))
		for _, t := range rs.Tensors {
			ta := tensors[t.Name]
			if ta == nil {
				ta = &tensorAgg{}
				tensors[t.Name] = ta
				names = append(names, t.Name)
			}
			ta.l2.add(float64(t.GradL2))
			ta.inf.add(float64(t.GradInf))
			ta.rmse.add(float64(t.RMSE))
			ta.comp.add(float64(t.Compression))
		}
	}
	b = appendAgg(b, "lpsgd_cluster_step", "", &step)
	b = appendAgg(b, "lpsgd_cluster_loss", "", &loss)
	sort.Strings(names)
	for _, name := range names {
		ta := tensors[name]
		b = appendAgg(b, "lpsgd_cluster_grad_l2", name, &ta.l2)
		b = appendAgg(b, "lpsgd_cluster_grad_inf", name, &ta.inf)
		b = appendAgg(b, "lpsgd_cluster_quant_rmse", name, &ta.rmse)
		b = appendAgg(b, "lpsgd_cluster_compression", name, &ta.comp)
	}
	_, err := w.Write(b)
	return err
}

// MetricsHandler serves WriteMetrics over HTTP.
func (h *TelemetryHub) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A broken scrape socket has nothing to report to.
		h.WriteMetrics(w)
	})
}

// StatusHandler serves the ClusterStatus JSON over HTTP.
func (h *TelemetryHub) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		// A broken scrape socket has nothing to report to.
		enc.Encode(h.Status())
	})
}

// Endpoints returns the hub's obs.Serve mounts: /cluster/metrics and
// /cluster/status.
func (h *TelemetryHub) Endpoints() []obs.Endpoint {
	return []obs.Endpoint{
		{Pattern: "/cluster/metrics", Handler: h.MetricsHandler()},
		{Pattern: "/cluster/status", Handler: h.StatusHandler()},
	}
}
