// Package cluster is the multi-process runtime of the reproduction: it
// turns N independent OS processes — one per worker, possibly on
// different machines — into the K-peer mesh the aggregation primitives
// in repro/comm run over. PR 1's self-describing framed wire format
// means TCP peers can decode gradients with no shared configuration;
// this package supplies the remaining pieces, rendezvous and
// capability exchange:
//
//   - Rank 0 (the coordinator) listens on a well-known address; every
//     other rank dials in and sends a versioned hello carrying its
//     rank, the world size it expects, the address of its own mesh
//     listener, and the precision policy strings it accepts
//     (quant.ParsePolicy grammar — bare codec names included).
//   - The coordinator validates the hellos (protocol version, rank
//     uniqueness, world agreement, parseable policy strings),
//     negotiates the session policy — the cheapest policy every peer
//     accepts by canonical spelling, with "32bit" as the floor (see
//     Negotiate) — and broadcasts the membership table.
//   - Every pair of ranks then establishes its duplex TCP link (the
//     higher rank dials the lower rank's mesh listener), and each
//     process wraps its local connection ends into a comm.RemoteFabric
//     — the same single-rank Transport that comm.TCPFabric builds K of
//     on loopback, so the trainer code cannot tell a simulated mesh
//     from a deployed one.
//
// The result is a Session: rank, world size, negotiated policy and a
// ready Transport. repro/lpsgd exposes it as
// lpsgd.WithCluster(addr, rank, world), and cmd/lpsgd-worker is the
// process you actually launch.
package cluster

import (
	"fmt"
	"net"
	"time"

	"repro/comm"
	"repro/elastic"
	"repro/health"
	"repro/obs"
	"repro/quant"
)

// Config describes one rank's view of a rendezvous.
type Config struct {
	// Addr is the coordinator's rendezvous address. Rank 0 listens on
	// it; every other rank dials it.
	Addr string
	// Rank is this process's rank in [0, World).
	Rank int
	// World is the total number of worker processes.
	World int
	// Accept lists the precision policy strings (quant.ParsePolicy
	// grammar; bare codec names are valid policies) this rank is
	// willing to train under. The Floor policy "32bit" is always
	// implicitly accepted. Empty means floor-only.
	Accept []string
	// Timeout bounds every handshake step (default 30s). It does not
	// apply to the training traffic that follows.
	Timeout time.Duration
	// Health tunes the session's health plane (heartbeat interval,
	// failure-detection timeout, phi threshold — see repro/health). The
	// coordinator's values govern the whole session: they are broadcast
	// in the welcome so every rank runs identical detection settings,
	// and they decide whether the per-peer control links are
	// established at all (Health.Disable). A worker's own Interval,
	// Timeout and Disable are therefore ignored; its Phi applies to its
	// local detectors.
	Health health.Config
	// Elastic tunes elastic sessions (see repro/elastic): whether a
	// peer-death verdict opens a rejoin barrier instead of staying
	// fatal, and how long that barrier holds for a replacement. Like
	// the health plane, the coordinator's values govern the whole
	// session — the welcome broadcasts the rejoin window, and a zero
	// window means elasticity is off. Requires the health plane: the
	// failure detector's verdict is the rejoin trigger.
	Elastic elastic.Config
	// Tracer, when set, records the session's control-plane events —
	// rendezvous and rejoin rounds — as obs.PhaseControl spans. Nil
	// (the default) is fully inert.
	Tracer *obs.Tracer
}

const defaultTimeout = 30 * time.Second

// handshakeGrace is the per-connection budget for the first message of
// an untrusted connection (a hello on the rendezvous port, a preamble
// on a mesh port). Real peers write it immediately after dialling; a
// silent stray — a port scanner, a health probe — must not hold the
// serialized accept loop for the whole rendezvous deadline and starve
// the real ranks waiting in the listen backlog. A variable so tests
// can shrink it.
var handshakeGrace = 5 * time.Second

// graceDeadline returns the nearer of the overall deadline and one
// handshake grace from now.
func graceDeadline(deadline time.Time) time.Time {
	if g := time.Now().Add(handshakeGrace); g.Before(deadline) {
		return g
	}
	return deadline
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return defaultTimeout
}

func (c Config) validate() error {
	if c.World <= 0 {
		return fmt.Errorf("cluster: world size must be positive, got %d", c.World)
	}
	if c.Rank < 0 || c.Rank >= c.World {
		return fmt.Errorf("cluster: rank %d outside world of %d", c.Rank, c.World)
	}
	if c.Addr == "" {
		return fmt.Errorf("cluster: rendezvous address is required")
	}
	for _, name := range c.Accept {
		if _, err := quant.ParsePolicy(name); err != nil {
			return fmt.Errorf("cluster: accepted policy: %w", err)
		}
	}
	if c.Rank == 0 && c.Elastic.Enable && c.Health.Resolved().Disable {
		return fmt.Errorf("cluster: elastic sessions need the health plane (the failure detector's verdict triggers the rejoin); enable heartbeats or disable elasticity")
	}
	return nil
}

// Session is one rank's membership in a running cluster: its identity,
// the precision policy the rendezvous negotiated, and the established
// mesh. When the coordinator enabled elastic sessions, the session is
// also the rank's elastic.Rejoiner: after a peer-death verdict, Rejoin
// re-runs the rendezvous (ProtocolVersion 4 rejoin hellos) against the
// same coordinator address, rebuilds the mesh and health plane in
// place, and brokers the state transfer that lets a replacement take
// the dead rank's slot.
type Session struct {
	rank, world int
	policyName  string
	policy      *quant.Policy
	fabric      *comm.RemoteFabric
	monitor     *health.Monitor
	peers       []string

	// Rejoin context: the resolved rendezvous address every rank can
	// re-dial (rank 0 re-listens on it), the session's resolved health
	// and elastic settings, the advertised accept set, and the
	// completed rejoin-round count. fabric/monitor/peers/generation are
	// replaced by Rejoin, which runs on the rank's training goroutine;
	// the accessors are not synchronised against it.
	rendAddr   string
	hb         health.Config
	el         elastic.Config
	accepts    []string
	generation int
	tracer     *obs.Tracer
}

// Rank returns this process's rank.
func (s *Session) Rank() int { return s.rank }

// World returns the number of worker processes.
func (s *Session) World() int { return s.world }

// PolicyName returns the negotiated policy's canonical spelling.
func (s *Session) PolicyName() string { return s.policyName }

// Policy returns the negotiated precision policy.
func (s *Session) Policy() *quant.Policy { return s.policy }

// CodecName returns the negotiated policy's canonical spelling.
//
// Deprecated: sessions negotiate whole policies now; use PolicyName.
func (s *Session) CodecName() string { return s.policyName }

// Codec returns the negotiated policy's base codec.
//
// Deprecated: the base codec alone loses the policy's exemption target
// and per-tensor rules; use Policy.
func (s *Session) Codec() quant.Codec { return s.policy.Base }

// Fabric returns the established mesh transport. The session owns it;
// Close tears it down.
func (s *Session) Fabric() *comm.RemoteFabric { return s.fabric }

// Monitor returns the session's health monitor, or nil when the
// coordinator disabled the health plane. The rendezvous has already
// wired the monitor's verdict into Fabric().Abort, so a peer death
// unblocks every in-flight exchange with health.ErrPeerDead;
// additional handlers can be registered with Monitor().OnVerdict.
func (s *Session) Monitor() *health.Monitor { return s.monitor }

// Peers returns the mesh addresses of all ranks (index = rank).
func (s *Session) Peers() []string { return append([]string(nil), s.peers...) }

// Elastic returns the session's resolved elastic configuration — the
// coordinator-governed settings the welcome broadcast. Enable is false
// when the coordinator left elasticity off.
func (s *Session) Elastic() elastic.Config { return s.el }

// Generation counts the rejoin rounds this session has completed: 0
// until a death verdict is repaired, then one more per repair.
func (s *Session) Generation() int { return s.generation }

// Close tears the session down: the health plane first — its parting
// bye tells every peer this is a departure, not a death — then the
// mesh. Peers blocked in Recv observe the link loss as an error on
// their side.
func (s *Session) Close() error {
	if s.monitor != nil {
		s.monitor.Close()
	}
	return s.fabric.Close()
}

// Join performs the rendezvous for one rank and blocks until the whole
// mesh is established. Rank 0 listens on cfg.Addr and coordinates;
// every other rank dials it. For rank 0 with a ":0" address, use
// NewCoordinator first to learn the bound address before spawning the
// other ranks.
func Join(cfg Config) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank == 0 {
		coord, err := NewCoordinator(cfg)
		if err != nil {
			return nil, err
		}
		return coord.Join()
	}
	return joinWorker(cfg)
}

// Coordinator owns the rendezvous listener of rank 0 between "start
// listening" and "everyone joined" — the window a launcher needs to
// learn the bound address (Addr) and spawn the other ranks.
type Coordinator struct {
	cfg Config
	ln  net.Listener
}

// NewCoordinator validates the configuration (which must be rank 0) and
// starts listening on cfg.Addr immediately, so workers spawned after it
// returns can never hit connection-refused.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Rank != 0 {
		return nil, fmt.Errorf("cluster: the coordinator is rank 0, got rank %d", cfg.Rank)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: rendezvous listen: %w", err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound rendezvous address — pass it to the other
// ranks when cfg.Addr used port 0.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close abandons a rendezvous before Join.
func (c *Coordinator) Close() error { return c.ln.Close() }

// Join runs the coordinator's side of the rendezvous: collect one
// hello per rank, negotiate the codec, broadcast the membership table,
// establish the mesh, and return rank 0's session. The rendezvous
// listener is closed when Join returns, successfully or not; training
// traffic flows over the mesh links only.
func (c *Coordinator) Join() (*Session, error) {
	defer c.ln.Close()
	cfg := c.cfg
	rendStart := cfg.Tracer.Now()
	deadline := time.Now().Add(cfg.timeout())

	accepts := make([][]string, cfg.World)
	addrs := make([]string, cfg.World)
	accepts[0] = cfg.Accept

	// Phase 1: collect one hello per rank. A malformed or conflicting
	// hello aborts the whole rendezvous — a cluster that cannot agree on
	// its own membership must not train — but the offender is told why.
	rendConns := make([]net.Conn, cfg.World)
	defer func() {
		for _, conn := range rendConns {
			if conn != nil {
				conn.Close()
			}
		}
	}()
	if tl, ok := c.ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for joined := 1; joined < cfg.World; {
		conn, err := c.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("cluster: rendezvous accept (have %d of %d ranks): %w",
				joined, cfg.World, err)
		}
		conn.SetDeadline(graceDeadline(deadline))
		h, err := readHello(conn)
		conn.SetDeadline(deadline) // the welcome write gets the full window
		if err != nil {
			// Garbage on the port — a scanner, a liveness probe, a
			// disconnect — is not a cluster member failing; drop it and
			// keep accepting until the deadline.
			writeReject(conn, 0, err.Error())
			conn.Close()
			continue
		}
		// A well-formed hello that conflicts with the cluster's own
		// configuration (wrong protocol version, wrong world, duplicate
		// or out-of-range rank, unusable codec) is a real
		// misconfiguration: a cluster that cannot agree on its own
		// membership must not train. The reject is written at the
		// offender's own version so an old build can display it.
		if err := c.checkHello(h, rendConns); err != nil {
			writeReject(conn, h.Version, err.Error())
			conn.Close()
			return nil, fmt.Errorf("cluster: rejected hello: %w", err)
		}
		rendConns[h.Rank] = conn
		accepts[h.Rank] = h.Accept
		addrs[h.Rank] = h.MeshAddr
		joined++
	}

	// The coordinator's mesh listener binds the interface the workers
	// actually reached it through (the local end of any rendezvous
	// connection), so the advertised address stays routable even when
	// the rendezvous listener is bound to a wildcard like ":7070".
	meshRef := c.ln.Addr()
	for _, conn := range rendConns {
		if conn != nil {
			meshRef = conn.LocalAddr()
			break
		}
	}
	meshLn, err := listenMesh(meshRef)
	if err != nil {
		return nil, err
	}
	defer meshLn.Close()
	addrs[0] = meshLn.Addr().String()

	// Phase 2: negotiate the session policy over every rank's accepted
	// set, the coordinator's own included.
	policyName, err := Negotiate(accepts...)
	if err != nil {
		for _, conn := range rendConns {
			if conn != nil {
				writeReject(conn, 0, err.Error())
			}
		}
		return nil, err
	}

	// Phase 3: broadcast the membership table, with the session's
	// health-plane and elastic parameters — the coordinator's word is
	// what makes every rank run the same detection settings, establish
	// (or skip) the control links in agreement, and hold (or not) a
	// rejoin barrier after a death verdict.
	hb := cfg.Health.Resolved()
	el := cfg.Elastic.Resolved()
	wel := welcome{Codec: policyName, Addrs: addrs}
	if !hb.Disable {
		wel.HeartbeatInterval = hb.Interval
		wel.HeartbeatTimeout = hb.Timeout
	}
	if el.Enable {
		wel.RejoinWindow = el.RejoinWindow
	}
	for rank := 1; rank < cfg.World; rank++ {
		if err := writeWelcome(rendConns[rank], wel); err != nil {
			return nil, fmt.Errorf("cluster: welcome rank %d: %w", rank, err)
		}
	}

	// Phase 4: establish the mesh. Rank 0 is the lowest rank, so it
	// only accepts: one data link — plus one control link when the
	// health plane is on — from every other rank.
	conns := make([]net.Conn, cfg.World)
	var ctrl []net.Conn
	if !hb.Disable {
		ctrl = make([]net.Conn, cfg.World)
	}
	if err := acceptMeshLinks(meshLn, 0, cfg.World, deadline, conns, ctrl); err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, err
	}
	sess, err := newSession(cfg, policyName, addrs, conns, ctrl, hb, el, c.ln.Addr().String())
	if err == nil {
		cfg.Tracer.Record(cfg.Rank, obs.PhaseControl, "rendezvous", -1, 0, rendStart, cfg.Tracer.Now()-rendStart)
	}
	return sess, err
}

// checkHello validates one worker's hello against the coordinator's
// configuration and the ranks already joined.
func (c *Coordinator) checkHello(h hello, rendConns []net.Conn) error {
	if h.Version != ProtocolVersion {
		return fmt.Errorf("cluster: rank %d speaks rendezvous protocol version %d, this build speaks %d (the health plane needs matching builds)",
			h.Rank, h.Version, ProtocolVersion)
	}
	if h.Rejoin {
		return fmt.Errorf("cluster: rank %d sent a rejoin hello, but this rendezvous is forming a fresh session (launch without -rejoin, or point the worker at a session that lost a rank)", h.Rank)
	}
	if h.World != c.cfg.World {
		return fmt.Errorf("cluster: rank %d expects a world of %d, coordinator has %d",
			h.Rank, h.World, c.cfg.World)
	}
	if h.Rank <= 0 || h.Rank >= c.cfg.World {
		return fmt.Errorf("cluster: hello claims rank %d outside (0, %d)", h.Rank, c.cfg.World)
	}
	if rendConns[h.Rank] != nil {
		return fmt.Errorf("cluster: rank %d joined twice", h.Rank)
	}
	if h.MeshAddr == "" {
		return fmt.Errorf("cluster: rank %d advertises no mesh address", h.Rank)
	}
	for _, name := range h.Accept {
		if _, err := quant.ParsePolicy(name); err != nil {
			return fmt.Errorf("cluster: rank %d: %w", h.Rank, err)
		}
	}
	return nil
}

// joinWorker runs the non-coordinator side of the rendezvous.
func joinWorker(cfg Config) (*Session, error) {
	rendStart := cfg.Tracer.Now()
	deadline := time.Now().Add(cfg.timeout())
	conn, err := dialCoordinator(cfg.Addr, deadline)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(deadline)

	// The mesh listener binds the interface this host reaches the
	// coordinator through, so the advertised address is routable for
	// every peer that can also reach the coordinator.
	meshLn, err := listenMesh(conn.LocalAddr())
	if err != nil {
		return nil, err
	}
	defer meshLn.Close()

	err = writeHello(conn, hello{
		Rank:     cfg.Rank,
		World:    cfg.World,
		MeshAddr: meshLn.Addr().String(),
		Accept:   cfg.Accept,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: send hello: %w", err)
	}
	wel, err := readWelcome(conn)
	if err != nil {
		return nil, err
	}
	if len(wel.Addrs) != cfg.World {
		return nil, fmt.Errorf("cluster: membership table has %d ranks, want %d",
			len(wel.Addrs), cfg.World)
	}
	// The coordinator's welcome fixes the session's heartbeat and
	// elastic settings; only the worker's phi threshold and rejoin
	// budget stay local. A zero interval means the coordinator turned
	// the health plane off; a zero rejoin window, elasticity.
	hb := health.Config{
		Interval: wel.HeartbeatInterval,
		Timeout:  wel.HeartbeatTimeout,
		Phi:      cfg.Health.Phi,
		Disable:  wel.HeartbeatInterval <= 0,
	}.Resolved()
	el := elastic.Config{
		Enable:       wel.RejoinWindow > 0,
		RejoinWindow: wel.RejoinWindow,
		MaxRejoins:   cfg.Elastic.MaxRejoins,
	}.Resolved()

	// Mesh: dial every lower rank — the data link, then the control
	// link when the health plane is on — and accept from every higher
	// rank.
	conns := make([]net.Conn, cfg.World)
	var ctrl []net.Conn
	if !hb.Disable {
		ctrl = make([]net.Conn, cfg.World)
	}
	if err := establishMeshLinks(meshLn, wel.Addrs, cfg.Rank, cfg.World, deadline, conns, ctrl); err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, err
	}
	sess, err := newSession(cfg, wel.Codec, wel.Addrs, conns, ctrl, hb, el, cfg.Addr)
	if err == nil {
		cfg.Tracer.Record(cfg.Rank, obs.PhaseControl, "rendezvous", -1, 0, rendStart, cfg.Tracer.Now()-rendStart)
	}
	return sess, err
}

// establishMeshLinks builds one rank's full share of the mesh: it
// dials every lower rank — the data link, plus the control link when
// ctrl is non-nil — and then accepts the links every higher rank dials
// in, filling conns (and ctrl) completely. The caller owns the slices
// and closes any partially established links on error. Both the fresh
// rendezvous and the rejoin barrier establish their meshes through
// this one sequence, so link-establishment fixes cannot diverge
// between the two paths.
func establishMeshLinks(ln net.Listener, addrs []string, rank, world int, deadline time.Time, conns, ctrl []net.Conn) error {
	for p := 0; p < rank; p++ {
		pc, err := dialMeshLink(addrs[p], rank, p, linkData, deadline)
		if err != nil {
			return err
		}
		conns[p] = pc
		if ctrl != nil {
			cc, err := dialMeshLink(addrs[p], rank, p, linkControl, deadline)
			if err != nil {
				return err
			}
			ctrl[p] = cc
		}
	}
	return acceptMeshLinks(ln, rank, world, deadline, conns, ctrl)
}

// dialMeshLink opens one mesh connection of the given kind to a lower
// rank and writes its preamble.
func dialMeshLink(addr string, from, to int, kind byte, deadline time.Time) (net.Conn, error) {
	pc, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, fmt.Errorf("cluster: dial rank %d at %s: %w", to, addr, err)
	}
	pc.SetDeadline(deadline)
	if err := writeMeshPreamble(pc, from, to, kind); err != nil {
		pc.Close()
		return nil, fmt.Errorf("cluster: mesh preamble to rank %d: %w", to, err)
	}
	return pc, nil
}

// dialCoordinator dials the rendezvous address, retrying until the
// deadline: ranks are launched independently (shell jobs, init
// systems, schedulers), so workers routinely come up before the
// coordinator listens and a connection-refused must mean "not yet",
// not "never".
func dialCoordinator(addr string, deadline time.Time) (net.Conn, error) {
	const retryEvery = 100 * time.Millisecond
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, lastErr)
		}
		conn, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(min(retryEvery, time.Until(deadline)))
	}
}

// acceptMeshLinks accepts mesh connections on ln until every expected
// link has arrived — one data link per higher rank, plus one control
// link when ctrl is non-nil (the health plane is on) — and slots the
// connections by originating rank and preamble kind. Strays — bad
// preambles, duplicate or impossible claims, control links on a
// data-only session — are dropped, not fatal: an ephemeral mesh port
// is as exposed to scanners as the rendezvous port, and the deadline
// still bounds the wait for the real peers.
func acceptMeshLinks(ln net.Listener, local, world int, deadline time.Time, conns, ctrl []net.Conn) error {
	need := world - 1 - local
	if ctrl != nil {
		need *= 2
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for have := 0; have < need; {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: rank %d mesh accept (have %d of %d links): %w",
				local, have, need, err)
		}
		conn.SetDeadline(graceDeadline(deadline))
		from, to, kind, err := readMeshPreamble(conn)
		if err != nil || to != local || from <= local || from >= world {
			conn.Close()
			continue
		}
		var slot []net.Conn
		switch kind {
		case linkData:
			slot = conns
		case linkControl:
			slot = ctrl
		}
		if slot == nil || slot[from] != nil {
			conn.Close()
			continue
		}
		conn.SetDeadline(deadline)
		slot[from] = conn
		have++
	}
	return nil
}

// newSession finalises a rendezvous: clears the handshake deadlines,
// wraps the data mesh into the local rank's Transport, and — when the
// health plane is on — starts the heartbeat monitor over the control
// links with its verdict wired into the fabric's Abort, so a peer
// death interrupts every in-flight exchange with health.ErrPeerDead.
func newSession(cfg Config, policyName string, addrs []string, conns, ctrl []net.Conn, hb health.Config, el elastic.Config, rendAddr string) (*Session, error) {
	policy, err := quant.ParsePolicy(policyName)
	if err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, fmt.Errorf("cluster: negotiated policy: %w", err)
	}
	fabric, monitor, err := establishPlane(cfg.Rank, cfg.World, conns, ctrl, hb)
	if err != nil {
		return nil, err
	}
	return &Session{
		rank:       cfg.Rank,
		world:      cfg.World,
		policyName: policy.Name(),
		policy:     policy,
		fabric:     fabric,
		monitor:    monitor,
		peers:      addrs,
		rendAddr:   rendAddr,
		hb:         hb,
		el:         el,
		accepts:    append([]string(nil), cfg.Accept...),
		tracer:     cfg.Tracer,
	}, nil
}

// establishPlane turns a freshly handshaken set of mesh connections
// into the running transport plane of one rank: handshake deadlines
// cleared, the data links wrapped into a RemoteFabric, and — when
// control links exist — a started monitor whose verdict aborts the
// fabric. It owns the connections: every error path closes them.
func establishPlane(rank, world int, conns, ctrl []net.Conn, hb health.Config) (*comm.RemoteFabric, *health.Monitor, error) {
	for _, set := range [][]net.Conn{conns, ctrl} {
		for _, conn := range set {
			if conn != nil {
				conn.SetDeadline(time.Time{})
			}
		}
	}
	fabric, err := comm.NewRemoteFabric(rank, world, conns)
	if err != nil {
		closeConns(conns)
		closeConns(ctrl)
		return nil, nil, err
	}
	var monitor *health.Monitor
	if ctrl != nil && world > 1 {
		monitor, err = health.NewMonitor(rank, world, ctrl, hb)
		if err != nil {
			fabric.Close()
			closeConns(ctrl)
			return nil, nil, err
		}
		monitor.OnVerdict(func(verr error) { fabric.Abort(verr) })
		monitor.Start()
	}
	return fabric, monitor, nil
}

// listenMesh opens the per-rank mesh listener on an ephemeral port of
// the host in ref (the interface this rank is reachable through),
// falling back to loopback when ref is unspecified.
func listenMesh(ref net.Addr) (net.Listener, error) {
	host := "127.0.0.1"
	if ta, ok := ref.(*net.TCPAddr); ok && ta != nil && ta.IP != nil && !ta.IP.IsUnspecified() {
		host = ta.IP.String()
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("cluster: mesh listen on %s: %w", host, err)
	}
	return ln, nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}
