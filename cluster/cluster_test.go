package cluster

import (
	"bytes"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/health"
	"repro/quant"
)

// TestNegotiateMatrix covers the advertised-set matrix the issue asks
// for: disjoint, subset, empty, and the 32bit floor.
func TestNegotiateMatrix(t *testing.T) {
	cases := []struct {
		name    string
		accepts [][]string
		want    string
	}{
		{"no peers", nil, "32bit"},
		{"all empty", [][]string{{}, {}}, "32bit"},
		{"one empty", [][]string{{"qsgd4b512"}, {}}, "32bit"},
		{"disjoint", [][]string{{"qsgd4b512"}, {"1bit"}}, "32bit"},
		{"identical", [][]string{{"qsgd4b512"}, {"qsgd4b512"}}, "qsgd4b512"},
		{"subset", [][]string{{"qsgd4b512", "qsgd8b512", "1bit"}, {"qsgd8b512"}}, "qsgd8b512"},
		{"cheapest wins", [][]string{
			{"qsgd8b512", "qsgd2b128", "qsgd16"},
			{"qsgd2b128", "qsgd8b512"},
			{"qsgd16", "qsgd8b512", "qsgd2b128"},
		}, "qsgd2b128"},
		{"floor beats nothing shared", [][]string{{"topk0.01"}, {"qsgd2b128"}}, "32bit"},
		{"explicit 32bit only", [][]string{{"32bit"}, {"32bit"}}, "32bit"},
		// "qsgd4" and "qsgd4b512" are the same codec under the paper's
		// default bucket; canonicalisation must let them intersect.
		{"canonical aliases", [][]string{{"qsgd4"}, {"qsgd4b512"}}, "qsgd4b512"},
		{"fp32 alias", [][]string{{"fp32"}, {"32bit"}}, "32bit"},
		// The floor is chosen even when something pricier is shared: a
		// codec is only worth negotiating if it beats full precision.
		{"sparse cheaper than dense", [][]string{
			{"topk0.001", "qsgd8b512"}, {"topk0.001", "qsgd8b512"}}, "topk0.001"},

		// --- policy sets (overlapping but non-identical schemes) ---

		// A mixed policy and its bare base are different schemes: a peer
		// that never agreed to decode the embedding layer's topk frames
		// must not receive them, so the intersection is empty and the
		// session floors.
		{"policy and bare base do not intersect", [][]string{
			{"qsgd4b512;embedding=topk0.01"}, {"qsgd4b512"}}, "32bit"},
		// Identical mixed policies negotiate like identical codecs.
		{"identical mixed policies", [][]string{
			{"qsgd4b512;embedding=topk0.01"},
			{"qsgd4b512;embedding=topk0.01"}}, "qsgd4b512;embedding=topk0.01"},
		// Overlapping-but-non-identical sets settle on the shared member.
		{"overlapping policy sets", [][]string{
			{"qsgd4b512;*.b=32bit", "qsgd8b512"},
			{"topk0.01", "qsgd8b512"}}, "qsgd8b512"},
		// Policies intersect by canonical spelling: a spelled-out default
		// minfrac, a default bucket and codec aliases inside rules all
		// collapse to the same canonical policy.
		{"canonical policy aliases", [][]string{
			{"qsgd4;minfrac=0.99"}, {"qsgd4b512"}}, "qsgd4b512"},
		{"rule codec aliases", [][]string{
			{"qsgd4b512;emb=fp32"}, {"qsgd4;emb=32bit"}}, "qsgd4b512;emb=32bit"},
		// A rule that sends the (reference) embedding tensor sparse makes
		// the whole policy cheaper than its bare base, so it wins when
		// both are shared.
		{"mixed policy cheaper than base", [][]string{
			{"qsgd4b512;embedding=topk0.001", "qsgd4b512"},
			{"qsgd4b512", "qsgd4b512;embedding=topk0.001"}}, "qsgd4b512;embedding=topk0.001"},
	}
	for _, tc := range cases {
		got, err := Negotiate(tc.accepts...)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: negotiated %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestNegotiateRejectsUnknownCodec(t *testing.T) {
	if _, err := Negotiate([]string{"qsgd4b512"}, []string{"qsgd3"}); err == nil {
		t.Fatal("unparseable advertisement must be an error")
	}
	if _, err := Negotiate([]string{"florp"}); err == nil {
		t.Fatal("unknown codec family must be an error")
	}
	if _, err := Negotiate([]string{"qsgd4b512;;"}); err == nil {
		t.Fatal("malformed policy string must be an error")
	}
	if _, err := Negotiate([]string{"qsgd4b512;emb=florp"}); err == nil {
		t.Fatal("policy with an unknown rule codec must be an error")
	}
}

// TestNegotiatedPolicyAlwaysParses: whatever Negotiate returns must be
// constructible — the session builds its plan from this string.
func TestNegotiatedPolicyAlwaysParses(t *testing.T) {
	for _, sets := range [][][]string{
		{
			{"qsgd4b512", "1bit*64", "topk0.01"},
			{"1bit*64", "qsgd4b512"},
		},
		{
			{"qsgd4b512;embedding=topk0.001;*.b=32bit"},
			{"qsgd4b512;embedding=topk0.001;*.b=32bit", "qsgd8b512"},
		},
	} {
		name, err := Negotiate(sets...)
		if err != nil {
			t.Fatal(err)
		}
		p, err := quant.ParsePolicy(name)
		if err != nil {
			t.Fatalf("negotiated %q does not parse: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("negotiated %q is not canonical (re-names as %q)", name, p.Name())
		}
	}
}

// TestWelcomeRejectsOverlongPolicy: canonicalisation can lengthen a
// policy past the hello's raw 255-byte cap; the welcome writer must
// fail loudly instead of wrapping the length byte and corrupting the
// handshake stream.
func TestWelcomeRejectsOverlongPolicy(t *testing.T) {
	long := strings.Repeat("x", 256)
	var sink bytes.Buffer
	if err := writeWelcome(&sink, welcome{Codec: long}); err == nil {
		t.Fatal("a >255-byte policy string must not be writable as a welcome")
	}
}

// joinAll runs a whole world of ranks as goroutines over loopback and
// returns their sessions.
func joinAll(t *testing.T, world int, accepts [][]string) []*Session {
	t.Helper()
	coord, err := NewCoordinator(Config{
		Addr:    "127.0.0.1:0",
		World:   world,
		Accept:  accepts[0],
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for rank := 1; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sessions[rank], errs[rank] = Join(Config{
				Addr:    coord.Addr(),
				Rank:    rank,
				World:   world,
				Accept:  accepts[rank],
				Timeout: 20 * time.Second,
			})
		}(rank)
	}
	sessions[0], errs[0] = coord.Join()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range sessions {
			s.Close()
		}
	})
	return sessions
}

// TestRendezvousThreeRanks: a full three-rank rendezvous over loopback
// — every rank gets the same negotiated codec and a working mesh.
func TestRendezvousThreeRanks(t *testing.T) {
	sessions := joinAll(t, 3, [][]string{
		{"qsgd4b512", "1bit"},
		{"qsgd4b512", "topk0.01"},
		{"1bit*64", "qsgd4b512"},
	})
	for rank, s := range sessions {
		if s.Rank() != rank || s.World() != 3 {
			t.Fatalf("rank %d session claims rank %d of %d", rank, s.Rank(), s.World())
		}
		if s.CodecName() != "qsgd4b512" {
			t.Fatalf("rank %d negotiated %q, want qsgd4b512", rank, s.CodecName())
		}
		if s.Codec().Name() != "qsgd4b512" {
			t.Fatalf("rank %d codec object is %q", rank, s.Codec().Name())
		}
		if len(s.Peers()) != 3 {
			t.Fatalf("rank %d sees %d peers", rank, len(s.Peers()))
		}
	}
	// Exercise every directed link of the mesh.
	var wg sync.WaitGroup
	failures := make(chan string, 9)
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			if err := sessions[from].Fabric().Send(from, to, []byte{byte(10*from + to)}); err != nil {
				t.Fatalf("send %d->%d: %v", from, to, err)
			}
			wg.Add(1)
			go func(from, to int) {
				defer wg.Done()
				got, err := sessions[to].Fabric().Recv(from, to)
				if err != nil || len(got) != 1 || got[0] != byte(10*from+to) {
					failures <- strings.Join([]string{"bad message on link"}, " ")
				}
			}(from, to)
		}
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
}

// TestRendezvousWorldOfOne: the degenerate single-process cluster still
// yields a usable session (the trainer treats it as K=1).
func TestRendezvousWorldOfOne(t *testing.T) {
	s, err := Join(Config{Addr: "127.0.0.1:0", Rank: 0, World: 1, Accept: []string{"1bit"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.World() != 1 || s.CodecName() != "1bit" {
		t.Fatalf("got world %d codec %q", s.World(), s.CodecName())
	}
}

// TestRendezvousRejectsMalformedHello: garbage on the rendezvous port
// is rejected — the offender is told and dropped — without sinking the
// rendezvous for the real ranks.
func TestRendezvousRejectsMalformedHello(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 2, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			defer s.Close()
		}
		joinErr <- err
	}()

	// A stray connection speaking the wrong protocol entirely.
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The offender must be answered with a rejection, not a welcome.
	if _, err := readWelcome(conn); err == nil {
		t.Fatal("a malformed hello must not receive a welcome")
	}

	// The real rank 1 still joins and the rendezvous completes.
	s, err := Join(Config{
		Addr: coord.Addr(), Rank: 1, World: 2, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("real worker was sunk by the stray connection: %v", err)
	}
	defer s.Close()
	select {
	case err := <-joinErr:
		if err != nil {
			t.Fatalf("coordinator failed despite a valid membership: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator hung")
	}
}

// TestRendezvousSurvivesSilentStray: a connection that never sends a
// hello (a scanner, a health probe) must neither sink the rendezvous
// nor hold the accept loop long enough to starve the real ranks.
func TestRendezvousSurvivesSilentStray(t *testing.T) {
	oldGrace := handshakeGrace
	handshakeGrace = 200 * time.Millisecond
	defer func() { handshakeGrace = oldGrace }()

	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 2, Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			defer s.Close()
		}
		joinErr <- err
	}()

	// The stray connects first and says nothing.
	stray, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stray.Close()

	start := time.Now()
	s, err := Join(Config{
		Addr: coord.Addr(), Rank: 1, World: 2, Timeout: 15 * time.Second,
	})
	if err != nil {
		t.Fatalf("real worker was sunk by the silent stray: %v", err)
	}
	defer s.Close()
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("silent stray held the rendezvous for %v", waited)
	}
	if err := <-joinErr; err != nil {
		t.Fatalf("coordinator failed: %v", err)
	}
}

// TestRendezvousRejectsWorldMismatch: a worker configured for a
// different world size is turned away with a reason.
func TestRendezvousRejectsWorldMismatch(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 2, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			s.Close()
		}
		joinErr <- err
	}()
	_, werr := joinWorker(Config{
		Addr: coord.Addr(), Rank: 1, World: 5, Timeout: 5 * time.Second,
	})
	if werr == nil {
		t.Fatal("worker with mismatched world size must be rejected")
	}
	if !strings.Contains(werr.Error(), "world") {
		t.Fatalf("rejection should name the world mismatch, got: %v", werr)
	}
	if err := <-joinErr; err == nil {
		t.Fatal("coordinator must fail the rendezvous too")
	}
}

// TestRendezvousRejectsDuplicateRank: two workers claiming the same
// rank cannot both join.
func TestRendezvousRejectsDuplicateRank(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 3, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			s.Close()
		}
		joinErr <- err
	}()
	// Two hellos for rank 1; the second must sink the rendezvous.
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeHello(conn, hello{Rank: 1, World: 3, MeshAddr: "127.0.0.1:1"}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-joinErr:
		if err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("expected duplicate-rank failure, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung on duplicate ranks")
	}
}

// TestRendezvousNegotiatesFloorOnDisjointSets: end-to-end check that a
// session with no shared codec trains at full precision.
func TestRendezvousNegotiatesFloorOnDisjointSets(t *testing.T) {
	sessions := joinAll(t, 2, [][]string{{"qsgd4b512"}, {"1bit"}})
	for rank, s := range sessions {
		if s.CodecName() != "32bit" {
			t.Fatalf("rank %d negotiated %q, want the 32bit floor", rank, s.CodecName())
		}
	}
}

// TestRendezvousNegotiatesMixedPolicy: a full rendezvous over
// non-canonically-spelled mixed-policy advertisements settles every
// rank on the same canonical policy, with the rules intact in the
// session's parsed Policy.
func TestRendezvousNegotiatesMixedPolicy(t *testing.T) {
	sessions := joinAll(t, 3, [][]string{
		{"qsgd4b512;embedding=topk0.01;*.b=32bit", "qsgd8b512"},
		{"qsgd4;embedding=topk0.01;*.b=fp32"}, // alias spelling of the same policy
		{"1bit", "qsgd4b512;embedding=topk0.01;*.b=32bit"},
	})
	const want = "qsgd4b512;embedding=topk0.01;*.b=32bit"
	for rank, s := range sessions {
		if s.PolicyName() != want {
			t.Fatalf("rank %d negotiated %q, want %q", rank, s.PolicyName(), want)
		}
		p := s.Policy()
		if p.Base.Name() != "qsgd4b512" || len(p.Rules) != 2 {
			t.Fatalf("rank %d parsed policy %+v", rank, p)
		}
		if p.Rules[0].Pattern != "embedding" || p.Rules[0].Codec.Name() != "topk0.01" ||
			p.Rules[1].Pattern != "*.b" || p.Rules[1].Codec.Name() != "32bit" {
			t.Fatalf("rank %d rules %+v", rank, p.Rules)
		}
	}
}

// TestWelcomeRoundTripsHeartbeatParameters: the v3 welcome carries the
// session's health-plane settings byte-exactly.
func TestWelcomeRoundTripsHeartbeatParameters(t *testing.T) {
	var buf bytes.Buffer
	in := welcome{
		Codec:             "qsgd4b512",
		Addrs:             []string{"127.0.0.1:1", "127.0.0.1:2"},
		HeartbeatInterval: 250 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	if err := writeWelcome(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readWelcome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.HeartbeatInterval != in.HeartbeatInterval || out.HeartbeatTimeout != in.HeartbeatTimeout {
		t.Fatalf("heartbeat params %v/%v, want %v/%v",
			out.HeartbeatInterval, out.HeartbeatTimeout, in.HeartbeatInterval, in.HeartbeatTimeout)
	}
	// A disabled plane travels as zeros.
	buf.Reset()
	if err := writeWelcome(&buf, welcome{Codec: "32bit", Addrs: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if out, err = readWelcome(&buf); err != nil || out.HeartbeatInterval != 0 {
		t.Fatalf("disabled plane round-trip: %v, interval %v", err, out.HeartbeatInterval)
	}
}

// TestRendezvousRejectsOldProtocolVersion: a v2 hello still parses
// (the layout is unchanged), and the coordinator answers with a
// versioned reject naming the mismatch — written at the sender's own
// version so an old build can display it — instead of dropping the
// connection as garbage.
func TestRendezvousRejectsOldProtocolVersion(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 2, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			s.Close()
		}
		joinErr <- err
	}()

	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handcraft a v2 hello: same layout, older version byte.
	msg := appendU32(nil, rendezvousMagic)
	msg = append(msg, 2) // ProtocolVersion of a PR-3-era build
	msg = appendU32(msg, 1)
	msg = appendU32(msg, 2)
	addr := "127.0.0.1:9"
	msg = appendU16(msg, uint16(len(addr)))
	msg = append(msg, addr...)
	msg = appendU16(msg, 0)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-joinErr:
		if err == nil || !strings.Contains(err.Error(), "protocol version 2") {
			t.Fatalf("expected a protocol-version rejection, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung on the old-version hello")
	}
	// The reject the old build reads must be written at version 2, or
	// its readWelcome would bail on the version byte before reaching
	// the message.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr := make([]byte, 6)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatalf("no reject on the wire: %v", err)
	}
	if hdr[4] != 2 || hdr[5] != 1 {
		t.Fatalf("reject header version=%d status=%d, want version 2, status 1", hdr[4], hdr[5])
	}
}

// TestRendezvousRejectsV3ProtocolVersion: a v3 (PR-4-era) hello still
// parses — its layout is a strict prefix of v4's — and earns a
// versioned reject naming the mismatch, written at the sender's own
// version so the old build can display it. Elastic sessions must not
// silently break the protocol for old builds.
func TestRendezvousRejectsV3ProtocolVersion(t *testing.T) {
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: 2, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		s, err := coord.Join()
		if s != nil {
			s.Close()
		}
		joinErr <- err
	}()

	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Handcraft a v3 hello: the v4 layout minus the elastic tail.
	msg := appendU32(nil, rendezvousMagic)
	msg = append(msg, 3) // ProtocolVersion of a PR-4-era build
	msg = appendU32(msg, 1)
	msg = appendU32(msg, 2)
	addr := "127.0.0.1:9"
	msg = appendU16(msg, uint16(len(addr)))
	msg = append(msg, addr...)
	msg = appendU16(msg, 0)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-joinErr:
		if err == nil || !strings.Contains(err.Error(), "protocol version 3") {
			t.Fatalf("expected a protocol-version rejection, got: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator hung on the v3 hello")
	}
	// The reject must be written at version 3 so the old build's
	// readWelcome reaches the message instead of bailing on the
	// version byte.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr := make([]byte, 6)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		t.Fatalf("no reject on the wire: %v", err)
	}
	if hdr[4] != 3 || hdr[5] != 1 {
		t.Fatalf("reject header version=%d status=%d, want version 3, status 1", hdr[4], hdr[5])
	}
}

// TestHelloRoundTripsElasticFields: the v4 hello carries the rejoin
// kind and the completed-step count byte-exactly, -1 included.
func TestHelloRoundTripsElasticFields(t *testing.T) {
	for _, in := range []hello{
		{Rank: 1, World: 3, MeshAddr: "127.0.0.1:1", Accept: []string{"qsgd4b512"}},
		{Rank: 2, World: 3, MeshAddr: "127.0.0.1:2", Rejoin: true, Step: 417},
		{Rank: 2, World: 3, MeshAddr: "127.0.0.1:2", Rejoin: true, Step: -1},
	} {
		var buf bytes.Buffer
		if err := writeHello(&buf, in); err != nil {
			t.Fatal(err)
		}
		out, err := readHello(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if out.Rejoin != in.Rejoin || out.Step != in.Step || out.Rank != in.Rank {
			t.Fatalf("hello round trip: got %+v, want %+v", out, in)
		}
	}
}

// TestWelcomeRoundTripsElasticFields: the v4 welcome carries the
// session generation, the rejoin window and the step table.
func TestWelcomeRoundTripsElasticFields(t *testing.T) {
	in := welcome{
		Codec:             "qsgd4b512",
		Addrs:             []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"},
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		Generation:        2,
		RejoinWindow:      45 * time.Second,
		Steps:             []int64{12, 11, -1},
	}
	var buf bytes.Buffer
	if err := writeWelcome(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readWelcome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 || out.RejoinWindow != 45*time.Second {
		t.Fatalf("elastic params: %+v", out)
	}
	if len(out.Steps) != 3 || out.Steps[0] != 12 || out.Steps[2] != -1 {
		t.Fatalf("step table: %v", out.Steps)
	}
	// A mismatched step table must not be writable.
	bad := in
	bad.Steps = []int64{1}
	if err := writeWelcome(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("step table shorter than the membership must not encode")
	}
	// A fresh welcome travels without a table and with window 0.
	fresh := welcome{Codec: "32bit", Addrs: []string{"a"}}
	buf.Reset()
	if err := writeWelcome(&buf, fresh); err != nil {
		t.Fatal(err)
	}
	if out, err = readWelcome(&buf); err != nil || out.RejoinWindow != 0 || out.Steps != nil {
		t.Fatalf("fresh welcome round trip: %+v, %v", out, err)
	}
}

// TestResumePoint pins donor election: maximum completed step wins,
// lowest rank breaks ties, replacements (-1) never donate.
func TestResumePoint(t *testing.T) {
	cases := []struct {
		steps  []int64
		resume int64
		donor  int
	}{
		{[]int64{5, 5, -1}, 5, 0},
		{[]int64{5, 6, -1}, 6, 1},
		{[]int64{-1, 4, 4}, 4, 1},
		{[]int64{0, 0, 0}, 0, 0},
	}
	for _, tc := range cases {
		resume, donor := resumePoint(tc.steps)
		if resume != tc.resume || donor != tc.donor {
			t.Errorf("resumePoint(%v) = (%d, %d), want (%d, %d)",
				tc.steps, resume, donor, tc.resume, tc.donor)
		}
	}
}

// TestSessionHealthGovernedByCoordinator: the coordinator's heartbeat
// settings win on every rank — a worker's own interval (or even its
// wish to disable) is overridden by the welcome, so the whole session
// runs one failure-detection regime.
func TestSessionHealthGovernedByCoordinator(t *testing.T) {
	const world = 2
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: world, Timeout: 10 * time.Second,
		Health: health.Config{Interval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	type joined struct {
		s   *Session
		err error
	}
	worker := make(chan joined, 1)
	go func() {
		s, err := Join(Config{
			Addr: coord.Addr(), Rank: 1, World: world, Timeout: 10 * time.Second,
			// Deliberately contrarian local settings.
			Health: health.Config{Interval: time.Hour, Disable: true},
		})
		worker <- joined{s, err}
	}()
	sess0, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	defer sess0.Close()
	w := <-worker
	if w.err != nil {
		t.Fatal(w.err)
	}
	defer w.s.Close()

	for rank, s := range []*Session{sess0, w.s} {
		m := s.Monitor()
		if m == nil {
			t.Fatalf("rank %d has no monitor despite the coordinator enabling the plane", rank)
		}
		if got := m.Config().Interval; got != 50*time.Millisecond {
			t.Fatalf("rank %d runs interval %v, want the coordinator's 50ms", rank, got)
		}
		if got := m.Config().Timeout; got != 400*time.Millisecond {
			t.Fatalf("rank %d runs timeout %v, want the derived 400ms", rank, got)
		}
	}
}

// TestSessionHealthDisabled: with the plane off on the coordinator, no
// control links are built and Monitor() is nil everywhere.
func TestSessionHealthDisabled(t *testing.T) {
	const world = 2
	coord, err := NewCoordinator(Config{
		Addr: "127.0.0.1:0", World: world, Timeout: 10 * time.Second,
		Health: health.Config{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	type joined struct {
		s   *Session
		err error
	}
	worker := make(chan joined, 1)
	go func() {
		s, err := Join(Config{
			Addr: coord.Addr(), Rank: 1, World: world, Timeout: 10 * time.Second,
			Health: health.Config{Interval: time.Millisecond},
		})
		worker <- joined{s, err}
	}()
	sess0, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	defer sess0.Close()
	w := <-worker
	if w.err != nil {
		t.Fatal(w.err)
	}
	defer w.s.Close()
	if sess0.Monitor() != nil || w.s.Monitor() != nil {
		t.Fatal("monitors exist despite the coordinator disabling the health plane")
	}
}
