package cluster_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cluster"
	"repro/data"
	"repro/health"
	"repro/lpsgd"
)

// TestThreeProcessClusterTraining is the acceptance test for the
// multi-process runtime: it builds cmd/lpsgd-worker and launches three
// separate OS processes — one coordinator (rank 0) and two workers —
// that rendezvous over loopback, negotiate a precision policy, and
// complete a training run over the dialled TCP mesh. It asserts that
// every process converges on the negotiated policy and ends with
// bit-identical model state (equal checkpoint digests).
func TestThreeProcessClusterTraining(t *testing.T) {
	// Overlapping-but-distinct advertisements: qsgd4b512 is the cheapest
	// policy all three share, so that must be the negotiated outcome.
	runThreeProcessCluster(t,
		[]string{"qsgd4b512,1bit", "qsgd4b512,qsgd8b512", "topk0.01,qsgd4b512"},
		"qsgd4b512")
}

// TestThreeProcessClusterTrainingMixedPolicy is the same acceptance
// test under a mixed per-layer policy: the fc1 weights travel as 8-bit
// QSGD, every bias at full precision, everything else as 4-bit QSGD —
// so one exchange interleaves frames naming three different codecs —
// and the ranks must still end with identical model digests.
func TestThreeProcessClusterTrainingMixedPolicy(t *testing.T) {
	const policy = "qsgd4b512;fc1=qsgd8b512;*.b=32bit"
	runThreeProcessCluster(t,
		[]string{policy, policy + ",qsgd8b512", "1bit," + policy},
		policy)
}

// buildWorker compiles cmd/lpsgd-worker into a temp dir and returns
// the binary path, skipping the test when no toolchain is available.
func buildWorker(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available to build the worker binary")
	}
	bin := filepath.Join(t.TempDir(), "lpsgd-worker")
	build := exec.Command(goTool, "build", "-o", bin, "repro/cmd/lpsgd-worker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lpsgd-worker: %v\n%s", err, out)
	}
	return bin
}

func runThreeProcessCluster(t *testing.T, accepts []string, wantPolicy string) {
	t.Helper()
	bin := buildWorker(t)

	const world = 3
	common := []string{
		"-world", fmt.Sprint(world),
		"-task", "image", "-epochs", "2", "-batch", "24",
		"-train-samples", "96", "-test-samples", "48", "-seed", "41",
	}

	// Rank 0 coordinates on an ephemeral port and prints the bound
	// address on its first stdout line.
	rank0 := exec.Command(bin, append([]string{
		"-coordinator", "127.0.0.1:0", "-rank", "0", "-accept", accepts[0],
	}, common...)...)
	var rank0Err bytes.Buffer
	rank0.Stderr = &rank0Err
	rank0Out, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	sc := bufio.NewScanner(rank0Out)
	if !sc.Scan() {
		t.Fatalf("rank 0 exited before announcing its address: %s", rank0Err.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "coordinator" {
		t.Fatalf("unexpected announcement %q", sc.Text())
	}
	addr := fields[1]

	type result struct {
		rank int
		out  string
		err  error
	}
	results := make(chan result, world)
	for rank := 1; rank < world; rank++ {
		go func(rank int) {
			cmd := exec.Command(bin, append([]string{
				"-coordinator", addr, "-rank", fmt.Sprint(rank), "-accept", accepts[rank],
			}, common...)...)
			out, err := cmd.Output()
			if ee, ok := err.(*exec.ExitError); ok {
				err = fmt.Errorf("%w\n%s", err, ee.Stderr)
			}
			results <- result{rank, string(out), err}
		}(rank)
	}
	go func() {
		var rest bytes.Buffer
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
		err := rank0.Wait()
		if err != nil {
			err = fmt.Errorf("%w\n%s", err, rank0Err.String())
		}
		results <- result{0, rest.String(), err}
	}()

	models := map[int]string{}
	codecs := map[int]string{}
	deadline := time.After(120 * time.Second)
	for i := 0; i < world; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("rank %d failed: %v", r.rank, r.err)
			}
			kv := parseSummary(t, r.rank, r.out)
			models[r.rank] = kv["model"]
			codecs[r.rank] = kv["codec"]
			if kv["world"] != fmt.Sprint(world) {
				t.Errorf("rank %d reports world=%s", r.rank, kv["world"])
			}
		case <-deadline:
			t.Fatal("cluster run did not finish in time")
		}
	}
	for rank := 0; rank < world; rank++ {
		if codecs[rank] != wantPolicy {
			t.Errorf("rank %d trained with policy %q, want the negotiated %q", rank, codecs[rank], wantPolicy)
		}
		if models[rank] == "" {
			t.Fatalf("rank %d reported no model digest", rank)
		}
		if models[rank] != models[0] {
			t.Errorf("rank %d model %s differs from rank 0's %s — replicas diverged",
				rank, models[rank], models[0])
		}
	}
}

// parseSummary extracts the key=value pairs of a worker's final line.
func parseSummary(t *testing.T, rank int, out string) map[string]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "rank=") {
		t.Fatalf("rank %d produced no summary line, got %q", rank, last)
	}
	kv := map[string]string{}
	for _, field := range strings.Fields(last) {
		if k, v, ok := strings.Cut(field, "="); ok {
			kv[k] = v
		}
	}
	if got := kv["rank"]; got != fmt.Sprint(rank) {
		t.Fatalf("summary claims rank %s, want %d", got, rank)
	}
	return kv
}

// TestClusterTrainingInProcess drives the same cluster code path with
// three goroutine ranks — cheap enough for every test run and for the
// race detector — and checks that the per-rank trainers stay
// bit-identical through the lpsgd facade.
func TestClusterTrainingInProcess(t *testing.T) {
	const world = 3
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr: "127.0.0.1:0", World: world,
		Accept:  []string{"qsgd4b512"},
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		codec string
		ckpt  []byte
		acc   float64
	}
	outcomes := make([]outcome, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	runRank := func(rank int, opt lpsgd.Option) {
		defer wg.Done()
		model, train, test := trainingTask()
		trainer, err := lpsgd.NewTrainer(model,
			opt,
			lpsgd.WithAcceptedCodecs("qsgd4b512", "1bit*64"),
			lpsgd.WithBatchSize(24),
			lpsgd.WithEpochs(2),
			lpsgd.WithSeed(7),
		)
		if err != nil {
			errs[rank] = err
			return
		}
		defer trainer.Close()
		h, err := trainer.Run(train, test)
		if err != nil {
			errs[rank] = err
			return
		}
		var buf bytes.Buffer
		if err := trainer.SaveCheckpoint(&buf); err != nil {
			errs[rank] = err
			return
		}
		outcomes[rank] = outcome{
			codec: trainer.Plan().Quantised.Name(),
			ckpt:  buf.Bytes(),
			acc:   h.FinalAccuracy,
		}
	}
	wg.Add(world)
	for rank := 1; rank < world; rank++ {
		go runRank(rank, lpsgd.WithCluster(coord.Addr(), rank, world))
	}
	go func() {
		sess, err := coord.Join()
		if err != nil {
			errs[0] = err
			wg.Done()
			return
		}
		runRank(0, lpsgd.WithClusterSession(sess))
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < world; rank++ {
		if outcomes[rank].codec != "qsgd4b512" {
			t.Errorf("rank %d used codec %q", rank, outcomes[rank].codec)
		}
		if !bytes.Equal(outcomes[rank].ckpt, outcomes[0].ckpt) {
			t.Errorf("rank %d checkpoint differs from rank 0 — replicas diverged", rank)
		}
		if outcomes[rank].acc != outcomes[0].acc {
			t.Errorf("rank %d accuracy %v differs from rank 0's %v", rank, outcomes[rank].acc, outcomes[0].acc)
		}
	}
}

// trainingTask builds a small deterministic image workload shared by
// every rank of the in-process cluster tests: 8×8 single-channel
// images, so the 64-input MLP fits.
func trainingTask() (lpsgd.BuildFunc, *data.Dataset, *data.Dataset) {
	train, test := lpsgd.SyntheticImages(4, 96, 48, 13)
	return lpsgd.MLP(64, 32, 4), train, test
}

// syncBuffer is a concurrency-safe sink for a child process's stderr,
// pollable while the process runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForOutput polls a buffer until want appears.
func waitForOutput(t *testing.T, b *syncBuffer, want string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !strings.Contains(b.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("%q never appeared; output so far:\n%s", want, b.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterPeerDeathAbort is the acceptance test of the health
// plane: three worker processes train a long run, one is SIGKILLed
// mid-epoch, and every survivor must exit with the documented
// peer-death abort code (4) within 2x the configured heartbeat
// timeout — unblocked out of the synchronous exchange by the
// coordinated abort, not wedged until some TCP-level timeout.
func TestClusterPeerDeathAbort(t *testing.T) {
	bin := buildWorker(t)

	const world = 3
	const hbTimeout = 3 * time.Second
	const abortExitCode = 4
	common := []string{
		"-world", fmt.Sprint(world),
		"-task", "image", "-epochs", "100000", "-batch", "24",
		"-train-samples", "96", "-test-samples", "48", "-seed", "41",
		"-accept", "qsgd4b512",
		"-heartbeat", "100ms", "-heartbeat-timeout", hbTimeout.String(),
	}

	// Rank 0 coordinates on an ephemeral port.
	var err0 syncBuffer
	rank0 := exec.Command(bin, append([]string{
		"-coordinator", "127.0.0.1:0", "-rank", "0",
	}, common...)...)
	rank0.Stderr = &err0
	rank0Out, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	sc := bufio.NewScanner(rank0Out)
	if !sc.Scan() {
		t.Fatalf("rank 0 exited before announcing its address: %s", err0.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "coordinator" {
		t.Fatalf("unexpected announcement %q", sc.Text())
	}
	addr := fields[1]
	go func() { // drain the rest of rank 0's stdout
		for sc.Scan() {
		}
	}()

	stderrs := make([]*syncBuffer, world)
	stderrs[0] = &err0
	procs := make([]*exec.Cmd, world)
	procs[0] = rank0
	for rank := 1; rank < world; rank++ {
		buf := &syncBuffer{}
		cmd := exec.Command(bin, append([]string{
			"-coordinator", addr, "-rank", fmt.Sprint(rank),
		}, common...)...)
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		stderrs[rank] = buf
		procs[rank] = cmd
		defer cmd.Process.Kill()
	}

	// Wait until every rank is demonstrably inside the training loop,
	// then give them a beat so the kill lands mid-epoch.
	for rank := 0; rank < world; rank++ {
		waitForOutput(t, stderrs[rank], "up, negotiated policy", 30*time.Second)
	}
	time.Sleep(300 * time.Millisecond)

	victim := world - 1
	killedAt := time.Now()
	if err := procs[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()

	type exited struct {
		rank    int
		code    int
		elapsed time.Duration
	}
	done := make(chan exited, world)
	for rank := 0; rank < victim; rank++ {
		go func(rank int) {
			err := procs[rank].Wait()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				code = -1
			}
			done <- exited{rank, code, time.Since(killedAt)}
		}(rank)
	}
	// The acceptance bound: every survivor is out within 2x the
	// heartbeat timeout of the kill.
	budget := 2 * hbTimeout
	timeout := time.After(budget + 2*time.Second) // scheduling slack for the slowest Wait
	for i := 0; i < victim; i++ {
		select {
		case e := <-done:
			if e.code != abortExitCode {
				t.Errorf("rank %d exited with code %d, want the abort code %d; stderr:\n%s",
					e.rank, e.code, abortExitCode, stderrs[e.rank].String())
			}
			if e.elapsed > budget {
				t.Errorf("rank %d took %v to abort, budget is %v", e.rank, e.elapsed, budget)
			}
			if !strings.Contains(stderrs[e.rank].String(), "declared dead") {
				t.Errorf("rank %d's stderr does not carry the death verdict:\n%s",
					e.rank, stderrs[e.rank].String())
			}
		case <-timeout:
			t.Fatalf("survivors still running %v after the kill — the abort never propagated", budget)
		}
	}
}

// TestClusterRejoinDigestParity is the elastic acceptance test over
// real OS processes: a three-worker cluster trains with a rejoin
// window, rank 2 is SIGKILLed mid-epoch, a replacement process is
// launched with -rejoin, re-enters the session through the rendezvous
// v4 rejoin barrier and the donor's state transfer, and every process
// — survivors and replacement — exits 0 with a final model digest
// bit-identical to an uninterrupted three-rank run of the same seed
// and policy.
func TestClusterRejoinDigestParity(t *testing.T) {
	bin := buildWorker(t)
	uninterrupted := runRejoinWorld(t, bin, false)
	interrupted := runRejoinWorld(t, bin, true)
	if interrupted != uninterrupted {
		t.Fatalf("kill-and-rejoin digest %s differs from uninterrupted %s — elastic resume is not bit-exact",
			interrupted, uninterrupted)
	}
}

// runRejoinWorld runs one three-process elastic training world,
// optionally SIGKILLing rank 2 mid-epoch and re-forking it with
// -rejoin, and returns the agreed final model digest.
func runRejoinWorld(t *testing.T, bin string, kill bool) string {
	t.Helper()
	const world = 3
	const victim = world - 1
	common := []string{
		"-world", fmt.Sprint(world),
		"-task", "image", "-epochs", "80", "-batch", "24",
		"-train-samples", "96", "-test-samples", "48", "-seed", "41",
		"-accept", "qsgd4b512",
		"-heartbeat", "100ms", "-heartbeat-timeout", "2s",
		"-rejoin-window", "60s", "-join-timeout", "60s",
	}

	var err0 syncBuffer
	rank0 := exec.Command(bin, append([]string{
		"-coordinator", "127.0.0.1:0", "-rank", "0",
	}, common...)...)
	rank0.Stderr = &err0
	rank0Out, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	sc := bufio.NewScanner(rank0Out)
	if !sc.Scan() {
		t.Fatalf("rank 0 exited before announcing its address: %s", err0.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "coordinator" {
		t.Fatalf("unexpected announcement %q", sc.Text())
	}
	addr := fields[1]

	type result struct {
		rank int
		out  string
		err  error
	}
	results := make(chan result, world+1)
	launch := func(rank int, extra ...string) *exec.Cmd {
		cmd := exec.Command(bin, append(append([]string{
			"-coordinator", addr, "-rank", fmt.Sprint(rank),
		}, extra...), common...)...)
		stderr := &syncBuffer{}
		cmd.Stderr = stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		go func() {
			buf := new(bytes.Buffer)
			io.Copy(buf, out)
			err := cmd.Wait()
			if err != nil {
				err = fmt.Errorf("%w\n%s", err, stderr.String())
			}
			results <- result{rank, buf.String(), err}
		}()
		return cmd
	}
	procs := make([]*exec.Cmd, world)
	procs[0] = rank0
	for rank := 1; rank < world; rank++ {
		procs[rank] = launch(rank)
	}
	go func() {
		var rest bytes.Buffer
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
		err := rank0.Wait()
		if err != nil {
			err = fmt.Errorf("%w\n%s", err, err0.String())
		}
		results <- result{0, rest.String(), err}
	}()

	expected := world
	if kill {
		// Give the cluster a beat so the SIGKILL lands mid-epoch, then
		// kill rank 2 and launch its replacement. The victim's own exit
		// is consumed here (killed by signal, not a result); the
		// replacement reports under the same rank.
		time.Sleep(400 * time.Millisecond)
		if err := procs[victim].Process.Kill(); err != nil {
			t.Fatal(err)
		}
		launch(victim, "-rejoin")
		expected = world + 1
	}

	models := map[int]string{}
	deadline := time.After(180 * time.Second)
	got := 0
	killedSeen := false
	for got < expected {
		select {
		case r := <-results:
			got++
			if kill && r.rank == victim && !killedSeen && r.err != nil && strings.Contains(r.err.Error(), "killed") {
				killedSeen = true
				continue // the SIGKILLed incarnation
			}
			if r.err != nil {
				t.Fatalf("rank %d failed: %v", r.rank, r.err)
			}
			kv := parseSummary(t, r.rank, r.out)
			models[r.rank] = kv["model"]
		case <-deadline:
			t.Fatal("elastic cluster run did not finish in time")
		}
	}
	for rank := 0; rank < world; rank++ {
		if models[rank] == "" {
			t.Fatalf("rank %d reported no model digest", rank)
		}
		if models[rank] != models[0] {
			t.Errorf("rank %d model %s differs from rank 0's %s — replicas diverged",
				rank, models[rank], models[0])
		}
	}
	return models[0]
}

// TestHealthPlaneDigestParity: enabling the health plane must not move
// a single training bit — the final model digests of a cluster run
// with heartbeats on and one with the plane disabled are identical.
func TestHealthPlaneDigestParity(t *testing.T) {
	run := func(hb health.Config) []byte {
		const world = 2
		coord, err := cluster.NewCoordinator(cluster.Config{
			Addr: "127.0.0.1:0", World: world,
			Accept:  []string{"qsgd4b512"},
			Timeout: 20 * time.Second,
			Health:  hb,
		})
		if err != nil {
			t.Fatal(err)
		}
		ckpts := make([][]byte, world)
		errs := make([]error, world)
		var wg sync.WaitGroup
		runRank := func(rank int, opt lpsgd.Option) {
			defer wg.Done()
			model, train, test := trainingTask()
			trainer, err := lpsgd.NewTrainer(model,
				opt,
				lpsgd.WithAcceptedPolicies("qsgd4b512"),
				lpsgd.WithBatchSize(24),
				lpsgd.WithEpochs(2),
				lpsgd.WithSeed(7),
			)
			if err != nil {
				errs[rank] = err
				return
			}
			defer trainer.Close()
			if _, err := trainer.Run(train, test); err != nil {
				errs[rank] = err
				return
			}
			var buf bytes.Buffer
			if err := trainer.SaveCheckpoint(&buf); err != nil {
				errs[rank] = err
				return
			}
			ckpts[rank] = buf.Bytes()
		}
		wg.Add(world)
		go runRank(1, lpsgd.WithCluster(coord.Addr(), 1, world))
		go func() {
			sess, err := coord.Join()
			if err != nil {
				errs[0] = err
				wg.Done()
				return
			}
			runRank(0, lpsgd.WithClusterSession(sess))
		}()
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("rank %d (health disable=%v): %v", rank, hb.Disable, err)
			}
		}
		if !bytes.Equal(ckpts[0], ckpts[1]) {
			t.Fatalf("ranks diverged within one run (health disable=%v)", hb.Disable)
		}
		return ckpts[0]
	}

	withHealth := run(health.Config{Interval: 50 * time.Millisecond})
	without := run(health.Config{Disable: true})
	if !bytes.Equal(withHealth, without) {
		t.Fatal("health plane perturbed the training trajectory: digests differ between on and off")
	}
}
