package cluster_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/cluster"
	"repro/data"
	"repro/lpsgd"
)

// TestThreeProcessClusterTraining is the acceptance test for the
// multi-process runtime: it builds cmd/lpsgd-worker and launches three
// separate OS processes — one coordinator (rank 0) and two workers —
// that rendezvous over loopback, negotiate a precision policy, and
// complete a training run over the dialled TCP mesh. It asserts that
// every process converges on the negotiated policy and ends with
// bit-identical model state (equal checkpoint digests).
func TestThreeProcessClusterTraining(t *testing.T) {
	// Overlapping-but-distinct advertisements: qsgd4b512 is the cheapest
	// policy all three share, so that must be the negotiated outcome.
	runThreeProcessCluster(t,
		[]string{"qsgd4b512,1bit", "qsgd4b512,qsgd8b512", "topk0.01,qsgd4b512"},
		"qsgd4b512")
}

// TestThreeProcessClusterTrainingMixedPolicy is the same acceptance
// test under a mixed per-layer policy: the fc1 weights travel as 8-bit
// QSGD, every bias at full precision, everything else as 4-bit QSGD —
// so one exchange interleaves frames naming three different codecs —
// and the ranks must still end with identical model digests.
func TestThreeProcessClusterTrainingMixedPolicy(t *testing.T) {
	const policy = "qsgd4b512;fc1=qsgd8b512;*.b=32bit"
	runThreeProcessCluster(t,
		[]string{policy, policy + ",qsgd8b512", "1bit," + policy},
		policy)
}

func runThreeProcessCluster(t *testing.T, accepts []string, wantPolicy string) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available to build the worker binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "lpsgd-worker")
	build := exec.Command(goTool, "build", "-o", bin, "repro/cmd/lpsgd-worker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building lpsgd-worker: %v\n%s", err, out)
	}

	const world = 3
	common := []string{
		"-world", fmt.Sprint(world),
		"-task", "image", "-epochs", "2", "-batch", "24",
		"-train-samples", "96", "-test-samples", "48", "-seed", "41",
	}

	// Rank 0 coordinates on an ephemeral port and prints the bound
	// address on its first stdout line.
	rank0 := exec.Command(bin, append([]string{
		"-coordinator", "127.0.0.1:0", "-rank", "0", "-accept", accepts[0],
	}, common...)...)
	var rank0Err bytes.Buffer
	rank0.Stderr = &rank0Err
	rank0Out, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer rank0.Process.Kill()

	sc := bufio.NewScanner(rank0Out)
	if !sc.Scan() {
		t.Fatalf("rank 0 exited before announcing its address: %s", rank0Err.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "coordinator" {
		t.Fatalf("unexpected announcement %q", sc.Text())
	}
	addr := fields[1]

	type result struct {
		rank int
		out  string
		err  error
	}
	results := make(chan result, world)
	for rank := 1; rank < world; rank++ {
		go func(rank int) {
			cmd := exec.Command(bin, append([]string{
				"-coordinator", addr, "-rank", fmt.Sprint(rank), "-accept", accepts[rank],
			}, common...)...)
			out, err := cmd.Output()
			if ee, ok := err.(*exec.ExitError); ok {
				err = fmt.Errorf("%w\n%s", err, ee.Stderr)
			}
			results <- result{rank, string(out), err}
		}(rank)
	}
	go func() {
		var rest bytes.Buffer
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
		err := rank0.Wait()
		if err != nil {
			err = fmt.Errorf("%w\n%s", err, rank0Err.String())
		}
		results <- result{0, rest.String(), err}
	}()

	models := map[int]string{}
	codecs := map[int]string{}
	deadline := time.After(120 * time.Second)
	for i := 0; i < world; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("rank %d failed: %v", r.rank, r.err)
			}
			kv := parseSummary(t, r.rank, r.out)
			models[r.rank] = kv["model"]
			codecs[r.rank] = kv["codec"]
			if kv["world"] != fmt.Sprint(world) {
				t.Errorf("rank %d reports world=%s", r.rank, kv["world"])
			}
		case <-deadline:
			t.Fatal("cluster run did not finish in time")
		}
	}
	for rank := 0; rank < world; rank++ {
		if codecs[rank] != wantPolicy {
			t.Errorf("rank %d trained with policy %q, want the negotiated %q", rank, codecs[rank], wantPolicy)
		}
		if models[rank] == "" {
			t.Fatalf("rank %d reported no model digest", rank)
		}
		if models[rank] != models[0] {
			t.Errorf("rank %d model %s differs from rank 0's %s — replicas diverged",
				rank, models[rank], models[0])
		}
	}
}

// parseSummary extracts the key=value pairs of a worker's final line.
func parseSummary(t *testing.T, rank int, out string) map[string]string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "rank=") {
		t.Fatalf("rank %d produced no summary line, got %q", rank, last)
	}
	kv := map[string]string{}
	for _, field := range strings.Fields(last) {
		if k, v, ok := strings.Cut(field, "="); ok {
			kv[k] = v
		}
	}
	if got := kv["rank"]; got != fmt.Sprint(rank) {
		t.Fatalf("summary claims rank %s, want %d", got, rank)
	}
	return kv
}

// TestClusterTrainingInProcess drives the same cluster code path with
// three goroutine ranks — cheap enough for every test run and for the
// race detector — and checks that the per-rank trainers stay
// bit-identical through the lpsgd facade.
func TestClusterTrainingInProcess(t *testing.T) {
	const world = 3
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr: "127.0.0.1:0", World: world,
		Accept:  []string{"qsgd4b512"},
		Timeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		codec string
		ckpt  []byte
		acc   float64
	}
	outcomes := make([]outcome, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	runRank := func(rank int, opt lpsgd.Option) {
		defer wg.Done()
		model, train, test := trainingTask()
		trainer, err := lpsgd.NewTrainer(model,
			opt,
			lpsgd.WithAcceptedCodecs("qsgd4b512", "1bit*64"),
			lpsgd.WithBatchSize(24),
			lpsgd.WithEpochs(2),
			lpsgd.WithSeed(7),
		)
		if err != nil {
			errs[rank] = err
			return
		}
		defer trainer.Close()
		h, err := trainer.Run(train, test)
		if err != nil {
			errs[rank] = err
			return
		}
		var buf bytes.Buffer
		if err := trainer.SaveCheckpoint(&buf); err != nil {
			errs[rank] = err
			return
		}
		outcomes[rank] = outcome{
			codec: trainer.Plan().Quantised.Name(),
			ckpt:  buf.Bytes(),
			acc:   h.FinalAccuracy,
		}
	}
	wg.Add(world)
	for rank := 1; rank < world; rank++ {
		go runRank(rank, lpsgd.WithCluster(coord.Addr(), rank, world))
	}
	go func() {
		sess, err := coord.Join()
		if err != nil {
			errs[0] = err
			wg.Done()
			return
		}
		runRank(0, lpsgd.WithClusterSession(sess))
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < world; rank++ {
		if outcomes[rank].codec != "qsgd4b512" {
			t.Errorf("rank %d used codec %q", rank, outcomes[rank].codec)
		}
		if !bytes.Equal(outcomes[rank].ckpt, outcomes[0].ckpt) {
			t.Errorf("rank %d checkpoint differs from rank 0 — replicas diverged", rank)
		}
		if outcomes[rank].acc != outcomes[0].acc {
			t.Errorf("rank %d accuracy %v differs from rank 0's %v", rank, outcomes[rank].acc, outcomes[0].acc)
		}
	}
}

// trainingTask builds a small deterministic image workload shared by
// every rank of the in-process cluster tests: 8×8 single-channel
// images, so the 64-input MLP fits.
func trainingTask() (lpsgd.BuildFunc, *data.Dataset, *data.Dataset) {
	train, test := lpsgd.SyntheticImages(4, 96, 48, 13)
	return lpsgd.MLP(64, 32, 4), train, test
}
