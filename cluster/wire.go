package cluster

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// This file defines the rendezvous wire protocol: little-endian,
// length-prefixed, magic-tagged and versioned, in the same spirit as
// the quant frame format. Three message kinds travel during a
// rendezvous:
//
//	hello (worker → coordinator):
//	  uint32  magic "LPSC"
//	  uint8   protocol version (currently 4; the v2/v3 prefix layout is
//	          unchanged, so an old hello still parses and earns a
//	          versioned reject naming the mismatch instead of a silent
//	          drop)
//	  uint32  rank
//	  uint32  world size
//	  uint16  mesh address length, then the address bytes
//	  uint16  accepted policy count, then per policy uint8 length + string
//	  --- v4 additions ---
//	  uint8   hello kind (0 = fresh rendezvous, 1 = rejoin)
//	  int64   completed synchronous steps the sender holds state for
//	          (-1 = none; a replacement claiming a dead rank's slot)
//
//	welcome (coordinator → worker):
//	  uint32  magic "LPSC"
//	  uint8   protocol version
//	  uint8   status (0 = ok, 1 = rejected)
//	  rejected: uint16 message length + message
//	  ok:       uint8 policy length + negotiated policy string,
//	            uint32 world size,
//	            per rank uint16 address length + mesh address,
//	            uint32 heartbeat interval (ms; 0 = health plane off),
//	            uint32 heartbeat timeout (ms)
//	  --- v4 additions ---
//	            uint32 session generation (completed rejoin rounds),
//	            uint32 rejoin window (ms; 0 = elastic sessions off),
//	            uint32 step-table length (0 on a fresh rendezvous),
//	            per rank int64 completed steps (rejoin welcomes only)
//
//	mesh preamble (higher rank → lower rank, on the mesh listener):
//	  uint32  magic "LPSM"
//	  uint8   protocol version
//	  uint32  from rank
//	  uint32  to rank
//	  uint8   link kind (0 = data, 1 = health control)

const (
	// rendezvousMagic tags hello and welcome messages ("LPSC").
	rendezvousMagic uint32 = 'L' | 'P'<<8 | 'S'<<16 | 'C'<<24
	// meshMagic tags mesh-link preambles ("LPSM").
	meshMagic uint32 = 'L' | 'P'<<8 | 'S'<<16 | 'M'<<24

	// ProtocolVersion is the rendezvous wire version this package
	// speaks. Coordinator and workers must match exactly; a mismatch is
	// rejected during the hello exchange, before any training state is
	// built. Version 2 changed the capability strings from bare codec
	// names to precision policy strings (quant.ParsePolicy grammar) —
	// structurally identical on the wire, but a v1 build cannot parse a
	// policy with rules, so mixed builds must not rendezvous. Version 3
	// added the health plane: the welcome carries the session's
	// heartbeat interval and timeout, and every rank pair establishes a
	// second, control-kind mesh link beside the data link — a v2 build
	// would rendezvous and then hang waiting for links it does not
	// know to dial. Version 4 added elastic sessions: hellos carry a
	// kind byte (fresh vs rejoin) and the sender's completed-step
	// count, and the welcome carries the session generation, the rejoin
	// window and — on a rejoin round — the per-rank step table that
	// picks the state donor; a v3 build would neither announce its
	// resume position nor understand a rejoin barrier.
	ProtocolVersion = 4

	// helloCompatVersion is the oldest hello layout this build can still
	// parse. The v2/v3 prefix is a strict prefix of v4's, so an old
	// worker gets a reject that names the version mismatch (written at
	// its own version, so it can read it) instead of being dropped as
	// garbage.
	helloCompatVersion = 2

	// maxAddrLen and maxCodecs bound attacker-controlled lengths in a
	// hello so a garbage connection cannot make the coordinator allocate
	// unbounded memory.
	maxAddrLen = 256
	maxCodecs  = 256
)

// Hello kinds carried by the v4 byte.
const (
	helloFresh  = 0
	helloRejoin = 1
)

// hello is the decoded rendezvous request of one worker.
type hello struct {
	// Version is the protocol version the worker spoke. Parsing accepts
	// helloCompatVersion..ProtocolVersion; the coordinator rejects
	// anything but an exact match with a message the sender can read.
	Version  byte
	Rank     int
	World    int
	MeshAddr string
	Accept   []string
	// Rejoin marks a v4 rejoin hello: the sender claims a slot of an
	// already-running session — a survivor re-entering after a death
	// verdict, or a replacement for the dead rank itself.
	Rejoin bool
	// Step is the sender's completed synchronous step count, the input
	// to donor election on a rejoin round. -1 means the sender holds no
	// training state and must receive the full snapshot.
	Step int64
}

// welcome is the decoded rendezvous response.
type welcome struct {
	Codec string
	Addrs []string
	// Heartbeat parameters of the session's health plane, decided by
	// the coordinator so every rank runs identical detection settings.
	// A zero interval means the health plane is off and no control
	// links are established.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Generation counts the session's completed rejoin rounds; a fresh
	// rendezvous welcomes at generation 0.
	Generation int
	// RejoinWindow is the coordinator-governed elastic-session setting:
	// how long a rejoin barrier stays open. Zero means elastic sessions
	// are off and a death verdict stays fatal.
	RejoinWindow time.Duration
	// Steps is the per-rank completed-step table of a rejoin round —
	// what every rank derives the resume point, the state donor and the
	// catch-up set from. Empty on a fresh rendezvous.
	Steps []int64
}

// Mesh-link kinds carried by the v3 preamble.
const (
	linkData    = 0
	linkControl = 1
)

func writeHello(w io.Writer, h hello) error {
	if len(h.MeshAddr) > maxAddrLen {
		return fmt.Errorf("cluster: mesh address %q too long", h.MeshAddr)
	}
	if len(h.Accept) > maxCodecs {
		return fmt.Errorf("cluster: %d accepted policies exceeds cap %d", len(h.Accept), maxCodecs)
	}
	buf := appendU32(nil, rendezvousMagic)
	buf = append(buf, ProtocolVersion)
	buf = appendU32(buf, uint32(h.Rank))
	buf = appendU32(buf, uint32(h.World))
	buf = appendU16(buf, uint16(len(h.MeshAddr)))
	buf = append(buf, h.MeshAddr...)
	buf = appendU16(buf, uint16(len(h.Accept)))
	for _, name := range h.Accept {
		if len(name) > 255 {
			return fmt.Errorf("cluster: policy string %q too long", name)
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
	}
	kind := byte(helloFresh)
	if h.Rejoin {
		kind = helloRejoin
	}
	buf = append(buf, kind)
	buf = appendU64(buf, uint64(h.Step))
	_, err := w.Write(buf)
	return err
}

func readHello(r io.Reader) (hello, error) {
	var h hello
	v, err := readMagicVersionRange(r, rendezvousMagic, "hello", helloCompatVersion)
	if err != nil {
		return h, err
	}
	h.Version = v
	var fixed [8]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return h, fmt.Errorf("cluster: hello header: %w", err)
	}
	h.Rank = int(binary.LittleEndian.Uint32(fixed[0:]))
	h.World = int(binary.LittleEndian.Uint32(fixed[4:]))
	addr, err := readString16(r, maxAddrLen, "mesh address")
	if err != nil {
		return h, err
	}
	h.MeshAddr = addr
	var cnt [2]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return h, fmt.Errorf("cluster: hello policy count: %w", err)
	}
	n := int(binary.LittleEndian.Uint16(cnt[:]))
	if n > maxCodecs {
		return h, fmt.Errorf("cluster: hello advertises %d policies, cap is %d", n, maxCodecs)
	}
	for i := 0; i < n; i++ {
		name, err := readString8(r, "policy string")
		if err != nil {
			return h, err
		}
		h.Accept = append(h.Accept, name)
	}
	// The elastic fields exist from v4 on; an old hello ends here and
	// is implicitly a fresh one (it will be version-rejected anyway).
	if h.Version >= 4 {
		var tail [9]byte
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			return h, fmt.Errorf("cluster: hello elastic fields: %w", err)
		}
		switch tail[0] {
		case helloFresh:
		case helloRejoin:
			h.Rejoin = true
		default:
			return h, fmt.Errorf("cluster: unknown hello kind %d", tail[0])
		}
		h.Step = int64(binary.LittleEndian.Uint64(tail[1:]))
	}
	return h, nil
}

func writeWelcome(w io.Writer, wel welcome) error {
	// The hello bounds each *raw* advertised string at 255 bytes, but
	// the negotiated result is the canonical spelling, which can be
	// longer ("x=qsgd4" canonicalises to "x=qsgd4b512"); an unchecked
	// byte(len) would wrap and corrupt the whole welcome stream.
	if len(wel.Codec) > 255 {
		return fmt.Errorf("cluster: negotiated policy %q exceeds the 255-byte wire limit", wel.Codec)
	}
	buf := appendU32(nil, rendezvousMagic)
	buf = append(buf, ProtocolVersion, 0)
	buf = append(buf, byte(len(wel.Codec)))
	buf = append(buf, wel.Codec...)
	buf = appendU32(buf, uint32(len(wel.Addrs)))
	for _, a := range wel.Addrs {
		if len(a) > maxAddrLen {
			return fmt.Errorf("cluster: mesh address %q too long", a)
		}
		buf = appendU16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	buf = appendU32(buf, uint32(wel.HeartbeatInterval/time.Millisecond))
	buf = appendU32(buf, uint32(wel.HeartbeatTimeout/time.Millisecond))
	buf = appendU32(buf, uint32(wel.Generation))
	buf = appendU32(buf, uint32(wel.RejoinWindow/time.Millisecond))
	if len(wel.Steps) > 0 && len(wel.Steps) != len(wel.Addrs) {
		return fmt.Errorf("cluster: step table spans %d ranks, membership %d", len(wel.Steps), len(wel.Addrs))
	}
	buf = appendU32(buf, uint32(len(wel.Steps)))
	for _, s := range wel.Steps {
		buf = appendU64(buf, uint64(s))
	}
	_, err := w.Write(buf)
	return err
}

// writeReject sends an error welcome at the given protocol version —
// the offender's own version when it is parseable, so an old build
// displays the actual reason instead of a magic/version error.
// Failures are ignored: the connection is being torn down anyway.
func writeReject(w io.Writer, version byte, msg string) {
	if len(msg) > 1024 {
		msg = msg[:1024]
	}
	if version == 0 {
		version = ProtocolVersion
	}
	buf := appendU32(nil, rendezvousMagic)
	buf = append(buf, version, 1)
	buf = appendU16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	w.Write(buf)
}

func readWelcome(r io.Reader) (welcome, error) {
	var wel welcome
	if err := readMagicVersion(r, rendezvousMagic, "welcome"); err != nil {
		return wel, err
	}
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return wel, fmt.Errorf("cluster: welcome status: %w", err)
	}
	if status[0] != 0 {
		msg, err := readString16(r, 1024, "rejection")
		if err != nil {
			return wel, fmt.Errorf("cluster: coordinator rejected the hello")
		}
		return wel, fmt.Errorf("cluster: coordinator rejected the hello: %s", msg)
	}
	codec, err := readString8(r, "policy string")
	if err != nil {
		return wel, err
	}
	wel.Codec = codec
	var cnt [4]byte
	if _, err := io.ReadFull(r, cnt[:]); err != nil {
		return wel, fmt.Errorf("cluster: welcome world: %w", err)
	}
	world := int(binary.LittleEndian.Uint32(cnt[:]))
	if world <= 0 || world > 1<<16 {
		return wel, fmt.Errorf("cluster: welcome announces world of %d", world)
	}
	for i := 0; i < world; i++ {
		a, err := readString16(r, maxAddrLen, "mesh address")
		if err != nil {
			return wel, err
		}
		wel.Addrs = append(wel.Addrs, a)
	}
	var hb [8]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		return wel, fmt.Errorf("cluster: welcome heartbeat parameters: %w", err)
	}
	wel.HeartbeatInterval = time.Duration(binary.LittleEndian.Uint32(hb[0:])) * time.Millisecond
	wel.HeartbeatTimeout = time.Duration(binary.LittleEndian.Uint32(hb[4:])) * time.Millisecond
	var el [12]byte
	if _, err := io.ReadFull(r, el[:]); err != nil {
		return wel, fmt.Errorf("cluster: welcome elastic parameters: %w", err)
	}
	wel.Generation = int(binary.LittleEndian.Uint32(el[0:]))
	wel.RejoinWindow = time.Duration(binary.LittleEndian.Uint32(el[4:])) * time.Millisecond
	steps := int(binary.LittleEndian.Uint32(el[8:]))
	if steps != 0 && steps != world {
		return wel, fmt.Errorf("cluster: welcome step table spans %d ranks, membership %d", steps, world)
	}
	for i := 0; i < steps; i++ {
		var sb [8]byte
		if _, err := io.ReadFull(r, sb[:]); err != nil {
			return wel, fmt.Errorf("cluster: welcome step table: %w", err)
		}
		wel.Steps = append(wel.Steps, int64(binary.LittleEndian.Uint64(sb[:])))
	}
	return wel, nil
}

func writeMeshPreamble(w io.Writer, from, to int, kind byte) error {
	buf := appendU32(nil, meshMagic)
	buf = append(buf, ProtocolVersion)
	buf = appendU32(buf, uint32(from))
	buf = appendU32(buf, uint32(to))
	buf = append(buf, kind)
	_, err := w.Write(buf)
	return err
}

func readMeshPreamble(r io.Reader) (from, to int, kind byte, err error) {
	if err := readMagicVersion(r, meshMagic, "mesh preamble"); err != nil {
		return 0, 0, 0, err
	}
	var fixed [9]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("cluster: mesh preamble: %w", err)
	}
	return int(binary.LittleEndian.Uint32(fixed[0:])),
		int(binary.LittleEndian.Uint32(fixed[4:])), fixed[8], nil
}

// readMagicVersion consumes and validates the shared magic + version
// prefix of a protocol message, requiring an exact version match.
func readMagicVersion(r io.Reader, magic uint32, kind string) error {
	_, err := readMagicVersionRange(r, magic, kind, ProtocolVersion)
	return err
}

// readMagicVersionRange consumes the magic + version prefix, accepting
// any version in [minVersion, ProtocolVersion] and returning the one
// seen.
func readMagicVersionRange(r io.Reader, magic uint32, kind string, minVersion byte) (byte, error) {
	var fixed [5]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return 0, fmt.Errorf("cluster: %s header: %w", kind, err)
	}
	if got := binary.LittleEndian.Uint32(fixed[0:]); got != magic {
		return 0, fmt.Errorf("cluster: bad %s magic %#x", kind, got)
	}
	if v := fixed[4]; v < minVersion || v > ProtocolVersion {
		return 0, fmt.Errorf("cluster: %s speaks protocol version %d, this build speaks %d", kind, v, ProtocolVersion)
	}
	return fixed[4], nil
}

func readString8(r io.Reader, what string) (string, error) {
	var l [1]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", fmt.Errorf("cluster: %s length: %w", what, err)
	}
	buf := make([]byte, l[0])
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("cluster: %s: %w", what, err)
	}
	return string(buf), nil
}

func readString16(r io.Reader, cap int, what string) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", fmt.Errorf("cluster: %s length: %w", what, err)
	}
	n := int(binary.LittleEndian.Uint16(l[:]))
	if n > cap {
		return "", fmt.Errorf("cluster: %s of %d bytes exceeds cap %d", what, n, cap)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("cluster: %s: %w", what, err)
	}
	return string(buf), nil
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}
