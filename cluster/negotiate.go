package cluster

import (
	"fmt"
	"sort"

	"repro/quant"
)

// negotiationShape is the reference tensor negotiation prices codecs
// on: large enough that every codec family amortises its per-group
// overhead (512-element columns keep classic column-wise 1bitSGD
// honest), so "cheapest" reflects steady-state wire cost rather than
// small-tensor edge effects.
var negotiationShape = quant.Shape{Rows: 512, Cols: 128}

// Floor is the codec every peer implicitly accepts: full-precision
// gradients are always decodable, so a session can never negotiate
// itself into a codec nobody shares — disjoint advertisements settle
// on the floor.
const Floor = "32bit"

// Negotiate picks the gradient codec a session will train with, given
// each peer's advertised set of accepted codec names (quant.Parse
// grammar). The result is the cheapest codec — fewest wire bytes on a
// reference tensor — accepted by every peer, with Floor ("32bit") as
// the codec of last resort: it is always a candidate, so an empty or
// disjoint advertisement matrix degrades to full precision rather than
// failing the rendezvous.
//
// Names are canonicalised through quant.Parse before comparison, so
// "qsgd4" and "qsgd4b512" (the same codec under the paper's tuned
// default bucket) intersect as equals. A name that does not parse is an
// error — a peer advertising formats it cannot name is misconfigured,
// and silently dropping the entry could negotiate a codec the peer
// never meant to accept.
func Negotiate(accepts ...[]string) (string, error) {
	if len(accepts) == 0 {
		return Floor, nil
	}
	// Canonicalise each peer's set; count, per canonical name, how many
	// peers accept it.
	votes := make(map[string]int)
	for p, set := range accepts {
		seen := make(map[string]bool, len(set))
		for _, name := range set {
			canon, err := quant.Canonical(name)
			if err != nil {
				return "", fmt.Errorf("cluster: peer %d advertises unusable codec: %w", p, err)
			}
			if !seen[canon] {
				seen[canon] = true
				votes[canon]++
			}
		}
	}
	candidates := []string{Floor}
	for name, n := range votes {
		if n == len(accepts) && name != Floor {
			candidates = append(candidates, name)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := codecCost(candidates[i]), codecCost(candidates[j])
		if ci != cj {
			return ci < cj
		}
		return candidates[i] < candidates[j]
	})
	return candidates[0], nil
}

// codecCost prices one codec on the reference tensor. Lower is cheaper.
func codecCost(name string) int {
	c, err := quant.Parse(name)
	if err != nil {
		// Candidates are canonical names that already parsed once.
		panic(fmt.Sprintf("cluster: canonical codec %q no longer parses: %v", name, err))
	}
	return c.EncodedBytes(negotiationShape.Len(), negotiationShape)
}
