package cluster

import (
	"fmt"
	"sort"

	"repro/quant"
)

// negotiationInventory is the reference tensor inventory negotiation
// prices policies on: tensors large enough that every codec family
// amortises its per-group overhead (512-element columns keep classic
// column-wise 1bitSGD honest), so "cheapest" reflects steady-state wire
// cost rather than small-tensor edge effects, plus a named embedding
// tensor and a bias vector so common per-layer rule patterns
// ("embedding=...", "*.b=...") register in the price. Rule patterns
// that match none of these tensors simply do not affect a policy's
// price; such ties break on the canonical policy string.
var negotiationInventory = []quant.TensorInfo{
	{Name: "embedding.W", Shape: quant.Shape{Rows: 512, Cols: 128}},
	{Name: "dense0.W", Shape: quant.Shape{Rows: 512, Cols: 128}},
	{Name: "dense0.b", Shape: quant.Shape{Rows: 512, Cols: 1}},
}

// Floor is the policy every peer implicitly accepts: full-precision
// gradients are always decodable, so a session can never negotiate
// itself into a policy nobody shares — disjoint advertisements settle
// on the floor.
const Floor = "32bit"

// Negotiate picks the precision policy a session will train with,
// given each peer's advertised set of accepted policy strings
// (quant.ParsePolicy grammar; bare codec names are valid policies).
// The result is the cheapest policy — fewest wire bytes on a reference
// tensor inventory — accepted by every peer, with Floor ("32bit") as
// the policy of last resort: it is always a candidate, so an empty or
// disjoint advertisement matrix degrades to full precision rather than
// failing the rendezvous.
//
// Policies intersect rule-by-rule through their canonical spelling
// (quant.CanonicalPolicy): base codec, exemption target and every
// pattern rule must agree once aliases are resolved, so
// "qsgd4;minfrac=0.99" and "qsgd4b512" (the same policy under the
// paper's tuned default bucket and default exemption target) count as
// one advertisement, while "qsgd4b512" and "qsgd4b512;*.b=32bit" —
// overlapping but not identical schemes — do not: a peer that never
// agreed to decode topk frames for the embedding layer must not be
// negotiated into receiving them. A string that does not parse is an
// error — a peer advertising formats it cannot name is misconfigured,
// and silently dropping the entry could negotiate a policy the peer
// never meant to accept.
func Negotiate(accepts ...[]string) (string, error) {
	if len(accepts) == 0 {
		return Floor, nil
	}
	// Canonicalise each peer's set; count, per canonical spelling, how
	// many peers accept it.
	votes := make(map[string]int)
	for p, set := range accepts {
		seen := make(map[string]bool, len(set))
		for _, name := range set {
			canon, err := quant.CanonicalPolicy(name)
			if err != nil {
				return "", fmt.Errorf("cluster: peer %d advertises unusable policy: %w", p, err)
			}
			if !seen[canon] {
				seen[canon] = true
				votes[canon]++
			}
		}
	}
	candidates := []string{Floor}
	for name, n := range votes {
		if n == len(accepts) && name != Floor {
			candidates = append(candidates, name)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		ci, cj := policyCost(candidates[i]), policyCost(candidates[j])
		if ci != cj {
			return ci < cj
		}
		return candidates[i] < candidates[j]
	})
	return candidates[0], nil
}

// policyCost prices one policy on the reference inventory. Lower is
// cheaper.
func policyCost(name string) int64 {
	p, err := quant.ParsePolicy(name)
	if err != nil {
		// Candidates are canonical spellings that already parsed once.
		panic(fmt.Sprintf("cluster: canonical policy %q no longer parses: %v", name, err))
	}
	return quant.NewPlan(p, negotiationInventory).WireBytes()
}
