package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os/exec"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/cluster"
)

// TestClusterTelemetryE2E is the acceptance test of the telemetry
// plane: three worker processes train a long run with per-step
// telemetry on, and the /cluster/metrics and /cluster/status
// endpoints served by rank 0's observability plane must report every
// rank, a sane loss series, and per-tensor compression ratios
// consistent with the negotiated qsgd4b512 policy — all scraped live
// from outside the process, the way an operator or lpsgd-top would.
func TestClusterTelemetryE2E(t *testing.T) {
	bin := buildWorker(t)

	const world = 3
	common := []string{
		"-world", fmt.Sprint(world),
		"-task", "image", "-epochs", "100000", "-batch", "24",
		"-train-samples", "96", "-test-samples", "48", "-seed", "41",
		"-accept", "qsgd4b512",
		"-heartbeat", "100ms",
		"-telemetry-every", "1",
	}

	var err0 syncBuffer
	rank0 := exec.Command(bin, append([]string{
		"-coordinator", "127.0.0.1:0", "-rank", "0",
		"-metrics-addr", "127.0.0.1:0",
	}, common...)...)
	rank0.Stderr = &err0
	rank0Out, err := rank0.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := rank0.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		rank0.Process.Kill()
		rank0.Wait()
	}()

	// Rank 0 announces the rendezvous port on stdout and the
	// observability plane's bound address on stderr.
	addrLine := make(chan string, 1)
	go func() {
		buf := make([]byte, 256)
		var acc strings.Builder
		for {
			n, err := rank0Out.Read(buf)
			acc.Write(buf[:n])
			if line, ok := strings.CutPrefix(acc.String(), "coordinator "); ok && strings.Contains(line, "\n") {
				addrLine <- strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
				// Keep draining so the pipe never blocks the worker.
				for {
					if _, err := rank0Out.Read(buf); err != nil {
						return
					}
				}
			}
			if err != nil {
				addrLine <- ""
				return
			}
		}
	}()
	var coordAddr string
	select {
	case coordAddr = <-addrLine:
	case <-time.After(30 * time.Second):
		t.Fatalf("rank 0 never announced its address:\n%s", err0.String())
	}
	if coordAddr == "" {
		t.Fatalf("rank 0 exited before announcing its address:\n%s", err0.String())
	}

	waitForOutput(t, &err0, "observability plane on http://", 30*time.Second)
	obsRe := regexp.MustCompile(`observability plane on http://(\S+)`)
	m := obsRe.FindStringSubmatch(err0.String())
	if m == nil {
		t.Fatalf("no observability address in:\n%s", err0.String())
	}
	obsAddr := m[1]

	var workers []*exec.Cmd
	for rank := 1; rank < world; rank++ {
		w := exec.Command(bin, append([]string{
			"-coordinator", coordAddr, "-rank", fmt.Sprint(rank),
		}, common...)...)
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		defer func(w *exec.Cmd) {
			w.Process.Kill()
			w.Wait()
		}(w)
	}

	// Poll /cluster/status until every rank has reported a few steps.
	client := &http.Client{Timeout: 5 * time.Second}
	var st cluster.ClusterStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get("http://" + obsAddr + "/cluster/status")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil && st.Reporting == world && st.MinStep >= 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never fully reported (last status %+v, err %v):\n%s", st, err, err0.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	if st.Policy != "qsgd4b512" {
		t.Errorf("status policy = %q, want the negotiated qsgd4b512", st.Policy)
	}
	if st.WorldSize != world || len(st.Ranks) != world {
		t.Errorf("status world: %+v", st)
	}
	if st.MaxStep < st.MinStep || st.MinStep < 2 {
		t.Errorf("step bounds insane: min %d max %d", st.MinStep, st.MaxStep)
	}

	// Loss series sanity: every reported loss and every trend point is
	// finite and non-negative (cross-entropy on this task), and the
	// aggregates bracket the per-rank values.
	for _, r := range st.Ranks {
		loss := float64(r.Loss)
		if math.IsNaN(loss) || math.IsInf(loss, 0) || loss < 0 {
			t.Errorf("rank %d loss %v not sane", r.Rank, loss)
		}
		if loss < float64(st.MinLoss)-1e-9 || loss > float64(st.MaxLoss)+1e-9 {
			t.Errorf("rank %d loss %v outside aggregate bounds [%v, %v]",
				r.Rank, loss, st.MinLoss, st.MaxLoss)
		}
		if len(r.Tensors) == 0 {
			t.Errorf("rank %d reported no tensors", r.Rank)
		}
	}
	if len(st.LossTrend) == 0 {
		t.Error("no loss trend accumulated")
	}
	for i, v := range st.LossTrend {
		if f := float64(v); math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			t.Errorf("loss trend[%d] = %v not sane", i, f)
		}
	}

	// Compression ratios must match the negotiated policy: under
	// qsgd4b512 every tensor either travels quantised (4-bit payload →
	// ratio well above 1, approaching 8 for large tensors) or exempt at
	// full precision (ratio exactly 1). The frame layout is
	// deterministic, so the per-tensor ratio must also be identical
	// across ranks.
	quantised := 0
	for _, tn := range st.Ranks[0].Tensors {
		ratio := float64(tn.Compression)
		switch {
		case ratio < 1-1e-9:
			t.Errorf("tensor %s compression %v < 1 — wire larger than raw", tn.Name, ratio)
		case ratio > 1+1e-9:
			quantised++
			if ratio > 8+1e-9 {
				t.Errorf("tensor %s compression %v exceeds the 4-bit ceiling of 8x", tn.Name, ratio)
			}
		}
		for _, r := range st.Ranks[1:] {
			for _, other := range r.Tensors {
				if other.Name == tn.Name && math.Abs(float64(other.Compression)-ratio) > 1e-9 {
					t.Errorf("tensor %s compression differs across ranks: %v vs %v",
						tn.Name, ratio, other.Compression)
				}
			}
		}
	}
	if quantised == 0 {
		t.Error("no tensor shows compression > 1 under qsgd4b512")
	}

	// The Prometheus rendering must carry every rank too.
	resp, err := client.Get("http://" + obsAddr + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	_, err = io.Copy(&sb, resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for rank := 0; rank < world; rank++ {
		if !strings.Contains(text, fmt.Sprintf(`lpsgd_cluster_rank_step{rank="%d"}`, rank)) {
			t.Errorf("rank %d missing from /cluster/metrics:\n%s", rank, text)
		}
	}
	for _, want := range []string{
		fmt.Sprintf("lpsgd_cluster_world %d\n", world),
		`lpsgd_cluster_loss{agg="mean"}`,
		`lpsgd_cluster_compression{tensor="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in /cluster/metrics", want)
		}
	}
}
