package cluster

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/health"
	"repro/obs"
)

func hubSnap(step int64, loss float64) health.TelemetrySnapshot {
	return health.TelemetrySnapshot{
		Step: step, Loss: loss,
		Compute: time.Duration(step) * time.Millisecond, Exchange: time.Millisecond,
		Tensors: []health.TensorTelemetry{
			{Name: "w", GradL2: loss * 2, GradInf: loss, RMSE: 0.01, Compression: 7.9},
		},
	}
}

// TestTelemetryHubAggregates: per-rank state, min/mean/max across
// ranks, straggler attribution and the reporting count all fold
// correctly through Observe.
func TestTelemetryHubAggregates(t *testing.T) {
	h := NewTelemetryHub(3, "qsgd4b512")
	st := h.Status()
	if st.Reporting != 0 || st.Straggler != -1 || st.WorldSize != 3 || len(st.Ranks) != 0 {
		t.Fatalf("empty hub status: %+v", st)
	}
	h.Observe(0, hubSnap(5, 0.4))
	h.Observe(2, hubSnap(7, 0.2))
	h.Observe(-1, hubSnap(1, 9)) // dropped
	h.Observe(3, hubSnap(1, 9))  // dropped
	st = h.Status()
	if st.Reporting != 2 || len(st.Ranks) != 2 {
		t.Fatalf("reporting: %+v", st)
	}
	if st.MinStep != 5 || st.MaxStep != 7 {
		t.Fatalf("step bounds: %+v", st)
	}
	if float64(st.MinLoss) != 0.2 || float64(st.MaxLoss) != 0.4 || math.Abs(float64(st.MeanLoss)-0.3) > 1e-12 {
		t.Fatalf("loss aggregates: %+v", st)
	}
	// Rank 2's compute (7ms) makes it the straggler.
	if st.Straggler != 2 {
		t.Fatalf("straggler = %d, want 2", st.Straggler)
	}
	if st.Policy != "qsgd4b512" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if len(st.Ranks[0].Tensors) != 1 || st.Ranks[0].Tensors[0].Name != "w" {
		t.Fatalf("tensors: %+v", st.Ranks[0])
	}
	// A re-observation replaces the rank's slot, not appends.
	h.Observe(0, hubSnap(6, 0.35))
	if st = h.Status(); st.Reporting != 2 || st.Ranks[0].Step != 6 {
		t.Fatalf("re-observe: %+v", st)
	}
}

// TestTelemetryHubMetricsText: the Prometheus rendering carries every
// reporting rank and the per-tensor aggregate series.
func TestTelemetryHubMetricsText(t *testing.T) {
	h := NewTelemetryHub(2, "1bit")
	h.Observe(0, hubSnap(3, 0.5))
	h.Observe(1, hubSnap(4, 0.3))
	var sb strings.Builder
	if err := h.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"lpsgd_cluster_world 2\n",
		"lpsgd_cluster_ranks_reporting 2\n",
		`lpsgd_cluster_rank_step{rank="0"} 3`,
		`lpsgd_cluster_rank_step{rank="1"} 4`,
		`lpsgd_cluster_rank_loss{rank="1"} 0.3`,
		`lpsgd_cluster_loss{agg="min"} 0.3`,
		`lpsgd_cluster_loss{agg="max"} 0.5`,
		`lpsgd_cluster_loss{agg="mean"} 0.4`,
		`lpsgd_cluster_loss{agg="sum"} 0.8`,
		`lpsgd_cluster_grad_l2{tensor="w",agg="max"} 1`,
		`lpsgd_cluster_compression{tensor="w",agg="mean"} 7.9`,
		"lpsgd_cluster_straggler_rank 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestTelemetryHubServed: the hub's endpoints mount on obs.Serve and a
// NaN loss degrades to null in the JSON instead of a 500.
func TestTelemetryHubServed(t *testing.T) {
	h := NewTelemetryHub(2, "32bit")
	h.Observe(0, hubSnap(1, math.NaN()))
	s, err := obs.Serve("127.0.0.1:0", nil, nil, h.Endpoints()...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	if st.Reporting != 1 || len(st.Ranks) != 1 {
		t.Fatalf("served status: %+v", st)
	}
	if !math.IsNaN(float64(st.Ranks[0].Loss)) {
		t.Fatalf("NaN loss should decode back as NaN, got %v", st.Ranks[0].Loss)
	}
	resp2, err := http.Get("http://" + s.Addr() + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp2.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `lpsgd_cluster_rank_loss{rank="0"} NaN`) {
		t.Fatalf("metrics text: %s", sb.String())
	}
}

// TestTelemetryHubTrend: the loss trend appends one point per step
// frontier and stays bounded.
func TestTelemetryHubTrend(t *testing.T) {
	h := NewTelemetryHub(1, "32bit")
	for i := 1; i <= lossTrendCap+40; i++ {
		h.Observe(0, hubSnap(int64(i), 1/float64(i)))
	}
	st := h.Status()
	if len(st.LossTrend) != lossTrendCap {
		t.Fatalf("trend length %d, want %d", len(st.LossTrend), lossTrendCap)
	}
	// Oldest first: strictly decreasing loss in this series.
	for i := 1; i < len(st.LossTrend); i++ {
		if !(st.LossTrend[i] < st.LossTrend[i-1]) {
			t.Fatalf("trend not oldest-first at %d: %v", i, st.LossTrend[i-1:i+1])
		}
	}
	// Same-frontier re-observation overwrites, not appends.
	before := len(h.Status().LossTrend)
	h.Observe(0, hubSnap(int64(lossTrendCap+40), 0.5))
	if after := len(h.Status().LossTrend); after != before {
		t.Fatalf("same-step observation grew the trend: %d -> %d", before, after)
	}
}
