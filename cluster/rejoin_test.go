package cluster_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/cluster"
	"repro/elastic"
	"repro/health"
	"repro/lpsgd"
)

// elasticWorldResult is one rank's outcome of an elastic in-process
// cluster run.
type elasticWorldResult struct {
	ckpt []byte
	err  error
}

// elasticTrainOpts are the training options every rank — original or
// replacement — of the in-process elastic tests must share.
func elasticTrainOpts() []lpsgd.Option {
	return []lpsgd.Option{
		lpsgd.WithAcceptedPolicies("qsgd4b512"),
		lpsgd.WithBatchSize(24),
		lpsgd.WithEpochs(8),
		lpsgd.WithSeed(7),
	}
}

// TestElasticRejoinDigestParity is the elastic acceptance test in its
// race-detector-friendly form: a three-rank in-process cluster trains
// under qsgd4b512 with elasticity on; rank 2 is killed abruptly
// (control links cut with no bye — the SIGKILL signature) after a few
// steps; the survivors quiesce and hold the rejoin barrier, a
// replacement joins via cluster.Rejoin, restores the donor's snapshot
// and finishes the run. Every rank's final model digest — survivors'
// and the replacement's — must be bit-identical to an uninterrupted
// run of the same seed, policy and elastic settings.
func TestElasticRejoinDigestParity(t *testing.T) {
	uninterrupted := runElasticWorld(t, false)
	interrupted := runElasticWorld(t, true)
	if !bytes.Equal(interrupted, uninterrupted) {
		t.Fatal("kill-and-rejoin run diverged from the uninterrupted run — elastic resume is not bit-exact")
	}
}

// runElasticWorld runs the three-rank elastic world, optionally killing
// rank 2 mid-run and rejoining a replacement, and returns the agreed
// final checkpoint bytes (asserting all ranks match on the way).
func runElasticWorld(t *testing.T, kill bool) []byte {
	t.Helper()
	const world = 3
	const victim = world - 1
	hb := health.Config{Interval: 25 * time.Millisecond, Timeout: 500 * time.Millisecond}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr: "127.0.0.1:0", World: world,
		Accept:  []string{"qsgd4b512"},
		Timeout: 30 * time.Second,
		Health:  hb,
		Elastic: elastic.Config{Enable: true, RejoinWindow: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := coord.Addr()

	model, train, test := trainingTask()
	results := make([]elasticWorldResult, world+1) // +1: the replacement reports separately
	trainers := make([]*lpsgd.Trainer, world)
	var trainersMu sync.Mutex
	var wg sync.WaitGroup

	runRank := func(rank, slot int, opt lpsgd.Option, restore *elastic.Snapshot) {
		defer wg.Done()
		trainer, err := lpsgd.NewTrainer(model, append(elasticTrainOpts(), opt)...)
		if err != nil {
			results[slot].err = err
			return
		}
		defer trainer.Close()
		if restore != nil {
			if err := trainer.Restore(restore); err != nil {
				results[slot].err = err
				return
			}
		}
		trainersMu.Lock()
		trainers[rank] = trainer
		trainersMu.Unlock()
		if _, err := trainer.Run(train, test); err != nil {
			results[slot].err = err
			return
		}
		var buf bytes.Buffer
		if err := trainer.SaveCheckpoint(&buf); err != nil {
			results[slot].err = err
			return
		}
		results[slot].ckpt = buf.Bytes()
	}

	wg.Add(world)
	for rank := 1; rank < world; rank++ {
		go runRank(rank, rank, lpsgd.WithCluster(addr, rank, world), nil)
	}
	go func() {
		sess, err := coord.Join()
		if err != nil {
			results[0].err = err
			wg.Done()
			return
		}
		runRank(0, 0, lpsgd.WithClusterSession(sess), nil)
	}()

	if kill {
		// Wait until the victim has provably applied a few steps, then
		// cut its control links with no bye — the SIGKILL signature the
		// survivors' detectors turn into a death verdict.
		deadline := time.Now().Add(20 * time.Second)
		for {
			trainersMu.Lock()
			victimTrainer := trainers[victim]
			trainersMu.Unlock()
			if victimTrainer != nil {
				if s := victimTrainer.StepStats(); s.Step >= 3 {
					victimTrainer.Monitor().Kill()
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatal("victim never reached step 3")
			}
			time.Sleep(2 * time.Millisecond)
		}
		// The replacement claims the victim's slot through the reopened
		// rendezvous, restores the donor's snapshot, and runs to the end.
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, snap, err := cluster.Rejoin(cluster.Config{
				Addr: addr, Rank: victim, World: world,
				Accept:  []string{"qsgd4b512"},
				Timeout: 30 * time.Second,
				Health:  hb,
			})
			if err != nil {
				results[world].err = err
				return
			}
			wg.Add(1)
			runRank(victim, world, lpsgd.WithClusterSession(sess), snap)
		}()
	}
	wg.Wait()

	// The killed rank's own trainer must have failed (its world aborted
	// around it); every other participant must have finished cleanly.
	for slot, res := range results {
		switch {
		case kill && slot == victim:
			if res.err == nil {
				t.Fatalf("the killed rank's trainer finished cleanly — the kill never bit")
			}
		case !kill && slot == world:
			// No replacement in the uninterrupted run.
		default:
			if res.err != nil {
				t.Fatalf("slot %d: %v", slot, res.err)
			}
		}
	}
	ref := results[0].ckpt
	if len(ref) == 0 {
		t.Fatal("rank 0 produced no checkpoint")
	}
	for slot, res := range results {
		if res.ckpt == nil {
			continue
		}
		if !bytes.Equal(res.ckpt, ref) {
			t.Fatalf("slot %d's digest differs from rank 0's", slot)
		}
	}
	return ref
}

// TestElasticRejoinWindowExpiry: when no replacement arrives within the
// window, the survivors surface the original death verdict — elasticity
// degrades to PR 4's coordinated abort, never a hang.
func TestElasticRejoinWindowExpiry(t *testing.T) {
	const world = 2
	hb := health.Config{Interval: 25 * time.Millisecond, Timeout: 400 * time.Millisecond}
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr: "127.0.0.1:0", World: world,
		Accept:  []string{"qsgd4b512"},
		Timeout: 20 * time.Second,
		Health:  hb,
		Elastic: elastic.Config{Enable: true, RejoinWindow: 700 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	model, train, test := trainingTask()

	victimUp := make(chan *lpsgd.Trainer, 1)
	res := make(chan error, 1)
	go func() {
		trainer, err := lpsgd.NewTrainer(model,
			lpsgd.WithCluster(coord.Addr(), 1, world),
			lpsgd.WithAcceptedPolicies("qsgd4b512"),
			lpsgd.WithBatchSize(24),
			lpsgd.WithEpochs(100000),
			lpsgd.WithSeed(7),
		)
		if err != nil {
			victimUp <- nil
			res <- err
			return
		}
		victimUp <- trainer
		_, err = trainer.Run(train, test)
		trainer.Close()
		res <- err
	}()

	sess, err := coord.Join()
	if err != nil {
		t.Fatal(err)
	}
	coordTrainer, err := lpsgd.NewTrainer(model,
		lpsgd.WithClusterSession(sess),
		lpsgd.WithAcceptedPolicies("qsgd4b512"),
		lpsgd.WithBatchSize(24),
		lpsgd.WithEpochs(100000),
		lpsgd.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coordTrainer.Close()

	victim := <-victimUp
	if victim == nil {
		t.Fatalf("victim failed to join: %v", <-res)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := coordTrainer.Run(train, test)
		runDone <- err
	}()
	// Let training start, then kill the victim with no replacement.
	for victim.StepStats().Step < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	victim.Monitor().Kill()
	<-res // victim's own run fails on its aborted world

	select {
	case err := <-runDone:
		var dead health.ErrPeerDead
		if !errors.As(err, &dead) {
			t.Fatalf("survivor returned %v, want a health.ErrPeerDead after window expiry", err)
		}
		if dead.Rank != 1 {
			t.Fatalf("verdict blames rank %d, want 1", dead.Rank)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("survivor hung past the rejoin window")
	}
}
