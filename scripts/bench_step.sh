#!/bin/sh
# bench_step.sh — the tracer-overhead acceptance as a machine-readable
# artifact. Runs the paired step benchmarks (parallel.BenchmarkStepUntraced
# vs BenchmarkStepTraced: the same 4-worker training step with the obs
# plane absent and fully attached) and writes the ns/op of both plus the
# relative overhead in per-mille to a JSON file. The obs PR's acceptance
# bar is <= 2% (20 per-mille); pass `-check` to enforce it.
#
# Usage:
#   scripts/bench_step.sh [-check] [output.json]   # default BENCH_step.json
set -eu

check=0
if [ "${1:-}" = "-check" ]; then
    check=1
    shift
fi
out="${1:-BENCH_step.json}"

raw=$(go test ./parallel -run '^$' -bench '^BenchmarkStep(Untraced|Traced)$' \
    -benchtime "${BENCHTIME:-1s}" -count 1)
printf '%s\n' "$raw"

untraced=$(printf '%s\n' "$raw" | awk '$1 ~ /^BenchmarkStepUntraced/ {print $3}')
traced=$(printf '%s\n' "$raw" | awk '$1 ~ /^BenchmarkStepTraced/ {print $3}')
if [ -z "$untraced" ] || [ -z "$traced" ]; then
    echo "bench_step.sh: benchmark output missing ns/op lines" >&2
    exit 1
fi

overhead=$(awk -v u="$untraced" -v t="$traced" 'BEGIN { printf "%d", (t - u) * 1000 / u }')
printf '{\n  "benchmark": "parallel.BenchmarkStep",\n  "untraced_ns_per_op": %d,\n  "traced_ns_per_op": %d,\n  "overhead_milli": %d\n}\n' \
    "${untraced%.*}" "${traced%.*}" "$overhead" >"$out"
echo "wrote $out (tracer overhead: ${overhead} per-mille)"

if [ "$check" = 1 ] && [ "$overhead" -gt 20 ]; then
    echo "bench_step.sh: tracer overhead ${overhead} per-mille exceeds the 20 per-mille (2%) bar" >&2
    exit 1
fi
