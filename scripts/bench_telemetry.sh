#!/bin/sh
# bench_telemetry.sh — the telemetry-overhead acceptance as a
# machine-readable artifact. Runs the paired step benchmarks
# (parallel.BenchmarkStepTelemetryOff vs BenchmarkStepTelemetryOn: the
# same 4-worker training step with the convergence-telemetry sampler
# off and on at the default 25-step cadence) and writes the ns/op of
# both plus the relative overhead in per-mille to a JSON file. The
# telemetry PR's acceptance bar is the same <= 2% (20 per-mille) as
# the tracer's; pass `-check` to enforce it.
#
# Usage:
#   scripts/bench_telemetry.sh [-check] [output.json]   # default BENCH_telemetry.json
set -eu

check=0
if [ "${1:-}" = "-check" ]; then
    check=1
    shift
fi
out="${1:-BENCH_telemetry.json}"

raw=$(go test ./parallel -run '^$' -bench '^BenchmarkStepTelemetry(Off|On)$' \
    -benchtime "${BENCHTIME:-1s}" -count 1)
printf '%s\n' "$raw"

off=$(printf '%s\n' "$raw" | awk '$1 ~ /^BenchmarkStepTelemetryOff/ {print $3}')
on=$(printf '%s\n' "$raw" | awk '$1 ~ /^BenchmarkStepTelemetryOn/ {print $3}')
if [ -z "$off" ] || [ -z "$on" ]; then
    echo "bench_telemetry.sh: benchmark output missing ns/op lines" >&2
    exit 1
fi

overhead=$(awk -v u="$off" -v t="$on" 'BEGIN { printf "%d", (t - u) * 1000 / u }')
printf '{\n  "benchmark": "parallel.BenchmarkStepTelemetry",\n  "telemetry_off_ns_per_op": %d,\n  "telemetry_on_ns_per_op": %d,\n  "overhead_milli": %d\n}\n' \
    "${off%.*}" "${on%.*}" "$overhead" >"$out"
echo "wrote $out (telemetry overhead: ${overhead} per-mille)"

if [ "$check" = 1 ] && [ "$overhead" -gt 20 ]; then
    echo "bench_telemetry.sh: telemetry overhead ${overhead} per-mille exceeds the 20 per-mille (2%) bar" >&2
    exit 1
fi
