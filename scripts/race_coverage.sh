#!/bin/sh
# race_coverage.sh — the explicit `go test -race` coverage contract.
#
# The race CI lane used to run `go list ./... | grep -v
# internal/harness`, which silently classified every new package as
# covered-or-not depending on its name. This script replaces the grep
# with an explicit ledger: every package in the module must appear in
# exactly one of the two lists below, and the script fails the build
# the moment a package is created (or renamed) without deciding its
# race story.
#
# Usage:
#   scripts/race_coverage.sh check   # assert ledger == go list ./...
#   scripts/race_coverage.sh list    # print covered packages, one per line
set -eu

# Covered: every package whose tests run under the race detector.
COVERED='
repro
repro/cluster
repro/cmd/lpsgd-experiments
repro/cmd/lpsgd-quant
repro/cmd/lpsgd-sim
repro/cmd/lpsgd-top
repro/cmd/lpsgd-trace
repro/cmd/lpsgd-train
repro/cmd/lpsgd-vet
repro/cmd/lpsgd-worker
repro/comm
repro/data
repro/elastic
repro/examples/clustertrain
repro/examples/costplanner
repro/examples/imageclassify
repro/examples/publicapi
repro/examples/quickstart
repro/examples/speechlstm
repro/health
repro/internal/core
repro/internal/lint
repro/internal/lint/analysis
repro/internal/lint/analysistest
repro/internal/lint/driver
repro/internal/report
repro/internal/simulate
repro/internal/workload
repro/lpsgd
repro/nn
repro/obs
repro/parallel
repro/quant
repro/rng
repro/sim
repro/tensor
'

# Excluded: each entry needs a reason.
#   repro/internal/harness — trains full accuracy studies end to end
#   and blows any reasonable -race time budget; its concurrency lives
#   in the fabrics, reducers, rendezvous and trainer, all covered
#   above.
EXCLUDED='
repro/internal/harness
'

mode="${1:-check}"

ledger=$(printf '%s\n%s\n' "$COVERED" "$EXCLUDED" | grep -v '^$' | sort)
actual=$(go list ./... | sort)

if [ "$ledger" != "$actual" ]; then
    echo "race_coverage.sh: package ledger is out of date." >&2
    echo "Every module package must be listed as covered or excluded (with a reason):" >&2
    diff_out=$(printf '%s\n' "$ledger" >/tmp/race_ledger.$$; printf '%s\n' "$actual" >/tmp/race_actual.$$; diff /tmp/race_ledger.$$ /tmp/race_actual.$$ || true; rm -f /tmp/race_ledger.$$ /tmp/race_actual.$$)
    echo "$diff_out" >&2
    exit 1
fi

case "$mode" in
check)
    echo "race coverage ledger matches go list ./..."
    ;;
list)
    printf '%s\n' "$COVERED" | grep -v '^$'
    ;;
*)
    echo "usage: $0 [check|list]" >&2
    exit 2
    ;;
esac
