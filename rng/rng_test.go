package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	saved := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.SetState(saved)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: got %d, want %d", i, got, w)
		}
	}
	// SetState(seed) must match New(seed) exactly.
	var a RNG
	a.SetState(7)
	b := New(7)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SetState(seed) diverges from New(seed)")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collided %d times in 1000 draws", same)
	}
}

func TestForkDeterminism(t *testing.T) {
	a := New(9).Fork(3)
	b := New(9).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("fork streams diverged at step %d", i)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.Norm(1))
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestNormStdScaling(t *testing.T) {
	r := New(5)
	const n = 100000
	var sumSq float64
	for i := 0; i < n; i++ {
		v := float64(r.Norm(0.5))
		sumSq += v * v
	}
	if got := sumSq / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("variance = %v, want ~0.25", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle altered elements: %v", xs)
	}
}

func TestUniformityRough(t *testing.T) {
	// A crude chi-square-ish check over 16 buckets.
	r := New(10)
	const n = 160000
	var counts [16]int
	for i := 0; i < n; i++ {
		counts[r.Intn(16)]++
	}
	want := n / 16
	for b, c := range counts {
		if math.Abs(float64(c-want)) > 0.05*float64(want) {
			t.Errorf("bucket %d count %d deviates >5%% from %d", b, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm(1)
	}
}
