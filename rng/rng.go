// Package rng provides a small, fast, deterministic random number
// generator used throughout the repository.
//
// Reproducibility is a hard requirement of the study: every training run,
// every stochastic quantisation decision, and every synthetic dataset must
// be bit-identical across repeated executions so that accuracy comparisons
// between codecs are attributable to the codec and not to seed drift. The
// generator is a splitmix64 core (Steele et al., "Fast splittable
// pseudorandom number generators") which passes BigCrush, needs no
// allocation, and can be forked deterministically per (worker, tensor).
package rng

import "math"

// RNG is a splitmix64 pseudorandom generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's internal state. Together with SetState
// it lets checkpoint/restore machinery (repro/elastic) capture a stream
// mid-run and resume it bit-identically: the splitmix64 state is the
// whole generator, so State/SetState round-trips losslessly.
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the generator to a state previously captured
// with State. SetState(seed) is equivalent to *r = *New(seed).
func (r *RNG) SetState(s uint64) { r.state = s }

// Fork returns an independent generator derived from the parent's seed and
// the given stream identifier. Forks with distinct ids produce
// uncorrelated streams, which lets each (worker, tensor) pair own a
// private stream while remaining reproducible.
func (r *RNG) Fork(id uint64) *RNG {
	// Mix the id through one splitmix64 round so that consecutive ids do
	// not yield consecutive seeds.
	z := r.state + 0x9e3779b97f4a7c15*(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &RNG{state: z ^ (z >> 31)}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a uniformly random float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Norm returns a normally distributed float32 with mean 0 and the given
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(std float32) float32 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return float32(z) * std
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place via the swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
