# Makefile — the `make lint` here is exactly what the CI lint lane
# runs, so a clean local `make lint` means a green lint job.
#
# Tool pins. The module itself is dependency-free (the lint suite is
# built on the standard library; see internal/lint/doc.go), so the
# external analyzers are pinned here instead of in go.mod and fetched
# with `go run pkg@version` on demand. Bump deliberately.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.3
# When the repo ever vendors golang.org/x/tools, the hand-rolled
# framework under internal/lint/{analysis,analysistest,driver} should
# be swapped for go/analysis + unitchecker at this version.
XTOOLS_TARGET := golang.org/x/tools@v0.24.0

GO ?= go
BIN := bin

.PHONY: all build test race bench lint lint-vet lint-fmt lint-external race-coverage clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# race runs the explicit ledger in scripts/race_coverage.sh — the
# script fails if a package exists that is neither covered nor
# excluded-with-a-reason.
race: race-coverage
	$(GO) test -race -timeout 15m $$(scripts/race_coverage.sh list)

race-coverage:
	scripts/race_coverage.sh check

# bench runs the observability overhead acceptances: the same training
# step with the obs plane absent vs fully attached (BENCH_step.json)
# and with the convergence-telemetry sampler off vs on at its default
# cadence (BENCH_telemetry.json).
bench:
	scripts/bench_step.sh
	scripts/bench_telemetry.sh

# lint is the whole static-analysis surface: formatting, the project's
# own analyzer suite through the real `go vet -vettool` protocol, and
# the pinned external analyzers (skipped gracefully when the module
# proxy is unreachable, unless LINT_STRICT=1 as in CI).
lint: lint-fmt lint-vet lint-external

lint-fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

$(BIN)/lpsgd-vet: FORCE
	$(GO) build -o $@ ./cmd/lpsgd-vet

FORCE:

lint-vet: $(BIN)/lpsgd-vet
	$(GO) vet -vettool=$(BIN)/lpsgd-vet ./...

lint-external:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./... && \
		$(GO) run $(GOVULNCHECK) ./...; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "lint-external: cannot fetch pinned tools and LINT_STRICT is set" >&2; exit 1; \
	else \
		echo "lint-external: SKIP (module proxy unreachable; set LINT_STRICT=1 to fail instead)"; \
	fi

clean:
	rm -rf $(BIN)
