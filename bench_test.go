// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one benchmark per exhibit, plus ablation benches for the
// substitutions the reproduction makes. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig5 benchmarks perform real (scaled-down) training and report
// accuracy metrics; the Fig6–16 benchmarks drive the calibrated
// performance simulator and report paper-shape metrics such as
// speedups. Metrics surfaced via b.ReportMetric make the regenerated
// "rows" visible directly in benchmark output.
package repro

import (
	"testing"

	"repro/comm"
	"repro/internal/harness"
	"repro/internal/workload"
	"repro/quant"
	"repro/rng"
	"repro/sim"
)

// --- Figure 5: accuracy under low-precision gradients (real training) ---

func BenchmarkFig5_ImageAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := harness.RunImageAccuracy(harness.AccuracyOptions{
			Epochs: 6, TrainN: 384, TestN: 192,
			Codecs: []harness.LabelledCodec{
				{Label: "32bit", Codec: quant.FP32{}},
				{Label: "QSGD 4bit", Codec: quant.NewQSGD(4, 512, quant.MaxNorm)},
				{Label: "QSGD 2bit", Codec: quant.NewQSGD(2, 128, quant.MaxNorm)},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*study.Find("32bit").History.BestAccuracy, "fp32_acc_%")
		b.ReportMetric(100*study.Find("QSGD 4bit").History.BestAccuracy, "q4_acc_%")
		b.ReportMetric(100*study.Find("QSGD 2bit").History.BestAccuracy, "q2_acc_%")
	}
}

func BenchmarkFig5_LSTMAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := harness.RunSequenceAccuracy(harness.AccuracyOptions{
			Epochs: 6, TrainN: 384, TestN: 192,
			Codecs: []harness.LabelledCodec{
				{Label: "32bit", Codec: quant.FP32{}},
				{Label: "1bitSGD", Codec: quant.OneBit{}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*study.Find("32bit").History.BestAccuracy, "fp32_acc_%")
		b.ReportMetric(100*study.Find("1bitSGD").History.BestAccuracy, "onebit_acc_%")
	}
}

// --- Figures 6–9: time per epoch ---

func benchEpochFigure(b *testing.B, m workload.Machine, prim sim.Primitive, gpus int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := harness.EpochTimeFigure(m, prim, gpus)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != 5 {
			b.Fatal("wrong panel count")
		}
	}
	fp, err := harness.EpochTimeTable(workload.VGG19, m, prim, gpus)
	if err != nil {
		b.Fatal(err)
	}
	_ = fp
	fp32, _ := sim.Run(sim.Config{Network: workload.VGG19, Machine: m, Primitive: prim, GPUs: gpus})
	q4, _ := sim.Run(sim.Config{Network: workload.VGG19, Machine: m, Primitive: prim,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: gpus})
	b.ReportMetric(fp32.EpochHours(), "vgg_fp32_epoch_h")
	b.ReportMetric(fp32.EpochSec/q4.EpochSec, "vgg_q4_speedup")
}

func BenchmarkFig6_EC2MPIEpochTime(b *testing.B) {
	benchEpochFigure(b, workload.EC2P2, sim.MPI, 8)
}

func BenchmarkFig7_EC2NCCLEpochTime(b *testing.B) {
	benchEpochFigure(b, workload.EC2P2, sim.NCCL, 8)
}

func BenchmarkFig8_DGXMPIEpochTime(b *testing.B) {
	benchEpochFigure(b, workload.DGX1, sim.MPI, 8)
}

func BenchmarkFig9_DGXNCCLEpochTime(b *testing.B) {
	benchEpochFigure(b, workload.DGX1, sim.NCCL, 8)
}

// --- Figures 10–11: samples/second tables ---

func BenchmarkFig10_EC2MPITables(b *testing.B) {
	var tables int
	for i := 0; i < b.N; i++ {
		ts, err := harness.ThroughputFigure(workload.EC2P2, sim.MPI)
		if err != nil {
			b.Fatal(err)
		}
		tables = len(ts)
	}
	b.ReportMetric(float64(tables), "network_blocks")
}

func BenchmarkFig11_EC2NCCLTables(b *testing.B) {
	var tables int
	for i := 0; i < b.N; i++ {
		ts, err := harness.ThroughputFigure(workload.EC2P2, sim.NCCL)
		if err != nil {
			b.Fatal(err)
		}
		tables = len(ts)
	}
	b.ReportMetric(float64(tables), "network_blocks")
}

// --- Figures 12–15: scalability ---

func BenchmarkFig12to15_Scalability(b *testing.B) {
	configs := []struct {
		m    workload.Machine
		prim sim.Primitive
	}{
		{workload.EC2P2, sim.MPI},
		{workload.EC2P2, sim.NCCL},
		{workload.DGX1, sim.MPI},
		{workload.DGX1, sim.NCCL},
	}
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			if _, err := harness.ScalabilityFigure(cfg.m, cfg.prim); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Surface the AlexNet MPI 16-GPU scalability contrast the paper
	// highlights (quantised ≈8×, full precision <3×).
	fp, _ := sim.Run(sim.Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: sim.MPI, GPUs: 16})
	ob, _ := sim.Run(sim.Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: sim.MPI, Codec: quant.OneBit{}, GPUs: 16})
	base, _ := sim.Run(sim.Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: sim.MPI, GPUs: 1})
	b.ReportMetric(fp.SamplesPerSec/base.SamplesPerSec, "alexnet_fp32_scal16")
	b.ReportMetric(ob.SamplesPerSec/base.SamplesPerSec, "alexnet_1bit_scal16")
}

// --- Figure 16: cost/accuracy and the extrapolation sweep ---

func BenchmarkFig16_CostAccuracy(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		row, err := harness.CheapestTraining(workload.ResNet152)
		if err != nil {
			b.Fatal(err)
		}
		last = row.CostDollars
	}
	b.ReportMetric(last, "resnet152_cost_$")
}

func BenchmarkFig16_SpeedupVsRatio(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows, err := harness.SpeedupSweep()
		if err != nil {
			b.Fatal(err)
		}
		last = rows[len(rows)-1].Speedup
	}
	b.ReportMetric(last, "asymptotic_speedup")
}

// --- Ablations: the reproduction's own design choices ---

// BenchmarkAblation_BucketSize measures how QSGD encode cost and wire
// size move with bucket size — the accuracy/overhead lever of §5.1.
func BenchmarkAblation_BucketSize(b *testing.B) {
	r := rng.New(1)
	const n = 1 << 20
	src := make([]float32, n)
	for i := range src {
		src[i] = r.Norm(1)
	}
	shape := quant.Shape{Rows: 1024, Cols: n / 1024}
	for _, bucket := range []int{32, 128, 512, 8192} {
		b.Run(byteLabel("bucket", bucket), func(b *testing.B) {
			c := quant.NewQSGD(4, bucket, quant.MaxNorm)
			enc := c.NewEncoder(n, shape, 1)
			b.SetBytes(4 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Encode(src)
			}
			b.ReportMetric(float64(c.EncodedBytes(n, shape)), "wire_bytes")
		})
	}
}

// BenchmarkAblation_NormChoice compares max-norm and 2-norm scaling.
func BenchmarkAblation_NormChoice(b *testing.B) {
	r := rng.New(2)
	const n = 1 << 20
	src := make([]float32, n)
	for i := range src {
		src[i] = r.Norm(1)
	}
	shape := quant.Shape{Rows: 1024, Cols: n / 1024}
	for _, norm := range []quant.Norm{quant.MaxNorm, quant.TwoNorm} {
		b.Run(norm.String(), func(b *testing.B) {
			c := quant.NewQSGD(4, 512, norm)
			enc := c.NewEncoder(n, shape, 1)
			b.SetBytes(4 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.Encode(src)
			}
		})
	}
}

// BenchmarkAblation_Reshaping contrasts classic column-wise 1bitSGD
// with the reshaped variant on the ResNet152 tensor inventory — the
// paper's §3.2 fix, worth ~4× end to end.
func BenchmarkAblation_Reshaping(b *testing.B) {
	for _, tc := range []struct {
		name  string
		codec quant.Codec
	}{
		{"classic", quant.OneBit{}},
		{"reshaped64", quant.NewOneBitReshaped(64)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var r sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = sim.Run(sim.Config{
					Network: workload.ResNet152, Machine: workload.EC2P2,
					Primitive: sim.MPI, Codec: tc.codec, GPUs: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.SamplesPerSec, "samples/s")
			b.ReportMetric(float64(r.WireBytes)/1e6, "wire_MB")
		})
	}
}

// BenchmarkAblation_Overlap sweeps the double-buffering overlap knob
// (§3.2.1): hiding communication behind compute shrinks the AlexNet
// MPI iteration until the compute floor is reached.
func BenchmarkAblation_Overlap(b *testing.B) {
	for _, ov := range []float64{0, 0.25, 0.5, 0.9} {
		b.Run("overlap="+itoa(int(ov*100))+"pct", func(b *testing.B) {
			var r sim.Result
			var err error
			for i := 0; i < b.N; i++ {
				r, err = sim.Run(sim.Config{
					Network: workload.AlexNet, Machine: workload.EC2P2,
					Primitive: sim.MPI, GPUs: 8, Overlap: ov,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.SamplesPerSec, "samples/s")
		})
	}
}

// BenchmarkAblation_Primitive moves real encoded bytes through the two
// aggregation algorithms over the in-process fabric.
func BenchmarkAblation_Primitive(b *testing.B) {
	const n, k = 1 << 16, 4
	r := rng.New(3)
	grads := make([][]float32, k)
	for w := range grads {
		grads[w] = make([]float32, n)
		for i := range grads[w] {
			grads[w][i] = r.Norm(1)
		}
	}
	runOnce := func(red comm.Reducer) {
		done := make(chan error, k)
		for w := 0; w < k; w++ {
			go func(w int) {
				g := append([]float32(nil), grads[w]...)
				done <- red.Reduce(w, 0, g)
			}(w)
		}
		for w := 0; w < k; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("mpi-rb-fp32", func(b *testing.B) {
		f := comm.NewFabric(k)
		red := comm.NewReduceBroadcast(f, []comm.TensorSpec{
			{Name: "g", N: n, Wire: quant.Shape{Rows: 256, Cols: n / 256}, Codec: quant.FP32{}},
		}, 1)
		b.SetBytes(4 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(red)
		}
	})
	b.Run("mpi-rb-qsgd4", func(b *testing.B) {
		f := comm.NewFabric(k)
		red := comm.NewReduceBroadcast(f, []comm.TensorSpec{
			{Name: "g", N: n, Wire: quant.Shape{Rows: 256, Cols: n / 256},
				Codec: quant.NewQSGD(4, 512, quant.MaxNorm)},
		}, 1)
		b.SetBytes(4 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(red)
		}
	})
	b.Run("nccl-ring-fp32", func(b *testing.B) {
		red := comm.NewRing(comm.NewFabric(k))
		b.SetBytes(4 * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOnce(red)
		}
	})
}

// byteLabel renders sub-benchmark names like "bucket=512".
func byteLabel(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Precision policies: wire volume across the paper's codec ladder
// and mixed per-layer schemes (the study the policy grammar opens) ---

// BenchmarkPolicyWireBytes prices one AlexNet gradient exchange under
// every paper codec and two mixed per-layer policies, reporting the
// encoded volume of one model copy, the full K=8 framed exchange, and
// the compression over raw float32 — the traffic side of the
// accuracy-vs-traffic frontier per-layer assignment moves along.
func BenchmarkPolicyWireBytes(b *testing.B) {
	net := workload.AlexNet
	var policies []string
	for _, c := range quant.PaperCodecs() {
		policies = append(policies, c.Name())
	}
	policies = append(policies,
		// Sparse giant FC layers, raw biases, 4-bit elsewhere.
		"qsgd4b512;fc6=topk0.001;fc7=topk0.001;*.b=32bit",
		// Conservative 8-bit convolutions under a 4-bit default.
		"qsgd4b512;minfrac=1;conv*=qsgd8b512",
	)
	const k = 8
	for _, name := range policies {
		policy := quant.MustParsePolicy(name)
		b.Run(name, func(b *testing.B) {
			var plan *quant.Plan
			var exchange int64
			for i := 0; i < b.N; i++ {
				plan = quant.NewPlan(policy, net.Tensors)
				specs := make([]comm.TensorSpec, len(net.Tensors))
				for t, ti := range net.Tensors {
					specs[t] = comm.TensorSpec{Name: ti.Name, N: ti.Shape.Len(),
						Wire: ti.Shape, Codec: plan.CodecFor(t)}
				}
				exchange = comm.ReduceBroadcastWireBytes(specs, k, true)
			}
			b.ReportMetric(float64(plan.WireBytes())/1e6, "wire_MB/copy")
			b.ReportMetric(float64(exchange)/1e6, "exchange_MB@8")
			b.ReportMetric(float64(plan.RawBytes())/float64(plan.WireBytes()), "compression_x")
		})
	}
}
