package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/comm"
	"repro/internal/workload"
	"repro/quant"
)

// mustScenario loads a checked-in scenario.
func mustScenario(t testing.TB, name string) Scenario {
	t.Helper()
	sc, err := LoadScenario("testdata/" + name + ".json")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustRunScenario(t testing.TB, sc Scenario) *ClusterResult {
	t.Helper()
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScenarioDeterminism: same seed, same trace, same summary — the
// engine's core invariant, asserted on the 1024-rank scenario that
// exercises every generator at once (topology, stragglers, jitter,
// failure/rejoin).
func TestScenarioDeterminism(t *testing.T) {
	sc := mustScenario(t, "mega_1024")
	a := mustRunScenario(t, sc)
	b := mustRunScenario(t, sc)
	if a.TraceHash != b.TraceHash {
		t.Fatalf("same seed produced different traces: %s vs %s", a.TraceHash, b.TraceHash)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}

	// The retained trace is the hashed trace: replaying with the trace
	// kept must not change a single draw.
	c, trace, err := RunScenarioTrace(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if c.TraceHash != a.TraceHash {
		t.Fatalf("keeping the trace changed the trace: %s vs %s", c.TraceHash, a.TraceHash)
	}
	if int64(len(trace)) != c.Events {
		t.Fatalf("trace has %d events, summary counted %d", len(trace), c.Events)
	}

	// And the seed must matter: a different seed reshuffles the world.
	sc.Seed++
	d := mustRunScenario(t, sc)
	if d.TraceHash == a.TraceHash {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestMegaScenarioRecovery: the ≥1000-rank acceptance scenario — 1024
// ranks, lognormal stragglers, a mid-session failure — must survive its
// failure through the rejoin path and finish every step, with the
// pinned straggler named by the attribution.
func TestMegaScenarioRecovery(t *testing.T) {
	sc := mustScenario(t, "mega_1024")
	if sc.Ranks < 1000 {
		t.Fatalf("acceptance scenario has %d ranks, want >= 1000", sc.Ranks)
	}
	res := mustRunScenario(t, sc)
	if res.StepsCompleted != sc.Steps || res.AbortedAtStep != 0 {
		t.Fatalf("rejoin scenario should finish all %d steps, got %d (aborted at %d)",
			sc.Steps, res.StepsCompleted, res.AbortedAtStep)
	}
	if len(res.Rejoins) != 1 {
		t.Fatalf("want exactly one rejoin episode, got %d", len(res.Rejoins))
	}
	rj := res.Rejoins[0]
	if rj.Step != 11 || rj.Rank != 137 {
		t.Errorf("rejoin attributed to step %d rank %d, want step 11 rank 137", rj.Step, rj.Rank)
	}
	if rj.DetectNS <= 0 || rj.RendezvousNS <= 0 || rj.TransferNS <= 0 || rj.SnapshotBytes <= 0 {
		t.Errorf("rejoin cost has non-positive components: %+v", rj)
	}
	if rj.TotalNS < rj.DetectNS+rj.RendezvousNS+rj.TransferNS {
		t.Errorf("rejoin total %d ns below the sum of its parts", rj.TotalNS)
	}
	if res.SlowestRank != 777 {
		t.Errorf("slowest rank %d, want the pinned 3× straggler 777", res.SlowestRank)
	}
	if len(res.TopStragglers) == 0 || res.TopStragglers[0].Rank != 777 {
		t.Errorf("top straggler attribution %+v, want rank 777 first", res.TopStragglers)
	}
	// The failed step's duration spans the whole recovery episode: at
	// least a typical step plus (most of) the rejoin timeline.
	if res.StepNS.MaxNS < res.StepNS.P50NS+rj.TotalNS*9/10 {
		t.Errorf("recovery step %d ns should carry the rejoin cost on top of the median %d ns (rejoin %d ns)",
			res.StepNS.MaxNS, res.StepNS.P50NS, rj.TotalNS)
	}
	if res.PerRank != nil {
		t.Error("1024-rank result should omit per-rank timelines")
	}

	// Removing the failure must shorten the session.
	clean := sc
	clean.Failures = nil
	if cres := mustRunScenario(t, clean); cres.MakespanNS >= res.MakespanNS {
		t.Errorf("failure-free makespan %d ns not below failed one %d ns", cres.MakespanNS, res.MakespanNS)
	}
}

// TestAbortScenario: a non-rejoin failure ends the session in a
// coordinated abort at detection time.
func TestAbortScenario(t *testing.T) {
	sc := mustScenario(t, "abort_8")
	res := mustRunScenario(t, sc)
	if res.AbortedAtStep != 5 {
		t.Fatalf("aborted at step %d, want 5", res.AbortedAtStep)
	}
	if res.StepsCompleted != 4 {
		t.Fatalf("completed %d steps before the abort, want 4", res.StepsCompleted)
	}
	if len(res.Rejoins) != 0 {
		t.Fatalf("abort must not record a rejoin, got %+v", res.Rejoins)
	}
	if res.TotalExchangeBytes != res.ExchangeBytesPerStep*4 {
		t.Fatalf("aborted attempt leaked exchange bytes: total %d, per-step %d × 4 completed",
			res.TotalExchangeBytes, res.ExchangeBytesPerStep)
	}
}

// TestClusterExchangeBytesMatchTCP is the cross-validation headline:
// for the checked-in 3-rank scenarios, the cluster simulator's
// per-step exchange bytes must equal — byte for byte — what a live
// loopback TCP exchange of the same tensors under the same policy and
// primitive puts on the wire.
func TestClusterExchangeBytesMatchTCP(t *testing.T) {
	for _, name := range []string{"tcp_parity_mpi_3", "tcp_parity_ring_3"} {
		t.Run(name, func(t *testing.T) {
			sc := mustScenario(t, name)
			if sc.Ranks < 2 || sc.Ranks > 4 {
				t.Fatalf("cross-validation scenario has %d ranks, want 2..4", sc.Ranks)
			}
			res := mustRunScenario(t, sc)

			infos, err := sc.tensorInfos()
			if err != nil {
				t.Fatal(err)
			}
			policy := quant.MustParsePolicy(sc.Policy)
			plan := quant.NewPlan(policy, infos)
			k := sc.Ranks
			tcp, err := comm.NewTCPFabric(k)
			if err != nil {
				t.Fatal(err)
			}
			defer tcp.Close()

			var wg sync.WaitGroup
			errs := make([]error, k)
			switch sc.Primitive {
			case "MPI":
				specs := make([]comm.TensorSpec, len(infos))
				for i, ti := range infos {
					specs[i] = comm.TensorSpec{Name: ti.Name, N: ti.Shape.Len(),
						Wire: ti.Shape, Codec: plan.CodecFor(i)}
				}
				rb := comm.NewReduceBroadcast(tcp, specs, 5)
				for w := 0; w < k; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for ti := range specs {
							g := make([]float32, specs[ti].N)
							for i := range g {
								g[i] = float32(i%7) - 3
							}
							if err := rb.Reduce(w, ti, g); err != nil {
								errs[w] = err
								return
							}
						}
					}(w)
				}
			case "NCCL":
				ring := comm.NewRing(tcp)
				for w := 0; w < k; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for ti, info := range infos {
							g := make([]float32, info.Shape.Len())
							if err := ring.Reduce(w, ti, g); err != nil {
								errs[w] = err
								return
							}
						}
					}(w)
				}
			default:
				t.Fatalf("unexpected primitive %q", sc.Primitive)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			measured := tcp.TotalBytes()
			if res.ExchangeBytesPerStep != measured {
				t.Errorf("simulator predicts %d exchange bytes per step, TCP moved %d",
					res.ExchangeBytesPerStep, measured)
			}
			if want := measured * int64(sc.Steps); res.TotalExchangeBytes != want {
				t.Errorf("session total %d bytes, want %d (%d steps × measured exchange)",
					res.TotalExchangeBytes, want, sc.Steps)
			}
		})
	}
}

// TestClusterMatchesSingleExchangeBytes: on a flat default topology the
// cluster simulator and the single-exchange model must agree exactly on
// exchange volume — they share the comm wire-byte arithmetic.
func TestClusterMatchesSingleExchangeBytes(t *testing.T) {
	sc := Scenario{Name: "agree", Ranks: 8, Steps: 3, Policy: "qsgd4b512"}
	res := mustRunScenario(t, sc)
	single, err := Run(Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Policy: quant.MustParsePolicy("qsgd4b512"), GPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExchangeBytesPerStep != single.ExchangeBytes {
		t.Fatalf("cluster per-step bytes %d != single-exchange %d",
			res.ExchangeBytesPerStep, single.ExchangeBytes)
	}
}

// TestStragglerGatesBarrier: a pinned slow rank must be charged with
// gating and named SlowestRank.
func TestStragglerGatesBarrier(t *testing.T) {
	sc := Scenario{
		Name: "one-slow", Ranks: 4, Steps: 10,
		Stragglers: &StragglerModel{Slow: []SlowRank{{Rank: 2, Factor: 4}}},
	}
	res := mustRunScenario(t, sc)
	if res.SlowestRank != 2 {
		t.Fatalf("slowest rank %d, want 2", res.SlowestRank)
	}
	if res.TopStragglers[0].Rank != 2 || res.TopStragglers[0].GatedSteps != 10 {
		t.Fatalf("rank 2 should gate all 10 steps, got %+v", res.TopStragglers)
	}
	if res.TopStragglers[0].FactorMilli != 4000 {
		t.Fatalf("factor %d milli, want 4000", res.TopStragglers[0].FactorMilli)
	}
	// Everyone else's blocked time is positive; the straggler's is zero.
	for _, pr := range res.PerRank {
		if pr.Rank == 2 && pr.BlockedNS != 0 {
			t.Errorf("the straggler itself should never wait, blocked %d ns", pr.BlockedNS)
		}
		if pr.Rank != 2 && pr.BlockedNS == 0 {
			t.Errorf("rank %d should block on the straggler", pr.Rank)
		}
	}
}

// TestOversubscriptionSlowsExchange: squeezing the host uplink must
// stretch the makespan and nothing else — exchange bytes stay put.
func TestOversubscriptionSlowsExchange(t *testing.T) {
	base := Scenario{
		Name: "flat", Ranks: 16, Steps: 5,
		Topology: &Topology{
			RanksPerHost: 4,
			Intra:        Link{GBps: 8, LatencyUS: 60},
			Inter:        Link{GBps: 1.2, LatencyUS: 200},
		},
	}
	over := base
	overTopo := *base.Topology
	overTopo.Oversubscription = 8
	over.Topology = &overTopo

	rBase := mustRunScenario(t, base)
	rOver := mustRunScenario(t, over)
	if rOver.MakespanNS <= rBase.MakespanNS {
		t.Fatalf("8:1 oversubscription should slow the session (%d <= %d ns)",
			rOver.MakespanNS, rBase.MakespanNS)
	}
	if rOver.ExchangeBytesPerStep != rBase.ExchangeBytesPerStep {
		t.Fatal("oversubscription must not change exchange bytes")
	}
}

// TestDegradedPairLinkGates: a single degraded pair link makes its
// endpoints the stragglers without touching byte accounting.
func TestDegradedPairLinkGates(t *testing.T) {
	sc := Scenario{
		Name: "bad-nic", Ranks: 8, Steps: 6,
		Topology: &Topology{
			Intra: Link{GBps: 8, LatencyUS: 60},
			Pairs: []PairLink{{A: 1, B: 6, Link: Link{GBps: 0.05, LatencyUS: 500}}},
		},
	}
	res := mustRunScenario(t, sc)
	// Both endpoints pay the degraded link and finish the exchange at
	// the same instant; the deterministic tie-break charges the lowest
	// rank, so rank 1 is named every step.
	if res.SlowestRank != 1 {
		t.Fatalf("slowest rank %d, want 1 (lower endpoint of the degraded pair)", res.SlowestRank)
	}
	if res.PerRank[6].CommNS != res.PerRank[1].CommNS {
		t.Fatalf("both endpoints should pay the degraded link equally (%d vs %d ns)",
			res.PerRank[6].CommNS, res.PerRank[1].CommNS)
	}
	if res.PerRank[1].CommNS <= 10*res.PerRank[0].CommNS {
		t.Fatalf("degraded pair comm %d ns should dwarf a healthy rank's %d ns",
			res.PerRank[1].CommNS, res.PerRank[0].CommNS)
	}
}

// TestReplayedComputeDrivesTimeline: a replayed measured schedule
// overrides the calibrated compute model for the replayed prefix.
func TestReplayedComputeDrivesTimeline(t *testing.T) {
	sc := Scenario{
		Name: "replay", Ranks: 2, Steps: 3,
		Tensors: []TensorDim{{Name: "w", Rows: 4, Cols: 4}},
		ReplayComputeMS: [][]float64{
			{100, 1},
			{1, 200},
		},
	}
	res, trace, err := RunScenarioTrace(sc, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsCompleted != 3 {
		t.Fatalf("completed %d steps, want 3", res.StepsCompleted)
	}
	// Step 1 is gated by rank 0's 100 ms, step 2 by rank 1's 200 ms.
	if res.StepNS.MinNS < 99e6 {
		t.Errorf("replayed step floor %d ns, want >= 99 ms", res.StepNS.MinNS)
	}
	var computes int
	for _, ev := range trace {
		if ev.Kind == "compute" {
			computes++
		}
	}
	if computes != 6 {
		t.Errorf("trace has %d compute events, want 6 (2 ranks × 3 steps)", computes)
	}
}

// TestJitterPerturbsDeterministically: jitter changes the timeline but
// stays reproducible under the seed.
func TestJitterPerturbsDeterministically(t *testing.T) {
	quiet := Scenario{Name: "quiet", Ranks: 8, Steps: 5, Seed: 3}
	noisy := quiet
	noisy.Jitter = &JitterModel{Dist: "uniform", MaxMS: 2}
	rq := mustRunScenario(t, quiet)
	rn := mustRunScenario(t, noisy)
	if rn.MakespanNS <= rq.MakespanNS {
		t.Fatalf("jitter should stretch the makespan (%d <= %d ns)", rn.MakespanNS, rq.MakespanNS)
	}
	if again := mustRunScenario(t, noisy); again.TraceHash != rn.TraceHash {
		t.Fatal("jittered run is not reproducible from its seed")
	}
}

// TestScenarioValidation walks the decoder's rejection surface.
func TestScenarioValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		json string
	}{
		{"no ranks", `{"name":"x","steps":2}`},
		{"too many ranks", `{"ranks":1000000,"steps":2}`},
		{"no steps", `{"ranks":4}`},
		{"unknown field", `{"ranks":4,"steps":2,"bogus":1}`},
		{"trailing data", `{"ranks":4,"steps":2}{"ranks":1}`},
		{"bad primitive", `{"ranks":4,"steps":2,"primitive":"GLOO"}`},
		{"bad policy", `{"ranks":4,"steps":2,"policy":"qsgd999"}`},
		{"bad tensor", `{"ranks":4,"steps":2,"tensors":[{"rows":0,"cols":3}]}`},
		{"slow rank outside world", `{"ranks":4,"steps":2,"stragglers":{"slow":[{"rank":9,"factor":2}]}}`},
		{"slow factor below one", `{"ranks":4,"steps":2,"stragglers":{"slow":[{"rank":1,"factor":0.5}]}}`},
		{"bad straggler dist", `{"ranks":4,"steps":2,"stragglers":{"dist":"pareto"}}`},
		{"bad jitter dist", `{"ranks":4,"steps":2,"jitter":{"dist":"gamma"}}`},
		{"failure step outside run", `{"ranks":4,"steps":2,"failures":[{"step":9,"rank":1}]}`},
		{"failure rank outside world", `{"ranks":4,"steps":2,"failures":[{"step":1,"rank":7}]}`},
		{"failure at_frac one", `{"ranks":4,"steps":2,"failures":[{"step":1,"rank":1,"at_frac":1}]}`},
		{"two failures one step", `{"ranks":4,"steps":2,"failures":[{"step":1,"rank":1},{"step":1,"rank":2}]}`},
		{"replay too long", `{"ranks":2,"steps":1,"replay_compute_ms":[[1,1],[1,1]]}`},
		{"replay row mismatch", `{"ranks":2,"steps":2,"replay_compute_ms":[[1,1,1]]}`},
		{"replay negative", `{"ranks":2,"steps":2,"replay_compute_ms":[[1,-1]]}`},
		{"pair override outside world", `{"ranks":4,"steps":2,"topology":{"intra":{"gbps":1,"latency_us":1},"pairs":[{"a":0,"b":9,"link":{"gbps":1,"latency_us":1}}]}}`},
		{"zero intra bandwidth", `{"ranks":4,"steps":2,"topology":{"intra":{"gbps":0,"latency_us":1}}}`},
	} {
		if _, err := DecodeScenario([]byte(tc.json)); err == nil {
			t.Errorf("%s: decode accepted %s", tc.name, tc.json)
		}
	}
	if _, err := DecodeScenario(make([]byte, MaxScenarioBytes+1)); err == nil {
		t.Error("oversized scenario accepted")
	}
	// Unknown names pass offline validation and fail at run time.
	if _, err := RunScenario(Scenario{Ranks: 2, Steps: 1, Network: "NoSuchNet"}); err == nil {
		t.Error("unknown network accepted at run time")
	}
	if _, err := RunScenario(Scenario{Ranks: 2, Steps: 1, Machine: "NoSuchBox"}); err == nil {
		t.Error("unknown machine accepted at run time")
	}
}
