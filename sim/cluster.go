package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/workload"
	"repro/quant"
	"repro/rng"
)

// Cluster-scale simulation: RunScenario executes a Scenario on the
// discrete-event engine, modelling each synchronous step as the DAG
//
//	compute(r) → quantise(r) → transfer(r) ─┐
//	   (for every rank r)                   ├→ barrier → next step
//	compute(r') → quantise(r') → ...       ─┘
//
// The rank whose transfer finishes last gates the barrier — the
// step's straggler. Compute time is anchored to the same calibrated
// throughput the single-exchange model uses; exchange bytes go through
// comm.ReduceBroadcastWireBytes / RingWireBytes so simulated volumes
// match live TCP measurements exactly; transfer time flows through the
// Topology's link classes.
//
// A FailureEvent suspends the DAG mid-step and replays the live
// subsystems' recovery analytically: the victim dies during compute,
// survivors finish quantising and then block in the exchange, the
// failure detector's hard deadline expires, the coordinated abort
// unblocks everyone, the re-rendezvous admits a replacement, the donor
// streams the session snapshot (weights + velocity, 2× the raw model
// volume), and the interrupted step re-runs from scratch. The aborted
// attempt's partial exchange contributes zero bytes — matching the
// live stack, where the aborted fabric incarnation's counters are
// folded away on rejoin.

// Distribution summarises step times in integer nanoseconds
// (nearest-rank percentiles), keeping golden datasets byte-exact.
type Distribution struct {
	MinNS  int64 `json:"min_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
}

// RankGating attributes barrier-gating to one rank.
type RankGating struct {
	Rank int `json:"rank"`
	// GatedSteps counts the completed steps this rank gated.
	GatedSteps int `json:"gated_steps"`
	// FactorMilli is the rank's straggler factor ×1000, rounded.
	FactorMilli int64 `json:"factor_milli"`
}

// RejoinCost breaks down one analytic failure-recovery episode.
type RejoinCost struct {
	Step int `json:"step"`
	Rank int `json:"rank"`
	// DetectNS is death → failure-detector verdict (the heartbeat
	// hard deadline).
	DetectNS int64 `json:"detect_ns"`
	// RendezvousNS covers the coordinated abort, quiesce and
	// re-rendezvous round trips.
	RendezvousNS int64 `json:"rendezvous_ns"`
	// TransferNS is the donor's snapshot stream to the replacement.
	TransferNS int64 `json:"transfer_ns"`
	// SnapshotBytes is the streamed state volume.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// TotalNS is death → the interrupted step restarting.
	TotalNS int64 `json:"total_ns"`
}

// RankSummary is one rank's timeline totals.
type RankSummary struct {
	Rank int `json:"rank"`
	// ComputeNS, QuantNS and CommNS are the rank's cumulative phase
	// times; BlockedNS is time spent waiting at barriers (or blocked
	// in an aborted exchange) for other ranks.
	ComputeNS  int64 `json:"compute_ns"`
	QuantNS    int64 `json:"quant_ns"`
	CommNS     int64 `json:"comm_ns"`
	BlockedNS  int64 `json:"blocked_ns"`
	GatedSteps int   `json:"gated_steps"`
}

// maxPerRankSummary caps the worlds that carry full per-rank timelines
// in the result; larger worlds summarise through TopStragglers.
const maxPerRankSummary = 64

// ClusterResult is one simulated session's summary. Every field is
// integer- or string-valued so golden datasets compare byte-for-byte.
type ClusterResult struct {
	Name  string `json:"name"`
	Seed  uint64 `json:"seed"`
	Ranks int    `json:"ranks"`
	// StepsCompleted counts completed synchronous steps; it falls
	// short of the scenario's Steps only when a non-rejoin failure
	// aborted the session (AbortedAtStep marks where).
	StepsCompleted int `json:"steps_completed"`
	AbortedAtStep  int `json:"aborted_at_step,omitempty"`
	// Events is the number of discrete events fired.
	Events int64 `json:"events"`
	// MakespanNS is the logical end-to-end session time.
	MakespanNS int64 `json:"makespan_ns"`
	// StepNS distributes completed step durations (a failed step's
	// duration includes its whole recovery episode).
	StepNS Distribution `json:"step_ns"`
	// ExchangeBytesPerStep is the exact fabric volume of one completed
	// exchange (comm wire-byte arithmetic); TotalExchangeBytes is that
	// times the completed exchanges. Aborted attempts contribute zero.
	ExchangeBytesPerStep int64 `json:"exchange_bytes_per_step"`
	TotalExchangeBytes   int64 `json:"total_exchange_bytes"`
	// SlowestRank is the rank that gated the most completed steps
	// (ties resolve to the lowest rank; -1 when no step completed) —
	// the simulated counterpart of parallel.EpochStats.SlowestRank.
	SlowestRank int `json:"slowest_rank"`
	// TopStragglers ranks the worst barrier-gaters (up to five).
	TopStragglers []RankGating `json:"top_stragglers,omitempty"`
	// Rejoins lists each recovery episode's cost breakdown.
	Rejoins []RejoinCost `json:"rejoins,omitempty"`
	// PerRank carries full rank timelines for worlds of up to 64
	// ranks; larger worlds omit it.
	PerRank []RankSummary `json:"per_rank,omitempty"`
	// TraceHash fingerprints the full event trace; two runs are
	// event-identical iff their hashes match.
	TraceHash string `json:"trace_hash"`
}

// parsePrimitive maps a scenario's primitive string.
func parsePrimitive(s string) (Primitive, error) {
	switch strings.ToUpper(s) {
	case "", "MPI":
		return MPI, nil
	case "NCCL":
		return NCCL, nil
	}
	return MPI, fmt.Errorf("sim: unknown primitive %q", s)
}

// runner holds one simulation's state while the engine drains.
type runner struct {
	sc   Scenario
	eng  *Engine
	k    int
	topo *Topology

	// Per-rank static pricing (straggler factors applied).
	factors []float64
	baseNS  []int64 // calibrated compute per step
	quantNS []int64
	commNS  []int64

	jitter  *rng.RNG
	replay  [][]float64
	failAt  map[int]*FailureEvent
	perStep int64 // exchange bytes per completed step

	// Replacement-hardware pricing and snapshot volume for rejoins.
	freshBaseNS   int64
	freshQuantNS  int64
	snapshotBytes int64

	// Per-attempt barrier state.
	attempt   int
	stepStart int64 // original start of the running step (survives re-runs)
	ready     int
	gateRank  int
	gateAt    int64
	finish    []int64 // per-rank phase-finish times this attempt (-1 unset)

	// Pending-recovery state of a failed attempt: the re-run starts
	// only when the rejoin timeline has played out AND every survivor
	// has parked at the rejoin barrier (quiesced), like the live
	// protocol's barrier.
	parked      int
	rejoinReady bool
	pendingRes  RejoinCost
	pendingStep int

	// Accumulators.
	stepDur   []int64
	gated     []int
	compTot   []int64
	quantTot  []int64
	commTot   []int64
	blockTot  []int64
	rejoins   []RejoinCost
	exchanges int64
	aborted   int
	doneNS    int64
}

// RunScenario simulates the scenario and returns its summary.
func RunScenario(sc Scenario) (*ClusterResult, error) {
	res, _, err := RunScenarioTrace(sc, false)
	return res, err
}

// RunScenarioTrace is RunScenario with an optional retained event
// trace (per-rank timelines for the CLI and the determinism tests).
func RunScenarioTrace(sc Scenario, keepTrace bool) (*ClusterResult, []Event, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	prim, err := parsePrimitive(sc.Primitive)
	if err != nil {
		return nil, nil, err
	}
	machineName := sc.Machine
	if machineName == "" {
		machineName = "EC2-P2"
	}
	m, err := workload.MachineByName(machineName)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	netName := sc.Network
	if netName == "" {
		netName = "AlexNet"
	}
	net, err := workload.NetworkByName(netName)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	infos, err := sc.tensorInfos()
	if err != nil {
		return nil, nil, err
	}
	policyStr := sc.Policy
	if policyStr == "" {
		policyStr = "32bit"
	}
	policy, err := quant.ParsePolicy(policyStr)
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	plan := quant.NewPlan(policy, infos)
	k := sc.Ranks

	// Compute anchor: the calibrated per-sample time of the scenario's
	// network (AlexNet when only synthetic tensors are given) on the
	// machine's GPU — the same anchor Run uses.
	perRank := sc.PerRankBatch
	if perRank == 0 {
		perRank = 32
	}
	sampleSec := 1 / (net.ThroughputK80 * net.SampleSpeedup(perRank) * m.GPU.ComputeScale)
	baseComputeNS := int64(math.Round(float64(perRank) * sampleSec * 1e9))
	baseQuantNS := int64(math.Round(quantTime(plan, infos, DefaultKernel, prim, m.GPU.ComputeScale) * 1e9))

	// Exchange volume: exact accounting through the shared comm
	// arithmetic, and a per-rank transfer share for the link model.
	perStepBytes := int64(0)
	var perRankXferBytes float64
	if k > 1 {
		perStepBytes = exchangeBytes(plan, infos, prim, k, sc.Framed)
		switch prim {
		case MPI:
			perRankXferBytes = float64(perStepBytes) / float64(k)
		case NCCL:
			// A ring peer transmits 2(K−1)/K of one buffer; time is
			// priced on the (possibly quantised) simulated volume, as
			// in the paper's low-precision NCCL accounting.
			wireCopy := plan.WireBytes()
			if sc.Framed {
				raw := exchangeBytes(plan, infos, NCCL, k, false)
				wireCopy += (perStepBytes - raw) / int64(2*(k-1))
			}
			perRankXferBytes = 2 * float64(k-1) / float64(k) * float64(wireCopy)
		}
	}

	topo := sc.Topology
	if topo == nil {
		link := m.MPI
		if prim == NCCL {
			link = m.NCCL
		}
		topo = defaultTopology(LinkParams{GBps: link.BaseGBps, LatencyUS: link.LatencyPerMsg * 1e6})
	}

	root := rng.New(sc.Seed)
	stragglerRng := root.Fork(1)
	r := &runner{
		sc:       sc,
		eng:      NewEngine(keepTrace),
		k:        k,
		topo:     topo,
		factors:  make([]float64, k),
		baseNS:   make([]int64, k),
		quantNS:  make([]int64, k),
		commNS:   make([]int64, k),
		jitter:   root.Fork(2),
		replay:   sc.ReplayComputeMS,
		failAt:   map[int]*FailureEvent{},
		perStep:  perStepBytes,
		finish:   make([]int64, k),
		gated:    make([]int, k),
		compTot:  make([]int64, k),
		quantTot: make([]int64, k),
		commTot:  make([]int64, k),
		blockTot: make([]int64, k),
	}
	for i := range sc.Failures {
		f := sc.Failures[i]
		r.failAt[f.Step] = &f
	}
	// Persistent straggler factors, drawn in rank order from the
	// seeded stream, with named overrides applied after.
	for rank := 0; rank < k; rank++ {
		r.factors[rank] = drawFactor(sc.Stragglers, stragglerRng)
	}
	if sc.Stragglers != nil {
		for _, sr := range sc.Stragglers.Slow {
			r.factors[sr.Rank] = sr.Factor
		}
	}
	for rank := 0; rank < k; rank++ {
		f := r.factors[rank]
		r.baseNS[rank] = int64(math.Round(float64(baseComputeNS) * f))
		r.quantNS[rank] = int64(math.Round(float64(baseQuantNS) * f))
		if k > 1 {
			r.commNS[rank] = topo.rankCommNS(rank, k, len(infos), perRankXferBytes)
		}
	}

	// Replacement ranks run on fresh (factor-1) hardware; the snapshot
	// they receive is weights + optimizer velocity (the elastic
	// package's dominant payload) plus a fixed header.
	r.freshBaseNS = baseComputeNS
	r.freshQuantNS = baseQuantNS
	r.snapshotBytes = 2*plan.RawBytes() + 64

	r.startStep(1, false)
	events := r.eng.Run()

	return r.summarise(events), r.eng.Trace(), nil
}

// drawFactor draws one rank's persistent slowdown factor (≥ 1).
func drawFactor(s *StragglerModel, rg *rng.RNG) float64 {
	if s == nil {
		return 1
	}
	switch s.Dist {
	case "lognormal":
		return math.Exp(s.Sigma * math.Abs(float64(rg.Norm(1))))
	case "uniform":
		return 1 + (s.Max-1)*rg.Float64()
	default:
		return 1
	}
}

// jitterNS draws one per-rank per-step arrival delay.
func (r *runner) jitterNS() int64 {
	j := r.sc.Jitter
	if j == nil {
		return 0
	}
	switch j.Dist {
	case "uniform":
		return int64(math.Round(r.jitter.Float64() * j.MaxMS * 1e6))
	case "exp":
		u := r.jitter.Float64()
		return int64(math.Round(-j.MeanMS * 1e6 * math.Log(1-u)))
	default:
		return 0
	}
}

// computeDurNS returns rank's compute time for a step: replayed when
// the scenario carries a schedule for it, calibrated otherwise, with
// the straggler factor applied either way.
func (r *runner) computeDurNS(step, rank int) int64 {
	if step-1 < len(r.replay) {
		return int64(math.Round(r.replay[step-1][rank] * 1e6 * r.factors[rank]))
	}
	return r.baseNS[rank]
}

// startStep schedules one step's per-rank DAG chains. rerun re-enters
// a step after a rejoin: the step keeps its original start time (its
// recorded duration spans the recovery) and the failure is spent.
func (r *runner) startStep(step int, rerun bool) {
	now := r.eng.Now()
	if !rerun {
		r.stepStart = now
	}
	r.attempt++
	attempt := r.attempt
	r.ready = 0
	r.gateRank = -1
	r.gateAt = -1
	for i := range r.finish {
		r.finish[i] = -1
	}
	fail := r.failAt[step]
	if rerun {
		fail = nil
	}
	r.parked = 0
	r.rejoinReady = false

	for rank := 0; rank < r.k; rank++ {
		rank := rank
		jit := r.jitterNS()
		comp := r.computeDurNS(step, rank)
		if fail != nil && rank == fail.Rank {
			// The victim dies AtFrac of the way through its compute
			// (0 = right at step entry) and its chain ends there.
			dead := now + jit + int64(math.Round(fail.AtFrac*float64(comp)))
			f := *fail
			r.eng.Schedule(dead, "death", rank, step, func() {
				r.onDeath(step, f)
			})
			continue
		}
		blocked := fail != nil
		compDone := now + jit + comp
		r.eng.Schedule(compDone, "compute", rank, step, func() {
			r.compTot[rank] += comp
			quantDone := r.eng.Now() + r.quantNS[rank]
			r.eng.Schedule(quantDone, "quant", rank, step, func() {
				r.quantTot[rank] += r.quantNS[rank]
				if blocked {
					if attempt != r.attempt {
						return // stale: the attempt was already replaced
					}
					// The exchange can never complete this attempt:
					// the rank parks at the rejoin barrier until the
					// recovery timeline releases it.
					r.finish[rank] = r.eng.Now()
					r.parked++
					r.maybeResume(step)
					return
				}
				xferDone := r.eng.Now() + r.commNS[rank]
				r.eng.Schedule(xferDone, "xfer", rank, step, func() {
					r.onTransferDone(step, attempt, rank)
				})
			})
		})
	}
}

// onTransferDone is one rank's collective share finishing; the last
// arrival gates the barrier.
func (r *runner) onTransferDone(step, attempt, rank int) {
	if attempt != r.attempt {
		return // stale event from an aborted attempt
	}
	r.commTot[rank] += r.commNS[rank]
	now := r.eng.Now()
	r.finish[rank] = now
	// Strict >: simultaneous finishers fire in rank order, so the
	// lowest rank among them is charged, deterministically.
	if now > r.gateAt {
		r.gateRank = rank
		r.gateAt = now
	}
	r.ready++
	if r.ready == r.k {
		r.eng.Schedule(now, "barrier", -1, step, func() {
			r.onBarrier(step)
		})
	}
}

// onBarrier completes a step: accounting, then the next step.
func (r *runner) onBarrier(step int) {
	now := r.eng.Now()
	r.stepDur = append(r.stepDur, now-r.stepStart)
	if r.gateRank >= 0 {
		r.gated[r.gateRank]++
	}
	for rank, fin := range r.finish {
		if fin >= 0 && now > fin {
			r.blockTot[rank] += now - fin
		}
	}
	r.exchanges++
	r.doneNS = now
	if step < r.sc.Steps {
		r.startStep(step+1, false)
	}
}

// onDeath walks the recovery timeline from a victim's death: the
// failure detector's hard silence deadline, then abort or rejoin.
func (r *runner) onDeath(step int, f FailureEvent) {
	hb := f.HeartbeatTimeoutMS
	if hb == 0 {
		hb = 1000
	}
	detectNS := int64(math.Round(hb * 1e6))
	deathNS := r.eng.Now()
	r.eng.After(detectNS, "detect", f.Rank, step, func() {
		// Recovery control traffic rides the topology's slowest class.
		lat := r.topo.Intra.LatencyUS
		bw := r.topo.Intra.GBps * 1e9
		if r.topo.hosts(r.k) > 1 {
			lat = math.Max(lat, r.topo.Inter.LatencyUS)
			bw = math.Min(bw, r.topo.uplink())
		}
		latNS := int64(math.Round(lat * 1e3))
		abortNS := 2 * latNS // verdict broadcast + quiesce
		if !f.Rejoin {
			r.eng.After(abortNS, "abort", -1, step, func() {
				now := r.eng.Now()
				for rank, fin := range r.finish {
					if fin >= 0 && now > fin {
						r.blockTot[rank] += now - fin
					}
				}
				r.aborted = step
				r.doneNS = now
			})
			return
		}
		rendezvousNS := abortNS + 6*latNS // hello, welcome, mesh preamble round trips
		transferNS := int64(math.Round(float64(r.snapshotBytes)/bw*1e9)) + latNS
		r.pendingStep = step
		r.pendingRes = RejoinCost{
			Step: step, Rank: f.Rank,
			DetectNS:      detectNS,
			RendezvousNS:  rendezvousNS,
			TransferNS:    transferNS,
			SnapshotBytes: r.snapshotBytes,
		}
		r.eng.After(rendezvousNS+transferNS, "rejoin", f.Rank, step, func() {
			// The replacement runs on fresh hardware: factor 1
			// (keeping the calibrated anchor), same link position.
			r.factors[f.Rank] = 1
			r.baseNS[f.Rank] = r.freshBaseNS
			r.quantNS[f.Rank] = r.freshQuantNS
			r.pendingRes.TotalNS = r.eng.Now() - deathNS
			r.rejoinReady = true
			r.maybeResume(step)
		})
	})
}

// maybeResume re-enters a failed step once the rejoin timeline has
// played out and every survivor has parked at the rejoin barrier —
// whichever happens last sets the resume time.
func (r *runner) maybeResume(step int) {
	if !r.rejoinReady || r.parked != r.k-1 {
		return
	}
	now := r.eng.Now()
	for rank, fin := range r.finish {
		if fin >= 0 && now > fin {
			r.blockTot[rank] += now - fin
		}
	}
	r.rejoins = append(r.rejoins, r.pendingRes)
	r.startStep(step, true)
}

// summarise folds the accumulators into the result.
func (r *runner) summarise(events int64) *ClusterResult {
	res := &ClusterResult{
		Name:                 r.sc.Name,
		Seed:                 r.sc.Seed,
		Ranks:                r.k,
		StepsCompleted:       len(r.stepDur),
		AbortedAtStep:        r.aborted,
		Events:               events,
		MakespanNS:           r.doneNS,
		ExchangeBytesPerStep: r.perStep,
		TotalExchangeBytes:   r.perStep * r.exchanges,
		SlowestRank:          -1,
		TraceHash:            r.eng.TraceHash(),
	}
	if n := len(r.stepDur); n > 0 {
		sorted := append([]int64(nil), r.stepDur...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pct := func(q float64) int64 {
			i := int(math.Ceil(q*float64(n))) - 1
			if i < 0 {
				i = 0
			}
			return sorted[i]
		}
		var sum int64
		for _, d := range sorted {
			sum += d
		}
		res.StepNS = Distribution{
			MinNS: sorted[0], P50NS: pct(0.50), P90NS: pct(0.90),
			P99NS: pct(0.99), MaxNS: sorted[n-1], MeanNS: sum / int64(n),
		}
	}
	best, bestCount := -1, 0
	var gaters []RankGating
	for rank, n := range r.gated {
		if n == 0 {
			continue
		}
		gaters = append(gaters, RankGating{
			Rank: rank, GatedSteps: n,
			FactorMilli: int64(math.Round(r.factors[rank] * 1000)),
		})
		if n > bestCount {
			best, bestCount = rank, n
		}
	}
	res.SlowestRank = best
	sort.Slice(gaters, func(i, j int) bool {
		if gaters[i].GatedSteps != gaters[j].GatedSteps {
			return gaters[i].GatedSteps > gaters[j].GatedSteps
		}
		return gaters[i].Rank < gaters[j].Rank
	})
	if len(gaters) > 5 {
		gaters = gaters[:5]
	}
	res.TopStragglers = gaters
	res.Rejoins = r.rejoins
	if r.k <= maxPerRankSummary {
		res.PerRank = make([]RankSummary, r.k)
		for rank := 0; rank < r.k; rank++ {
			res.PerRank[rank] = RankSummary{
				Rank:       rank,
				ComputeNS:  r.compTot[rank],
				QuantNS:    r.quantTot[rank],
				CommNS:     r.commTot[rank],
				BlockedNS:  r.blockTot[rank],
				GatedSteps: r.gated[rank],
			}
		}
	}
	return res
}
