package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/obs"
)

// traceFixture builds a 3-rank, 2-step trace where rank 2's compute
// dominates every step.
func traceFixture(t *testing.T) *bytes.Buffer {
	t.Helper()
	tr := obs.NewTracer(64)
	for step := int64(1); step <= 2; step++ {
		tr.SetStep(step)
		for rank := 0; rank < 3; rank++ {
			compute := int64(1000 * (rank + 1))
			if rank == 2 {
				compute = 50_000
			}
			tr.Record(rank, obs.PhaseCompute, "step", -1, 0, 0, compute)
			tr.Record(rank, obs.PhaseQuantise, "mpi", -1, 0, 0, 500)
			tr.Record(rank, obs.PhaseTransfer, "mpi", -1, 4096, 0, 2000)
			tr.Record(rank, obs.PhaseDecode, "mpi", -1, 0, 0, 300)
			tr.Record(rank, obs.PhaseBarrier, "exchange", -1, 0, 0, 10_000)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestReadLiveTraceAggregates(t *testing.T) {
	tl, err := ReadLiveTrace(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Ranks != 3 || tl.Steps != 2 {
		t.Fatalf("got %d ranks / %d steps, want 3/2", tl.Ranks, tl.Steps)
	}
	if tl.SlowestRank != 2 {
		t.Fatalf("slowest rank %d, want 2", tl.SlowestRank)
	}
	r2 := tl.PerRank[2]
	if r2.ComputeNS != 100_000 || r2.GatedSteps != 2 {
		t.Fatalf("rank 2 summary %+v", r2)
	}
	if r0 := tl.PerRank[0]; r0.QuantNS != 1000 || r0.CommNS != 4600 {
		t.Fatalf("rank 0 phase sums %+v", r0)
	}
	// Barrier 20000 (two steps) minus own quant (1000) and comm (4600).
	if got := tl.PerRank[0].BlockedNS; got != 14400 {
		t.Fatalf("rank 0 blocked %d, want 14400", got)
	}
	if tl.TransferBytes != 3*2*4096 {
		t.Fatalf("transfer bytes %d", tl.TransferBytes)
	}
}

func TestReadLiveTraceRejectsEmpty(t *testing.T) {
	if _, err := ReadLiveTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestOverlayAgreement(t *testing.T) {
	tl, err := ReadLiveTrace(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(Scenario{
		Name: "overlay", Ranks: 3, Steps: 4,
		Stragglers: &StragglerModel{Slow: []SlowRank{{Rank: 2, Factor: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildOverlay(tl, res)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Agree || ov.LiveSlowest != 2 || ov.SimSlowest != 2 {
		t.Fatalf("overlay disagrees: %+v", ov)
	}
	if len(ov.Phases) != 4 {
		t.Fatalf("got %d phase rows, want 4", len(ov.Phases))
	}
	var shareSum int64
	for _, pd := range ov.Phases {
		shareSum += pd.LiveShareMilli
	}
	// Integer division loses at most 1‰ per phase.
	if shareSum < 996 || shareSum > 1000 {
		t.Fatalf("live shares sum to %d milli, want ~1000", shareSum)
	}
	var report bytes.Buffer
	if err := ov.WriteText(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "AGREE") {
		t.Fatalf("report missing verdict:\n%s", report.String())
	}
}

func TestOverlayDisagreement(t *testing.T) {
	tl, err := ReadLiveTrace(traceFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(Scenario{
		Name: "overlay-miss", Ranks: 3, Steps: 4,
		Stragglers: &StragglerModel{Slow: []SlowRank{{Rank: 1, Factor: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := BuildOverlay(tl, res)
	if err != nil {
		t.Fatal(err)
	}
	if ov.Agree {
		t.Fatal("overlay claims agreement with mismatched stragglers")
	}
}
