// Package sim is the repository's performance laboratory: a calibrated
// cost model for single gradient exchanges and a deterministic
// discrete-event simulator for whole training sessions at cluster
// scale.
//
// It has two altitudes:
//
//   - Run prices one training iteration of one configuration —
//     (network, machine, primitive, precision policy, GPU count) — and
//     derives the quantities the paper's performance figures report:
//     samples/second (Figures 10–11), time per epoch (Figures 6–9),
//     scalability (Figures 12–15) and the cost/extrapolation analyses
//     (Figure 16). This layer is calibrated, not fabricated: compute
//     time is anchored to the paper's measured single-GPU throughput,
//     communication prices the exact wire bytes the quant codecs
//     produce through fitted link models, and quantisation kernels
//     carry per-element plus per-group costs. The claims harness
//     (internal/harness/claims.go) records how the simulated tables
//     compare with the paper's measured ones, row by row.
//
//   - RunScenario simulates a full training session as a DAG of
//     per-rank compute, quantise-kernel and link-transfer events on a
//     seeded logical clock (no wall time anywhere), following the
//     synchronous-SGD step DAG of Shi et al. It scales to thousands of
//     ranks — far beyond the three-process e2e tests — and models what
//     single-exchange pricing cannot: heterogeneous topologies
//     (intra-host vs inter-host links, oversubscribed uplinks, per-pair
//     overrides), seeded straggler distributions, per-step arrival
//     jitter, trace replay, and failure injection that walks the
//     health/elastic subsystems' detect → abort → rejoin timeline
//     analytically.
//
// Both layers share one byte-accounting spine: exchange volumes come
// from comm.ReduceBroadcastWireBytes and comm.RingWireBytes — the same
// arithmetic the live fabrics' byte counters are tested against — so a
// simulated scenario's exchange bytes equal a live TCP run's measured
// bytes exactly (asserted in this package's cross-validation tests).
//
// Scenario outputs are regression-locked by golden datasets under
// testdata/ (regenerate with `go test ./sim -run Golden -update-golden`)
// and every simulation is reproducible from its seed: same scenario,
// same seed, same event trace, same summary.
//
// The simulator's per-rank timelines and the live observability plane
// speak the same step-phase vocabulary — compute, quantise, encode,
// transfer, decode, barrier, control (obs.Phase): a live run's
// obs.Tracer labels its spans with exactly the phases the event engine
// schedules, which is what lets ReadLiveTrace aggregate a captured
// JSONL trace into a sim-comparable LiveTimeline and BuildOverlay diff
// the two (per-phase time shares plus straggler attribution —
// cmd/lpsgd-trace is the CLI). Extending one side's vocabulary means
// extending the other: a phase the tracer emits but the engine never
// schedules (or vice versa) silently drops out of the overlay.
//
// The determinism contract is machine-enforced: the simclock analyzer
// in internal/lint (run by `make lint` and the CI lint lane) rejects
// wall-clock reads (time.Now, time.Since, time.Sleep, ...) and global
// math/rand draws anywhere in this package, because either one would
// silently break seed-reproducibility and the golden trace hashes.
// Time comes from the seeded logical clock; randomness comes from
// explicitly seeded *rand.Rand values.
package sim
