package sim

import (
	"fmt"

	"repro/comm"
	"repro/internal/workload"
	"repro/quant"
)

// Primitive selects the communication path.
type Primitive int

const (
	// MPI is the reduce-and-broadcast path (quantisation-capable).
	MPI Primitive = iota
	// NCCL is the ring-allreduce path; low-precision NCCL is the
	// paper's byte-volume simulation (§4.4).
	NCCL
)

// String names the primitive as the paper does.
func (p Primitive) String() string {
	if p == NCCL {
		return "NCCL"
	}
	return "MPI"
}

// KernelModel prices the GPU quantisation kernels. Costs are seconds on
// a K80; the machine's ComputeScale divides them.
type KernelModel struct {
	// QSGDPerElem and OneBitPerElem are per-element encode/decode costs.
	QSGDPerElem   float64
	OneBitPerElem float64
	// PerGroup is the fixed cost per quantisation group (column or
	// bucket): scale computation, kernel-launch amortisation. This term
	// is what makes tiny-column classic 1bitSGD catastrophically slow.
	PerGroup float64
}

// DefaultKernel is the calibrated kernel model (fitted to the AlexNet
// and ResNet152 rows of Figure 10).
var DefaultKernel = KernelModel{
	QSGDPerElem:   0.12e-9,
	OneBitPerElem: 0.45e-9,
	PerGroup:      20e-9,
}

// Config selects one simulated configuration.
type Config struct {
	Network   workload.Network
	Machine   workload.Machine
	Primitive Primitive
	// Policy is the precision policy to price: base codec, small-matrix
	// exemption target and per-tensor pattern rules. Nil falls back to
	// the deprecated Codec field (wrapped into a default policy with
	// quant.DefaultMinFrac), and to full precision when that is nil too.
	Policy *quant.Policy
	// Codec is the gradient codec; nil means full precision.
	//
	// Deprecated: set Policy. Ignored when Policy is set.
	Codec quant.Codec
	GPUs  int
	// BatchOverride replaces Figure 4's batch when positive.
	BatchOverride int
	// Kernel overrides the kernel model when non-zero.
	Kernel KernelModel
	// Overlap ∈ [0, 1) hides that fraction of compute time behind
	// communication, modelling CNTK's double-buffering (§3.2.1: "while
	// some gradients are being quantized, gradients that are finished
	// ... are already being sent"). The default 0 matches the paper's
	// additive bar charts; the ablation benchmark sweeps it.
	Overlap float64
	// Framed prices the transport as a framed one (comm.Transport.
	// Framed, e.g. the TCP mesh): every message carries a
	// self-describing quant frame header on top of the codec payload.
	// The overhead arithmetic is shared with comm — the same
	// ReduceBroadcastWireBytes / RingWireBytes the fabrics' byte
	// counters are tested against — so the simulated and measured TCP
	// byte volumes agree exactly.
	Framed bool
}

// Result is one priced configuration.
type Result struct {
	Network   string
	Machine   string
	Primitive string
	Codec     string
	GPUs      int
	Batch     int

	// Per-iteration breakdown in seconds.
	ComputeSec float64
	QuantSec   float64
	CommSec    float64
	IterSec    float64

	// Derived metrics.
	SamplesPerSec float64
	EpochSec      float64

	// Wire accounting per gradient exchange. WireBytes is the encoded
	// volume of one model copy (the quantity the link model prices,
	// including per-copy frame headers when Framed); RawBytes is the
	// float32 volume of one copy. ExchangeBytes is the total a full
	// exchange puts on the fabric across all K peers — the number a
	// framed transport's byte counter measures per iteration.
	WireBytes     int64
	RawBytes      int64
	ExchangeBytes int64
}

// EpochHours returns the epoch time in hours (the unit of Figures 6–9).
func (r Result) EpochHours() float64 { return r.EpochSec / 3600 }

// CommFraction returns the share of iteration time spent communicating.
func (r Result) CommFraction() float64 {
	if r.IterSec == 0 {
		return 0
	}
	return r.CommSec / r.IterSec
}

// Run prices one configuration.
func Run(cfg Config) (Result, error) {
	net, m := cfg.Network, cfg.Machine
	if cfg.GPUs <= 0 || cfg.GPUs > m.MaxGPUs {
		return Result{}, fmt.Errorf("sim: %d GPUs outside 1..%d on %s",
			cfg.GPUs, m.MaxGPUs, m.Name)
	}
	if cfg.Primitive == NCCL && !m.SupportsNCCL(cfg.GPUs) {
		return Result{}, fmt.Errorf("sim: NCCL supports at most %d GPUs on %s",
			m.NCCLMaxGPUs, m.Name)
	}
	policy := cfg.Policy
	if policy == nil {
		codec := cfg.Codec
		if codec == nil {
			codec = quant.FP32{}
		}
		policy = quant.NewPolicy(codec)
	}
	kernel := cfg.Kernel
	if kernel == (KernelModel{}) {
		kernel = DefaultKernel
	}
	batch := cfg.BatchOverride
	if batch <= 0 {
		var ok bool
		batch, ok = net.BatchFor(cfg.GPUs)
		if !ok {
			return Result{}, fmt.Errorf("sim: %s has no batch size for %d GPUs (Figure 4)",
				net.Name, cfg.GPUs)
		}
	}
	if batch < cfg.GPUs {
		return Result{}, fmt.Errorf("sim: batch %d below GPU count %d", batch, cfg.GPUs)
	}
	perGPU := batch / cfg.GPUs

	// Compute: calibrated per-sample time, batch-efficiency adjusted.
	sampleSec := 1 / (net.ThroughputK80 * net.SampleSpeedup(perGPU) * m.GPU.ComputeScale)
	computeSec := float64(perGPU) * sampleSec

	// The caller's policy (exemption target included) prices the plan,
	// so simulated ExchangeBytes match a live exchange under the same
	// policy byte-for-byte — no hardcoded exemption fraction.
	plan := quant.NewPlan(policy, net.Tensors)
	wireBytes := plan.WireBytes()
	rawBytes := plan.RawBytes()

	res := Result{
		Network:   net.Name,
		Machine:   m.Name,
		Primitive: cfg.Primitive.String(),
		Codec:     policy.Name(),
		GPUs:      cfg.GPUs,
		Batch:     batch,

		ComputeSec: computeSec,
		WireBytes:  wireBytes,
		RawBytes:   rawBytes,
	}

	if cfg.GPUs > 1 {
		res.QuantSec = quantTime(plan, net.Tensors, kernel, cfg.Primitive, m.GPU.ComputeScale)
		rawTotal := exchangeBytes(plan, net.Tensors, cfg.Primitive, cfg.GPUs, false)
		res.ExchangeBytes = rawTotal
		if cfg.Framed {
			// One model copy's share of the per-message frame headers:
			// the full exchange carries 2(K−1) encoded copies, so the
			// total framed overhead divides exactly.
			framedTotal := exchangeBytes(plan, net.Tensors, cfg.Primitive, cfg.GPUs, true)
			wireBytes += (framedTotal - rawTotal) / int64(2*(cfg.GPUs-1))
			res.WireBytes = wireBytes
			res.ExchangeBytes = framedTotal
		}
		switch cfg.Primitive {
		case MPI:
			res.CommSec = m.MPI.TransferTime(wireBytes, cfg.GPUs, len(net.Tensors))
		case NCCL:
			// NCCL ships the quantised volume in the paper's simulation
			// and the raw volume at full precision.
			res.CommSec = m.NCCL.TransferTime(wireBytes, cfg.GPUs, len(net.Tensors))
		}
	}

	if cfg.Overlap < 0 || cfg.Overlap >= 1 {
		return Result{}, fmt.Errorf("sim: overlap %v outside [0,1)", cfg.Overlap)
	}
	// Overlap hides communication behind compute, up to the configured
	// fraction of the compute window.
	hidden := cfg.Overlap * res.ComputeSec
	if hidden > res.CommSec {
		hidden = res.CommSec
	}
	res.IterSec = res.ComputeSec + res.QuantSec + res.CommSec - hidden
	res.SamplesPerSec = float64(batch) / res.IterSec
	if samples := net.DatasetSamples(); samples > 0 {
		res.EpochSec = float64(samples) / res.SamplesPerSec
	}
	return res, nil
}

// exchangeBytes predicts the bytes one full gradient exchange moves
// across all k peers, through the same arithmetic comm's fabrics are
// tested against. For MPI that is the reduce-and-broadcast stripe
// pattern under the plan's per-tensor codecs; for NCCL it is the
// full-precision ring (the volume a real ring actually ships — the
// paper's low-precision NCCL numbers scale it by the codec's
// compression, see comm.SimulatedRing).
func exchangeBytes(plan *quant.Plan, tensors []quant.TensorInfo, prim Primitive, k int, framed bool) int64 {
	if prim == NCCL {
		var total int64
		for _, ti := range tensors {
			total += comm.RingWireBytes(ti.Shape.Len(), k, framed)
		}
		return total
	}
	specs := make([]comm.TensorSpec, len(tensors))
	for i, ti := range tensors {
		specs[i] = comm.TensorSpec{
			Name:  ti.Name,
			N:     ti.Shape.Len(),
			Wire:  ti.Shape,
			Codec: plan.CodecFor(i),
		}
	}
	return comm.ReduceBroadcastWireBytes(specs, k, framed)
}

// quantTime prices encode/decode work for one exchange. Per worker, the
// MPI path touches each element three times (encode local stripes,
// decode/sum at the owner, re-encode the aggregate, decode the
// broadcast: n + (K−1)/K·n + n/K + n = 3n element passes), the NCCL
// simulation twice (encode + decode).
func quantTime(plan *quant.Plan, tensors []quant.TensorInfo, k KernelModel,
	prim Primitive, computeScale float64) float64 {
	passes := 3.0
	if prim == NCCL {
		passes = 2.0
	}
	var total float64
	for i, ti := range tensors {
		codec := plan.CodecFor(i)
		if _, fp := codec.(quant.FP32); fp {
			continue
		}
		n := ti.Shape.Len()
		group := codec.GroupSize(ti.Shape)
		groups := (n + group - 1) / group
		perElem := k.QSGDPerElem
		switch codec.(type) {
		case quant.OneBit, quant.OneBitReshaped:
			perElem = k.OneBitPerElem
		}
		total += (float64(n)*perElem + float64(groups)*k.PerGroup) * passes
	}
	return total / computeScale
}

// Scalability returns samples/sec relative to the 1-GPU full-precision
// run of the same network on the same machine — the y-axis of
// Figures 12–15.
func Scalability(r Result, net workload.Network, m workload.Machine) (float64, error) {
	base, err := Run(Config{Network: net, Machine: m, Primitive: MPI, GPUs: 1})
	if err != nil {
		return 0, err
	}
	return r.SamplesPerSec / base.SamplesPerSec, nil
}

// WithDummyParams returns a copy of net with one additional dense
// gradient tensor holding extra parameters and no additional compute —
// the "AlexNet with larger dummy models" device of Figure 16 (right).
func WithDummyParams(net workload.Network, extraParams int64) workload.Network {
	if extraParams <= 0 {
		return net
	}
	clone := net
	clone.Tensors = append(append([]quant.TensorInfo(nil), net.Tensors...),
		quant.TensorInfo{
			Name:  "dummy.W",
			Shape: quant.Shape{Rows: 4096, Cols: int(extraParams / 4096)},
		})
	clone.Name = net.Name + "+dummy"
	return clone
}
