package sim

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// The discrete-event engine: a seeded, single-threaded event loop on a
// logical clock measured in integer nanoseconds. Determinism is the
// design invariant — ties are broken by schedule order, all randomness
// flows from the scenario seed through repro/rng, and no wall time is
// read anywhere — so the same scenario always produces the same event
// trace, hash-locked by the golden datasets.

// Event is one fired simulation event, as recorded in the trace.
type Event struct {
	// AtNS is the logical firing time in nanoseconds.
	AtNS int64
	// Kind names the event class ("compute", "quant", "xfer",
	// "barrier", "death", "detect", "rejoin").
	Kind string
	// Rank is the rank the event belongs to (-1 for whole-cluster
	// events such as barriers).
	Rank int
	// Step is the 1-based synchronous step the event belongs to.
	Step int
}

// scheduled is a pending event in the queue.
type scheduled struct {
	ev  Event
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].ev.AtNS != h[j].ev.AtNS {
		return h[i].ev.AtNS < h[j].ev.AtNS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*scheduled)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Engine is the deterministic discrete-event loop.
type Engine struct {
	now   int64
	seq   uint64
	queue eventHeap
	fired int64
	hash  interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	trace  []Event
	keep   bool
	kindID map[string]byte
}

// NewEngine returns an empty engine at logical time zero. When
// keepTrace is set the full fired-event list is retained (per-rank
// timelines for the CLI); the trace hash is always maintained.
func NewEngine(keepTrace bool) *Engine {
	return &Engine{
		hash:   fnv.New64a(),
		keep:   keepTrace,
		kindID: map[string]byte{},
	}
}

// Now returns the current logical time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Schedule queues fn at the given absolute logical time. Scheduling in
// the past is a programming error.
func (e *Engine) Schedule(atNS int64, kind string, rank, step int, fn func()) {
	if atNS < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %d, before now %d", kind, atNS, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &scheduled{
		ev:  Event{AtNS: atNS, Kind: kind, Rank: rank, Step: step},
		seq: e.seq,
		fn:  fn,
	})
}

// After is Schedule relative to the current time.
func (e *Engine) After(delayNS int64, kind string, rank, step int, fn func()) {
	if delayNS < 0 {
		delayNS = 0
	}
	e.Schedule(e.now+delayNS, kind, rank, step, fn)
}

// Run drains the queue, firing events in (time, schedule-order)
// sequence, and returns the number of events fired.
func (e *Engine) Run() int64 {
	var buf [16]byte
	for e.queue.Len() > 0 {
		it := heap.Pop(&e.queue).(*scheduled)
		e.now = it.ev.AtNS
		e.fired++
		// Fold the event into the running trace hash: time, kind,
		// rank and step pin the full causal order.
		id, ok := e.kindID[it.ev.Kind]
		if !ok {
			id = byte(len(e.kindID))
			e.kindID[it.ev.Kind] = id
		}
		binary.LittleEndian.PutUint64(buf[0:], uint64(it.ev.AtNS))
		binary.LittleEndian.PutUint32(buf[8:], uint32(it.ev.Rank))
		buf[12] = id
		buf[13] = byte(it.ev.Step)
		buf[14] = byte(it.ev.Step >> 8)
		buf[15] = byte(it.ev.Step >> 16)
		e.hash.Write(buf[:])
		if e.keep {
			e.trace = append(e.trace, it.ev)
		}
		it.fn()
	}
	return e.fired
}

// TraceHash returns the FNV-1a digest of every event fired so far —
// the compact fingerprint the determinism tests and golden datasets
// lock.
func (e *Engine) TraceHash() string { return fmt.Sprintf("%016x", e.hash.Sum64()) }

// Trace returns the retained event list (nil unless NewEngine was
// asked to keep it).
func (e *Engine) Trace() []Event { return e.trace }
