package sim

import "testing"

// BenchmarkSimStep measures engine throughput at cluster scale: one
// fully-featured 1024-rank session (multi-host topology, lognormal
// stragglers, per-step jitter) per iteration. The reported events/sec
// metric is the simulator's capacity planning number — how much
// simulated cluster time a second of wall time buys.
func BenchmarkSimStep(b *testing.B) {
	sc := Scenario{
		Name: "bench-1k", Seed: 1, Ranks: 1024, Steps: 20,
		Policy: "qsgd4b512",
		Topology: &Topology{
			RanksPerHost:     8,
			Intra:            Link{GBps: 8, LatencyUS: 60},
			Inter:            Link{GBps: 1.2, LatencyUS: 200},
			Oversubscription: 4,
		},
		Stragglers: &StragglerModel{Dist: "lognormal", Sigma: 0.1},
		Jitter:     &JitterModel{Dist: "uniform", MaxMS: 1},
	}
	b.ReportAllocs()
	var events int64
	for n := 0; n < b.N; n++ {
		res, err := RunScenario(sc)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}
