package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/workload"
	"repro/quant"
)

// Decoder bounds. Scenario files are human-written configuration, so
// the decoder enforces hard ceilings before any size-proportional
// allocation happens — a malformed or hostile file cannot balloon the
// process (FuzzScenarioDecode exercises this).
const (
	// MaxScenarioBytes caps the accepted file size.
	MaxScenarioBytes = 1 << 20
	// MaxRanks caps the simulated world size.
	MaxRanks = 1 << 17
	// MaxSteps caps the simulated step count.
	MaxSteps = 1 << 20
	// maxTensors and maxTensorElems bound synthetic inventories.
	maxTensors     = 4096
	maxTensorElems = 1 << 28
)

// TensorDim declares one synthetic gradient tensor.
type TensorDim struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
}

// SlowRank pins a deterministic straggler: the rank's compute and
// quantise kernels run Factor× slower.
type SlowRank struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
}

// StragglerModel draws one persistent slowdown factor per rank at
// session start — the "some hosts are just slower" regime — plus
// explicit named stragglers.
type StragglerModel struct {
	// Dist selects the distribution: "" or "none" (factor 1
	// everywhere), "lognormal" (exp(σ·|N(0,1)|), heavy right tail), or
	// "uniform" (uniform on [1, Max]).
	Dist string `json:"dist,omitempty"`
	// Sigma is the lognormal shape parameter.
	Sigma float64 `json:"sigma,omitempty"`
	// Max is the uniform upper bound (≥ 1).
	Max float64 `json:"max,omitempty"`
	// Slow overrides the drawn factor for specific ranks.
	Slow []SlowRank `json:"slow,omitempty"`
}

// JitterModel draws a fresh per-rank arrival delay every step — data
// loading variance, OS noise, batch-boundary skew.
type JitterModel struct {
	// Dist selects the distribution: "" or "none", "uniform" (uniform
	// on [0, MaxMS]), or "exp" (exponential with mean MeanMS).
	Dist string `json:"dist,omitempty"`
	// MaxMS bounds the uniform draw, in milliseconds.
	MaxMS float64 `json:"max_ms,omitempty"`
	// MeanMS is the exponential mean, in milliseconds.
	MeanMS float64 `json:"mean_ms,omitempty"`
}

// FailureEvent kills one rank mid-step and walks the health/elastic
// planes' recovery timeline analytically: heartbeat-timeout detection,
// coordinated abort, re-rendezvous, snapshot state transfer from the
// max-step donor, and a re-run of the interrupted step (the PR 4/5
// detect → abort → rejoin sequence).
type FailureEvent struct {
	// Step is the 1-based step during which the rank dies.
	Step int `json:"step"`
	// Rank is the victim.
	Rank int `json:"rank"`
	// AtFrac places the death that fraction of the way through the
	// victim's compute phase (0 = right at step entry).
	AtFrac float64 `json:"at_frac,omitempty"`
	// HeartbeatTimeoutMS is the failure detector's hard silence
	// deadline (default 1000, matching the live plane's default).
	HeartbeatTimeoutMS float64 `json:"heartbeat_timeout_ms,omitempty"`
	// Rejoin selects recovery: true models a replacement claiming the
	// slot (elastic rejoin), false models the session ending in a
	// coordinated abort at detection time.
	Rejoin bool `json:"rejoin"`
}

// Scenario is one cluster simulation, decodable from JSON. Zero values
// select calibrated defaults, so a minimal scenario is just
// {"name": ..., "ranks": N, "steps": S}.
type Scenario struct {
	Name string `json:"name"`
	// Seed drives every random draw; same seed, same trace.
	Seed uint64 `json:"seed"`
	// Ranks is the world size (may be thousands).
	Ranks int `json:"ranks"`
	// Steps is the number of synchronous steps to simulate.
	Steps int `json:"steps"`
	// Network names a workload-zoo inventory (AlexNet, VGG19, ...);
	// Tensors declares a synthetic one instead. Default AlexNet.
	Network string      `json:"network,omitempty"`
	Tensors []TensorDim `json:"tensors,omitempty"`
	// Machine names the calibration base (EC2-P2 or DGX-1; default
	// EC2-P2): GPU compute scale, kernel costs and — absent an
	// explicit topology — the intra-host link model.
	Machine string `json:"machine,omitempty"`
	// Primitive is MPI (reduce-and-broadcast) or NCCL (ring); default
	// MPI.
	Primitive string `json:"primitive,omitempty"`
	// Policy is a precision policy in the quant.ParsePolicy grammar;
	// default 32bit.
	Policy string `json:"policy,omitempty"`
	// PerRankBatch is the per-rank minibatch (default 32).
	PerRankBatch int `json:"per_rank_batch,omitempty"`
	// Framed prices self-describing frame headers on every message —
	// set it when cross-validating against the framed TCP fabric.
	Framed bool `json:"framed,omitempty"`

	Topology   *Topology       `json:"topology,omitempty"`
	Stragglers *StragglerModel `json:"stragglers,omitempty"`
	Jitter     *JitterModel    `json:"jitter,omitempty"`
	Failures   []FailureEvent  `json:"failures,omitempty"`
	// ReplayComputeMS replays a measured schedule instead of the
	// calibrated compute model: ReplayComputeMS[s][r] is rank r's
	// compute time in step s+1, in milliseconds. Straggler factors
	// still multiply it; the calibrated model fills steps beyond the
	// replayed prefix.
	ReplayComputeMS [][]float64 `json:"replay_compute_ms,omitempty"`
}

// DecodeScenario parses and validates a JSON scenario. Allocation is
// bounded: oversized inputs are rejected before parsing and every
// embedded collection is checked against hard ceilings.
func DecodeScenario(data []byte) (Scenario, error) {
	var sc Scenario
	if len(data) > MaxScenarioBytes {
		return sc, fmt.Errorf("sim: scenario file is %d bytes, limit %d", len(data), MaxScenarioBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return sc, fmt.Errorf("sim: decode scenario: %w", err)
	}
	if dec.More() {
		return sc, fmt.Errorf("sim: trailing data after scenario object")
	}
	if err := sc.Validate(); err != nil {
		return sc, err
	}
	return sc, nil
}

// LoadScenario reads and decodes a scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("sim: %w", err)
	}
	sc, err := DecodeScenario(data)
	if err != nil {
		return sc, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Validate checks ranges and cross-field consistency without touching
// the workload zoo (name resolution happens in RunScenario, so a
// scenario can be validated offline).
func (sc *Scenario) Validate() error {
	if sc.Ranks < 1 || sc.Ranks > MaxRanks {
		return fmt.Errorf("sim: ranks %d outside 1..%d", sc.Ranks, MaxRanks)
	}
	if sc.Steps < 1 || sc.Steps > MaxSteps {
		return fmt.Errorf("sim: steps %d outside 1..%d", sc.Steps, MaxSteps)
	}
	if sc.PerRankBatch < 0 {
		return fmt.Errorf("sim: per_rank_batch %d must be >= 0", sc.PerRankBatch)
	}
	switch strings.ToUpper(sc.Primitive) {
	case "", "MPI", "NCCL":
	default:
		return fmt.Errorf("sim: unknown primitive %q", sc.Primitive)
	}
	if len(sc.Tensors) > maxTensors {
		return fmt.Errorf("sim: %d synthetic tensors, limit %d", len(sc.Tensors), maxTensors)
	}
	var elems int64
	for _, td := range sc.Tensors {
		if td.Rows < 1 || td.Cols < 1 {
			return fmt.Errorf("sim: tensor %q has non-positive shape %dx%d", td.Name, td.Rows, td.Cols)
		}
		elems += int64(td.Rows) * int64(td.Cols)
		if elems > maxTensorElems {
			return fmt.Errorf("sim: synthetic inventory exceeds %d elements", maxTensorElems)
		}
	}
	if sc.Policy != "" {
		if _, err := quant.ParsePolicy(sc.Policy); err != nil {
			return fmt.Errorf("sim: policy: %w", err)
		}
	}
	if sc.Topology != nil {
		if err := sc.Topology.validate(sc.Ranks); err != nil {
			return err
		}
	}
	if s := sc.Stragglers; s != nil {
		switch s.Dist {
		case "", "none":
		case "lognormal":
			if s.Sigma < 0 {
				return fmt.Errorf("sim: straggler sigma %v must be >= 0", s.Sigma)
			}
		case "uniform":
			if s.Max < 1 {
				return fmt.Errorf("sim: straggler max %v must be >= 1", s.Max)
			}
		default:
			return fmt.Errorf("sim: unknown straggler dist %q", s.Dist)
		}
		for _, sr := range s.Slow {
			if sr.Rank < 0 || sr.Rank >= sc.Ranks {
				return fmt.Errorf("sim: slow rank %d outside world of %d", sr.Rank, sc.Ranks)
			}
			if sr.Factor < 1 {
				return fmt.Errorf("sim: slow rank %d factor %v must be >= 1", sr.Rank, sr.Factor)
			}
		}
	}
	if j := sc.Jitter; j != nil {
		switch j.Dist {
		case "", "none":
		case "uniform":
			if j.MaxMS < 0 {
				return fmt.Errorf("sim: jitter max_ms %v must be >= 0", j.MaxMS)
			}
		case "exp":
			if j.MeanMS < 0 {
				return fmt.Errorf("sim: jitter mean_ms %v must be >= 0", j.MeanMS)
			}
		default:
			return fmt.Errorf("sim: unknown jitter dist %q", j.Dist)
		}
	}
	seenStep := map[int]bool{}
	for _, f := range sc.Failures {
		if f.Step < 1 || f.Step > sc.Steps {
			return fmt.Errorf("sim: failure step %d outside 1..%d", f.Step, sc.Steps)
		}
		if f.Rank < 0 || f.Rank >= sc.Ranks {
			return fmt.Errorf("sim: failure rank %d outside world of %d", f.Rank, sc.Ranks)
		}
		if f.AtFrac < 0 || f.AtFrac >= 1 {
			return fmt.Errorf("sim: failure at_frac %v outside [0,1)", f.AtFrac)
		}
		if f.HeartbeatTimeoutMS < 0 {
			return fmt.Errorf("sim: heartbeat_timeout_ms %v must be >= 0", f.HeartbeatTimeoutMS)
		}
		if seenStep[f.Step] {
			return fmt.Errorf("sim: multiple failures in step %d; one per step", f.Step)
		}
		seenStep[f.Step] = true
	}
	if len(sc.ReplayComputeMS) > sc.Steps {
		return fmt.Errorf("sim: replay covers %d steps, scenario has %d", len(sc.ReplayComputeMS), sc.Steps)
	}
	for s, row := range sc.ReplayComputeMS {
		if len(row) != sc.Ranks {
			return fmt.Errorf("sim: replay step %d has %d entries, want %d ranks", s+1, len(row), sc.Ranks)
		}
		for r, ms := range row {
			if ms < 0 {
				return fmt.Errorf("sim: replay step %d rank %d is negative (%v ms)", s+1, r, ms)
			}
		}
	}
	return nil
}

// tensorInfos resolves the scenario's gradient inventory: an explicit
// synthetic list, or the named (default AlexNet) zoo network's.
func (sc *Scenario) tensorInfos() ([]quant.TensorInfo, error) {
	if len(sc.Tensors) > 0 {
		infos := make([]quant.TensorInfo, len(sc.Tensors))
		for i, td := range sc.Tensors {
			name := td.Name
			if name == "" {
				name = fmt.Sprintf("t%d", i)
			}
			infos[i] = quant.TensorInfo{Name: name, Shape: quant.Shape{Rows: td.Rows, Cols: td.Cols}}
		}
		return infos, nil
	}
	name := sc.Network
	if name == "" {
		name = "AlexNet"
	}
	net, err := workload.NetworkByName(name)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return net.Tensors, nil
}
