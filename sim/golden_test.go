package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates every golden dataset under testdata/:
//
//	go test ./sim -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden datasets under testdata/")

// scenarioFiles lists the checked-in scenario inputs (every testdata
// JSON file that is not itself a golden dataset).
func scenarioFiles(t testing.TB) []string {
	t.Helper()
	all, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range all {
		if !strings.HasSuffix(p, ".golden.json") {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		t.Fatal("no scenarios under testdata/")
	}
	return paths
}

// TestGoldenDatasets: every checked-in scenario must reproduce its
// golden summary byte for byte. All summary fields are integers or
// strings, so this is an exact-match regression lock — any drift in
// event ordering, pricing, byte accounting or the seeded draws shows up
// as a diff (and the TraceHash field pins the full event trace, not
// just the summary).
func TestGoldenDatasets(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			sc, err := LoadScenario(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			goldenPath := strings.TrimSuffix(path, ".json") + ".golden.json"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (regenerate with -update-golden)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s diverged from its golden dataset:\ngot:\n%s\nwant:\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenScenariosStillValidate: the checked-in scenarios must pass
// the offline validator (guards against testdata rotting as the schema
// evolves).
func TestGoldenScenariosStillValidate(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeScenario(data); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
