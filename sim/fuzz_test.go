package sim

import (
	"os"
	"testing"
)

// FuzzScenarioDecode: the decoder must never panic and never allocate
// proportionally to a hostile input — it rejects oversized files before
// parsing and checks every embedded collection against hard ceilings.
// Whatever it accepts must be internally consistent: re-validation
// passes and the scenario's bounds respect the package limits.
func FuzzScenarioDecode(f *testing.F) {
	for _, path := range []string{
		"testdata/tcp_parity_mpi_3.json",
		"testdata/hetero_straggler_64.json",
		"testdata/mega_1024.json",
		"testdata/abort_8.json",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"tiny","ranks":2,"steps":1}`))
	f.Add([]byte(`{"ranks":4,"steps":2,"tensors":[{"name":"w","rows":3,"cols":3}],"jitter":{"dist":"exp","mean_ms":1}}`))
	f.Add([]byte(`{"ranks":8,"steps":3,"failures":[{"step":2,"rank":1,"rejoin":true}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScenario(data)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		if sc.Ranks < 1 || sc.Ranks > MaxRanks || sc.Steps < 1 || sc.Steps > MaxSteps {
			t.Fatalf("accepted scenario violates bounds: ranks=%d steps=%d", sc.Ranks, sc.Steps)
		}
		if len(data) > MaxScenarioBytes {
			t.Fatalf("accepted %d-byte input past the %d-byte cap", len(data), MaxScenarioBytes)
		}
	})
}
