package sim

import (
	"fmt"
	"io"
	"sort"

	"repro/obs"
)

// This file bridges the live observability plane into the simulator:
// a step-phase trace captured from a real run (obs.Tracer JSONL — the
// /trace endpoint or a -trace-out file) is aggregated into the same
// per-rank phase vocabulary a simulated ClusterResult reports, so the
// two timelines can be laid over each other and diffed. cmd/lpsgd-trace
// is the CLI for this comparison.
//
// The live and simulated clocks are not comparable in absolute terms —
// one is wall time on whatever machine ran, the other a calibrated
// logical clock — so the overlay compares *shares*: what fraction of a
// rank-second went to compute, quantisation, communication and barrier
// blocking. Straggler attribution, by contrast, is directly
// comparable: both sides name the rank that gated the most steps.

// LiveRank is one rank's phase totals aggregated from a live trace,
// the live counterpart of RankSummary.
type LiveRank struct {
	Rank int `json:"rank"`
	// ComputeNS sums compute spans; QuantNS sums quantise+encode
	// (codec work on either side of the wire); CommNS sums
	// transfer+decode; BlockedNS is barrier time not explained by
	// quant or comm work — waiting for slower peers.
	ComputeNS  int64 `json:"compute_ns"`
	QuantNS    int64 `json:"quant_ns"`
	CommNS     int64 `json:"comm_ns"`
	BlockedNS  int64 `json:"blocked_ns"`
	GatedSteps int   `json:"gated_steps"`
}

// LiveTimeline is the aggregate of one live step-phase trace.
type LiveTimeline struct {
	Ranks int `json:"ranks"`
	Steps int `json:"steps"`
	// SlowestRank gated the most steps (longest compute span per
	// step; ties resolve to the lowest rank; -1 without compute
	// spans) — directly comparable to ClusterResult.SlowestRank.
	SlowestRank int        `json:"slowest_rank"`
	PerRank     []LiveRank `json:"per_rank"`
	// TransferBytes sums the payload bytes transfer spans carried.
	TransferBytes int64 `json:"transfer_bytes"`
	// Spans is the number of spans aggregated.
	Spans int `json:"spans"`
}

// ReadLiveTrace aggregates a JSONL span stream (obs.Tracer's /trace
// endpoint or sink file) into a live timeline.
func ReadLiveTrace(r io.Reader) (*LiveTimeline, error) {
	spans, err := obs.ReadSpans(r)
	if err != nil {
		return nil, err
	}
	if len(spans) == 0 {
		return nil, fmt.Errorf("sim: trace holds no spans")
	}
	ranks := 0
	for _, s := range spans {
		if s.Rank < 0 {
			return nil, fmt.Errorf("sim: span with negative rank %d", s.Rank)
		}
		if s.Rank+1 > ranks {
			ranks = s.Rank + 1
		}
	}
	per := make([]LiveRank, ranks)
	for r := range per {
		per[r].Rank = r
	}
	// Longest compute span per (step, rank) decides who gated the
	// step — the live counterpart of the simulator's barrier gating.
	compute := map[int64]map[int]int64{}
	steps := map[int64]bool{}
	barrier := make([]int64, ranks)
	tl := &LiveTimeline{Ranks: ranks, SlowestRank: -1, Spans: len(spans)}
	for _, s := range spans {
		steps[s.Step] = true
		lr := &per[s.Rank]
		switch s.Phase {
		case obs.PhaseCompute:
			lr.ComputeNS += s.DurNS
			byRank := compute[s.Step]
			if byRank == nil {
				byRank = map[int]int64{}
				compute[s.Step] = byRank
			}
			byRank[s.Rank] += s.DurNS
		case obs.PhaseQuantise, obs.PhaseEncode:
			lr.QuantNS += s.DurNS
		case obs.PhaseTransfer:
			lr.CommNS += s.DurNS
			tl.TransferBytes += s.Bytes
		case obs.PhaseDecode:
			lr.CommNS += s.DurNS
		case obs.PhaseBarrier:
			barrier[s.Rank] += s.DurNS
		}
	}
	// Barrier spans cover the whole exchange; the part not explained
	// by this rank's own quant/comm work was spent waiting.
	for r := range per {
		if blocked := barrier[r] - per[r].QuantNS - per[r].CommNS; blocked > 0 {
			per[r].BlockedNS = blocked
		}
	}
	for _, byRank := range compute {
		gater, worst := -1, int64(-1)
		for r := 0; r < ranks; r++ {
			if d, ok := byRank[r]; ok && d > worst {
				gater, worst = r, d
			}
		}
		if gater >= 0 {
			per[gater].GatedSteps++
		}
	}
	best := -1
	for r := range per {
		if per[r].GatedSteps > 0 && (best < 0 || per[r].GatedSteps > per[best].GatedSteps) {
			best = r
		}
	}
	tl.SlowestRank = best
	tl.Steps = len(steps)
	tl.PerRank = per
	return tl, nil
}

// PhaseDelta compares one phase's share of total rank-time between the
// live and simulated timelines. Shares are in milli (‰ of the
// timeline's summed phase time), so golden comparisons stay integral.
type PhaseDelta struct {
	Phase           string `json:"phase"`
	LiveNS          int64  `json:"live_ns"`
	SimNS           int64  `json:"sim_ns"`
	LiveShareMilli  int64  `json:"live_share_milli"`
	SimShareMilli   int64  `json:"sim_share_milli"`
	DeltaShareMilli int64  `json:"delta_share_milli"`
}

// Overlay is the diff of a live trace against a simulated scenario.
type Overlay struct {
	LiveRanks int `json:"live_ranks"`
	SimRanks  int `json:"sim_ranks"`
	LiveSteps int `json:"live_steps"`
	SimSteps  int `json:"sim_steps"`
	// Straggler agreement: do both timelines blame the same rank?
	LiveSlowest int  `json:"live_slowest"`
	SimSlowest  int  `json:"sim_slowest"`
	Agree       bool `json:"agree"`
	// Phases diffs compute/quant/comm/blocked shares, summed over
	// ranks. Empty when the simulated result carries no per-rank
	// timelines (worlds above 64 ranks).
	Phases []PhaseDelta `json:"phases,omitempty"`
}

// BuildOverlay lays a live timeline over a simulated result.
func BuildOverlay(live *LiveTimeline, res *ClusterResult) (*Overlay, error) {
	if live == nil || res == nil {
		return nil, fmt.Errorf("sim: overlay needs both a live timeline and a simulated result")
	}
	ov := &Overlay{
		LiveRanks:   live.Ranks,
		SimRanks:    res.Ranks,
		LiveSteps:   live.Steps,
		SimSteps:    res.StepsCompleted,
		LiveSlowest: live.SlowestRank,
		SimSlowest:  res.SlowestRank,
		Agree:       live.SlowestRank == res.SlowestRank,
	}
	if len(res.PerRank) == 0 {
		return ov, nil
	}
	var liveTot, simTot [4]int64
	for _, lr := range live.PerRank {
		liveTot[0] += lr.ComputeNS
		liveTot[1] += lr.QuantNS
		liveTot[2] += lr.CommNS
		liveTot[3] += lr.BlockedNS
	}
	for _, rs := range res.PerRank {
		simTot[0] += rs.ComputeNS
		simTot[1] += rs.QuantNS
		simTot[2] += rs.CommNS
		simTot[3] += rs.BlockedNS
	}
	names := [4]string{"compute", "quant", "comm", "blocked"}
	var liveSum, simSum int64
	for i := 0; i < 4; i++ {
		liveSum += liveTot[i]
		simSum += simTot[i]
	}
	share := func(part, whole int64) int64 {
		if whole <= 0 {
			return 0
		}
		return part * 1000 / whole
	}
	for i := 0; i < 4; i++ {
		pd := PhaseDelta{
			Phase:          names[i],
			LiveNS:         liveTot[i],
			SimNS:          simTot[i],
			LiveShareMilli: share(liveTot[i], liveSum),
			SimShareMilli:  share(simTot[i], simSum),
		}
		pd.DeltaShareMilli = pd.LiveShareMilli - pd.SimShareMilli
		ov.Phases = append(ov.Phases, pd)
	}
	return ov, nil
}

// WriteText renders the overlay as a human-readable report.
func (o *Overlay) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "live: %d ranks, %d steps | sim: %d ranks, %d steps\n",
		o.LiveRanks, o.LiveSteps, o.SimRanks, o.SimSteps); err != nil {
		return err
	}
	for _, pd := range o.Phases {
		if _, err := fmt.Fprintf(w, "%-8s live %5.1f%%  sim %5.1f%%  delta %+5.1f%%\n",
			pd.Phase,
			float64(pd.LiveShareMilli)/10,
			float64(pd.SimShareMilli)/10,
			float64(pd.DeltaShareMilli)/10); err != nil {
			return err
		}
	}
	verdict := "DISAGREE"
	if o.Agree {
		verdict = "AGREE"
	}
	_, err := fmt.Fprintf(w, "straggler attribution: live rank %d, sim rank %d — %s\n",
		o.LiveSlowest, o.SimSlowest, verdict)
	return err
}

// sortLiveRanksByGated is a report helper: ranks ordered worst-gater
// first (ties by rank).
func sortLiveRanksByGated(per []LiveRank) []LiveRank {
	out := append([]LiveRank(nil), per...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].GatedSteps > out[j].GatedSteps })
	return out
}

// WriteText renders the live timeline alone — what lpsgd-trace prints
// when no scenario is given.
func (tl *LiveTimeline) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace: %d spans, %d ranks, %d steps, %d transfer bytes\n",
		tl.Spans, tl.Ranks, tl.Steps, tl.TransferBytes); err != nil {
		return err
	}
	for _, lr := range sortLiveRanksByGated(tl.PerRank) {
		if _, err := fmt.Fprintf(w, "rank %d: compute %dns quant %dns comm %dns blocked %dns, gated %d steps\n",
			lr.Rank, lr.ComputeNS, lr.QuantNS, lr.CommNS, lr.BlockedNS, lr.GatedSteps); err != nil {
			return err
		}
	}
	if tl.SlowestRank >= 0 {
		if _, err := fmt.Fprintf(w, "slowest rank: %d\n", tl.SlowestRank); err != nil {
			return err
		}
	}
	return nil
}
