package sim

import (
	"fmt"
	"math"
)

// Link is one link class: sustained bandwidth and a fixed per-message
// latency (envelope handling, kernel launch, staging copies).
type Link struct {
	// GBps is the effective point-to-point bandwidth in gigabytes per
	// second.
	GBps float64 `json:"gbps"`
	// LatencyUS is the fixed per-message cost in microseconds.
	LatencyUS float64 `json:"latency_us"`
}

func (l Link) valid() bool { return l.GBps > 0 && l.LatencyUS >= 0 }

// PairLink pins the link between one specific rank pair, overriding
// the class-derived model — the hook for small heterogeneous
// scenarios (one degraded NIC, one long-haul pair).
type PairLink struct {
	A    int  `json:"a"`
	B    int  `json:"b"`
	Link Link `json:"link"`
}

// Topology models the cluster fabric the ranks exchange over. Ranks
// are packed onto hosts in order: host h owns ranks
// [h·RanksPerHost, (h+1)·RanksPerHost). Traffic between ranks of one
// host rides the Intra link class; traffic crossing hosts rides Inter,
// squeezed through a host uplink shared by all of the host's ranks and
// optionally oversubscribed.
type Topology struct {
	// RanksPerHost is the number of ranks packed per host; 0 (or a
	// value ≥ the world size) means everything shares one host and
	// only Intra matters.
	RanksPerHost int `json:"ranks_per_host,omitempty"`
	// Intra is the link class within a host (PCIe/NVLink scale).
	Intra Link `json:"intra"`
	// Inter is the link class between hosts (network scale).
	Inter Link `json:"inter,omitempty"`
	// Oversubscription divides the effective inter-host uplink
	// bandwidth: a value of 4 models a 4:1 oversubscribed top-of-rack
	// fabric. 0 and 1 both mean non-blocking.
	Oversubscription float64 `json:"oversubscription,omitempty"`
	// Pairs lists per-pair overrides, applied symmetrically.
	Pairs []PairLink `json:"pairs,omitempty"`
}

// Host returns the host index of a rank.
func (t *Topology) Host(rank int) int {
	if t.RanksPerHost <= 0 {
		return 0
	}
	return rank / t.RanksPerHost
}

// hosts returns the number of hosts a k-rank world occupies.
func (t *Topology) hosts(k int) int {
	if t.RanksPerHost <= 0 || t.RanksPerHost >= k {
		return 1
	}
	return (k + t.RanksPerHost - 1) / t.RanksPerHost
}

// uplink returns the effective inter-host uplink bandwidth in
// bytes/second after oversubscription.
func (t *Topology) uplink() float64 {
	over := t.Oversubscription
	if over < 1 {
		over = 1
	}
	return t.Inter.GBps * 1e9 / over
}

// pairOverride returns the override link for (a, b) if one exists.
func (t *Topology) pairOverride(a, b int) (Link, bool) {
	for _, p := range t.Pairs {
		if (p.A == a && p.B == b) || (p.A == b && p.B == a) {
			return p.Link, true
		}
	}
	return Link{}, false
}

func (t *Topology) validate(k int) error {
	if !t.Intra.valid() {
		return fmt.Errorf("sim: topology intra link needs gbps > 0 and latency_us >= 0, got %+v", t.Intra)
	}
	if t.hosts(k) > 1 && !t.Inter.valid() {
		return fmt.Errorf("sim: multi-host topology needs a valid inter link, got %+v", t.Inter)
	}
	if t.Oversubscription < 0 {
		return fmt.Errorf("sim: oversubscription %v must be >= 0", t.Oversubscription)
	}
	if t.RanksPerHost < 0 {
		return fmt.Errorf("sim: ranks_per_host %d must be >= 0", t.RanksPerHost)
	}
	for _, p := range t.Pairs {
		if p.A < 0 || p.A >= k || p.B < 0 || p.B >= k || p.A == p.B {
			return fmt.Errorf("sim: pair override (%d,%d) outside world of %d", p.A, p.B, k)
		}
		if !p.Link.valid() {
			return fmt.Errorf("sim: pair override (%d,%d) link invalid: %+v", p.A, p.B, p.Link)
		}
	}
	return nil
}

// defaultTopology derives a single-host topology from a machine's
// calibrated MPI link model, so scenarios that say nothing about
// topology price like the single-exchange model's flat fabric.
func defaultTopology(base LinkParams) *Topology {
	return &Topology{
		Intra: Link{GBps: base.GBps, LatencyUS: base.LatencyUS},
	}
}

// LinkParams is a flattened (bandwidth, latency) pair used when
// deriving topologies from the calibrated machine models.
type LinkParams struct {
	GBps      float64
	LatencyUS float64
}

// rankCommNS prices rank r's share of one collective exchange through
// the topology: the rank pushes perRankBytes through its slowest
// available path, the host uplink saturates under the traffic of all
// its ranks, and each of nMsgs per-tensor messages pays the path's
// fixed latency. interFrac is the fraction of the rank's traffic that
// crosses a host boundary ((K−g)/(K−1) under uniform peering).
func (t *Topology) rankCommNS(r, k, nMsgs int, perRankBytes float64) int64 {
	g := t.RanksPerHost
	if g <= 0 || g >= k {
		g = k
	}
	interFrac := 0.0
	if k > 1 && g < k {
		interFrac = float64(k-g) / float64(k-1)
	}
	intraBytes := perRankBytes * (1 - interFrac)
	interBytes := perRankBytes * interFrac

	sec := intraBytes / (t.Intra.GBps * 1e9)
	lat := t.Intra.LatencyUS
	if interBytes > 0 {
		// The host uplink carries every resident rank's inter-host
		// traffic; a rank's transfer is gated by its share of that
		// saturated pipe or by its own stream, whichever is slower.
		uplinkSec := float64(g) * interBytes / t.uplink()
		ownSec := interBytes / (t.Inter.GBps * 1e9)
		sec += math.Max(uplinkSec, ownSec)
		lat = math.Max(lat, t.Inter.LatencyUS)
	}
	// A degraded pair link slows every message the rank exchanges over
	// it; model the rank's exchange as gated by its worst link.
	for _, p := range t.Pairs {
		if p.A != r && p.B != r {
			continue
		}
		pairSec := perRankBytes / (p.Link.GBps * 1e9)
		if pairSec > sec {
			sec = pairSec
		}
		lat = math.Max(lat, p.Link.LatencyUS)
	}
	sec += float64(nMsgs) * lat * 1e-6
	return int64(math.Round(sec * 1e9))
}
