package sim

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/comm"
	"repro/internal/workload"
	"repro/quant"
)

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// codecByPrecision maps the paper's row labels to codecs with the
// paper's tuned buckets.
func codecByPrecision(t *testing.T, prec string, bucket int) quant.Codec {
	t.Helper()
	switch prec {
	case "32bit":
		return quant.FP32{}
	case "1bit":
		return quant.OneBit{}
	case "1bit*":
		return quant.NewOneBitReshaped(bucket)
	case "qsgd2":
		return quant.NewQSGD(2, bucket, quant.MaxNorm)
	case "qsgd4":
		return quant.NewQSGD(4, bucket, quant.MaxNorm)
	case "qsgd8":
		return quant.NewQSGD(8, bucket, quant.MaxNorm)
	case "qsgd16":
		return quant.NewQSGD(16, bucket, quant.MaxNorm)
	}
	t.Fatalf("unknown precision %q", prec)
	return nil
}

func TestSingleGPUMatchesCalibration(t *testing.T) {
	for _, net := range workload.PerformanceNetworks() {
		r := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI, GPUs: 1})
		if math.Abs(r.SamplesPerSec-net.ThroughputK80)/net.ThroughputK80 > 1e-6 {
			t.Errorf("%s 1-GPU: %v samples/s, anchor %v", net.Name, r.SamplesPerSec, net.ThroughputK80)
		}
		if r.CommSec != 0 || r.QuantSec != 0 {
			t.Errorf("%s 1-GPU must have zero comm/quant time", net.Name)
		}
	}
}

// TestCalibrationAgainstFigure10: across every reported cell of the
// paper's MPI table, the simulated throughput must stay within 2× and
// the median ratio within 10% of 1 — we reproduce shape, not seconds.
func TestCalibrationAgainstFigure10(t *testing.T) {
	var ratios []float64
	for _, row := range workload.PaperFig10MPI {
		net, err := workload.NetworkByName(row.Network)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range workload.GPUCounts {
			paper := row.Samples[i]
			if paper == 0 {
				continue
			}
			if row.Network == "VGG19" && row.Precision == "qsgd16" && k == 8 {
				// The paper's own outlier: 35.8 samples/s at 8 GPUs is
				// below its 4-GPU value (46.4) and below every other
				// quantised 8-GPU VGG cell — a measurement artefact no
				// monotone cost model can reproduce.
				continue
			}
			r := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
				Primitive: MPI, Codec: codecByPrecision(t, row.Precision, row.Bucket), GPUs: k})
			ratio := r.SamplesPerSec / paper
			ratios = append(ratios, ratio)
			if ratio < 0.5 || ratio > 2.1 {
				t.Errorf("%s %s @%d: ratio %.2f outside [0.5, 2.1]",
					row.Network, row.Precision, k, ratio)
			}
		}
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median < 0.9 || median > 1.1 {
		t.Errorf("median calibration ratio %.3f outside [0.9, 1.1]", median)
	}
}

// TestCalibrationAgainstFigure11 does the same for the NCCL table,
// excluding the paper's own outlier cell (VGG19 qsgd16 @8 reports 35.8,
// below its 4-GPU value — a measurement artefact).
func TestCalibrationAgainstFigure11(t *testing.T) {
	for _, row := range workload.PaperFig11NCCL {
		net, err := workload.NetworkByName(row.Network)
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range workload.GPUCounts {
			paper := row.Samples[i]
			if paper == 0 {
				continue
			}
			r := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
				Primitive: NCCL, Codec: codecByPrecision(t, row.Precision, row.Bucket), GPUs: k})
			if ratio := r.SamplesPerSec / paper; ratio < 0.5 || ratio > 2.0 {
				t.Errorf("%s %s @%d: NCCL ratio %.2f outside [0.5, 2.0]",
					row.Network, row.Precision, k, ratio)
			}
		}
	}
}

// --- The paper's headline claims (§5.2–§5.4, Outlook) ---

// Claim: with MPI, low precision helps a lot on communication-dominated
// networks — ~3.5× on AlexNet at 8 GPUs with 4-bit QSGD.
func TestClaimMPIQuantisationSpeedsUpAlexNet(t *testing.T) {
	fp := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	q4 := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	speedup := q4.SamplesPerSec / fp.SamplesPerSec
	if speedup < 2.5 || speedup > 4.5 {
		t.Errorf("AlexNet MPI 4-bit speedup %.2f, paper shows ≈3.5", speedup)
	}
}

// Claim: quantisation slashes communication time ~5× (AlexNet, 4-bit).
func TestClaimCommunicationReduction(t *testing.T) {
	fp := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	q4 := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	red := fp.CommSec / q4.CommSec
	if red < 4 || red > 9 {
		t.Errorf("communication reduction %.1f×, paper reports ≈5×", red)
	}
}

// Claim: on computation-dominated networks quantisation barely helps
// end-to-end (BN-Inception ≤ ~1.4× even at 16 GPUs with MPI).
func TestClaimComputationDominatedNetworksGainLittle(t *testing.T) {
	fp := mustRun(t, Config{Network: workload.BNInception, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	q4 := mustRun(t, Config{Network: workload.BNInception, Machine: workload.EC2P2, Primitive: MPI,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	if speedup := q4.SamplesPerSec / fp.SamplesPerSec; speedup > 1.5 {
		t.Errorf("BN-Inception MPI speedup %.2f, paper shows ≈1.3", speedup)
	}
}

// Claim (§5.2, "NCCL vs MPI"): full-precision NCCL beats even
// low-precision MPI on AlexNet at 8 GPUs.
func TestClaimNCCLFullPrecisionBeatsMPILowPrecision(t *testing.T) {
	nccl32 := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
	mpiQ4 := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	if nccl32.SamplesPerSec <= mpiQ4.SamplesPerSec {
		t.Errorf("NCCL 32-bit (%.0f) should beat MPI 4-bit (%.0f) on AlexNet@8",
			nccl32.SamplesPerSec, mpiQ4.SamplesPerSec)
	}
}

// Claim: with NCCL, quantisation gives at most modest speedups —
// noticeable only on VGG.
func TestClaimNCCLQuantisationGainsAreSmall(t *testing.T) {
	for _, net := range []workload.Network{workload.ResNet50, workload.ResNet152, workload.BNInception} {
		fp := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
		q4 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: NCCL,
			Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
		if speedup := q4.SamplesPerSec / fp.SamplesPerSec; speedup > 1.25 {
			t.Errorf("%s NCCL speedup %.2f — paper calls these negligible", net.Name, speedup)
		}
	}
	fp := mustRun(t, Config{Network: workload.VGG19, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
	q4 := mustRun(t, Config{Network: workload.VGG19, Machine: workload.EC2P2, Primitive: NCCL,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	if speedup := q4.SamplesPerSec / fp.SamplesPerSec; speedup < 1.05 || speedup > 1.6 {
		t.Errorf("VGG19 NCCL speedup %.2f, paper shows 1.1–1.5×", speedup)
	}
}

// Claim (§3.2): classic 1bitSGD is *slower than full precision* on
// heavily convolutional networks; the reshaped variant fixes it.
func TestClaimClassicOneBitSlowerOnConvNets(t *testing.T) {
	for _, net := range []workload.Network{workload.ResNet50, workload.ResNet152, workload.BNInception} {
		fp := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
		classic := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI,
			Codec: quant.OneBit{}, GPUs: 8})
		reshaped := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI,
			Codec: quant.NewOneBitReshaped(64), GPUs: 8})
		if classic.SamplesPerSec >= fp.SamplesPerSec {
			t.Errorf("%s: classic 1bit (%.0f) should be slower than fp32 (%.0f)",
				net.Name, classic.SamplesPerSec, fp.SamplesPerSec)
		}
		if reshaped.SamplesPerSec <= classic.SamplesPerSec {
			t.Errorf("%s: reshaping should fix classic 1bit", net.Name)
		}
		if ratio := reshaped.SamplesPerSec / classic.SamplesPerSec; ratio < 2 {
			t.Errorf("%s: reshaping speedup %.1f×, paper reports up to 4×", net.Name, ratio)
		}
	}
}

// Claim: classic 1bitSGD is fine on FC-dominated AlexNet.
func TestClaimClassicOneBitFastOnAlexNet(t *testing.T) {
	fp := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	classic := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI,
		Codec: quant.OneBit{}, GPUs: 8})
	if classic.SamplesPerSec < 2*fp.SamplesPerSec {
		t.Errorf("AlexNet classic 1bit (%.0f) should be ≥2× fp32 (%.0f)",
			classic.SamplesPerSec, fp.SamplesPerSec)
	}
}

// Claim ("Is using extremely low precision ever helpful?"): diminishing
// returns — 2-bit rarely beats 4-bit by much, even on MPI.
func TestClaimDiminishingReturnsBelow4Bit(t *testing.T) {
	for _, net := range workload.PerformanceNetworks() {
		q4 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI,
			Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
		q2 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI,
			Codec: quant.NewQSGD(2, 128, quant.MaxNorm), GPUs: 8})
		if gain := q2.SamplesPerSec / q4.SamplesPerSec; gain > 1.25 {
			t.Errorf("%s: 2-bit over 4-bit gain %.2f — paper reports diminishing returns", net.Name, gain)
		}
	}
}

// Claim ("Do we really need 16 GPUs?"): going 8→16 rarely doubles
// throughput; for several networks it is a slowdown at full precision.
func TestClaim16GPUsRarelyWorthIt(t *testing.T) {
	slowdowns := 0
	for _, net := range []workload.Network{workload.AlexNet, workload.VGG19, workload.ResNet110} {
		r8 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
		r16 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: MPI, GPUs: 16})
		if r16.SamplesPerSec < r8.SamplesPerSec {
			slowdowns++
		}
		if r16.SamplesPerSec > 1.9*r8.SamplesPerSec {
			t.Errorf("%s: 16 GPUs gave %.2f× over 8 — would justify the 2× price, contradicting the paper",
				net.Name, r16.SamplesPerSec/r8.SamplesPerSec)
		}
	}
	if slowdowns == 0 {
		t.Error("expected at least one fp32 slowdown going 8→16 GPUs (paper shows several)")
	}
}

// Claim (DGX-1 §5.2): on the fast interconnect, MPI still benefits from
// quantisation (up to ~5× on VGG) but NCCL gains stay modest.
func TestClaimDGXBehaviour(t *testing.T) {
	fpMPI := mustRun(t, Config{Network: workload.VGG19, Machine: workload.DGX1, Primitive: MPI, GPUs: 8})
	q4MPI := mustRun(t, Config{Network: workload.VGG19, Machine: workload.DGX1, Primitive: MPI,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	// The paper reports "up to 5×"; an additive cost model caps the
	// gain at (compute+comm)/compute ≈ 3.5, so we assert a substantial
	// but not full reproduction (see internal/harness/claims.go).
	if speedup := q4MPI.SamplesPerSec / fpMPI.SamplesPerSec; speedup < 2.5 {
		t.Errorf("DGX VGG19 MPI 4-bit speedup %.2f, paper shows up to ~5×", speedup)
	}
	fpN := mustRun(t, Config{Network: workload.VGG19, Machine: workload.DGX1, Primitive: NCCL, GPUs: 8})
	q4N := mustRun(t, Config{Network: workload.VGG19, Machine: workload.DGX1, Primitive: NCCL,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), GPUs: 8})
	if speedup := q4N.SamplesPerSec / fpN.SamplesPerSec; speedup < 1.05 || speedup > 1.8 {
		t.Errorf("DGX VGG19 NCCL speedup %.2f, paper shows ≈1.6×", speedup)
	}
	// The DGX runs faster than EC2 overall (newer GPUs + interconnect).
	ec2 := mustRun(t, Config{Network: workload.VGG19, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
	if fpN.SamplesPerSec <= ec2.SamplesPerSec {
		t.Error("DGX-1 should outperform the EC2 instance")
	}
}

// Claim (VGG19 super-linear scaling): per-GPU batch 16 processes
// samples faster, producing super-linear NCCL scaling at 8 GPUs.
func TestClaimVGGSuperLinearScaling(t *testing.T) {
	r := mustRun(t, Config{Network: workload.VGG19, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
	scal, err := Scalability(r, workload.VGG19, workload.EC2P2)
	if err != nil {
		t.Fatal(err)
	}
	if scal < 8.5 {
		t.Errorf("VGG19 NCCL@8 scalability %.1f — paper shows super-linear (>8×)", scal)
	}
}

// Claim (Outlook, Figure 16 right): the 8-bit NCCL speedup grows
// monotonically with the model-size-to-compute ratio, starts negligible
// for today's networks, becomes significant (≈2×) in the extrapolated
// regime, and never exceeds the 4× bandwidth bound. (The paper's own
// curve saturates around 2× because the quantisation kernels scale
// with the dummy model as well.)
func TestClaimSpeedupGrowsWithModelSizeRatio(t *testing.T) {
	var first, prev float64
	for i, extra := range []int64{0, 200e6, 2e9, 20e9} {
		net := WithDummyParams(workload.AlexNet, extra)
		fp := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 8})
		q8 := mustRun(t, Config{Network: net, Machine: workload.EC2P2, Primitive: NCCL,
			Codec: quant.NewQSGD(8, 512, quant.MaxNorm), GPUs: 8})
		speedup := q8.SamplesPerSec / fp.SamplesPerSec
		if i == 0 {
			first = speedup
		}
		if speedup < prev-1e-9 {
			t.Errorf("step %d: speedup %.2f decreased from %.2f", i, speedup, prev)
		}
		if speedup > 4.05 {
			t.Errorf("speedup %.2f exceeds the 4× bandwidth bound", speedup)
		}
		prev = speedup
	}
	if first > 1.3 {
		t.Errorf("today's-AlexNet speedup %.2f should be small (paper: minimal)", first)
	}
	if prev < 1.5 {
		t.Errorf("extrapolated speedup %.2f should become significant (paper: ≈2×)", prev)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Network: workload.AlexNet, Machine: workload.EC2P2, GPUs: 0}); err == nil {
		t.Error("expected error for 0 GPUs")
	}
	if _, err := Run(Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: NCCL, GPUs: 16}); err == nil {
		t.Error("expected error for NCCL@16")
	}
	if _, err := Run(Config{Network: workload.LSTMSpeech, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8}); err == nil {
		t.Error("expected error: LSTM has no 8-GPU batch in Figure 4")
	}
	if _, err := Run(Config{Network: workload.LSTMSpeech, Machine: workload.EC2P2,
		Primitive: MPI, GPUs: 8, BatchOverride: 64}); err != nil {
		t.Errorf("batch override should permit the run: %v", err)
	}
}

func TestEpochTimeConsistency(t *testing.T) {
	r := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	wantEpoch := 1_300_000 / r.SamplesPerSec
	if math.Abs(r.EpochSec-wantEpoch) > 1e-6 {
		t.Errorf("epoch time %v, want %v", r.EpochSec, wantEpoch)
	}
	if math.Abs(r.EpochHours()-r.EpochSec/3600) > 1e-12 {
		t.Error("EpochHours inconsistent")
	}
}

func TestWithDummyParams(t *testing.T) {
	base := workload.AlexNet
	grown := WithDummyParams(base, 1e9)
	if grown.Params() < base.Params()+9e8 {
		t.Error("dummy params not added")
	}
	if len(base.Tensors) == len(grown.Tensors) {
		t.Error("dummy tensor missing")
	}
	if same := WithDummyParams(base, 0); len(same.Tensors) != len(base.Tensors) {
		t.Error("zero extra params must be a no-op")
	}
}

func TestQuantTimeZeroForFP32(t *testing.T) {
	r := mustRun(t, Config{Network: workload.ResNet50, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8})
	if r.QuantSec != 0 {
		t.Error("fp32 must not pay quantisation kernels")
	}
}

// TestOverlapReducesIterTime: the double-buffering knob hides
// communication behind compute, monotonically.
func TestOverlapReducesIterTime(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, ov := range []float64{0, 0.25, 0.5, 0.9} {
		r := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
			Primitive: MPI, GPUs: 8, Overlap: ov})
		if r.IterSec >= prev {
			t.Fatalf("overlap %v did not reduce iteration time (%v >= %v)", ov, r.IterSec, prev)
		}
		// Never below the compute+quant floor.
		if r.IterSec < r.ComputeSec+r.QuantSec-1e-12 {
			t.Fatalf("overlap %v dropped below the compute floor", ov)
		}
		prev = r.IterSec
	}
	if _, err := Run(Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, GPUs: 8, Overlap: 1.5}); err == nil {
		t.Fatal("expected error for overlap outside [0,1)")
	}
}

// TestTopKInSimulator: the sparse codec flows through the plan and the
// cost model (its index overhead shows in the wire bytes).
func TestTopKInSimulator(t *testing.T) {
	r := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Codec: quant.NewTopK(0.01), GPUs: 8})
	ratio := float64(r.RawBytes) / float64(r.WireBytes)
	if ratio < 40 || ratio > 60 {
		t.Fatalf("top-k 1%% whole-model ratio %.1f, want ≈50 (index overhead)", ratio)
	}
	if r.SamplesPerSec < 100 {
		t.Fatalf("implausible throughput %v", r.SamplesPerSec)
	}
}

// frameNet is a laptop-sized network literal for the framed-volume
// tests: small enough to push through a real TCP mesh in-process.
func frameNet() workload.Network {
	return workload.Network{
		Name: "frame-test",
		Tensors: []quant.TensorInfo{
			{Name: "conv.W", Shape: quant.Shape{Rows: 3, Cols: 512}},
			{Name: "fc.W", Shape: quant.Shape{Rows: 256, Cols: 64}},
			{Name: "fc.b", Shape: quant.Shape{Rows: 130, Cols: 1}},
		},
		ThroughputK80: 1000,
	}
}

// TestFramedSimulatedVolumeMatchesMeasuredTCP: the headline of the
// framing satellite — the simulator's framed ExchangeBytes must equal,
// byte for byte, what a real TCP exchange of the same tensors under the
// same policy puts on the wire. The policies cover the whole surface:
// plain codecs (wrapped into default policies), a tightened exemption
// target, and mixed per-tensor rule policies whose frames carry a
// different codec name per tensor.
func TestFramedSimulatedVolumeMatchesMeasuredTCP(t *testing.T) {
	const k = 3
	net := frameNet()
	for _, policy := range []*quant.Policy{
		quant.NewPolicy(quant.FP32{}),
		quant.NewPolicy(quant.NewQSGD(4, 512, quant.MaxNorm)),
		quant.NewPolicy(quant.NewOneBitReshaped(64)),
		quant.MustParsePolicy("qsgd4b512;minfrac=0.5"),
		quant.MustParsePolicy("qsgd4b512;conv.W=topk0.01;*.b=32bit"),
		quant.MustParsePolicy("1bit*64;minfrac=1;fc.W=qsgd8b512"),
	} {
		res := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
			Primitive: MPI, Policy: policy, GPUs: k, BatchOverride: 3 * k, Framed: true})

		// Measure: run one real exchange over a loopback TCP mesh with
		// the same plan.
		plan := quant.NewPlan(policy, net.Tensors)
		specs := make([]comm.TensorSpec, len(net.Tensors))
		for i, ti := range net.Tensors {
			specs[i] = comm.TensorSpec{Name: ti.Name, N: ti.Shape.Len(),
				Wire: ti.Shape, Codec: plan.CodecFor(i)}
		}
		tcp, err := comm.NewTCPFabric(k)
		if err != nil {
			t.Fatal(err)
		}
		rb := comm.NewReduceBroadcast(tcp, specs, 5)
		var wg sync.WaitGroup
		errs := make([]error, k)
		for w := 0; w < k; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ti := range specs {
					g := make([]float32, specs[ti].N)
					for i := range g {
						g[i] = float32(i%7) - 3
					}
					if err := rb.Reduce(w, ti, g); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		measured := tcp.TotalBytes()
		tcp.Close()
		if res.ExchangeBytes != measured {
			t.Errorf("%s: simulator predicts %d exchange bytes, TCP moved %d",
				policy.Name(), res.ExchangeBytes, measured)
		}

		// And the framed prediction must exceed the headerless one by
		// exactly the per-copy header share.
		raw := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
			Primitive: MPI, Policy: policy, GPUs: k, BatchOverride: 3 * k})
		wantPerCopy := (res.ExchangeBytes - raw.ExchangeBytes) / int64(2*(k-1))
		if res.WireBytes != raw.WireBytes+wantPerCopy {
			t.Errorf("%s: framed WireBytes %d, want %d + %d",
				policy.Name(), res.WireBytes, raw.WireBytes, wantPerCopy)
		}
		if res.CommSec <= raw.CommSec {
			t.Errorf("%s: frame headers must cost transfer time (%v <= %v)",
				policy.Name(), res.CommSec, raw.CommSec)
		}
	}
}

// TestPolicyPlumbedThroughSimulator: the deprecated Codec field and an
// equivalent Policy must price identically, and the exemption target is
// the caller's, not a hardcoded 0.99.
func TestPolicyPlumbedThroughSimulator(t *testing.T) {
	codec := quant.NewQSGD(4, 512, quant.MaxNorm)
	viaCodec := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Codec: codec, GPUs: 8})
	viaPolicy := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Policy: quant.NewPolicy(codec), GPUs: 8})
	if viaCodec.WireBytes != viaPolicy.WireBytes || viaCodec.ExchangeBytes != viaPolicy.ExchangeBytes {
		t.Fatalf("codec shim (%d/%d) and default policy (%d/%d) priced differently",
			viaCodec.WireBytes, viaCodec.ExchangeBytes, viaPolicy.WireBytes, viaPolicy.ExchangeBytes)
	}
	if viaPolicy.Codec != "qsgd4b512" {
		t.Fatalf("result names policy %q, want qsgd4b512", viaPolicy.Codec)
	}
	// minfrac=1 exempts nothing, so it must move at least as few bytes
	// as the default target, and a rule forcing a tensor to 32bit must
	// show up in the priced volume.
	all := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Policy: quant.MustParsePolicy("qsgd4b512;minfrac=1"), GPUs: 8})
	if all.WireBytes > viaPolicy.WireBytes {
		t.Fatalf("minfrac=1 (%d bytes) must not exceed the default exemption (%d bytes)",
			all.WireBytes, viaPolicy.WireBytes)
	}
	ruled := mustRun(t, Config{Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: MPI, Policy: quant.MustParsePolicy("qsgd4b512;minfrac=1;fc6=32bit"), GPUs: 8})
	if ruled.WireBytes <= all.WireBytes {
		t.Fatalf("an fc6=32bit rule must increase the priced volume (%d <= %d)",
			ruled.WireBytes, all.WireBytes)
	}
}

// TestFramedRingVolumeMatchesMeasuredTCP: same agreement for the
// NCCL-style full-precision ring.
func TestFramedRingVolumeMatchesMeasuredTCP(t *testing.T) {
	const k = 3
	net := frameNet()
	res := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
		Primitive: NCCL, GPUs: k, BatchOverride: 3 * k, Framed: true})

	tcp, err := comm.NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ring := comm.NewRing(tcp)
	var wg sync.WaitGroup
	errs := make([]error, k)
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti, info := range net.Tensors {
				g := make([]float32, info.Shape.Len())
				if err := ring.Reduce(w, ti, g); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if measured := tcp.TotalBytes(); res.ExchangeBytes != measured {
		t.Errorf("ring: simulator predicts %d exchange bytes, TCP moved %d",
			res.ExchangeBytes, measured)
	}
}
