package sim

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/comm"
	"repro/health"
	"repro/internal/workload"
	"repro/quant"
)

// tcpPair builds a connected loopback duplex pair for control links.
func tcpPair(t testing.TB) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	return dial, acc.c
}

// controlMonitors builds and starts one health monitor per rank over a
// dedicated loopback control mesh, mirroring what the cluster
// rendezvous establishes beside the data mesh.
func controlMonitors(t testing.TB, world int, cfg health.Config) []*health.Monitor {
	t.Helper()
	conns := make([][]net.Conn, world)
	for r := range conns {
		conns[r] = make([]net.Conn, world)
	}
	for lo := 0; lo < world; lo++ {
		for hi := lo + 1; hi < world; hi++ {
			a, b := tcpPair(t)
			conns[lo][hi] = a
			conns[hi][lo] = b
		}
	}
	ms := make([]*health.Monitor, world)
	for r := 0; r < world; r++ {
		m, err := health.NewMonitor(r, world, conns[r], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms[r] = m
		m.Start()
	}
	return ms
}

// runExchange pushes every tensor of the spec set through one full
// reduce-and-broadcast over the fabric, once per rank.
func runExchange(t testing.TB, tcp *comm.TCPFabric, rb *comm.ReduceBroadcast, specs []comm.TensorSpec) {
	t.Helper()
	k := tcp.K()
	var wg sync.WaitGroup
	errs := make([]error, k)
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ti := range specs {
				g := make([]float32, specs[ti].N)
				for i := range g {
					g[i] = float32(i%7) - 3
				}
				if err := rb.Reduce(w, ti, g); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestControlPlaneDoesNotPerturbExchangeBytes: the byte-parity
// guarantee survives the health plane. Heartbeats flow over their own
// control sockets with their own counter (Monitor.ControlBytes), so a
// live TCP exchange run while monitors actively ping still matches the
// simulator's framed ExchangeBytes byte for byte.
func TestControlPlaneDoesNotPerturbExchangeBytes(t *testing.T) {
	const k = 3
	net := frameNet()
	policy := quant.MustParsePolicy("qsgd4b512;conv.W=topk0.01;*.b=32bit")
	res := mustRun(t, Config{Network: net, Machine: workload.EC2P2,
		Primitive: MPI, Policy: policy, GPUs: k, BatchOverride: 3 * k, Framed: true})

	// The control plane pings hard (1 ms interval) for the whole
	// exchange window so heartbeat traffic provably overlaps it.
	monitors := controlMonitors(t, k, health.Config{
		Interval: time.Millisecond, Timeout: 10 * time.Second,
	})
	defer func() {
		for _, m := range monitors {
			m.Close()
		}
	}()

	plan := quant.NewPlan(policy, net.Tensors)
	specs := make([]comm.TensorSpec, len(net.Tensors))
	for i, ti := range net.Tensors {
		specs[i] = comm.TensorSpec{Name: ti.Name, N: ti.Shape.Len(),
			Wire: ti.Shape, Codec: plan.CodecFor(i)}
	}
	tcp, err := comm.NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	time.Sleep(20 * time.Millisecond) // let heartbeats start flowing
	runExchange(t, tcp, comm.NewReduceBroadcast(tcp, specs, 5), specs)
	time.Sleep(20 * time.Millisecond) // and keep flowing past the exchange

	if measured := tcp.TotalBytes(); measured != res.ExchangeBytes {
		t.Errorf("with the health plane on, TCP moved %d bytes, simulator predicts %d — control traffic leaked into the data accounting",
			measured, res.ExchangeBytes)
	}
	var control int64
	for _, m := range monitors {
		control += m.ControlBytes()
	}
	if control == 0 {
		t.Fatal("no control-plane traffic flowed during the exchange; the test proved nothing")
	}
}

// BenchmarkHeartbeatOverhead measures the steady-state step-time cost
// of the health plane: the same framed quantised exchange over a
// 2-rank loopback TCP mesh, with the control plane off and then
// pinging at an aggressive 1 ms interval. Compare ns/op between the
// two sub-benchmarks; the delta is the heartbeat overhead (expected to
// be noise: the control plane owns its own sockets and goroutines and
// touches nothing on the data path).
func BenchmarkHeartbeatOverhead(b *testing.B) {
	net := frameNet()
	policy := quant.MustParsePolicy("qsgd4b512")
	plan := quant.NewPlan(policy, net.Tensors)
	specs := make([]comm.TensorSpec, len(net.Tensors))
	for i, ti := range net.Tensors {
		specs[i] = comm.TensorSpec{Name: ti.Name, N: ti.Shape.Len(),
			Wire: ti.Shape, Codec: plan.CodecFor(i)}
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"health-off", false}, {"health-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			const k = 2
			tcp, err := comm.NewTCPFabric(k)
			if err != nil {
				b.Fatal(err)
			}
			defer tcp.Close()
			if mode.on {
				monitors := controlMonitors(b, k, health.Config{
					Interval: time.Millisecond, Timeout: 10 * time.Second,
				})
				defer func() {
					for _, m := range monitors {
						m.Close()
					}
				}()
			}
			rb := comm.NewReduceBroadcast(tcp, specs, 5)
			grads := make([][][]float32, k)
			for w := 0; w < k; w++ {
				grads[w] = make([][]float32, len(specs))
				for ti := range specs {
					grads[w][ti] = make([]float32, specs[ti].N)
				}
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for w := 0; w < k; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for ti := range specs {
							if err := rb.Reduce(w, ti, grads[w][ti]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
		})
	}
}
