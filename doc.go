// Package repro is a pure-Go reproduction of "Synchronous Multi-GPU
// Deep Learning with Low-Precision Communication: An Experimental
// Study" (Grubic, Tam, Alistarh, Zhang; EDBT 2018), grown into an
// importable library.
//
// The public surface is the lpsgd facade (functional-options trainer
// construction) over the public packages: quant (the low-precision
// gradient codecs — the paper's primary contribution — plus the
// self-describing framed wire format, the Parse name grammar, and the
// precision-policy layer: quant.Policy/ParsePolicy assign codecs per
// tensor through one round-tripping string such as
// "qsgd4b512;minfrac=0.99;embedding=topk0.001;*.bias=32bit", and
// quant.NewPlan evaluates a policy against a model's tensor inventory
// as the single source of truth for per-tensor codecs, wire bytes and
// kernel pricing), comm/parallel (the synchronous data-parallel engine
// with MPI-style and NCCL-style aggregation over in-process,
// loopback-TCP or remote mesh fabrics), cluster (the multi-process
// runtime: TCP rendezvous, per-session policy negotiation with a 32bit
// floor, and mesh establishment across machine boundaries — launched
// via cmd/lpsgd-worker or lpsgd.WithCluster), health (the cluster's
// fault-handling plane: per-peer heartbeat control links, a
// phi-or-deadline failure detector, a coordinated abort that unblocks
// every survivor with the same typed health.ErrPeerDead when a rank
// dies mid-epoch, and straggler telemetry piggybacked on the
// heartbeats — tuned via lpsgd.WithHeartbeat/WithStepDeadline and
// surfaced through Trainer.StepStats and lpsgd-worker's documented
// exit codes), elastic (elastic sessions on top of the health plane:
// a versioned session-state snapshot — weights, optimiser momentum,
// step and data cursors — and the rendezvous ProtocolVersion 4 rejoin
// protocol, through which a replacement process takes a dead rank's
// slot mid-run via donor state transfer and training resumes with
// digests bit-identical to an uninterrupted run under residual-free
// policies; enabled by lpsgd.WithElastic and lpsgd-worker -rejoin,
// with Trainer.SaveState/LoadState exposing the same snapshot for
// planned, exact resumption), sim (the performance laboratory: the
// calibrated single-exchange cost model of the paper's machines,
// framing overhead included, plus a deterministic discrete-event
// cluster simulator — JSON scenarios with heterogeneous topologies,
// straggler/jitter/failure workload generators and trace replay, run
// on a seeded logical clock at up to thousands of ranks, with exchange
// volumes cross-validated byte-for-byte against live TCP and outputs
// locked by golden datasets under sim/testdata; driven from the
// command line via lpsgd-sim -scenario), obs (the observability plane:
// a dependency-free metrics registry with nil-safe handles and a
// step-phase span tracer that shares the simulator's phase vocabulary
// — compute, quantise, encode, transfer, decode, barrier, control —
// wired in via lpsgd.WithMetrics/WithTracer, served over HTTP by
// obs.Serve as /metrics, /debug/vars, /debug/pprof and /trace, and
// provably inert when absent: digest-parity and byte-parity tests plus
// a paired step benchmark hold the enabled plane under 2% overhead;
// cmd/lpsgd-trace diffs a captured trace against a simulated scenario,
// and the telemetry plane on top — lpsgd.WithTelemetry samples step
// loss, gradient norms and live quantisation RMSE/compression, ships
// the snapshots over the heartbeat control links, and
// cluster.TelemetryHub aggregates them into /cluster/metrics and
// /cluster/status for the cmd/lpsgd-top terminal dashboard),
// and nn/tensor/data/rng (the deep-learning substrate). The experiment machinery stays under
// internal/: workload (machine and network calibration data), harness
// (one runner per table and figure) and lint (the project's static
// analyzers, run as a vet tool via cmd/lpsgd-vet to machine-enforce
// the wire-bound, sim-determinism, transport-error, goroutine-
// lifecycle, observability-inertness and deprecation contracts); internal/simulate remains as a
// deprecated shim over sim. See README.md for a quickstart and a tour;
// the top-level bench_test.go regenerates every figure as a Go
// benchmark.
package repro
