// Package repro is a pure-Go reproduction of "Synchronous Multi-GPU
// Deep Learning with Low-Precision Communication: An Experimental
// Study" (Grubic, Tam, Alistarh, Zhang; EDBT 2018).
//
// The library lives under internal/: quant (the low-precision gradient
// codecs — the paper's primary contribution), nn/tensor/data (the
// deep-learning substrate), comm/parallel (the synchronous data-parallel
// engine with MPI-style and NCCL-style aggregation), workload/simulate
// (the calibrated performance model of the paper's machines) and
// harness (one runner per table and figure). See README.md for a tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-reproduction comparison. The top-level bench_test.go
// regenerates every figure as a Go benchmark.
package repro
