package parallel

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/data"
	"repro/health"
	"repro/nn"
	"repro/rng"
)

// smallTask builds a tiny deterministic workload for guard-rail tests.
func smallTask() (func(r *rng.RNG) *nn.Network, *data.Dataset, *data.Dataset) {
	train, test := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 1, H: 4, W: 4,
		TrainN: 64, TestN: 32, Noise: 0.7, Seed: 5,
	})
	build := func(r *rng.RNG) *nn.Network {
		return nn.MustNetwork(
			nn.NewDense("fc1", 16, 8, r),
			nn.NewReLU("r1"),
			nn.NewDense("fc2", 8, 4, r),
		)
	}
	return build, train, test
}

// TestStepStatsSingleProcess: with every rank local, the straggler
// report is fully known and attributes a slowest rank each step.
func TestStepStatsSingleProcess(t *testing.T) {
	build, train, test := smallTask()
	tr, err := NewTrainer(build, Config{
		Workers: 4, BatchSize: 16, Epochs: 1, Seed: 9,
		Schedule: nn.ConstantLR(0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if s := tr.StepStats(); s.Step != 0 || s.Slowest != -1 {
		t.Fatalf("pre-run stats %+v, want empty with Slowest -1", s)
	}
	h, err := tr.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.StepStats()
	if s.Step <= 0 {
		t.Fatalf("no steps recorded: %+v", s)
	}
	if len(s.Compute) != 4 || len(s.Exchange) != 4 || len(s.Known) != 4 {
		t.Fatalf("per-rank slices sized wrong: %+v", s)
	}
	for r, known := range s.Known {
		if !known {
			t.Fatalf("rank %d unknown in a single-process world", r)
		}
	}
	if s.Slowest < 0 || s.Slowest >= 4 {
		t.Fatalf("slowest rank %d out of range", s.Slowest)
	}
	if got := h.Epochs[0].SlowestRank; got < 0 || got >= 4 {
		t.Fatalf("epoch straggler attribution %d out of range", got)
	}
}

// TestStepDeadlineAborts: an impossible step deadline aborts the run
// with the typed error instead of leaving workers blocked in the
// exchange.
func TestStepDeadlineAborts(t *testing.T) {
	build, train, test := smallTask()
	tr, err := NewTrainer(build, Config{
		Workers: 2, BatchSize: 16, Epochs: 1, Seed: 9,
		Schedule: nn.ConstantLR(0.1), UseTCP: true,
		StepDeadline: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, err = tr.Run(train, test)
	var dl ErrStepDeadline
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %v, want an ErrStepDeadline", err)
	}
	if dl.Deadline != time.Nanosecond || dl.Step != 1 {
		t.Fatalf("deadline error %+v, want step 1 at 1ns", dl)
	}
}

// TestMonitorVerdictSurfacesInRun: a health-plane death verdict makes
// Run fail fast with the typed health.ErrPeerDead — the abort
// propagation contract the cluster relies on.
func TestMonitorVerdictSurfacesInRun(t *testing.T) {
	// A 2-rank control mesh; the "peer" (rank 1) never runs a monitor
	// and its socket dies immediately — the EOF path declares it dead.
	a, b := pairedConns(t)
	mon, err := health.NewMonitor(0, 2, []net.Conn{nil, a}, health.Config{
		Interval: 20 * time.Millisecond, Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	b.Close()
	select {
	case <-mon.Dead():
	case <-time.After(5 * time.Second):
		t.Fatal("monitor never reached a verdict")
	}

	build, train, test := smallTask()
	tr, err := NewTrainer(build, Config{
		Workers: 2, BatchSize: 16, Epochs: 1, Seed: 9,
		Schedule: nn.ConstantLR(0.1), UseTCP: true,
		Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	_, err = tr.Run(train, test)
	var dead health.ErrPeerDead
	if !errors.As(err, &dead) {
		t.Fatalf("Run returned %v, want health.ErrPeerDead", err)
	}
	if dead.Rank != 1 {
		t.Fatalf("verdict blames rank %d, want 1", dead.Rank)
	}
}

// pairedConns builds a connected loopback TCP pair.
func pairedConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	return dial, acc.c
}
