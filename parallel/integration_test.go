package parallel

import (
	"testing"

	"repro/comm"
	"repro/data"
	"repro/internal/workload"
	"repro/nn"
	"repro/quant"
	"repro/rng"
	"repro/sim"
	"repro/tensor"
)

// These integration tests close the loop between the *real* engine and
// the *modelled* costs: the bytes the fabric actually moves per
// iteration must equal both the reducer's closed-form prediction and
// the quant.Plan arithmetic the performance simulator prices — the
// chain of equalities the performance figures rest on.

func buildSmallCNN() func(r *rng.RNG) *nn.Network {
	return func(r *rng.RNG) *nn.Network {
		c1 := nn.NewConv2D("conv1", tensor.ConvShape{
			InC: 1, InH: 8, InW: 8, OutC: 4, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)
		return nn.MustNetwork(
			c1,
			nn.NewReLU("relu1"),
			nn.NewDense("fc", c1.OutLen(), 4, r),
		)
	}
}

// TestWireBytesMatchReducerPrediction: real fabric bytes per iteration
// == ReduceBroadcast.WireBytesPerExchange, for several codecs.
func TestWireBytesMatchReducerPrediction(t *testing.T) {
	train, test := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 1, H: 8, W: 8,
		TrainN: 64, TestN: 32, Noise: 0.5, Seed: 11,
	})
	for _, codec := range []quant.Codec{
		quant.FP32{},
		quant.OneBit{},
		quant.NewOneBitReshaped(64),
		quant.NewQSGD(4, 512, quant.MaxNorm),
		quant.NewTopK(0.05),
	} {
		tr, err := NewTrainer(buildSmallCNN(), Config{
			Workers: 4, Codec: codec, BatchSize: 32, Epochs: 1,
			Schedule: nn.ConstantLR(0.05), Seed: 12,
			MinQuantisedFraction: 1, // quantise everything: exact arithmetic below
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := tr.Run(train, test)
		if err != nil {
			t.Fatal(err)
		}
		rb, ok := tr.Reducer().(*comm.ReduceBroadcast)
		if !ok {
			t.Fatal("expected reduce-broadcast")
		}
		iters := int64(64 / 32) // full batches per epoch
		want := rb.WireBytesPerExchange() * iters
		if h.TotalWireBytes != want {
			t.Errorf("%s: fabric moved %d bytes, predicted %d",
				codec.Name(), h.TotalWireBytes, want)
		}
	}
}

// TestEngineBytesConsistentWithPlanArithmetic: for K=2 without striping
// subtleties, fabric traffic per iteration must equal
// 2 · (K−1)/K · K · plan.WireBytes = 2 · plan-encoded bytes... more
// precisely: for each tensor, every peer sends K−1 stripes and each
// owner broadcasts to K−1 peers, so total = 2(K−1) × (encoded bytes of
// the whole model at stripe granularity). With group-aligned stripes
// the stripe-encoded total equals the plan's whole-tensor total.
func TestEngineBytesConsistentWithPlanArithmetic(t *testing.T) {
	const k = 2
	codec := quant.NewQSGD(8, 512, quant.MaxNorm)
	tr, err := NewTrainer(buildSmallCNN(), Config{
		Workers: k, Codec: codec, BatchSize: 16, Epochs: 1,
		Schedule: nn.ConstantLR(0.05), Seed: 13,
		MinQuantisedFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := tr.Plan()
	rb := tr.Reducer().(*comm.ReduceBroadcast)
	// Stripe-granular totals can only differ from whole-tensor totals
	// by per-stripe partial-group padding; with bucket-aligned stripes
	// they must be within one bucket header per (tensor, stripe).
	predicted := rb.WireBytesPerExchange()
	wholeTensor := 2 * int64(k-1) * plan.WireBytes()
	diff := predicted - wholeTensor
	if diff < 0 {
		diff = -diff
	}
	maxSlack := int64(plan.NumTensors() * k * 8)
	if diff > maxSlack {
		t.Fatalf("stripe total %d vs whole-tensor total %d differ by %d (> %d slack)",
			predicted, wholeTensor, diff, maxSlack)
	}
}

// TestSimulatorAndEngineAgreeOnModelBytes: the simulator's RawBytes for
// a workload equals 4 bytes × the parameter count of the inventory —
// and the engine's plan on a real network obeys the same arithmetic.
func TestSimulatorAndEngineAgreeOnModelBytes(t *testing.T) {
	r, err := sim.Run(sim.Config{
		Network: workload.AlexNet, Machine: workload.EC2P2,
		Primitive: sim.MPI, GPUs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.RawBytes != workload.AlexNet.ModelBytes() {
		t.Fatalf("simulator raw bytes %d != model bytes %d",
			r.RawBytes, workload.AlexNet.ModelBytes())
	}
	tr, err := NewTrainer(buildSmallCNN(), Config{
		Workers: 2, BatchSize: 8, Epochs: 1,
		Schedule: nn.ConstantLR(0.05), Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	var params int64
	for _, p := range tr.Model().Params() {
		params += int64(p.Value.Len())
	}
	if tr.Plan().RawBytes() != 4*params {
		t.Fatalf("plan raw bytes %d != 4×params %d", tr.Plan().RawBytes(), 4*params)
	}
}

// TestQuantisedFractionMatchesPolicyOnRealModel: the engine applies the
// paper's ≥99% small-matrix exemption on a real model.
func TestQuantisedFractionMatchesPolicyOnRealModel(t *testing.T) {
	tr, err := NewTrainer(buildSmallCNN(), Config{
		Workers: 2, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 8, Epochs: 1, Schedule: nn.ConstantLR(0.05), Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := tr.Plan().QuantisedFraction(); f < 0.99 {
		t.Fatalf("quantised fraction %v < 0.99", f)
	}
	// The conv bias (4 elements) must ride the full-precision fallback.
	foundFallback := false
	for i := 0; i < tr.Plan().NumTensors(); i++ {
		if _, fp := tr.Plan().CodecFor(i).(quant.FP32); fp {
			foundFallback = true
		}
	}
	if !foundFallback {
		t.Fatal("expected at least one small tensor on the fp32 fallback")
	}
}
