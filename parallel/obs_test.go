package parallel

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/data"
	"repro/nn"
	"repro/obs"
	"repro/quant"
)

// obsRun executes one small quantised training run with the given
// observability planes attached and returns the checkpoint bytes (the
// digest), the trainer, and the history.
func obsRun(t *testing.T, tracer *obs.Tracer, metrics *obs.Registry, useTCP bool) ([]byte, *Trainer, *History) {
	t.Helper()
	train, test := blobData(t)
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 64, Epochs: 2,
		Schedule: nn.ConstantLR(0.08), Momentum: 0.9, Seed: 5,
		UseTCP:  useTCP,
		Tracer:  tracer,
		Metrics: metrics,
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ReplicasInSync() {
		t.Fatal("replicas diverged")
	}
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr, h
}

// TestObsDisabledDigestParity is the tentpole inertness contract, in
// the mould of the PR 4 health-plane suite: the tracer and registry
// must not move a single training bit. Three identical runs — no
// observability config at all, an explicitly-nil tracer, and a fully
// enabled tracer+registry — must produce bit-identical checkpoints.
func TestObsDisabledDigestParity(t *testing.T) {
	baseline, _, _ := obsRun(t, nil, nil, false)
	nilExplicit, _, _ := obsRun(t, nil, nil, false)
	if !bytes.Equal(baseline, nilExplicit) {
		t.Fatal("identical configs produced different checkpoints — run is nondeterministic; parity test is void")
	}

	tracer := obs.NewTracer(4096)
	reg := obs.NewRegistry()
	enabled, tr, _ := obsRun(t, tracer, reg, false)

	// The enabled planes must have actually observed the run...
	if tracer.Recorded() == 0 {
		t.Fatal("enabled tracer recorded no spans")
	}
	seen := map[obs.Phase]bool{}
	for _, s := range tracer.Snapshot() {
		seen[s.Phase] = true
	}
	for _, want := range []obs.Phase{obs.PhaseCompute, obs.PhaseBarrier, obs.PhaseQuantise, obs.PhaseTransfer} {
		if !seen[want] {
			t.Errorf("no %v span recorded; phases seen: %v", want, seen)
		}
	}
	var expo bytes.Buffer
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	text := expo.String()
	for _, m := range []string{"lpsgd_steps_total", "lpsgd_wire_tx_bytes_total", "lpsgd_world_size", "lpsgd_phase_ns_bucket"} {
		if !strings.Contains(text, m) {
			t.Errorf("metric %s missing from exposition", m)
		}
	}
	if tr.WireBytes() == 0 {
		t.Error("WireBytes accessor reports zero after a quantised run")
	}

	// ...and still not have perturbed the trajectory by one bit.
	if !bytes.Equal(baseline, enabled) {
		t.Fatal("enabled tracer+registry perturbed the training trajectory: checkpoints differ from baseline")
	}
}

// TestObsTCPByteParity pins byte-level inertness over real sockets:
// tracing a TCP run changes neither the payload volume the fabric
// accounts nor the result. Span bytes are observations, not traffic.
func TestObsTCPByteParity(t *testing.T) {
	plainCkpt, plainTr, _ := obsRun(t, nil, nil, true)
	tracer := obs.NewTracer(4096)
	tracedCkpt, tracedTr, _ := obsRun(t, tracer, obs.NewRegistry(), true)

	if plainTr.WireBytes() != tracedTr.WireBytes() {
		t.Fatalf("tracer changed the wire volume: %d bytes untraced vs %d traced",
			plainTr.WireBytes(), tracedTr.WireBytes())
	}
	if !bytes.Equal(plainCkpt, tracedCkpt) {
		t.Fatal("tracer perturbed the TCP training trajectory")
	}
	// Per-peer tx sums are the same counters the totals are derived
	// from; cross-check one rank's ledger against the aggregate.
	var sum int64
	for p := 0; p < 4; p++ {
		sum += tracedTr.peerTraffic(p).TxBytes
	}
	if sum != tracedTr.WireBytes() {
		t.Fatalf("per-peer tx sum %d != WireBytes %d", sum, tracedTr.WireBytes())
	}
}

// TestStepStatsRaceHammer reads every metric-facing accessor from
// concurrent goroutines for the whole duration of a training run.
// Under -race this proves StepStats snapshots, the wire/control byte
// accessors and the phi probes are safe against the step loop and the
// elastic fabric swap by construction.
func TestStepStatsRaceHammer(t *testing.T) {
	train, test := blobData(t)
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 64, Epochs: 2,
		Schedule: nn.ConstantLR(0.08), Momentum: 0.9, Seed: 5,
		Tracer: obs.NewTracer(1024), Metrics: obs.NewRegistry(),
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink int64 // goroutine-local; keeps the reads from being optimised out
			for {
				select {
				case <-done:
					_ = sink
					return
				default:
				}
				st := tr.StepStats()
				for _, d := range st.Compute {
					sink += int64(d)
				}
				sink += tr.WireBytes() + tr.ControlBytes() + int64(st.Slowest)
				sink += tr.peerTraffic(0).TxBytes + tr.monitorPhi(1)
			}
		}()
	}
	if _, err := tr.Run(train, test); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()

	st := tr.StepStats()
	if st.Slowest < 0 || len(st.Compute) != 4 {
		t.Fatalf("final StepStats incomplete: %+v", st)
	}
	// The snapshot is immutable: mutating a returned slice must not
	// leak into the next reader's copy.
	st.Compute[0] = -1
	if tr.StepStats().Compute[0] == -1 {
		t.Fatal("StepStats returned a shared slice — snapshot is not defensive")
	}
}

// benchData mirrors blobData for benchmarks (no *testing.T at hand).
func benchData() *data.Dataset {
	train, _ := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 1, H: 6, W: 6,
		TrainN: 512, TestN: 256, Noise: 0.7, Seed: 99,
	})
	return train
}

// benchStepTrainer builds a 4-worker quantised trainer over fixed data
// for per-step benchmarking.
func benchStepTrainer(b *testing.B, tracer *obs.Tracer, metrics *obs.Registry) (*Trainer, []int, *data.Dataset) {
	b.Helper()
	train := benchData()
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 64, Epochs: 1,
		Schedule: nn.ConstantLR(0.08), Momentum: 0.9, Seed: 5,
		Tracer: tracer, Metrics: metrics,
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]int, cfg.BatchSize)
	for i := range batch {
		batch[i] = i % train.Len()
	}
	return tr, batch, train
}

// BenchmarkStepUntraced and BenchmarkStepTraced bound the acceptance
// criterion that full tracing (ring tracer + metrics registry +
// phase-histogram bridge) costs at most ~2% of step time. Compare:
//
//	go test ./parallel -bench 'BenchmarkStep(Traced|Untraced)' -benchtime 1000x
func BenchmarkStepUntraced(b *testing.B) {
	tr, batch, train := benchStepTrainer(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.runStep(train, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepTraced(b *testing.B) {
	tracer := obs.NewTracer(4096)
	reg := obs.NewRegistry()
	tr, batch, train := benchStepTrainer(b, tracer, reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.runStep(train, batch); err != nil {
			b.Fatal(err)
		}
	}
}
