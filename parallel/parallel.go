// Package parallel implements the paper's Algorithm 1: synchronous
// data-parallel SGD across K workers (simulated GPUs), each holding a
// full model replica, computing gradients over its shard of the global
// minibatch, and exchanging them through a communication primitive
// under a precision policy (Config.Policy — per-tensor codecs via
// quant.NewPlan; the deprecated Codec/MinQuantisedFraction pair is a
// shim compiled into one).
//
// Workers are real goroutines moving real encoded bytes through
// repro/comm; replicas stay bit-identical because every worker adopts
// the same aggregated wire bytes. This is the engine behind the
// reproduction's accuracy experiments (paper Figure 5).
//
// In cluster mode (Config.Fabric/Rank) the trainer is one rank of a
// multi-process world and cooperates with the health plane
// (Config.Monitor, repro/health): a peer-death verdict aborts the
// fabric and surfaces from Run as health.ErrPeerDead, Config.
// StepDeadline bounds a wedged step with ErrStepDeadline, and
// StepStats attributes each synchronous barrier to its slowest rank
// from timings the heartbeats carry.
package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/comm"
	"repro/data"
	"repro/elastic"
	"repro/health"
	"repro/nn"
	"repro/obs"
	"repro/quant"
	"repro/rng"
)

// Primitive selects the aggregation algorithm.
type Primitive int

const (
	// MPI is the reduce-and-broadcast pattern; it carries quantised
	// payloads natively (§2.4.1).
	MPI Primitive = iota
	// NCCL is the ring allreduce; its sum is hardwired to full precision,
	// so quantised configurations run the paper's byte-volume simulation
	// (§4.4) while reducing exactly.
	NCCL
)

// String names the primitive as the paper does.
func (p Primitive) String() string {
	if p == NCCL {
		return "NCCL"
	}
	return "MPI"
}

// Config describes a data-parallel training run.
type Config struct {
	// Workers is K, the number of simulated GPUs.
	Workers int
	// Policy is the precision policy: base codec, small-matrix
	// exemption target and per-tensor pattern rules (see quant.Policy
	// and quant.ParsePolicy). Nil falls back to the deprecated
	// Codec/MinQuantisedFraction pair, and to full precision when those
	// are unset too.
	Policy *quant.Policy
	// Codec is the gradient codec (nil or quant.FP32{} for full
	// precision).
	//
	// Deprecated: set Policy. When Policy is nil this field is compiled
	// into one (together with MinQuantisedFraction); when Policy is set
	// it is ignored.
	Codec quant.Codec
	// Primitive selects MPI reduce-and-broadcast or NCCL ring.
	Primitive Primitive
	// MinQuantisedFraction is the small-matrix exemption target
	// (defaults to the paper's 0.99).
	//
	// Deprecated: set Policy.MinFrac. Ignored when Policy is set.
	MinQuantisedFraction float64
	// BatchSize is the global minibatch size, sharded over workers.
	BatchSize int
	// Epochs is the number of passes over the training set.
	Epochs int
	// Schedule supplies the learning rate per epoch.
	Schedule nn.Schedule
	// Momentum is the SGD momentum (the paper's default is 0.9).
	Momentum float32
	// WeightDecay is the L2 regularisation coefficient (0 disables it).
	WeightDecay float32
	// UseTCP moves gradients over real loopback TCP sockets instead of
	// in-process channels — same aggregation algorithms, real kernel
	// boundary (see comm.TCPFabric). Ignored when Fabric is set.
	UseTCP bool
	// Fabric supplies an externally established transport — typically
	// the mesh a cluster rendezvous built (repro/cluster). When set,
	// the trainer runs as the single rank Rank of a Workers-sized
	// world: it holds one local replica, drives one worker goroutine,
	// and exchanges gradients with the other ranks' processes over the
	// mesh. Fabric.K() must equal Workers. The trainer takes ownership
	// and closes the fabric on Close.
	Fabric comm.Transport
	// Rank is this process's rank in [0, Workers) when Fabric is set;
	// ignored otherwise.
	Rank int
	// Monitor attaches the cluster's health plane (see repro/health and
	// cluster.Session.Monitor). The trainer reports its per-step
	// timings to it (straggler telemetry piggybacks on heartbeats),
	// folds the peers' reports into StepStats, watches for a death
	// verdict between and during steps, and closes the monitor — whose
	// parting bye distinguishes this rank's clean shutdown from a death
	// — in Close. Nil outside cluster mode.
	Monitor *health.Monitor
	// HealthHandler is invoked with the death verdict whenever the
	// attached health plane declares a peer dead — once per verdict,
	// which in an elastic session can mean once per repaired death.
	// The trainer registers it on Monitor at construction and again on
	// every replacement monitor a rejoin round installs, so the
	// callback keeps firing across repairs (registering directly on
	// the original monitor would go dark after the first one).
	HealthHandler func(error)
	// Elastic attaches the session's rejoin controller (typically the
	// cluster.Session itself — see repro/elastic). When set, a
	// health-plane death verdict becomes a recoverable event: instead
	// of surfacing health.ErrPeerDead, the trainer quiesces at the step
	// barrier its abort unwound to, asks the controller to repair the
	// world (re-rendezvous, replacement admission, state transfer),
	// swaps in the rebuilt fabric and monitor, and resumes training at
	// the agreed step. Only meaningful in cluster mode (Fabric set);
	// nil keeps PR 4's fatal-abort behaviour.
	Elastic elastic.Rejoiner
	// MaxRejoins caps how many rejoin rounds this trainer tolerates
	// before a further death verdict is surfaced (0 means
	// elastic.DefaultMaxRejoins; negative means unlimited).
	MaxRejoins int
	// StepDeadline bounds the wall time of one synchronous step
	// (compute + exchange); 0 disables it. On expiry the trainer aborts
	// the fabric and Run returns an ErrStepDeadline — the straggler
	// guard rail for a peer that is alive enough to heartbeat but too
	// slow (or wedged) to ever finish its exchange. Effective on
	// closable fabrics (TCP, cluster mesh); the in-process channel
	// fabric cannot interrupt a blocked exchange.
	StepDeadline time.Duration
	// ClipNorm bounds the global gradient L2 norm after aggregation
	// (0 disables clipping). CNTK's recurrent recipes clip gradients;
	// clipping after the exchange keeps replicas bit-identical.
	ClipNorm float32
	// Seed fixes all randomness (init, shuffling, stochastic rounding).
	Seed uint64
	// EvalEvery evaluates test accuracy every this many epochs
	// (default 1).
	EvalEvery int
	// Tracer, when set, receives step-phase spans: a compute and a
	// barrier span per local rank per step from the trainer itself, plus
	// the quantise/encode/transfer/decode fine structure from the
	// reducer (comm.Traceable). Nil disables tracing; the training
	// trajectory and wire traffic are bit-identical either way (pinned
	// by TestObsDisabledDigestParity).
	Tracer *obs.Tracer
	// Metrics, when set, registers the trainer's operational series:
	// cumulative wire and control bytes, per-peer link traffic, step
	// counters and phase histograms, health phi per peer. Nil disables
	// registration; all instruments are obs nil-safe.
	Metrics *obs.Registry
	// TelemetryEvery samples convergence telemetry every this many
	// completed steps (0 disables it): the step's mean loss, each
	// tensor's aggregated-gradient L2/inf norms, and the live
	// quantisation RMSE/compression of the negotiated codecs
	// (quant.MeasureError over a scratch copy of the gradients — the
	// training bits are untouched; digest and TCP byte parity with
	// telemetry on are pinned by test). Samples feed the registry's
	// lpsgd_telemetry_* gauges and, in cluster mode, ship to every peer
	// over the heartbeat control links (Monitor.ReportTelemetry, bytes
	// under ControlBytes) for cluster-wide aggregation by
	// cluster.TelemetryHub. Negative is rejected.
	TelemetryEvery int
	// TelemetryObserver, when set with a Monitor attached, receives
	// every telemetry snapshot the control plane sees — the local
	// rank's own and each peer's (cluster.TelemetryHub.Observe is the
	// intended consumer). The trainer registers it on the monitor at
	// construction and again on every replacement monitor a rejoin
	// round installs, the same liveness contract as HealthHandler.
	TelemetryObserver func(peer int, s health.TelemetrySnapshot)
}

func (c *Config) fillDefaults() error {
	if c.Workers <= 0 {
		return fmt.Errorf("parallel: Workers must be positive, got %d", c.Workers)
	}
	if c.BatchSize < c.Workers {
		return fmt.Errorf("parallel: batch %d smaller than %d workers", c.BatchSize, c.Workers)
	}
	if c.Epochs <= 0 {
		return fmt.Errorf("parallel: Epochs must be positive")
	}
	if c.Codec == nil {
		c.Codec = quant.FP32{}
	}
	if c.MinQuantisedFraction == 0 {
		c.MinQuantisedFraction = quant.DefaultMinFrac
	}
	// The deprecated pair compiles into a Policy; an explicit Policy
	// supersedes both. The mirror fields are kept coherent either way,
	// so code reading History.Config keeps seeing the effective values.
	// Defaults are filled into a copy, never through the caller's
	// pointer: the same policy value may configure several trainers.
	if c.Policy == nil {
		c.Policy = &quant.Policy{Base: c.Codec, MinFrac: c.MinQuantisedFraction}
	} else {
		p := *c.Policy
		if p.Base == nil {
			p.Base = quant.FP32{}
		}
		if p.MinFrac <= 0 {
			p.MinFrac = quant.DefaultMinFrac
		}
		c.Policy = &p
		c.Codec = p.Base
		c.MinQuantisedFraction = p.MinFrac
	}
	// No Name() round-trip validation here: the engine happily trains
	// custom codecs whose names the quant grammar cannot spell (they
	// only break where names cross a wire — the lpsgd facade and the
	// cluster rendezvous validate at those boundaries).
	if c.Schedule == nil {
		c.Schedule = nn.ConstantLR(0.1)
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.TelemetryEvery < 0 {
		return fmt.Errorf("parallel: TelemetryEvery must be non-negative, got %d", c.TelemetryEvery)
	}
	return nil
}

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch        int
	TrainLoss    float64
	TestAccuracy float64 // top-1; negative when not evaluated this epoch
	TestTop5     float64 // top-5; negative when not evaluated this epoch
	LR           float32
	WireBytes    int64 // cumulative fabric bytes at epoch end
	Elapsed      time.Duration
	// SlowestRank is the rank most often attributed as the epoch's
	// straggler — the peer gating the synchronous barrier (-1 when no
	// attribution was possible). In cluster mode the attribution folds
	// in the peers' step timings carried by the health plane's
	// heartbeats.
	SlowestRank int
}

// StepStats is the straggler report of one synchronous step: per-rank
// compute and exchange wall time, and which rank gated the barrier.
// The local process's ranks are measured directly; in cluster mode the
// other ranks' entries come from the step reports their heartbeats
// carried (one heartbeat interval stale at worst), with Known marking
// the ranks a timing exists for.
type StepStats struct {
	// Step counts completed synchronous steps, 1-based.
	Step int64
	// Compute[r] and Exchange[r] are rank r's forward+backward and
	// gradient-exchange wall times for its most recent reported step.
	Compute  []time.Duration
	Exchange []time.Duration
	// Known[r] reports whether rank r's timings are populated.
	Known []bool
	// Slowest is the known rank with the largest compute time, -1 when
	// nothing is known. Compute is the discriminating signal: the
	// exchange is a blocking collective, so a fast rank's exchange time
	// is mostly spent waiting for the straggler and every rank's
	// compute+exchange sum comes out nearly equal. Attributing by
	// compute names the rank that arrived at the barrier last — the
	// same rank the discrete-event simulator (repro/sim) charges with
	// gating the step.
	Slowest int
}

// ErrStepDeadline is returned by Run when one synchronous step exceeds
// Config.StepDeadline: some participant — possibly this one — was too
// slow for the configured bound, and the fabric was aborted so every
// local exchange unblocked.
type ErrStepDeadline struct {
	// Rank is the local rank that observed the expiry.
	Rank int
	// Step is the 1-based index of the step that timed out.
	Step int64
	// Deadline is the configured bound.
	Deadline time.Duration
}

// Error implements error.
func (e ErrStepDeadline) Error() string {
	return fmt.Sprintf("parallel: rank %d: step %d exceeded the %v step deadline",
		e.Rank, e.Step, e.Deadline)
}

// History is the full record of a run.
type History struct {
	Config Config
	Epochs []EpochStats
	// FinalAccuracy is the last measured test accuracy.
	FinalAccuracy float64
	// BestAccuracy is the highest test accuracy seen.
	BestAccuracy float64
	// TotalWireBytes is the fabric traffic of the whole run.
	TotalWireBytes int64
}

// EpochsToReach returns the first epoch (1-based) whose test accuracy
// meets target, or -1 if never reached — the paper's convergence-speed
// metric.
func (h *History) EpochsToReach(target float64) int {
	for _, e := range h.Epochs {
		if e.TestAccuracy >= target {
			return e.Epoch + 1
		}
	}
	return -1
}

// Trainer runs synchronous data-parallel SGD. In the default
// single-process mode it owns all K replicas and drives them from K
// goroutines; with Config.Fabric set it is one rank of a multi-process
// world and owns only the local replica — the remaining ranks live in
// other OS processes reachable over the mesh.
type Trainer struct {
	cfg Config
	// ranks lists the global ranks this process drives; replicas[i],
	// opts[i] and losses[i] belong to ranks[i].
	ranks    []int
	replicas []*nn.Network
	opts     []*nn.SGD
	losses   []*nn.SoftmaxCrossEntropy
	fabric   comm.Transport
	reducer  comm.Reducer
	plan     *quant.Plan
	specs    []comm.TensorSpec
	monitor  *health.Monitor

	// stepIdx counts completed synchronous steps; statsMu guards it,
	// the elastic cursor, and the fabric/monitor identities (which a
	// rejoin round swaps while metric scrapes read them).
	stepIdx int64
	statsMu sync.Mutex
	// lastStats is the latest straggler report, published as an
	// immutable snapshot: recordStep builds a fresh StepStats each step
	// and stores the pointer, so StepStats() readers are race-clean by
	// construction — no lock, no torn reads, nothing shared mutable.
	lastStats atomic.Pointer[StepStats]

	// tracer/metrics are the observability plane (both may be nil).
	tracer       *obs.Tracer
	metrics      *obs.Registry
	computeHist  *obs.Histogram
	exchangeHist *obs.Histogram
	beatHist     *obs.Histogram
	// Convergence-telemetry instruments, registered when
	// Config.TelemetryEvery > 0 (see captureTelemetry). teleScratch is
	// the reusable gradient copy quant.MeasureError probes so the
	// codecs never see — let alone touch — live training state.
	lossGauge   *obs.Gauge
	teleStepG   *obs.Gauge
	gradL2G     []*obs.Gauge
	gradInfG    []*obs.Gauge
	rmseG       []*obs.Gauge
	compG       []*obs.Gauge
	teleScratch []float32

	// Elastic cursor (guarded by statsMu): where in the data schedule
	// the last completed step happened. curEpoch is the running epoch,
	// lastBatch the index of the last completed batch within it (-1
	// before the first), epochShuffleState the shuffle RNG's state at
	// the epoch's start — together they pin the exact resume position a
	// snapshot carries.
	curEpoch          int
	lastBatch         int
	epochShuffleState uint64
	// restored is a pending resume cursor: a snapshot installed by
	// Restore (a replacement before Run) or by a rejoin round (a
	// survivor catching up), consumed by the training loop.
	restored *elastic.Snapshot
	// rejoins counts completed rejoin rounds against Config.MaxRejoins;
	// wireBase accumulates the traffic of fabrics retired by those
	// rounds so byte accounting stays cumulative across repairs.
	rejoins  int
	wireBase int64
}

// totalWireBytes returns the bytes this process's ranks have sent over
// every fabric incarnation of the run. statsMu covers the fabric swap
// a rejoin performs, so a concurrent metrics scrape never reads a
// half-retired incarnation.
func (t *Trainer) totalWireBytes() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.wireBase + t.fabric.TotalBytes()
}

// WireBytes returns the cumulative data-mesh payload bytes this
// process's ranks have sent — the number EpochStats.WireBytes records
// and the lpsgd_wire_tx_bytes_total metric exports, from one counter.
func (t *Trainer) WireBytes() int64 { return t.totalWireBytes() }

// ControlBytes returns the cumulative health-plane bytes this rank has
// written (0 outside cluster mode) — the lpsgd_control_bytes_total
// metric, kept beside WireBytes so the two wire namespaces are read
// through one surface and can never disagree with /metrics.
func (t *Trainer) ControlBytes() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if t.monitor == nil {
		return 0
	}
	return t.monitor.ControlBytes()
}

// peerTraffic reads the per-peer link accounting of the current fabric
// incarnation (zero when the fabric does not expose it).
func (t *Trainer) peerTraffic(p int) comm.PeerTraffic {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if pa, ok := t.fabric.(comm.PeerAccounter); ok {
		return pa.PeerTraffic(p)
	}
	return comm.PeerTraffic{}
}

// monitorPhi samples the health plane's suspicion level for a peer in
// milli-phi (0 when no monitor is attached).
func (t *Trainer) monitorPhi(p int) int64 {
	t.statsMu.Lock()
	m := t.monitor
	t.statsMu.Unlock()
	if m == nil {
		return 0
	}
	return int64(m.Phi(p) * 1000)
}

// NewTrainer builds the local replicas with identical initial weights
// using build, which must be deterministic in its RNG argument. In
// single-process mode that is all K replicas; in cluster mode
// (cfg.Fabric set) it is the one replica of cfg.Rank, bit-identical to
// every other rank's because each process seeds build with the same
// cfg.Seed.
func NewTrainer(build func(r *rng.RNG) *nn.Network, cfg Config) (*Trainer, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	t := &Trainer{cfg: cfg, monitor: cfg.Monitor, tracer: cfg.Tracer, metrics: cfg.Metrics}
	if cfg.Fabric != nil {
		if k := cfg.Fabric.K(); k != cfg.Workers {
			return nil, fmt.Errorf("parallel: fabric spans %d ranks, config wants %d workers", k, cfg.Workers)
		}
		if cfg.Rank < 0 || cfg.Rank >= cfg.Workers {
			return nil, fmt.Errorf("parallel: rank %d outside world of %d", cfg.Rank, cfg.Workers)
		}
		t.ranks = []int{cfg.Rank}
	} else {
		for w := 0; w < cfg.Workers; w++ {
			t.ranks = append(t.ranks, w)
		}
	}
	for range t.ranks {
		// Same init seed for every replica: weights start identical —
		// across goroutines here and across OS processes in cluster
		// mode. (Per-worker stochastic behaviour such as dropout uses
		// layer RNGs forked from this same stream; masks may coincide
		// across replicas, which only makes shards more, not less,
		// comparable.)
		net := build(rng.New(cfg.Seed))
		t.replicas = append(t.replicas, net)
		opt := nn.NewSGD(net.Params(), cfg.Schedule.LRAt(0), cfg.Momentum)
		opt.SetWeightDecay(cfg.WeightDecay)
		t.opts = append(t.opts, opt)
		t.losses = append(t.losses, nn.NewSoftmaxCrossEntropy())
	}
	infos := t.replicas[0].TensorInfos()
	t.plan = quant.NewPlan(cfg.Policy, infos)
	switch {
	case cfg.Fabric != nil:
		t.fabric = cfg.Fabric
	case cfg.UseTCP:
		tcp, err := comm.NewTCPFabric(cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("parallel: tcp fabric: %w", err)
		}
		t.fabric = tcp
	default:
		t.fabric = comm.NewFabric(cfg.Workers)
	}
	params := t.replicas[0].Params()
	for i, p := range params {
		c := t.plan.CodecFor(i)
		t.specs = append(t.specs, comm.TensorSpec{
			Name:  p.Name,
			N:     p.Grad.Len(),
			Wire:  p.WireShape,
			Codec: c,
		})
	}
	if err := t.buildReducer(); err != nil {
		t.Close()
		return nil, err
	}
	if cfg.Elastic != nil && cfg.Fabric == nil {
		t.Close()
		return nil, fmt.Errorf("parallel: elastic sessions need cluster mode (Config.Fabric); a single-process trainer has no rank to lose")
	}
	if cfg.HealthHandler != nil && t.monitor != nil {
		t.monitor.OnVerdict(cfg.HealthHandler)
	}
	t.registerMetrics()
	t.wireMonitorObs()
	t.lastBatch = -1
	return t, nil
}

// registerMetrics declares the trainer's series on Config.Metrics. A
// nil registry makes every call a no-op (nil-safe handles), so the
// method runs unconditionally. Callback-backed series read through the
// trainer's guarded accessors, which keeps them correct across the
// fabric and monitor swaps of elastic rejoin rounds without any
// re-registration.
func (t *Trainer) registerMetrics() {
	m := t.metrics
	m.Func("lpsgd_wire_tx_bytes_total",
		"Cumulative data-mesh payload bytes sent by this process's ranks (all fabric incarnations).",
		t.WireBytes)
	m.Func("lpsgd_control_bytes_total",
		"Cumulative health-plane control bytes written by this rank.",
		t.ControlBytes)
	m.Func("lpsgd_steps_total", "Completed synchronous steps.", t.currentStep)
	m.Gauge("lpsgd_world_size", "Configured world size K.").Set(int64(t.cfg.Workers))
	m.Gauge("lpsgd_rank", "Lowest rank this process drives.").Set(int64(t.ranks[0]))
	m.Gauge("lpsgd_policy_wire_bytes",
		"Encoded bytes one local gradient set occupies under the policy.").Set(t.plan.WireBytes())
	m.Gauge("lpsgd_policy_raw_bytes",
		"Raw fp32 bytes of one local gradient set (wire/raw is the achieved compression ratio).").Set(t.plan.RawBytes())
	// Step-time histograms: 1µs..~4s exponential nanosecond buckets.
	buckets := obs.ExpBuckets(1000, 4, 12)
	t.computeHist = m.Histogram("lpsgd_step_compute_ns",
		"Per-step forward+backward wall time of the local ranks.", buckets)
	t.exchangeHist = m.Histogram("lpsgd_step_exchange_ns",
		"Per-step gradient-exchange wall time of the local ranks.", buckets)
	// Per-peer link traffic and suspicion, cluster mode only (the
	// in-process fabrics have no peer links worth splitting).
	if t.cfg.Fabric != nil {
		for p := 0; p < t.cfg.Workers; p++ {
			if p == t.ranks[0] {
				continue
			}
			p := p
			lbl := obs.Label{Key: "peer", Value: strconv.Itoa(p)}
			m.Func("lpsgd_peer_tx_bytes_total", "Payload bytes sent to the peer.",
				func() int64 { return t.peerTraffic(p).TxBytes }, lbl)
			m.Func("lpsgd_peer_rx_bytes_total", "Payload bytes received from the peer.",
				func() int64 { return t.peerTraffic(p).RxBytes }, lbl)
			m.Func("lpsgd_peer_tx_frames_total", "Frames sent to the peer.",
				func() int64 { return t.peerTraffic(p).TxFrames }, lbl)
			m.Func("lpsgd_peer_rx_frames_total", "Frames received from the peer.",
				func() int64 { return t.peerTraffic(p).RxFrames }, lbl)
			m.Func("lpsgd_health_phi_milli", "Failure-detector suspicion level for the peer, x1000.",
				func() int64 { return t.monitorPhi(p) }, lbl)
		}
	}
	// Bridge the tracer's spans into per-phase /metrics histograms.
	if t.tracer != nil && t.metrics != nil {
		t.tracer.SetPhaseHistograms(obs.AttachHistograms(m, "lpsgd_phase_ns",
			"Traced span durations by step phase.", buckets))
	}
	t.beatHist = m.Histogram("lpsgd_heartbeat_gap_ns",
		"Gap between consecutive heartbeats from any peer.",
		obs.ExpBuckets(1_000_000, 2, 14))
	// Convergence-telemetry gauges, sampled every TelemetryEvery steps.
	// The registry is int64-only by design, so the floats are published
	// fixed-point (the wire snapshot keeps full float64 precision).
	if t.cfg.TelemetryEvery > 0 {
		t.teleStepG = m.Gauge("lpsgd_telemetry_step",
			"Step index of the latest convergence-telemetry sample.")
		t.lossGauge = m.Gauge("lpsgd_telemetry_loss_micro",
			"Sampled mean minibatch loss of the local ranks, x1e6.")
		for _, spec := range t.specs {
			lbl := obs.Label{Key: "tensor", Value: spec.Name}
			t.gradL2G = append(t.gradL2G, m.Gauge("lpsgd_telemetry_grad_l2_micro",
				"Sampled aggregated-gradient L2 norm, x1e6.", lbl))
			t.gradInfG = append(t.gradInfG, m.Gauge("lpsgd_telemetry_grad_inf_micro",
				"Sampled aggregated-gradient max-absolute value, x1e6.", lbl))
			t.rmseG = append(t.rmseG, m.Gauge("lpsgd_telemetry_quant_rmse_nano",
				"Live-measured quantisation RMSE against the negotiated codec, x1e9.", lbl))
			t.compG = append(t.compG, m.Gauge("lpsgd_telemetry_compression_milli",
				"Achieved raw/wire compression ratio of the tensor's codec, x1000.", lbl))
		}
	}
}

// wireMonitorObs attaches the observability hooks to the current
// monitor. Called at construction and again after every rejoin round
// (replacement monitors start bare).
func (t *Trainer) wireMonitorObs() {
	if t.monitor == nil {
		return
	}
	if t.metrics != nil {
		h := t.beatHist
		t.monitor.OnHeartbeat(func(_ int, gap time.Duration) { h.Observe(int64(gap)) })
	}
	if t.tracer != nil {
		tr := t.tracer
		rank := t.ranks[0]
		t.monitor.OnVerdict(func(error) {
			now := tr.Now()
			tr.Record(rank, obs.PhaseControl, "verdict", -1, 0, now, 0)
		})
	}
	if t.cfg.TelemetryObserver != nil {
		t.monitor.OnTelemetry(t.cfg.TelemetryObserver)
	}
}

// buildReducer (re)builds the aggregation primitive over the current
// fabric — at construction, and again after a rejoin round replaced
// the mesh. Encoder state starts fresh either way: stochastic streams
// are step-keyed (comm.StepKeyed), and error-feedback residuals reset
// to zero on every rank in lockstep.
func (t *Trainer) buildReducer() error {
	cfg := t.cfg
	switch cfg.Primitive {
	case MPI:
		t.reducer = comm.NewReduceBroadcastLocal(t.fabric, t.specs, cfg.Seed, t.ranks)
	case NCCL:
		if t.plan.FullPrecision() || cfg.Workers == 1 {
			t.reducer = comm.NewRing(t.fabric)
		} else {
			frac := float64(t.plan.WireBytes()) / float64(t.plan.RawBytes())
			if frac > 1 {
				return fmt.Errorf("parallel: policy %s expands this model's wire volume (%.2fx raw); the NCCL byte-volume simulation needs a compressing policy — use the MPI primitive instead", cfg.Policy.Name(), frac)
			}
			t.reducer = comm.NewSimulatedRing(t.fabric, frac)
		}
	default:
		return fmt.Errorf("parallel: unknown primitive %d", cfg.Primitive)
	}
	if tb, ok := t.reducer.(comm.Traceable); ok {
		tb.SetTracer(t.tracer)
	}
	return nil
}

// Close releases the fabric's resources (socket connections for the
// TCP transport; a no-op for the in-process fabric). In cluster mode
// the health monitor closes first: its parting bye tells every peer
// this rank is departing cleanly, so the sockets vanishing moments
// later is not mistaken for a death. A closed trainer must not Run
// again.
func (t *Trainer) Close() error {
	if t.monitor != nil {
		t.monitor.Close()
	}
	if c, ok := t.fabric.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// abortFabric interrupts every blocked exchange with err. RemoteFabric
// delivers the typed error; other closable fabrics fall back to
// ErrClosed semantics; the in-process channel fabric has no interrupt
// path (its exchanges cannot wedge without a local bug).
func (t *Trainer) abortFabric(err error) bool {
	switch f := t.fabric.(type) {
	case interface{ Abort(error) }:
		f.Abort(err)
		return true
	case io.Closer:
		f.Close()
		return true
	}
	return false
}

// StepStats returns the straggler report of the most recent completed
// (or timing-out) synchronous step. Before the first step it is zero
// with Slowest == -1. The returned snapshot is immutable once
// published — recordStep builds a fresh value per step and swaps an
// atomic pointer — so concurrent callers during Run are race-free by
// construction; the slices are defensively copied only because the
// returned struct is mutable in the caller's hands.
func (t *Trainer) StepStats() StepStats {
	p := t.lastStats.Load()
	if p == nil {
		return StepStats{Slowest: -1}
	}
	s := *p
	s.Compute = append([]time.Duration(nil), s.Compute...)
	s.Exchange = append([]time.Duration(nil), s.Exchange...)
	s.Known = append([]bool(nil), s.Known...)
	return s
}

// Plan exposes the per-tensor codec assignment (for reporting).
func (t *Trainer) Plan() *quant.Plan { return t.plan }

// Policy returns the precision policy the trainer runs under — the
// negotiated one in cluster mode, the configured (or compiled-from-
// deprecated-fields) one otherwise.
func (t *Trainer) Policy() *quant.Policy { return t.plan.Policy }

// Rank returns the lowest rank this process drives: the cluster rank
// in multi-process mode, 0 when the trainer owns the whole world.
func (t *Trainer) Rank() int { return t.ranks[0] }

// World returns the global worker count K, whether the ranks live in
// this process or across a cluster.
func (t *Trainer) World() int { return t.cfg.Workers }

// Reducer exposes the aggregation primitive (for reporting).
func (t *Trainer) Reducer() comm.Reducer { return t.reducer }

// Monitor exposes the attached health monitor (nil outside cluster
// mode) — for registering verdict handlers or reading raw peer
// telemetry; StepStats is the digested view.
func (t *Trainer) Monitor() *health.Monitor { return t.monitor }

// Model returns replica 0, the canonical model.
func (t *Trainer) Model() *nn.Network { return t.replicas[0] }

// SaveCheckpoint writes the canonical replica's weights in the
// nn.Network binary checkpoint format.
func (t *Trainer) SaveCheckpoint(w io.Writer) error {
	return t.replicas[0].Save(w)
}

// LoadCheckpoint restores weights into every replica, preserving the
// synchronous-SGD invariant that all replicas are bit-identical. In a
// cluster, every rank must load the same checkpoint bytes (warm-start:
// the -load flag of the CLIs). Weights only — optimiser momentum, the
// data cursor and step counters start fresh; for a resume that is
// bit-identical to an uninterrupted run, use SaveState/LoadState.
func (t *Trainer) LoadCheckpoint(r io.Reader) error {
	if err := t.replicas[0].Load(r); err != nil {
		return err
	}
	for w := 1; w < len(t.replicas); w++ {
		if err := t.replicas[w].CopyWeightsFrom(t.replicas[0]); err != nil {
			return err
		}
	}
	return nil
}

// makeSnapshot captures the full elastic session state at the current
// step barrier: weights, optimiser velocity, hyperparameters, the
// step counter and the data-shard cursor. It is the donor-side hook of
// a rejoin round and the writer behind SaveState. The trainer must be
// quiescent (between steps) when it runs.
func (t *Trainer) makeSnapshot() (*elastic.Snapshot, error) {
	snapStart := t.tracer.Now()
	t.statsMu.Lock()
	step, epoch, batch, shuf := t.stepIdx, t.curEpoch, t.lastBatch, t.epochShuffleState
	t.statsMu.Unlock()
	var params bytes.Buffer
	if err := t.replicas[0].Save(&params); err != nil {
		return nil, err
	}
	opt := t.opts[0]
	var vel [][]float32
	for _, v := range opt.Velocity() {
		vel = append(vel, append([]float32(nil), v.Data...))
	}
	snap := &elastic.Snapshot{
		Seed:         t.cfg.Seed,
		World:        t.cfg.Workers,
		Policy:       t.plan.Policy.Name(),
		Step:         step,
		Epoch:        epoch,
		Batch:        batch,
		ShuffleState: shuf,
		Momentum:     opt.Momentum(),
		WeightDecay:  opt.WeightDecay(),
		Params:       params.Bytes(),
		Velocity:     vel,
	}
	t.tracer.Record(t.ranks[0], obs.PhaseControl, "snapshot", -1, int64(len(snap.Params)), snapStart, t.tracer.Now()-snapStart)
	return snap, nil
}

// installSnapshot validates a snapshot against this trainer's
// configuration and installs it: weights into every replica, velocity
// into every optimiser, the step counter, and a pending resume cursor
// the training loop consumes. It is the catch-up hook of a rejoin
// round and the reader behind LoadState/Restore.
func (t *Trainer) installSnapshot(snap *elastic.Snapshot) error {
	restoreStart := t.tracer.Now()
	cfg := t.cfg
	if snap.Seed != cfg.Seed {
		return fmt.Errorf("parallel: snapshot from seed %d cannot resume a seed-%d run (the seed keys the data order and every stochastic stream)", snap.Seed, cfg.Seed)
	}
	if snap.World != cfg.Workers {
		return fmt.Errorf("parallel: snapshot of a %d-rank world, this trainer runs %d", snap.World, cfg.Workers)
	}
	if name := t.plan.Policy.Name(); snap.Policy != name {
		return fmt.Errorf("parallel: snapshot trained under policy %q, this trainer runs %q", snap.Policy, name)
	}
	if m := t.opts[0].Momentum(); snap.Momentum != m {
		return fmt.Errorf("parallel: snapshot momentum %v, this trainer runs %v", snap.Momentum, m)
	}
	if wd := t.opts[0].WeightDecay(); snap.WeightDecay != wd {
		return fmt.Errorf("parallel: snapshot weight decay %v, this trainer runs %v", snap.WeightDecay, wd)
	}
	if snap.Epoch < 0 || snap.Batch < -1 || snap.Step < 0 {
		return fmt.Errorf("parallel: snapshot cursor (epoch %d, batch %d, step %d) is invalid", snap.Epoch, snap.Batch, snap.Step)
	}
	// Weights first — the checkpoint decoder carries the full
	// name/shape validation, so a foreign snapshot fails here cleanly.
	if err := t.LoadCheckpoint(bytes.NewReader(snap.Params)); err != nil {
		return err
	}
	for _, opt := range t.opts {
		vel := opt.Velocity()
		if len(snap.Velocity) != len(vel) {
			return fmt.Errorf("parallel: snapshot carries %d velocity tensors, optimiser has %d", len(snap.Velocity), len(vel))
		}
		for i, v := range vel {
			if len(snap.Velocity[i]) != len(v.Data) {
				return fmt.Errorf("parallel: velocity tensor %d has %d elements, optimiser wants %d", i, len(snap.Velocity[i]), len(v.Data))
			}
			copy(v.Data, snap.Velocity[i])
		}
	}
	t.statsMu.Lock()
	t.stepIdx = snap.Step
	t.curEpoch = snap.Epoch
	t.lastBatch = snap.Batch
	t.epochShuffleState = snap.ShuffleState
	t.statsMu.Unlock()
	t.restored = snap
	t.tracer.Record(t.ranks[0], obs.PhaseControl, "restore", -1, int64(len(snap.Params)), restoreStart, t.tracer.Now()-restoreStart)
	return nil
}

// Restore installs an elastic snapshot received out of band — the
// replacement path: cluster.Rejoin hands the snapshot the donor
// streamed, Restore installs it, and the next Run resumes at its
// cursor instead of epoch 0.
func (t *Trainer) Restore(snap *elastic.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("parallel: nil snapshot")
	}
	return t.installSnapshot(snap)
}

// SaveState writes the trainer's full elastic session state — weights,
// optimiser velocity, counters and data cursor, in the repro/elastic
// snapshot format. Unlike SaveCheckpoint (weights only), a run resumed
// from this state via LoadState continues bit-identically to one that
// never stopped. Call it between Run calls or after Run returns, not
// mid-step.
func (t *Trainer) SaveState(w io.Writer) error {
	snap, err := t.makeSnapshot()
	if err != nil {
		return err
	}
	return snap.EncodeTo(w)
}

// LoadState restores state written by SaveState; the next Run resumes
// at the saved cursor. In a cluster, every rank must load the same
// state bytes.
func (t *Trainer) LoadState(r io.Reader) error {
	snap, err := elastic.ReadSnapshot(r)
	if err != nil {
		return err
	}
	return t.installSnapshot(snap)
}

// Run trains on train for the configured epochs, measuring accuracy on
// test, and returns the history.
//
// With an elastic controller attached (Config.Elastic), a peer-death
// verdict mid-run is repaired instead of surfaced: the loop quiesces
// at the step barrier its abort unwound to, the controller rebuilds
// the world, and training continues — re-running the interrupted step
// in place, or jumping to a donor's cursor when this rank had to catch
// up. A trainer that had a snapshot installed before Run (Restore /
// LoadState) starts at the snapshot's cursor instead of epoch 0; its
// History then records the resumed portion only, and WireBytes counts
// traffic of the current mesh incarnation.
func (t *Trainer) Run(train, test *data.Dataset) (*History, error) {
	cfg := t.cfg
	h := &History{Config: cfg}
	shuffle := rng.New(cfg.Seed).Fork(0xdead)
	epoch, startBatch := 0, 0
	if snap := t.takeRestored(); snap != nil {
		shuffle.SetState(snap.ShuffleState)
		epoch, startBatch = snap.Epoch, snap.Batch+1
	}
	for epoch < cfg.Epochs {
		start := time.Now()
		lr := cfg.Schedule.LRAt(epoch)
		for _, opt := range t.opts {
			opt.SetLR(lr)
		}
		// The cursor marks the epoch's start before the permutation is
		// drawn: restoring epochShuffleState and replaying Batches
		// reproduces the exact batch order lastBatch indexes into.
		t.statsMu.Lock()
		t.curEpoch = epoch
		t.lastBatch = startBatch - 1
		t.epochShuffleState = shuffle.State()
		t.statsMu.Unlock()
		batches := train.Batches(shuffle, cfg.BatchSize)
		var lossSum float64
		var lossCnt int
		slowCount := make([]int, cfg.Workers)
		jumped := false
		for bi := startBatch; bi < len(batches); bi++ {
			batch := batches[bi]
			if len(batch) < cfg.Workers {
				t.noteBatch(bi)
				continue // drop a tail smaller than the worker count
			}
			loss, err := t.runStep(train, batch)
			if err != nil {
				snap, rerr := t.tryRejoin(err)
				if rerr != nil {
					return nil, rerr
				}
				if snap != nil {
					// This rank was behind the resume point: adopt the
					// donor's cursor and re-enter the outer loop there.
					// The partial pass contributes no epoch stats.
					shuffle.SetState(snap.ShuffleState)
					epoch, startBatch = snap.Epoch, snap.Batch+1
					jumped = true
					break
				}
				// Already at the resume point: re-run the interrupted
				// step over the rebuilt mesh.
				bi--
				continue
			}
			t.noteBatch(bi)
			lossSum += loss
			lossCnt++
			if st := t.lastStats.Load(); st != nil && st.Slowest >= 0 {
				slowCount[st.Slowest]++
			}
		}
		if jumped {
			continue
		}
		startBatch = 0
		slowest := -1
		for r, n := range slowCount {
			if n > 0 && (slowest < 0 || n > slowCount[slowest]) {
				slowest = r
			}
		}
		stats := EpochStats{
			Epoch:        epoch,
			TrainLoss:    lossSum / float64(max(lossCnt, 1)),
			TestAccuracy: -1,
			TestTop5:     -1,
			LR:           lr,
			WireBytes:    t.totalWireBytes(),
			Elapsed:      time.Since(start),
			SlowestRank:  slowest,
		}
		if (epoch+1)%cfg.EvalEvery == 0 || epoch == cfg.Epochs-1 {
			accs := t.EvaluateKs(test, 1, 5)
			stats.TestAccuracy = accs[0]
			stats.TestTop5 = accs[1]
			h.FinalAccuracy = stats.TestAccuracy
			if stats.TestAccuracy > h.BestAccuracy {
				h.BestAccuracy = stats.TestAccuracy
			}
		}
		h.Epochs = append(h.Epochs, stats)
		epoch++
	}
	h.TotalWireBytes = t.totalWireBytes()
	return h, nil
}

// noteBatch advances the elastic cursor past a finished (or skipped)
// batch index of the running epoch.
func (t *Trainer) noteBatch(bi int) {
	t.statsMu.Lock()
	t.lastBatch = bi
	t.statsMu.Unlock()
}

// takeRestored consumes the pending resume cursor.
func (t *Trainer) takeRestored() *elastic.Snapshot {
	snap := t.restored
	t.restored = nil
	return snap
}

// maxRejoins resolves the trainer's rejoin budget: negative means
// unlimited.
func (t *Trainer) maxRejoins() int {
	if t.cfg.MaxRejoins != 0 {
		return t.cfg.MaxRejoins
	}
	return elastic.DefaultMaxRejoins
}

// tryRejoin decides what a step error means. Without an elastic
// controller — or for errors that are not a peer-death verdict, or
// once the rejoin budget is spent — the error is final and returned
// as-is (wrapped with the budget note where that is the cause). With
// one, the controller repairs the world; on success the trainer swaps
// in the rebuilt fabric and monitor, rebuilds the reducer over them,
// and reports how to resume: a non-nil snapshot moves the cursor (this
// rank caught up to the donor), nil re-runs the interrupted step in
// place. A failed repair surfaces the original verdict with the repair
// failure noted, still errors.As-matchable as health.ErrPeerDead so
// exit-code contracts hold.
func (t *Trainer) tryRejoin(stepErr error) (*elastic.Snapshot, error) {
	if t.cfg.Elastic == nil {
		return nil, stepErr
	}
	var dead health.ErrPeerDead
	if !errors.As(stepErr, &dead) {
		return nil, stepErr
	}
	if budget := t.maxRejoins(); budget >= 0 && t.rejoins >= budget {
		return nil, fmt.Errorf("parallel: rank %d exhausted its %d rejoin rounds: %w", t.ranks[0], budget, stepErr)
	}
	t.rejoins++
	out, err := t.cfg.Elastic.Rejoin(stepErr, elastic.LocalState{
		Step:     t.currentStep(),
		Snapshot: t.makeSnapshot,
		Install:  t.installSnapshot,
	})
	if err != nil {
		return nil, fmt.Errorf("parallel: rank %d could not rejoin (%v) after %w", t.ranks[0], err, stepErr)
	}
	// The replacement fabric's byte counter starts at zero; fold the
	// old incarnation's traffic into the base so EpochStats.WireBytes
	// stays cumulative across repairs (the old fabric is closed but
	// its counter remains readable). The swap happens under statsMu so
	// a concurrent metrics scrape reads either incarnation whole.
	t.statsMu.Lock()
	t.wireBase += t.fabric.TotalBytes()
	t.fabric = out.Fabric
	t.monitor = out.Monitor
	t.statsMu.Unlock()
	if t.cfg.HealthHandler != nil && t.monitor != nil {
		t.monitor.OnVerdict(t.cfg.HealthHandler)
	}
	t.wireMonitorObs()
	if t.tracer != nil {
		now := t.tracer.Now()
		t.tracer.Record(t.ranks[0], obs.PhaseControl, "rejoin", -1, 0, now, 0)
	}
	if err := t.buildReducer(); err != nil {
		return nil, err
	}
	return t.takeRestored(), nil
}

// runStep drives one synchronous step through the guard rails: a
// health-plane verdict fails fast (and interrupts a step in flight),
// and the optional step deadline bounds the wall time of compute plus
// exchange, aborting the fabric on expiry so the blocked workers
// unwind. With neither configured this is a direct call.
func (t *Trainer) runStep(train *data.Dataset, batch []int) (float64, error) {
	deadline := t.cfg.StepDeadline
	if deadline <= 0 && t.monitor == nil {
		return t.step(train, batch)
	}
	if t.monitor != nil {
		// A verdict reached between steps fails fast, before any local
		// worker blocks inside a voided exchange.
		if err := t.monitor.Verdict(); err != nil {
			return 0, err
		}
	}
	type result struct {
		loss float64
		err  error
	}
	done := make(chan result, 1)
	go func() {
		loss, err := t.step(train, batch)
		done <- result{loss, err}
	}()
	var expire <-chan time.Time
	if deadline > 0 {
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		expire = timer.C
	}
	var dead <-chan struct{}
	if t.monitor != nil {
		dead = t.monitor.Dead()
	}
	select {
	case r := <-done:
		if r.err != nil && t.monitor != nil && !errors.Is(r.err, comm.ErrClosed) {
			// A dying peer's data sockets EOF at the same instant as its
			// control links, so the raw transport error can beat the
			// failure detector by microseconds. With a health plane
			// attached the transport error is a symptom and the verdict
			// is the diagnosis: wait — bounded by the detector's hard
			// deadline, which covers even a half-open silent peer — for
			// the typed verdict every survivor must agree on, and fall
			// back to the raw error only if the plane stays convinced
			// the peers are alive (a genuine local transport fault).
			if v := t.awaitVerdict(); v != nil {
				return 0, v
			}
		}
		return r.loss, r.err
	case <-expire:
		err := ErrStepDeadline{Rank: t.ranks[0], Step: t.currentStep() + 1, Deadline: deadline}
		// Join the step unconditionally: on an abortable fabric the
		// teardown unwinds it promptly; on the in-process channel fabric
		// (which cannot be interrupted) the exchange is still making
		// progress and finishes on its own — returning without joining
		// would leave the goroutine mutating the replicas under the
		// caller's feet.
		t.abortFabric(err)
		<-done
		return 0, err
	case <-dead:
		err := t.monitor.Verdict()
		// The session wiring aborted the fabric in the verdict handler
		// before Dead() released; abortFabric is an idempotent backstop
		// for monitors attached outside a cluster session.
		t.abortFabric(err)
		<-done
		return 0, err
	}
}

// currentStep reads the completed-step counter under the stats lock
// (the step goroutine increments it in recordStep).
func (t *Trainer) currentStep() int64 {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stepIdx
}

// awaitVerdict waits up to the health plane's hard detection deadline
// for a death verdict, returning it, or nil if none arrives (the peers
// are provably alive and heartbeating).
func (t *Trainer) awaitVerdict() error {
	if v := t.monitor.Verdict(); v != nil {
		return v
	}
	grace := t.monitor.Config().Timeout
	select {
	case <-t.monitor.Dead():
		return t.monitor.Verdict()
	case <-time.After(grace):
		return nil
	}
}

// step performs one synchronous iteration over the given global batch.
// Sharding is by global rank, so every process of a cluster world
// computes gradients over a disjoint slice of the same deterministic
// batch; the loss it reports averages its local shards only.
func (t *Trainer) step(train *data.Dataset, batch []int) (float64, error) {
	k := t.cfg.Workers
	// Elastic sessions key the reducer's stochastic streams to the step
	// about to run — once, before any worker encodes. Every rank
	// derives the same index from its own completed-step counter, so
	// the streams agree across processes; re-entering an aborted step
	// re-keys to the same index, which is what lets a rejoin re-run it
	// bit-identically, and a replacement reconstruct a dead rank's
	// streams from the counters alone. Non-elastic runs keep the
	// paper's original cumulative streams, so enabling elasticity is
	// the one switch that changes (reproducibly) which random draws a
	// quantised run sees.
	if t.cfg.Elastic != nil {
		if sk, ok := t.reducer.(comm.StepKeyed); ok {
			sk.BeginStep(t.currentStep() + 1)
		}
	}
	// Publish the step index to the tracer so the reducer's spans carry
	// it without any per-message plumbing (nil-safe no-op when off).
	t.tracer.SetStep(t.currentStep() + 1)
	losses := make([]float64, len(t.ranks))
	errs := make([]error, len(t.ranks))
	compute := make([]time.Duration, len(t.ranks))
	exchange := make([]time.Duration, len(t.ranks))
	var wg sync.WaitGroup
	for li, w := range t.ranks {
		wg.Add(1)
		go func(li, w int) {
			defer wg.Done()
			c0 := t.tracer.Now()
			start := time.Now()
			shard := batch[w*len(batch)/k : (w+1)*len(batch)/k]
			x, labels := train.Gather(shard)
			net := t.replicas[li]
			net.ZeroGrads()
			loss := t.losses[li]
			losses[li] = loss.Forward(net.Forward(x, true), labels)
			net.Backward(loss.Backward(labels))
			compute[li] = time.Since(start)
			t.tracer.Record(w, obs.PhaseCompute, "step", -1, 0, c0, int64(compute[li]))
			// Exchange every tensor, then average over workers: the
			// paper's x ← x − (η/K)·Σ g̃. The barrier span covers the
			// whole blocking exchange; the reducer's fine spans break it
			// down, and the remainder is straggler wait.
			e0 := t.tracer.Now()
			exchStart := time.Now()
			invK := 1 / float32(k)
			for i, p := range net.Params() {
				if err := t.reducer.Reduce(w, i, p.Grad.Data); err != nil {
					errs[li] = err
					return
				}
				if k > 1 {
					p.Grad.Scale(invK)
				}
			}
			exchange[li] = time.Since(exchStart)
			t.tracer.Record(w, obs.PhaseBarrier, "exchange", -1, 0, e0, int64(exchange[li]))
			if t.cfg.ClipNorm > 0 {
				nn.ClipGradNorm(net.Params(), t.cfg.ClipNorm)
			}
			t.opts[li].Step()
		}(li, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	t.recordStep(compute, exchange)
	var sum float64
	for _, l := range losses {
		sum += l
	}
	mean := sum / float64(len(t.ranks))
	if every := t.cfg.TelemetryEvery; every > 0 {
		if step := t.currentStep(); step%int64(every) == 0 {
			t.captureTelemetry(step, mean, compute[0], exchange[0])
		}
	}
	return mean, nil
}

// captureTelemetry samples the convergence signals of the step that
// just completed: the mean local loss, each tensor's aggregated
// gradient norms, and the distortion the negotiated codec would
// introduce on exactly those gradients (quant.MeasureError with a
// step-keyed seed, so the sample is deterministic per step). It runs
// on the step driver after the worker goroutines joined — the
// aggregated gradients are stable until the next step's ZeroGrads —
// and probes the codecs over a scratch copy, so training state is
// bit-for-bit untouched and no byte reaches the data mesh; the
// snapshot travels the control plane only (ControlBytes).
func (t *Trainer) captureTelemetry(step int64, loss float64, compute, exchange time.Duration) {
	params := t.replicas[0].Params()
	tensors := make([]health.TensorTelemetry, 0, len(params))
	for i, p := range params {
		src := p.Grad.Data
		l2, inf := quant.GradNorms(src)
		if cap(t.teleScratch) < len(src) {
			t.teleScratch = make([]float32, len(src))
		}
		scratch := t.teleScratch[:len(src)]
		copy(scratch, src)
		seed := t.cfg.Seed ^ uint64(step)*0x9E3779B97F4A7C15 ^ uint64(i)<<32
		es := quant.MeasureError(t.plan.CodecFor(i), scratch, t.specs[i].Wire, 1, seed)
		tensors = append(tensors, health.TensorTelemetry{
			Name: p.Name, GradL2: l2, GradInf: inf,
			RMSE: es.RMSE, Compression: es.CompressionRatio,
		})
		t.gradL2G[i].Set(scaledInt(l2, 1e6))
		t.gradInfG[i].Set(scaledInt(inf, 1e6))
		t.rmseG[i].Set(scaledInt(es.RMSE, 1e9))
		t.compG[i].Set(scaledInt(es.CompressionRatio, 1e3))
	}
	t.teleStepG.Set(step)
	t.lossGauge.Set(scaledInt(loss, 1e6))
	snap := health.TelemetrySnapshot{
		Step: step, Loss: loss, Compute: compute, Exchange: exchange,
		Tensors: tensors,
	}
	switch {
	case t.monitor != nil:
		// The bounds only reject models with >1024 exchanged tensors or
		// names past 255 bytes; such a model deserves a loud report once,
		// not a silent telemetry gap.
		if err := t.monitor.ReportTelemetry(snap); err != nil && step == int64(t.cfg.TelemetryEvery) {
			fmt.Printf("parallel: telemetry disabled on the wire: %v\n", err)
		}
	case t.cfg.TelemetryObserver != nil:
		// No control plane (single-process mode): feed the observer
		// directly so a local hub still sees this rank.
		t.cfg.TelemetryObserver(t.cfg.Rank, snap)
	}
}

// scaledInt converts a telemetry float to a fixed-point gauge value,
// clamping non-finite values to 0 (the int64 registry cannot carry
// them; the wire snapshot keeps the full float64).
func scaledInt(v, scale float64) int64 {
	v *= scale
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return int64(v)
}

// recordStep folds one completed step's local timings — and, in
// cluster mode, the freshest peer reports the heartbeats carried —
// into the straggler report, and hands the local timing to the health
// plane for the next outgoing heartbeat.
func (t *Trainer) recordStep(compute, exchange []time.Duration) {
	t.statsMu.Lock()
	t.stepIdx++
	step := t.stepIdx
	t.statsMu.Unlock()
	k := t.cfg.Workers
	s := StepStats{
		Step:     step,
		Compute:  make([]time.Duration, k),
		Exchange: make([]time.Duration, k),
		Known:    make([]bool, k),
		Slowest:  -1,
	}
	for li, w := range t.ranks {
		s.Compute[w], s.Exchange[w], s.Known[w] = compute[li], exchange[li], true
	}
	if t.monitor != nil {
		local := t.ranks[0]
		t.monitor.ReportStep(health.StepReport{
			Step:     step,
			Compute:  s.Compute[local],
			Exchange: s.Exchange[local],
		})
		for p := 0; p < k; p++ {
			if s.Known[p] {
				continue
			}
			if rep, ok := t.monitor.Report(p); ok {
				s.Compute[p], s.Exchange[p], s.Known[p] = rep.Compute, rep.Exchange, true
			}
		}
	}
	// Attribute by compute time: in a blocking collective the other
	// ranks' exchange timers absorb the wait for the straggler, so the
	// compute+exchange sums are nearly equal across ranks and carry no
	// signal. The last rank to finish computing is the one gating the
	// barrier — matching the simulator's attribution.
	var worst time.Duration
	for p := 0; p < k; p++ {
		if s.Known[p] && (s.Slowest < 0 || s.Compute[p] > worst) {
			worst = s.Compute[p]
			s.Slowest = p
		}
	}
	for li := range t.ranks {
		t.computeHist.Observe(int64(compute[li]))
		t.exchangeHist.Observe(int64(exchange[li]))
	}
	// Publish the snapshot; the stored value is never mutated again.
	t.lastStats.Store(&s)
}

// Evaluate returns top-1 accuracy of the canonical replica on ds.
func (t *Trainer) Evaluate(ds *data.Dataset) float64 {
	return t.EvaluateKs(ds, 1)[0]
}

// EvaluateKs returns top-k accuracy of the canonical replica on ds for
// each requested k in a single pass (the paper reports top-1 and
// top-5).
func (t *Trainer) EvaluateKs(ds *data.Dataset, ks ...int) []float64 {
	const evalBatch = 256
	net := t.replicas[0]
	correct := make([]int, len(ks))
	total := 0
	for start := 0; start < ds.Len(); start += evalBatch {
		end := start + evalBatch
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, labels := ds.Gather(idx)
		logits := net.Forward(x, false)
		for i := range labels {
			row := logits.Row(i)
			target := row[labels[i]]
			higher := 0
			for _, v := range row {
				if v > target {
					higher++
				}
			}
			for ki, k := range ks {
				if higher < k {
					correct[ki]++
				}
			}
		}
		total += len(labels)
	}
	out := make([]float64, len(ks))
	if total == 0 {
		return out
	}
	for ki := range ks {
		out[ki] = float64(correct[ki]) / float64(total)
	}
	return out
}

// ReplicasInSync reports whether all replicas hold bit-identical weights
// — the invariant synchronous SGD must maintain.
func (t *Trainer) ReplicasInSync() bool {
	ref := t.replicas[0].Params()
	for w := 1; w < len(t.replicas); w++ {
		ps := t.replicas[w].Params()
		for i, p := range ps {
			for j, v := range p.Value.Data {
				if v != ref[i].Value.Data[j] {
					return false
				}
			}
		}
	}
	return true
}
