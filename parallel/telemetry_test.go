package parallel

import (
	"bytes"
	"strings"
	"testing"

	"repro/data"
	"repro/nn"
	"repro/obs"
	"repro/quant"
)

// teleRun mirrors obsRun with the convergence-telemetry sampler on.
func teleRun(t *testing.T, every int, metrics *obs.Registry, useTCP bool) ([]byte, *Trainer) {
	t.Helper()
	train, test := blobData(t)
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 64, Epochs: 2,
		Schedule: nn.ConstantLR(0.08), Momentum: 0.9, Seed: 5,
		UseTCP:         useTCP,
		Metrics:        metrics,
		TelemetryEvery: every,
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(train, test); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr
}

// TestTelemetryDigestParity extends the PR 9 inertness contract to the
// telemetry plane: sampling loss, gradient norms and live quantisation
// error on every single step must not move one training bit relative
// to a run with telemetry off.
func TestTelemetryDigestParity(t *testing.T) {
	baseline, _, _ := obsRun(t, nil, nil, false)
	reg := obs.NewRegistry()
	enabled, _ := teleRun(t, 1, reg, false)

	// The sampler must have actually run...
	var expo bytes.Buffer
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	text := expo.String()
	for _, m := range []string{
		"lpsgd_telemetry_step ",
		"lpsgd_telemetry_loss_micro ",
		`lpsgd_telemetry_grad_l2_micro{tensor="`,
		`lpsgd_telemetry_quant_rmse_nano{tensor="`,
		`lpsgd_telemetry_compression_milli{tensor="`,
	} {
		if !strings.Contains(text, m) {
			t.Errorf("telemetry series %q missing from exposition:\n%s", m, text)
		}
	}
	if strings.Contains(text, "lpsgd_telemetry_step 0\n") {
		t.Error("telemetry step gauge never advanced")
	}

	// ...and still not have perturbed the trajectory by one bit.
	if !bytes.Equal(baseline, enabled) {
		t.Fatal("telemetry sampling perturbed the training trajectory: checkpoints differ")
	}
}

// TestTelemetryTCPByteParity pins the data-plane half of the
// invariant over real sockets: per-step telemetry changes neither the
// fabric's payload volume nor the result. (The control-plane half —
// snapshots counted under ControlBytes only — is asserted by the
// cluster e2e, where a monitor exists.)
func TestTelemetryTCPByteParity(t *testing.T) {
	plainCkpt, plainTr, _ := obsRun(t, nil, nil, true)
	teleCkpt, teleTr := teleRun(t, 1, obs.NewRegistry(), true)

	if plainTr.WireBytes() != teleTr.WireBytes() {
		t.Fatalf("telemetry changed the data-mesh volume: %d bytes off vs %d on",
			plainTr.WireBytes(), teleTr.WireBytes())
	}
	if !bytes.Equal(plainCkpt, teleCkpt) {
		t.Fatal("telemetry perturbed the TCP training trajectory")
	}
}

// TestTelemetryEveryValidation: a negative cadence is a config error.
func TestTelemetryEveryValidation(t *testing.T) {
	cfg := Config{
		Workers: 2, BatchSize: 8, Epochs: 1,
		TelemetryEvery: -1,
	}
	if _, err := NewTrainer(buildMLP(36, 4), cfg); err == nil {
		t.Fatal("TelemetryEvery=-1 accepted")
	}
}

// BenchmarkStepTelemetryOff and BenchmarkStepTelemetryOn bound the
// telemetry sampler's amortised cost at the default cadence (every 25
// steps) against the same 2% bar as tracing. Compare:
//
//	go test ./parallel -bench 'BenchmarkStepTelemetry(Off|On)' -benchtime 1000x
func BenchmarkStepTelemetryOff(b *testing.B) {
	tr, batch, train := benchStepTrainer(b, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.runStep(train, batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepTelemetryOn(b *testing.B) {
	tr, batch, train := benchTelemetryTrainer(b, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.runStep(train, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTelemetryTrainer mirrors benchStepTrainer with the telemetry
// sampler on at the given cadence.
func benchTelemetryTrainer(b *testing.B, every int) (*Trainer, []int, *data.Dataset) {
	b.Helper()
	train := benchData()
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 64, Epochs: 1,
		Schedule: nn.ConstantLR(0.08), Momentum: 0.9, Seed: 5,
		Metrics:        obs.NewRegistry(),
		TelemetryEvery: every,
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]int, cfg.BatchSize)
	for i := range batch {
		batch[i] = i % train.Len()
	}
	return tr, batch, train
}
