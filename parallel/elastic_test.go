package parallel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/comm"
	"repro/elastic"
	"repro/quant"
)

// stubRejoiner satisfies elastic.Rejoiner for trainers that want
// elastic-session semantics (step-keyed stochastic streams, snapshot
// cursors) without a cluster rendezvous behind them. Tests that do not
// exercise a death never call it.
type stubRejoiner struct{}

func (stubRejoiner) Rejoin(verdict error, _ elastic.LocalState) (*elastic.Outcome, error) {
	return nil, fmt.Errorf("stub rejoiner cannot repair: %w", verdict)
}

// elasticClusterRun drives a k-rank cluster-topology world (one trainer
// per rank over a shared TCP mesh, elastic semantics on) for the given
// epochs, optionally restoring every rank from state bytes first, and
// returns each rank's final weights checkpoint and full session state.
func elasticClusterRun(t *testing.T, k, epochs int, state []byte) (ckpts, states [][]byte) {
	t.Helper()
	train, test := blobData(t)
	mesh, err := comm.NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	trainers := make([]*Trainer, k)
	for rank := 0; rank < k; rank++ {
		cfg := Config{
			Workers:   k,
			Policy:    &quant.Policy{Base: quant.MustParse("qsgd4b512")},
			BatchSize: 48,
			Epochs:    epochs,
			Seed:      5,
			Momentum:  0.9,
			Fabric:    mesh.Rank(rank),
			Rank:      rank,
			Elastic:   stubRejoiner{},
		}
		tr, err := NewTrainer(buildMLP(36, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if state != nil {
			if err := tr.LoadState(bytes.NewReader(state)); err != nil {
				t.Fatalf("rank %d: %v", rank, err)
			}
		}
		trainers[rank] = tr
	}
	ckpts = make([][]byte, k)
	states = make([][]byte, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if _, err := trainers[rank].Run(train, test); err != nil {
				errs[rank] = err
				return
			}
			var ck, st bytes.Buffer
			if err := trainers[rank].SaveCheckpoint(&ck); err != nil {
				errs[rank] = err
				return
			}
			if err := trainers[rank].SaveState(&st); err != nil {
				errs[rank] = err
				return
			}
			ckpts[rank], states[rank] = ck.Bytes(), st.Bytes()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return ckpts, states
}

// TestElasticStateResumeEquivalence is the resume guarantee behind
// rejoin, isolated from the rendezvous: a 2-rank cluster trains 2
// epochs and saves its full session state (weights, velocity, cursor);
// a fresh cluster loads that state on every rank and trains to epoch 4;
// the final weights must be bit-identical to a single uninterrupted
// 4-epoch run — momentum, batch order and stochastic rounding streams
// all resume exactly.
func TestElasticStateResumeEquivalence(t *testing.T) {
	const k = 2
	straight, _ := elasticClusterRun(t, k, 4, nil)

	halfCkpt, halfState := elasticClusterRun(t, k, 2, nil)
	if !bytes.Equal(halfState[0], halfState[1]) {
		t.Fatal("ranks saved different session states from one run")
	}
	_ = halfCkpt
	resumed, _ := elasticClusterRun(t, k, 4, halfState[0])

	for rank := 0; rank < k; rank++ {
		if !bytes.Equal(resumed[rank], straight[rank]) {
			t.Fatalf("rank %d: resumed run diverged from the uninterrupted one", rank)
		}
	}
	if !bytes.Equal(straight[0], straight[1]) {
		t.Fatal("uninterrupted run's replicas diverged")
	}
}

// TestElasticStateRejectsMismatchedConfig: a snapshot must not restore
// into a trainer whose seed, world or hyperparameters differ — resuming
// a different trajectory silently would be worse than failing.
func TestElasticStateRejectsMismatchedConfig(t *testing.T) {
	train, _ := blobData(t)
	_ = train
	base := Config{
		Workers:   2,
		Policy:    &quant.Policy{Base: quant.MustParse("qsgd4b512")},
		BatchSize: 48,
		Epochs:    2,
		Seed:      5,
		Momentum:  0.9,
	}
	mesh, err := comm.NewTCPFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	cfg := base
	cfg.Fabric = mesh.Rank(0)
	cfg.Elastic = stubRejoiner{}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var state bytes.Buffer
	if err := tr.SaveState(&state); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed = 6 },
		"momentum": func(c *Config) { c.Momentum = 0.8 },
		"policy":   func(c *Config) { c.Policy = &quant.Policy{Base: quant.MustParse("qsgd8b512")} },
	} {
		other := base
		mutate(&other)
		// A single-process trainer suffices for validation checks.
		otr, err := NewTrainer(buildMLP(36, 4), other)
		if err != nil {
			t.Fatal(err)
		}
		if err := otr.LoadState(bytes.NewReader(state.Bytes())); err == nil {
			t.Errorf("%s mismatch: state loaded without error", name)
		}
		otr.Close()
	}

	// A different architecture fails through the checkpoint decoder.
	wrong, err := NewTrainer(buildMLP(36, 8), base)
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if err := wrong.LoadState(bytes.NewReader(state.Bytes())); err == nil {
		t.Error("architecture mismatch: state loaded without error")
	}
}

// TestElasticRequiresClusterMode: the rejoin controller is meaningless
// for a trainer that owns the whole world.
func TestElasticRequiresClusterMode(t *testing.T) {
	cfg := Config{Workers: 2, BatchSize: 8, Epochs: 1, Elastic: stubRejoiner{}}
	if _, err := NewTrainer(buildMLP(36, 4), cfg); err == nil {
		t.Fatal("single-process trainer accepted an elastic controller")
	}
}

// TestLoadCheckpointClusterWarmStart covers Trainer.LoadCheckpoint in a
// multi-rank cluster: every rank warm-starts from the same weights-only
// checkpoint, the replicas stay bit-identical through further training,
// and a shape-mismatched checkpoint fails cleanly on every rank.
func TestLoadCheckpointClusterWarmStart(t *testing.T) {
	const k = 3
	train, test := blobData(t)

	// Produce a donor checkpoint from a short single-process run.
	donorCfg := Config{Workers: 1, BatchSize: 16, Epochs: 1, Seed: 11}
	donor, err := NewTrainer(buildMLP(36, 4), donorCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer donor.Close()
	if _, err := donor.Run(train, test); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := donor.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	mesh, err := comm.NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	trainers := make([]*Trainer, k)
	for rank := 0; rank < k; rank++ {
		cfg := Config{
			Workers: k, BatchSize: 48, Epochs: 2, Seed: 5, Momentum: 0.9,
			Policy: &quant.Policy{Base: quant.MustParse("qsgd4b512")},
			Fabric: mesh.Rank(rank), Rank: rank,
		}
		tr, err := NewTrainer(buildMLP(36, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if err := tr.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
			t.Fatalf("rank %d warm start: %v", rank, err)
		}
		trainers[rank] = tr
	}
	ckpts := make([][]byte, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if _, err := trainers[rank].Run(train, test); err != nil {
				errs[rank] = err
				return
			}
			var buf bytes.Buffer
			errs[rank] = trainers[rank].SaveCheckpoint(&buf)
			ckpts[rank] = buf.Bytes()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 1; rank < k; rank++ {
		if !bytes.Equal(ckpts[rank], ckpts[0]) {
			t.Fatalf("rank %d diverged from rank 0 after a shared warm start", rank)
		}
	}

	// Shape mismatch: a checkpoint from a different architecture is
	// rejected with a named error, not a panic or silent corruption.
	wrong, err := NewTrainer(buildMLP(36, 8), Config{Workers: 1, BatchSize: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if err := wrong.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("shape-mismatched checkpoint loaded without error")
	}
}
