package parallel

import (
	"bytes"
	"testing"
	"time"

	"repro/nn"
	"repro/obs"
	"repro/rng"
	"repro/sim"
	"repro/tensor"
)

// dragLayer is a pass-through layer that sleeps in Forward, making one
// rank measurably slow without touching the arithmetic.
type dragLayer struct{ delay time.Duration }

func (d *dragLayer) Name() string { return "drag" }
func (d *dragLayer) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return x
}
func (d *dragLayer) Backward(dout *tensor.Matrix) *tensor.Matrix { return dout }
func (d *dragLayer) Params() []*nn.Param                         { return nil }

// TestLiveAndSimulatedStragglerAgree: slow the same rank in a live
// 4-worker run and in a simulated 4-rank scenario; both attributions —
// parallel.EpochStats.SlowestRank and sim.ClusterResult.SlowestRank —
// must name it.
func TestLiveAndSimulatedStragglerAgree(t *testing.T) {
	const slowRank = 2

	// Live: NewTrainer calls build once per worker, in rank order, so a
	// counter identifies the rank being built.
	buildBase, train, test := smallTask()
	next := 0
	build := func(r *rng.RNG) *nn.Network {
		rank := next
		next++
		net := buildBase(r)
		if rank == slowRank {
			layers := append([]nn.Layer{&dragLayer{delay: 15 * time.Millisecond}}, net.Layers...)
			return nn.MustNetwork(layers...)
		}
		return net
	}
	tr, err := NewTrainer(build, Config{
		Workers: 4, BatchSize: 16, Epochs: 1, Seed: 9,
		Schedule: nn.ConstantLR(0.1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	h, err := tr.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Epochs[0].SlowestRank; got != slowRank {
		t.Errorf("live attribution named rank %d, want %d", got, slowRank)
	}

	// Simulated: the same world shape with the same rank pinned slow.
	res, err := sim.RunScenario(sim.Scenario{
		Name: "live-agreement", Ranks: 4, Steps: 4,
		Stragglers: &sim.StragglerModel{Slow: []sim.SlowRank{{Rank: slowRank, Factor: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowestRank != slowRank {
		t.Errorf("simulated attribution named rank %d, want %d", res.SlowestRank, slowRank)
	}
}

// TestTraceOverlayStragglerAgree is the end-to-end path of
// cmd/lpsgd-trace: capture a live step-phase trace with one dragged
// rank, aggregate it into a sim-comparable timeline, run a matching
// scenario, and assert the overlay reports straggler agreement.
func TestTraceOverlayStragglerAgree(t *testing.T) {
	const slowRank = 2

	buildBase, train, test := smallTask()
	next := 0
	build := func(r *rng.RNG) *nn.Network {
		rank := next
		next++
		net := buildBase(r)
		if rank == slowRank {
			layers := append([]nn.Layer{&dragLayer{delay: 15 * time.Millisecond}}, net.Layers...)
			return nn.MustNetwork(layers...)
		}
		return net
	}
	tracer := obs.NewTracer(8192)
	tr, err := NewTrainer(build, Config{
		Workers: 4, BatchSize: 16, Epochs: 1, Seed: 9,
		Schedule: nn.ConstantLR(0.1),
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Run(train, test); err != nil {
		t.Fatal(err)
	}

	// Round-trip the trace through its wire format, as lpsgd-trace
	// would read it from a -trace-out file.
	var wire bytes.Buffer
	if err := tracer.WriteJSONL(&wire); err != nil {
		t.Fatal(err)
	}
	live, err := sim.ReadLiveTrace(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if live.Ranks != 4 {
		t.Fatalf("live timeline covers %d ranks, want 4", live.Ranks)
	}
	if live.SlowestRank != slowRank {
		t.Fatalf("live trace attribution named rank %d, want %d", live.SlowestRank, slowRank)
	}

	res, err := sim.RunScenario(sim.Scenario{
		Name: "trace-overlay", Ranks: 4, Steps: 4,
		Stragglers: &sim.StragglerModel{Slow: []sim.SlowRank{{Rank: slowRank, Factor: 4}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := sim.BuildOverlay(live, res)
	if err != nil {
		t.Fatal(err)
	}
	if !ov.Agree {
		t.Fatalf("live (rank %d) and simulated (rank %d) straggler attribution disagree",
			ov.LiveSlowest, ov.SimSlowest)
	}
}
