package parallel

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/comm"
	"repro/quant"
)

// TestSingleRankTrainersMatchInProcess: three trainers, each driving
// one rank of a shared TCP mesh (the multi-process topology, collapsed
// into goroutines), must agree bit-for-bit with each other and with a
// single trainer that owns the whole world over the same kind of
// fabric.
func TestSingleRankTrainersMatchInProcess(t *testing.T) {
	const k = 3
	train, test := blobData(t)
	base := Config{
		Workers:   k,
		Codec:     quant.MustParse("qsgd4b512"),
		BatchSize: 24,
		Epochs:    2,
		Seed:      5,
	}

	// Reference: one trainer owning all K replicas over loopback TCP.
	refCfg := base
	refCfg.UseTCP = true
	ref, err := NewTrainer(buildMLP(36, 4), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Run(train, test); err != nil {
		t.Fatal(err)
	}
	var refCkpt bytes.Buffer
	if err := ref.SaveCheckpoint(&refCkpt); err != nil {
		t.Fatal(err)
	}

	// Cluster topology: K trainers, each bound to one rank's view of a
	// shared mesh.
	mesh, err := comm.NewTCPFabric(k)
	if err != nil {
		t.Fatal(err)
	}
	trainers := make([]*Trainer, k)
	for rank := 0; rank < k; rank++ {
		cfg := base
		cfg.Fabric = mesh.Rank(rank)
		cfg.Rank = rank
		tr, err := NewTrainer(buildMLP(36, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		if tr.Rank() != rank || tr.World() != k {
			t.Fatalf("trainer claims rank %d of %d", tr.Rank(), tr.World())
		}
		trainers[rank] = tr
	}
	errs := make([]error, k)
	ckpts := make([]bytes.Buffer, k)
	var wg sync.WaitGroup
	for rank := 0; rank < k; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if _, err := trainers[rank].Run(train, test); err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = trainers[rank].SaveCheckpoint(&ckpts[rank])
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	for rank := 0; rank < k; rank++ {
		if !bytes.Equal(ckpts[rank].Bytes(), refCkpt.Bytes()) {
			t.Fatalf("rank %d diverged from the single-process reference", rank)
		}
	}
}

// TestClusterConfigValidation: a fabric/world mismatch and an
// out-of-range rank must be rejected at construction.
func TestClusterConfigValidation(t *testing.T) {
	mesh, err := comm.NewTCPFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	cfg := Config{Workers: 2, BatchSize: 8, Epochs: 1, Fabric: mesh.Rank(0)}
	if _, err := NewTrainer(buildMLP(36, 4), cfg); err == nil ||
		!strings.Contains(err.Error(), "fabric spans") {
		t.Fatalf("want fabric/world mismatch error, got %v", err)
	}
	cfg.Workers = 3
	cfg.Rank = 7
	if _, err := NewTrainer(buildMLP(36, 4), cfg); err == nil ||
		!strings.Contains(err.Error(), "rank") {
		t.Fatalf("want rank range error, got %v", err)
	}
}
