package parallel

import (
	"math"
	"strings"
	"testing"

	"repro/data"
	"repro/nn"
	"repro/quant"
	"repro/rng"
)

// buildMLP is a small but non-trivial model used across the engine tests.
func buildMLP(dim, classes int) func(r *rng.RNG) *nn.Network {
	return func(r *rng.RNG) *nn.Network {
		return nn.MustNetwork(
			nn.NewDense("d1", dim, 32, r),
			nn.NewReLU("r1"),
			nn.NewDense("d2", 32, 32, r),
			nn.NewReLU("r2"),
			nn.NewDense("d3", 32, classes, r),
		)
	}
}

func blobData(t *testing.T) (*data.Dataset, *data.Dataset) {
	t.Helper()
	train, test := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 1, H: 6, W: 6,
		TrainN: 512, TestN: 256, Noise: 0.7, Seed: 99,
	})
	return train, test
}

func runConfig(t *testing.T, cfg Config) *History {
	t.Helper()
	train, test := blobData(t)
	cfg.BatchSize = 64
	cfg.Epochs = 8
	cfg.Schedule = nn.ConstantLR(0.08)
	cfg.Momentum = 0.9
	cfg.Seed = 5
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ReplicasInSync() {
		t.Fatalf("replicas diverged (codec=%v, prim=%v)", cfg.Codec, cfg.Primitive)
	}
	return h
}

func TestFullPrecisionLearns(t *testing.T) {
	h := runConfig(t, Config{Workers: 4})
	if h.FinalAccuracy < 0.9 {
		t.Fatalf("fp32 accuracy %v < 0.9", h.FinalAccuracy)
	}
}

func TestQuantisedMatchesFullPrecision(t *testing.T) {
	base := runConfig(t, Config{Workers: 4})
	for _, c := range []quant.Codec{
		quant.NewOneBitReshaped(64),
		quant.NewQSGD(4, 512, quant.MaxNorm),
		quant.NewQSGD(8, 512, quant.MaxNorm),
	} {
		h := runConfig(t, Config{Workers: 4, Codec: c})
		if h.FinalAccuracy < base.FinalAccuracy-0.05 {
			t.Errorf("%s accuracy %v vs fp32 %v — more than 5 points behind",
				c.Name(), h.FinalAccuracy, base.FinalAccuracy)
		}
	}
}

func TestClassicOneBitTrains(t *testing.T) {
	h := runConfig(t, Config{Workers: 2, Codec: quant.OneBit{}})
	if h.FinalAccuracy < 0.8 {
		t.Fatalf("classic 1bit accuracy %v", h.FinalAccuracy)
	}
}

func TestNCCLQuantisedUsesSimulatedRing(t *testing.T) {
	train, test := blobData(t)
	cfg := Config{
		Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		Primitive: NCCL, BatchSize: 64, Epochs: 2,
		Schedule: nn.ConstantLR(0.05), Momentum: 0.9, Seed: 5,
	}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reducer().Name() != "nccl-ring-sim" {
		t.Fatalf("expected simulated ring, got %s", tr.Reducer().Name())
	}
	if _, err := tr.Run(train, test); err != nil {
		t.Fatal(err)
	}
}

func TestNCCLFullPrecisionUsesRing(t *testing.T) {
	cfg := Config{Workers: 2, Primitive: NCCL, BatchSize: 8, Epochs: 1,
		Schedule: nn.ConstantLR(0.01), Seed: 1}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reducer().Name() != "nccl-ring" {
		t.Fatalf("expected ring, got %s", tr.Reducer().Name())
	}
}

func TestQuantisedMovesFewerBytes(t *testing.T) {
	fp := runConfig(t, Config{Workers: 4})
	q4 := runConfig(t, Config{Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm)})
	if q4.TotalWireBytes >= fp.TotalWireBytes {
		t.Fatalf("4-bit moved %d bytes, fp32 moved %d", q4.TotalWireBytes, fp.TotalWireBytes)
	}
	ratio := float64(fp.TotalWireBytes) / float64(q4.TotalWireBytes)
	if ratio < 4 {
		t.Fatalf("4-bit wire reduction only %.2f×", ratio)
	}
}

func TestSingleWorker(t *testing.T) {
	h := runConfig(t, Config{Workers: 1})
	if h.FinalAccuracy < 0.9 {
		t.Fatalf("1-worker accuracy %v", h.FinalAccuracy)
	}
	if h.TotalWireBytes != 0 {
		t.Fatalf("1-worker run moved %d bytes", h.TotalWireBytes)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runConfig(t, Config{Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm)})
	b := runConfig(t, Config{Workers: 4, Codec: quant.NewQSGD(4, 512, quant.MaxNorm)})
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("accuracy differs across identical runs: %v vs %v",
			a.FinalAccuracy, b.FinalAccuracy)
	}
	for i := range a.Epochs {
		if math.Abs(a.Epochs[i].TrainLoss-b.Epochs[i].TrainLoss) > 0 {
			t.Fatalf("epoch %d loss differs", i)
		}
	}
}

func TestEpochsToReach(t *testing.T) {
	h := &History{Epochs: []EpochStats{
		{Epoch: 0, TestAccuracy: 0.3},
		{Epoch: 1, TestAccuracy: 0.6},
		{Epoch: 2, TestAccuracy: 0.8},
	}}
	if got := h.EpochsToReach(0.55); got != 2 {
		t.Fatalf("EpochsToReach(0.55) = %d, want 2", got)
	}
	if got := h.EpochsToReach(0.99); got != -1 {
		t.Fatalf("EpochsToReach(0.99) = %d, want -1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workers: 0, BatchSize: 8, Epochs: 1},
		{Workers: 16, BatchSize: 8, Epochs: 1},
		{Workers: 2, BatchSize: 8, Epochs: 0},
	}
	for i, cfg := range bad {
		if _, err := NewTrainer(buildMLP(4, 2), cfg); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestPlanExposed(t *testing.T) {
	cfg := Config{Workers: 2, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		BatchSize: 8, Epochs: 1, Seed: 1}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := tr.Plan().QuantisedFraction(); f < 0.99 {
		t.Fatalf("plan quantises only %v of parameters", f)
	}
}

func TestHistoryRecordsWireGrowth(t *testing.T) {
	h := runConfig(t, Config{Workers: 2, Codec: quant.NewQSGD(8, 512, quant.MaxNorm)})
	var prev int64 = -1
	for _, e := range h.Epochs {
		if e.WireBytes < prev {
			t.Fatal("cumulative wire bytes decreased")
		}
		prev = e.WireBytes
	}
	if prev != h.TotalWireBytes {
		t.Fatal("final epoch bytes != total")
	}
}

func TestTop5AtLeastTop1(t *testing.T) {
	h := runConfig(t, Config{Workers: 2, Codec: quant.NewQSGD(4, 512, quant.MaxNorm)})
	for _, e := range h.Epochs {
		if e.TestAccuracy < 0 {
			continue
		}
		if e.TestTop5 < e.TestAccuracy {
			t.Fatalf("epoch %d: top5 %v < top1 %v", e.Epoch, e.TestTop5, e.TestAccuracy)
		}
		if e.TestTop5 > 1 {
			t.Fatalf("epoch %d: top5 %v > 1", e.Epoch, e.TestTop5)
		}
	}
}

func TestEvaluateKsSinglePassConsistency(t *testing.T) {
	train, test := blobData(t)
	cfg := Config{Workers: 1, BatchSize: 16, Epochs: 1,
		Schedule: nn.ConstantLR(0.05), Seed: 4}
	tr, err := NewTrainer(buildMLP(36, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(train, test); err != nil {
		t.Fatal(err)
	}
	top1 := tr.Evaluate(test)
	ks := tr.EvaluateKs(test, 1, 2, 4)
	if ks[0] != top1 {
		t.Fatalf("EvaluateKs top1 %v != Evaluate %v", ks[0], top1)
	}
	if !(ks[0] <= ks[1] && ks[1] <= ks[2]) {
		t.Fatalf("top-k not monotone: %v", ks)
	}
	// With 4 classes, top-4 accuracy must be exactly 1.
	if ks[2] != 1 {
		t.Fatalf("top-4 of 4 classes = %v, want 1", ks[2])
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	train, test := blobData(t)
	norm := func(wd float32) float64 {
		cfg := Config{Workers: 2, BatchSize: 64, Epochs: 4,
			Schedule: nn.ConstantLR(0.05), Momentum: 0.9,
			WeightDecay: wd, Seed: 5}
		tr, err := NewTrainer(buildMLP(36, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(train, test); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, p := range tr.Model().Params() {
			total += p.Value.Norm2() * p.Value.Norm2()
		}
		return total
	}
	plain := norm(0)
	decayed := norm(0.01)
	if decayed >= plain {
		t.Fatalf("weight decay did not shrink weights: %v vs %v", decayed, plain)
	}
}

func TestTrainingOverTCPFabric(t *testing.T) {
	// The same quantised run over real sockets must produce bit-identical
	// results to the channel fabric (the aggregation is deterministic and
	// transport-independent). The byte volumes differ only by the
	// self-describing frame headers the TCP path adds: payload bytes are
	// identical, and the per-message overhead is the frame header size.
	overChan := runConfig(t, Config{Workers: 2, Codec: quant.NewQSGD(4, 512, quant.MaxNorm)})
	overTCP := runConfig(t, Config{Workers: 2, Codec: quant.NewQSGD(4, 512, quant.MaxNorm), UseTCP: true})
	if overChan.FinalAccuracy != overTCP.FinalAccuracy {
		t.Fatalf("transport changed results: %v vs %v",
			overChan.FinalAccuracy, overTCP.FinalAccuracy)
	}
	overhead := overTCP.TotalWireBytes - overChan.TotalWireBytes
	if overhead <= 0 {
		t.Fatalf("framed TCP volume %d not above headerless channel volume %d",
			overTCP.TotalWireBytes, overChan.TotalWireBytes)
	}
}

// TestNCCLRejectsExpandingCodec: classic 1bitSGD *expands* tensors with
// tiny wire rows (12 bytes per 2-value column vs 8 raw), which the NCCL
// byte-volume simulation cannot represent — NewTrainer must return an
// error, not panic (the fraction used to reach NewSimulatedRing's
// panic).
func TestNCCLRejectsExpandingCodec(t *testing.T) {
	build := func(r *rng.RNG) *nn.Network {
		return nn.MustNetwork(nn.NewDense("fc", 256, 2, r))
	}
	_, err := NewTrainer(build, Config{
		Workers: 2, BatchSize: 64, Epochs: 1,
		Codec: quant.OneBit{}, Primitive: NCCL,
	})
	if err == nil {
		t.Fatal("expected an error for an expanding codec under NCCL")
	}
	if !strings.Contains(err.Error(), "expands") {
		t.Fatalf("error %q does not explain the expansion", err)
	}
}

func TestClipNormKeepsReplicasInSync(t *testing.T) {
	h := runConfig(t, Config{Workers: 3, Codec: quant.NewQSGD(4, 512, quant.MaxNorm),
		ClipNorm: 0.5})
	if h.FinalAccuracy < 0.7 {
		t.Fatalf("clipped training accuracy %v", h.FinalAccuracy)
	}
}

// TestDeprecatedCodecFieldsCompileIntoPolicy: the old Config pair
// (Codec, MinQuantisedFraction) must behave exactly as the policy it is
// shorthand for, and an explicit Policy must supersede both.
func TestDeprecatedCodecFieldsCompileIntoPolicy(t *testing.T) {
	tr, err := NewTrainer(buildMLP(36, 4), Config{
		Workers: 2, BatchSize: 8, Epochs: 1,
		Codec: quant.NewQSGD(4, 512, quant.MaxNorm), MinQuantisedFraction: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Policy().Name(); got != "qsgd4b512;minfrac=1" {
		t.Fatalf("shim compiled to policy %q, want qsgd4b512;minfrac=1", got)
	}

	tr2, err := NewTrainer(buildMLP(36, 4), Config{
		Workers: 2, BatchSize: 8, Epochs: 1,
		Policy: quant.MustParsePolicy("qsgd8b512;d3=32bit"),
		Codec:  quant.OneBit{}, // ignored: Policy wins
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if got := tr2.Policy().Name(); got != "qsgd8b512;d3=32bit" {
		t.Fatalf("explicit policy lost to the deprecated codec: %q", got)
	}
	// The d3 rule claims both d3.W and d3.b (layer-prefix match);
	// everything else follows the base with the default exemption.
	plan := tr2.Plan()
	infos := buildMLP(36, 4)(rng.New(1)).TensorInfos()
	for i, ti := range infos {
		if !strings.HasPrefix(ti.Name, "d3.") {
			continue
		}
		if got := plan.CodecFor(i).Name(); got != "32bit" {
			t.Errorf("tensor %s carried by %s, want the d3 rule's 32bit", ti.Name, got)
		}
	}
}

// TestMixedPolicyTrainingStaysInSync: real training under a per-layer
// policy over both primitives' framed/in-process paths keeps replicas
// bit-identical.
func TestMixedPolicyTrainingStaysInSync(t *testing.T) {
	h := runConfig(t, Config{Workers: 3,
		Policy: quant.MustParsePolicy("qsgd4b512;minfrac=1;d1=qsgd8b512;*.b=32bit")})
	if h.FinalAccuracy < 0.7 {
		t.Fatalf("mixed-policy training accuracy %v", h.FinalAccuracy)
	}
}

// TestMixedPolicyTrainingOverTCPStaysInSync: the same mixed policy with
// every message a self-describing frame over loopback TCP.
func TestMixedPolicyTrainingOverTCPStaysInSync(t *testing.T) {
	h := runConfig(t, Config{Workers: 2, UseTCP: true,
		Policy: quant.MustParsePolicy("qsgd4b512;minfrac=1;d1=qsgd8b512;*.b=32bit")})
	if h.FinalAccuracy < 0.7 {
		t.Fatalf("mixed-policy TCP training accuracy %v", h.FinalAccuracy)
	}
}

// TestConfigDoesNotMutateCallerPolicy: filling defaults must copy the
// policy, not write through the caller's pointer — one policy value may
// configure several trainers (possibly concurrently).
func TestConfigDoesNotMutateCallerPolicy(t *testing.T) {
	p := &quant.Policy{Base: nil, MinFrac: 0} // both fields defaulted
	tr, err := NewTrainer(buildMLP(36, 4), Config{
		Workers: 2, BatchSize: 8, Epochs: 1, Policy: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if p.Base != nil || p.MinFrac != 0 {
		t.Fatalf("NewTrainer mutated the caller's policy: %+v", p)
	}
	if got := tr.Policy().Name(); got != "32bit" {
		t.Fatalf("effective policy %q, want the defaulted 32bit", got)
	}
}

// unnameableCodec wraps a real codec under a name the quant grammar
// cannot spell — legal for in-process training, where names never
// cross a wire (the lpsgd facade and cluster rendezvous reject it at
// their boundaries instead).
type unnameableCodec struct{ quant.Codec }

func (unnameableCodec) Name() string { return "my-experimental-codec" }

// TestCustomCodecTrainsInProcess: the engine must keep accepting
// custom codecs whose names do not round-trip through quant.Parse, as
// it did before policies existed.
func TestCustomCodecTrainsInProcess(t *testing.T) {
	h := runConfig(t, Config{Workers: 2,
		Codec: unnameableCodec{quant.NewQSGD(8, 512, quant.MaxNorm)}})
	if h.FinalAccuracy < 0.7 {
		t.Fatalf("custom-codec training accuracy %v", h.FinalAccuracy)
	}
}
