package health

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file adds the telemetry extension to the control-plane protocol:
// a fourth message kind that carries a compact, versioned snapshot of a
// rank's convergence signals — per-step loss, per-tensor gradient norms
// and live quantisation quality — so the coordinator can aggregate a
// cluster-wide view without touching the data mesh.
//
// Unlike ping/abort/bye, telemetry is framed as an *extension kind*: a
// uint32 body length follows the header, so a build that does not
// understand a given extension kind can skip its body and keep the
// stream alive instead of declaring the peer dead. The body itself
// opens with its own snapshot version byte; an unknown snapshot version
// is delivered as "no telemetry" and ignored, which is what keeps a
// newer peer's richer snapshots from killing an older monitor.
//
//	telemetry (every rank → every peer, each TelemetryEvery-th step):
//	  header as above, kind 3
//	  uint32  body length (bounded by maxTelemetryBody)
//	  body:
//	    uint8   snapshot version (currently 1)
//	    uint32  sender rank
//	    uint64  step index
//	    uint64  loss (float64 bits)
//	    uint64  compute wall time of that step (ns)
//	    uint64  exchange wall time of that step (ns)
//	    uint16  tensor count (bounded by maxTelemetryTensors)
//	    per tensor:
//	      uint8   name length
//	      ...     name bytes
//	      uint64  gradient L2 norm (float64 bits)
//	      uint64  gradient inf norm (float64 bits)
//	      uint64  quantisation RMSE (float64 bits)
//	      uint64  compression ratio raw/wire (float64 bits)
//
// Telemetry bytes ride the same sockets as pings and are counted under
// ControlBytes — the data fabric's byte accounting stays untouched.
const (
	// telemetryVersion is the snapshot body version. Bump it when the
	// snapshot layout changes; old monitors ignore unknown versions.
	telemetryVersion = 1

	// maxTelemetryTensors bounds the per-snapshot tensor table.
	maxTelemetryTensors = 1024

	// maxTensorNameLen bounds one tensor name on the wire.
	maxTensorNameLen = 255

	// maxTelemetryBody bounds the whole snapshot body. Comfortably above
	// maxTelemetryTensors full-length entries would be ~300 KiB; a rank
	// that needs more than this is misusing the control plane.
	maxTelemetryBody = 1 << 19
)

// TensorTelemetry is one tensor's convergence and quantisation-quality
// sample inside a TelemetrySnapshot.
type TensorTelemetry struct {
	// Name is the tensor's exchange name (e.g. "dense1.w").
	Name string
	// GradL2 and GradInf are the aggregated gradient's L2 and
	// max-absolute norms at the sampled step.
	GradL2, GradInf float64
	// RMSE is the quantisation root-mean-square error measured live
	// against the negotiated codec (quant.MeasureError).
	RMSE float64
	// Compression is the raw/wire byte ratio of the tensor's codec
	// (1 = full precision, 8 ≈ 4-bit, ~32 = 1-bit).
	Compression float64
}

// TelemetrySnapshot is one rank's periodic convergence digest. It rides
// the heartbeat control links (see Monitor.ReportTelemetry) and is what
// the cluster telemetry hub aggregates into /cluster/metrics.
type TelemetrySnapshot struct {
	// Step is the 1-based training step the snapshot was taken at.
	Step int64
	// Loss is the mean minibatch loss of that step.
	Loss float64
	// Compute and Exchange are the step's phase wall times — the same
	// split StepReport carries, duplicated here so a snapshot is
	// self-contained for dashboard consumers.
	Compute, Exchange time.Duration
	// Tensors holds the per-tensor samples, in exchange order.
	Tensors []TensorTelemetry
}

// appendU16w appends a little-endian uint16.
func appendU16w(buf []byte, v uint16) []byte {
	return append(buf, byte(v), byte(v>>8))
}

func appendF64w(buf []byte, v float64) []byte {
	return appendU64w(buf, math.Float64bits(v))
}

// encodeTelemetry assembles a telemetry message (header, body length,
// body) into buf. It rejects snapshots that violate the wire bounds
// rather than truncating silently.
func encodeTelemetry(buf []byte, from int, s TelemetrySnapshot) ([]byte, error) {
	if len(s.Tensors) > maxTelemetryTensors {
		return nil, fmt.Errorf("health: telemetry snapshot has %d tensors, wire bound is %d", len(s.Tensors), maxTelemetryTensors)
	}
	buf = appendHeader(buf[:0], kindTelemetry)
	lenAt := len(buf)
	buf = appendU32w(buf, 0) // body length, patched below
	bodyAt := len(buf)
	buf = append(buf, telemetryVersion)
	buf = appendU32w(buf, uint32(from))
	buf = appendU64w(buf, uint64(s.Step))
	buf = appendF64w(buf, s.Loss)
	buf = appendU64w(buf, uint64(s.Compute.Nanoseconds()))
	buf = appendU64w(buf, uint64(s.Exchange.Nanoseconds()))
	buf = appendU16w(buf, uint16(len(s.Tensors)))
	for i := range s.Tensors {
		t := &s.Tensors[i]
		if len(t.Name) > maxTensorNameLen {
			return nil, fmt.Errorf("health: telemetry tensor name %q exceeds %d bytes", t.Name, maxTensorNameLen)
		}
		buf = append(buf, byte(len(t.Name)))
		buf = append(buf, t.Name...)
		buf = appendF64w(buf, t.GradL2)
		buf = appendF64w(buf, t.GradInf)
		buf = appendF64w(buf, t.RMSE)
		buf = appendF64w(buf, t.Compression)
	}
	body := len(buf) - bodyAt
	if body > maxTelemetryBody {
		return nil, fmt.Errorf("health: telemetry body is %d bytes, wire bound is %d", body, maxTelemetryBody)
	}
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(body))
	return buf, nil
}

// decodeTelemetry parses a telemetry body. An unknown snapshot version
// returns ok=false with no error — the message is ignored, not fatal —
// while a malformed body of a known version is a decode error (the
// length framing already preserved the stream, so this only fires on a
// corrupted or lying sender).
func decodeTelemetry(body []byte) (from int, s TelemetrySnapshot, ok bool, err error) {
	if len(body) < 1 {
		return 0, s, false, fmt.Errorf("health: empty telemetry body")
	}
	if body[0] != telemetryVersion {
		return 0, s, false, nil
	}
	const fixed = 1 + 4 + 8 + 8 + 8 + 8 + 2
	if len(body) < fixed {
		return 0, s, false, fmt.Errorf("health: telemetry body truncated at %d bytes", len(body))
	}
	from = int(binary.LittleEndian.Uint32(body[1:]))
	s.Step = int64(binary.LittleEndian.Uint64(body[5:]))
	s.Loss = math.Float64frombits(binary.LittleEndian.Uint64(body[13:]))
	s.Compute = durationNS(body[21:])
	s.Exchange = durationNS(body[29:])
	n := int(binary.LittleEndian.Uint16(body[37:]))
	if n > maxTelemetryTensors {
		return 0, s, false, fmt.Errorf("health: telemetry snapshot claims %d tensors, wire bound is %d", n, maxTelemetryTensors)
	}
	rest := body[fixed:]
	s.Tensors = make([]TensorTelemetry, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 1 {
			return 0, s, false, fmt.Errorf("health: telemetry tensor %d truncated", i)
		}
		nameLen := int(rest[0])
		rest = rest[1:]
		if len(rest) < nameLen+4*8 {
			return 0, s, false, fmt.Errorf("health: telemetry tensor %d truncated", i)
		}
		t := TensorTelemetry{Name: string(rest[:nameLen])}
		rest = rest[nameLen:]
		t.GradL2 = math.Float64frombits(binary.LittleEndian.Uint64(rest[0:]))
		t.GradInf = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
		t.RMSE = math.Float64frombits(binary.LittleEndian.Uint64(rest[16:]))
		t.Compression = math.Float64frombits(binary.LittleEndian.Uint64(rest[24:]))
		rest = rest[32:]
		s.Tensors = append(s.Tensors, t)
	}
	if len(rest) != 0 {
		return 0, s, false, fmt.Errorf("health: telemetry body has %d trailing bytes", len(rest))
	}
	return from, s, true, nil
}
