package health

import (
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// pairConns builds a connected duplex TCP pair over loopback.
func pairConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		dial.Close()
		t.Fatal(acc.err)
	}
	return dial, acc.conn
}

// controlMesh wires a fully connected control mesh: conns[r][p] is rank
// r's end of the link to rank p.
func controlMesh(t *testing.T, world int) [][]net.Conn {
	t.Helper()
	conns := make([][]net.Conn, world)
	for r := range conns {
		conns[r] = make([]net.Conn, world)
	}
	for lo := 0; lo < world; lo++ {
		for hi := lo + 1; hi < world; hi++ {
			a, b := pairConns(t)
			conns[lo][hi] = a
			conns[hi][lo] = b
		}
	}
	return conns
}

// startMonitors builds and starts one monitor per rank.
func startMonitors(t *testing.T, conns [][]net.Conn, cfg Config) []*Monitor {
	t.Helper()
	ms := make([]*Monitor, len(conns))
	for r := range conns {
		m, err := NewMonitor(r, len(conns), conns[r], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms[r] = m
	}
	for _, m := range ms {
		m.Start()
	}
	return ms
}

// waitVerdict blocks until m reaches a verdict or the deadline passes.
func waitVerdict(t *testing.T, m *Monitor, within time.Duration) ErrPeerDead {
	t.Helper()
	select {
	case <-m.Dead():
	case <-time.After(within):
		t.Fatalf("no verdict within %v", within)
	}
	var dead ErrPeerDead
	if !errors.As(m.Verdict(), &dead) {
		t.Fatalf("verdict %v is not an ErrPeerDead", m.Verdict())
	}
	return dead
}

// TestMonitorDetectsKilledPeer: closing a rank's sockets out from under
// it (what a SIGKILL does) gives every survivor the same typed verdict,
// with registered handlers run before Dead() releases.
func TestMonitorDetectsKilledPeer(t *testing.T) {
	before := runtime.NumGoroutine()
	conns := controlMesh(t, 3)
	ms := startMonitors(t, conns, Config{Interval: 25 * time.Millisecond, Timeout: 300 * time.Millisecond})

	var handled atomic.Int32
	handlerSawFabricOrder := make([]atomic.Bool, 2)
	for r := 0; r < 2; r++ {
		r := r
		ms[r].OnVerdict(func(err error) {
			var dead ErrPeerDead
			if errors.As(err, &dead) && dead.Rank == 2 {
				handlerSawFabricOrder[r].Store(true)
			}
			handled.Add(1)
		})
	}

	// SIGKILL stand-in: rank 2's ends of both links vanish.
	conns[2][0].Close()
	conns[2][1].Close()

	for r := 0; r < 2; r++ {
		dead := waitVerdict(t, ms[r], 2*time.Second)
		if dead.Rank != 2 {
			t.Fatalf("rank %d blamed rank %d, want 2", r, dead.Rank)
		}
		if !handlerSawFabricOrder[r].Load() {
			t.Fatalf("rank %d's handler had not run when Dead() released", r)
		}
	}
	if got := handled.Load(); got != 2 {
		t.Fatalf("handlers ran %d times, want 2", got)
	}

	for _, m := range ms {
		m.Close()
	}
	waitGoroutines(t, before)
}

// TestMonitorKillLooksLikeDeath: Kill severs the control links with no
// parting bye, so peers reach a death verdict — the fault-injection
// hook the elastic-rejoin tests simulate a SIGKILL with — while the
// killed monitor itself shuts down without declaring anyone dead.
func TestMonitorKillLooksLikeDeath(t *testing.T) {
	before := runtime.NumGoroutine()
	conns := controlMesh(t, 3)
	ms := startMonitors(t, conns, Config{Interval: 25 * time.Millisecond, Timeout: 300 * time.Millisecond})

	ms[2].Kill()
	for r := 0; r < 2; r++ {
		if dead := waitVerdict(t, ms[r], 2*time.Second); dead.Rank != 2 {
			t.Fatalf("rank %d blamed rank %d, want 2", r, dead.Rank)
		}
	}
	if ms[2].Verdict() != nil {
		t.Fatalf("the killed monitor declared a verdict of its own: %v", ms[2].Verdict())
	}
	ms[2].Kill() // idempotent
	for _, m := range ms {
		m.Close()
	}
	waitGoroutines(t, before)
}

// TestMonitorFastCloseAfterVerdictDoesNotMisleadPeers pins the elastic
// quiesce race: rank 1 detects rank 2's death (its link EOFs), reaches
// a verdict, and immediately Closes its monitor to rebuild it at the
// rejoin barrier — while rank 0 knows nothing yet (its own link to
// rank 2 is merely silent). Rank 0 must end up blaming rank 2, never
// rank 1: the abort broadcast must win the race against rank 1's
// teardown (Close waits for in-flight broadcast writes), because a
// wrong verdict here makes the coordinator reject the replacement and
// poisons the whole repair.
func TestMonitorFastCloseAfterVerdictDoesNotMisleadPeers(t *testing.T) {
	conns := controlMesh(t, 3)
	// Monitors for ranks 0 and 1 only; rank 2 is a silent husk whose
	// connection ends the test holds.
	m0, err := NewMonitor(0, 3, conns[0], Config{Interval: 25 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewMonitor(1, 3, conns[1], Config{Interval: 25 * time.Millisecond, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m0.Start()
	m1.Start()
	defer m0.Close()

	// Rank 2 "dies" from rank 1's perspective only: rank 1 EOFs and
	// declares, while rank 0's link to rank 2 stays silently open (its
	// own deadline is 2s away). Rank 1 then tears down immediately —
	// the elastic rejoin path.
	conns[2][1].Close()
	if dead := waitVerdict(t, m1, 2*time.Second); dead.Rank != 2 {
		t.Fatalf("rank 1 blamed rank %d, want 2", dead.Rank)
	}
	m1.Close()

	if dead := waitVerdict(t, m0, 2*time.Second); dead.Rank != 2 {
		t.Fatalf("rank 0 blamed rank %d, want 2 — rank 1's teardown outran its abort broadcast", dead.Rank)
	}
}

// TestMonitorSilenceDeadline: a peer whose process is wedged (sockets
// open, no heartbeats) is declared dead by the deadline detector within
// 2x the configured timeout, and not immediately.
func TestMonitorSilenceDeadline(t *testing.T) {
	const timeout = 400 * time.Millisecond
	conns := controlMesh(t, 3)
	cfg := Config{Interval: 50 * time.Millisecond, Timeout: timeout}
	// Ranks 0 and 1 run monitors; rank 2 holds its conns open but never
	// speaks — the half-open scenario no EOF will ever announce.
	ms := make([]*Monitor, 2)
	for r := 0; r < 2; r++ {
		m, err := NewMonitor(r, 3, conns[r], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms[r] = m
	}
	start := time.Now()
	for _, m := range ms {
		m.Start()
	}
	for r, m := range ms {
		dead := waitVerdict(t, m, 2*timeout)
		if dead.Rank != 2 {
			t.Fatalf("rank %d blamed rank %d, want the mute rank 2", r, dead.Rank)
		}
	}
	if elapsed := time.Since(start); elapsed < timeout/2 {
		t.Fatalf("verdict after %v — faster than any plausible deadline path", elapsed)
	}
	for _, m := range ms {
		m.Close()
	}
	for p := range conns[2] {
		if conns[2][p] != nil {
			conns[2][p].Close()
		}
	}
}

// TestMonitorAbortBroadcast: only rank 0 observes rank 2's death (the
// 1<->2 link stays perfectly healthy), yet rank 1 unblocks with the
// same verdict via the coordinated-abort broadcast — long before its
// own detector could know.
func TestMonitorAbortBroadcast(t *testing.T) {
	conns := controlMesh(t, 3)
	// Timeout far beyond the assertion window: if rank 1 learns of the
	// death quickly, it can only be the broadcast. Rank 2 runs no
	// monitor (it is the dying process), so rank 0 is the only rank in
	// a position to observe the death directly.
	cfg := Config{Interval: 25 * time.Millisecond, Timeout: 10 * time.Second}
	ms := make([]*Monitor, 2)
	for r := 0; r < 2; r++ {
		m, err := NewMonitor(r, 3, conns[r], cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms[r] = m
		m.Start()
	}
	// Rank 2 dies as seen from rank 0 only; its link to rank 1 stays
	// open (and silent, far below the 10 s deadline).
	conns[2][0].Close()

	dead := waitVerdict(t, ms[1], 2*time.Second)
	if dead.Rank != 2 {
		t.Fatalf("rank 1 blamed rank %d, want 2", dead.Rank)
	}
	for _, m := range ms {
		m.Close()
	}
	conns[2][1].Close()
}

// TestMonitorCleanShutdownIsNotDeath: a rank that Closes its monitor
// says bye; peers mark it departed and never declare a verdict, even
// after the silence deadline has long passed.
func TestMonitorCleanShutdownIsNotDeath(t *testing.T) {
	conns := controlMesh(t, 2)
	const timeout = 200 * time.Millisecond
	ms := startMonitors(t, conns, Config{Interval: 25 * time.Millisecond, Timeout: timeout})
	ms[1].Close()
	select {
	case <-ms[0].Dead():
		t.Fatalf("clean departure misread as death: %v", ms[0].Verdict())
	case <-time.After(2 * timeout):
	}
	if err := ms[0].Verdict(); err != nil {
		t.Fatalf("verdict %v after a clean bye", err)
	}
	ms[0].Close()
}

// TestMonitorStepReportPiggyback: step timings reported on one rank
// arrive at every peer on the next heartbeat, and Straggler attributes
// the slowest rank.
func TestMonitorStepReportPiggyback(t *testing.T) {
	conns := controlMesh(t, 2)
	ms := startMonitors(t, conns, Config{Interval: 15 * time.Millisecond, Timeout: 5 * time.Second})
	defer ms[0].Close()
	defer ms[1].Close()

	slow := StepReport{Step: 3, Compute: 50 * time.Millisecond, Exchange: 20 * time.Millisecond}
	fast := StepReport{Step: 3, Compute: 5 * time.Millisecond, Exchange: 2 * time.Millisecond}
	ms[0].ReportStep(slow)
	ms[1].ReportStep(fast)

	deadline := time.Now().Add(2 * time.Second)
	for {
		got, ok := ms[1].Report(0)
		if ok && got == slow {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rank 1 never saw rank 0's report (got %+v, known %v)", got, ok)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rank, rep, ok := ms[1].Straggler()
	if !ok || rank != 0 || rep != slow {
		t.Fatalf("straggler = (%d, %+v, %v), want rank 0 with %+v", rank, rep, ok, slow)
	}
	if ms[0].ControlBytes() == 0 {
		t.Fatal("control-plane bytes unaccounted")
	}
}

// TestMonitorValidation: malformed constructions are rejected.
func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0, 1, []net.Conn{nil}, Config{}); err == nil {
		t.Fatal("world of 1 must be rejected")
	}
	if _, err := NewMonitor(0, 2, []net.Conn{nil, nil}, Config{}); err == nil {
		t.Fatal("missing control link must be rejected")
	}
	if _, err := NewMonitor(2, 2, nil, Config{}); err == nil {
		t.Fatal("out-of-range rank must be rejected")
	}
	if _, err := NewMonitor(0, 2, []net.Conn{nil, nil}, Config{Disable: true}); err == nil {
		t.Fatal("disabled config must be rejected")
	}
}

// waitGoroutines asserts the goroutine count returns to (near) the
// baseline — the loops and writers all exited.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
