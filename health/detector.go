package health

import (
	"math"
	"sync"
	"time"
)

// Detector is a phi-or-deadline failure detector for one peer: the phi
// accrual detector of Hayashibara et al. (the one Akka and Cassandra
// run), backstopped by a hard silence deadline.
//
// Every heartbeat arrival feeds the observed inter-arrival distribution
// (mean and variance over a sliding window). Suspicion is then a
// continuous quantity: phi(t) = -log10 P(a heartbeat arrives later than
// t | history). A peer whose heartbeats were metronomic is suspected
// after a short silence (phi crosses the threshold quickly, well before
// the hard deadline); a peer on a jittery link earns slack
// proportional to its own jitter. Until enough samples exist — and as
// the final word regardless of what the statistics say — the hard
// deadline applies: silence of Timeout is death, full stop. The
// deadline is what the cluster's abort latency guarantee is stated
// against; phi only ever accelerates the verdict.
type Detector struct {
	mu sync.Mutex
	// timeout is the hard silence deadline.
	timeout time.Duration
	// threshold is the phi level at which the peer is suspected.
	threshold float64
	// last is the most recent heartbeat arrival (initialised to the
	// detector's birth so a peer that never speaks is still caught).
	last time.Time
	// window is a ring of recent inter-arrival gaps, in seconds.
	window  [detectorWindow]float64
	idx, n  int
	sum     float64
	sumSq   float64
	started bool
}

const (
	// detectorWindow bounds the inter-arrival history.
	detectorWindow = 64
	// detectorMinSamples gates the phi path: below this, deadline only.
	detectorMinSamples = 8
	// minStdDev floors the inter-arrival standard deviation so a
	// perfectly regular heartbeat stream (common on loopback) does not
	// make phi explode on microseconds of scheduler noise.
	minStdDev = 2e-3 // seconds
)

// NewDetector builds a detector with the given hard deadline and phi
// threshold. The clock starts at start: a peer that never sends a
// single heartbeat is suspected once start+timeout passes.
func NewDetector(timeout time.Duration, threshold float64, start time.Time) *Detector {
	return &Detector{timeout: timeout, threshold: threshold, last: start}
}

// Observe records a heartbeat arrival.
func (d *Detector) Observe(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		gap := t.Sub(d.last).Seconds()
		if gap >= 0 {
			old := d.window[d.idx]
			d.window[d.idx] = gap
			d.idx = (d.idx + 1) % detectorWindow
			if d.n < detectorWindow {
				d.n++
			} else {
				d.sum -= old
				d.sumSq -= old * old
			}
			d.sum += gap
			d.sumSq += gap * gap
		}
	}
	d.started = true
	if t.After(d.last) {
		d.last = t
	}
}

// LastSeen returns the most recent heartbeat arrival (the detector's
// birth time if none arrived yet).
func (d *Detector) LastSeen() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Suspect reports whether the peer should be declared dead at time now:
// either the hard deadline has passed, or the accrued phi crossed the
// threshold.
func (d *Detector) Suspect(now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := now.Sub(d.last)
	if elapsed >= d.timeout {
		return true
	}
	return d.n >= detectorMinSamples && d.phiLocked(elapsed) >= d.threshold
}

// Phi returns the current suspicion level (0 when history is too
// short). Exposed for telemetry and tests.
func (d *Detector) Phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.n < detectorMinSamples {
		return 0
	}
	return d.phiLocked(now.Sub(d.last))
}

// phiLocked computes phi for a silence of elapsed, using the logistic
// approximation to the normal tail that Akka's accrual detector uses.
func (d *Detector) phiLocked(elapsed time.Duration) float64 {
	mean := d.sum / float64(d.n)
	variance := d.sumSq/float64(d.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std < minStdDev {
		std = minStdDev
	}
	y := (elapsed.Seconds() - mean) / std
	x := y * (1.5976 + 0.070566*y*y)
	e := math.Exp(-x)
	if elapsed.Seconds() > mean {
		// -log10(e/(1+e)) = log10(1+1/e); once e underflows to zero the
		// closed form keeps phi finite and strictly increasing.
		if e == 0 {
			return x * math.Log10E
		}
		return -math.Log10(e / (1 + e))
	}
	return -math.Log10(1 - 1/(1+e))
}
