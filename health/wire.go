package health

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// This file defines the control-plane wire protocol: little-endian,
// magic-tagged and versioned messages travelling over the dedicated
// per-peer control links the cluster rendezvous establishes alongside
// the data mesh. Three fixed-size message kinds exist (a fourth,
// length-prefixed telemetry kind is described in telemetry.go):
//
//	ping (every rank → every peer, each heartbeat interval):
//	  uint32  magic "LPSH"
//	  uint8   control protocol version (currently 1)
//	  uint8   kind (0)
//	  uint32  sender rank
//	  uint64  sequence number
//	  int64   step index of the sender's last completed training step
//	  int64   compute wall time of that step (ns)
//	  int64   exchange wall time of that step (ns)
//
//	abort (the rank that reached a death verdict → every survivor):
//	  header as above, kind 1
//	  uint32  sender rank
//	  uint32  dead rank
//	  int64   dead rank's last-seen time (unix nanoseconds)
//
//	bye (a rank shutting down cleanly → every peer, kind 2):
//	  header as above, kind 2
//	  uint32  sender rank
//
// Pings double as the straggler-telemetry channel: the step timing
// fields let every rank attribute the synchronous barrier's wait time
// to the slowest participant without adding a single byte to the data
// mesh (see Monitor.Report).

const (
	// controlMagic tags every control-plane message ("LPSH").
	controlMagic uint32 = 'L' | 'P'<<8 | 'S'<<16 | 'H'<<24

	// controlVersion is the control-plane wire version. It is versioned
	// independently of the rendezvous protocol: the rendezvous hello
	// gates build compatibility, so by the time control links exist both
	// ends already agreed on the cluster protocol.
	controlVersion = 1

	kindPing  = 0
	kindAbort = 1
	kindBye   = 2
	// kindTelemetry opens the extension-kind range: every kind from
	// here on is framed with an explicit uint32 body length so unknown
	// kinds can be skipped instead of desynchronising the stream (see
	// telemetry.go for the body layout).
	kindTelemetry = 3

	// pingBody/abortBody/byeBody are the fixed payload sizes per kind.
	pingBody  = 4 + 8 + 8 + 8 + 8
	abortBody = 4 + 4 + 8
	byeBody   = 4

	// maxExtensionBody bounds any length-prefixed extension body; a
	// larger claim is stream corruption, not a big message.
	maxExtensionBody = maxTelemetryBody
)

// message is one decoded control-plane message.
type message struct {
	Kind byte
	From int
	// Ping fields.
	Seq      uint64
	Report   StepReport
	HasSteps bool
	// Abort fields.
	Dead         int
	LastSeenNano int64
	// Telemetry fields. HasTelemetry is false for an extension message
	// that was skipped (unknown kind or unknown snapshot version).
	Telemetry    TelemetrySnapshot
	HasTelemetry bool
}

func appendHeader(buf []byte, kind byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], controlMagic)
	buf = append(buf, b[:]...)
	return append(buf, controlVersion, kind)
}

func appendU32w(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func appendU64w(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// encodePing assembles a ping carrying the sender's latest step report.
func encodePing(buf []byte, from int, seq uint64, r StepReport) []byte {
	buf = appendHeader(buf[:0], kindPing)
	buf = appendU32w(buf, uint32(from))
	buf = appendU64w(buf, seq)
	buf = appendU64w(buf, uint64(r.Step))
	buf = appendU64w(buf, uint64(r.Compute.Nanoseconds()))
	return appendU64w(buf, uint64(r.Exchange.Nanoseconds()))
}

// encodeAbort assembles the coordinated-abort broadcast.
func encodeAbort(buf []byte, from, dead int, lastSeenNano int64) []byte {
	buf = appendHeader(buf[:0], kindAbort)
	buf = appendU32w(buf, uint32(from))
	buf = appendU32w(buf, uint32(dead))
	return appendU64w(buf, uint64(lastSeenNano))
}

// encodeBye assembles the clean-departure notice.
func encodeBye(buf []byte, from int) []byte {
	buf = appendHeader(buf[:0], kindBye)
	return appendU32w(buf, uint32(from))
}

// readMessage blocks for the next control message on r and decodes it.
func readMessage(r io.Reader) (message, error) {
	var m message
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return m, err
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != controlMagic {
		return m, fmt.Errorf("health: bad control magic %#x", got)
	}
	if v := hdr[4]; v != controlVersion {
		return m, fmt.Errorf("health: control message speaks version %d, this build speaks %d", v, controlVersion)
	}
	m.Kind = hdr[5]
	var want int
	switch m.Kind {
	case kindPing:
		want = pingBody
	case kindAbort:
		want = abortBody
	case kindBye:
		want = byeBody
	default:
		if m.Kind < kindTelemetry {
			return m, fmt.Errorf("health: unknown control message kind %d", m.Kind)
		}
		// Extension kinds carry an explicit body length: read it, bound
		// it, consume the body. Kinds this build does not know are
		// skipped — a newer peer's extra messages must not read as death.
		var lb [4]byte
		if _, err := io.ReadFull(r, lb[:]); err != nil {
			return m, fmt.Errorf("health: extension message length: %w", err)
		}
		n := binary.LittleEndian.Uint32(lb[:])
		if n > maxExtensionBody {
			return m, fmt.Errorf("health: extension message body of %d bytes exceeds the %d-byte wire bound", n, maxExtensionBody)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return m, fmt.Errorf("health: extension message body: %w", err)
		}
		if m.Kind == kindTelemetry {
			from, snap, ok, err := decodeTelemetry(body)
			if err != nil {
				return m, err
			}
			m.From, m.Telemetry, m.HasTelemetry = from, snap, ok
		}
		return m, nil
	}
	body := make([]byte, want)
	if _, err := io.ReadFull(r, body); err != nil {
		return m, fmt.Errorf("health: control message body: %w", err)
	}
	m.From = int(binary.LittleEndian.Uint32(body[0:]))
	switch m.Kind {
	case kindPing:
		m.Seq = binary.LittleEndian.Uint64(body[4:])
		m.Report = StepReport{
			Step:     int64(binary.LittleEndian.Uint64(body[12:])),
			Compute:  durationNS(body[20:]),
			Exchange: durationNS(body[28:]),
		}
		m.HasSteps = m.Report.Step > 0
	case kindAbort:
		m.Dead = int(binary.LittleEndian.Uint32(body[4:]))
		m.LastSeenNano = int64(binary.LittleEndian.Uint64(body[8:]))
	}
	return m, nil
}

func durationNS(b []byte) time.Duration {
	return time.Duration(binary.LittleEndian.Uint64(b))
}
