package health

import (
	"testing"
	"time"
)

// feed observes n metronomic arrivals spaced gap apart, returning the
// time of the last one.
func feed(d *Detector, start time.Time, gap time.Duration, n int) time.Time {
	t := start
	for i := 0; i < n; i++ {
		t = t.Add(gap)
		d.Observe(t)
	}
	return t
}

func TestDetectorHardDeadline(t *testing.T) {
	start := time.Unix(1000, 0)
	d := NewDetector(2*time.Second, DefaultPhi, start)
	// A peer that never speaks is suspected once the deadline passes,
	// and not a moment before.
	if d.Suspect(start.Add(1900 * time.Millisecond)) {
		t.Fatal("suspected before the deadline with no history")
	}
	if !d.Suspect(start.Add(2 * time.Second)) {
		t.Fatal("not suspected at the hard deadline")
	}
}

func TestDetectorRegularHeartbeatsAreHealthy(t *testing.T) {
	start := time.Unix(1000, 0)
	d := NewDetector(4*time.Second, DefaultPhi, start)
	last := feed(d, start, 100*time.Millisecond, 50)
	// Just after an on-time heartbeat, phi is negligible.
	if d.Suspect(last.Add(50 * time.Millisecond)) {
		t.Fatal("healthy metronomic peer suspected")
	}
	if phi := d.Phi(last.Add(100 * time.Millisecond)); phi > 1 {
		t.Fatalf("phi %v after one on-time interval, want ~0", phi)
	}
}

func TestDetectorPhiAcceleratesPastDeadline(t *testing.T) {
	start := time.Unix(1000, 0)
	const gap = 100 * time.Millisecond
	d := NewDetector(10*time.Second, DefaultPhi, start)
	last := feed(d, start, gap, 50)
	// After a metronomic history, a silence of 10 intervals crosses the
	// phi threshold long before the 10 s hard deadline would fire.
	if !d.Suspect(last.Add(10 * gap)) {
		t.Fatal("phi did not accelerate the verdict for a metronomic peer")
	}
	// And phi is monotone in the silence.
	if d.Phi(last.Add(4*gap)) >= d.Phi(last.Add(8*gap)) {
		t.Fatal("phi is not increasing with silence")
	}
}

func TestDetectorJitterEarnsSlack(t *testing.T) {
	start := time.Unix(1000, 0)
	steady := NewDetector(time.Hour, DefaultPhi, start)
	jittery := NewDetector(time.Hour, DefaultPhi, start)
	lastSteady := feed(steady, start, 100*time.Millisecond, 50)
	// Same mean interval, alternating 20/180 ms gaps.
	tj := start
	for i := 0; i < 25; i++ {
		tj = tj.Add(20 * time.Millisecond)
		jittery.Observe(tj)
		tj = tj.Add(180 * time.Millisecond)
		jittery.Observe(tj)
	}
	silence := 500 * time.Millisecond
	if steady.Phi(lastSteady.Add(silence)) <= jittery.Phi(tj.Add(silence)) {
		t.Fatal("a jittery peer must accrue suspicion more slowly than a metronomic one")
	}
}

func TestDetectorFewSamplesFallBackToDeadline(t *testing.T) {
	start := time.Unix(1000, 0)
	d := NewDetector(5*time.Second, DefaultPhi, start)
	last := feed(d, start, 10*time.Millisecond, detectorMinSamples-2)
	// Far too few samples for statistics: a long silence below the hard
	// deadline is tolerated...
	if d.Suspect(last.Add(4 * time.Second)) {
		t.Fatal("phi path used below the sample floor")
	}
	// ...and the deadline still catches it.
	if !d.Suspect(last.Add(5 * time.Second)) {
		t.Fatal("hard deadline lost")
	}
}

func TestResolvedDefaults(t *testing.T) {
	got := Config{}.Resolved()
	if got.Interval != DefaultInterval || got.Timeout != defaultTimeoutIntervals*DefaultInterval || got.Phi != DefaultPhi {
		t.Fatalf("zero config resolved to %+v", got)
	}
	custom := Config{Interval: time.Second}.Resolved()
	if custom.Timeout != 8*time.Second {
		t.Fatalf("timeout default must derive from the interval, got %v", custom.Timeout)
	}
	if r := (Config{Disable: true, Interval: time.Second}).Resolved(); !r.Disable || r.Interval != 0 {
		t.Fatalf("disabled config must stay inert, got %+v", r)
	}
}
