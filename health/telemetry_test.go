package health

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot() TelemetrySnapshot {
	return TelemetrySnapshot{
		Step:     42,
		Loss:     0.137,
		Compute:  3 * time.Millisecond,
		Exchange: time.Millisecond,
		Tensors: []TensorTelemetry{
			{Name: "dense1.w", GradL2: 1.25, GradInf: 0.5, RMSE: 0.0625, Compression: 7.876},
			{Name: "dense1.b", GradL2: 0.03125, GradInf: 0.015625, RMSE: 0, Compression: 1},
		},
	}
}

// TestTelemetryRoundTrip pins the telemetry encode/decode pair through
// the full readMessage path, including the length-prefix framing.
func TestTelemetryRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	wire, err := encodeTelemetry(nil, 3, snap)
	if err != nil {
		t.Fatal(err)
	}
	m, err := readMessage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != kindTelemetry || !m.HasTelemetry || m.From != 3 {
		t.Fatalf("decoded kind=%d hasTelemetry=%v from=%d", m.Kind, m.HasTelemetry, m.From)
	}
	got := m.Telemetry
	if got.Step != snap.Step || got.Loss != snap.Loss ||
		got.Compute != snap.Compute || got.Exchange != snap.Exchange {
		t.Fatalf("scalar fields: got %+v want %+v", got, snap)
	}
	if len(got.Tensors) != len(snap.Tensors) {
		t.Fatalf("got %d tensors, want %d", len(got.Tensors), len(snap.Tensors))
	}
	for i := range snap.Tensors {
		if got.Tensors[i] != snap.Tensors[i] {
			t.Fatalf("tensor %d: got %+v want %+v", i, got.Tensors[i], snap.Tensors[i])
		}
	}
	// Special float values must survive the bits round trip too.
	snap.Loss = math.Inf(1)
	snap.Tensors[0].GradL2 = math.NaN()
	wire, err = encodeTelemetry(wire, 0, snap)
	if err != nil {
		t.Fatal(err)
	}
	m, err = readMessage(bytes.NewReader(wire))
	if err != nil || !m.HasTelemetry {
		t.Fatalf("special-float round trip: %+v, %v", m, err)
	}
	if !math.IsInf(m.Telemetry.Loss, 1) || !math.IsNaN(m.Telemetry.Tensors[0].GradL2) {
		t.Fatalf("special floats corrupted: %+v", m.Telemetry)
	}
}

// TestTelemetryUnknownVersionIgnored: a snapshot from a newer build
// (higher snapshot version byte) is delivered as "no telemetry", not an
// error — the stream survives and the next message still decodes. This
// is the old-version-peer compatibility contract.
func TestTelemetryUnknownVersionIgnored(t *testing.T) {
	wire, err := encodeTelemetry(nil, 1, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Patch the snapshot version byte (first body byte, after the
	// 6-byte header and 4-byte length prefix).
	wire[10] = telemetryVersion + 1
	stream := append(append([]byte(nil), wire...), encodeBye(nil, 1)...)
	r := bytes.NewReader(stream)
	m, err := readMessage(r)
	if err != nil {
		t.Fatalf("unknown snapshot version must not be fatal: %v", err)
	}
	if m.Kind != kindTelemetry || m.HasTelemetry {
		t.Fatalf("want skipped telemetry message, got %+v", m)
	}
	if m, err = readMessage(r); err != nil || m.Kind != kindBye {
		t.Fatalf("stream desynchronised after skipped telemetry: %+v, %v", m, err)
	}
}

// TestTelemetryUnknownExtensionKindSkipped: any extension kind above
// telemetry is length-framed, so a build that predates it skips the
// body and keeps reading — unknown *fixed* kinds below the extension
// range stay fatal.
func TestTelemetryUnknownExtensionKindSkipped(t *testing.T) {
	future := appendHeader(nil, kindTelemetry+5)
	future = appendU32w(future, 3)
	future = append(future, 0xAA, 0xBB, 0xCC)
	stream := append(future, encodeBye(nil, 2)...)
	r := bytes.NewReader(stream)
	m, err := readMessage(r)
	if err != nil {
		t.Fatalf("unknown extension kind must not be fatal: %v", err)
	}
	if m.HasTelemetry {
		t.Fatalf("unknown extension kind decoded as telemetry: %+v", m)
	}
	if m, err = readMessage(r); err != nil || m.Kind != kindBye || m.From != 2 {
		t.Fatalf("stream desynchronised after skipped extension: %+v, %v", m, err)
	}
}

// TestTelemetryOversizedAndMalformedRejected: wire bounds hold on both
// sides — encode refuses snapshots that would violate them, and decode
// refuses length claims and bodies that do.
func TestTelemetryOversizedAndMalformedRejected(t *testing.T) {
	// Encoder: tensor table past the bound.
	big := TelemetrySnapshot{Tensors: make([]TensorTelemetry, maxTelemetryTensors+1)}
	if _, err := encodeTelemetry(nil, 0, big); err == nil {
		t.Fatal("encode accepted a tensor table past the wire bound")
	}
	// Encoder: tensor name past the bound.
	long := TelemetrySnapshot{Tensors: []TensorTelemetry{{Name: strings.Repeat("x", maxTensorNameLen+1)}}}
	if _, err := encodeTelemetry(nil, 0, long); err == nil {
		t.Fatal("encode accepted an oversized tensor name")
	}
	// Decoder: a length prefix past the extension bound is corruption.
	over := appendHeader(nil, kindTelemetry)
	over = appendU32w(over, maxExtensionBody+1)
	if _, err := readMessage(bytes.NewReader(over)); err == nil {
		t.Fatal("decoder accepted an oversized extension body length")
	}
	// Decoder: a tensor count past the bound inside a well-framed body.
	wire, err := encodeTelemetry(nil, 0, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(wire[10+37:], maxTelemetryTensors+1)
	if _, err := readMessage(bytes.NewReader(wire)); err == nil {
		t.Fatal("decoder accepted a tensor count past the wire bound")
	}
	// Decoder: a truncated tensor table (count says 2, body holds 1).
	wire, err = encodeTelemetry(nil, 0, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(wire[10+37:], 3)
	if _, err := readMessage(bytes.NewReader(wire)); err == nil {
		t.Fatal("decoder accepted a truncated tensor table")
	}
	// Decoder: trailing garbage after the declared tensors.
	wire, err = encodeTelemetry(nil, 0, sampleSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	wire = append(wire, 0xEE)
	binary.LittleEndian.PutUint32(wire[6:], uint32(len(wire)-10))
	if _, err := readMessage(bytes.NewReader(wire)); err == nil {
		t.Fatal("decoder accepted trailing bytes after the tensor table")
	}
}

// TestMonitorTelemetryExchange: ReportTelemetry on one rank reaches
// every peer's Telemetry table and OnTelemetry observer over the live
// heartbeat links, the local observer fires synchronously, and the
// bytes land in ControlBytes.
func TestMonitorTelemetryExchange(t *testing.T) {
	conns := controlMesh(t, 3)
	ms := startMonitors(t, conns, Config{Interval: 20 * time.Millisecond, Timeout: 2 * time.Second})
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()

	type delivery struct {
		peer int
		snap TelemetrySnapshot
	}
	got := make(chan delivery, 8)
	ms[1].OnTelemetry(func(peer int, s TelemetrySnapshot) { got <- delivery{peer, s} })

	// The local observer fires synchronously from ReportTelemetry.
	local := sampleSnapshot()
	local.Step = 7
	if err := ms[1].ReportTelemetry(local); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.peer != 1 || d.snap.Step != 7 {
			t.Fatalf("local delivery: peer=%d step=%d", d.peer, d.snap.Step)
		}
	default:
		t.Fatal("ReportTelemetry did not invoke the local observer synchronously")
	}

	// A remote snapshot arrives within a few heartbeat intervals.
	remote := sampleSnapshot()
	if err := ms[0].ReportTelemetry(remote); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case d := <-got:
			if d.peer != 0 {
				continue
			}
			if d.snap.Step != remote.Step || len(d.snap.Tensors) != len(remote.Tensors) {
				t.Fatalf("remote delivery: %+v", d.snap)
			}
			if s, ok := ms[1].Telemetry(0); !ok || s.Step != remote.Step {
				t.Fatalf("Telemetry(0) = %+v, %v", s, ok)
			}
			if ms[0].ControlBytes() == 0 {
				t.Fatal("telemetry bytes missing from ControlBytes")
			}
			// Rank 2 registered no observer but still holds the copy.
			waitTele := time.After(2 * time.Second)
			for {
				if s, ok := ms[2].Telemetry(0); ok && s.Step == remote.Step {
					return
				}
				select {
				case <-waitTele:
					t.Fatal("rank 2 never received rank 0's telemetry")
				case <-time.After(10 * time.Millisecond):
				}
			}
		case <-deadline:
			t.Fatal("rank 1 never received rank 0's telemetry")
		}
	}
}

// TestMonitorTelemetrySentOncePerPeer: one published snapshot is
// shipped to a peer exactly once, not once per heartbeat — republish
// bumps the sequence and ships again.
func TestMonitorTelemetrySentOncePerPeer(t *testing.T) {
	conns := controlMesh(t, 2)
	ms := startMonitors(t, conns, Config{Interval: 15 * time.Millisecond, Timeout: 2 * time.Second})
	defer func() {
		for _, m := range ms {
			m.Close()
		}
	}()

	var count int
	seen := make(chan int, 16)
	ms[1].OnTelemetry(func(peer int, s TelemetrySnapshot) {
		if peer == 0 {
			count++
			seen <- count
		}
	})
	snap := sampleSnapshot()
	if err := ms[0].ReportTelemetry(snap); err != nil {
		t.Fatal(err)
	}
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("first snapshot never arrived")
	}
	// Several heartbeat intervals of silence: no re-delivery.
	time.Sleep(10 * 15 * time.Millisecond)
	select {
	case n := <-seen:
		t.Fatalf("snapshot redelivered (%d deliveries)", n)
	default:
	}
	snap.Step++
	if err := ms[0].ReportTelemetry(snap); err != nil {
		t.Fatal(err)
	}
	select {
	case <-seen:
	case <-time.After(2 * time.Second):
		t.Fatal("republished snapshot never arrived")
	}
}
