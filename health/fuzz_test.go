package health

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadMessage mirrors quant's FuzzDecodeAny pattern for the
// control-plane wire decoder: whatever bytes arrive on a control link —
// a corrupted peer, a stray connection, a truncated stream — the
// decoder must return an error or a message, never panic, index out of
// range, or allocate from an attacker-controlled length (fixed bodies
// for ping/abort/bye, an explicit wire bound for the length-prefixed
// telemetry extension — the fuzzer holds it to both).
func FuzzReadMessage(f *testing.F) {
	// Every real message kind seeds the corpus.
	f.Add(encodePing(nil, 2, 41, StepReport{Step: 7, Compute: time.Millisecond, Exchange: 2 * time.Millisecond}))
	f.Add(encodeAbort(nil, 0, 3, time.Now().UnixNano()))
	f.Add(encodeBye(nil, 1))
	tele, _ := encodeTelemetry(nil, 1, TelemetrySnapshot{
		Step: 12, Loss: 0.25, Compute: time.Millisecond, Exchange: time.Millisecond,
		Tensors: []TensorTelemetry{{Name: "dense1.w", GradL2: 1.5, GradInf: 0.5, RMSE: 0.01, Compression: 7.9}},
	})
	f.Add(append([]byte(nil), tele...))
	f.Add([]byte{})
	f.Add([]byte("LPSH"))
	f.Add([]byte{byte('L'), byte('P'), byte('S'), byte('H'), 1, 99})
	f.Add(append(encodeBye(nil, 1), encodePing(nil, 0, 1, StepReport{})...))
	// A telemetry message whose body opens with an unknown snapshot
	// version: must decode as a skipped (HasTelemetry=false) message.
	f.Add([]byte{byte('L'), byte('P'), byte('S'), byte('H'), 1, kindTelemetry, 2, 0, 0, 0, 0xFE, 0x07})
	f.Fuzz(func(t *testing.T, wire []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("readMessage panicked: %v", p)
			}
		}()
		r := bytes.NewReader(wire)
		for {
			m, err := readMessage(r)
			if err != nil {
				return // rejected or exhausted inputs only need to not panic
			}
			if m.Kind < kindTelemetry &&
				m.Kind != kindPing && m.Kind != kindAbort && m.Kind != kindBye {
				t.Fatalf("decoder accepted unknown fixed kind %d", m.Kind)
			}
			if m.HasTelemetry && len(m.Telemetry.Tensors) > maxTelemetryTensors {
				t.Fatalf("decoder accepted %d tensors past the wire bound", len(m.Telemetry.Tensors))
			}
		}
	})
}

// TestReadMessageRoundTrip pins the encode/decode pair for every kind.
func TestReadMessageRoundTrip(t *testing.T) {
	rep := StepReport{Step: 9, Compute: 3 * time.Millisecond, Exchange: time.Millisecond}
	ping := encodePing(nil, 2, 17, rep)
	m, err := readMessage(bytes.NewReader(ping))
	if err != nil || m.Kind != kindPing || m.From != 2 || m.Seq != 17 || m.Report != rep || !m.HasSteps {
		t.Fatalf("ping round trip: %+v, %v", m, err)
	}
	abort := encodeAbort(nil, 1, 3, 12345)
	m, err = readMessage(bytes.NewReader(abort))
	if err != nil || m.Kind != kindAbort || m.From != 1 || m.Dead != 3 || m.LastSeenNano != 12345 {
		t.Fatalf("abort round trip: %+v, %v", m, err)
	}
	bye := encodeBye(nil, 4)
	m, err = readMessage(bytes.NewReader(bye))
	if err != nil || m.Kind != kindBye || m.From != 4 {
		t.Fatalf("bye round trip: %+v, %v", m, err)
	}
}
