package health

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadMessage mirrors quant's FuzzDecodeAny pattern for the
// control-plane wire decoder: whatever bytes arrive on a control link —
// a corrupted peer, a stray connection, a truncated stream — the
// decoder must return an error or a message, never panic, index out of
// range, or allocate from an attacker-controlled length (all control
// bodies are fixed-size, and the fuzzer holds it to that).
func FuzzReadMessage(f *testing.F) {
	// Every real message kind seeds the corpus.
	f.Add(encodePing(nil, 2, 41, StepReport{Step: 7, Compute: time.Millisecond, Exchange: 2 * time.Millisecond}))
	f.Add(encodeAbort(nil, 0, 3, time.Now().UnixNano()))
	f.Add(encodeBye(nil, 1))
	f.Add([]byte{})
	f.Add([]byte("LPSH"))
	f.Add([]byte{byte('L'), byte('P'), byte('S'), byte('H'), 1, 99})
	f.Add(append(encodeBye(nil, 1), encodePing(nil, 0, 1, StepReport{})...))
	f.Fuzz(func(t *testing.T, wire []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("readMessage panicked: %v", p)
			}
		}()
		r := bytes.NewReader(wire)
		for {
			m, err := readMessage(r)
			if err != nil {
				return // rejected or exhausted inputs only need to not panic
			}
			if m.Kind != kindPing && m.Kind != kindAbort && m.Kind != kindBye {
				t.Fatalf("decoder accepted unknown kind %d", m.Kind)
			}
		}
	})
}

// TestReadMessageRoundTrip pins the encode/decode pair for every kind.
func TestReadMessageRoundTrip(t *testing.T) {
	rep := StepReport{Step: 9, Compute: 3 * time.Millisecond, Exchange: time.Millisecond}
	ping := encodePing(nil, 2, 17, rep)
	m, err := readMessage(bytes.NewReader(ping))
	if err != nil || m.Kind != kindPing || m.From != 2 || m.Seq != 17 || m.Report != rep || !m.HasSteps {
		t.Fatalf("ping round trip: %+v, %v", m, err)
	}
	abort := encodeAbort(nil, 1, 3, 12345)
	m, err = readMessage(bytes.NewReader(abort))
	if err != nil || m.Kind != kindAbort || m.From != 1 || m.Dead != 3 || m.LastSeenNano != 12345 {
		t.Fatalf("abort round trip: %+v, %v", m, err)
	}
	bye := encodeBye(nil, 4)
	m, err = readMessage(bytes.NewReader(bye))
	if err != nil || m.Kind != kindBye || m.From != 4 {
		t.Fatalf("bye round trip: %+v, %v", m, err)
	}
}
