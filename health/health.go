// Package health is the cluster's control plane: a heartbeat protocol,
// a failure detector and a coordinated-abort broadcast that run beside
// the gradient mesh for the lifetime of a training session.
//
// The paper's synchronous algorithm assumes every rank reaches every
// all-reduce; in a multi-process deployment a rank dying mid-epoch
// would otherwise leave the survivors blocked inside the exchange
// forever. The health plane turns that hang into a prompt, typed
// verdict: every rank sends a small ping to every peer over a
// dedicated control link each Interval; a phi-or-deadline detector
// (see Detector) declares a silent peer dead; the first rank to reach
// a verdict broadcasts an abort so every survivor unblocks with the
// same error, ErrPeerDead — the cluster wires that verdict into
// comm.RemoteFabric.Abort, which interrupts in-flight Send/Recv.
//
// Pings also carry the sender's latest step timings, so the same plane
// doubles as straggler telemetry: the synchronous step is gated by its
// slowest participant (the S-SGD DAG model), and Monitor.Report lets
// every rank attribute the barrier wait without moving a single byte
// over the data mesh — the control links have their own sockets and
// their own byte counter (ControlBytes), keeping the data fabric's
// accounting, and therefore the performance model's TCP byte parity,
// untouched.
//
// The package is deliberately free of repro dependencies: it speaks
// net.Conn only, so it can monitor any mesh the rendezvous (or a test)
// hands it.
package health

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultInterval is the heartbeat period when Config.Interval is zero.
const DefaultInterval = 500 * time.Millisecond

// DefaultPhi is the phi-accrual suspicion threshold when Config.Phi is
// zero — the value Akka and Cassandra default to.
const DefaultPhi = 8.0

// defaultTimeoutIntervals is the hard deadline, in heartbeat intervals,
// when Config.Timeout is zero.
const defaultTimeoutIntervals = 8

// Config tunes the health plane.
type Config struct {
	// Interval is the heartbeat period (default DefaultInterval). In a
	// cluster the coordinator's value governs the whole session — it is
	// broadcast in the rendezvous welcome so every rank agrees.
	Interval time.Duration
	// Timeout is the hard silence deadline after which a peer is
	// declared dead regardless of the phi statistics (default
	// 8×Interval). The cluster's abort guarantee — every survivor
	// unblocks within 2×Timeout of a death — is stated against it.
	Timeout time.Duration
	// Phi is the accrual-detector suspicion threshold (default
	// DefaultPhi). Higher tolerates more jitter before declaring death;
	// the hard Timeout applies regardless.
	Phi float64
	// Disable turns the health plane off: no control links, no
	// heartbeats, no failure detection — the pre-health behaviour where
	// a dead peer blocks the survivors until transport errors surface.
	Disable bool
}

// Resolved returns the config with defaults filled in. Interval and
// Timeout are rounded to whole milliseconds — the granularity the
// rendezvous welcome transports them at — so the coordinator's own
// monitor and every worker's provably run identical settings; a
// sub-millisecond interval rounds up to 1ms rather than truncating to
// "disabled" on the wire.
func (c Config) Resolved() Config {
	if c.Disable {
		return Config{Disable: true}
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Interval = c.Interval.Round(time.Millisecond); c.Interval < time.Millisecond {
		c.Interval = time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = defaultTimeoutIntervals * c.Interval
	}
	if c.Timeout = c.Timeout.Round(time.Millisecond); c.Timeout < c.Interval {
		c.Timeout = c.Interval
	}
	if c.Phi <= 0 {
		c.Phi = DefaultPhi
	}
	return c
}

// ErrPeerDead is the verdict every surviving rank observes when the
// health plane declares a peer dead: the same typed error, whether the
// local detector reached the verdict or an abort broadcast delivered
// it. It is what interrupted Send/Recv calls on the data mesh return
// after the abort, and what Trainer.Run surfaces.
type ErrPeerDead struct {
	// Rank is the dead peer.
	Rank int
	// LastSeen is when the declaring rank last heard from it.
	LastSeen time.Time
}

// Error implements error.
func (e ErrPeerDead) Error() string {
	if e.LastSeen.IsZero() {
		return fmt.Sprintf("health: rank %d declared dead", e.Rank)
	}
	return fmt.Sprintf("health: rank %d declared dead (last heartbeat %s ago)",
		e.Rank, time.Since(e.LastSeen).Round(time.Millisecond))
}

// StepReport is one rank's timing of its latest completed training
// step. Reports ride on heartbeat pings, so every rank holds a
// slightly stale copy of every peer's timings — the data behind
// straggler attribution.
type StepReport struct {
	// Step is the 1-based index of the completed step (0 = none yet).
	Step int64
	// Compute is the forward+backward wall time of that step.
	Compute time.Duration
	// Exchange is the gradient-exchange wall time of that step.
	Exchange time.Duration
}

// Total returns the step's full wall time.
func (r StepReport) Total() time.Duration { return r.Compute + r.Exchange }

// link is the control connection to one peer.
type link struct {
	conn net.Conn
	// wmu serialises ping, abort and bye writes on the conn.
	wmu sync.Mutex
	det *Detector
}

// Monitor runs the health plane for one rank: heartbeat senders and
// readers per peer, the failure detector, the coordinated abort, and
// the straggler-report exchange. Build it with NewMonitor over the
// control links the rendezvous established, register verdict handlers
// with OnVerdict, then Start it. The monitor owns the connections and
// closes them on Close.
type Monitor struct {
	local, world int
	cfg          Config
	links        []*link

	mu       sync.Mutex
	handlers []func(error)
	verdict  error
	reports  []StepReport
	known    []bool
	departed []bool
	started  bool
	closing  bool
	// teleBuf holds the encoded pending telemetry message (header and
	// all); teleSeq identifies it so each sendLoop ships a given
	// snapshot to its peer exactly once. teleSnaps/teleKnown mirror
	// reports/known for the richer telemetry payloads.
	teleBuf   []byte
	teleSeq   uint64
	teleSnaps []TelemetrySnapshot
	teleKnown []bool

	dead  chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
	seq   atomic.Uint64
	bytes atomic.Int64
	// beat is the optional heartbeat observer (see OnHeartbeat) — an
	// atomic.Pointer so the per-ping path never takes mu for it.
	beat atomic.Pointer[func(peer int, gap time.Duration)]
	// tele is the optional telemetry observer (see OnTelemetry), same
	// discipline as beat.
	tele atomic.Pointer[func(peer int, s TelemetrySnapshot)]
	// bcast tracks in-flight abort-broadcast writes so Close can wait
	// for them (bounded by the write deadline) before cutting the
	// links: an elastic survivor closes its monitor moments after the
	// verdict, and a broadcast raced away by the teardown would leave
	// a slower peer to misread this rank's EOF as a second death.
	bcast sync.WaitGroup
}

// NewMonitor wraps the per-peer control connections of one rank into a
// monitor. conns must have length world with a non-nil connection for
// every peer and nil at index local; cfg is resolved with defaults.
// The monitor takes ownership of the connections.
func NewMonitor(local, world int, conns []net.Conn, cfg Config) (*Monitor, error) {
	if world <= 1 {
		return nil, fmt.Errorf("health: a monitor needs at least one peer, world is %d", world)
	}
	if local < 0 || local >= world {
		return nil, fmt.Errorf("health: local rank %d outside world of %d", local, world)
	}
	if len(conns) != world {
		return nil, fmt.Errorf("health: monitor wants %d connections, got %d", world, len(conns))
	}
	cfg = cfg.Resolved()
	if cfg.Disable {
		return nil, fmt.Errorf("health: monitor built with a disabled config")
	}
	m := &Monitor{
		local:     local,
		world:     world,
		cfg:       cfg,
		links:     make([]*link, world),
		reports:   make([]StepReport, world),
		known:     make([]bool, world),
		departed:  make([]bool, world),
		teleSnaps: make([]TelemetrySnapshot, world),
		teleKnown: make([]bool, world),
		dead:      make(chan struct{}),
		stop:      make(chan struct{}),
	}
	for p, c := range conns {
		if p == local {
			if c != nil {
				return nil, fmt.Errorf("health: rank %d must not monitor itself", local)
			}
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("health: rank %d is missing the control link to rank %d", local, p)
		}
		m.links[p] = &link{conn: c}
	}
	return m, nil
}

// Config returns the resolved configuration the monitor runs under.
func (m *Monitor) Config() Config { return m.cfg }

// OnVerdict registers a handler invoked exactly once with the death
// verdict (an ErrPeerDead). Handlers registered after the verdict are
// invoked immediately. The cluster registers comm.RemoteFabric.Abort
// here; applications can register their own via lpsgd.WithHealthHandler.
func (m *Monitor) OnVerdict(fn func(error)) {
	if fn == nil {
		return
	}
	m.mu.Lock()
	if v := m.verdict; v != nil {
		m.mu.Unlock()
		fn(v)
		return
	}
	m.handlers = append(m.handlers, fn)
	m.mu.Unlock()
}

// Dead returns a channel closed once a death verdict is reached (by
// the local detector or an abort broadcast). By the time it is closed,
// every registered verdict handler has run.
func (m *Monitor) Dead() <-chan struct{} { return m.dead }

// Verdict returns the death verdict, or nil while every peer is alive.
func (m *Monitor) Verdict() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.verdict
}

// ControlBytes returns the bytes this rank has written to the control
// plane. It is accounted separately from the data mesh on purpose: the
// fabric's TotalBytes — and the performance model's byte parity with it
// — must not move when the health plane is on.
func (m *Monitor) ControlBytes() int64 { return m.bytes.Load() }

// OnHeartbeat registers an observer invoked on every heartbeat received
// from a peer with the gap since that peer's previous heartbeat (its
// RTT-plus-jitter signal). At most one observer is active; nil detaches
// it. The package stays free of repro dependencies — observability
// wiring happens in the caller (repro/parallel feeds an obs histogram).
func (m *Monitor) OnHeartbeat(fn func(peer int, gap time.Duration)) {
	if fn == nil {
		m.beat.Store(nil)
		return
	}
	m.beat.Store(&fn)
}

// Phi returns the failure detector's current suspicion level for a
// peer: 0 before Start (or for the local rank and departed peers),
// rising as the peer's heartbeats grow overdue (see Detector.Phi).
func (m *Monitor) Phi(rank int) float64 {
	if rank < 0 || rank >= m.world || rank == m.local {
		return 0
	}
	m.mu.Lock()
	started := m.started
	gone := m.departed[rank]
	m.mu.Unlock()
	if !started || gone {
		return 0
	}
	l := m.links[rank]
	if l == nil || l.det == nil {
		return 0
	}
	return l.det.Phi(time.Now())
}

// ReportStep records the local rank's latest step timing; the next
// heartbeat to every peer carries it.
func (m *Monitor) ReportStep(r StepReport) {
	m.mu.Lock()
	m.reports[m.local] = r
	m.known[m.local] = true
	m.mu.Unlock()
}

// Report returns the latest step timing known for a rank — the local
// rank's own report, or the copy the peer's most recent heartbeat
// carried — and whether one exists yet.
func (m *Monitor) Report(rank int) (StepReport, bool) {
	if rank < 0 || rank >= m.world {
		return StepReport{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reports[rank], m.known[rank]
}

// Straggler returns the rank whose latest reported step took the
// longest wall time, with its report. ok is false until at least one
// report exists.
func (m *Monitor) Straggler() (rank int, r StepReport, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rank = -1
	for p := 0; p < m.world; p++ {
		if !m.known[p] {
			continue
		}
		if !ok || m.reports[p].Total() > r.Total() {
			rank, r, ok = p, m.reports[p], true
		}
	}
	return rank, r, ok
}

// ReportTelemetry records the local rank's latest convergence snapshot.
// Each peer's next heartbeat cycle ships it once, right behind the
// ping, over the same control socket (bytes under ControlBytes); the
// local OnTelemetry observer — if any — sees it immediately, so a hub
// aggregates local and remote ranks through one attach point. A
// snapshot that violates the wire bounds is rejected, not truncated.
func (m *Monitor) ReportTelemetry(s TelemetrySnapshot) error {
	m.mu.Lock()
	buf, err := encodeTelemetry(m.teleBuf, m.local, s)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.teleBuf = buf
	m.teleSeq++
	m.teleSnaps[m.local] = s
	m.teleKnown[m.local] = true
	m.mu.Unlock()
	if fn := m.tele.Load(); fn != nil {
		(*fn)(m.local, s)
	}
	return nil
}

// OnTelemetry registers an observer invoked for every telemetry
// snapshot: the local rank's own (synchronously from ReportTelemetry)
// and every peer's (from that peer's read loop). At most one observer
// is active; nil detaches it. Like OnHeartbeat, the package stays free
// of repro dependencies — the cluster telemetry hub attaches here.
func (m *Monitor) OnTelemetry(fn func(peer int, s TelemetrySnapshot)) {
	if fn == nil {
		m.tele.Store(nil)
		return
	}
	m.tele.Store(&fn)
}

// Telemetry returns the latest convergence snapshot known for a rank —
// the local rank's own, or the copy its most recent telemetry message
// carried — and whether one exists yet.
func (m *Monitor) Telemetry(rank int) (TelemetrySnapshot, bool) {
	if rank < 0 || rank >= m.world {
		return TelemetrySnapshot{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.teleSnaps[rank], m.teleKnown[rank]
}

// Start launches the heartbeat senders, the per-peer readers and the
// detector sweep. It may be called once.
func (m *Monitor) Start() {
	m.mu.Lock()
	if m.started || m.closing {
		m.mu.Unlock()
		return
	}
	// Detectors are created before started is published (still under
	// mu), so Phi — which checks started first — never observes a nil
	// detector on a started monitor.
	now := time.Now()
	for _, l := range m.links {
		if l != nil {
			l.det = NewDetector(m.cfg.Timeout, m.cfg.Phi, now)
		}
	}
	m.started = true
	m.mu.Unlock()
	for p, l := range m.links {
		if l == nil {
			continue
		}
		m.wg.Add(2)
		go m.sendLoop(p, l)
		go m.readLoop(p, l)
	}
	m.wg.Add(1)
	go m.checkLoop()
}

// sendLoop pings one peer every Interval, piggybacking the latest local
// step report — and, when ReportTelemetry has published a snapshot this
// peer has not seen, ships that snapshot right behind the ping.
func (m *Monitor) sendLoop(peer int, l *link) {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	var buf, teleScratch []byte
	var teleSent uint64
	for {
		select {
		case <-m.stop:
			return
		case <-m.dead:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		r := m.reports[m.local]
		var tele []byte
		teleSeq := m.teleSeq
		if teleSeq != teleSent && len(m.teleBuf) > 0 {
			tele = append(teleScratch[:0], m.teleBuf...)
			teleScratch = tele
		}
		m.mu.Unlock()
		buf = encodePing(buf, m.local, m.seq.Add(1), r)
		// A write failure here is not a verdict by itself — the reader's
		// EOF or the detector's silence deadline decides — but there is
		// no point pinging a broken link any faster than the ticker.
		m.write(l, buf) //lint:allow commerr a failed ping is not a verdict; the read loop and silence deadline decide
		if tele != nil && m.write(l, tele) {
			teleSent = teleSeq
		}
	}
}

// write sends one control message on a link, bounded by the hard
// timeout so a wedged control conn cannot hang its sender goroutine.
func (m *Monitor) write(l *link, buf []byte) bool {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.conn.SetWriteDeadline(time.Now().Add(m.cfg.Timeout))
	n, err := l.conn.Write(buf)
	m.bytes.Add(int64(n))
	return err == nil
}

// readLoop consumes one peer's control stream: pings feed the detector
// and the report table, an abort adopts the broadcast verdict, a bye
// marks the peer cleanly departed, and an unexpected stream error is
// itself an immediate death verdict (a SIGKILLed process closes its
// sockets long before any silence deadline fires).
func (m *Monitor) readLoop(peer int, l *link) {
	defer m.wg.Done()
	for {
		msg, err := readMessage(l.conn)
		if err != nil {
			m.mu.Lock()
			closing := m.closing
			gone := m.departed[peer]
			m.mu.Unlock()
			if closing || gone {
				return
			}
			m.declareDead(peer, l.det.LastSeen())
			return
		}
		switch msg.Kind {
		case kindPing:
			now := time.Now()
			if fn := m.beat.Load(); fn != nil {
				(*fn)(peer, now.Sub(l.det.LastSeen()))
			}
			l.det.Observe(now)
			if msg.HasSteps {
				m.mu.Lock()
				m.reports[peer] = msg.Report
				m.known[peer] = true
				m.mu.Unlock()
			}
		case kindAbort:
			m.adoptVerdict(msg.Dead, time.Unix(0, msg.LastSeenNano))
			return
		case kindTelemetry:
			// HasTelemetry is false for a skipped snapshot version — a
			// newer peer's richer telemetry is ignored, never fatal.
			if msg.HasTelemetry {
				m.mu.Lock()
				m.teleSnaps[peer] = msg.Telemetry
				m.teleKnown[peer] = true
				m.mu.Unlock()
				if fn := m.tele.Load(); fn != nil {
					(*fn)(peer, msg.Telemetry)
				}
			}
		case kindBye:
			m.mu.Lock()
			m.departed[peer] = true
			m.mu.Unlock()
		}
	}
}

// checkLoop sweeps the detectors. The sweep period divides the hard
// deadline so a silent peer is declared within Timeout plus one sweep.
func (m *Monitor) checkLoop() {
	defer m.wg.Done()
	period := m.cfg.Interval
	if p := m.cfg.Timeout / 4; p < period {
		period = p
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.dead:
			return
		case <-ticker.C:
		}
		now := time.Now()
		for p, l := range m.links {
			if l == nil {
				continue
			}
			m.mu.Lock()
			gone := m.departed[p]
			m.mu.Unlock()
			if gone {
				continue
			}
			if l.det.Suspect(now) {
				m.declareDead(p, l.det.LastSeen())
				return
			}
		}
	}
}

// declareDead reaches a local death verdict: record it, broadcast the
// abort to every other survivor, run the handlers, and release every
// Dead() waiter. Only the first verdict wins.
func (m *Monitor) declareDead(rank int, lastSeen time.Time) {
	m.settle(rank, lastSeen, true)
}

// adoptVerdict installs a verdict delivered by a peer's abort
// broadcast. No re-broadcast: the declaring rank already told everyone,
// and each survivor's own detector still covers the case where the
// declarer died mid-broadcast.
func (m *Monitor) adoptVerdict(rank int, lastSeen time.Time) {
	m.settle(rank, lastSeen, false)
}

func (m *Monitor) settle(rank int, lastSeen time.Time, broadcast bool) {
	m.mu.Lock()
	if m.verdict != nil || m.closing {
		m.mu.Unlock()
		return
	}
	verdict := ErrPeerDead{Rank: rank, LastSeen: lastSeen}
	m.verdict = verdict
	handlers := m.handlers
	m.handlers = nil
	var targets []*link
	if broadcast {
		for p, l := range m.links {
			if l == nil || p == rank || m.departed[p] {
				continue
			}
			targets = append(targets, l)
		}
		// The Add happens under the same lock that guards closing, so a
		// concurrent Close either sees closing set here first (and this
		// settle returns early above) or reaches its bcast.Wait only
		// after the counter covers every pending write — never an Add
		// racing a Wait.
		m.bcast.Add(len(targets))
	}
	m.mu.Unlock()

	if broadcast {
		// Concurrent: a wedged control link must not delay the local
		// abort (or the broadcast to healthy peers) by its write
		// deadline. The writes are tracked, not fire-and-forget — Close
		// waits for them before cutting the links, so a survivor that
		// tears its plane down immediately after the verdict (the
		// elastic rejoin path) cannot cut off the broadcast that tells
		// slower peers who actually died.
		buf := encodeAbort(nil, m.local, rank, lastSeen.UnixNano())
		for _, l := range targets {
			go func(l *link) {
				defer m.bcast.Done()
				m.write(l, buf) //lint:allow commerr abort broadcast is best-effort per link; peers also have their own deadlines
			}(l)
		}
	}
	// Handlers run before Dead() closes, so a waiter woken by the
	// channel already sees the fabric aborted.
	for _, fn := range handlers {
		fn(verdict)
	}
	close(m.dead)
}

// Kill severs the control links abruptly — no parting bye — so every
// peer's monitor observes exactly what a SIGKILLed process would
// produce: sockets dropping mid-stream, followed by a death verdict.
// It exists for in-process fault-injection (the elastic-rejoin tests
// simulate a rank death without forking an OS process); production
// shutdown paths should use Close, whose bye distinguishes departure
// from death.
func (m *Monitor) Kill() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return
	}
	m.closing = true
	m.mu.Unlock()
	close(m.stop)
	for _, l := range m.links {
		if l != nil {
			l.conn.Close()
		}
	}
	m.wg.Wait()
}

// Close shuts the health plane down cleanly: a bye is sent to every
// peer (so their monitors mark this rank departed instead of dead),
// the control links are closed, and the loops are joined. Close is
// idempotent and never declares a verdict of its own.
//
// The bye goes out even when this monitor already holds a death
// verdict: in an elastic session the survivors tear their planes down
// to rebuild them at the rejoin barrier, and a survivor's sockets
// vanishing without a bye would read as a second death on any peer
// that has not reached its own verdict yet — making it blame a live
// rank and poisoning the repair. With byes unconditional, the only
// EOF-without-bye a monitor can observe belongs to a process that
// actually died (which is also why Kill, the crash injector, is the
// one path that skips them). Writes to already-dead links fail fast
// and are ignored; wedged ones are bounded by the write deadline.
func (m *Monitor) Close() error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	started := m.started
	m.mu.Unlock()
	close(m.stop)
	// An abort broadcast may still be in flight; it must reach the
	// survivors before this rank's sockets vanish (bounded by the
	// write deadline).
	m.bcast.Wait()
	if started {
		// Byes go out concurrently, like the abort broadcast: one wedged
		// control link must bound Close by a single write deadline, not
		// world-1 of them.
		bye := encodeBye(nil, m.local)
		var byes sync.WaitGroup
		for _, l := range m.links {
			if l == nil {
				continue
			}
			byes.Add(1)
			go func(l *link) {
				defer byes.Done()
				m.write(l, bye) //lint:allow commerr parting bye is best-effort; a lost one degrades to death detection, not corruption
			}(l)
		}
		byes.Wait()
	}
	for _, l := range m.links {
		if l != nil {
			l.conn.Close()
		}
	}
	m.wg.Wait()
	return nil
}
