// Command lpsgd-trace converts a live step-phase trace — the JSONL a
// training run's obs.Tracer emits via -trace-out or the /trace
// endpoint — into a sim-comparable timeline and, given a scenario,
// diffs the two: per-phase time-share deltas (compute, quantisation,
// communication, barrier blocking) and whether the live run and the
// discrete-event simulator blame the same straggler rank.
//
// Examples:
//
//	lpsgd-train -workers 4 -trace-out trace.jsonl ...
//	lpsgd-trace -live trace.jsonl
//	lpsgd-trace -live trace.jsonl -scenario sim/testdata/hetero_straggler_64.json
//
// Without -scenario the command prints the aggregated live timeline
// (per-rank phase totals and gating counts). With -scenario it runs
// the scenario through the simulator and prints the overlay report.
//
// Exit codes:
//
//	0  success; with -scenario, the straggler attributions agree
//	1  the overlay was built but live and simulated attribution
//	   disagree (or the simulation failed at run time)
//	2  usage error: bad flags, unreadable trace, bad scenario file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/sim"
)

func main() {
	var (
		live     = flag.String("live", "", "JSONL span trace from a live run (obs.Tracer sink or /trace endpoint)")
		scenario = flag.String("scenario", "", "JSON scenario to simulate and diff the live trace against (sim.Scenario)")
		seed     = flag.Uint64("seed", 0, "override the scenario's seed (0 keeps the file's)")
	)
	flag.Parse()

	if *live == "" {
		fmt.Fprintln(os.Stderr, "lpsgd-trace: -live is required (a JSONL trace file)")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*live)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tl, err := sim.ReadLiveTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *scenario == "" {
		if err := tl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sc, err := sim.LoadScenario(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	res, err := sim.RunScenario(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ov, err := sim.BuildOverlay(tl, res)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := ov.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !ov.Agree {
		os.Exit(1)
	}
}
