// Command lpsgd-train runs real quantised data-parallel training on one
// of the synthetic tasks and reports accuracy per epoch — the
// reproduction's equivalent of launching a CNTK training job with a
// chosen gradient precision.
//
// Examples:
//
//	lpsgd-train -task image -codec qsgd4 -workers 8 -epochs 20
//	lpsgd-train -task sequence -codec 1bit -workers 2 -nccl
//	lpsgd-train -task image -policy "qsgd4b512;*.b=32bit" -workers 4
//
// -policy accepts the full precision-policy grammar (quant.ParsePolicy):
// base codec, small-matrix exemption target, and per-tensor pattern
// rules; it supersedes -codec when both are given. -save writes the
// trained model as an nn checkpoint and -load warm-starts from one; in
// cluster mode the same checkpoint is loaded by every forked rank, so
// the replica invariant holds from the first exchange.
//
// With -cluster N the run becomes a single-machine multi-process smoke
// test of the cluster runtime: this process is rank 0 and coordinator,
// and it forks N−1 copies of itself as worker processes that join the
// rendezvous, negotiate the codec, and train over the dialled TCP
// mesh (for real multi-machine runs, launch cmd/lpsgd-worker on each
// host instead):
//
//	lpsgd-train -task image -codec qsgd4 -cluster 3 -epochs 6
//
// -metrics-addr serves the observability plane over HTTP (/metrics in
// Prometheus text format, /debug/vars, /debug/pprof, /trace as JSONL)
// and -trace-out appends the step-phase trace to a file for offline
// comparison against the simulator via cmd/lpsgd-trace. Neither flag
// is forwarded to forked cluster workers (they would collide on the
// port or interleave in the file); rank 0's plane observes its own
// ranks only.
//
// -telemetry-every N samples convergence telemetry (step loss,
// per-tensor gradient norms, live quantisation RMSE and compression
// of the negotiated policy) every N steps. Unlike the plane flags it
// IS forwarded to forked workers: each rank broadcasts its snapshots
// over the heartbeat control links, rank 0 aggregates the whole
// cluster, and with -metrics-addr the view is served at
// /cluster/metrics and /cluster/status. Watch it live:
//
//	lpsgd-train -task image -codec qsgd4 -cluster 3 \
//	    -telemetry-every 10 -metrics-addr 127.0.0.1:9090 &
//	lpsgd-top -addr 127.0.0.1:9090
//
// Cluster runs carry a health plane: -heartbeat/-heartbeat-timeout
// tune the failure detector (a dead rank aborts every survivor with a
// typed verdict instead of hanging the mesh), and -step-deadline
// bounds one synchronous step's wall time. With -rejoin-window the
// cluster is additionally elastic: when a forked rank dies, the
// supervisor in this process re-forks it with the internal
// -cluster-rejoin flag, the replacement re-enters the session through
// the rendezvous rejoin barrier and receives the training state from a
// surviving donor, and the run completes as if nothing happened. See
// cmd/lpsgd-worker for the exit-code contract external supervisors can
// build on.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"repro/cluster"
	"repro/elastic"
	"repro/health"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/lpsgd"
	"repro/obs"
)

func main() {
	var (
		task    = flag.String("task", "image", "task: image or sequence")
		codec   = flag.String("codec", "32bit", "gradient codec (quant.Parse grammar): 32bit, qsgd2/4/8/16, qsgd4b512, 1bit, 1bit*64, topk0.01, ...")
		policy  = flag.String("policy", "", "precision policy (quant.ParsePolicy grammar), e.g. 'qsgd4b512;minfrac=0.95;*.b=32bit'; supersedes -codec")
		workers = flag.Int("workers", 4, "simulated GPU count")
		epochs  = flag.Int("epochs", 12, "training epochs")
		batch   = flag.Int("batch", 64, "global minibatch size")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		seed    = flag.Uint64("seed", 17, "random seed")
		useNCCL = flag.Bool("nccl", false, "use the NCCL ring instead of MPI reduce-and-broadcast")
		trainN  = flag.Int("train-samples", 768, "training set size")
		testN   = flag.Int("test-samples", 384, "test set size")
		saveTo  = flag.String("save", "", "write a checkpoint of the trained model to this file")
		loadFrm = flag.String("load", "", "initialise weights from this checkpoint before training (cluster mode: every rank loads it)")

		clusterN     = flag.Int("cluster", 0, "train as a cluster of this many worker processes (this process is rank 0; it forks the rest)")
		clusterAddr  = flag.String("cluster-addr", "", "internal: rendezvous address of the parent coordinator (marks a forked worker)")
		clusterRank  = flag.Int("cluster-rank", 0, "internal: rank of a forked worker")
		clusterRejo  = flag.Bool("cluster-rejoin", false, "internal: this forked worker replaces a dead rank of the running session")
		heartbeat    = flag.Duration("heartbeat", health.DefaultInterval, "cluster mode: heartbeat interval of the health plane (0 disables failure detection)")
		hbTimeout    = flag.Duration("heartbeat-timeout", 0, "cluster mode: silence after which a peer is declared dead (0 = 8x the heartbeat interval)")
		stepWait     = flag.Duration("step-deadline", 0, "abort if one synchronous step exceeds this wall time (0 = unbounded)")
		rejoinWindow = flag.Duration("rejoin-window", 0, "cluster mode: make the session elastic — hold a rejoin barrier open this long after a rank death and re-fork the dead rank (0 disables)")
		maxRejoins   = flag.Int("max-rejoins", 0, "cluster mode: rank deaths the supervisor repairs before giving up (0 = default)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/vars, /debug/pprof and /trace on this address (e.g. 127.0.0.1:9090); not forwarded to forked workers")
		traceOut    = flag.String("trace-out", "", "append the step-phase trace as JSONL to this file (convert/diff with lpsgd-trace); not forwarded to forked workers")
		teleEvery   = flag.Int("telemetry-every", 0, "sample convergence telemetry (loss, gradient norms, live quantisation error) every N steps; forwarded to forked cluster workers, aggregated at /cluster/metrics and /cluster/status under -metrics-addr, watchable with lpsgd-top (0 = off)")
	)
	flag.Parse()

	model, train, test, err := harness.Task(*task, *trainN, *testN, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	primitive := lpsgd.MPI
	if *useNCCL {
		primitive = lpsgd.NCCL
	}
	// A bare codec name is a valid policy, so one option covers both
	// flags; -policy wins when both are given.
	policySpec := *policy
	if policySpec == "" {
		policySpec = *codec
	}
	opts := []lpsgd.Option{
		lpsgd.WithPolicy(policySpec),
		lpsgd.WithWorkers(*workers),
		lpsgd.WithPrimitive(primitive),
		lpsgd.WithBatchSize(*batch),
		lpsgd.WithEpochs(*epochs),
		lpsgd.WithLearningRate(float32(*lr)),
		lpsgd.WithSeed(*seed),
		lpsgd.WithStepDeadline(*stepWait),
	}
	if *teleEvery < 0 {
		fmt.Fprintln(os.Stderr, "lpsgd-train: -telemetry-every must not be negative")
		os.Exit(2)
	}
	var teleHub *cluster.TelemetryHub
	if *teleEvery > 0 {
		opts = append(opts, lpsgd.WithTelemetry(*teleEvery))
		// The hub aggregates every rank's snapshots into the
		// /cluster/{metrics,status} view; forked workers ship theirs
		// over the control plane, so only this process needs one. The
		// negotiated policy is stamped once the session settles.
		teleHub = cluster.NewTelemetryHub(max(*clusterN, 1), "")
		opts = append(opts, lpsgd.WithTelemetryObserver(teleHub.Observe))
	}

	// Observability plane: one registry+tracer pair per process. The
	// tracer ring is sized for the /trace endpoint; -trace-out streams
	// every span regardless of ring capacity.
	var obsTracer *obs.Tracer
	if *metricsAddr != "" || *traceOut != "" {
		reg := obs.NewRegistry()
		obsTracer = obs.NewTracer(1 << 16)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			obsTracer.SetSink(f)
		}
		opts = append(opts, lpsgd.WithMetrics(reg), lpsgd.WithTracer(obsTracer))
		if *metricsAddr != "" {
			var extra []obs.Endpoint
			if teleHub != nil {
				extra = teleHub.Endpoints()
			}
			srv, err := obs.Serve(*metricsAddr, reg, obsTracer, extra...)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "observability plane on http://%s (/metrics, /debug/pprof, /trace)\n", srv.Addr())
		}
		defer obsTracer.Close()
	}

	// Cluster smoke mode: rank 0 coordinates on an ephemeral port and
	// forks the other ranks as copies of this binary; forked workers
	// recognise themselves by -cluster-addr and dial back in. All ranks
	// train the same task with the same seed, so the mesh replicas stay
	// bit-identical.
	isChild := *clusterAddr != ""
	var restore *elastic.Snapshot
	var super *reforker
	switch {
	case isChild && *clusterRejo:
		// A re-forked replacement: claim the dead rank's slot in the
		// running session and receive the training state from a donor.
		// The dial budget must outlast the survivors' failure detection
		// (the barrier only opens once they reach their verdict) plus
		// the window itself — the 30s default would silently defeat a
		// long window under slow detection.
		hb := health.Config{Interval: *heartbeat, Timeout: *hbTimeout}.Resolved()
		sess, snap, err := cluster.Rejoin(cluster.Config{
			Addr: *clusterAddr, Rank: *clusterRank, World: *clusterN,
			Accept:  []string{policySpec},
			Timeout: hb.Timeout + elastic.Config{Enable: true, RejoinWindow: *rejoinWindow}.Resolved().RejoinWindow + 30*time.Second,
			Health:  hb,
			Elastic: elastic.Config{
				Enable: true, RejoinWindow: *rejoinWindow, MaxRejoins: *maxRejoins,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(5)
		}
		fmt.Fprintf(os.Stderr, "rank %d rejoined (generation %d, resuming at step %d)\n",
			sess.Rank(), sess.Generation(), snap.Step)
		restore = snap
		opts = append(opts, lpsgd.WithClusterSession(sess))
	case isChild:
		opts = append(opts,
			lpsgd.WithCluster(*clusterAddr, *clusterRank, *clusterN),
			lpsgd.WithHeartbeat(*heartbeat, *hbTimeout),
			lpsgd.WithElastic(*maxRejoins, *rejoinWindow))
	case *clusterN > 0:
		coord, err := cluster.NewCoordinator(cluster.Config{
			Addr: "127.0.0.1:0", World: *clusterN, Accept: []string{policySpec},
			Health: health.Config{
				Interval: *heartbeat,
				Timeout:  *hbTimeout,
				Disable:  *heartbeat == 0,
			},
			Elastic: elastic.Config{
				Enable:       *rejoinWindow > 0,
				RejoinWindow: *rejoinWindow,
				MaxRejoins:   *maxRejoins,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		childArgs := func(r int, rejoin bool) []string {
			args := []string{
				"-task", *task, "-policy", policySpec,
				"-epochs", strconv.Itoa(*epochs), "-batch", strconv.Itoa(*batch),
				"-lr", fmt.Sprint(*lr), "-seed", strconv.FormatUint(*seed, 10),
				"-train-samples", strconv.Itoa(*trainN), "-test-samples", strconv.Itoa(*testN),
				"-cluster", strconv.Itoa(*clusterN),
				"-cluster-addr", coord.Addr(), "-cluster-rank", strconv.Itoa(r),
				"-heartbeat", heartbeat.String(), "-heartbeat-timeout", hbTimeout.String(),
				"-step-deadline", stepWait.String(),
				"-rejoin-window", rejoinWindow.String(), "-max-rejoins", strconv.Itoa(*maxRejoins),
				"-telemetry-every", strconv.Itoa(*teleEvery),
			}
			if rejoin {
				args = append(args, "-cluster-rejoin")
			}
			if *loadFrm != "" && !rejoin {
				// Warm starts reach every rank; a rejoining replacement
				// gets its state from the session snapshot instead.
				args = append(args, "-load", *loadFrm)
			}
			// Every rank must run the same aggregation primitive.
			if *useNCCL {
				args = append(args, "-nccl")
			}
			return args
		}
		super = newReforker(exe, childArgs, *rejoinWindow > 0, *maxRejoins)
		for r := 1; r < *clusterN; r++ {
			if err := super.start(r, false); err != nil {
				fmt.Fprintf(os.Stderr, "fork rank %d: %v\n", r, err)
				os.Exit(1)
			}
		}
		sess, err := coord.Join()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts = append(opts, lpsgd.WithClusterSession(sess), lpsgd.WithElastic(*maxRejoins, *rejoinWindow))
	}

	trainer, err := lpsgd.NewTrainer(model, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer trainer.Close()
	if teleHub != nil {
		teleHub.SetPolicy(trainer.Policy().Name())
	}
	if restore != nil {
		if err := trainer.Restore(restore); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *loadFrm != "" {
		f, err := os.Open(*loadFrm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "load checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s\n", *loadFrm)
	}
	h, err := trainer.Run(train, test)
	if err != nil {
		obsTracer.Close() // flush -trace-out before the exit skips the defers
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.SaveCheckpoint(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "save checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *saveTo)
	}

	if isChild {
		// Forked workers share the parent's terminal; a one-line summary
		// keeps the parent's table readable.
		fmt.Printf("rank %d/%d: policy=%s final accuracy %.2f%%, %.1f MB sent by this rank\n",
			trainer.Rank(), trainer.World(), trainer.Policy().Name(),
			100*h.FinalAccuracy, float64(h.TotalWireBytes)/1e6)
		return
	}

	prim := "MPI"
	if *useNCCL {
		prim = "NCCL"
	}
	policyName := trainer.Policy().Name()
	world := *workers
	wireCol := "wire_MB"
	wireNote := ""
	if *clusterN > 0 {
		world = trainer.World()
		prim += fmt.Sprintf(", cluster of %d processes", *clusterN)
		// A cluster rank's byte counter sees its own sends only — the
		// other ranks' traffic lives in their processes — so the volume
		// is not comparable to the whole-fabric number of a
		// single-process run.
		wireCol = "rank0_wire_MB"
		wireNote = " sent by rank 0"
	}
	t := report.New(
		fmt.Sprintf("%s task, policy=%s, %d workers, %s", *task, policyName, world, prim),
		"epoch", "train_loss", "test_acc_%", "lr", wireCol, "elapsed")
	for _, e := range h.Epochs {
		acc := "-"
		if e.TestAccuracy >= 0 {
			acc = fmt.Sprintf("%.1f", 100*e.TestAccuracy)
		}
		t.Addf("%d\t%.4f\t%s\t%.4f\t%.1f\t%s",
			e.Epoch, e.TrainLoss, acc, e.LR, float64(e.WireBytes)/1e6, e.Elapsed.Round(1e6))
	}
	t.Note("final accuracy %.2f%%, best %.2f%%, total wire %.1f MB%s",
		100*h.FinalAccuracy, 100*h.BestAccuracy, float64(h.TotalWireBytes)/1e6, wireNote)
	t.Render(os.Stdout)

	if super != nil {
		if err := super.wait(); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}
}

// reforker supervises the forked worker ranks of a -cluster run: it
// waits on each child and — when the session is elastic — re-forks a
// rank that died abnormally with -cluster-rejoin, up to the configured
// budget, so a killed rank rejoins the session instead of sinking the
// whole run.
type reforker struct {
	exe     string
	args    func(rank int, rejoin bool) []string
	elastic bool

	mu      sync.Mutex
	wg      sync.WaitGroup
	budget  int
	failure error
}

func newReforker(exe string, args func(int, bool) []string, elasticOn bool, maxRejoins int) *reforker {
	budget := maxRejoins
	if budget == 0 {
		budget = elastic.DefaultMaxRejoins
	}
	return &reforker{exe: exe, args: args, elastic: elasticOn, budget: budget}
}

// start forks one rank and watches it from a goroutine.
func (s *reforker) start(rank int, rejoin bool) error {
	child := exec.Command(s.exe, s.args(rank, rejoin)...)
	child.Stdout = os.Stdout
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		err := child.Wait()
		if err == nil {
			return
		}
		// Only a rank that was killed by a signal is a candidate for
		// repair — that is the "process died, session still running"
		// signature. A child that exits with a code of its own (bad
		// flags, rendezvous rejection, training failure, a lost
		// session) has a real error to report, and re-forking it into
		// a rejoin barrier that does not exist would only bury it.
		var ee *exec.ExitError
		killed := errors.As(err, &ee) && ee.ExitCode() == -1
		s.mu.Lock()
		// A negative budget means unlimited repairs.
		refork := s.elastic && killed && s.budget != 0
		if refork && s.budget > 0 {
			s.budget--
		} else if !refork && s.failure == nil {
			s.failure = fmt.Errorf("cluster worker rank %d exited badly: %v", rank, err)
		}
		s.mu.Unlock()
		if refork {
			fmt.Fprintf(os.Stderr, "lpsgd-train: rank %d died (%v); re-forking it into the session\n", rank, err)
			if rerr := s.start(rank, true); rerr != nil {
				s.mu.Lock()
				if s.failure == nil {
					s.failure = fmt.Errorf("re-fork rank %d: %w", rank, rerr)
				}
				s.mu.Unlock()
			}
		}
	}()
	return nil
}

// wait blocks until every child (re-forks included) has exited and
// returns the first unrepaired failure.
func (s *reforker) wait() error {
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}
