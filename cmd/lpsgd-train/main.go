// Command lpsgd-train runs real quantised data-parallel training on one
// of the synthetic tasks and reports accuracy per epoch — the
// reproduction's equivalent of launching a CNTK training job with a
// chosen gradient precision.
//
// Examples:
//
//	lpsgd-train -task image -codec qsgd4 -workers 8 -epochs 20
//	lpsgd-train -task sequence -codec 1bit -workers 2 -nccl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/data"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/lpsgd"
)

func main() {
	var (
		task    = flag.String("task", "image", "task: image or sequence")
		codec   = flag.String("codec", "32bit", "gradient codec (quant.Parse grammar): 32bit, qsgd2/4/8/16, qsgd4b512, 1bit, 1bit*64, topk0.01, ...")
		workers = flag.Int("workers", 4, "simulated GPU count")
		epochs  = flag.Int("epochs", 12, "training epochs")
		batch   = flag.Int("batch", 64, "global minibatch size")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		seed    = flag.Uint64("seed", 17, "random seed")
		useNCCL = flag.Bool("nccl", false, "use the NCCL ring instead of MPI reduce-and-broadcast")
		trainN  = flag.Int("train-samples", 768, "training set size")
		testN   = flag.Int("test-samples", 384, "test set size")
		saveTo  = flag.String("save", "", "write a checkpoint of the trained model to this file")
		loadFrm = flag.String("load", "", "initialise weights from this checkpoint before training")
	)
	flag.Parse()

	var (
		model       lpsgd.BuildFunc
		train, test *data.Dataset
	)
	switch *task {
	case "image":
		train, test = data.MakeImages(data.ImageConfig{
			Classes: 10, Channels: 3, H: 12, W: 12,
			TrainN: *trainN, TestN: *testN, Noise: 2.0, Shift: true, Seed: *seed,
		})
		model = harness.ImageModel(10)
	case "sequence":
		train, test = data.MakeSequences(data.SequenceConfig{
			Classes: 6, Frames: 12, Features: 8,
			TrainN: *trainN, TestN: *testN, Noise: 1.0, Seed: *seed,
		})
		model = harness.SequenceModel(12, 8, 6)
	default:
		fmt.Fprintf(os.Stderr, "unknown task %q (want image or sequence)\n", *task)
		os.Exit(2)
	}

	primitive := lpsgd.MPI
	if *useNCCL {
		primitive = lpsgd.NCCL
	}
	trainer, err := lpsgd.NewTrainer(model,
		lpsgd.WithCodec(*codec),
		lpsgd.WithWorkers(*workers),
		lpsgd.WithPrimitive(primitive),
		lpsgd.WithBatchSize(*batch),
		lpsgd.WithEpochs(*epochs),
		lpsgd.WithLearningRate(float32(*lr)),
		lpsgd.WithSeed(*seed),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer trainer.Close()
	if *loadFrm != "" {
		f, err := os.Open(*loadFrm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "load checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s\n", *loadFrm)
	}
	h, err := trainer.Run(train, test)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.SaveCheckpoint(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "save checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *saveTo)
	}

	prim := "MPI"
	if *useNCCL {
		prim = "NCCL"
	}
	t := report.New(
		fmt.Sprintf("%s task, codec=%s, %d workers, %s", *task, *codec, *workers, prim),
		"epoch", "train_loss", "test_acc_%", "lr", "wire_MB", "elapsed")
	for _, e := range h.Epochs {
		acc := "-"
		if e.TestAccuracy >= 0 {
			acc = fmt.Sprintf("%.1f", 100*e.TestAccuracy)
		}
		t.Addf("%d\t%.4f\t%s\t%.4f\t%.1f\t%s",
			e.Epoch, e.TrainLoss, acc, e.LR, float64(e.WireBytes)/1e6, e.Elapsed.Round(1e6))
	}
	t.Note("final accuracy %.2f%%, best %.2f%%, total wire %.1f MB",
		100*h.FinalAccuracy, 100*h.BestAccuracy, float64(h.TotalWireBytes)/1e6)
	t.Render(os.Stdout)
}
