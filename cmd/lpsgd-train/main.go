// Command lpsgd-train runs real quantised data-parallel training on one
// of the synthetic tasks and reports accuracy per epoch — the
// reproduction's equivalent of launching a CNTK training job with a
// chosen gradient precision.
//
// Examples:
//
//	lpsgd-train -task image -codec qsgd4 -workers 8 -epochs 20
//	lpsgd-train -task sequence -codec 1bit -workers 2 -nccl
//	lpsgd-train -task image -policy "qsgd4b512;*.b=32bit" -workers 4
//
// -policy accepts the full precision-policy grammar (quant.ParsePolicy):
// base codec, small-matrix exemption target, and per-tensor pattern
// rules; it supersedes -codec when both are given.
//
// With -cluster N the run becomes a single-machine multi-process smoke
// test of the cluster runtime: this process is rank 0 and coordinator,
// and it forks N−1 copies of itself as worker processes that join the
// rendezvous, negotiate the codec, and train over the dialled TCP
// mesh (for real multi-machine runs, launch cmd/lpsgd-worker on each
// host instead):
//
//	lpsgd-train -task image -codec qsgd4 -cluster 3 -epochs 6
//
// Cluster runs carry a health plane: -heartbeat/-heartbeat-timeout
// tune the failure detector (a dead rank aborts every survivor with a
// typed verdict instead of hanging the mesh), and -step-deadline
// bounds one synchronous step's wall time. See cmd/lpsgd-worker for
// the exit-code contract supervisors can build on.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"

	"repro/cluster"
	"repro/health"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/lpsgd"
)

func main() {
	var (
		task    = flag.String("task", "image", "task: image or sequence")
		codec   = flag.String("codec", "32bit", "gradient codec (quant.Parse grammar): 32bit, qsgd2/4/8/16, qsgd4b512, 1bit, 1bit*64, topk0.01, ...")
		policy  = flag.String("policy", "", "precision policy (quant.ParsePolicy grammar), e.g. 'qsgd4b512;minfrac=0.95;*.b=32bit'; supersedes -codec")
		workers = flag.Int("workers", 4, "simulated GPU count")
		epochs  = flag.Int("epochs", 12, "training epochs")
		batch   = flag.Int("batch", 64, "global minibatch size")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		seed    = flag.Uint64("seed", 17, "random seed")
		useNCCL = flag.Bool("nccl", false, "use the NCCL ring instead of MPI reduce-and-broadcast")
		trainN  = flag.Int("train-samples", 768, "training set size")
		testN   = flag.Int("test-samples", 384, "test set size")
		saveTo  = flag.String("save", "", "write a checkpoint of the trained model to this file")
		loadFrm = flag.String("load", "", "initialise weights from this checkpoint before training")

		clusterN    = flag.Int("cluster", 0, "train as a cluster of this many worker processes (this process is rank 0; it forks the rest)")
		clusterAddr = flag.String("cluster-addr", "", "internal: rendezvous address of the parent coordinator (marks a forked worker)")
		clusterRank = flag.Int("cluster-rank", 0, "internal: rank of a forked worker")

		heartbeat = flag.Duration("heartbeat", health.DefaultInterval, "cluster mode: heartbeat interval of the health plane (0 disables failure detection)")
		hbTimeout = flag.Duration("heartbeat-timeout", 0, "cluster mode: silence after which a peer is declared dead (0 = 8x the heartbeat interval)")
		stepWait  = flag.Duration("step-deadline", 0, "abort if one synchronous step exceeds this wall time (0 = unbounded)")
	)
	flag.Parse()

	model, train, test, err := harness.Task(*task, *trainN, *testN, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	primitive := lpsgd.MPI
	if *useNCCL {
		primitive = lpsgd.NCCL
	}
	// A bare codec name is a valid policy, so one option covers both
	// flags; -policy wins when both are given.
	policySpec := *policy
	if policySpec == "" {
		policySpec = *codec
	}
	opts := []lpsgd.Option{
		lpsgd.WithPolicy(policySpec),
		lpsgd.WithWorkers(*workers),
		lpsgd.WithPrimitive(primitive),
		lpsgd.WithBatchSize(*batch),
		lpsgd.WithEpochs(*epochs),
		lpsgd.WithLearningRate(float32(*lr)),
		lpsgd.WithSeed(*seed),
		lpsgd.WithStepDeadline(*stepWait),
	}

	// Cluster smoke mode: rank 0 coordinates on an ephemeral port and
	// forks the other ranks as copies of this binary; forked workers
	// recognise themselves by -cluster-addr and dial back in. All ranks
	// train the same task with the same seed, so the mesh replicas stay
	// bit-identical.
	var children []*exec.Cmd
	isChild := *clusterAddr != ""
	if *clusterN > 0 && *loadFrm != "" {
		// The forked ranks build their replicas from the seed alone; a
		// checkpoint loaded into rank 0 only would break the replica
		// bit-identity the synchronous algorithm depends on.
		fmt.Fprintln(os.Stderr, "-load is not supported with -cluster: every rank must start from the same weights")
		os.Exit(2)
	}
	switch {
	case isChild:
		opts = append(opts,
			lpsgd.WithCluster(*clusterAddr, *clusterRank, *clusterN),
			lpsgd.WithHeartbeat(*heartbeat, *hbTimeout))
	case *clusterN > 0:
		coord, err := cluster.NewCoordinator(cluster.Config{
			Addr: "127.0.0.1:0", World: *clusterN, Accept: []string{policySpec},
			Health: health.Config{
				Interval: *heartbeat,
				Timeout:  *hbTimeout,
				Disable:  *heartbeat == 0,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for r := 1; r < *clusterN; r++ {
			args := []string{
				"-task", *task, "-policy", policySpec,
				"-epochs", strconv.Itoa(*epochs), "-batch", strconv.Itoa(*batch),
				"-lr", fmt.Sprint(*lr), "-seed", strconv.FormatUint(*seed, 10),
				"-train-samples", strconv.Itoa(*trainN), "-test-samples", strconv.Itoa(*testN),
				"-cluster", strconv.Itoa(*clusterN),
				"-cluster-addr", coord.Addr(), "-cluster-rank", strconv.Itoa(r),
				"-heartbeat", heartbeat.String(), "-heartbeat-timeout", hbTimeout.String(),
				"-step-deadline", stepWait.String(),
			}
			// Every rank must run the same aggregation primitive.
			if *useNCCL {
				args = append(args, "-nccl")
			}
			child := exec.Command(exe, args...)
			child.Stdout = os.Stdout
			child.Stderr = os.Stderr
			if err := child.Start(); err != nil {
				fmt.Fprintf(os.Stderr, "fork rank %d: %v\n", r, err)
				os.Exit(1)
			}
			children = append(children, child)
		}
		sess, err := coord.Join()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts = append(opts, lpsgd.WithClusterSession(sess))
	}

	trainer, err := lpsgd.NewTrainer(model, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer trainer.Close()
	if *loadFrm != "" {
		f, err := os.Open(*loadFrm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "load checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("resumed from %s\n", *loadFrm)
	}
	h, err := trainer.Run(train, test)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = trainer.SaveCheckpoint(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "save checkpoint: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint written to %s\n", *saveTo)
	}

	if isChild {
		// Forked workers share the parent's terminal; a one-line summary
		// keeps the parent's table readable.
		fmt.Printf("rank %d/%d: policy=%s final accuracy %.2f%%, %.1f MB sent by this rank\n",
			trainer.Rank(), trainer.World(), trainer.Policy().Name(),
			100*h.FinalAccuracy, float64(h.TotalWireBytes)/1e6)
		return
	}

	prim := "MPI"
	if *useNCCL {
		prim = "NCCL"
	}
	policyName := trainer.Policy().Name()
	world := *workers
	wireCol := "wire_MB"
	wireNote := ""
	if *clusterN > 0 {
		world = trainer.World()
		prim += fmt.Sprintf(", cluster of %d processes", *clusterN)
		// A cluster rank's byte counter sees its own sends only — the
		// other ranks' traffic lives in their processes — so the volume
		// is not comparable to the whole-fabric number of a
		// single-process run.
		wireCol = "rank0_wire_MB"
		wireNote = " sent by rank 0"
	}
	t := report.New(
		fmt.Sprintf("%s task, policy=%s, %d workers, %s", *task, policyName, world, prim),
		"epoch", "train_loss", "test_acc_%", "lr", wireCol, "elapsed")
	for _, e := range h.Epochs {
		acc := "-"
		if e.TestAccuracy >= 0 {
			acc = fmt.Sprintf("%.1f", 100*e.TestAccuracy)
		}
		t.Addf("%d\t%.4f\t%s\t%.4f\t%.1f\t%s",
			e.Epoch, e.TrainLoss, acc, e.LR, float64(e.WireBytes)/1e6, e.Elapsed.Round(1e6))
	}
	t.Note("final accuracy %.2f%%, best %.2f%%, total wire %.1f MB%s",
		100*h.FinalAccuracy, 100*h.BestAccuracy, float64(h.TotalWireBytes)/1e6, wireNote)
	t.Render(os.Stdout)

	for _, child := range children {
		if err := child.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "cluster worker exited badly: %v\n", err)
			os.Exit(1)
		}
	}
}
