// Command lpsgd-quant inspects the gradient codecs on random data:
// exact wire sizes, compression ratios, round-trip error and encoding
// throughput. Useful for understanding how bucket size and tensor shape
// drive the trade-offs the paper measures.
//
// Examples:
//
//	lpsgd-quant -n 1000000
//	lpsgd-quant -rows 3 -cols 100000      # the conv-kernel wire layout
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/report"
	"repro/quant"
	"repro/rng"
)

func main() {
	var (
		n    = flag.Int("n", 1<<20, "vector length (ignored when rows/cols given)")
		rows = flag.Int("rows", 0, "tensor rows (CNTK first dimension)")
		cols = flag.Int("cols", 0, "tensor cols (flattened remaining dims)")
		seed = flag.Uint64("seed", 1, "random seed")
		ext  = flag.Bool("ext", false, "include the extension codecs (2-norm/uniform/exponential QSGD, top-k)")
	)
	flag.Parse()

	shape := quant.Shape{Rows: *rows, Cols: *cols}
	if shape.Rows <= 0 || shape.Cols <= 0 {
		shape = quant.Shape{Rows: 1024, Cols: (*n + 1023) / 1024}
	}
	total := shape.Len()
	r := rng.New(*seed)
	src := make([]float32, total)
	for i := range src {
		src[i] = r.Norm(1)
	}
	dst := make([]float32, total)

	codecs := quant.PaperCodecs()
	if *ext {
		codecs = append(codecs, quant.ExtensionCodecs()...)
	}
	t := report.New(
		fmt.Sprintf("codec inspection: %d values, shape %s", total, shape),
		"codec", "wire_bytes", "ratio", "rmse", "encode_MB/s", "decode_MB/s")
	for _, c := range codecs {
		enc := c.NewEncoder(total, shape, *seed)
		start := time.Now()
		wire := enc.Encode(src)
		encDur := time.Since(start)
		start = time.Now()
		if err := c.Decode(wire, total, shape, dst); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		decDur := time.Since(start)
		var mse float64
		for i := range src {
			d := float64(src[i] - dst[i])
			mse += d * d
		}
		rawMB := float64(4*total) / 1e6
		t.Addf("%s\t%d\t%.2f\t%.4f\t%.0f\t%.0f",
			c.Name(), len(wire), quant.CompressionRatio(c, shape),
			math.Sqrt(mse/float64(total)),
			rawMB/encDur.Seconds(), rawMB/decDur.Seconds())
	}
	t.Note("ratio = raw float32 bytes / wire bytes for this shape; rmse is one-pass round-trip error")
	t.Render(os.Stdout)
}
