// Command lpsgd-worker is one rank of a multi-process training
// cluster: it joins the rendezvous, negotiates a precision policy with
// its peers, trains its shard of every batch over the dialled TCP
// mesh, and reports a digest of the final model so the launcher can
// verify that all ranks converged to bit-identical state.
//
// Rank 0 is the coordinator — it listens on -coordinator and prints
// the bound address (useful with port 0) before waiting for the other
// ranks:
//
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 0 -world 3 -accept qsgd4b512,1bit
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 1 -world 3 -accept qsgd4b512
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 2 -world 3 -accept qsgd4b512,topk0.01
//
// -accept takes full policy strings (quant.ParsePolicy grammar), so
// per-layer mixed-precision schemes negotiate like codecs do; -policy
// is shorthand for advertising one preferred policy ahead of the
// -accept list:
//
//	lpsgd-worker ... -policy "qsgd4b512;embedding=topk0.01" -accept qsgd4b512
//
// Every rank must be launched with the same -task, -seed, -batch,
// -epochs and -lr, or the replicas will not stay bit-identical. -save
// writes the trained model as an nn checkpoint; -load warm-starts from
// one (identical file on every rank — loading different weights per
// rank would break the replica invariant before the first exchange;
// a shape-mismatched checkpoint is rejected with a named error). The
// final stdout line is machine-readable (codec= carries the negotiated
// policy string):
//
//	rank=1 world=3 codec=qsgd4b512 final_loss=0.1234 final_acc=0.8750 model=<sha256>
//
// # Fault handling
//
// A health plane runs beside the mesh (see repro/health): heartbeats
// every -heartbeat over dedicated control links, a phi-or-deadline
// failure detector, and a coordinated abort so that when any rank dies
// every survivor unblocks with the same verdict instead of hanging.
// The coordinator's -heartbeat/-heartbeat-timeout govern the whole
// session; -heartbeat 0 on rank 0 turns the plane off. -step-deadline
// additionally bounds one synchronous step's wall time.
//
// # Elastic sessions
//
// With -rejoin-window set on the coordinator, a death verdict becomes
// recoverable (see repro/elastic): survivors quiesce at the next step
// barrier and hold a rejoin barrier open for the window, waiting for a
// replacement to claim the dead rank's slot. A supervisor reacting to
// the death relaunches the rank with the same flags plus -rejoin:
//
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 2 -world 3 -rejoin ...
//
// # Observability
//
// -metrics-addr serves this rank's observability plane over HTTP:
// /metrics (Prometheus text: wire and control bytes, per-peer link
// traffic, phi suspicion, step and phase histograms), /debug/vars,
// /debug/pprof, and /trace (the step-phase span ring as JSONL).
// -trace-out appends every span to a file; feed it to cmd/lpsgd-trace
// to diff the live timeline against the discrete-event simulator.
// Each rank needs its own address (or none) — the plane is per
// process.
//
// -telemetry-every N additionally samples convergence telemetry every
// N steps — step loss, per-tensor gradient norms, and the live
// quantisation RMSE and compression ratio of the negotiated policy,
// probed on a scratch copy of the gradients so training stays
// bit-identical — and broadcasts the snapshot to every peer over the
// heartbeat control links (the bytes count under the control-plane
// ledger, never the data mesh). Every rank therefore holds the whole
// cluster's view; with -metrics-addr it is served at /cluster/metrics
// (Prometheus text) and /cluster/status (JSON) beside the per-process
// endpoints. Watch it live with cmd/lpsgd-top.
//
// The replacement receives the full session state (weights, momentum,
// step and data cursors) from a surviving donor and training resumes;
// under residual-free policies (32bit, the QSGD family) the final
// digests are bit-identical to a run that never lost the rank.
// -max-rejoins caps how many repairs one process tolerates.
//
// Exit codes are distinct so an external supervisor can decide
// restart-vs-fail without parsing stderr:
//
//	0  success — trained, digest printed
//	1  internal failure (training error, checkpoint I/O)
//	2  usage or configuration error (bad flags, unknown task,
//	   unloadable or mismatched -load checkpoint)
//	3  rendezvous failure (cannot join, rejected hello, negotiation)
//	4  peer-death abort (a peer was declared dead mid-run and — in an
//	   elastic session — the rejoin window closed without a
//	   replacement; restarting the whole cluster is the sensible
//	   reaction, restarting this rank alone is not)
//	5  rejoin failure (-rejoin could not re-enter the session: the
//	   window expired before the barrier opened, the slot was taken,
//	   or no live session exists; relaunching with -rejoin is only
//	   useful while survivors are still holding the barrier)
package main

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/cluster"
	"repro/elastic"
	"repro/health"
	"repro/internal/harness"
	"repro/lpsgd"
	"repro/obs"
)

// Exit codes, documented in the command comment above and asserted by
// the cluster e2e tests.
const (
	exitOK         = 0
	exitInternal   = 1
	exitUsage      = 2
	exitRendezvous = 3
	exitPeerDeath  = 4
	exitRejoin     = 5
)

// exitCodeFor maps a training-time error to the exit code contract: a
// health-plane death verdict is the restart-the-cluster code, anything
// else is an internal failure.
func exitCodeFor(err error) int {
	var dead health.ErrPeerDead
	if errors.As(err, &dead) {
		return exitPeerDeath
	}
	return exitInternal
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(code)
}

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:7070", "rendezvous address (rank 0 listens, others dial)")
		rank      = flag.Int("rank", 0, "this process's rank in [0, world)")
		world     = flag.Int("world", 2, "total number of worker processes")
		accept    = flag.String("accept", "32bit", "comma-separated policy strings this rank accepts (quant.ParsePolicy grammar)")
		policy    = flag.String("policy", "", "preferred precision policy, advertised ahead of the -accept list")
		joinWait  = flag.Duration("join-timeout", 30*time.Second, "rendezvous handshake timeout (raise for hand-launched multi-machine runs; with -rejoin it bounds the wait for the rejoin barrier too)")
		heartbeat = flag.Duration("heartbeat", health.DefaultInterval, "heartbeat interval of the health plane; the coordinator's value governs the session, 0 on rank 0 disables failure detection")
		hbTimeout = flag.Duration("heartbeat-timeout", 0, "silence after which a peer is declared dead (0 = 8x the heartbeat interval)")
		stepWait  = flag.Duration("step-deadline", 0, "abort if one synchronous step (compute+exchange) exceeds this wall time (0 = unbounded)")
		rejoinWin = flag.Duration("rejoin-window", 0, "elastic sessions: hold a rejoin barrier open this long after a peer death so a replacement can take the dead rank's slot; the coordinator's value governs the session, 0 disables elasticity")
		maxRejoin = flag.Int("max-rejoins", 0, "elastic sessions: rejoin rounds this process tolerates before a death verdict is fatal (0 = default, negative = unlimited)")
		rejoin    = flag.Bool("rejoin", false, "join as the replacement for a dead rank of a running elastic session instead of forming a fresh one")
		task      = flag.String("task", "image", "task: image or sequence")
		epochs    = flag.Int("epochs", 4, "training epochs")
		batch     = flag.Int("batch", 64, "global minibatch size, sharded over ranks")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		seed      = flag.Uint64("seed", 17, "random seed (identical on every rank)")
		trainN    = flag.Int("train-samples", 384, "training set size")
		testN     = flag.Int("test-samples", 192, "test set size")
		saveTo    = flag.String("save", "", "write a checkpoint of the trained model to this file")
		loadFrom  = flag.String("load", "", "warm-start from this nn checkpoint before training (identical file on every rank)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/vars, /debug/pprof and /trace on this address (per process — every rank needs its own)")
		traceOut    = flag.String("trace-out", "", "append the step-phase trace as JSONL to this file (convert/diff with lpsgd-trace)")
		teleEvery   = flag.Int("telemetry-every", 0, "sample convergence telemetry (loss, gradient norms, live quantisation error) every N steps and ship it over the control plane; with -metrics-addr the aggregated cluster view is served at /cluster/metrics and /cluster/status (0 = off)")
	)
	flag.Parse()

	model, train, test, err := harness.Task(*task, *trainN, *testN, *seed)
	if err != nil {
		fail(exitUsage, err)
	}
	if *heartbeat < 0 || *hbTimeout < 0 || *stepWait < 0 || *rejoinWin < 0 {
		fail(exitUsage, fmt.Errorf("lpsgd-worker: -heartbeat, -heartbeat-timeout, -step-deadline and -rejoin-window must not be negative"))
	}
	if *teleEvery < 0 {
		fail(exitUsage, fmt.Errorf("lpsgd-worker: -telemetry-every must not be negative"))
	}
	if *rejoin && *loadFrom != "" {
		fail(exitUsage, fmt.Errorf("lpsgd-worker: -rejoin receives its state from the session snapshot; -load would overwrite it"))
	}
	var names []string
	if *policy != "" {
		names = append(names, *policy)
	}
	for _, name := range strings.Split(*accept, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}

	// Observability plane: per-process registry and tracer. The HTTP
	// server lives until the process exits; the trace sink is flushed
	// on every exit path that follows training.
	var (
		obsTracer *obs.Tracer
		obsReg    *obs.Registry
		teleHub   *cluster.TelemetryHub
	)
	if *teleEvery > 0 {
		// The policy is stamped after the rendezvous settles.
		teleHub = cluster.NewTelemetryHub(*world, "")
	}
	if *metricsAddr != "" || *traceOut != "" {
		obsReg = obs.NewRegistry()
		obsTracer = obs.NewTracer(1 << 16)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fail(exitUsage, err)
			}
			obsTracer.SetSink(f)
		}
		if *metricsAddr != "" {
			var extra []obs.Endpoint
			if teleHub != nil {
				extra = teleHub.Endpoints()
			}
			srv, err := obs.Serve(*metricsAddr, obsReg, obsTracer, extra...)
			if err != nil {
				fail(exitUsage, err)
			}
			fmt.Fprintf(os.Stderr, "lpsgd-worker: observability plane on http://%s (/metrics, /debug/pprof, /trace)\n", srv.Addr())
		}
	}

	cfg := cluster.Config{
		Addr: *coordAddr, Rank: *rank, World: *world,
		Accept: names, Timeout: *joinWait,
		Tracer: obsTracer,
		Health: health.Config{
			Interval: *heartbeat,
			Timeout:  *hbTimeout,
			Disable:  *heartbeat == 0,
		},
		Elastic: elastic.Config{
			Enable:       *rejoinWin > 0,
			RejoinWindow: *rejoinWin,
			MaxRejoins:   *maxRejoin,
		},
	}

	// Three ways into a session: rank 0 goes through the explicit
	// coordinator path so that a ":0" rendezvous port is printed before
	// the other ranks need it; -rejoin claims a dead rank's slot in a
	// running session; everyone else dials a fresh rendezvous.
	var sess *cluster.Session
	var snap *elastic.Snapshot
	switch {
	case *rejoin:
		if sess, snap, err = cluster.Rejoin(cfg); err != nil {
			fail(exitRejoin, err)
		}
	case *rank == 0:
		coord, err := cluster.NewCoordinator(cfg)
		if err != nil {
			fail(exitRendezvous, err)
		}
		fmt.Printf("coordinator %s\n", coord.Addr())
		if sess, err = coord.Join(); err != nil {
			fail(exitRendezvous, err)
		}
	default:
		if sess, err = cluster.Join(cfg); err != nil {
			fail(exitRendezvous, err)
		}
	}
	hbNote := "health plane off"
	if m := sess.Monitor(); m != nil {
		hc := m.Config()
		hbNote = fmt.Sprintf("heartbeat %v, timeout %v", hc.Interval, hc.Timeout)
	}
	if el := sess.Elastic(); el.Enable {
		hbNote += fmt.Sprintf(", rejoin window %v", el.RejoinWindow)
	}
	role := "up"
	if *rejoin {
		role = fmt.Sprintf("rejoined (generation %d, resuming at step %d)", sess.Generation(), snap.Step)
	}
	fmt.Fprintf(os.Stderr, "lpsgd-worker: rank %d/%d %s, negotiated policy %s (%s)\n",
		sess.Rank(), sess.World(), role, sess.PolicyName(), hbNote)

	opts := []lpsgd.Option{
		lpsgd.WithClusterSession(sess),
		lpsgd.WithElastic(*maxRejoin, *rejoinWin),
		lpsgd.WithStepDeadline(*stepWait),
		lpsgd.WithBatchSize(*batch),
		lpsgd.WithEpochs(*epochs),
		lpsgd.WithLearningRate(float32(*lr)),
		lpsgd.WithSeed(*seed),
		lpsgd.WithMetrics(obsReg),
		lpsgd.WithTracer(obsTracer),
	}
	if teleHub != nil {
		teleHub.SetPolicy(sess.PolicyName())
		opts = append(opts,
			lpsgd.WithTelemetry(*teleEvery),
			lpsgd.WithTelemetryObserver(teleHub.Observe),
		)
	}
	trainer, err := lpsgd.NewTrainer(model, opts...)
	if err != nil {
		sess.Close()
		fail(exitInternal, err)
	}
	if snap != nil {
		if err := trainer.Restore(snap); err != nil {
			trainer.Close()
			fail(exitInternal, err)
		}
	}
	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			trainer.Close()
			fail(exitUsage, err)
		}
		err = trainer.LoadCheckpoint(f)
		f.Close()
		if err != nil {
			trainer.Close()
			fail(exitUsage, fmt.Errorf("lpsgd-worker: load checkpoint: %w", err))
		}
		fmt.Fprintf(os.Stderr, "lpsgd-worker: rank %d warm-started from %s\n", sess.Rank(), *loadFrom)
	}

	h, err := trainer.Run(train, test)
	if err != nil {
		code := exitCodeFor(err)
		// Close before exiting so a non-fatal error still says a clean
		// bye; after a death verdict the mesh is already aborted and
		// Close is cheap.
		trainer.Close()
		obsTracer.Close()
		fail(code, err)
	}

	var ckpt bytes.Buffer
	if err := trainer.SaveCheckpoint(&ckpt); err != nil {
		trainer.Close()
		fail(exitInternal, err)
	}
	if *saveTo != "" {
		if err := os.WriteFile(*saveTo, ckpt.Bytes(), 0o644); err != nil {
			trainer.Close()
			fail(exitInternal, err)
		}
	}
	if s := trainer.StepStats(); s.Slowest >= 0 {
		fmt.Fprintf(os.Stderr, "lpsgd-worker: straggler report: rank %d gated the last step (compute %v, exchange %v)\n",
			s.Slowest, s.Compute[s.Slowest].Round(time.Microsecond), s.Exchange[s.Slowest].Round(time.Microsecond))
	}
	last := h.Epochs[len(h.Epochs)-1]
	fmt.Printf("rank=%d world=%d codec=%s final_loss=%.4f final_acc=%.4f model=%x\n",
		sess.Rank(), sess.World(), sess.PolicyName(),
		last.TrainLoss, h.FinalAccuracy, sha256.Sum256(ckpt.Bytes()))
	// The deliberate Close (not a defer skipped by os.Exit) sends the
	// health plane's bye before the process vanishes, so peers still
	// mid-shutdown see a departure, not a death.
	trainer.Close()
	obsTracer.Close()
	os.Exit(exitOK)
}
