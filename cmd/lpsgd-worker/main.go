// Command lpsgd-worker is one rank of a multi-process training
// cluster: it joins the rendezvous, negotiates a precision policy with
// its peers, trains its shard of every batch over the dialled TCP
// mesh, and reports a digest of the final model so the launcher can
// verify that all ranks converged to bit-identical state.
//
// Rank 0 is the coordinator — it listens on -coordinator and prints
// the bound address (useful with port 0) before waiting for the other
// ranks:
//
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 0 -world 3 -accept qsgd4b512,1bit
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 1 -world 3 -accept qsgd4b512
//	lpsgd-worker -coordinator 127.0.0.1:7070 -rank 2 -world 3 -accept qsgd4b512,topk0.01
//
// -accept takes full policy strings (quant.ParsePolicy grammar), so
// per-layer mixed-precision schemes negotiate like codecs do; -policy
// is shorthand for advertising one preferred policy ahead of the
// -accept list:
//
//	lpsgd-worker ... -policy "qsgd4b512;embedding=topk0.01" -accept qsgd4b512
//
// Every rank must be launched with the same -task, -seed, -batch,
// -epochs and -lr, or the replicas will not stay bit-identical. The
// final stdout line is machine-readable (codec= carries the negotiated
// policy string):
//
//	rank=1 world=3 codec=qsgd4b512 final_loss=0.1234 final_acc=0.8750 model=<sha256>
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/cluster"
	"repro/internal/harness"
	"repro/lpsgd"
)

func main() {
	var (
		coordAddr = flag.String("coordinator", "127.0.0.1:7070", "rendezvous address (rank 0 listens, others dial)")
		rank      = flag.Int("rank", 0, "this process's rank in [0, world)")
		world     = flag.Int("world", 2, "total number of worker processes")
		accept    = flag.String("accept", "32bit", "comma-separated policy strings this rank accepts (quant.ParsePolicy grammar)")
		policy    = flag.String("policy", "", "preferred precision policy, advertised ahead of the -accept list")
		joinWait  = flag.Duration("join-timeout", 30*time.Second, "rendezvous handshake timeout (raise for hand-launched multi-machine runs)")
		task      = flag.String("task", "image", "task: image or sequence")
		epochs    = flag.Int("epochs", 4, "training epochs")
		batch     = flag.Int("batch", 64, "global minibatch size, sharded over ranks")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		seed      = flag.Uint64("seed", 17, "random seed (identical on every rank)")
		trainN    = flag.Int("train-samples", 384, "training set size")
		testN     = flag.Int("test-samples", 192, "test set size")
		saveTo    = flag.String("save", "", "write a checkpoint of the trained model to this file")
	)
	flag.Parse()

	model, train, test, err := harness.Task(*task, *trainN, *testN, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var names []string
	if *policy != "" {
		names = append(names, *policy)
	}
	for _, name := range strings.Split(*accept, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}

	// Rank 0 goes through the explicit coordinator path so that a ":0"
	// rendezvous port is printed before the other ranks need it.
	var sess *cluster.Session
	cfg := cluster.Config{
		Addr: *coordAddr, Rank: *rank, World: *world,
		Accept: names, Timeout: *joinWait,
	}
	if *rank == 0 {
		coord, err := cluster.NewCoordinator(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("coordinator %s\n", coord.Addr())
		if sess, err = coord.Join(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		if sess, err = cluster.Join(cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "lpsgd-worker: rank %d/%d up, negotiated policy %s\n",
		sess.Rank(), sess.World(), sess.PolicyName())

	trainer, err := lpsgd.NewTrainer(model,
		lpsgd.WithClusterSession(sess),
		lpsgd.WithBatchSize(*batch),
		lpsgd.WithEpochs(*epochs),
		lpsgd.WithLearningRate(float32(*lr)),
		lpsgd.WithSeed(*seed),
	)
	if err != nil {
		sess.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer trainer.Close()

	h, err := trainer.Run(train, test)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var ckpt bytes.Buffer
	if err := trainer.SaveCheckpoint(&ckpt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveTo != "" {
		if err := os.WriteFile(*saveTo, ckpt.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	last := h.Epochs[len(h.Epochs)-1]
	fmt.Printf("rank=%d world=%d codec=%s final_loss=%.4f final_acc=%.4f model=%x\n",
		sess.Rank(), sess.World(), sess.PolicyName(),
		last.TrainLoss, h.FinalAccuracy, sha256.Sum256(ckpt.Bytes()))
}
