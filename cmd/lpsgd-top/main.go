// Command lpsgd-top is a live terminal dashboard for a training
// cluster's telemetry plane. It polls the /cluster/status endpoint a
// rank serves under -metrics-addr (any rank works — every rank holds
// the whole cluster's view, since telemetry snapshots are broadcast
// over the heartbeat control links) and renders the cluster's
// convergence at a glance: a per-rank table of step, loss, compute
// and exchange time with the current straggler flagged, a sparkline
// of the cluster-mean loss trend, and a per-tensor table of gradient
// norms, live quantisation RMSE and achieved compression under the
// negotiated precision policy.
//
//	lpsgd-train -task image -codec qsgd4 -cluster 3 \
//	    -telemetry-every 10 -metrics-addr 127.0.0.1:9090 &
//	lpsgd-top -addr 127.0.0.1:9090
//
// The screen refreshes in place every -interval. -once prints a
// single frame without clearing the terminal and exits — useful for
// scripts and CI smoke tests; its exit code is 0 only if the endpoint
// answered with a decodable status document.
//
// A rank that has not reported within a few sampling periods shows a
// growing "stale" age rather than disappearing, so a hung or dead
// rank is visible as exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "host:port of a rank's observability plane (its -metrics-addr)")
		interval = flag.Duration("interval", time.Second, "poll and refresh period")
		once     = flag.Bool("once", false, "print one frame without clearing the screen and exit")
	)
	flag.Parse()
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "lpsgd-top: -interval must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	url := "http://" + *addr + "/cluster/status"
	for {
		st, err := fetch(client, url)
		if err != nil {
			if *once {
				fmt.Fprintln(os.Stderr, "lpsgd-top:", err)
				os.Exit(1)
			}
			// Transient during startup or between runs: keep polling.
			fmt.Printf("\x1b[H\x1b[2Jlpsgd-top: %v (retrying every %v)\n", err, *interval)
		} else {
			var b strings.Builder
			if !*once {
				b.WriteString("\x1b[H\x1b[2J")
			}
			render(&b, st, *addr)
			os.Stdout.WriteString(b.String())
			if *once {
				return
			}
		}
		time.Sleep(*interval)
	}
}

func fetch(client *http.Client, url string) (cluster.ClusterStatus, error) {
	var st cluster.ClusterStatus
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("%s: decode: %w", url, err)
	}
	return st, nil
}

// render draws one full frame of the dashboard into b.
func render(b *strings.Builder, st cluster.ClusterStatus, addr string) {
	policy := st.Policy
	if policy == "" {
		policy = "?"
	}
	fmt.Fprintf(b, "lpsgd-top — %s   policy=%s   ranks %d/%d reporting\n",
		addr, policy, st.Reporting, st.WorldSize)
	if st.Reporting == 0 {
		b.WriteString("\nwaiting for the first telemetry snapshot...\n")
		return
	}
	fmt.Fprintf(b, "step %d..%d   loss min/mean/max %s / %s / %s\n",
		st.MinStep, st.MaxStep,
		num(float64(st.MinLoss)), num(float64(st.MeanLoss)), num(float64(st.MaxLoss)))

	if len(st.LossTrend) > 0 {
		vals := make([]float64, 0, len(st.LossTrend))
		for _, v := range st.LossTrend {
			vals = append(vals, float64(v))
		}
		fmt.Fprintf(b, "loss %s %s\n", sparkline(vals, 60), num(vals[len(vals)-1]))
	}

	b.WriteString("\n RANK    STEP        LOSS    COMPUTE   EXCHANGE      STALE\n")
	for _, r := range st.Ranks {
		mark := " "
		if r.Rank == st.Straggler {
			mark = "*"
		}
		fmt.Fprintf(b, "%s%4d %7d %11s %10s %10s %10s\n",
			mark, r.Rank, r.Step, num(float64(r.Loss)),
			durNS(r.ComputeNS), durNS(r.ExchangeNS), durMS(r.StalenessMS))
	}
	if st.Straggler >= 0 {
		fmt.Fprintf(b, " (* rank %d gated the sampled step)\n", st.Straggler)
	}

	type agg struct {
		l2, inf, rmse, comp float64
		n                   int
	}
	tensors := map[string]*agg{}
	for _, r := range st.Ranks {
		for _, tn := range r.Tensors {
			a := tensors[tn.Name]
			if a == nil {
				a = &agg{}
				tensors[tn.Name] = a
			}
			a.l2 += float64(tn.GradL2)
			a.inf += float64(tn.GradInf)
			a.rmse += float64(tn.RMSE)
			a.comp += float64(tn.Compression)
			a.n++
		}
	}
	if len(tensors) > 0 {
		names := make([]string, 0, len(tensors))
		for name := range tensors {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("\n TENSOR                 GRAD_L2    GRAD_INF  QUANT_RMSE  COMPRESS\n")
		for _, name := range names {
			a := tensors[name]
			n := float64(a.n)
			fmt.Fprintf(b, " %-20s %10s %11s %11s %8sx\n",
				name, num(a.l2/n), num(a.inf/n), num(a.rmse/n), num(a.comp/n))
		}
		b.WriteString(" (mean over reporting ranks; compression is raw/wire bytes under the policy)\n")
	}
}

// num formats a telemetry float compactly; NaN (a null in the JSON)
// renders as "-".
func num(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch a := math.Abs(v); {
	case a != 0 && a < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case a >= 1e6:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func durNS(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

func durMS(ms int64) string {
	return (time.Duration(ms) * time.Millisecond).Round(100 * time.Millisecond).String()
}

// sparkline renders vals as a fixed-width run of block glyphs, tail
// (newest) aligned right.
func sparkline(vals []float64, width int) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo > hi { // all NaN
		return strings.Repeat("·", len(vals))
	}
	var sb strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			sb.WriteRune('·')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}
