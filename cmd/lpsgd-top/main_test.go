package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/cluster"
	"repro/health"
)

func TestNum(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.NaN(), "-"},
		{0, "0.0000"},
		{0.1234, "0.1234"},
		{4.2e-5, "4.20e-05"},
		{3.5e7, "3.5e+07"},
	} {
		if got := num(tc.v); got != tc.want {
			t.Errorf("num(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3}, 60)
	if got := []rune(s); len(got) != 4 || got[0] != '▁' || got[3] != '█' {
		t.Errorf("sparkline ramp = %q", s)
	}
	// Wider than the budget: only the newest points survive.
	vals := make([]float64, 100)
	if got := sparkline(vals, 10); len([]rune(got)) != 10 {
		t.Errorf("sparkline did not clip to width: %q", got)
	}
	if got := sparkline([]float64{math.NaN(), math.NaN()}, 10); got != "··" {
		t.Errorf("all-NaN sparkline = %q", got)
	}
}

// TestRenderAgainstHub renders a frame from a real hub's status and
// checks the load-bearing rows survive the round trip through the
// HTTP JSON the dashboard actually consumes.
func TestRenderAgainstHub(t *testing.T) {
	hub := cluster.NewTelemetryHub(2, "qsgd4b512")
	snap := func(step int64, loss float64) health.TelemetrySnapshot {
		return health.TelemetrySnapshot{
			Step: step, Loss: loss,
			Compute: 3 * time.Millisecond, Exchange: time.Millisecond,
			Tensors: []health.TensorTelemetry{
				{Name: "fc1.W", GradL2: 0.5, GradInf: 0.1, RMSE: 0.001, Compression: 7.9},
			},
		}
	}
	hub.Observe(0, snap(10, 0.25))
	hub.Observe(1, snap(12, 0.20))

	srv := httptest.NewServer(hub.StatusHandler())
	defer srv.Close()
	st, err := fetch(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	render(&b, st, "test")
	out := b.String()
	for _, want := range []string{
		"policy=qsgd4b512",
		"ranks 2/2 reporting",
		"step 10..12",
		"fc1.W",
		"7.9000x",
		"(* rank 0 gated the sampled step)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderEmpty: a hub nobody has reported to yet renders a waiting
// banner, not a panic.
func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	render(&b, cluster.ClusterStatus{WorldSize: 3, Straggler: -1}, "test")
	if !strings.Contains(b.String(), "waiting for the first telemetry snapshot") {
		t.Errorf("empty frame: %q", b.String())
	}
}

// TestFetchErrors: a non-200 answer and a bad document are both loud.
func TestFetchErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if _, err := fetch(srv.Client(), srv.URL); err == nil {
		t.Error("non-200 response fetched without error")
	}
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{not json"))
	}))
	defer srv2.Close()
	if _, err := fetch(srv2.Client(), srv2.URL); err == nil {
		t.Error("malformed document fetched without error")
	}
}
