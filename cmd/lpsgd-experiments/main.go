// Command lpsgd-experiments regenerates the paper's tables and figures.
//
//	lpsgd-experiments -fig setup     Figures 1–4 (datasets, machines, networks, batches)
//	lpsgd-experiments -fig 5         accuracy studies (real training; -full for longer runs)
//	lpsgd-experiments -fig 6|7|8|9   epoch-time panels
//	lpsgd-experiments -fig 10|11     samples/sec tables with paper comparison
//	lpsgd-experiments -fig 12..15    scalability panels
//	lpsgd-experiments -fig 16        cost/accuracy and the extrapolation sweep
//	lpsgd-experiments -fig claims    the §5 claims scoreboard vs the paper
//	lpsgd-experiments -fig grid      the full cross-product of all axes
//	lpsgd-experiments -fig all       everything
//
// Add -csv to emit comma-separated values instead of aligned text.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/sim"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "figure to regenerate: setup, 5..16, claims, all")
		csv  = flag.Bool("csv", false, "emit CSV instead of text tables")
		full = flag.Bool("full", false, "run the longer (non-quick) accuracy configuration")
	)
	flag.Parse()

	out := os.Stdout
	emit := func(tables ...*report.Table) {
		for _, t := range tables {
			if *csv {
				t.CSV(out)
			} else {
				t.Render(out)
			}
			fmt.Fprintln(out)
		}
	}

	run := func(name string, f func(io.Writer, func(...*report.Table), bool) error) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Fprintf(out, "==== Figure %s ====\n", name)
		if err := f(out, emit, *full); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("setup", figSetup)
	run("5", fig5)
	run("6", figEpoch(workload.EC2P2, sim.MPI, 8))
	run("7", figEpoch(workload.EC2P2, sim.NCCL, 8))
	run("8", figEpoch(workload.DGX1, sim.MPI, 8))
	run("9", figEpoch(workload.DGX1, sim.NCCL, 8))
	run("10", figThroughput(workload.EC2P2, sim.MPI))
	run("11", figThroughput(workload.EC2P2, sim.NCCL))
	run("12", figScalability(workload.EC2P2, sim.MPI))
	run("13", figScalability(workload.EC2P2, sim.NCCL))
	run("14", figScalability(workload.DGX1, sim.MPI))
	run("15", figScalability(workload.DGX1, sim.NCCL))
	run("16", fig16)
	run("claims", figClaims)
	run("grid", figGrid)
}

func figGrid(_ io.Writer, emit func(...*report.Table), _ bool) error {
	t, err := harness.GridTable()
	if err != nil {
		return err
	}
	emit(t)
	return nil
}

func figClaims(_ io.Writer, emit func(...*report.Table), _ bool) error {
	t, err := harness.ClaimsTable()
	if err != nil {
		return err
	}
	emit(t)
	return nil
}

func figSetup(_ io.Writer, emit func(...*report.Table), _ bool) error {
	ds := report.New("Figure 1: datasets", "name", "train", "val", "size_GB", "classes", "task")
	for _, d := range workload.Datasets {
		ds.Addf("%s\t%d\t%d\t%.3f\t%d\t%s", d.Name, d.TrainN, d.ValN, d.SizeGB, d.Classes, d.Task)
	}
	ms := report.New("Figure 2: machines", "name", "gpus", "gpu", "arch", "tflops", "$_per_hour")
	for _, m := range workload.Machines() {
		ms.Addf("%s\t%d\t%s\t%s\t%.2f\t%.1f",
			m.Name, m.MaxGPUs, m.GPU.Name, m.GPU.Arch, m.GPU.TFLOPS, m.PricePerHour)
	}
	ns := report.New("Figure 3: networks", "name", "dataset", "params_M", "epochs", "base_lr", "tensors")
	for _, n := range workload.Networks() {
		ns.Addf("%s\t%s\t%.2f\t%d\t%.2f\t%d",
			n.Name, n.Dataset, float64(n.Params())/1e6, n.Epochs, n.BaseLR, len(n.Tensors))
	}
	bs := report.New("Figure 4: global batch sizes", "network", "1GPU", "2GPU", "4GPU", "8GPU", "16GPU")
	for _, n := range workload.Networks() {
		row := []string{n.Name}
		for _, k := range workload.GPUCounts {
			if b, ok := n.BatchFor(k); ok {
				row = append(row, fmt.Sprintf("%d", b))
			} else {
				row = append(row, "NA")
			}
		}
		bs.Add(row...)
	}
	emit(ds, ms, ns, bs)
	return nil
}

func fig5(_ io.Writer, emit func(...*report.Table), full bool) error {
	opts := harness.AccuracyOptions{Epochs: 12}
	if full {
		opts = harness.AccuracyOptions{Epochs: 30, TrainN: 2048, TestN: 768}
	}
	img, err := harness.RunImageAccuracy(opts)
	if err != nil {
		return err
	}
	emit(img.Table(), img.CurvesTable(), img.ConvergenceTable(0.9))
	seqOpts := opts
	seq, err := harness.RunSequenceAccuracy(seqOpts)
	if err != nil {
		return err
	}
	emit(seq.Table(), seq.CurvesTable(), seq.ConvergenceTable(0.9), seq.LossTimeTable())
	return nil
}

func figEpoch(m workload.Machine, prim sim.Primitive, gpus int) func(io.Writer, func(...*report.Table), bool) error {
	return func(_ io.Writer, emit func(...*report.Table), _ bool) error {
		tables, err := harness.EpochTimeFigure(m, prim, gpus)
		if err != nil {
			return err
		}
		emit(tables...)
		return nil
	}
}

func figThroughput(m workload.Machine, prim sim.Primitive) func(io.Writer, func(...*report.Table), bool) error {
	return func(_ io.Writer, emit func(...*report.Table), _ bool) error {
		tables, err := harness.ThroughputFigure(m, prim)
		if err != nil {
			return err
		}
		emit(tables...)
		return nil
	}
}

func figScalability(m workload.Machine, prim sim.Primitive) func(io.Writer, func(...*report.Table), bool) error {
	return func(_ io.Writer, emit func(...*report.Table), _ bool) error {
		tables, err := harness.ScalabilityFigure(m, prim)
		if err != nil {
			return err
		}
		emit(tables...)
		return nil
	}
}

func fig16(_ io.Writer, emit func(...*report.Table), _ bool) error {
	left, err := harness.CostAccuracyTable()
	if err != nil {
		return err
	}
	right, err := harness.SpeedupSweepTable()
	if err != nil {
		return err
	}
	emit(left, right)
	return nil
}
