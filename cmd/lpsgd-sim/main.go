// Command lpsgd-sim prices one training configuration with the
// calibrated performance model: which network, which machine, which
// communication primitive, which gradient precision, how many GPUs.
//
// Examples:
//
//	lpsgd-sim -network AlexNet -machine EC2-P2 -primitive MPI -precision qsgd4 -gpus 8
//	lpsgd-sim -network VGG19 -machine DGX-1 -primitive NCCL -gpus 8 -all-precisions
//	lpsgd-sim -network AlexNet -precision "qsgd4b512;fc6=topk0.01;minfrac=1" -gpus 8
//
// -precision accepts the full precision-policy grammar
// (quant.ParsePolicy), so mixed per-layer schemes price exactly like
// the single-codec rows.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
)

func main() {
	var (
		network   = flag.String("network", "AlexNet", "network: AlexNet, VGG19, BN-Inception, ResNet50, ResNet152, ResNet110, LSTM")
		machine   = flag.String("machine", "EC2-P2", "machine: EC2-P2 or DGX-1")
		primitive = flag.String("primitive", "MPI", "communication primitive: MPI or NCCL")
		precision = flag.String("precision", "32bit", "precision policy (quant.ParsePolicy grammar): 32bit, qsgd2/4/8/16, 1bit, 1bit*, or e.g. 'qsgd4b512;fc6=topk0.01'")
		gpus      = flag.Int("gpus", 8, "GPU count")
		batch     = flag.Int("batch", 0, "global batch override (0 = paper's Figure 4)")
		allPrec   = flag.Bool("all-precisions", false, "sweep the paper's precision ladder")
	)
	flag.Parse()

	labels := []string{*precision}
	if *allPrec {
		labels = harness.PrecisionLabels
		if *primitive == "NCCL" {
			labels = harness.NCCLPrecisionLabels
		}
	}

	t := report.New(
		fmt.Sprintf("%s on %s, %s, %d GPUs", *network, *machine, *primitive, *gpus),
		"precision", "samples/s", "iter_ms", "compute_ms", "quant_ms", "comm_ms",
		"epoch_h", "wire_MB", "ratio_vs_raw")
	for _, label := range labels {
		r, err := core.Estimate(core.EstimateOptions{
			Network: *network, Machine: *machine, Primitive: *primitive,
			Precision: label, GPUs: *gpus, Batch: *batch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Addf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f\t%.2f",
			label, r.SamplesPerSec, 1e3*r.IterSec, 1e3*r.ComputeSec,
			1e3*r.QuantSec, 1e3*r.CommSec, r.EpochHours(),
			float64(r.WireBytes)/1e6, float64(r.RawBytes)/float64(r.WireBytes))
	}
	t.Render(os.Stdout)
}
