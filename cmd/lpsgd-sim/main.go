// Command lpsgd-sim prices one training configuration with the
// calibrated performance model: which network, which machine, which
// communication primitive, which gradient precision, how many GPUs.
//
// Examples:
//
//	lpsgd-sim -network AlexNet -machine EC2-P2 -primitive MPI -precision qsgd4 -gpus 8
//	lpsgd-sim -network VGG19 -machine DGX-1 -primitive NCCL -gpus 8 -all-precisions
//	lpsgd-sim -network AlexNet -precision "qsgd4b512;fc6=topk0.01;minfrac=1" -gpus 8
//
// -precision accepts the full precision-policy grammar
// (quant.ParsePolicy), so mixed per-layer schemes price exactly like
// the single-codec rows.
//
// With -scenario, the command switches to cluster mode: it runs the
// named JSON scenario through the discrete-event simulator (package
// sim) and prints the session summary — step-time distribution,
// per-rank timelines, straggler attribution and rejoin-cost estimates.
// -seed overrides the scenario's seed, for exploring seed sensitivity
// without editing the file:
//
//	lpsgd-sim -scenario sim/testdata/mega_1024.json
//	lpsgd-sim -scenario cluster.json -seed 7
//
// Exit codes:
//
//	0  success
//	1  simulation failed at run time (unknown network/machine, ...)
//	2  usage error: bad flags, or the scenario file failed to load,
//	   decode or validate
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/sim"
)

func main() {
	var (
		network   = flag.String("network", "AlexNet", "network: AlexNet, VGG19, BN-Inception, ResNet50, ResNet152, ResNet110, LSTM")
		machine   = flag.String("machine", "EC2-P2", "machine: EC2-P2 or DGX-1")
		primitive = flag.String("primitive", "MPI", "communication primitive: MPI or NCCL")
		precision = flag.String("precision", "32bit", "precision policy (quant.ParsePolicy grammar): 32bit, qsgd2/4/8/16, 1bit, 1bit*, or e.g. 'qsgd4b512;fc6=topk0.01'")
		gpus      = flag.Int("gpus", 8, "GPU count")
		batch     = flag.Int("batch", 0, "global batch override (0 = paper's Figure 4)")
		allPrec   = flag.Bool("all-precisions", false, "sweep the paper's precision ladder")
		scenario  = flag.String("scenario", "", "cluster mode: run this JSON scenario through the discrete-event simulator")
		seed      = flag.Uint64("seed", 0, "cluster mode: override the scenario's seed")
	)
	flag.Parse()

	if *scenario != "" {
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		os.Exit(runScenario(*scenario, *seed, seedSet))
	}

	labels := []string{*precision}
	if *allPrec {
		labels = harness.PrecisionLabels
		if *primitive == "NCCL" {
			labels = harness.NCCLPrecisionLabels
		}
	}

	t := report.New(
		fmt.Sprintf("%s on %s, %s, %d GPUs", *network, *machine, *primitive, *gpus),
		"precision", "samples/s", "iter_ms", "compute_ms", "quant_ms", "comm_ms",
		"epoch_h", "wire_MB", "ratio_vs_raw")
	for _, label := range labels {
		r, err := core.Estimate(core.EstimateOptions{
			Network: *network, Machine: *machine, Primitive: *primitive,
			Precision: label, GPUs: *gpus, Batch: *batch,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Addf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\t%.1f\t%.2f",
			label, r.SamplesPerSec, 1e3*r.IterSec, 1e3*r.ComputeSec,
			1e3*r.QuantSec, 1e3*r.CommSec, r.EpochHours(),
			float64(r.WireBytes)/1e6, float64(r.RawBytes)/float64(r.WireBytes))
	}
	t.Render(os.Stdout)
}

// runScenario is cluster mode; it returns the process exit code.
func runScenario(path string, seed uint64, seedSet bool) int {
	sc, err := sim.LoadScenario(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if seedSet {
		sc.Seed = seed
	}
	res, err := sim.RunScenario(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ms := func(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

	sum := report.New(fmt.Sprintf("scenario %s — %d ranks, seed %d", res.Name, res.Ranks, res.Seed),
		"steps", "events", "makespan_s", "exchange_MB/step", "session_GB", "trace")
	sum.Addf("%d\t%d\t%.3f\t%.1f\t%.2f\t%s",
		res.StepsCompleted, res.Events, float64(res.MakespanNS)/1e9,
		float64(res.ExchangeBytesPerStep)/1e6, float64(res.TotalExchangeBytes)/1e9,
		res.TraceHash)
	if res.AbortedAtStep != 0 {
		sum.Note("session ABORTED at step %d (non-rejoin failure)", res.AbortedAtStep)
	}
	sum.Render(os.Stdout)
	fmt.Println()

	dist := report.New("step time distribution (ms)",
		"min", "p50", "p90", "p99", "max", "mean")
	dist.Addf("%s\t%s\t%s\t%s\t%s\t%s",
		ms(res.StepNS.MinNS), ms(res.StepNS.P50NS), ms(res.StepNS.P90NS),
		ms(res.StepNS.P99NS), ms(res.StepNS.MaxNS), ms(res.StepNS.MeanNS))
	dist.Render(os.Stdout)
	fmt.Println()

	if len(res.TopStragglers) > 0 {
		strag := report.New("straggler attribution", "rank", "gated_steps", "factor")
		for _, g := range res.TopStragglers {
			strag.Addf("%d\t%d\t%.3f", g.Rank, g.GatedSteps, float64(g.FactorMilli)/1000)
		}
		if res.SlowestRank >= 0 {
			strag.Note("slowest rank: %d (the live counterpart is EpochStats.SlowestRank)", res.SlowestRank)
		}
		strag.Render(os.Stdout)
		fmt.Println()
	}

	for _, rj := range res.Rejoins {
		rt := report.New(fmt.Sprintf("rejoin: rank %d died in step %d", rj.Rank, rj.Step),
			"detect_ms", "rendezvous_ms", "transfer_ms", "snapshot_MB", "total_ms")
		rt.Addf("%s\t%s\t%s\t%.1f\t%s",
			ms(rj.DetectNS), ms(rj.RendezvousNS), ms(rj.TransferNS),
			float64(rj.SnapshotBytes)/1e6, ms(rj.TotalNS))
		rt.Render(os.Stdout)
		fmt.Println()
	}

	if len(res.PerRank) > 0 {
		pr := report.New("per-rank timeline (ms)",
			"rank", "compute", "quant", "comm", "blocked", "gated_steps")
		for _, r := range res.PerRank {
			pr.Addf("%d\t%s\t%s\t%s\t%s\t%d",
				r.Rank, ms(r.ComputeNS), ms(r.QuantNS), ms(r.CommNS), ms(r.BlockedNS), r.GatedSteps)
		}
		pr.Render(os.Stdout)
	}
	return 0
}
