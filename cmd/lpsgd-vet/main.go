// Command lpsgd-vet runs the repository's static-analysis suite
// (internal/lint) under `go vet`:
//
//	go build -o bin/lpsgd-vet ./cmd/lpsgd-vet
//	go vet -vettool=bin/lpsgd-vet ./...
//
// The five analyzers — wirebound, simclock, commerr, golifecycle,
// nodeprecated — mechanically enforce the wire-format, determinism and
// concurrency invariants the repository previously stated only in
// prose; see internal/lint's package documentation for what each one
// checks and the //lint:allow escape hatch.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	driver.Main(lint.Analyzers...)
}
