// External-style test: everything here goes through the public API —
// repro/lpsgd and repro/quant only, no internal/ imports — exactly the
// way a third-party consumer of the library would use it.
package lpsgd_test

import (
	"bytes"
	"net"
	"testing"

	"repro/lpsgd"
	"repro/quant"
)

// TestPublicAPITrainsOverTCP: the acceptance path end to end — a codec
// selected by name via quant.Parse, a trainer assembled purely from
// functional options, gradients moving over real TCP sockets as
// self-describing frames, and replicas staying in sync.
func TestPublicAPITrainsOverTCP(t *testing.T) {
	train, test := lpsgd.SyntheticImages(4, 256, 128, 42)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 32, 4),
		lpsgd.WithCodec("qsgd4b512"),
		lpsgd.WithWorkers(2),
		lpsgd.WithTransport(lpsgd.TCP),
		lpsgd.WithBatchSize(64),
		lpsgd.WithEpochs(4),
		lpsgd.WithLearningRate(0.08),
		lpsgd.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	h, err := trainer.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy < 0.5 {
		t.Fatalf("public-API training reached only %.2f accuracy", h.FinalAccuracy)
	}
	if h.TotalWireBytes == 0 {
		t.Fatal("no bytes crossed the TCP fabric")
	}
	if !trainer.ReplicasInSync() {
		t.Fatal("replicas diverged")
	}
}

// TestPublicAPIOptionsValidate: bad codec names and transports surface
// as errors from NewTrainer, not panics at option time.
func TestPublicAPIOptionsValidate(t *testing.T) {
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithCodec("qsgd3")); err == nil {
		t.Fatal("accepted an invalid codec name")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithTransport(lpsgd.Transport(99))); err == nil {
		t.Fatal("accepted an invalid transport")
	}
	if _, err := lpsgd.NewTrainer(nil); err == nil {
		t.Fatal("accepted a nil model builder")
	}
	// Zero would otherwise be silently replaced by the 0.99 default in
	// the engine; the facade must reject it instead.
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithMinQuantisedFraction(0)); err == nil {
		t.Fatal("accepted a zero min quantised fraction")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithCodec("topkNaN")); err == nil {
		t.Fatal("accepted a NaN topk density")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithPolicy("qsgd4b512;;")); err == nil {
		t.Fatal("accepted a malformed policy string")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithPolicy("qsgd4b512;minfrac=2")); err == nil {
		t.Fatal("accepted an out-of-range policy minfrac")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithPolicyValue(nil)); err == nil {
		t.Fatal("accepted a nil policy value")
	}
}

// badNameCodec wraps a real codec under a name quant.Parse cannot
// reconstruct — the misconfiguration WithCodecValue must reject.
type badNameCodec struct{ quant.Codec }

func (badNameCodec) Name() string { return "bespoke-house-codec" }

// aliasNameCodec reports a parseable but non-canonical name: peers
// reconstructing from it would build a (here deliberately different)
// codec, so it must be rejected too.
type aliasNameCodec struct{ quant.Codec }

func (aliasNameCodec) Name() string { return "qsgd4" }

// TestWithCodecValueValidatesRoundTrip: a custom codec whose Name()
// does not round-trip through quant.Parse would silently break cluster
// negotiation and framed decode; the option must fail instead.
func TestWithCodecValueValidatesRoundTrip(t *testing.T) {
	base := quant.MustParse("qsgd8b512")
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4),
		lpsgd.WithCodecValue(badNameCodec{base})); err == nil {
		t.Fatal("accepted a codec whose name does not parse")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4),
		lpsgd.WithCodecValue(aliasNameCodec{base})); err == nil {
		t.Fatal("accepted a codec whose name re-parses to a different canonical codec")
	}
	if _, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithCodecValue(nil)); err == nil {
		t.Fatal("accepted a nil codec")
	}
	// A well-behaved codec still passes.
	tr, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4), lpsgd.WithCodecValue(base), lpsgd.WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Policy().Base.Name() != "qsgd8b512" {
		t.Fatalf("policy base is %q", tr.Policy().Base.Name())
	}
}

// TestPolicyOptionsCompose: WithCodec and WithMinQuantisedFraction edit
// components of the same working policy, WithPolicy replaces it
// wholesale, and the trainer's effective policy round-trips its name.
func TestPolicyOptionsCompose(t *testing.T) {
	tr, err := lpsgd.NewTrainer(lpsgd.MLP(64, 32, 4),
		lpsgd.WithPolicy("qsgd4b512;dense1=32bit"),
		lpsgd.WithMinQuantisedFraction(1),
		lpsgd.WithCodec("qsgd8b512"),
		lpsgd.WithEpochs(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const want = "qsgd8b512;minfrac=1;dense1=32bit"
	if got := tr.Policy().Name(); got != want {
		t.Fatalf("composed policy %q, want %q", got, want)
	}
	if _, err := quant.ParsePolicy(tr.Policy().Name()); err != nil {
		t.Fatalf("effective policy does not round-trip: %v", err)
	}
}

// TestWithPolicyValueDoesNotMutateCallerPolicy: later options edit a
// copy of the supplied policy, never the caller's object — one policy
// value may configure several trainers with different refinements.
func TestWithPolicyValueDoesNotMutateCallerPolicy(t *testing.T) {
	p := quant.MustParsePolicy("qsgd4b512")
	tr, err := lpsgd.NewTrainer(lpsgd.MLP(64, 4),
		lpsgd.WithPolicyValue(p),
		lpsgd.WithMinQuantisedFraction(0.5),
		lpsgd.WithCodec("qsgd8b512"),
		lpsgd.WithEpochs(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Policy().Name(); got != "qsgd8b512;minfrac=0.5" {
		t.Fatalf("refined policy %q, want qsgd8b512;minfrac=0.5", got)
	}
	if p.Name() != "qsgd4b512" {
		t.Fatalf("options mutated the caller's policy to %q", p.Name())
	}
}

// TestWithPolicyMixedPrecisionTrainsOverTCP: a per-layer policy drives
// real framed training — the dense1 rule sends the output layer raw,
// everything else as 4-bit QSGD — and the replicas stay bit-identical
// even though one exchange mixes codecs.
func TestWithPolicyMixedPrecisionTrainsOverTCP(t *testing.T) {
	train, test := lpsgd.SyntheticImages(4, 256, 128, 42)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 32, 4),
		lpsgd.WithPolicy("qsgd4b512;minfrac=1;dense1=32bit"),
		lpsgd.WithWorkers(2),
		lpsgd.WithTransport(lpsgd.TCP),
		lpsgd.WithBatchSize(64),
		lpsgd.WithEpochs(3),
		lpsgd.WithLearningRate(0.08),
		lpsgd.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	// The plan must reflect the rule: dense1.* raw, dense0.* quantised.
	plan := trainer.Plan()
	h, err := trainer.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalWireBytes == 0 {
		t.Fatal("no bytes crossed the TCP fabric")
	}
	if !trainer.ReplicasInSync() {
		t.Fatal("replicas diverged under the mixed policy")
	}
	var sawRaw, sawQuantised bool
	for i := 0; i < plan.NumTensors(); i++ {
		switch plan.CodecFor(i).Name() {
		case "32bit":
			sawRaw = true
		case "qsgd4b512":
			sawQuantised = true
		}
	}
	if !sawRaw || !sawQuantised {
		t.Fatalf("plan is not mixed: raw=%v quantised=%v", sawRaw, sawQuantised)
	}
}

// TestFramedWireOverRawTCP: framed gradient bytes written by
// Encoder.EncodeTo cross a plain TCP connection and are decoded by
// quant.DecodeAny with no shared configuration — the receiver learns
// the codec from the frame header alone.
func TestFramedWireOverRawTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	shape := quant.Shape{Rows: 16, Cols: 16}
	n := shape.Len()
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i%17) - 8
	}

	type result struct {
		vals []float32
		err  error
	}
	got := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- result{nil, err}
			return
		}
		defer conn.Close()
		// Two frames from two different runtime-chosen codecs arrive on
		// one stream; DecodeAny consumes exactly one frame per call.
		first, err := quant.DecodeAny(conn)
		if err != nil {
			got <- result{nil, err}
			return
		}
		second, err := quant.DecodeAny(conn)
		if err != nil {
			got <- result{nil, err}
			return
		}
		got <- result{append(first, second...), nil}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, name := range []string{"1bit*64", "qsgd8b512"} {
		codec, err := quant.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.NewEncoder(n, shape, 7).EncodeTo(conn, src); err != nil {
			t.Fatalf("%s: EncodeTo over TCP: %v", name, err)
		}
	}

	r := <-got
	if r.err != nil {
		t.Fatalf("receiver: %v", r.err)
	}
	if len(r.vals) != 2*n {
		t.Fatalf("receiver decoded %d values, want %d", len(r.vals), 2*n)
	}
	// Cross-check against local headerless round-trips.
	for fi, name := range []string{"1bit*64", "qsgd8b512"} {
		codec, _ := quant.Parse(name)
		var buf bytes.Buffer
		if _, err := codec.NewEncoder(n, shape, 7).EncodeTo(&buf, src); err != nil {
			t.Fatal(err)
		}
		want, err := quant.DecodeAny(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if r.vals[fi*n+i] != want[i] {
				t.Fatalf("%s element %d: %v vs %v", name, i, r.vals[fi*n+i], want[i])
			}
		}
	}
}
