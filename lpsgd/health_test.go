package lpsgd_test

import (
	"errors"
	"testing"
	"time"

	"repro/lpsgd"
	"repro/parallel"
)

// TestHealthOptionValidation: malformed health-plane options surface
// from NewTrainer, not at the call site.
func TestHealthOptionValidation(t *testing.T) {
	model := lpsgd.MLP(64, 8, 4)
	cases := []struct {
		name string
		opt  lpsgd.Option
	}{
		{"negative heartbeat", lpsgd.WithHeartbeat(-time.Second, 0)},
		{"negative heartbeat timeout", lpsgd.WithHeartbeat(time.Second, -time.Second)},
		{"timeout below interval", lpsgd.WithHeartbeat(time.Second, time.Millisecond)},
		{"negative step deadline", lpsgd.WithStepDeadline(-time.Second)},
		{"nil health handler", lpsgd.WithHealthHandler(nil)},
	}
	for _, tc := range cases {
		if _, err := lpsgd.NewTrainer(model, tc.opt); err == nil {
			t.Errorf("%s: NewTrainer accepted an invalid option", tc.name)
		}
	}
}

// TestElasticOptionValidation: a negative rejoin window is rejected at
// NewTrainer, and a bare WithElastic outside cluster mode is inert —
// exactly like the other cluster-shaped options.
func TestElasticOptionValidation(t *testing.T) {
	model := lpsgd.MLP(64, 8, 4)
	if _, err := lpsgd.NewTrainer(model, lpsgd.WithElastic(1, -time.Second)); err == nil {
		t.Error("NewTrainer accepted a negative rejoin window")
	}
	trainer, err := lpsgd.NewTrainer(model,
		lpsgd.WithElastic(2, 30*time.Second),
		lpsgd.WithWorkers(2),
	)
	if err != nil {
		t.Fatalf("bare WithElastic outside cluster mode: %v", err)
	}
	trainer.Close()
}

// TestWithStepDeadlineThroughFacade: the step deadline reaches the
// engine and aborts a run through the public API.
func TestWithStepDeadlineThroughFacade(t *testing.T) {
	train, test := lpsgd.SyntheticImages(4, 64, 32, 7)
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 16, 4),
		lpsgd.WithWorkers(2),
		lpsgd.WithTransport(lpsgd.TCP),
		lpsgd.WithBatchSize(16),
		lpsgd.WithEpochs(1),
		lpsgd.WithStepDeadline(time.Nanosecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()
	_, err = trainer.Run(train, test)
	var dl parallel.ErrStepDeadline
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %v, want parallel.ErrStepDeadline", err)
	}
}

// TestHeartbeatIgnoredOutsideCluster: a bare WithHeartbeat without a
// cluster membership must not break single-process construction.
func TestHeartbeatIgnoredOutsideCluster(t *testing.T) {
	trainer, err := lpsgd.NewTrainer(lpsgd.MLP(64, 8, 4),
		lpsgd.WithHeartbeat(100*time.Millisecond, time.Second),
		lpsgd.WithHealthHandler(func(error) {}),
		lpsgd.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	trainer.Close()
}
