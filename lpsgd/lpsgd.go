// Package lpsgd is the public facade of the low-precision SGD library:
// one import, a functional-options constructor, and sensible defaults
// for everything the paper tuned. It wraps the building blocks —
// repro/quant (codecs and policies), repro/comm (fabrics and
// reducers), repro/parallel (the synchronous data-parallel engine)
// and repro/health (the cluster's failure-detection plane) — so
// applications select precision by one policy string and a transport
// by constant instead of hand-wiring configs.
//
// The precision surface is the policy grammar (quant.ParsePolicy):
// one string naming the base codec, the small-matrix exemption target,
// and per-tensor pattern rules. WithPolicy is the primary option — a
// bare codec name is a valid policy — and WithCodec /
// WithMinQuantisedFraction are shorthands editing one component of the
// same working policy:
//
//	trainer, err := lpsgd.NewTrainer(model,
//	    lpsgd.WithPolicy("qsgd4b512;embedding=topk0.001;*.b=32bit"),
//	    lpsgd.WithWorkers(8),
//	    lpsgd.WithTransport(lpsgd.TCP),
//	    lpsgd.WithEpochs(20),
//	)
//	history, err := trainer.Run(train, test)
//
// Codec names go through quant.Parse, which derives bits, bucket size,
// normalisation and level scheme from the name itself ("qsgd4b512",
// "1bit*64", "topk0.01", ...). Over the TCP transport every gradient
// message is a self-describing quant frame, so peers decode with no
// out-of-band codec agreement.
//
// Training can also span OS processes and machines: WithCluster joins
// a repro/cluster rendezvous, negotiates the precision policy with the
// peers (WithAcceptedPolicies, floored at "32bit") and trains this rank
// of the world over the dialled TCP mesh:
//
//	trainer, err := lpsgd.NewTrainer(model,
//	    lpsgd.WithCluster("10.0.0.1:7070", rank, 3),
//	    lpsgd.WithAcceptedPolicies("qsgd4b512;*.b=32bit", "qsgd4b512"),
//	    lpsgd.WithHeartbeat(250*time.Millisecond, 2*time.Second),
//	)
//
// Cluster sessions carry a health plane (repro/health): heartbeats on
// dedicated control links, a phi-or-deadline failure detector, and a
// coordinated abort, so a rank dying mid-epoch surfaces on every
// survivor as the same typed health.ErrPeerDead from Run — within
// roughly the heartbeat timeout — instead of hanging the exchange.
// WithHeartbeat tunes it, WithHealthHandler observes the verdict,
// WithStepDeadline bounds one synchronous step, and
// Trainer.StepStats reports per-rank step timings with slowest-rank
// attribution (telemetry that rides on the heartbeats themselves).
//
// See cmd/lpsgd-worker for the ready-made per-rank binary, including
// the exit-code contract external supervisors can restart on.
package lpsgd

import (
	"fmt"
	"time"

	"repro/cluster"
	"repro/elastic"
	"repro/health"
	"repro/nn"
	"repro/obs"
	"repro/parallel"
	"repro/quant"
	"repro/rng"
)

// BuildFunc constructs one model replica; it must be deterministic in
// its RNG argument so all replicas start bit-identical.
type BuildFunc = func(r *rng.RNG) *nn.Network

// Trainer is the synchronous data-parallel training engine (see
// repro/parallel for Run, Evaluate, checkpointing and sync inspection).
type Trainer = parallel.Trainer

// History is the per-epoch record a Run returns.
type History = parallel.History

// Primitive selects the aggregation algorithm.
type Primitive = parallel.Primitive

// Aggregation primitives, re-exported from repro/parallel.
const (
	// MPI is reduce-and-broadcast; it carries quantised payloads
	// natively.
	MPI = parallel.MPI
	// NCCL is the ring allreduce with full-precision sums.
	NCCL = parallel.NCCL
)

// Transport selects the byte-moving substrate beneath the aggregation
// primitive.
type Transport int

const (
	// InProcess moves gradients over in-process channels — the fast
	// path standing in for PCIe/NVLink peer-to-peer copies.
	InProcess Transport = iota
	// TCP moves gradients over real loopback sockets with
	// self-describing framed payloads — the host-mediated MPI path.
	TCP
)

// String names the transport.
func (t Transport) String() string {
	if t == TCP {
		return "TCP"
	}
	return "InProcess"
}

// config accumulates options before they are handed to the engine.
type config struct {
	cfg parallel.Config
	// policy is the working precision policy the codec-shaped options
	// edit component-wise; nil means "never touched" and lets the
	// engine default to full precision.
	policy  *quant.Policy
	lr      float32
	err     error
	cluster *clusterJoin
	accept  []string
	// handler is the WithHealthHandler callback, registered on the
	// session's monitor once one exists.
	handler func(error)
}

// editPolicy returns the working policy, creating the default
// (full-precision base, DefaultMinFrac, no rules) on first use.
func (c *config) editPolicy() *quant.Policy {
	if c.policy == nil {
		c.policy = quant.NewPolicy(nil)
	}
	return c.policy
}

// clusterJoin is a pending or pre-established cluster membership.
type clusterJoin struct {
	addr        string
	rank, world int
	timeout     time.Duration
	health      health.Config
	elastic     elastic.Config
	session     *cluster.Session
}

// Option mutates the trainer configuration; invalid options surface
// their error from NewTrainer, not at the call site.
type Option func(*config)

// WithPolicy selects the complete precision policy by name via
// quant.ParsePolicy — base codec, small-matrix exemption target and
// per-tensor pattern rules in one string:
//
//	lpsgd.WithPolicy("qsgd4b512")                          // plain codec
//	lpsgd.WithPolicy("qsgd4b512;minfrac=0.95")             // tighter exemption
//	lpsgd.WithPolicy("qsgd4b512;embedding=topk0.001;*.b=32bit")
//
// This is the primary precision option; WithCodec and
// WithMinQuantisedFraction are shorthands that edit one component of
// the same policy. WithPolicy replaces the whole working policy, so
// codec-shaped options given before it are discarded and ones given
// after it refine it.
func WithPolicy(name string) Option {
	return func(c *config) {
		p, err := quant.ParsePolicy(name)
		if err != nil {
			c.fail(err)
			return
		}
		c.policy = p
	}
}

// WithPolicyValue supplies an already-constructed policy. Like
// WithCodecValue it validates at option-apply time that the policy
// round-trips its own canonical name — the invariant cluster
// negotiation and framed decoding depend on.
func WithPolicyValue(p *quant.Policy) Option {
	return func(c *config) {
		if p == nil {
			c.fail(fmt.Errorf("lpsgd: nil policy"))
			return
		}
		if err := p.Validate(); err != nil {
			c.fail(fmt.Errorf("lpsgd: %w", err))
			return
		}
		// Later options (WithCodec, WithMinQuantisedFraction) edit the
		// working policy; a copy keeps those edits off the caller's
		// object.
		cp := *p
		c.policy = &cp
	}
}

// WithCodec selects the gradient codec by name via quant.Parse
// ("32bit", "qsgd4b512", "1bit*64", "topk0.01", ...). It edits the
// base codec of the working policy, preserving any exemption target or
// rules set by other options; WithPolicy subsumes it.
func WithCodec(name string) Option {
	return func(c *config) {
		codec, err := quant.Parse(name)
		if err != nil {
			c.fail(err)
			return
		}
		c.editPolicy().Base = codec
	}
}

// WithCodecValue supplies an already-constructed codec as the working
// policy's base. The codec's Name() must round-trip through quant.Parse
// to the same canonical spelling — that name is what travels in frame
// headers and cluster negotiation, so a codec that cannot be
// reconstructed from it would decode wrongly (or not at all) on every
// peer; such codecs are rejected here, at option-apply time.
func WithCodecValue(codec quant.Codec) Option {
	return func(c *config) {
		if codec == nil {
			c.fail(fmt.Errorf("lpsgd: nil codec"))
			return
		}
		name := codec.Name()
		rt, err := quant.Parse(name)
		if err != nil {
			c.fail(fmt.Errorf("lpsgd: codec name %q does not round-trip through quant.Parse (frames and negotiation could not reconstruct it): %w", name, err))
			return
		}
		if rt.Name() != name {
			c.fail(fmt.Errorf("lpsgd: codec name %q re-parses as %q; peers would reconstruct a different codec", name, rt.Name()))
			return
		}
		c.editPolicy().Base = codec
	}
}

// WithWorkers sets K, the number of simulated GPUs.
func WithWorkers(k int) Option {
	return func(c *config) { c.cfg.Workers = k }
}

// WithTransport selects the byte-moving substrate.
func WithTransport(t Transport) Option {
	return func(c *config) {
		switch t {
		case InProcess:
			c.cfg.UseTCP = false
		case TCP:
			c.cfg.UseTCP = true
		default:
			c.fail(fmt.Errorf("lpsgd: unknown transport %d", t))
		}
	}
}

// WithPrimitive selects MPI reduce-and-broadcast or the NCCL ring.
func WithPrimitive(p Primitive) Option {
	return func(c *config) { c.cfg.Primitive = p }
}

// WithCluster runs this process as one rank of a multi-process world:
// NewTrainer performs the cluster rendezvous at addr (rank 0 listens
// and coordinates, other ranks dial in), negotiates the session's
// precision policy with the peers, and returns a trainer that drives
// only this rank — gradients cross process and machine boundaries over
// the dialled TCP mesh. The negotiated policy overrides WithPolicy and
// WithCodec (which still contribute to the advertised set; see
// WithAcceptedPolicies), and the world size overrides WithWorkers.
// Every rank must use the same seed, schedule, batch size and model
// builder, or the replicas will not stay bit-identical.
func WithCluster(addr string, rank, world int) Option {
	return func(c *config) {
		if c.cluster == nil {
			c.cluster = &clusterJoin{}
		}
		// An already-adopted session is owned and must not leak when a
		// later option replaces the membership.
		if c.cluster.session != nil {
			c.cluster.session.Close()
			c.cluster.session = nil
		}
		c.cluster.addr = addr
		c.cluster.rank = rank
		c.cluster.world = world
	}
}

// WithClusterSession adopts an already-established cluster membership —
// for launchers that need cluster.NewCoordinator first to learn a
// ":0" rendezvous port before spawning the other ranks. The trainer
// takes ownership of the session and closes it on Close.
func WithClusterSession(s *cluster.Session) Option {
	return func(c *config) {
		if s == nil {
			c.fail(fmt.Errorf("lpsgd: nil cluster session"))
			return
		}
		if c.cluster == nil {
			c.cluster = &clusterJoin{}
		}
		if c.cluster.session != nil && c.cluster.session != s {
			c.cluster.session.Close()
		}
		c.cluster.session = s
	}
}

// WithClusterTimeout bounds every step of the WithCluster rendezvous
// handshake — dialling the coordinator (with retries while it is not
// up yet), the hello/welcome exchange, and mesh establishment. The
// default is 30 seconds; hand-launched multi-machine runs or
// schedulers that place ranks slowly need more. It does not bound the
// training traffic that follows, and has no effect with
// WithClusterSession (the session was already established).
func WithClusterTimeout(d time.Duration) Option {
	return func(c *config) {
		if d <= 0 {
			c.fail(fmt.Errorf("lpsgd: cluster timeout must be positive, got %v", d))
			return
		}
		if c.cluster == nil {
			c.cluster = &clusterJoin{}
		}
		c.cluster.timeout = d
	}
}

// WithHeartbeat tunes the cluster's health plane: every rank pings
// every peer over a dedicated control link each interval, and a peer
// silent for timeout (or whose inter-arrival statistics say it should
// have spoken long ago — see health.Detector) is declared dead. The
// first rank to reach a verdict broadcasts a coordinated abort, so
// every survivor's Run returns the same health.ErrPeerDead instead of
// hanging in the exchange. A zero interval disables the health plane
// entirely; a zero timeout defaults to 8× the interval.
//
// The coordinator's values govern the whole session (they ride in the
// rendezvous welcome); on other ranks the option only shapes the
// advertised preference. It has no effect with WithClusterSession —
// the session's health plane was fixed when the rendezvous ran — and
// outside cluster mode.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(c *config) {
		if interval < 0 || timeout < 0 {
			c.fail(fmt.Errorf("lpsgd: heartbeat interval %v / timeout %v must not be negative", interval, timeout))
			return
		}
		if timeout > 0 && timeout < interval {
			c.fail(fmt.Errorf("lpsgd: heartbeat timeout %v shorter than the interval %v", timeout, interval))
			return
		}
		if c.cluster == nil {
			c.cluster = &clusterJoin{}
		}
		c.cluster.health = health.Config{
			Interval: interval,
			Timeout:  timeout,
			Disable:  interval == 0,
		}
	}
}

// WithElastic turns a death verdict into a recoverable event: instead
// of aborting the whole cluster when one rank dies, the survivors
// quiesce at the next step barrier, the coordinator holds a rejoin
// barrier open for rejoinWindow, a replacement process (lpsgd-worker
// -rejoin, typically launched by a supervisor reacting to the death)
// claims the dead rank's slot via rendezvous state transfer, and
// training resumes — with digests bit-identical to an uninterrupted
// run for residual-free precision policies (32bit, the QSGD family;
// see repro/elastic for the exact-resume contract). maxRejoins caps
// how many such repairs this process tolerates (0 means
// elastic.DefaultMaxRejoins, negative means unlimited); a further
// death, or a window that expires without a replacement, surfaces the
// usual health.ErrPeerDead. A zero rejoinWindow means
// elastic.DefaultRejoinWindow.
//
// Like WithHeartbeat, the coordinator governs the session: its window
// rides in the rendezvous welcome and decides for every rank whether
// elasticity is on (on other ranks the option only sets the local
// rejoin budget). Elasticity requires the health plane — the failure
// detector's verdict is the rejoin trigger — so combining WithElastic
// with a disabled heartbeat is a construction error on the
// coordinator. No effect outside cluster mode.
func WithElastic(maxRejoins int, rejoinWindow time.Duration) Option {
	return func(c *config) {
		if rejoinWindow < 0 {
			c.fail(fmt.Errorf("lpsgd: rejoin window must not be negative, got %v", rejoinWindow))
			return
		}
		if c.cluster == nil {
			c.cluster = &clusterJoin{}
		}
		c.cluster.elastic = elastic.Config{
			Enable:       true,
			RejoinWindow: rejoinWindow,
			MaxRejoins:   maxRejoins,
		}
	}
}

// WithStepDeadline bounds the wall time of one synchronous step
// (compute + gradient exchange); on expiry the trainer aborts the
// fabric and Run returns a parallel.ErrStepDeadline. Where the
// heartbeat catches a dead peer, the deadline catches a live but
// hopeless one: a rank that heartbeats happily while its exchange
// never finishes. Zero (the default) disables it.
func WithStepDeadline(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.fail(fmt.Errorf("lpsgd: step deadline must not be negative, got %v", d))
			return
		}
		c.cfg.StepDeadline = d
	}
}

// WithHealthHandler registers a callback invoked once per death
// verdict the health plane reaches — after the fabric has been
// aborted, so the callback may inspect state but the exchange is
// already unblocking. In an elastic session (WithElastic) that can
// mean once per repaired death: the handler is re-registered on every
// replacement monitor a rejoin round installs. Use it for operational
// side channels (alerting, checkpoint-on-death); Run still returns
// the health.ErrPeerDead verdict when a death goes unrepaired. No
// effect when the health plane is off or outside cluster mode.
func WithHealthHandler(fn func(error)) Option {
	return func(c *config) {
		if fn == nil {
			c.fail(fmt.Errorf("lpsgd: nil health handler"))
			return
		}
		c.handler = fn
	}
}

// WithMetrics attaches an obs metrics registry: the trainer registers
// its counters, gauges and step histograms (wire bytes, steps, phase
// timings, per-peer link traffic in cluster mode) on it at
// construction. Serve the registry with obs.Serve or scrape it via
// Registry.WriteText. Nil is the default (no metrics).
func WithMetrics(reg *obs.Registry) Option {
	return func(c *config) { c.cfg.Metrics = reg }
}

// WithTracer attaches an obs step-phase tracer: the trainer and its
// reducers record compute/quantise/encode/transfer/decode/barrier
// spans per step, and the cluster session (when one is joined through
// this facade) records its rendezvous and rejoin rounds as control
// spans. The tracer is nil-safe and fully inert when unset; convert a
// captured trace with lpsgd-trace to compare against the simulator.
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.cfg.Tracer = tr }
}

// WithTelemetry turns on the convergence-telemetry sampler: every
// everySteps steps the trainer snapshots the step loss, per-tensor
// gradient norms and the live quantisation error of the negotiated
// codec (probed on a scratch copy of the gradients — training bits
// and data-plane traffic are untouched), publishes the sample to the
// local metrics registry (WithMetrics) and, in cluster mode, ships it
// to every peer over the heartbeat control plane, where the bytes
// count under ControlBytes. Zero (the default) disables sampling.
func WithTelemetry(everySteps int) Option {
	return func(c *config) {
		if everySteps < 0 {
			c.fail(fmt.Errorf("lpsgd: telemetry cadence must be non-negative, got %d", everySteps))
			return
		}
		c.cfg.TelemetryEvery = everySteps
	}
}

// WithTelemetryObserver registers a callback invoked once per
// telemetry snapshot this rank learns about — synchronously for its
// own samples, from the control-plane read loop for a peer's. Feed it
// to cluster.TelemetryHub.Observe to aggregate a cluster-wide view.
// Like WithHealthHandler, the observer survives elastic rejoins: it
// is re-registered on every replacement monitor. No effect outside
// cluster mode or when telemetry is off.
func WithTelemetryObserver(fn func(peer int, s health.TelemetrySnapshot)) Option {
	return func(c *config) {
		if fn == nil {
			c.fail(fmt.Errorf("lpsgd: nil telemetry observer"))
			return
		}
		c.cfg.TelemetryObserver = fn
	}
}

// WithAcceptedPolicies sets the policy strings (quant.ParsePolicy
// grammar — bare codec names included) this rank advertises during the
// cluster rendezvous; the session settles on the cheapest policy every
// peer accepts by canonical spelling, with "32bit" as the floor.
// Without this option the rank advertises its configured policy (plus
// the floor). Outside cluster mode the option has no effect.
func WithAcceptedPolicies(names ...string) Option {
	return func(c *config) { c.accept = names }
}

// WithAcceptedCodecs sets the accepted advertisement from codec names.
//
// Deprecated: use WithAcceptedPolicies — every codec name is a valid
// policy string, so this is the same option under its old name.
func WithAcceptedCodecs(names ...string) Option {
	return WithAcceptedPolicies(names...)
}

// WithBatchSize sets the global minibatch size, sharded over workers.
func WithBatchSize(n int) Option {
	return func(c *config) { c.cfg.BatchSize = n }
}

// WithEpochs sets the number of passes over the training set.
func WithEpochs(n int) Option {
	return func(c *config) { c.cfg.Epochs = n }
}

// WithLearningRate sets a constant learning rate; WithSchedule
// overrides it.
func WithLearningRate(lr float32) Option {
	return func(c *config) { c.lr = lr }
}

// WithSchedule supplies a per-epoch learning-rate schedule.
func WithSchedule(s nn.Schedule) Option {
	return func(c *config) { c.cfg.Schedule = s }
}

// WithMomentum sets the SGD momentum (default: the paper's 0.9).
func WithMomentum(m float32) Option {
	return func(c *config) { c.cfg.Momentum = m }
}

// WithWeightDecay sets the L2 regularisation coefficient.
func WithWeightDecay(wd float32) Option {
	return func(c *config) { c.cfg.WeightDecay = wd }
}

// WithClipNorm bounds the global gradient L2 norm after aggregation.
func WithClipNorm(limit float32) Option {
	return func(c *config) { c.cfg.ClipNorm = limit }
}

// WithSeed fixes all randomness (init, shuffling, stochastic rounding).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.cfg.Seed = seed }
}

// WithEvalEvery evaluates test accuracy every n epochs.
func WithEvalEvery(n int) Option {
	return func(c *config) { c.cfg.EvalEvery = n }
}

// WithMinQuantisedFraction sets the small-matrix exemption target
// (default: the paper's 0.99): the plan picks the largest exemption
// threshold that still quantises at least this fraction of the
// parameters no policy rule claims. It must lie in (0, 1]; zero is
// rejected rather than silently falling back to the default — to
// disable quantisation entirely, use WithCodec("32bit"). It edits the
// working policy's MinFrac; "minfrac=<f>" inside WithPolicy is the
// same knob.
func WithMinQuantisedFraction(f float64) Option {
	return func(c *config) {
		if !(f > 0 && f <= 1) {
			c.fail(fmt.Errorf("lpsgd: min quantised fraction %v outside (0,1]; use WithCodec(\"32bit\") to disable quantisation", f))
			return
		}
		c.editPolicy().MinFrac = f
	}
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// NewTrainer builds a synchronous data-parallel trainer from a model
// builder and options. Unset options fall back to a small, paper-shaped
// default: 4 workers, global batch 64, 10 epochs, constant LR 0.05,
// momentum 0.9, full-precision gradients, the MPI primitive over the
// in-process transport.
func NewTrainer(model BuildFunc, opts ...Option) (*Trainer, error) {
	c := config{
		cfg: parallel.Config{
			Workers:   4,
			BatchSize: 64,
			Epochs:    10,
			Momentum:  0.9,
		},
		lr: 0.05,
	}
	for _, opt := range opts {
		opt(&c)
	}
	// An adopted session is owned from the moment the option ran: every
	// error path must release it, or the mesh stays open and the peer
	// ranks block in their first exchange forever.
	if model == nil {
		c.fail(fmt.Errorf("lpsgd: model builder is required"))
	}
	if c.err != nil {
		if c.cluster != nil && c.cluster.session != nil {
			c.cluster.session.Close()
		}
		return nil, c.err
	}
	if c.cfg.Schedule == nil {
		c.cfg.Schedule = nn.ConstantLR(c.lr)
	}
	c.cfg.Policy = c.policy
	// A bare WithClusterTimeout without WithCluster/WithClusterSession
	// names no cluster to join and is ignored.
	if c.cluster != nil && (c.cluster.session != nil || c.cluster.addr != "") {
		sess := c.cluster.session
		if sess == nil {
			var err error
			sess, err = cluster.Join(cluster.Config{
				Addr:    c.cluster.addr,
				Rank:    c.cluster.rank,
				World:   c.cluster.world,
				Accept:  c.acceptedPolicies(),
				Timeout: c.cluster.timeout,
				Health:  c.cluster.health,
				Elastic: c.cluster.elastic,
				Tracer:  c.cfg.Tracer,
			})
			if err != nil {
				return nil, err
			}
		}
		// The rendezvous outcome drives the engine: negotiated policy,
		// world size, this rank, the established mesh, the health plane
		// watching it (the trainer owns the monitor and closes it — bye
		// first, then sockets — in Close), and — when the coordinator
		// enabled elasticity — the session itself as the trainer's
		// rejoin controller.
		c.cfg.Policy = sess.Policy()
		c.cfg.Workers = sess.World()
		c.cfg.Rank = sess.Rank()
		c.cfg.Fabric = sess.Fabric()
		c.cfg.Monitor = sess.Monitor()
		c.cfg.UseTCP = false
		if sess.Elastic().Enable {
			c.cfg.Elastic = sess
			c.cfg.MaxRejoins = sess.Elastic().MaxRejoins
			// WithElastic's budget wins over an adopted session's: the
			// session learnt the coordinator's window from the welcome,
			// but the budget is a per-process choice.
			if c.cluster.elastic.MaxRejoins != 0 {
				c.cfg.MaxRejoins = c.cluster.elastic.MaxRejoins
			}
		}
		// The handler goes through the trainer, not straight onto the
		// session's monitor: a rejoin round replaces the monitor, and
		// the trainer re-registers the handler on each replacement so
		// alerting keeps working across repairs.
		c.cfg.HealthHandler = c.handler
		t, err := parallel.NewTrainer(model, c.cfg)
		if err != nil {
			sess.Close()
			return nil, err
		}
		return t, nil
	}
	return parallel.NewTrainer(model, c.cfg)
}

// acceptedPolicies resolves the advertised policy set for a
// rendezvous: the explicit WithAcceptedPolicies list, or the configured
// policy's canonical name.
func (c *config) acceptedPolicies() []string {
	if len(c.accept) > 0 {
		return c.accept
	}
	if c.policy != nil {
		return []string{c.policy.Name()}
	}
	return nil
}
