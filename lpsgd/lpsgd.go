// Package lpsgd is the public facade of the low-precision SGD library:
// one import, a functional-options constructor, and sensible defaults
// for everything the paper tuned. It wraps the building blocks —
// repro/quant (codecs), repro/comm (fabrics and reducers) and
// repro/parallel (the synchronous data-parallel engine) — so
// applications select a codec by name and a transport by constant
// instead of hand-wiring configs:
//
//	trainer, err := lpsgd.NewTrainer(model,
//	    lpsgd.WithCodec("qsgd4b512"),
//	    lpsgd.WithWorkers(8),
//	    lpsgd.WithTransport(lpsgd.TCP),
//	    lpsgd.WithEpochs(20),
//	)
//	history, err := trainer.Run(train, test)
//
// Codec names go through quant.Parse, which derives bits, bucket size,
// normalisation and level scheme from the name itself ("qsgd4b512",
// "1bit*64", "topk0.01", ...). Over the TCP transport every gradient
// message is a self-describing quant frame, so peers decode with no
// out-of-band codec agreement.
package lpsgd

import (
	"fmt"

	"repro/nn"
	"repro/parallel"
	"repro/quant"
	"repro/rng"
)

// BuildFunc constructs one model replica; it must be deterministic in
// its RNG argument so all replicas start bit-identical.
type BuildFunc = func(r *rng.RNG) *nn.Network

// Trainer is the synchronous data-parallel training engine (see
// repro/parallel for Run, Evaluate, checkpointing and sync inspection).
type Trainer = parallel.Trainer

// History is the per-epoch record a Run returns.
type History = parallel.History

// Primitive selects the aggregation algorithm.
type Primitive = parallel.Primitive

// Aggregation primitives, re-exported from repro/parallel.
const (
	// MPI is reduce-and-broadcast; it carries quantised payloads
	// natively.
	MPI = parallel.MPI
	// NCCL is the ring allreduce with full-precision sums.
	NCCL = parallel.NCCL
)

// Transport selects the byte-moving substrate beneath the aggregation
// primitive.
type Transport int

const (
	// InProcess moves gradients over in-process channels — the fast
	// path standing in for PCIe/NVLink peer-to-peer copies.
	InProcess Transport = iota
	// TCP moves gradients over real loopback sockets with
	// self-describing framed payloads — the host-mediated MPI path.
	TCP
)

// String names the transport.
func (t Transport) String() string {
	if t == TCP {
		return "TCP"
	}
	return "InProcess"
}

// config accumulates options before they are handed to the engine.
type config struct {
	cfg parallel.Config
	lr  float32
	err error
}

// Option mutates the trainer configuration; invalid options surface
// their error from NewTrainer, not at the call site.
type Option func(*config)

// WithCodec selects the gradient codec by name via quant.Parse
// ("32bit", "qsgd4b512", "1bit*64", "topk0.01", ...).
func WithCodec(name string) Option {
	return func(c *config) {
		codec, err := quant.Parse(name)
		if err != nil {
			c.fail(err)
			return
		}
		c.cfg.Codec = codec
	}
}

// WithCodecValue supplies an already-constructed codec.
func WithCodecValue(codec quant.Codec) Option {
	return func(c *config) { c.cfg.Codec = codec }
}

// WithWorkers sets K, the number of simulated GPUs.
func WithWorkers(k int) Option {
	return func(c *config) { c.cfg.Workers = k }
}

// WithTransport selects the byte-moving substrate.
func WithTransport(t Transport) Option {
	return func(c *config) {
		switch t {
		case InProcess:
			c.cfg.UseTCP = false
		case TCP:
			c.cfg.UseTCP = true
		default:
			c.fail(fmt.Errorf("lpsgd: unknown transport %d", t))
		}
	}
}

// WithPrimitive selects MPI reduce-and-broadcast or the NCCL ring.
func WithPrimitive(p Primitive) Option {
	return func(c *config) { c.cfg.Primitive = p }
}

// WithBatchSize sets the global minibatch size, sharded over workers.
func WithBatchSize(n int) Option {
	return func(c *config) { c.cfg.BatchSize = n }
}

// WithEpochs sets the number of passes over the training set.
func WithEpochs(n int) Option {
	return func(c *config) { c.cfg.Epochs = n }
}

// WithLearningRate sets a constant learning rate; WithSchedule
// overrides it.
func WithLearningRate(lr float32) Option {
	return func(c *config) { c.lr = lr }
}

// WithSchedule supplies a per-epoch learning-rate schedule.
func WithSchedule(s nn.Schedule) Option {
	return func(c *config) { c.cfg.Schedule = s }
}

// WithMomentum sets the SGD momentum (default: the paper's 0.9).
func WithMomentum(m float32) Option {
	return func(c *config) { c.cfg.Momentum = m }
}

// WithWeightDecay sets the L2 regularisation coefficient.
func WithWeightDecay(wd float32) Option {
	return func(c *config) { c.cfg.WeightDecay = wd }
}

// WithClipNorm bounds the global gradient L2 norm after aggregation.
func WithClipNorm(limit float32) Option {
	return func(c *config) { c.cfg.ClipNorm = limit }
}

// WithSeed fixes all randomness (init, shuffling, stochastic rounding).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.cfg.Seed = seed }
}

// WithEvalEvery evaluates test accuracy every n epochs.
func WithEvalEvery(n int) Option {
	return func(c *config) { c.cfg.EvalEvery = n }
}

// WithMinQuantisedFraction sets the small-matrix exemption target
// (default: the paper's 0.99): the plan picks the largest exemption
// threshold that still quantises at least this fraction of all
// parameters. It must lie in (0, 1]; zero is rejected rather than
// silently falling back to the default — to disable quantisation
// entirely, use WithCodec("32bit").
func WithMinQuantisedFraction(f float64) Option {
	return func(c *config) {
		if !(f > 0 && f <= 1) {
			c.fail(fmt.Errorf("lpsgd: min quantised fraction %v outside (0,1]; use WithCodec(\"32bit\") to disable quantisation", f))
			return
		}
		c.cfg.MinQuantisedFraction = f
	}
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// NewTrainer builds a synchronous data-parallel trainer from a model
// builder and options. Unset options fall back to a small, paper-shaped
// default: 4 workers, global batch 64, 10 epochs, constant LR 0.05,
// momentum 0.9, full-precision gradients, the MPI primitive over the
// in-process transport.
func NewTrainer(model BuildFunc, opts ...Option) (*Trainer, error) {
	if model == nil {
		return nil, fmt.Errorf("lpsgd: model builder is required")
	}
	c := config{
		cfg: parallel.Config{
			Workers:   4,
			BatchSize: 64,
			Epochs:    10,
			Momentum:  0.9,
		},
		lr: 0.05,
	}
	for _, opt := range opts {
		opt(&c)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.cfg.Schedule == nil {
		c.cfg.Schedule = nn.ConstantLR(c.lr)
	}
	return parallel.NewTrainer(model, c.cfg)
}
