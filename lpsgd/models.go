package lpsgd

import (
	"fmt"

	"repro/data"
	"repro/nn"
	"repro/rng"
)

// MLP returns a builder for a fully connected ReLU network with the
// given layer widths: MLP(64, 48, 10) is a 64-input, one-hidden-layer,
// 10-class classifier. It covers the facade's quickstart needs; richer
// architectures (convolutions, LSTMs, residual blocks) come from
// composing repro/nn layers directly.
func MLP(widths ...int) BuildFunc {
	if len(widths) < 2 {
		panic("lpsgd: MLP needs at least an input and an output width")
	}
	return func(r *rng.RNG) *nn.Network {
		var layers []nn.Layer
		for i := 0; i+1 < len(widths); i++ {
			layers = append(layers, nn.NewDense(denseName(i), widths[i], widths[i+1], r))
			if i+2 < len(widths) {
				layers = append(layers, nn.NewReLU("relu"+denseName(i)))
			}
		}
		return nn.MustNetwork(layers...)
	}
}

func denseName(i int) string {
	return fmt.Sprintf("dense%d", i)
}

// SyntheticImages returns a deterministic synthetic image-classification
// task (a laptop-scale stand-in for CIFAR-10): single-channel 8×8
// images — 64 inputs, so MLP(64, ..., classes) fits — split into train
// and test sets.
func SyntheticImages(classes, trainN, testN int, seed uint64) (train, test *data.Dataset) {
	return data.MakeImages(data.ImageConfig{
		Classes: classes, Channels: 1, H: 8, W: 8,
		TrainN: trainN, TestN: testN, Noise: 0.8, Seed: seed,
	})
}

// SyntheticSequences returns a deterministic synthetic sequence task (a
// stand-in for AN4-style speech frames): frames×features inputs
// flattened to frames·features values per sample.
func SyntheticSequences(classes, frames, features, trainN, testN int, seed uint64) (train, test *data.Dataset) {
	return data.MakeSequences(data.SequenceConfig{
		Classes: classes, Frames: frames, Features: features,
		TrainN: trainN, TestN: testN, Noise: 1.0, Seed: seed,
	})
}
