package core

import (
	"bytes"
	"testing"

	"repro/data"
	"repro/nn"
	"repro/rng"
)

func testData() (*data.Dataset, *data.Dataset) {
	return data.MakeImages(data.ImageConfig{
		Classes: 3, Channels: 1, H: 4, W: 4,
		TrainN: 192, TestN: 96, Noise: 0.5, Seed: 3,
	})
}

func testModel(r *rng.RNG) *nn.Network {
	return nn.MustNetwork(
		nn.NewDense("d1", 16, 24, r),
		nn.NewReLU("r1"),
		nn.NewDense("d2", 24, 3, r),
	)
}

func TestTrainQuantisedEndToEnd(t *testing.T) {
	train, test := testData()
	h, err := TrainQuantised(TrainOptions{
		Model: testModel, Train: train, Test: test,
		Codec: QSGD(4, 512), Workers: 4,
		BatchSize: 32, Epochs: 6, LR: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.FinalAccuracy < 0.8 {
		t.Fatalf("end-to-end accuracy %v", h.FinalAccuracy)
	}
	if h.TotalWireBytes == 0 {
		t.Fatal("no bytes moved")
	}
}

func TestTrainQuantisedNCCL(t *testing.T) {
	train, test := testData()
	h, err := TrainQuantised(TrainOptions{
		Model: testModel, Train: train, Test: test,
		Codec: OneBitSGDReshaped(64), Workers: 2, UseNCCL: true,
		BatchSize: 32, Epochs: 3, LR: 0.1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Epochs) != 3 {
		t.Fatal("wrong epoch count")
	}
}

func TestTrainValidation(t *testing.T) {
	train, test := testData()
	if _, err := TrainQuantised(TrainOptions{Train: train, Test: test}); err == nil {
		t.Error("expected error without model")
	}
	if _, err := TrainQuantised(TrainOptions{Model: testModel}); err == nil {
		t.Error("expected error without data")
	}
}

func TestCodecConstructors(t *testing.T) {
	if FullPrecision().Name() != "32bit" {
		t.Error("FullPrecision name")
	}
	if OneBitSGD().Name() != "1bit" {
		t.Error("OneBitSGD name")
	}
	if OneBitSGDReshaped(64).Name() != "1bit*64" {
		t.Error("reshaped name")
	}
	if QSGD(4, 512).Name() != "qsgd4b512" {
		t.Error("QSGD name")
	}
	if _, err := CodecByName("qsgd8"); err != nil {
		t.Error(err)
	}
}

func TestEstimate(t *testing.T) {
	r, err := Estimate(EstimateOptions{
		Network: "AlexNet", Machine: "EC2-P2",
		Primitive: "MPI", Precision: "qsgd4", GPUs: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SamplesPerSec < 100 {
		t.Fatalf("implausible throughput %v", r.SamplesPerSec)
	}
	if r.Codec != "qsgd4b512" {
		t.Fatalf("codec %q", r.Codec)
	}
}

func TestEstimateDefaults(t *testing.T) {
	r, err := Estimate(EstimateOptions{Network: "ResNet50", Machine: "DGX-1", GPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Primitive != "MPI" || r.Codec != "32bit" {
		t.Fatalf("defaults wrong: %s %s", r.Primitive, r.Codec)
	}
}

func TestEstimateErrors(t *testing.T) {
	cases := []EstimateOptions{
		{Network: "Nope", Machine: "EC2-P2", GPUs: 2},
		{Network: "AlexNet", Machine: "Nope", GPUs: 2},
		{Network: "AlexNet", Machine: "EC2-P2", Primitive: "RDMA", GPUs: 2},
		{Network: "AlexNet", Machine: "EC2-P2", Precision: "qsgd3", GPUs: 2},
		{Network: "AlexNet", Machine: "EC2-P2", Primitive: "NCCL", GPUs: 16},
	}
	for i, opts := range cases {
		if _, err := Estimate(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSessionCheckpointRoundtrip(t *testing.T) {
	train, test := testData()
	opts := TrainOptions{
		Model: testModel, Train: train, Test: test,
		Codec: QSGD(8, 512), Workers: 2,
		BatchSize: 32, Epochs: 3, LR: 0.1, Seed: 21,
	}
	s1, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s1.Trainer().SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh session loaded from the checkpoint must evaluate to the
	// same accuracy without training.
	s2, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Trainer().LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	a1 := s1.Trainer().Evaluate(test)
	a2 := s2.Trainer().Evaluate(test)
	if a1 != a2 {
		t.Fatalf("checkpointed model evaluates differently: %v vs %v", a1, a2)
	}
	if !s2.Trainer().ReplicasInSync() {
		t.Fatal("LoadCheckpoint broke replica sync")
	}
}
