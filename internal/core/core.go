// Package core ties the experiment machinery together: the paper's
// low-precision gradient codecs (1bitSGD, reshaped 1bitSGD*, QSGD)
// driving synchronous data-parallel SGD, plus the calibrated
// performance simulator. Applications should prefer the public
// repro/lpsgd facade; core remains the internal glue the harness and
// CLI tools build on, notably Estimate over the simulator.
//
// Typical use:
//
//	study, _ := core.TrainQuantised(core.TrainOptions{
//	    Model:   myBuilder,      // func(*rng.RNG) *nn.Network
//	    Codec:   core.QSGD(4, 512),
//	    Workers: 8,
//	    ...
//	})
//
// or, for performance questions:
//
//	r, _ := core.Estimate(core.EstimateOptions{
//	    Network: "AlexNet", Machine: "EC2-P2",
//	    Primitive: "MPI", Precision: "qsgd4", GPUs: 8,
//	})
package core

import (
	"fmt"
	"strings"

	"repro/data"
	"repro/internal/workload"
	"repro/nn"
	"repro/parallel"
	"repro/quant"
	"repro/rng"
	"repro/sim"
)

// Codec is the gradient-compression interface (see repro/quant).
type Codec = quant.Codec

// FullPrecision returns the 32-bit identity codec.
func FullPrecision() Codec { return quant.FP32{} }

// OneBitSGD returns CNTK's classic column-wise 1bitSGD codec with error
// feedback.
func OneBitSGD() Codec { return quant.OneBit{} }

// OneBitSGDReshaped returns the paper's bucket-reshaped 1bitSGD* codec.
func OneBitSGDReshaped(bucket int) Codec { return quant.NewOneBitReshaped(bucket) }

// QSGD returns the stochastic quantisation codec with bits ∈ {2,4,8,16}
// and the given bucket size, using max-norm scaling (the paper's
// accuracy-preferred choice).
func QSGD(bits, bucket int) Codec { return quant.NewQSGD(bits, bucket, quant.MaxNorm) }

// CodecByName resolves codec names and the paper's row labels ("32bit",
// "qsgd4b512", "1bit*", ...) through the quant.Parse grammar.
func CodecByName(name string) (Codec, error) { return quant.Parse(name) }

// TrainOptions configures a real quantised data-parallel training run.
type TrainOptions struct {
	// Model builds one replica; it must be deterministic in its RNG.
	Model func(r *rng.RNG) *nn.Network
	// Train and Test are the datasets.
	Train, Test *data.Dataset
	// Policy is the precision policy (base codec, exemption target,
	// per-tensor rules). Nil falls back to Codec.
	Policy *quant.Policy
	// Codec compresses gradients (nil = full precision). Ignored when
	// Policy is set.
	Codec Codec
	// Workers is the simulated GPU count.
	Workers int
	// UseNCCL selects the ring-allreduce primitive instead of MPI
	// reduce-and-broadcast.
	UseNCCL bool
	// BatchSize is the global minibatch.
	BatchSize int
	// Epochs to run.
	Epochs int
	// LR is the (constant) learning rate; use Schedule for more.
	LR float32
	// Schedule overrides LR when non-nil.
	Schedule nn.Schedule
	// Momentum defaults to the paper's 0.9.
	Momentum float32
	// Seed fixes all randomness.
	Seed uint64
}

// Session is a configured training run whose trainer (and therefore
// model, checkpointing and evaluation) is accessible before and after
// Run.
type Session struct {
	opts    TrainOptions
	trainer *parallel.Trainer
}

// NewSession validates opts and builds the replicas, fabric and
// reducer without starting training.
func NewSession(opts TrainOptions) (*Session, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("core: TrainOptions.Model is required")
	}
	if opts.Train == nil || opts.Test == nil {
		return nil, fmt.Errorf("core: TrainOptions.Train and Test are required")
	}
	prim := parallel.MPI
	if opts.UseNCCL {
		prim = parallel.NCCL
	}
	sched := opts.Schedule
	if sched == nil {
		lr := opts.LR
		if lr == 0 {
			lr = 0.05
		}
		sched = nn.ConstantLR(lr)
	}
	momentum := opts.Momentum
	if momentum == 0 {
		momentum = 0.9
	}
	// TrainOptions keeps its Policy-or-Codec surface for callers, but
	// the pair compiles into a policy here so the deprecated
	// parallel.Config.Codec shim field gains no new users (the
	// normalization in parallel fills Base/MinFrac defaults the same
	// way it fills the deprecated pair's).
	policy := opts.Policy
	if policy == nil {
		policy = &quant.Policy{Base: opts.Codec}
	}
	tr, err := parallel.NewTrainer(opts.Model, parallel.Config{
		Workers:   opts.Workers,
		Policy:    policy,
		Primitive: prim,
		BatchSize: opts.BatchSize,
		Epochs:    opts.Epochs,
		Schedule:  sched,
		Momentum:  momentum,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Session{opts: opts, trainer: tr}, nil
}

// Trainer exposes the underlying engine (model access, checkpointing,
// evaluation).
func (s *Session) Trainer() *parallel.Trainer { return s.trainer }

// Run executes the configured training and returns its history.
func (s *Session) Run() (*parallel.History, error) {
	return s.trainer.Run(s.opts.Train, s.opts.Test)
}

// TrainQuantised runs synchronous data-parallel SGD with low-precision
// gradient exchange and returns the per-epoch history.
func TrainQuantised(opts TrainOptions) (*parallel.History, error) {
	s, err := NewSession(opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// EstimateOptions selects a performance-simulator configuration by
// name, mirroring the paper's experiment axes.
type EstimateOptions struct {
	// Network is a Figure 3 name: AlexNet, VGG19, BN-Inception,
	// ResNet50, ResNet152, ResNet110, LSTM.
	Network string
	// Machine is EC2-P2 or DGX-1.
	Machine string
	// Primitive is MPI or NCCL.
	Primitive string
	// Precision is a precision policy string (quant.ParsePolicy
	// grammar): a paper row label such as 32bit, qsgd16/8/4/2, 1bit,
	// 1bit*, or a full mixed policy like "qsgd4b512;fc6=topk0.01".
	Precision string
	// GPUs is the device count.
	GPUs int
	// Batch overrides Figure 4 when positive.
	Batch int
}

// Estimate prices one configuration with the calibrated cost model.
func Estimate(opts EstimateOptions) (sim.Result, error) {
	net, err := workload.NetworkByName(opts.Network)
	if err != nil {
		return sim.Result{}, err
	}
	m, err := workload.MachineByName(opts.Machine)
	if err != nil {
		return sim.Result{}, err
	}
	var prim sim.Primitive
	switch strings.ToUpper(opts.Primitive) {
	case "MPI", "":
		prim = sim.MPI
	case "NCCL":
		prim = sim.NCCL
	default:
		return sim.Result{}, fmt.Errorf("core: unknown primitive %q", opts.Primitive)
	}
	precision := opts.Precision
	if precision == "" {
		precision = "32bit"
	}
	policy, err := quant.ParsePolicy(precision)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(sim.Config{
		Network:       net,
		Machine:       m,
		Primitive:     prim,
		Policy:        policy,
		GPUs:          opts.GPUs,
		BatchOverride: opts.Batch,
	})
}
