// Package simulate is a deprecated shim over the top-level sim
// package.
//
// The cost model grew into a first-class subsystem — a calibrated
// single-exchange model plus a cluster-scale discrete-event simulator —
// and now lives in package sim, importable from outside the module's
// internal tree. Everything here is a pure alias; new code should
// import repro/sim directly.
//
// Deprecated: use package repro/sim.
package simulate

import "repro/sim"

// Primitive selects the exchange algorithm.
//
// Deprecated: use sim.Primitive.
type Primitive = sim.Primitive

// The exchange primitives.
//
// Deprecated: use sim.MPI and sim.NCCL.
const (
	MPI  = sim.MPI
	NCCL = sim.NCCL
)

// KernelModel prices the quantisation kernels.
//
// Deprecated: use sim.KernelModel.
type KernelModel = sim.KernelModel

// DefaultKernel is the calibrated kernel cost model.
//
// Deprecated: use sim.DefaultKernel.
var DefaultKernel = sim.DefaultKernel

// Config describes one simulated configuration.
//
// Deprecated: use sim.Config.
type Config = sim.Config

// Result is one priced configuration.
//
// Deprecated: use sim.Result.
type Result = sim.Result

// Run prices one training iteration.
//
// Deprecated: use sim.Run.
func Run(cfg Config) (Result, error) { return sim.Run(cfg) }

// Scalability converts a result into the paper's scalability metric.
//
// Deprecated: use sim.Scalability.
var Scalability = sim.Scalability

// WithDummyParams grows a network by synthetic parameters.
//
// Deprecated: use sim.WithDummyParams.
var WithDummyParams = sim.WithDummyParams
