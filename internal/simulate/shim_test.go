package simulate

import (
	"testing"

	"repro/internal/workload"
	"repro/sim"
)

// TestShimDelegatesToSim: the deprecated aliases must price exactly
// like the sim package they forward to.
func TestShimDelegatesToSim(t *testing.T) {
	cfg := Config{Network: workload.AlexNet, Machine: workload.EC2P2, Primitive: MPI, GPUs: 8}
	viaShim, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if viaShim != direct {
		t.Fatalf("shim result %+v differs from sim result %+v", viaShim, direct)
	}
	if MPI != sim.MPI || NCCL != sim.NCCL {
		t.Fatal("primitive constants diverged")
	}
	if DefaultKernel != sim.DefaultKernel {
		t.Fatal("kernel model diverged")
	}
}
