package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Ring implements the NCCL-style ring allreduce of §2.4.2: the vector is
// cut into K chunks; a reduce-scatter phase rotates partial sums around
// the ring for K−1 steps, then an allgather phase rotates the finished
// chunks for another K−1 steps. Each peer transmits 2·(K−1)/K of the
// buffer — the bandwidth-optimal collective NCCL builds on GPU rings.
//
// Faithful to NCCL, the reduction semantics are full-precision float32
// sums: there is no codec hook. (The paper's "NCCL low-precision"
// numbers are simulated by sending fewer bytes; see SimulatedRing.)
type Ring struct {
	fabric Transport
}

// NewRing builds the primitive over the fabric.
func NewRing(f Transport) *Ring { return &Ring{fabric: f} }

// Name implements Reducer.
func (r *Ring) Name() string { return "nccl-ring" }

// WireBytesPerExchange returns the bytes one allreduce of n float32
// values puts on the fabric across all peers: K · 2(K−1)/K · 4n.
func (r *Ring) WireBytesPerExchange(n int) int64 {
	k := int64(r.fabric.K())
	if k == 1 {
		return 0
	}
	// Each of the 2(K−1) steps moves every chunk boundary exactly once
	// per peer; summed over peers each step moves the whole vector once.
	return 2 * (k - 1) * int64(4*n)
}

// chunkRange returns the element range of chunk c when n elements are
// cut into k chunks.
func chunkRange(n, k, c int) (lo, hi int) {
	lo = c * n / k
	hi = (c + 1) * n / k
	return lo, hi
}

// Reduce implements Reducer. After it returns on all peers, g holds the
// full-precision sum; every peer's copy is bit-identical because each
// chunk's final value is computed once and propagated as bytes.
func (r *Ring) Reduce(rank, _ int, g []float32) error {
	k := r.fabric.K()
	if k == 1 {
		return nil
	}
	n := len(g)
	right := (rank + 1) % k
	left := (rank - 1 + k) % k

	sendChunk := func(c int) {
		lo, hi := chunkRange(n, k, c)
		buf := make([]byte, 4*(hi-lo))
		for i := lo; i < hi; i++ {
			binary.LittleEndian.PutUint32(buf[4*(i-lo):], math.Float32bits(g[i]))
		}
		r.fabric.Send(rank, right, buf)
	}
	recvChunk := func(c int, add bool) error {
		lo, hi := chunkRange(n, k, c)
		buf := r.fabric.Recv(left, rank)
		if len(buf) != 4*(hi-lo) {
			return fmt.Errorf("comm: ring chunk %d has %d bytes, want %d", c, len(buf), 4*(hi-lo))
		}
		for i := lo; i < hi; i++ {
			v := math.Float32frombits(binary.LittleEndian.Uint32(buf[4*(i-lo):]))
			if add {
				g[i] += v
			} else {
				g[i] = v
			}
		}
		return nil
	}

	// Reduce-scatter: after step s, the chunk received has s+2 partial
	// contributions; after K−1 steps rank r owns the complete chunk
	// (r+1) mod K.
	for step := 0; step < k-1; step++ {
		sendChunk(((rank-step)%k + k) % k)
		if err := recvChunk(((rank-step-1)%k+k)%k, true); err != nil {
			return err
		}
	}
	// Allgather: rotate finished chunks around the ring.
	for step := 0; step < k-1; step++ {
		sendChunk(((rank-step+1)%k + k) % k)
		if err := recvChunk(((rank-step)%k+k)%k, false); err != nil {
			return err
		}
	}
	return nil
}

// SimulatedRing reproduces the paper's NCCL low-precision *simulation*
// (§4.4): NCCL cannot sum quantised payloads, so the authors measure a
// hypothetical low-precision NCCL by sending exactly the byte volume a
// quantised allreduce would send. Here the gradient values are reduced
// exactly (via the full-precision ring) so that training remains
// meaningful, while SimulatedBytes reports the low-precision wire
// volume used for performance accounting — the same separation of
// semantics and cost the paper makes ("the GPUs will converge at a lower
// rate or could diverge, but this is irrelevant for the experiment").
type SimulatedRing struct {
	ring *Ring
	// BytesFraction scales the true fp32 volume to the simulated one
	// (e.g. 4-bit QSGD with bucket 512 gives ≈ 507/4096).
	BytesFraction float64
	simulated     int64
}

// NewSimulatedRing wraps a ring with a simulated wire-volume fraction.
func NewSimulatedRing(f Transport, fraction float64) *SimulatedRing {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("comm: simulated fraction %v outside (0,1]", fraction))
	}
	return &SimulatedRing{ring: NewRing(f), BytesFraction: fraction}
}

// Name implements Reducer.
func (s *SimulatedRing) Name() string { return "nccl-ring-sim" }

// Reduce implements Reducer.
func (s *SimulatedRing) Reduce(rank, tensorID int, g []float32) error {
	if err := s.ring.Reduce(rank, tensorID, g); err != nil {
		return err
	}
	if rank == 0 {
		s.simulated += int64(float64(s.ring.WireBytesPerExchange(len(g))) * s.BytesFraction)
	}
	return nil
}

// SimulatedBytes returns the cumulative wire volume a low-precision NCCL
// would have transmitted.
func (s *SimulatedRing) SimulatedBytes() int64 { return s.simulated }

// AllGather is the naive quadratic-traffic oracle: every peer broadcasts
// its full vector and everyone sums all K copies in rank order. It is
// used in tests as the correctness reference for the optimised
// primitives.
type AllGather struct {
	fabric Transport
}

// NewAllGather builds the oracle reducer.
func NewAllGather(f Transport) *AllGather { return &AllGather{fabric: f} }

// Name implements Reducer.
func (a *AllGather) Name() string { return "allgather" }

// Reduce implements Reducer.
func (a *AllGather) Reduce(rank, _ int, g []float32) error {
	k := a.fabric.K()
	if k == 1 {
		return nil
	}
	n := len(g)
	buf := make([]byte, 4*n)
	for i, v := range g {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	for p := 0; p < k; p++ {
		if p != rank {
			a.fabric.Send(rank, p, buf)
		}
	}
	// Sum contributions in rank order for cross-peer determinism.
	sum := make([]float64, n)
	mine := make([]float32, n)
	copy(mine, g)
	for p := 0; p < k; p++ {
		if p == rank {
			for i, v := range mine {
				sum[i] += float64(v)
			}
			continue
		}
		in := a.fabric.Recv(p, rank)
		if len(in) != 4*n {
			return fmt.Errorf("comm: allgather message %d bytes, want %d", len(in), 4*n)
		}
		for i := 0; i < n; i++ {
			sum[i] += float64(math.Float32frombits(binary.LittleEndian.Uint32(in[4*i:])))
		}
	}
	for i := range g {
		g[i] = float32(sum[i])
	}
	return nil
}
