package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCPFabric connects K peers through real loopback TCP sockets, one
// connection per directed link, with length-prefixed frames. It is the
// closest stdlib-only analogue of the MPI transport the paper's CNTK
// uses: bytes cross a real kernel boundary (socket buffers, copies,
// framing) instead of being handed over via channels. The aggregation
// primitives run unchanged over either fabric because both satisfy
// Transport.
//
// Frame format per message: uint32 little-endian payload length, then
// the payload bytes.
type TCPFabric struct {
	k int
	// wconns[from*k+to] is the sender-side end of the link's TCP
	// stream; rconns the receiver-side end.
	wconns []net.Conn
	rconns []net.Conn
	wmu    []sync.Mutex
	rmu    []sync.Mutex
	bytes  atomic.Int64
	sends  atomic.Int64
}

// NewTCPFabric builds a fully connected loopback mesh between k peers.
func NewTCPFabric(k int) (*TCPFabric, error) {
	if k <= 0 {
		return nil, fmt.Errorf("comm: tcp fabric needs at least one peer, got %d", k)
	}
	f := &TCPFabric{
		k:      k,
		wconns: make([]net.Conn, k*k),
		rconns: make([]net.Conn, k*k),
		wmu:    make([]sync.Mutex, k*k),
		rmu:    make([]sync.Mutex, k*k),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("comm: tcp fabric listen: %w", err)
	}
	defer ln.Close()

	// The acceptor slots each incoming connection by an 8-byte
	// (from, to) preamble written by the dialler.
	nLinks := k * (k - 1)
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < nLinks; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr <- err
				return
			}
			from := int(binary.LittleEndian.Uint32(hdr[0:]))
			to := int(binary.LittleEndian.Uint32(hdr[4:]))
			if from < 0 || from >= k || to < 0 || to >= k || from == to {
				acceptErr <- fmt.Errorf("comm: tcp fabric bad preamble %d->%d", from, to)
				return
			}
			f.rconns[from*k+to] = conn
		}
		acceptErr <- nil
	}()

	addr := ln.Addr().String()
	for from := 0; from < k; from++ {
		for to := 0; to < k; to++ {
			if from == to {
				continue
			}
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("comm: tcp fabric dial: %w", err)
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:], uint32(from))
			binary.LittleEndian.PutUint32(hdr[4:], uint32(to))
			if _, err := conn.Write(hdr[:]); err != nil {
				f.Close()
				return nil, fmt.Errorf("comm: tcp fabric preamble: %w", err)
			}
			f.wconns[from*k+to] = conn
		}
	}
	if err := <-acceptErr; err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// K implements Transport.
func (f *TCPFabric) K() int { return f.k }

func (f *TCPFabric) link(from, to int) int {
	if from < 0 || from >= f.k || to < 0 || to >= f.k {
		panic(fmt.Sprintf("comm: peer out of range (%d->%d of %d)", from, to, f.k))
	}
	if from == to {
		panic("comm: self-send")
	}
	return from*f.k + to
}

// Send implements Transport. Frames are written under a per-link mutex
// so concurrent senders on the same link cannot interleave.
func (f *TCPFabric) Send(from, to int, payload []byte) {
	l := f.link(from, to)
	f.wmu[l].Lock()
	defer f.wmu[l].Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn := f.wconns[l]
	if _, err := conn.Write(hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: tcp send header %d->%d: %v", from, to, err))
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			panic(fmt.Sprintf("comm: tcp send payload %d->%d: %v", from, to, err))
		}
	}
	f.bytes.Add(int64(len(payload)))
	f.sends.Add(1)
}

// Recv implements Transport.
func (f *TCPFabric) Recv(from, to int) []byte {
	l := f.link(from, to)
	f.rmu[l].Lock()
	defer f.rmu[l].Unlock()
	conn := f.rconns[l]
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		panic(fmt.Sprintf("comm: tcp recv header %d->%d: %v", from, to, err))
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	if n > 0 {
		if _, err := io.ReadFull(conn, buf); err != nil {
			panic(fmt.Sprintf("comm: tcp recv payload %d->%d: %v", from, to, err))
		}
	}
	return buf
}

// TotalBytes implements Transport.
func (f *TCPFabric) TotalBytes() int64 { return f.bytes.Load() }

// TotalMessages implements Transport.
func (f *TCPFabric) TotalMessages() int64 { return f.sends.Load() }

// Close shuts down every connection.
func (f *TCPFabric) Close() error {
	var first error
	for _, conns := range [][]net.Conn{f.wconns, f.rconns} {
		for _, c := range conns {
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}
