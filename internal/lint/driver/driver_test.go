package driver_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the real lpsgd-vet binary into a scratch dir, so
// the test exercises the exact cmd/go handshake CI uses: -V=full
// version probing, -flags registration, vet.cfg unit checking and
// exit-status propagation.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lpsgd-vet")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/lpsgd-vet")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build lpsgd-vet: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(filepath.Join(wd, "..", "..", ".."))
}

// TestVettoolCleanTree runs the suite through go vet over decoder
// packages of the real tree, which must be clean: every legitimate
// finding is fixed and every deliberate one carries a //lint:allow.
func TestVettoolCleanTree(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./elastic", "./quant", "./health")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, out)
	}
}

// TestVettoolFindsViolation plants a wall-clock read in a scratch
// module's sim package and expects the vettool run to fail with a
// simclock diagnostic, proving findings survive the cmd/go round trip.
func TestVettoolFindsViolation(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "sim", "sim.go"), `package sim

import "time"

// Stamp reads the wall clock, which simclock must reject.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a sim package that reads time.Now:\n%s", out)
	}
	if !strings.Contains(string(out), "simclock") || !strings.Contains(string(out), "time.Now") {
		t.Fatalf("expected a simclock time.Now diagnostic, got:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
