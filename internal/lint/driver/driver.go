// Package driver implements the `go vet -vettool` command-line
// protocol for the lint suite, standing in for
// golang.org/x/tools/go/analysis/unitchecker in this dependency-free
// build.
//
// The protocol, as spoken by cmd/go (see buildVetConfig and
// (*Builder).vet in cmd/go/internal/work/exec.go):
//
//   - `lpsgd-vet -V=full` prints a version line ending in a buildID
//     token; cmd/go hashes it into its action cache key.
//   - `lpsgd-vet -flags` prints the tool's flags as a JSON array so
//     `go vet` can validate pass-through flags.
//   - `lpsgd-vet [-<analyzer>...] <dir>/vet.cfg` analyzes the single
//     package described by the JSON config: parse the listed Go files,
//     type-check them against the export data cmd/go already built for
//     every import, run the analyzers, print findings to stderr and
//     exit non-zero if there were any.
//
// Import resolution needs no network and no source for dependencies:
// the config maps each import path to a compiled package file, and
// go/importer's gc importer reads export data straight out of those
// archives.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Config mirrors cmd/go's vetConfig JSON (the fields this driver
// consumes; unknown fields are ignored by encoding/json).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for cmd/lpsgd-vet. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(run(os.Args[1:], analyzers, os.Stdout, os.Stderr))
}

func run(args []string, analyzers []*analysis.Analyzer, stdout, stderr io.Writer) int {
	enabled := map[string]bool{}
	var cfgPath string
	for _, arg := range args {
		switch {
		case strings.HasPrefix(arg, "-V"):
			printVersion(stdout)
			return 0
		case arg == "-flags":
			printFlags(stdout, analyzers)
			return 0
		case arg == "help", arg == "-h", arg == "--help":
			printHelp(stderr, analyzers)
			return 0
		case strings.HasPrefix(arg, "-"):
			name, val, ok := parseAnalyzerFlag(arg, analyzers)
			if !ok {
				fmt.Fprintf(stderr, "lpsgd-vet: unknown flag %s\n", arg)
				return 1
			}
			enabled[name] = val
		default:
			cfgPath = arg
		}
	}
	if cfgPath == "" || !strings.HasSuffix(cfgPath, ".cfg") {
		fmt.Fprintf(stderr, "lpsgd-vet: run via `go vet -vettool=$(which lpsgd-vet) ./...`; direct invocation takes a cmd/go vet.cfg file\n")
		return 1
	}
	selected := selectAnalyzers(analyzers, enabled)
	code, err := runConfig(cfgPath, selected, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "lpsgd-vet: %v\n", err)
		return 1
	}
	return code
}

// parseAnalyzerFlag recognises -<name>, -<name>=true, -<name>=false
// for each analyzer, mirroring unitchecker's selection flags.
func parseAnalyzerFlag(arg string, analyzers []*analysis.Analyzer) (name string, val, ok bool) {
	body := strings.TrimPrefix(strings.TrimPrefix(arg, "-"), "-")
	body, rawVal, hasVal := strings.Cut(body, "=")
	val = true
	if hasVal {
		switch rawVal {
		case "true", "1":
			val = true
		case "false", "0":
			val = false
		default:
			return "", false, false
		}
	}
	for _, a := range analyzers {
		if a.Name == body {
			return body, val, true
		}
	}
	return "", false, false
}

// selectAnalyzers applies unitchecker flag semantics: explicit =true
// flags select exactly that subset; otherwise =false flags subtract
// from the full suite.
func selectAnalyzers(analyzers []*analysis.Analyzer, enabled map[string]bool) []*analysis.Analyzer {
	anyTrue := false
	for _, v := range enabled {
		anyTrue = anyTrue || v
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		v, set := enabled[a.Name]
		switch {
		case anyTrue && set && v:
			out = append(out, a)
		case !anyTrue && (!set || v):
			out = append(out, a)
		}
	}
	return out
}

// printVersion emits the `-V=full` line cmd/go's toolID parser
// expects: `<name> version devel ... buildID=<contentID>`. Hashing the
// executable keeps the ID — and therefore cmd/go's vet result cache —
// honest across rebuilds of the tool.
func printVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "lpsgd-vet version devel buildID=%x\n", h.Sum(nil))
}

// printFlags answers `go vet`'s -flags query: a JSON array of the
// flags the tool accepts, one boolean per analyzer.
func printFlags(w io.Writer, analyzers []*analysis.Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{
			Name: a.Name, Bool: true,
			Usage: "enable only the " + a.Name + " analyzer: " + firstLine(a.Doc),
		})
	}
	json.NewEncoder(w).Encode(flags)
}

func printHelp(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(w, "lpsgd-vet: the repository's invariant checkers; run via go vet -vettool.\n\nAnalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, firstLine(a.Doc))
	}
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

// runConfig analyzes the one package a vet.cfg describes. The returned
// int is the process exit code: 0 clean, 2 findings.
func runConfig(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// cmd/go caches and propagates the vetx (facts) output; the suite
	// computes no cross-package facts, so an empty marker suffices —
	// but it must exist for the cache entry to be written.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("lpsgd-vet: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		// Dependency-only visit (facts) or a standard-library package:
		// the suite's invariants are repository-scoped.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // accumulate via Check's return; go build reports them better
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	var all []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		diags, err := analysis.Run(a, pass)
		if err != nil {
			return 0, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		all = append(all, diags...)
	}
	all = dedupe(all)
	for _, d := range all {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	if len(all) > 0 {
		return 2, nil
	}
	return 0, nil
}

// dedupe collapses identical (position, category, message) findings:
// every analyzer validates //lint:allow directives, so a malformed
// directive would otherwise be reported once per analyzer run.
func dedupe(diags []analysis.Diagnostic) []analysis.Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Category != diags[j].Category {
			return diags[i].Category < diags[j].Category
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
