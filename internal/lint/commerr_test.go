package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCommerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Commerr,
		"commerr/a",    // transport and encoder discard shapes
		"repro/health", // unexported Monitor.write, flagged inside its own package
	)
}
