package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Commerr enforces the error contract PR 2 bought by converting the
// fabrics' shutdown-race panics into returned errors: a discarded
// comm.Transport.Send/Recv result reintroduces exactly the silent data
// loss that change eliminated, because a rank that drops a transport
// error keeps training on a torn mesh until the digests diverge. The
// same applies to the framed encoders' EncodeTo (a short write
// corrupts the stream for every later frame) and the health monitor's
// control-plane writes (a dropped verdict write can strand a peer on
// its slow silence deadline).
var Commerr = &analysis.Analyzer{
	Name: "commerr",
	Doc: "comm.Transport.Send/Recv, EncodeTo and Monitor control-plane write results must not be discarded\n\n" +
		"Flags calls whose result is dropped on the floor: expression\n" +
		"statements, go/defer statements, and blank assignments of the\n" +
		"error (or the monitor write's delivered bool).",
	Run: runCommerr,
}

func runCommerr(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name := trackedCall(pass, n.X); name != "" {
					pass.Reportf(n.Pos(), "result of %s discarded: transport and control-plane failures must be handled or explicitly allowed", name)
				}
			case *ast.GoStmt:
				if name := trackedCall(pass, n.Call); name != "" {
					pass.Reportf(n.Pos(), "result of %s discarded by go statement", name)
				}
			case *ast.DeferStmt:
				if name := trackedCall(pass, n.Call); name != "" {
					pass.Reportf(n.Pos(), "result of %s discarded by defer statement", name)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags assignments that bind a tracked call's error
// result (always the last result) to the blank identifier.
func checkBlankAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// v, err := t.Recv(...): error is the last LHS.
		if name := trackedCall(pass, n.Rhs[0]); name != "" && isBlank(n.Lhs[len(n.Lhs)-1]) {
			pass.Reportf(n.Pos(), "error from %s assigned to blank: transport failures must be handled or explicitly allowed", name)
		}
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		if name := trackedCall(pass, rhs); name != "" && isBlank(n.Lhs[i]) {
			pass.Reportf(n.Pos(), "error from %s assigned to blank: transport failures must be handled or explicitly allowed", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// trackedCall reports whether e is a call whose result the commerr
// contract protects, returning a human-readable name for it ("" when
// not tracked): Send/Recv on any repro/comm type (including the
// Transport interface), EncodeTo on the quant and elastic encoders,
// and the health monitor's link write.
func trackedCall(pass *analysis.Pass, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return ""
	}
	recvPkg, recvName := namedRecv(selection.Recv())
	if recvPkg == "" {
		return ""
	}
	switch sel.Sel.Name {
	case "Send", "Recv":
		if recvPkg == "repro/comm" {
			return "comm." + recvName + "." + sel.Sel.Name
		}
	case "EncodeTo":
		if recvPkg == "repro/quant" || recvPkg == "repro/elastic" {
			return recvName + ".EncodeTo"
		}
	case "write":
		if recvPkg == "repro/health" && recvName == "Monitor" {
			return "health.Monitor.write"
		}
	}
	return ""
}

// namedRecv resolves a method receiver type to its declaring package
// path and type name, looking through pointers.
func namedRecv(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}
