package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestNodeprecated(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nodeprecated,
		"nodep/a",                 // deprecated imports, constructor and field uses
		"repro/internal/simulate", // the shim itself is exempt from its own rule
	)
}
