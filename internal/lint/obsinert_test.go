package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestObsinert(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Obsinert,
		"obsinert/a", // hot-path string building, dynamic names, escape hatch
	)
}
