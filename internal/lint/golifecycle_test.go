package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestGolifecycle(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Golifecycle,
		"golifecycle/comm",  // lifecycle evidence shapes, escape hatch, typo directive
		"golifecycle/other", // out-of-scope package: bare goroutine, no findings
		"golifecycle/obs",   // observability plane is in scope since PR 9
	)
}
