package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/internal/lint/analysis"
)

// Golifecycle enforces the concurrency discipline the goroutine-leak-
// counting tests assert dynamically: a goroutine launched in the
// runtime packages must have a visible shutdown path. Every goroutine
// in comm, health, cluster, parallel and obs today is either bracketed by a
// sync.WaitGroup Add/Done pair, parks on a done/stop/context channel,
// or hands its result to the launcher over a channel the launcher
// receives from — which is what lets Close be a join rather than a
// hope. A `go func` with none of those is how the next DAG-overlap
// exchange grows a leak that only shows up as a flaky -race lane.
var Golifecycle = &analysis.Analyzer{
	Name: "golifecycle",
	Doc: "goroutine literals in comm/health/cluster/parallel/obs need a visible shutdown path\n\n" +
		"A `go func` literal must receive from a channel (done/stop/ctx),\n" +
		"call Done on a sync.WaitGroup, or send on a channel the enclosing\n" +
		"function receives from. Otherwise nothing joins it and Close\n" +
		"cannot prove the goroutine exited.",
	Run: runGolifecycle,
}

// lifecyclePackages are the packages whose goroutines the rule covers.
var lifecyclePackages = map[string]bool{
	"comm": true, "health": true, "cluster": true, "parallel": true, "obs": true,
}

func runGolifecycle(pass *analysis.Pass) error {
	if !lifecyclePackages[path.Base(pass.PkgPath())] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true // named functions own their lifecycle at their declaration
				}
				if !hasLifecycle(pass, lit, fd.Body) {
					pass.Reportf(g.Pos(), "goroutine has no visible shutdown path: receive a done/ctx channel, bracket it with a sync.WaitGroup Add/Done pair, or send its result on a channel the caller receives")
				}
				return true
			})
		}
	}
	return nil
}

// hasLifecycle reports whether the goroutine literal shows one of the
// accepted shutdown shapes.
func hasLifecycle(pass *analysis.Pass, lit *ast.FuncLit, enclosing *ast.BlockStmt) bool {
	joined := false
	var sent []types.Object // channels the goroutine sends on

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// <-done, <-ctx.Done(), select receives: the goroutine
			// observes a termination signal.
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			// for msg := range ch parks on channel close.
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			// wg.Done() (usually deferred) brackets the goroutine.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if selection, ok := pass.TypesInfo.Selections[sel]; ok {
					if pkg, name := namedRecv(selection.Recv()); pkg == "sync" && name == "WaitGroup" {
						joined = true
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sent = append(sent, obj)
				}
			}
		}
		return !joined
	})
	if joined {
		return true
	}
	if len(sent) == 0 {
		return false
	}
	// The goroutine reports on a channel: accept it if the enclosing
	// function (anywhere, including sibling closures like a teardown
	// helper) receives from that same channel — that receive is the
	// join.
	received := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if received {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		id, ok := ast.Unparen(u.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		for _, s := range sent {
			if obj == s {
				received = true
			}
		}
		return !received
	})
	return received
}
