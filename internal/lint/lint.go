package lint

import "repro/internal/lint/analysis"

// Analyzers is the lpsgd-vet suite, in reporting order. Each entry is
// also registered with the framework so //lint:allow directives can be
// validated against the full set regardless of which analyzers a given
// run enables.
var Analyzers = []*analysis.Analyzer{
	Commerr,
	Golifecycle,
	Nodeprecated,
	Obsinert,
	Simclock,
	Wirebound,
}

func init() {
	for _, a := range Analyzers {
		analysis.Register(a)
	}
}
