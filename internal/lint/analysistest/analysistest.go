// Package analysistest runs lint-suite analyzers over fixture packages
// and checks their diagnostics against // want annotations, in the
// style of golang.org/x/tools/go/analysis/analysistest (which the
// dependency-free build cannot vendor).
//
// Fixtures live in GOPATH-style trees: <testdata>/src/<importpath>/.
// A fixture may shadow a real module import path (repro/comm, say)
// with a minimal fake, so analyzers that key on declaring package
// paths can be exercised hermetically. Expectations are comments:
//
//	t.Send(0, 1, buf) // want `result of comm\.Transport\.Send discarded`
//
// Each quoted (or backquoted) string is a regular expression that must
// match, on that line, one diagnostic of the analyzer under test.
// Unmatched expectations and unexpected diagnostics both fail the
// test.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// TestData returns the conventional fixture root, "testdata" relative
// to the test's working directory.
func TestData() string { return "testdata" }

// Run loads each fixture package, runs a over it (through the
// framework's //lint:allow filtering) and diffs the diagnostics
// against the fixture's want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l := loaderFor(testdata)
	for _, path := range paths {
		lp := l.load(path)
		if lp.err != nil {
			t.Errorf("%s: load %s: %v", a.Name, path, lp.err)
			continue
		}
		if lp.info == nil {
			t.Errorf("%s: %s resolved to a non-fixture package; fixtures must live under %s/src", a.Name, path, testdata)
			continue
		}
		pass := &analysis.Pass{
			Fset:      l.fset,
			Files:     lp.files,
			Pkg:       lp.pkg,
			TypesInfo: lp.info,
		}
		diags, err := analysis.Run(a, pass)
		if err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, l, a, path, lp, diags)
	}
}

// expectation is one want regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`^(?://|/\*)\s*want(\s+.*)$`)

func checkWants(t *testing.T, l *loader, a *analysis.Analyzer, path string, lp *loadedPackage, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.files {
		tf := l.fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				patterns, err := parseWantPatterns(strings.TrimSuffix(m[1], "*/"))
				if err != nil {
					t.Errorf("%s: %s: bad want comment %q: %v", a.Name, l.fset.Position(c.Pos()), c.Text, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: %s: bad want regexp %q: %v", a.Name, l.fset.Position(c.Pos()), p, err)
						continue
					}
					wants = append(wants, &expectation{
						file: tf.Name(), line: tf.Line(c.Pos()), re: re, raw: p,
					})
				}
			}
		}
	}

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: %s: unexpected diagnostic: %s", a.Name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, w.file, w.line, w.raw)
		}
	}
}

// parseWantPatterns splits a want comment's payload into its quoted or
// backquoted regexp strings using the Go scanner, so patterns may
// contain spaces.
func parseWantPatterns(s string) ([]string, error) {
	var sc scanner.Scanner
	fset := token.NewFileSet()
	file := fset.AddFile("want", fset.Base(), len(s))
	var scanErr error
	sc.Init(file, []byte(s), func(_ token.Position, msg string) {
		if scanErr == nil {
			scanErr = fmt.Errorf("%s", msg)
		}
	}, 0)
	var out []string
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF || scanErr != nil {
			break
		}
		if tok == token.SEMICOLON { // automatic semicolon at end of input
			continue
		}
		if tok != token.STRING {
			return nil, fmt.Errorf("unexpected token %s (want quoted regexps)", tok)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return out, nil
}
