package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// loader type-checks fixture packages from source. Import resolution
// tries the fixture tree first — testdata/src/<importpath> — so a
// fixture can shadow real module paths like repro/comm with a minimal
// fake that carries only the identity the analyzer keys on; anything
// not found there falls through to the standard library, compiled
// from $GOROOT/src by the go/importer source importer.
type loader struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer

	mu   sync.Mutex
	pkgs map[string]*loadedPackage
}

type loadedPackage struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

var (
	loadersMu sync.Mutex
	loaders   = map[string]*loader{}
)

// loaderFor returns the shared loader for one testdata directory.
// Sharing amortizes the source-importer's standard-library
// type-checking across every test in the package.
func loaderFor(testdata string) *loader {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	if l, ok := loaders[testdata]; ok {
		return l
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:   fset,
		srcDir: filepath.Join(testdata, "src"),
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*loadedPackage{},
	}
	loaders[testdata] = l
	return l
}

// Import implements types.Importer over the fixture tree with a
// standard-library fallback.
func (l *loader) Import(path string) (*types.Package, error) {
	lp := l.load(path)
	if lp.err != nil {
		return nil, lp.err
	}
	return lp.pkg, nil
}

func (l *loader) load(path string) *loadedPackage {
	l.mu.Lock()
	if lp, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return lp
	}
	lp := &loadedPackage{}
	l.pkgs[path] = lp
	l.mu.Unlock()

	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		lp.pkg, lp.files, lp.info, lp.err = l.check(path, dir)
		return lp
	}
	lp.pkg, lp.err = l.std.Import(path)
	return lp
}

// check parses and type-checks one fixture directory.
func (l *loader) check(path, dir string) (*types.Package, []*ast.File, *types.Info, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, nil, fmt.Errorf("analysistest: fixture %s does not type-check: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}
