package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/internal/lint/analysis"
)

// Wirebound enforces the repository's decoder discipline: a length
// field decoded off the wire must be compared against a bound before
// it sizes an allocation. Every framed format in the tree (quant
// frames, cluster rendezvous, health control messages, elastic
// snapshots, nn checkpoints) validates announced lengths against hard
// caps before trusting them — see elastic.ReadSnapshot — and this
// analyzer makes that prose contract mechanical: in the decoder
// packages it flags make() calls whose size derives from a
// binary.*Endian.UintNN or binary.Read value with no intervening
// comparison of that value.
//
// It also enforces the sim scenario decoder's strictness contract: a
// json.Decoder constructed in package sim must call
// DisallowUnknownFields before decoding, so a typo'd scenario key is
// an error rather than a silently ignored knob.
var Wirebound = &analysis.Analyzer{
	Name: "wirebound",
	Doc: "decoded wire lengths must be bounds-checked before they size an allocation\n\n" +
		"In the decoder packages (quant, comm, health, elastic, cluster, nn) a\n" +
		"make() whose size data-flows from binary.*Endian.UintNN or binary.Read\n" +
		"without an intervening comparison lets a corrupted or hostile length\n" +
		"field drive an unbounded allocation. In package sim, json.Decoder\n" +
		"values must call DisallowUnknownFields before Decode.",
	Run: runWirebound,
}

// decoderPackages are the packages that decode framed wire formats;
// the bound rule applies only there.
var decoderPackages = map[string]bool{
	"quant": true, "comm": true, "health": true,
	"elastic": true, "cluster": true, "nn": true,
}

func runWirebound(pass *analysis.Pass) error {
	base := path.Base(pass.PkgPath())
	checkBounds := decoderPackages[base]
	checkJSON := base == "sim"
	if !checkBounds && !checkJSON {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if checkBounds {
				checkWireBounds(pass, fd.Body)
			}
			if checkJSON {
				checkJSONDecoders(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkWireBounds runs the function-local taint walk: collect wire-
// derived values, the comparisons that bound them and the make() sinks
// that consume them, then flag every sink with a tainted, unbounded
// size. The analysis is positional — a guard counts if it appears
// before the sink in source order — which matches the straight-line
// shape of every decoder in the tree.
func checkWireBounds(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := map[string]token.Pos{} // value key -> first taint position
	guarded := map[string]token.Pos{} // value key -> first bound position

	type sink struct {
		pos    token.Pos
		size   ast.Expr
		direct bool // size expression itself contains a wire read
	}
	var sinks []sink

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			taint := false
			for _, rhs := range n.Rhs {
				if boundedExpr(rhs) {
					continue // min()/max() caps the value by construction
				}
				if exprReadsWire(rhs) || mentionsAny(rhs, tainted) {
					taint = true
				}
			}
			if taint {
				for _, lhs := range n.Lhs {
					if key := exprKey(lhs); key != "" {
						if _, ok := tainted[key]; !ok {
							tainted[key] = n.Pos()
						}
					}
				}
			}
		case *ast.CallExpr:
			// binary.Read(r, order, &x) taints x through the pointer.
			if isBinaryRead(n) && len(n.Args) == 3 {
				if u, ok := n.Args[2].(*ast.UnaryExpr); ok && u.Op == token.AND {
					if key := exprKey(u.X); key != "" {
						if _, ok := tainted[key]; !ok {
							tainted[key] = n.Pos()
						}
					}
				}
			}
			if boundedExpr(n) { // min(x, cap) bounds every operand
				markGuards(n, guarded)
			}
			if isBuiltin(pass, n, "make") && len(n.Args) >= 2 {
				for _, size := range n.Args[1:] {
					sinks = append(sinks, sink{pos: n.Pos(), size: size, direct: exprReadsWire(size)})
				}
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				// Any comparison that can reject the decoded value
				// before the allocation counts as the bound: the cap
				// checks (n > maxElems) and the pin-to-expected checks
				// (rows != p.Value.Rows) both qualify.
				markGuards(n, guarded)
			}
		}
		return true
	})

	for _, s := range sinks {
		if s.direct {
			pass.Reportf(s.pos, "make size reads a wire length field directly with no bound check; compare it against a cap first (see elastic.ReadSnapshot)")
			continue
		}
		if boundedExpr(s.size) {
			continue
		}
		for key, tpos := range tainted {
			if !mentionsKey(s.size, key) || tpos >= s.pos {
				continue
			}
			if gpos, ok := guarded[key]; ok && gpos < s.pos {
				continue
			}
			pass.Reportf(s.pos, "make size derives from wire-decoded length %q with no intervening bound check; compare it against a cap first (see elastic.ReadSnapshot)", key)
		}
	}
}

// markGuards records every plain identifier or selector mentioned in a
// bounding expression.
func markGuards(e ast.Expr, guarded map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if key := exprKey(n); key != "" {
			if _, ok := guarded[key]; !ok {
				guarded[key] = e.Pos()
			}
		}
		return true
	})
}

// exprKey names a taint-trackable value: a plain identifier ("n") or a
// one-level selector ("h.N"). Anything else — index expressions,
// calls — is not tracked.
func exprKey(n ast.Node) string {
	switch n := n.(type) {
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		if x, ok := n.X.(*ast.Ident); ok {
			return x.Name + "." + n.Sel.Name
		}
	}
	return ""
}

func mentionsAny(e ast.Expr, keys map[string]token.Pos) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if key := exprKey(n); key != "" {
			if _, hit := keys[key]; hit {
				found = true
			}
		}
		return !found
	})
	return found
}

func mentionsKey(e ast.Expr, key string) bool {
	return mentionsAny(e, map[string]token.Pos{key: 0})
}

// exprReadsWire reports whether e contains a call that produces an
// attacker-controlled integer: binary.LittleEndian.Uint16/32/64 (and
// the BigEndian/NativeEndian spellings) or binary.Read.
func exprReadsWire(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isEndianUint(call) || isBinaryRead(call) {
			found = true
		}
		return !found
	})
	return found
}

func isEndianUint(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := inner.X.(*ast.Ident)
	if !ok || pkg.Name != "binary" {
		return false
	}
	switch inner.Sel.Name {
	case "LittleEndian", "BigEndian", "NativeEndian":
		return true
	}
	return false
}

func isBinaryRead(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Read" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "binary"
}

// boundedExpr reports whether e is intrinsically bounded: a call to
// the min or max builtins (the chunked-read idiom caps every size it
// produces with min).
func boundedExpr(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "min" || id.Name == "max") {
		return true
	}
	return false
}

// isBuiltin reports whether call invokes the named Go builtin,
// consulting type information when available so a local function
// shadowing the builtin does not confuse the check.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		_, isB := obj.(*types.Builtin)
		return isB
	}
	return true
}

// checkJSONDecoders flags json.NewDecoder values in package sim that
// are never hardened with DisallowUnknownFields in the same function,
// and bare json.NewDecoder(r).Decode(v) chains that cannot be.
func checkJSONDecoders(pass *analysis.Pass, body *ast.BlockStmt) {
	decoders := map[string]token.Pos{} // var name -> creation pos
	hardened := map[string]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isJSONNewDecoder(rhs) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					decoders[id.Name] = rhs.Pos()
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isJSONNewDecoder(sel.X) {
				// json.NewDecoder(r).Decode(v): no variable to harden.
				if sel.Sel.Name != "DisallowUnknownFields" {
					pass.Reportf(n.Pos(), "sim json.Decoder used without DisallowUnknownFields: unknown scenario keys must be errors, not silently dropped knobs")
				}
				return true
			}
			if sel.Sel.Name == "DisallowUnknownFields" {
				if id, ok := sel.X.(*ast.Ident); ok {
					hardened[id.Name] = true
				}
			}
		}
		return true
	})

	for name, pos := range decoders {
		if !hardened[name] {
			pass.Reportf(pos, "sim json.Decoder %q never calls DisallowUnknownFields: unknown scenario keys must be errors, not silently dropped knobs", name)
		}
	}
}

func isJSONNewDecoder(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewDecoder" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "json"
}
