package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestWirebound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Wirebound,
		"wirebound/elastic", // bound-check taint cases, escape hatch, typo directive
		"wirebound/sim",     // json.Decoder DisallowUnknownFields cases
		"wirebound/other",   // out-of-scope package: same shapes, no findings
	)
}
