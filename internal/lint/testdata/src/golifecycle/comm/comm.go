// Package comm exercises the golifecycle analyzer: goroutine literals
// in the communication packages need a visible shutdown path.
package comm

import "sync"

func work()        {}
func compute() int { return 0 }
func use(int)      {}

func leaky() {
	go func() { // want `goroutine has no visible shutdown path`
		for {
			work()
		}
	}()
}

func bracketed(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func doneChannel(done <-chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// resultJoined's goroutine is bounded because the enclosing function
// receives the result it sends, the acceptor idiom in comm/tcp.go.
func resultJoined() int {
	out := make(chan int, 1)
	go func() { out <- compute() }()
	return <-out
}

// resultOrphaned sends on a channel nobody in the enclosing function
// receives from, so the send is no evidence of a join.
func resultOrphaned() {
	out := make(chan int, 1)
	go func() { out <- compute() }() // want `goroutine has no visible shutdown path`
	_ = out
}

func rangeChannel(jobs <-chan int) {
	go func() {
		for j := range jobs {
			use(j)
		}
	}()
}

type worker struct{}

func (w *worker) loop() {}

// namedGoroutine is out of scope: the rule targets literals, where the
// body is visible to judge.
func namedGoroutine(w *worker) {
	go w.loop()
}

func allowedLeak() {
	go func() { //lint:allow golifecycle fixture: process-lifetime pump, exits with the binary
		for {
			work()
		}
	}()
}

func typoLeak() {
	go func() { /*lint:allow golifecycl typo in the analyzer name*/ // want `goroutine has no visible shutdown path` `names unknown analyzer "golifecycl"`
		work()
	}()
}
