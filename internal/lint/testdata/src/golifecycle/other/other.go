// Package other is outside the lifecycle-package set, so a bare
// goroutine literal stays silent here.
package other

func work() {}

func leaky() {
	go func() {
		for {
			work()
		}
	}()
}
