// Package obs exercises golifecycle over the observability package:
// with PR 9 the plane owns goroutines (the metrics server's serve
// loop, the tracer's sink flusher), so its leaks are in scope too.
package obs

import "sync"

func flush() {}

func leakySink() {
	go func() { // want `goroutine has no visible shutdown path`
		for {
			flush()
		}
	}()
}

func joinedSink(wg *sync.WaitGroup, done <-chan struct{}) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-done
		flush()
	}()
}
