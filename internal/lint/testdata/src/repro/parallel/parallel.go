// Package parallel is a minimal stand-in for the real repro/parallel:
// the Config struct with its deprecated Codec/MinQuantisedFraction
// pair beside the supported Policy field.
package parallel

import "repro/quant"

// Config mirrors the trainer configuration surface nodeprecated
// polices.
type Config struct {
	Workers int
	Policy  *quant.Policy
	// Codec is deprecated: set Policy.
	Codec quant.Codec
	// MinQuantisedFraction is deprecated: set Policy.MinFrac.
	MinQuantisedFraction float64
}
