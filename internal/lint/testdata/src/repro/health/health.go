// Package health is a minimal stand-in for the real repro/health: the
// Monitor whose unexported control-plane write commerr protects. The
// rule can only fire inside this package (the method is unexported),
// so the fixture carries its own violations.
package health

type link struct{ id int }

// Monitor mirrors the real monitor's shape.
type Monitor struct{ links []*link }

func (m *Monitor) write(l *link, payload []byte) bool { return len(payload) > 0 }

func (m *Monitor) broadcast(payload []byte) {
	for _, l := range m.links {
		m.write(l, payload) // want `result of health\.Monitor\.write discarded`
	}
}

func (m *Monitor) broadcastAllowed(payload []byte) {
	for _, l := range m.links {
		m.write(l, payload) //lint:allow commerr fixture: best-effort broadcast, peers keep their own deadlines
	}
}

func (m *Monitor) broadcastCounted(payload []byte) int {
	delivered := 0
	for _, l := range m.links {
		if m.write(l, payload) {
			delivered++
		}
	}
	return delivered
}
