// Package obs is a minimal stand-in for the real repro/obs: it carries
// only the identities the obsinert analyzer keys on (the package path,
// the Tracer/Registry types and their nil-safe handles).
package obs

// Phase mirrors the step-phase vocabulary.
type Phase uint8

// PhaseCompute is the only phase the fixtures need.
const PhaseCompute Phase = 0

// Tracer mirrors the span recorder.
type Tracer struct{}

func (t *Tracer) Record(rank int, ph Phase, op string, peer int, bytes, startNS, durNS int64) {}

// Label mirrors a series label.
type Label struct{ Key, Value string }

// Counter, Gauge and Histogram mirror the nil-safe metric handles.
type (
	Counter   struct{}
	Gauge     struct{}
	Histogram struct{}
)

func (c *Counter) Inc()              {}
func (c *Counter) Add(n int64)       {}
func (g *Gauge) Set(n int64)         {}
func (g *Gauge) Add(n int64)         {}
func (h *Histogram) Observe(v int64) {}

// Registry mirrors the series registry.
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter      { return nil }
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge          { return nil }
func (r *Registry) Func(name, help string, fn func() int64, labels ...Label) {}
func (r *Registry) Histogram(name, help string, buckets []int64, labels ...Label) *Histogram {
	return nil
}
