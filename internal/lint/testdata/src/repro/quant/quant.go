// Package quant is a minimal stand-in for the real repro/quant: the
// encoder whose EncodeTo result commerr protects, and the deprecated
// NewCodecPlan shim nodeprecated polices.
package quant

import "io"

// Codec mirrors the real codec interface surface the fakes need.
type Codec interface{ Name() string }

// Policy mirrors the real policy configuration value.
type Policy struct {
	Base    Codec
	MinFrac float64
}

// Encoder mirrors the framed stream encoder.
type Encoder struct{}

func (*Encoder) EncodeTo(w io.Writer, data []float32) error { return nil }

// Plan mirrors the evaluated plan type.
type Plan struct{}

// NewPlan is the supported constructor.
func NewPlan(p *Policy, n int) *Plan { return &Plan{} }

// NewCodecPlan is the deprecated shim constructor.
func NewCodecPlan(c Codec, n int, minFrac float64) *Plan { return &Plan{} }
