// Package comm is a minimal stand-in for the real repro/comm: it
// carries only the identities the commerr analyzer keys on (the
// package path, the Transport interface and a concrete fabric).
package comm

// Transport mirrors the real transport contract.
type Transport interface {
	Send(from, to int, payload []byte) error
	Recv(from, to int) ([]byte, error)
}

// Fabric is a concrete transport.
type Fabric struct{}

func (*Fabric) Send(from, to int, payload []byte) error { return nil }
func (*Fabric) Recv(from, to int) ([]byte, error)       { return nil, nil }
