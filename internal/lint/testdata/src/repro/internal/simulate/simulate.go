// Package simulate is a minimal stand-in for the real deprecated
// repro/internal/simulate shim. Its own body may reference the other
// deprecated names — that is what shims are for — and the
// nodeprecated analyzer must stay quiet here.
package simulate

import "repro/quant"

// Estimate references the deprecated constructor, as the real shim
// legitimately does.
func Estimate(c quant.Codec) *quant.Plan {
	return quant.NewCodecPlan(c, 1024, 0.99)
}
