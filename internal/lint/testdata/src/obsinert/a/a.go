// Package a exercises the obsinert shapes against the fake repro/obs:
// per-call string building in hot-path arguments, dynamic series names
// at registration, and the expressions the rule must leave alone.
package a

import (
	"fmt"
	"strconv"

	"repro/obs"
)

func hotPath(tr *obs.Tracer, c *obs.Counter, g *obs.Gauge, h *obs.Histogram, rank int, d int64) {
	tr.Record(rank, obs.PhaseCompute, "step", -1, 0, 0, d) // static op: inert
	op := "exchange"
	tr.Record(rank, obs.PhaseCompute, op, -1, 0, 0, d)                           // pre-built op: inert
	tr.Record(rank, obs.PhaseCompute, "a"+"b", -1, 0, 0, d)                      // constant-folded concat: inert
	tr.Record(rank, obs.PhaseCompute, fmt.Sprintf("step-%d", rank), -1, 0, 0, d) // want `fmt\.Sprintf in an argument to obs\.Tracer\.Record`
	tr.Record(rank, obs.PhaseCompute, "step-"+strconv.Itoa(rank), -1, 0, 0, d)   // want `string concatenation in an argument to obs\.Tracer\.Record`
	c.Inc()
	c.Add(d)
	h.Observe(d)
	g.Set(int64(len(fmt.Sprint(rank)))) // want `fmt\.Sprint in an argument to obs\.Gauge\.Set`
}

func register(r *obs.Registry, peers int) {
	r.Counter("frames_total", "Frames.")
	const name = "steps_total"
	r.Counter(name, "Steps.") // named constant: fine
	for p := 0; p < peers; p++ {
		// Constant name with a varying label is the supported way to
		// split a series per peer.
		r.Func("peer_tx_bytes_total", "Bytes.", func() int64 { return 0 },
			obs.Label{Key: "peer", Value: strconv.Itoa(p)})
		r.Counter("peer_"+strconv.Itoa(p), "Bytes.") // want `obs\.Registry\.Counter needs a constant series name`
	}
	r.Gauge(fmt.Sprintf("gauge_%d", peers), "G.") // want `obs\.Registry\.Gauge needs a constant series name`
	r.Histogram("hist_ns", "H.", nil)
}

// funcCallbacks run at scrape time, not at the call site: their bodies
// are free to build strings.
func scrapeTime(r *obs.Registry) {
	r.Func("free_total", "F.", func() int64 {
		return int64(len(fmt.Sprintf("%d", 42)))
	})
}

// allowed documents the escape hatch: a fixed set of boot-time names
// built once is allowed with a reason.
func allowed(r *obs.Registry, shard int) {
	r.Counter("shard_"+strconv.Itoa(shard), "S.") /*lint:allow obsinert one series per boot-time shard id*/
}

// notObs proves the rule keys on the receiver's package: a same-named
// local type is out of scope.
type localRegistry struct{}

func (localRegistry) Counter(name, help string) {}

func outOfScope(r localRegistry, n int) {
	r.Counter("x_"+strconv.Itoa(n), "X.")
}
