// Package elastic exercises the wirebound analyzer: its import path
// ends in a decoder package name, so every make size fed by a wire
// length must be bounded first.
package elastic

import (
	"encoding/binary"
	"io"
)

const maxElems = 1 << 20

type header struct {
	Magic uint32
	N     uint32
}

func readUnguarded(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n) // want `make size derives from wire-decoded length "n" with no intervening bound check`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func readGuarded(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxElems {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func readDirect(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	payload := make([]byte, binary.BigEndian.Uint64(hdr[:])) // want `make size reads a wire length field directly with no bound check`
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// readChunked caps the allocation with the min builtin, the chunked
// decode idiom quant.readPayload and elastic.readChunked use.
func readChunked(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	chunk := make([]byte, min(n, 4096))
	_, err := io.ReadFull(r, chunk)
	return chunk, err
}

func readStruct(r io.Reader) ([]float32, error) {
	var hdr header
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	vals := make([]float32, hdr.N) // want `make size derives from wire-decoded length "hdr" with no intervening bound check`
	return vals, binary.Read(r, binary.LittleEndian, vals)
}

// readPinned pins the decoded count against a caller-supplied shape,
// the nn.Load idiom: an equality comparison is a bound.
func readPinned(r io.Reader, expect uint32) ([]float32, error) {
	var hdr header
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr.N != expect {
		return nil, io.ErrUnexpectedEOF
	}
	vals := make([]float32, hdr.N)
	return vals, binary.Read(r, binary.LittleEndian, vals)
}

// readAllowed proves the escape hatch suppresses exactly one
// diagnostic: the trailing directive clears its own line and the next
// line still fires.
func readAllowed(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	a := make([]byte, n) //lint:allow wirebound fixture: length is trusted here, proving the escape hatch
	b := make([]byte, n) // want `make size derives from wire-decoded length "n" with no intervening bound check`
	return append(a, b...), nil
}

// readTypo misspells the analyzer name, so the directive itself is the
// finding and the diagnostic it meant to silence still fires.
func readTypo(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n) /*lint:allow wirebond typo in the analyzer name*/ // want `make size derives from wire-decoded length "n"` `names unknown analyzer "wirebond"`
	_, err := io.ReadFull(r, buf)
	return buf, err
}
