// Package sim exercises the wirebound analyzer's json.Decoder rule:
// scenario decoders in sim must reject unknown keys.
package sim

import (
	"encoding/json"
	"io"
)

type scenario struct {
	Seed  int64 `json:"seed"`
	Ranks int   `json:"ranks"`
}

func loadStrict(r io.Reader) (*scenario, error) {
	var s scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

func loadLoose(r io.Reader) (*scenario, error) {
	var s scenario
	dec := json.NewDecoder(r) // want `sim json\.Decoder "dec" never calls DisallowUnknownFields`
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}

func loadChained(r io.Reader) (*scenario, error) {
	var s scenario
	if err := json.NewDecoder(r).Decode(&s); err != nil { // want `sim json\.Decoder used without DisallowUnknownFields`
		return nil, err
	}
	return &s, nil
}

// loadAllowed documents a deliberately lenient decoder.
func loadAllowed(r io.Reader) (*scenario, error) {
	var s scenario
	dec := json.NewDecoder(r) //lint:allow wirebound fixture: forward-compatible reader tolerates new keys
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	return &s, nil
}
