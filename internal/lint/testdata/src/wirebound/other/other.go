// Package other is outside the decoder-package set, so the same
// unguarded allocation shape that fires in wirebound/elastic must stay
// silent here.
package other

import (
	"encoding/binary"
	"io"
)

func readUnguarded(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}
