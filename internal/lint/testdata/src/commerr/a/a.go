// Package a exercises the commerr analyzer against the fake
// repro/comm and repro/quant packages.
package a

import (
	"bytes"

	"repro/comm"
	"repro/quant"
)

func discardExpr(t comm.Transport, buf []byte) {
	t.Send(0, 1, buf) // want `result of comm\.Transport\.Send discarded`
}

func discardGo(f *comm.Fabric, buf []byte) {
	go f.Send(0, 1, buf) // want `result of comm\.Fabric\.Send discarded by go statement`
}

func discardDefer(f *comm.Fabric, buf []byte) {
	defer f.Send(0, 1, buf) // want `result of comm\.Fabric\.Send discarded by defer statement`
}

func blankRecv(t comm.Transport) []byte {
	buf, _ := t.Recv(1, 0) // want `error from comm\.Transport\.Recv assigned to blank`
	return buf
}

func blankSend(t comm.Transport, buf []byte) {
	_ = t.Send(0, 1, buf) // want `error from comm\.Transport\.Send assigned to blank`
}

func blankEncode(e *quant.Encoder, data []float32) {
	var buf bytes.Buffer
	_ = e.EncodeTo(&buf, data) // want `error from Encoder\.EncodeTo assigned to blank`
}

func handled(t comm.Transport, buf []byte) error {
	if err := t.Send(0, 1, buf); err != nil {
		return err
	}
	b, err := t.Recv(1, 0)
	_ = b
	return err
}

// localSender's Send is not the transport's; discarding its result is
// out of scope.
type localSender struct{}

func (localSender) Send(from, to int, payload []byte) error { return nil }

func unrelated(s localSender) {
	s.Send(0, 1, nil)
}

// allowedSend proves the escape hatch suppresses exactly one
// diagnostic: the second send still fires.
func allowedSend(t comm.Transport, buf []byte) {
	t.Send(0, 1, buf) //lint:allow commerr fixture: fire-and-forget probe, the receiver has its own deadline
	t.Send(0, 2, buf) // want `result of comm\.Transport\.Send discarded`
}

func typoSend(t comm.Transport, buf []byte) {
	t.Send(0, 1, buf) /*lint:allow comerr typo in the analyzer name*/ // want `result of comm\.Transport\.Send discarded` `names unknown analyzer "comerr"`
}

func noReasonSend(t comm.Transport, buf []byte) {
	t.Send(0, 1, buf) /*lint:allow commerr*/ // want `result of comm\.Transport\.Send discarded` `is missing a reason`
}

// deadAllow's directive covers a call that already handles its error,
// so the directive itself is the finding.
func deadAllow(t comm.Transport, buf []byte) error {
	/*lint:allow commerr the call below already handles its error*/ // want `unused //lint:allow commerr directive`
	return t.Send(0, 1, buf)
}
