// Package a exercises the nodeprecated analyzer against the fake
// repro/quant, repro/parallel and repro/internal/simulate packages.
package a

import (
	_ "repro/internal/simulate"    // want `import of deprecated shim repro/internal/simulate`
	shim "repro/internal/simulate" //lint:allow nodeprecated fixture: migration in progress, tracked for removal
	"repro/parallel"
	"repro/quant"
)

var _ = shim.Estimate

func deprecatedPlan(c quant.Codec) *quant.Plan {
	return quant.NewCodecPlan(c, 1024, 0.99) // want `quant\.NewCodecPlan is a deprecated shim`
}

func supportedPlan(p *quant.Policy) *quant.Plan {
	return quant.NewPlan(p, 1024)
}

func deprecatedLiteral(c quant.Codec) parallel.Config {
	return parallel.Config{
		Workers: 4,
		Codec:   c, // want `parallel\.Config\.Codec is a deprecated shim field`
	}
}

func deprecatedCodecRead(cfg parallel.Config) quant.Codec {
	return cfg.Codec // want `parallel\.Config\.Codec is a deprecated shim field`
}

func deprecatedFracRead(cfg parallel.Config) float64 {
	return cfg.MinQuantisedFraction // want `parallel\.Config\.MinQuantisedFraction is a deprecated shim field`
}

func supported(cfg parallel.Config) *quant.Policy {
	return cfg.Policy
}

// allowedPlan proves the escape hatch suppresses exactly one
// diagnostic: the second constructor call still fires.
func allowedPlan(c quant.Codec) []*quant.Plan {
	a := quant.NewCodecPlan(c, 64, 0.5) //lint:allow nodeprecated fixture: golden-table comparison needs the legacy path
	b := quant.NewCodecPlan(c, 64, 0.5) // want `quant\.NewCodecPlan is a deprecated shim`
	return []*quant.Plan{a, b}
}

func typoPlan(c quant.Codec) *quant.Plan {
	return quant.NewCodecPlan(c, 64, 0.5) /*lint:allow nodeprecate typo in the analyzer name*/ // want `quant\.NewCodecPlan is a deprecated shim` `names unknown analyzer "nodeprecate"`
}
