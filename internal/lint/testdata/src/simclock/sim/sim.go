// Package sim exercises the simclock analyzer: wall-clock reads and
// ambient randomness are forbidden in the simulator package.
package sim

import (
	"math/rand"
	"time"
)

// clock is a logical clock; its Now is fine because it is not
// time.Now.
type clock struct{ ticks int64 }

func (c *clock) Now() int64 { return c.ticks }

func badWallClock() int64 {
	t := time.Now() // want `time\.Now in package sim`
	return t.UnixNano()
}

func badSleep(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep in package sim`
}

func badSince(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in package sim`
}

func badGlobalRand() int {
	return rand.Intn(10) // want `global rand\.Intn in package sim`
}

// goodSeeded draws from an explicitly seeded source; rand.New and
// rand.NewSource are the sanctioned constructors.
func goodSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// goodLogical uses the package's own clock type.
func goodLogical(c *clock) int64 { return c.Now() }

func allowedWallClock() int64 {
	t := time.Now() //lint:allow simclock fixture: startup banner timestamp never enters the trace
	return t.UnixNano()
}

func typoWallClock() int64 {
	t := time.Now() /*lint:allow simclok typo in the analyzer name*/ // want `time\.Now in package sim` `names unknown analyzer "simclok"`
	return t.UnixNano()
}
