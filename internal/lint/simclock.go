package lint

import (
	"go/ast"
	"go/types"
	"path"

	"repro/internal/lint/analysis"
)

// Simclock enforces the sim package's determinism contract: the
// discrete-event simulator runs on a seeded logical clock in integer
// nanoseconds and hashes its event trace with FNV-1a, so golden
// datasets and same-seed reruns are reproducible bit for bit. One call
// to time.Now — or one draw from the global math/rand generator —
// breaks that contract silently: the run still completes, but the
// trace hash stops being a function of (scenario, seed). The ban lives
// here, at compile time, instead of only in sim/doc.go's prose and the
// determinism regression tests.
var Simclock = &analysis.Analyzer{
	Name: "simclock",
	Doc: "package sim must not read wall time or global randomness\n\n" +
		"The simulator's golden trace hashes are reproducible only if every\n" +
		"time and randomness source is the seeded logical clock. time.Now,\n" +
		"time.Since, time.Sleep, timer constructors and the global math/rand\n" +
		"functions are forbidden in sim's non-test code.",
	Run: runSimclock,
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Types and constants (time.Duration, time.Millisecond) remain fine:
// the simulator uses them as units on its logical clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level functions that only
// construct explicitly-seeded generators rather than drawing from the
// global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runSimclock(pass *analysis.Pass) error {
	if path.Base(pass.PkgPath()) != "sim" {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			// Package-level functions only: methods on *rand.Rand or
			// *time.Timer values are reached through a constructor that
			// is itself either allowed (rand.New) or already flagged.
			if obj.Parent() != obj.Pkg().Scope() {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if forbiddenTimeFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in package sim: the simulator must use its seeded logical clock, or golden trace hashes stop reproducing (see sim/doc.go determinism contract)", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), "global rand.%s in package sim: draw from an explicitly seeded *rand.Rand instead, or golden trace hashes stop reproducing (see sim/doc.go determinism contract)", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
