package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// A //lint:allow directive is the suite's escape hatch: placed at the
// end of the offending line (or on its own line directly above it) it
// suppresses exactly one diagnostic of the named analyzer, and the
// reason is mandatory so every suppression documents why the invariant
// does not apply:
//
//	m.write(l, bye) //lint:allow commerr parting bye is best-effort
//
// The directive grammar is deliberately rigid — one analyzer, one
// diagnostic, one reason — so `grep lint:allow` enumerates every hole
// punched in the invariants together with its justification.
type directive struct {
	file     *token.File
	pos      token.Pos
	line     int
	analyzer string
	reason   string
}

// parseDirectives extracts every //lint:allow directive from the
// pass's files.
func parseDirectives(pass *Pass) []directive {
	var ds []directive
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The block form /*lint:allow ...*/ exists so a fixture
				// can put a separate comment after the directive on the
				// same line; real code should use the line form.
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					if text, ok = strings.CutPrefix(c.Text, "/*lint:allow"); !ok {
						continue
					}
					text = strings.TrimSuffix(text, "*/")
				}
				fields := strings.Fields(text)
				d := directive{file: tf, pos: c.Pos(), line: tf.Line(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				ds = append(ds, d)
			}
		}
	}
	return ds
}

// applyAllows filters the pass's raw diagnostics through the
// //lint:allow directives and appends directive-hygiene diagnostics.
// Malformed-directive findings use the shared "lintallow" category so
// that drivers running several analyzers over the same package can
// deduplicate the identical reports each of them produces.
func applyAllows(pass *Pass) []Diagnostic {
	ds := parseDirectives(pass)
	diags := pass.diags
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	suppressed := make([]bool, len(diags))
	var extra []Diagnostic
	for _, d := range ds {
		switch {
		case d.analyzer == "":
			extra = append(extra, Diagnostic{Pos: d.pos, Category: "lintallow",
				Message: "malformed //lint:allow directive: want //lint:allow <analyzer> <reason>"})
			continue
		case !known(d.analyzer):
			extra = append(extra, Diagnostic{Pos: d.pos, Category: "lintallow",
				Message: "//lint:allow names unknown analyzer " + strconvQuote(d.analyzer) +
					" (known: " + strings.Join(Registered(), ", ") + ")"})
			continue
		case d.reason == "":
			extra = append(extra, Diagnostic{Pos: d.pos, Category: "lintallow",
				Message: "//lint:allow " + d.analyzer + " is missing a reason"})
			continue
		}
		if d.analyzer != pass.Analyzer.Name {
			continue // directive for another analyzer in the suite
		}
		// Suppress the first not-yet-suppressed diagnostic of this
		// analyzer on the directive's line (trailing comment) or the
		// line below (standalone comment above the finding).
		hit := false
		for i, diag := range diags {
			if suppressed[i] || diag.Category != pass.Analyzer.Name {
				continue
			}
			p := pass.Fset.Position(diag.Pos)
			if p.Filename != d.file.Name() {
				continue
			}
			if p.Line == d.line || p.Line == d.line+1 {
				suppressed[i] = true
				hit = true
				break
			}
		}
		if !hit {
			extra = append(extra, Diagnostic{Pos: d.pos, Category: pass.Analyzer.Name,
				Message: "unused //lint:allow " + d.analyzer + " directive: no " + d.analyzer +
					" diagnostic on this line or the next"})
		}
	}

	var out []Diagnostic
	for i, diag := range diags {
		if !suppressed[i] {
			out = append(out, diag)
		}
	}
	out = append(out, extra...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

func strconvQuote(s string) string { return `"` + s + `"` }
