// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named
// check with a Run function over one type-checked package, and a Pass
// carries the package's syntax, types and a diagnostic sink.
//
// The repository cannot vendor x/tools (the build is intentionally
// dependency-free), so this package reimplements the one slice of the
// framework the lint suite needs: single-package analyzers with no
// cross-package facts. The driver (internal/lint/driver) speaks the
// `go vet -vettool` JSON config protocol, so analyzers written against
// this package run under plain `go vet` exactly like unitchecker-based
// ones would.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, driver flags and
	// //lint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is the analyzer's documentation. The first line is used as
	// the one-line summary in `lpsgd-vet help` and -flags output.
	Doc string
	// Run executes the check over one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos token.Pos
	// Category is the analyzer name for ordinary findings, or
	// "lintallow" for malformed //lint:allow directives (which every
	// analyzer reports identically, so drivers can deduplicate them).
	Category string
	Message  string
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgPath returns the package path with any go-test variant suffix
// stripped: the external test package "repro/quant_test" (and the
// bracketed form cmd/go uses for internal test variants) normalizes to
// "repro/quant", so path-scoped rules treat a package and its tests as
// one unit.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// IsTestFile reports whether f sits in a _test.go file. Analyzers that
// enforce production-code invariants (goroutine lifecycle, wall-clock
// bans) use this to leave test scaffolding alone.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := p.Fset.File(f.Pos()).Name()
	return strings.HasSuffix(name, "_test.go")
}

// registry is the set of analyzer names known to the lint suite,
// populated by Register at init time. //lint:allow directives naming
// anything outside it are themselves diagnosed.
var (
	regMu    sync.Mutex
	registry = map[string]bool{}
)

// Register records a's name in the global registry used to validate
// //lint:allow directives. The suite package calls it from init.
func Register(a *Analyzer) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[a.Name] = true
}

// Registered returns the sorted registered analyzer names.
func Registered() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func known(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// Run executes a over pass and returns its findings with //lint:allow
// directives applied: a well-formed directive naming this analyzer
// suppresses exactly one diagnostic on its own line or the line below;
// malformed directives (unknown analyzer name, missing reason) and
// directives for this analyzer that suppress nothing are themselves
// diagnostics.
func Run(a *Analyzer, pass *Pass) ([]Diagnostic, error) {
	pass.Analyzer = a
	pass.diags = nil
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	return applyAllows(pass), nil
}
