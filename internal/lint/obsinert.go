package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Obsinert guards the contract the observability plane's benchmarks
// prove: an instrumentation site costs nothing when the plane is off.
// obs.Tracer.Record and the metric handles (Counter/Gauge/Histogram)
// are nil-safe and branch out before touching their arguments — but Go
// evaluates arguments first, so an argument that builds a string
// (fmt.Sprintf, non-constant concatenation) allocates on every step
// even with tracing disabled, exactly the overhead the nil fast path
// exists to avoid. The same reasoning bans dynamic series names at
// Registry registration sites: a per-call name defeats the registry's
// dedup and grows an unbounded series set.
var Obsinert = &analysis.Analyzer{
	Name: "obsinert",
	Doc: "obs instrumentation sites must stay allocation-free when the plane is disabled\n\n" +
		"Arguments to obs.Tracer.Record and to the Counter/Gauge/Histogram\n" +
		"handle methods are evaluated before the nil fast path can branch\n" +
		"out, so they must not build strings per call (fmt.Sprintf/Sprint\n" +
		"or non-constant concatenation). Registry registration (Counter,\n" +
		"Gauge, Func, Histogram) needs a constant metric name: dynamic\n" +
		"names defeat dedup and grow an unbounded series set.",
	Run: runObsinert,
}

// obsHotMethods are the nil-safe fast-path entry points whose argument
// expressions run on every step even when the plane is off.
var obsHotMethods = map[string]map[string]bool{
	"Tracer":    {"Record": true},
	"Counter":   {"Inc": true, "Add": true},
	"Gauge":     {"Set": true, "Add": true},
	"Histogram": {"Observe": true},
}

// obsRegMethods are the Registry registration calls whose first
// argument is the series name.
var obsRegMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Func": true, "Histogram": true,
}

func runObsinert(pass *analysis.Pass) error {
	if pass.PkgPath() == "repro/obs" {
		return nil // the plane itself builds strings, behind its own enabled checks
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := obsMethodCall(pass, call)
			if !ok {
				return true
			}
			switch {
			case obsHotMethods[recv][method]:
				for _, arg := range call.Args {
					if built := perCallString(pass, arg); built != "" {
						pass.Reportf(arg.Pos(),
							"%s in an argument to obs.%s.%s allocates even when the plane is disabled: use a static or pre-built string",
							built, recv, method)
					}
				}
			case recv == "Registry" && obsRegMethods[method]:
				if len(call.Args) > 0 && !isConstString(pass, call.Args[0]) {
					pass.Reportf(call.Args[0].Pos(),
						"obs.Registry.%s needs a constant series name: dynamic names defeat dedup and grow an unbounded series set (vary labels instead)",
						method)
				}
			}
			return true
		})
	}
	return nil
}

// obsMethodCall resolves a call to a method on a repro/obs named type,
// returning the receiver type name and method name.
func obsMethodCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection, isMethod := pass.TypesInfo.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	pkgPath, name := namedRecv(selection.Recv())
	if pkgPath != "repro/obs" {
		return "", "", false
	}
	return name, sel.Sel.Name, true
}

// perCallString reports the first per-call string construction found
// inside e ("" when the expression is inert): a fmt string-building
// call, or a non-constant string concatenation.
func perCallString(pass *analysis.Pass, e ast.Expr) string {
	bad := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure argument (Registry.Func's callback) runs at
			// scrape time, not at the call site — its body is free to
			// do work.
			return false
		case *ast.CallExpr:
			if name := fmtStringCall(pass, n); name != "" {
				bad = name
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			tv, found := pass.TypesInfo.Types[n]
			if !found || tv.Value != nil {
				return true // untyped or constant-folded: free at run time
			}
			if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
				bad = "string concatenation"
			}
		}
		return bad == ""
	})
	return bad
}

// fmtStringCall reports whether call is one of fmt's string builders.
func fmtStringCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "fmt" {
		return ""
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln":
		return "fmt." + sel.Sel.Name
	}
	return ""
}

// isConstString reports whether e is a compile-time string constant.
func isConstString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}
