package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Simclock,
		"simclock/sim",
	)
}
