package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
)

// Nodeprecated keeps the deprecated shims from leaking back into new
// code. PR 3 replaced the (Codec, MinQuantisedFraction) pair with
// quant.Policy end to end, and PR 6 promoted internal/simulate into
// the sim package — but the shims (kept so old callers build) are one
// import or one field reference away from reintroducing the very
// configuration drift those PRs removed. This analyzer flags:
//
//   - imports of repro/internal/simulate (use repro/sim),
//   - uses of quant.NewCodecPlan (use quant.NewPlan with a Policy),
//   - reads or writes of parallel.Config.Codec and
//     parallel.Config.MinQuantisedFraction (set Config.Policy),
//
// everywhere except the shim packages themselves, whose job is to
// carry exactly these names.
var Nodeprecated = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc: "deprecated shims must not gain new callers\n\n" +
		"internal/simulate, quant.NewCodecPlan and the parallel.Config\n" +
		"Codec/MinQuantisedFraction pair are compatibility shims; new code\n" +
		"uses repro/sim and quant.Policy. Only the shim packages themselves\n" +
		"may reference them.",
	Run: runNodeprecated,
}

// shimPackages may reference any deprecated name: they are the shims.
var shimPackages = map[string]bool{
	"repro/internal/simulate": true,
}

func runNodeprecated(pass *analysis.Pass) error {
	pkgPath := pass.PkgPath()
	if shimPackages[pkgPath] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "repro/internal/simulate" {
				pass.Reportf(imp.Pos(), "import of deprecated shim repro/internal/simulate: the pricing model lives in repro/sim now")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeprecatedSelector(pass, pkgPath, n)
			case *ast.CompositeLit:
				checkDeprecatedLiteral(pass, pkgPath, n)
			}
			return true
		})
	}
	return nil
}

// checkDeprecatedSelector flags quant.NewCodecPlan references and
// field selections of the deprecated parallel.Config pair.
func checkDeprecatedSelector(pass *analysis.Pass, pkgPath string, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "repro/quant":
		if obj.Name() == "NewCodecPlan" && pkgPath != "repro/quant" {
			pass.Reportf(sel.Pos(), "quant.NewCodecPlan is a deprecated shim: build a quant.Policy and call quant.NewPlan")
		}
	case "repro/parallel":
		if pkgPath == "repro/parallel" {
			return
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() && deprecatedConfigField(pass, sel, obj.Name()) {
			pass.Reportf(sel.Pos(), "parallel.Config.%s is a deprecated shim field: set Config.Policy instead", obj.Name())
		}
	}
}

// deprecatedConfigField reports whether sel selects Codec or
// MinQuantisedFraction from a parallel.Config value.
func deprecatedConfigField(pass *analysis.Pass, sel *ast.SelectorExpr, name string) bool {
	if name != "Codec" && name != "MinQuantisedFraction" {
		return false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	pkg, recv := namedRecv(selection.Recv())
	return pkg == "repro/parallel" && recv == "Config"
}

// checkDeprecatedLiteral flags keyed parallel.Config composite
// literals that populate the deprecated pair.
func checkDeprecatedLiteral(pass *analysis.Pass, pkgPath string, lit *ast.CompositeLit) {
	if pkgPath == "repro/parallel" {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	pkg, name := namedRecv(t)
	if pkg != "repro/parallel" || name != "Config" {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if key.Name == "Codec" || key.Name == "MinQuantisedFraction" {
			pass.Reportf(kv.Pos(), "parallel.Config.%s is a deprecated shim field: set Config.Policy instead", key.Name)
		}
	}
}
