// Package lint is the repository's static-analysis suite: five
// analyzers that turn invariants which previously lived in doc
// comments and after-the-fact regression tests into compile-time
// checks, run over the whole module by cmd/lpsgd-vet via
// `go vet -vettool`.
//
// The analyzers and the PRs whose invariants they encode:
//
//   - wirebound: wire decoders must bound length fields before
//     allocating (the discipline of quant frames, the cluster
//     rendezvous, health control messages, elastic snapshots and nn
//     checkpoints — PRs 1–5), and sim's JSON scenario decoder must
//     reject unknown fields (PR 6).
//
//   - simclock: package sim must not touch wall time or global
//     randomness; its golden FNV-1a trace hashes are reproducible only
//     on the seeded logical clock (PR 6).
//
//   - commerr: comm.Transport.Send/Recv, the framed encoders'
//     EncodeTo, and health.Monitor control-plane writes return errors
//     for a reason (PR 2 converted the shutdown-race panics); results
//     must not be discarded or blank-assigned.
//
//   - golifecycle: `go func` literals in comm, health, cluster and
//     parallel must show a shutdown path — a done/ctx channel receive,
//     a WaitGroup Add/Done bracket, or a result channel the launcher
//     receives from (the property the goroutine-leak-counting tests in
//     PR 4 assert dynamically).
//
//   - nodeprecated: the deprecated shims — internal/simulate,
//     quant.NewCodecPlan, the parallel.Config Codec/
//     MinQuantisedFraction pair (PRs 3 and 6) — must not gain callers
//     outside the shims themselves.
//
// # Escape hatch
//
// A finding that is deliberate is annotated in place:
//
//	m.write(l, bye) //lint:allow commerr parting bye is best-effort
//
// The directive suppresses exactly one diagnostic of the named
// analyzer on its line (or the line below, for a standalone comment)
// and the reason is mandatory. Unknown analyzer names, missing reasons
// and directives that suppress nothing are themselves diagnostics, so
// the allow inventory stays honest: `grep -rn lint:allow` lists every
// hole in the invariants with its justification.
//
// # Running
//
//	make lint            # builds bin/lpsgd-vet and runs it over ./...
//	go build -o bin/lpsgd-vet ./cmd/lpsgd-vet
//	go vet -vettool=bin/lpsgd-vet ./...
//	go vet -vettool=bin/lpsgd-vet -simclock ./sim   # one analyzer
//
// The suite runs clean on the tree by construction: every finding is
// either fixed or carries a reasoned allow, and the CI lint lane keeps
// it that way.
package lint
