package workload

import (
	"fmt"

	"repro/quant"
)

// Dataset mirrors one row of the paper's Figure 1.
type Dataset struct {
	Name    string
	TrainN  int
	ValN    int
	SizeGB  float64
	Classes int
	Task    string
}

// Datasets is the paper's Figure 1.
var Datasets = []Dataset{
	{Name: "ImageNet", TrainN: 1_300_000, ValN: 50_000, SizeGB: 145, Classes: 1000, Task: "Image"},
	{Name: "CIFAR-10", TrainN: 50_000, ValN: 10_000, SizeGB: 1, Classes: 10, Task: "Image"},
	{Name: "AN4", TrainN: 948, ValN: 130, SizeGB: 0.064, Classes: 0, Task: "Speech"},
}

// DatasetByName returns the named Figure 1 entry.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Network is one of the paper's training workloads: Figure 3's
// statistics, Figure 4's batch sizes, a complete gradient-tensor
// inventory, and the calibration anchors the performance model needs.
type Network struct {
	// Name as the paper writes it.
	Name string
	// Dataset names the Figure 1 entry it trains on.
	Dataset string
	// Tensors is the full gradient-matrix inventory in CNTK layout.
	Tensors []quant.TensorInfo
	// FwdGFLOPs is the forward-pass cost per sample; training cost is
	// modelled as 3× (forward + two-pass backward).
	FwdGFLOPs float64
	// Epochs and BaseLR are Figure 3's training recipe.
	Epochs int
	BaseLR float64
	// BatchByGPUs is Figure 4: global minibatch per GPU count (0 marks
	// configurations the paper did not run).
	BatchByGPUs map[int]int
	// ThroughputK80 is the measured 1-GPU samples/second on the K80
	// (Figure 10's single-GPU column) — the compute-side calibration
	// anchor for the simulator.
	ThroughputK80 float64
	// SmallBatchBoost is the per-sample speedup when the per-GPU batch
	// drops to 16 or below — the super-linear VGG19 artefact of §5.2
	// ("Super-Linear Scaling"). 1 means no effect.
	SmallBatchBoost float64
	// PublishedTop1 is the paper-era top-1 accuracy (used by the
	// Figure 16 cost/accuracy analysis).
	PublishedTop1 float64
}

// Params returns the total parameter count.
func (n Network) Params() int64 { return TotalParams(n.Tensors) }

// ModelBytes returns the float32 gradient volume (4·params).
func (n Network) ModelBytes() int64 { return 4 * n.Params() }

// TrainGFLOPs returns the modelled per-sample training cost.
func (n Network) TrainGFLOPs() float64 { return 3 * n.FwdGFLOPs }

// BatchFor returns Figure 4's global batch for k GPUs, and whether the
// paper ran that configuration.
func (n Network) BatchFor(k int) (int, bool) {
	b, ok := n.BatchByGPUs[k]
	return b, ok && b > 0
}

// SampleSpeedup returns the per-sample throughput multiplier at the
// given per-GPU batch, capturing the small-batch caching effect.
func (n Network) SampleSpeedup(perGPUBatch int) float64 {
	if perGPUBatch <= 16 && n.SmallBatchBoost > 1 {
		return n.SmallBatchBoost
	}
	return 1
}

// MBPerGFLOP returns the communication-to-computation ratio of Figure 16
// (right): model megabytes per training GFLOP.
func (n Network) MBPerGFLOP() float64 {
	return float64(n.ModelBytes()) / 1e6 / n.TrainGFLOPs()
}

// DatasetSamples returns the samples per training epoch.
func (n Network) DatasetSamples() int {
	d, err := DatasetByName(n.Dataset)
	if err != nil {
		return 0
	}
	return d.TrainN
}

// The model zoo (Figures 3 and 4, plus calibration anchors).
var (
	// AlexNet: 62 M parameters, communication-dominated.
	AlexNet = Network{
		Name: "AlexNet", Dataset: "ImageNet",
		Tensors: alexNetTensors(), FwdGFLOPs: 0.72,
		Epochs: 112, BaseLR: 0.07,
		BatchByGPUs:   map[int]int{1: 256, 2: 256, 4: 256, 8: 256, 16: 256},
		ThroughputK80: 240.80, SmallBatchBoost: 1, PublishedTop1: 57.1,
	}
	// VGG19: 143 M parameters, the heaviest communicator.
	VGG19 = Network{
		Name: "VGG19", Dataset: "ImageNet",
		Tensors: vgg19Tensors(), FwdGFLOPs: 19.6,
		Epochs: 80, BaseLR: 0.1,
		BatchByGPUs:   map[int]int{1: 32, 2: 64, 4: 128, 8: 128, 16: 128},
		ThroughputK80: 12.40, SmallBatchBoost: 2.1, PublishedTop1: 71.1,
	}
	// BNInception: 11 M parameters, computation-dominated.
	BNInception = Network{
		Name: "BN-Inception", Dataset: "ImageNet",
		Tensors: bnInceptionTensors(), FwdGFLOPs: 2.0,
		Epochs: 300, BaseLR: 3.6,
		BatchByGPUs:   map[int]int{1: 64, 2: 128, 4: 256, 8: 256, 16: 256},
		ThroughputK80: 88.30, SmallBatchBoost: 1, PublishedTop1: 71.9,
	}
	// ResNet50: 25 M parameters, balanced.
	ResNet50 = Network{
		Name: "ResNet50", Dataset: "ImageNet",
		Tensors: resnetImageNetTensors([4]int{3, 4, 6, 3}), FwdGFLOPs: 3.9,
		Epochs: 120, BaseLR: 1,
		BatchByGPUs:   map[int]int{1: 32, 2: 64, 4: 128, 8: 256, 16: 256},
		ThroughputK80: 47.20, SmallBatchBoost: 1, PublishedTop1: 72.4,
	}
	// ResNet152: 60 M parameters, heavy compute and heavy communication.
	ResNet152 = Network{
		Name: "ResNet152", Dataset: "ImageNet",
		Tensors: resnetImageNetTensors([4]int{3, 8, 36, 3}), FwdGFLOPs: 11.3,
		Epochs: 120, BaseLR: 1,
		BatchByGPUs:   map[int]int{1: 16, 2: 32, 4: 64, 8: 128, 16: 256},
		ThroughputK80: 16.90, SmallBatchBoost: 1, PublishedTop1: 74.4,
	}
	// ResNet110: the CIFAR-10 model, 1.7 M parameters.
	ResNet110 = Network{
		Name: "ResNet110", Dataset: "CIFAR-10",
		Tensors: resnet110Tensors(), FwdGFLOPs: 0.26,
		Epochs: 160, BaseLR: 0.1,
		BatchByGPUs:   map[int]int{1: 128, 2: 128, 4: 128, 8: 128, 16: 128},
		ThroughputK80: 343.70, SmallBatchBoost: 1, PublishedTop1: 93.6,
	}
	// LSTMSpeech: the AN4 acoustic model, 13 M parameters.
	LSTMSpeech = Network{
		Name: "LSTM", Dataset: "AN4",
		Tensors: lstmTensors(), FwdGFLOPs: 1.1,
		Epochs: 20, BaseLR: 0.5,
		BatchByGPUs:   map[int]int{1: 16, 2: 16},
		ThroughputK80: 12, SmallBatchBoost: 1, PublishedTop1: 0,
	}
)

// Networks returns the full zoo in the paper's presentation order.
func Networks() []Network {
	return []Network{AlexNet, VGG19, BNInception, ResNet50, ResNet152, ResNet110, LSTMSpeech}
}

// PerformanceNetworks returns the networks appearing in the performance
// figures (Figures 6–15): the ImageNet five plus ResNet110.
func PerformanceNetworks() []Network {
	return []Network{AlexNet, VGG19, ResNet152, ResNet50, BNInception, ResNet110}
}

// NetworkByName returns the named zoo entry.
func NetworkByName(name string) (Network, error) {
	for _, n := range Networks() {
		if n.Name == name {
			return n, nil
		}
	}
	return Network{}, fmt.Errorf("workload: unknown network %q", name)
}
