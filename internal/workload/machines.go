// Package workload encodes the paper's experimental setup as data: the
// datasets of Figure 1, the machines of Figure 2, the networks of
// Figure 3 (including full gradient-tensor inventories in CNTK layout),
// the batch-size table of Figure 4, and the measured throughput tables
// of Figures 10–11, which serve both as calibration anchors and as the
// ground truth the claims harness compares against.
package workload

import "fmt"

// GPU describes one accelerator model (paper Figure 2).
type GPU struct {
	// Name is the marketing name ("K80", "P100").
	Name string
	// Arch is the NVIDIA architecture family the paper distinguishes.
	Arch string
	// TFLOPS is peak single-precision throughput.
	TFLOPS float64
	// ComputeScale is effective training speed relative to a K80; the
	// paper observes the DGX-1's P100 is "about 40% faster".
	ComputeScale float64
}

// LinkModel captures the calibrated behaviour of one communication
// primitive on one machine. The functional form is
//
//	time(bytes, K) = 2·(K−1)/K · bytes / BW(K)  +  messages·Lat(K)
//	BW(K)          = BaseGBps · Contraction^(log2(K)−1)     for K ≥ 2
//	Lat(K)         = LatencyPerMsg · (1 + LatencyGrowth·(K−2))
//
// BaseGBps is the effective point-to-point bandwidth observed with two
// GPUs; Contraction models bus contention as the GPU count doubles
// (PCIe trees shared by more devices). LatencyPerMsg folds per-matrix
// fixed costs: kernel launches, MPI envelope handling and — for the MPI
// path — the host-memory staging copy CNTK performs per gradient
// (§3.2.1). LatencyGrowth makes the fixed cost rise with the GPU count:
// ring startup grows linearly in K for NCCL, while MPI's staging cost
// grows slowly until the second PCIe root complex of the 16-GPU
// instance doubles it. The constants are fitted to the paper's own
// Figure 10/11 columns; the claims harness records the fit quality.
type LinkModel struct {
	BaseGBps      float64
	Contraction   float64
	LatencyPerMsg float64 // seconds per gradient matrix at K=2
	LatencyGrowth float64 // per-GPU growth of the per-matrix cost
}

// Bandwidth returns the effective bandwidth in bytes/second at K GPUs.
func (l LinkModel) Bandwidth(k int) float64 {
	bw := l.BaseGBps * 1e9
	for g := 2; g < k; g *= 2 {
		bw *= l.Contraction
	}
	return bw
}

// Latency returns the effective per-message fixed cost at K GPUs.
func (l LinkModel) Latency(k int) float64 {
	if k < 2 {
		return 0
	}
	return l.LatencyPerMsg * (1 + l.LatencyGrowth*float64(k-2))
}

// TransferTime returns the seconds needed to allreduce `bytes` across k
// GPUs with nMessages per-matrix exchanges.
func (l LinkModel) TransferTime(bytes int64, k, nMessages int) float64 {
	if k <= 1 {
		return 0
	}
	traffic := 2 * float64(k-1) / float64(k) * float64(bytes)
	return traffic/l.Bandwidth(k) + float64(nMessages)*l.Latency(k)
}

// Machine is one of the paper's testbeds (Figure 2).
type Machine struct {
	// Name as the paper uses it.
	Name string
	// MaxGPUs is the number of GPUs on the instance.
	MaxGPUs int
	// GPU describes the accelerator.
	GPU GPU
	// PricePerHour is the on-demand price in USD (Figure 2).
	PricePerHour float64
	// MPI and NCCL are the calibrated link models for the two
	// primitives. NCCL is undefined above 8 GPUs (the paper notes NCCL
	// "does not currently support more than 8 GPUs").
	MPI, NCCL LinkModel
	// NCCLMaxGPUs caps NCCL configurations (8 everywhere).
	NCCLMaxGPUs int
}

// SupportsNCCL reports whether the machine can run NCCL at k GPUs.
func (m Machine) SupportsNCCL(k int) bool { return k <= m.NCCLMaxGPUs }

var (
	// EC2P2 models the Amazon p2.16xlarge family: Tesla K80s on a PCIe
	// tree, MPI staging through host memory. Pricing covers the whole
	// family; PriceFor picks the cheapest instance for a GPU count.
	EC2P2 = Machine{
		Name:    "EC2-P2",
		MaxGPUs: 16,
		GPU:     GPU{Name: "K80", Arch: "Kepler", TFLOPS: 8.73, ComputeScale: 1.0},
		// Fit: AlexNet 32-bit MPI columns of Figure 10 give effective
		// 0.78 GB/s at K=2 shrinking ~0.8× per doubling; the per-matrix
		// MPI cost (~120 µs, dominated by host staging) roughly doubles
		// on the 16-GPU instance. NCCL's GPUDirect path starts near
		// 10 GB/s with ring startup growing linearly in K.
		MPI:          LinkModel{BaseGBps: 0.78, Contraction: 0.80, LatencyPerMsg: 120e-6, LatencyGrowth: 0.071},
		NCCL:         LinkModel{BaseGBps: 10.0, Contraction: 0.88, LatencyPerMsg: 80e-6, LatencyGrowth: 1.0},
		NCCLMaxGPUs:  8,
		PricePerHour: 14.4,
	}

	// DGX1 models the NVIDIA DGX-1: P100 GPUs on NVLink with a faster
	// host interconnect; MPI still pays staging, NCCL rides NVLink.
	DGX1 = Machine{
		Name:    "DGX-1",
		MaxGPUs: 8,
		GPU:     GPU{Name: "P100", Arch: "Pascal", TFLOPS: 10.6, ComputeScale: 1.4},
		// The paper's DGX MPI numbers imply an MPI stack that does not
		// ride NVLink (staged through host memory much like EC2's): a
		// quantisation speedup of several × on VGG19 is only possible
		// with sub-GB/s effective MPI bandwidth.
		MPI: LinkModel{BaseGBps: 0.9, Contraction: 0.85, LatencyPerMsg: 80e-6, LatencyGrowth: 0.071},
		// NVLink is fast but CNTK's NCCL path does not saturate it; the
		// paper's ~1.6× VGG19 NCCL speedup implies low-double-digit
		// effective GB/s.
		NCCL:         LinkModel{BaseGBps: 12.0, Contraction: 0.95, LatencyPerMsg: 40e-6, LatencyGrowth: 1.0},
		NCCLMaxGPUs:  8,
		PricePerHour: 50,
	}
)

// EC2Instance describes one purchasable instance size (Figure 2).
type EC2Instance struct {
	Name         string
	GPUs         int
	PricePerHour float64
}

// EC2Instances lists the P2 family (Figure 2).
var EC2Instances = []EC2Instance{
	{Name: "p2.xlarge", GPUs: 1, PricePerHour: 0.9},
	{Name: "p2.8xlarge", GPUs: 8, PricePerHour: 7.2},
	{Name: "p2.16xlarge", GPUs: 16, PricePerHour: 14.4},
}

// CheapestInstanceFor returns the least expensive EC2 P2 instance with
// at least k GPUs.
func CheapestInstanceFor(k int) (EC2Instance, error) {
	for _, inst := range EC2Instances {
		if inst.GPUs >= k {
			return inst, nil
		}
	}
	return EC2Instance{}, fmt.Errorf("workload: no EC2 instance with %d GPUs", k)
}

// Machines lists the paper's testbeds.
func Machines() []Machine { return []Machine{EC2P2, DGX1} }

// MachineByName returns the named machine.
func MachineByName(name string) (Machine, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("workload: unknown machine %q", name)
}
