package workload

import (
	"fmt"

	"repro/quant"
)

// The inventory builders below enumerate every gradient matrix of each
// network in CNTK tensor layout: the first tensor dimension is the wire
// "row" count and the remaining dimensions flatten into columns
// (paper §3.2, "Reshaped 1bitSGD"). A kW×kH convolution over inC→outC
// channels therefore becomes a matrix of shape [kW, kH·inC·outC] — rows
// of height 1–11 — which is precisely why classic column-wise 1bitSGD
// compresses convolutions poorly.

// convT returns the weight tensor of a convolution in CNTK layout.
func convT(name string, kw, kh, inC, outC int) quant.TensorInfo {
	return quant.TensorInfo{
		Name:  name + ".W",
		Shape: quant.Shape{Rows: kw, Cols: kh * inC * outC},
	}
}

// biasT returns a length-n bias/affine vector tensor.
func biasT(name string, n int) quant.TensorInfo {
	return quant.TensorInfo{Name: name, Shape: quant.Shape{Rows: n, Cols: 1}}
}

// denseT returns a dense weight tensor with the output dimension first.
func denseT(name string, in, out int) quant.TensorInfo {
	return quant.TensorInfo{Name: name + ".W", Shape: quant.Shape{Rows: out, Cols: in}}
}

// bnT returns the two affine tensors of a batch-norm layer.
func bnT(name string, c int) []quant.TensorInfo {
	return []quant.TensorInfo{biasT(name+".scale", c), biasT(name+".bias", c)}
}

// TotalParams sums the element counts of an inventory.
func TotalParams(tensors []quant.TensorInfo) int64 {
	var total int64
	for _, t := range tensors {
		total += int64(t.Shape.Len())
	}
	return total
}

// alexNetTensors builds the AlexNet inventory (≈62 M parameters): five
// convolutions and three enormous fully connected layers, the
// communication-dominated archetype of the study.
func alexNetTensors() []quant.TensorInfo {
	var ts []quant.TensorInfo
	add := func(t quant.TensorInfo) { ts = append(ts, t) }
	add(convT("conv1", 11, 11, 3, 96))
	add(biasT("conv1.b", 96))
	add(convT("conv2", 5, 5, 96, 256))
	add(biasT("conv2.b", 256))
	add(convT("conv3", 3, 3, 256, 384))
	add(biasT("conv3.b", 384))
	add(convT("conv4", 3, 3, 384, 384))
	add(biasT("conv4.b", 384))
	add(convT("conv5", 3, 3, 384, 256))
	add(biasT("conv5.b", 256))
	add(denseT("fc6", 9216, 4096))
	add(biasT("fc6.b", 4096))
	add(denseT("fc7", 4096, 4096))
	add(biasT("fc7.b", 4096))
	add(denseT("fc8", 4096, 1000))
	add(biasT("fc8.b", 1000))
	return ts
}

// vgg19Tensors builds the VGG-19 inventory (≈143 M parameters), the
// largest model in the study.
func vgg19Tensors() []quant.TensorInfo {
	cfg := []struct{ in, out, count int }{
		{3, 64, 1}, {64, 64, 1},
		{64, 128, 1}, {128, 128, 1},
		{128, 256, 1}, {256, 256, 3},
		{256, 512, 1}, {512, 512, 3},
		{512, 512, 4},
	}
	var ts []quant.TensorInfo
	idx := 1
	for _, c := range cfg {
		for i := 0; i < c.count; i++ {
			name := fmt.Sprintf("conv%d", idx)
			ts = append(ts, convT(name, 3, 3, c.in, c.out))
			ts = append(ts, biasT(name+".b", c.out))
			idx++
		}
	}
	ts = append(ts, denseT("fc6", 25088, 4096), biasT("fc6.b", 4096))
	ts = append(ts, denseT("fc7", 4096, 4096), biasT("fc7.b", 4096))
	ts = append(ts, denseT("fc8", 4096, 1000), biasT("fc8.b", 1000))
	return ts
}

// bottleneckTensors emits one ResNet bottleneck block (1×1, 3×3, 1×1
// convolutions plus batch norms, with an optional projection shortcut).
func bottleneckTensors(name string, inC, midC, outC int, project bool) []quant.TensorInfo {
	var ts []quant.TensorInfo
	ts = append(ts, convT(name+".a", 1, 1, inC, midC))
	ts = append(ts, bnT(name+".a.bn", midC)...)
	ts = append(ts, convT(name+".b", 3, 3, midC, midC))
	ts = append(ts, bnT(name+".b.bn", midC)...)
	ts = append(ts, convT(name+".c", 1, 1, midC, outC))
	ts = append(ts, bnT(name+".c.bn", outC)...)
	if project {
		ts = append(ts, convT(name+".proj", 1, 1, inC, outC))
		ts = append(ts, bnT(name+".proj.bn", outC)...)
	}
	return ts
}

// resnetImageNetTensors builds a bottleneck ResNet inventory for
// ImageNet. stages gives the block count per stage; ResNet-50 is
// {3,4,6,3} (≈25 M), ResNet-152 is {3,8,36,3} (≈60 M).
func resnetImageNetTensors(stages [4]int) []quant.TensorInfo {
	var ts []quant.TensorInfo
	ts = append(ts, convT("conv1", 7, 7, 3, 64))
	ts = append(ts, bnT("conv1.bn", 64)...)
	mids := [4]int{64, 128, 256, 512}
	in := 64
	for s := 0; s < 4; s++ {
		out := mids[s] * 4
		for b := 0; b < stages[s]; b++ {
			name := fmt.Sprintf("stage%d.block%d", s+1, b+1)
			ts = append(ts, bottleneckTensors(name, in, mids[s], out, b == 0)...)
			in = out
		}
	}
	ts = append(ts, denseT("fc", 2048, 1000), biasT("fc.b", 1000))
	return ts
}

// resnet110Tensors builds the CIFAR ResNet-110 inventory (basic 3×3
// blocks, 18 per stage, widths 16/32/64; ≈1.7 M parameters).
func resnet110Tensors() []quant.TensorInfo {
	var ts []quant.TensorInfo
	ts = append(ts, convT("conv1", 3, 3, 3, 16))
	ts = append(ts, bnT("conv1.bn", 16)...)
	widths := [3]int{16, 32, 64}
	in := 16
	for s := 0; s < 3; s++ {
		w := widths[s]
		for b := 0; b < 18; b++ {
			name := fmt.Sprintf("stage%d.block%d", s+1, b+1)
			ts = append(ts, convT(name+".a", 3, 3, in, w))
			ts = append(ts, bnT(name+".a.bn", w)...)
			ts = append(ts, convT(name+".b", 3, 3, w, w))
			ts = append(ts, bnT(name+".b.bn", w)...)
			if in != w {
				ts = append(ts, convT(name+".proj", 1, 1, in, w))
				ts = append(ts, bnT(name+".proj.bn", w)...)
			}
			in = w
		}
	}
	ts = append(ts, denseT("fc", 64, 10), biasT("fc.b", 10))
	return ts
}

// inceptionModule emits one BN-Inception module with the four standard
// towers (1×1; 1×1→3×3; 1×1→3×3→3×3; pool→1×1).
func inceptionModule(name string, inC, t1, r3, t3, r33, t33, pool int) []quant.TensorInfo {
	var ts []quant.TensorInfo
	add := func(n string, kw, kh, i, o int) {
		ts = append(ts, convT(n, kw, kh, i, o))
		ts = append(ts, bnT(n+".bn", o)...)
	}
	if t1 > 0 {
		add(name+".t1", 1, 1, inC, t1)
	}
	add(name+".t3r", 1, 1, inC, r3)
	add(name+".t3", 3, 3, r3, t3)
	add(name+".t33r", 1, 1, inC, r33)
	add(name+".t33a", 3, 3, r33, t33)
	add(name+".t33b", 3, 3, t33, t33)
	if pool > 0 {
		add(name+".pool", 1, 1, inC, pool)
	}
	return ts
}

// bnInceptionTensors builds the BN-Inception (GoogLeNet with batch
// normalisation) inventory, ≈11 M parameters — the study's
// computation-dominated, parameter-light network.
func bnInceptionTensors() []quant.TensorInfo {
	var ts []quant.TensorInfo
	ts = append(ts, convT("conv1", 7, 7, 3, 64))
	ts = append(ts, bnT("conv1.bn", 64)...)
	ts = append(ts, convT("conv2r", 1, 1, 64, 64))
	ts = append(ts, bnT("conv2r.bn", 64)...)
	ts = append(ts, convT("conv2", 3, 3, 64, 192))
	ts = append(ts, bnT("conv2.bn", 192)...)
	mods := []struct {
		name string
		inC, t1, r3, t3, r33, t33,
		pool int
	}{
		{"inc3a", 192, 64, 64, 64, 64, 96, 32},
		{"inc3b", 256, 64, 64, 96, 64, 96, 64},
		{"inc3c", 320, 0, 128, 160, 64, 96, 0},
		{"inc4a", 576, 224, 64, 96, 96, 128, 128},
		{"inc4b", 576, 192, 96, 128, 96, 128, 128},
		{"inc4c", 576, 160, 128, 160, 128, 160, 128},
		{"inc4d", 608, 96, 128, 192, 160, 192, 128},
		{"inc4e", 608, 0, 128, 192, 192, 256, 0},
		{"inc5a", 1056, 352, 192, 320, 160, 224, 128},
		{"inc5b", 1024, 352, 192, 320, 192, 224, 128},
	}
	for _, m := range mods {
		ts = append(ts, inceptionModule(m.name, m.inC, m.t1, m.r3, m.t3, m.r33, m.t33, m.pool)...)
	}
	ts = append(ts, denseT("fc", 1024, 1000), biasT("fc.b", 1000))
	return ts
}

// lstmTensors builds the AN4 speech model: three stacked LSTMs of
// hidden size 768 over 80-dimensional acoustic features, ≈13 M
// parameters. Fused gate matrices use CNTK layout (4H rows).
func lstmTensors() []quant.TensorInfo {
	const d, h, labels = 80, 768, 132
	var ts []quant.TensorInfo
	in := d
	for l := 1; l <= 3; l++ {
		name := fmt.Sprintf("lstm%d", l)
		ts = append(ts, quant.TensorInfo{Name: name + ".Wx",
			Shape: quant.Shape{Rows: 4 * h, Cols: in}})
		ts = append(ts, quant.TensorInfo{Name: name + ".Wh",
			Shape: quant.Shape{Rows: 4 * h, Cols: h}})
		ts = append(ts, biasT(name+".b", 4*h))
		in = h
	}
	ts = append(ts, denseT("out", h, labels), biasT("out.b", labels))
	return ts
}
