package workload

// This file embeds the paper's measured throughput tables (Figures 10
// and 11) verbatim. They serve two purposes: the single-GPU column
// calibrates the simulator's compute model, and the full tables are the
// ground truth that the claims harness compares the simulator's output
// against, row by row.

// PaperRow is one (network, precision) row of a throughput table:
// samples/second at 1, 2, 4, 8 and 16 GPUs. Zero marks configurations
// the paper does not report ("/" in the tables).
type PaperRow struct {
	Network   string
	Precision string // 32bit, qsgd16, qsgd8, qsgd4, qsgd2, 1bit, 1bit*
	Bucket    int    // 0 when not applicable
	Samples   [5]float64
}

// GPUCounts are the column headers of Figures 10–11.
var GPUCounts = [5]int{1, 2, 4, 8, 16}

// PaperFig10MPI is Figure 10: samples/second with MPI on the EC2 P2
// instance.
var PaperFig10MPI = []PaperRow{
	{"AlexNet", "32bit", 0, [5]float64{240.80, 301.45, 328.00, 272.90, 192.10}},
	{"AlexNet", "qsgd16", 8192, [5]float64{0, 388.80, 508.80, 500.90, 335.60}},
	{"AlexNet", "qsgd8", 512, [5]float64{0, 424.90, 544.60, 739.10, 535.00}},
	{"AlexNet", "qsgd4", 512, [5]float64{0, 466.50, 598.70, 964.90, 748.50}},
	{"AlexNet", "qsgd2", 128, [5]float64{0, 449.20, 609.15, 1076.50, 889.80}},
	{"AlexNet", "1bit", 0, [5]float64{0, 424.05, 564.30, 971.10, 849.40}},
	{"AlexNet", "1bit*", 64, [5]float64{0, 370.80, 476.50, 761.20, 712.70}},

	{"ResNet50", "32bit", 0, [5]float64{47.20, 80.80, 142.40, 247.90, 272.30}},
	{"ResNet50", "qsgd16", 8192, [5]float64{0, 90.20, 156.30, 275.80, 348.70}},
	{"ResNet50", "qsgd8", 512, [5]float64{0, 92.60, 162.70, 313.70, 416.80}},
	{"ResNet50", "qsgd4", 512, [5]float64{0, 93.90, 165.70, 326.10, 461.20}},
	{"ResNet50", "qsgd2", 128, [5]float64{0, 93.30, 178.35, 330.45, 472.25}},
	{"ResNet50", "1bit", 0, [5]float64{0, 45.10, 81.70, 160.15, 155.20}},
	{"ResNet50", "1bit*", 64, [5]float64{0, 88.10, 156.50, 296.70, 442.40}},

	{"ResNet110", "32bit", 0, [5]float64{343.70, 555.00, 957.70, 1229.10, 831.60}},
	{"ResNet110", "qsgd16", 8192, [5]float64{0, 551.00, 942.70, 1164.20, 763.40}},
	{"ResNet110", "qsgd8", 512, [5]float64{0, 550.20, 960.10, 1193.10, 759.70}},
	{"ResNet110", "qsgd4", 512, [5]float64{0, 571.10, 957.40, 1257.10, 784.30}},
	{"ResNet110", "qsgd2", 128, [5]float64{0, 557.20, 973.10, 1227.90, 780.40}},
	{"ResNet110", "1bit", 0, [5]float64{0, 465.60, 643.30, 610.90, 406.90}},
	{"ResNet110", "1bit*", 64, [5]float64{0, 550.40, 884.80, 1156.70, 757.70}},

	{"ResNet152", "32bit", 0, [5]float64{16.90, 26.10, 45.00, 73.90, 113.50}},
	{"ResNet152", "qsgd16", 8192, [5]float64{0, 31.20, 54.50, 95.50, 151.00}},
	{"ResNet152", "qsgd8", 512, [5]float64{0, 32.80, 62.70, 109.20, 182.50}},
	{"ResNet152", "qsgd4", 512, [5]float64{0, 33.60, 60.20, 121.90, 203.20}},
	{"ResNet152", "qsgd2", 128, [5]float64{0, 33.50, 64.35, 123.55, 208.50}},
	{"ResNet152", "1bit", 0, [5]float64{0, 10.55, 22.10, 41.40, 63.15}},
	{"ResNet152", "1bit*", 64, [5]float64{0, 30.40, 55.50, 108.10, 193.50}},

	{"VGG19", "32bit", 0, [5]float64{12.40, 20.40, 36.30, 53.95, 40.60}},
	{"VGG19", "qsgd16", 8192, [5]float64{0, 24.80, 46.40, 35.80, 67.80}},
	{"VGG19", "qsgd8", 512, [5]float64{0, 24.20, 47.50, 119.50, 106.60}},
	{"VGG19", "qsgd4", 512, [5]float64{0, 27.00, 52.30, 151.65, 143.80}},
	{"VGG19", "qsgd2", 128, [5]float64{0, 24.60, 49.35, 160.35, 170.50}},
	{"VGG19", "1bit", 0, [5]float64{0, 22.20, 43.15, 117.35, 120.60}},
	{"VGG19", "1bit*", 64, [5]float64{0, 22.90, 44.80, 99.15, 134.30}},

	{"BN-Inception", "32bit", 0, [5]float64{88.30, 164.80, 316.75, 473.75, 500.40}},
	{"BN-Inception", "qsgd16", 8192, [5]float64{0, 171.80, 337.10, 482.70, 592.30}},
	{"BN-Inception", "qsgd8", 512, [5]float64{0, 173.60, 342.50, 552.90, 696.30}},
	{"BN-Inception", "qsgd4", 512, [5]float64{0, 174.80, 346.90, 593.40, 743.30}},
	{"BN-Inception", "qsgd2", 128, [5]float64{0, 173.40, 343.70, 591.80, 747.50}},
	{"BN-Inception", "1bit", 0, [5]float64{0, 127.60, 236.25, 336.15, 321.30}},
	{"BN-Inception", "1bit*", 64, [5]float64{0, 170.30, 335.10, 480.50, 700.40}},
}

// PaperFig11NCCL is Figure 11: samples/second with NCCL on the EC2 P2
// instance (NCCL tops out at 8 GPUs; low precision is the paper's
// byte-volume simulation).
var PaperFig11NCCL = []PaperRow{
	{"AlexNet", "32bit", 0, [5]float64{240.80, 458.20, 625.00, 1138.30, 0}},
	{"AlexNet", "qsgd16", 8192, [5]float64{0, 462.80, 632.10, 1157.60, 0}},
	{"AlexNet", "qsgd8", 512, [5]float64{0, 458.40, 641.80, 1214.80, 0}},
	{"AlexNet", "qsgd4", 512, [5]float64{0, 471.90, 659.40, 1247.70, 0}},
	{"AlexNet", "qsgd2", 128, [5]float64{0, 471.00, 661.60, 1229.70, 0}},

	{"ResNet50", "32bit", 0, [5]float64{47.20, 93.80, 164.80, 291.10, 0}},
	{"ResNet50", "qsgd16", 8192, [5]float64{0, 93.70, 164.50, 324.20, 0}},
	{"ResNet50", "qsgd8", 512, [5]float64{0, 94.00, 165.80, 297.40, 0}},
	{"ResNet50", "qsgd4", 512, [5]float64{0, 95.60, 167.90, 298.40, 0}},
	{"ResNet50", "qsgd2", 128, [5]float64{0, 95.50, 168.20, 304.10, 0}},

	{"ResNet152", "32bit", 0, [5]float64{16.90, 33.60, 60.10, 112.10, 0}},
	{"ResNet152", "qsgd16", 8192, [5]float64{0, 33.40, 59.80, 112.20, 0}},
	{"ResNet152", "qsgd8", 512, [5]float64{0, 33.70, 60.80, 115.10, 0}},
	{"ResNet152", "qsgd4", 512, [5]float64{0, 34.20, 62.10, 118.70, 0}},
	{"ResNet152", "qsgd2", 128, [5]float64{0, 34.30, 62.20, 119.90, 0}},

	{"VGG19", "32bit", 0, [5]float64{12.40, 24.90, 48.70, 163.10, 0}},
	{"VGG19", "qsgd16", 8192, [5]float64{0, 24.90, 49.10, 168.00, 0}},
	{"VGG19", "qsgd8", 512, [5]float64{0, 25.50, 50.50, 175.20, 0}},
	{"VGG19", "qsgd4", 512, [5]float64{0, 25.60, 51.00, 179.50, 0}},
	{"VGG19", "qsgd2", 128, [5]float64{0, 25.60, 51.10, 177.80, 0}},

	{"BN-Inception", "32bit", 0, [5]float64{88.30, 175.30, 342.00, 486.70, 0}},
	{"BN-Inception", "qsgd16", 8192, [5]float64{0, 174.30, 342.70, 497.10, 0}},
	{"BN-Inception", "qsgd8", 512, [5]float64{0, 174.50, 345.30, 510.10, 0}},
	{"BN-Inception", "qsgd4", 512, [5]float64{0, 178.60, 349.00, 598.90, 0}},
	{"BN-Inception", "qsgd2", 128, [5]float64{0, 177.20, 349.00, 608.20, 0}},
}

// PaperRowsFor filters a table by network name.
func PaperRowsFor(table []PaperRow, network string) []PaperRow {
	var out []PaperRow
	for _, r := range table {
		if r.Network == network {
			out = append(out, r)
		}
	}
	return out
}

// PaperThroughput looks up one cell of a table. It returns 0, false when
// the paper does not report that configuration.
func PaperThroughput(table []PaperRow, network, precision string, gpus int) (float64, bool) {
	col := -1
	for i, k := range GPUCounts {
		if k == gpus {
			col = i
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range table {
		if r.Network == network && r.Precision == precision {
			if v := r.Samples[col]; v > 0 {
				return v, true
			}
			return 0, false
		}
	}
	return 0, false
}
