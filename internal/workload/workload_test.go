package workload

import (
	"math"
	"testing"

	"repro/quant"
)

// TestParameterCountsMatchFigure3 verifies that the tensor inventories
// reproduce the paper's parameter counts (Figure 3) within tolerance —
// the inventories drive every wire-volume computation downstream.
func TestParameterCountsMatchFigure3(t *testing.T) {
	cases := []struct {
		net     Network
		paperM  float64 // Figure 3 "Params" in millions
		tolFrac float64
	}{
		{AlexNet, 62, 0.05},
		{VGG19, 143, 0.05},
		{BNInception, 11, 0.20}, // paper rounds aggressively; module table approximated
		{ResNet50, 25, 0.08},
		{ResNet152, 60, 0.08},
		{ResNet110, 1.7, 0.15}, // paper says 1M but ResNet-110 is 1.7M
		{LSTMSpeech, 13, 0.15},
	}
	for _, tc := range cases {
		gotM := float64(tc.net.Params()) / 1e6
		if math.Abs(gotM-tc.paperM)/tc.paperM > tc.tolFrac {
			t.Errorf("%s: %0.2fM params, paper says %.1fM (tol %.0f%%)",
				tc.net.Name, gotM, tc.paperM, tc.tolFrac*100)
		}
	}
}

// TestConvTensorsHaveSmallRows: the CNTK-layout artefact the paper's
// reshaping discussion depends on — conv kernels must present tiny row
// counts to the codec.
func TestConvTensorsHaveSmallRows(t *testing.T) {
	for _, ti := range ResNet152.Tensors {
		if ti.Shape.Rows == 3 && ti.Shape.Cols > 1 {
			return // found a 3-row conv tensor
		}
	}
	t.Fatal("ResNet152 inventory has no 3-row conv tensors")
}

// TestClassicOneBitExpandsResNet: classic 1bitSGD must fail to compress
// ResNet-style inventories (ratio ≈ 1) while 1bitSGD* compresses ~16×,
// reproducing §3.2's observation.
func TestClassicOneBitExpandsResNet(t *testing.T) {
	classic, reshaped := quant.OneBit{}, quant.NewOneBitReshaped(64)
	var rawB, classicB, reshapedB int64
	for _, ti := range ResNet152.Tensors {
		n := ti.Shape.Len()
		rawB += int64(4 * n)
		classicB += int64(classic.EncodedBytes(n, ti.Shape))
		reshapedB += int64(reshaped.EncodedBytes(n, ti.Shape))
	}
	classicRatio := float64(rawB) / float64(classicB)
	reshapedRatio := float64(rawB) / float64(reshapedB)
	if classicRatio > 1.5 {
		t.Errorf("classic 1bit compresses ResNet152 %.2f× — artefact not reproduced", classicRatio)
	}
	if reshapedRatio < 12 {
		t.Errorf("reshaped 1bit only %.2f× on ResNet152", reshapedRatio)
	}
}

// TestAlexNetOneBitCompressesFC: on AlexNet the FC layers dominate and
// classic 1bit must compress well overall (paper: AlexNet 1bit is fast).
func TestAlexNetOneBitCompressesFC(t *testing.T) {
	classic := quant.OneBit{}
	var rawB, encB int64
	for _, ti := range AlexNet.Tensors {
		n := ti.Shape.Len()
		rawB += int64(4 * n)
		encB += int64(classic.EncodedBytes(n, ti.Shape))
	}
	if ratio := float64(rawB) / float64(encB); ratio < 10 {
		t.Errorf("classic 1bit on AlexNet only %.1f×, expected FC-dominated >10×", ratio)
	}
}

func TestBatchTableMatchesFigure4(t *testing.T) {
	cases := []struct {
		net  Network
		k    int
		want int
	}{
		{AlexNet, 16, 256},
		{VGG19, 1, 32}, {VGG19, 8, 128},
		{ResNet50, 4, 128}, {ResNet50, 8, 256},
		{ResNet152, 1, 16}, {ResNet152, 16, 256},
		{ResNet110, 8, 128},
		{BNInception, 1, 64}, {BNInception, 4, 256},
		{LSTMSpeech, 2, 16},
	}
	for _, tc := range cases {
		got, ok := tc.net.BatchFor(tc.k)
		if !ok || got != tc.want {
			t.Errorf("%s@%dGPU: batch %d (ok=%v), want %d", tc.net.Name, tc.k, got, ok, tc.want)
		}
	}
	if _, ok := LSTMSpeech.BatchFor(8); ok {
		t.Error("LSTM has no 8-GPU configuration in Figure 4")
	}
}

func TestMachinesMatchFigure2(t *testing.T) {
	if EC2P2.GPU.Name != "K80" || EC2P2.MaxGPUs != 16 || EC2P2.GPU.Arch != "Kepler" {
		t.Error("EC2 P2 spec wrong")
	}
	if DGX1.GPU.Name != "P100" || DGX1.MaxGPUs != 8 || DGX1.GPU.Arch != "Pascal" {
		t.Error("DGX-1 spec wrong")
	}
	if DGX1.PricePerHour != 50 {
		t.Error("DGX-1 price should be $50/h (Nimbix)")
	}
	inst, err := CheapestInstanceFor(4)
	if err != nil || inst.Name != "p2.8xlarge" {
		t.Errorf("cheapest for 4 GPUs = %v, %v", inst, err)
	}
	inst, _ = CheapestInstanceFor(1)
	if inst.PricePerHour != 0.9 {
		t.Error("p2.xlarge price wrong")
	}
	if _, err := CheapestInstanceFor(32); err == nil {
		t.Error("expected error above 16 GPUs")
	}
}

func TestLinkModelBandwidthContracts(t *testing.T) {
	l := LinkModel{BaseGBps: 1, Contraction: 0.8, LatencyPerMsg: 0}
	if got := l.Bandwidth(2); math.Abs(got-1e9) > 1 {
		t.Errorf("BW(2) = %v", got)
	}
	if got := l.Bandwidth(8); math.Abs(got-0.64e9) > 1e6 {
		t.Errorf("BW(8) = %v, want 0.64e9", got)
	}
	if l.TransferTime(1000, 1, 10) != 0 {
		t.Error("single GPU must transfer nothing")
	}
	// 2 GPUs, 1 GB: traffic = 1 GB, at 1 GB/s → 1 s.
	if got := l.TransferTime(1e9, 2, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("TransferTime = %v, want 1", got)
	}
}

func TestDatasetsMatchFigure1(t *testing.T) {
	im, err := DatasetByName("ImageNet")
	if err != nil || im.TrainN != 1_300_000 || im.Classes != 1000 {
		t.Error("ImageNet row wrong")
	}
	an4, err := DatasetByName("AN4")
	if err != nil || an4.TrainN != 948 || an4.ValN != 130 {
		t.Error("AN4 row wrong")
	}
	if _, err := DatasetByName("MNIST"); err == nil {
		t.Error("expected unknown-dataset error")
	}
}

func TestPaperTablesLookup(t *testing.T) {
	v, ok := PaperThroughput(PaperFig10MPI, "AlexNet", "32bit", 8)
	if !ok || v != 272.90 {
		t.Errorf("Fig10 AlexNet 32bit@8 = %v (%v)", v, ok)
	}
	v, ok = PaperThroughput(PaperFig11NCCL, "VGG19", "qsgd4", 8)
	if !ok || v != 179.50 {
		t.Errorf("Fig11 VGG19 qsgd4@8 = %v (%v)", v, ok)
	}
	if _, ok := PaperThroughput(PaperFig11NCCL, "AlexNet", "32bit", 16); ok {
		t.Error("NCCL@16 must be unreported")
	}
	if _, ok := PaperThroughput(PaperFig10MPI, "AlexNet", "qsgd4", 1); ok {
		t.Error("quantised single-GPU cells are '/' in the paper")
	}
	if rows := PaperRowsFor(PaperFig10MPI, "VGG19"); len(rows) != 7 {
		t.Errorf("VGG19 has %d Fig10 rows, want 7", len(rows))
	}
}

// TestCalibrationAnchorsAgree: the zoo's ThroughputK80 must equal the
// 1-GPU column of Figure 10 (they are the same measurement).
func TestCalibrationAnchorsAgree(t *testing.T) {
	for _, n := range PerformanceNetworks() {
		v, ok := PaperThroughput(PaperFig10MPI, n.Name, "32bit", 1)
		if !ok {
			t.Errorf("%s missing 1-GPU 32bit cell", n.Name)
			continue
		}
		if v != n.ThroughputK80 {
			t.Errorf("%s: anchor %v != table %v", n.Name, n.ThroughputK80, v)
		}
	}
}

// TestCommunicationRegimes: the study's framing — AlexNet/VGG are
// communication-dominated, BN-Inception/ResNet50 computation-dominated.
// MB/GFLOP separates them by an order of magnitude.
func TestCommunicationRegimes(t *testing.T) {
	if AlexNet.MBPerGFLOP() < 10*BNInception.MBPerGFLOP() {
		t.Errorf("AlexNet ratio %.2f not ≫ Inception %.2f",
			AlexNet.MBPerGFLOP(), BNInception.MBPerGFLOP())
	}
	if VGG19.MBPerGFLOP() < ResNet50.MBPerGFLOP() {
		t.Error("VGG19 should be more communication-bound than ResNet50")
	}
}

func TestNetworkByName(t *testing.T) {
	n, err := NetworkByName("VGG19")
	if err != nil || n.Params() < 100e6 {
		t.Error("VGG19 lookup failed")
	}
	if _, err := NetworkByName("LeNet"); err == nil {
		t.Error("expected unknown-network error")
	}
}

func TestSampleSpeedup(t *testing.T) {
	if VGG19.SampleSpeedup(32) != 1 {
		t.Error("no boost at batch 32")
	}
	if VGG19.SampleSpeedup(16) <= 1 {
		t.Error("VGG19 must boost at batch 16 (super-linear artefact)")
	}
	if AlexNet.SampleSpeedup(8) != 1 {
		t.Error("AlexNet has no small-batch boost")
	}
}
