package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
	"repro/internal/workload"
	"repro/sim"
)

var updateTables = flag.Bool("update-golden", false, "regenerate testdata/paper_tables.golden")

// renderPaperTables renders a representative slice of the paper's
// simulated figures — the exact text the CLI tools print — so any
// refactor of the pricing path is locked to byte-identical output.
func renderPaperTables(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	render := func(tables []*report.Table, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		for _, tb := range tables {
			tb.Render(&buf)
			buf.WriteByte('\n')
		}
	}
	render(ThroughputFigure(workload.EC2P2, sim.MPI))
	render(ThroughputFigure(workload.EC2P2, sim.NCCL))
	render(EpochTimeFigure(workload.EC2P2, sim.MPI, 8))
	render(EpochTimeFigure(workload.DGX1, sim.NCCL, 8))
	render(ScalabilityFigure(workload.EC2P2, sim.MPI))
	return buf.Bytes()
}

// TestPaperTablesByteIdentical pins the harness's paper tables: the
// re-pointing of the pricing path at repro/sim (and any future
// simulator refactor) must not move a single byte of them.
func TestPaperTablesByteIdentical(t *testing.T) {
	got := renderPaperTables(t)
	path := filepath.Join("testdata", "paper_tables.golden")
	if *updateTables {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("paper tables drifted from %s (%d vs %d bytes); if the change is intended, regenerate with -update-golden",
			path, len(got), len(want))
	}
}
