package harness

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
	"repro/sim"
)

// EpochTimeTable regenerates one panel of Figures 6–9: time per epoch
// (hours) for one network across the precision ladder at a fixed GPU
// count, split into computation (including quantisation kernels) and
// communication exactly as the paper's stacked bars are.
func EpochTimeTable(net workload.Network, m workload.Machine,
	prim sim.Primitive, gpus int) (*report.Table, error) {
	labels := PrecisionLabels
	if prim == sim.NCCL {
		labels = NCCLPrecisionLabels
	}
	t := report.New(
		fmt.Sprintf("%s - %s, %d GPUs (%s): time per epoch", net.Name, prim, gpus, m.Name),
		"precision", "epoch_hours", "compute_hours", "comm_hours", "samples/sec")
	for _, label := range labels {
		r, err := simRun(net, m, prim, label, gpus)
		if err != nil {
			return nil, err
		}
		iters := r.EpochSec / r.IterSec
		t.Addf("%s\t%.3f\t%.3f\t%.3f\t%.1f",
			label, r.EpochHours(),
			(r.ComputeSec+r.QuantSec)*iters/3600,
			r.CommSec*iters/3600,
			r.SamplesPerSec)
	}
	return t, nil
}

// EpochTimeFigure regenerates a whole figure (all panels) for the given
// machine/primitive/GPU count: Figure 6 is (EC2, MPI, 8), Figure 7
// (EC2, NCCL, 8), Figures 8–9 the DGX-1 versions.
func EpochTimeFigure(m workload.Machine, prim sim.Primitive, gpus int) ([]*report.Table, error) {
	nets := []workload.Network{
		workload.AlexNet, workload.VGG19, workload.ResNet152,
		workload.ResNet50, workload.BNInception,
	}
	var out []*report.Table
	for _, net := range nets {
		t, err := EpochTimeTable(net, m, prim, gpus)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ThroughputTable regenerates one network's block of Figure 10 (MPI) or
// Figure 11 (NCCL): samples/second across GPU counts and precisions,
// with the paper's measured value and the simulated/paper ratio beside
// every reported cell.
func ThroughputTable(net workload.Network, m workload.Machine,
	prim sim.Primitive) (*report.Table, error) {
	paperTable := workload.PaperFig10MPI
	labels := PrecisionLabels
	if prim == sim.NCCL {
		paperTable = workload.PaperFig11NCCL
		labels = NCCLPrecisionLabels
	}
	t := report.New(
		fmt.Sprintf("%s - samples/second (%s, %s)", net.Name, prim, m.Name),
		"precision", "gpus", "simulated", "paper", "ratio")
	for _, label := range labels {
		for _, gpus := range workload.GPUCounts {
			if gpus == 1 && label != "32bit" {
				continue // "/" cells in the paper
			}
			if prim == sim.NCCL && !m.SupportsNCCL(gpus) {
				continue
			}
			if _, ok := net.BatchFor(gpus); !ok {
				continue
			}
			r, err := simRun(net, m, prim, label, gpus)
			if err != nil {
				return nil, err
			}
			paper, ok := workload.PaperThroughput(paperTable, net.Name, paperLabel(label), gpus)
			if ok {
				t.Addf("%s\t%d\t%.1f\t%.1f\t%.2f", label, gpus, r.SamplesPerSec, paper, r.SamplesPerSec/paper)
			} else {
				t.Addf("%s\t%d\t%.1f\t-\t-", label, gpus, r.SamplesPerSec)
			}
		}
	}
	return t, nil
}

// paperLabel converts a harness label to the embedded tables' key.
func paperLabel(label string) string { return label }

// ThroughputFigure regenerates Figure 10 or 11 in full.
func ThroughputFigure(m workload.Machine, prim sim.Primitive) ([]*report.Table, error) {
	var out []*report.Table
	for _, net := range workload.PerformanceNetworks() {
		if prim == sim.NCCL && net.Name == "ResNet110" {
			continue // Figure 11 omits the CIFAR model
		}
		t, err := ThroughputTable(net, m, prim)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ScalabilityTable regenerates one panel of Figures 12–15: throughput
// relative to the 1-GPU full-precision run, per precision and GPU
// count.
func ScalabilityTable(net workload.Network, m workload.Machine,
	prim sim.Primitive) (*report.Table, error) {
	labels := PrecisionLabels
	if prim == sim.NCCL {
		labels = NCCLPrecisionLabels
	}
	base, err := simRun(net, m, sim.MPI, "32bit", 1)
	if err != nil {
		return nil, err
	}
	t := report.New(
		fmt.Sprintf("%s - scalability (%s, %s)", net.Name, prim, m.Name),
		append([]string{"precision"}, gpuHeaders(m, prim)...)...)
	for _, label := range labels {
		row := []string{label}
		for _, gpus := range workload.GPUCounts {
			if gpus > m.MaxGPUs || (prim == sim.NCCL && !m.SupportsNCCL(gpus)) {
				continue
			}
			if _, ok := net.BatchFor(gpus); !ok {
				row = append(row, "-")
				continue
			}
			r, err := simRun(net, m, prim, label, gpus)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", r.SamplesPerSec/base.SamplesPerSec))
		}
		t.Add(row...)
	}
	return t, nil
}

func gpuHeaders(m workload.Machine, prim sim.Primitive) []string {
	var hs []string
	for _, gpus := range workload.GPUCounts {
		if gpus > m.MaxGPUs || (prim == sim.NCCL && !m.SupportsNCCL(gpus)) {
			continue
		}
		hs = append(hs, fmt.Sprintf("%dGPU", gpus))
	}
	return hs
}

// ScalabilityFigure regenerates Figure 12, 13, 14 or 15 (selected by
// machine and primitive).
func ScalabilityFigure(m workload.Machine, prim sim.Primitive) ([]*report.Table, error) {
	var out []*report.Table
	for _, net := range workload.PerformanceNetworks() {
		if net.Name == "ResNet110" {
			continue // the scalability figures show the ImageNet five
		}
		t, err := ScalabilityTable(net, m, prim)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
