package harness

import (
	"fmt"
	"math"

	"repro/internal/report"
	"repro/internal/workload"
	"repro/quant"
	"repro/sim"
)

// CostAccuracyRow is one point of Figure 16 (left): a network, the
// cheapest EC2 configuration that trains it to its published accuracy,
// and the resulting dollar cost.
type CostAccuracyRow struct {
	Network       string
	Top1          float64
	Instance      string
	GPUs          int
	Precision     string
	TrainHours    float64
	CostDollars   float64
	SamplesPerSec float64
}

// CheapestTraining searches EC2 configurations (instance × GPU count ×
// precision, NCCL when available as the paper recommends) for the one
// minimising the dollar cost of the network's published recipe.
func CheapestTraining(net workload.Network) (CostAccuracyRow, error) {
	best := CostAccuracyRow{CostDollars: math.Inf(1)}
	for _, inst := range workload.EC2Instances {
		for _, gpus := range []int{1, 2, 4, 8, 16} {
			if gpus > inst.GPUs {
				continue
			}
			if _, ok := net.BatchFor(gpus); !ok {
				continue
			}
			for _, label := range []string{"32bit", "qsgd8"} {
				prim := sim.NCCL
				if !workload.EC2P2.SupportsNCCL(gpus) {
					prim = sim.MPI
				}
				r, err := simRun(net, workload.EC2P2, prim, label, gpus)
				if err != nil {
					return CostAccuracyRow{}, err
				}
				hours := r.EpochSec * float64(net.Epochs) / 3600
				cost := hours * inst.PricePerHour
				if cost < best.CostDollars {
					best = CostAccuracyRow{
						Network:       net.Name,
						Top1:          net.PublishedTop1,
						Instance:      inst.Name,
						GPUs:          gpus,
						Precision:     label,
						TrainHours:    hours,
						CostDollars:   cost,
						SamplesPerSec: r.SamplesPerSec,
					}
				}
			}
		}
	}
	if math.IsInf(best.CostDollars, 1) {
		return best, fmt.Errorf("harness: no feasible configuration for %s", net.Name)
	}
	return best, nil
}

// CostAccuracyTable regenerates Figure 16 (left): price and accuracy of
// training each ImageNet network to its published recipe on the
// cheapest EC2 configuration.
func CostAccuracyTable() (*report.Table, error) {
	t := report.New("Figure 16 (left): accuracy vs training cost on EC2",
		"network", "top1_%", "instance", "gpus", "precision", "hours", "cost_$")
	for _, net := range []workload.Network{workload.AlexNet, workload.ResNet50, workload.ResNet152} {
		row, err := CheapestTraining(net)
		if err != nil {
			return nil, err
		}
		t.Addf("%s\t%.1f\t%s\t%d\t%s\t%.0f\t%.0f",
			row.Network, row.Top1, row.Instance, row.GPUs, row.Precision,
			row.TrainHours, row.CostDollars)
	}
	t.Note("paper: diminishing returns — the second accuracy jump costs far more than the first")
	return t, nil
}

// SpeedupSweepRow is one point of Figure 16 (right).
type SpeedupSweepRow struct {
	ExtraParams int64
	MBPerGFLOP  float64
	Speedup     float64
}

// SpeedupSweep regenerates Figure 16 (right): the speedup of 8-bit over
// 32-bit NCCL at 8 GPUs as AlexNet's model size is artificially grown
// with dummy parameters.
func SpeedupSweep() ([]SpeedupSweepRow, error) {
	extras := []int64{0, 62e6, 250e6, 1e9, 4e9, 16e9, 64e9}
	var out []SpeedupSweepRow
	for _, extra := range extras {
		net := sim.WithDummyParams(workload.AlexNet, extra)
		fp, err := sim.Run(sim.Config{Network: net, Machine: workload.EC2P2,
			Primitive: sim.NCCL, GPUs: 8})
		if err != nil {
			return nil, err
		}
		q8, err := sim.Run(sim.Config{Network: net, Machine: workload.EC2P2,
			Primitive: sim.NCCL, Codec: quant.NewQSGD(8, 512, quant.MaxNorm), GPUs: 8})
		if err != nil {
			return nil, err
		}
		out = append(out, SpeedupSweepRow{
			ExtraParams: extra,
			MBPerGFLOP:  net.MBPerGFLOP(),
			Speedup:     q8.SamplesPerSec / fp.SamplesPerSec,
		})
	}
	return out, nil
}

// SpeedupSweepTable renders SpeedupSweep as a table.
func SpeedupSweepTable() (*report.Table, error) {
	rows, err := SpeedupSweep()
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 16 (right): 8-bit vs 32-bit speedup as model size grows (NCCL, 8 GPUs)",
		"extra_params", "MB_per_GFLOP", "speedup")
	for _, r := range rows {
		t.Addf("%d\t%.1f\t%.2f", r.ExtraParams, r.MBPerGFLOP, r.Speedup)
	}
	t.Note("upper bound is the 4x bandwidth ratio; the curve saturates near 2x because quantisation kernels scale with the model too")
	return t, nil
}
