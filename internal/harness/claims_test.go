package harness

import "testing"

// TestAllClaimsHold: every §5 headline claim must be reproduced — this
// is the single test that summarises the whole performance study.
func TestAllClaimsHold(t *testing.T) {
	claims, err := Claims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 8 {
		t.Fatalf("only %d claims evaluated", len(claims))
	}
	for _, c := range claims {
		if !c.Holds {
			t.Errorf("claim %q does not hold (ours %.2f, paper %.2f)", c.Name, c.Ours, c.Paper)
		}
	}
}

// TestClaimsCloseToPaper: where the paper's tables imply a number, the
// reproduced ratio must land within 2× of it.
func TestClaimsCloseToPaper(t *testing.T) {
	claims, err := Claims()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range claims {
		if c.Paper <= 0 {
			continue
		}
		ratio := c.Ours / c.Paper
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("claim %q: ours %.2f vs paper %.2f (off by %.2fx)",
				c.Name, c.Ours, c.Paper, ratio)
		}
	}
}

func TestClaimsTableRenders(t *testing.T) {
	tb, err := ClaimsTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 8 {
		t.Fatalf("claims table has %d rows", len(tb.Rows))
	}
}

func TestConvergenceTable(t *testing.T) {
	s := imageStudy(t)
	tb := s.ConvergenceTable(0.9)
	if len(tb.Rows) != len(Fig5Codecs()) {
		t.Fatalf("convergence table has %d rows", len(tb.Rows))
	}
	// Full precision must reach 90% on this task within the quick run.
	for _, row := range tb.Rows {
		if row[0] == "32bit" && row[1] == "-" {
			t.Fatal("fp32 never reached 90% — task drifted")
		}
	}
}
