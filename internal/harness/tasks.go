package harness

import (
	"fmt"

	"repro/data"
	"repro/nn"
	"repro/rng"
)

// Task constructs one of the named synthetic training tasks — the
// model builder plus matching train/test sets — with the tuned
// dataset parameters the accuracy studies use. Both cmd/lpsgd-train
// and cmd/lpsgd-worker build their workloads through this one helper:
// cluster replicas are only bit-identical if every rank constructs
// exactly the same dataset and model, so the construction literals
// must not fork between binaries.
func Task(name string, trainN, testN int, seed uint64) (func(r *rng.RNG) *nn.Network, *data.Dataset, *data.Dataset, error) {
	switch name {
	case "image":
		train, test := data.MakeImages(data.ImageConfig{
			Classes: 10, Channels: 3, H: 12, W: 12,
			TrainN: trainN, TestN: testN, Noise: 2.0, Shift: true, Seed: seed,
		})
		return ImageModel(10), train, test, nil
	case "sequence":
		train, test := data.MakeSequences(data.SequenceConfig{
			Classes: 6, Frames: 12, Features: 8,
			TrainN: trainN, TestN: testN, Noise: 1.0, Seed: seed,
		})
		return SequenceModel(12, 8, 6), train, test, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown task %q (want image or sequence)", name)
}
