package harness

import (
	"fmt"

	"repro/data"
	"repro/internal/report"
	"repro/nn"
	"repro/parallel"
	"repro/quant"
	"repro/rng"
	"repro/tensor"
)

// AccuracyOptions scales the Figure 5 reproduction. The paper trains
// ImageNet-class models for days; this reproduction trains scaled-down
// models on synthetic tasks whose gradient signal-to-noise ratio is low
// enough that quantisation variance shows up the same way (see
// the reproduction's substitution choices). Scale 1 is the quick configuration
// used by tests and benchmarks; larger scales sharpen the curves.
type AccuracyOptions struct {
	// Workers is the simulated GPU count (the paper's accuracy runs use
	// multi-GPU MPI).
	Workers int
	// Epochs per run.
	Epochs int
	// TrainN / TestN are the synthetic dataset sizes.
	TrainN, TestN int
	// BatchSize is the global minibatch.
	BatchSize int
	// Seed fixes everything.
	Seed uint64
	// Codecs are the precision variants to compare; nil selects the
	// Figure 5 ladder.
	Codecs []LabelledCodec
}

// LabelledCodec pairs a codec with its Figure 5 legend label.
type LabelledCodec struct {
	Label string
	Codec quant.Codec
}

// Fig5Codecs is the legend of Figure 5(a)/(d): full precision, classic
// and reshaped 1bitSGD, and QSGD at 2/4/8 bits with the paper's tuned
// buckets.
func Fig5Codecs() []LabelledCodec {
	return []LabelledCodec{
		{"32bit", quant.FP32{}},
		{"1bitSGD", quant.OneBit{}},
		{"1bitSGD* (d=64)", quant.NewOneBitReshaped(64)},
		{"1bitSGD* (d=512)", quant.NewOneBitReshaped(512)},
		{"QSGD 2bit", quant.NewQSGD(2, 128, quant.MaxNorm)},
		{"QSGD 4bit", quant.NewQSGD(4, 512, quant.MaxNorm)},
		{"QSGD 8bit", quant.NewQSGD(8, 512, quant.MaxNorm)},
	}
}

// ExtensionCodecs is the ladder of variants beyond the paper's main
// figures: alternative QSGD normalisation and level schemes (§3.2.2)
// and the sparse top-k scheme of the related-work discussion. Running
// the accuracy study over these answers the questions the paper raises
// but leaves open.
func ExtensionCodecs() []LabelledCodec {
	return []LabelledCodec{
		{"32bit", quant.FP32{}},
		{"QSGD 4bit l2", quant.NewQSGD(4, 512, quant.TwoNorm)},
		{"QSGD 4bit uniform", quant.NewQSGDScheme(4, 512, quant.MaxNorm, quant.Uniform)},
		{"QSGD 4bit exp", quant.NewQSGDScheme(4, 512, quant.MaxNorm, quant.Exponential)},
		{"TopK 10%", quant.NewTopK(0.10)},
		{"TopK 1%", quant.NewTopK(0.01)},
	}
}

// defaults fills unset options with the quick configuration.
func (o *AccuracyOptions) defaults() {
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.TrainN == 0 {
		o.TrainN = 768
	}
	if o.TestN == 0 {
		o.TestN = 384
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.Seed == 0 {
		o.Seed = 17
	}
	if o.Codecs == nil {
		o.Codecs = Fig5Codecs()
	}
}

// AccuracyResult is one Figure 5 curve.
type AccuracyResult struct {
	Label   string
	History *parallel.History
}

// AccuracyStudy is a full Figure 5 panel.
type AccuracyStudy struct {
	Task    string
	Results []AccuracyResult
}

// Find returns the curve with the given label, or nil.
func (s *AccuracyStudy) Find(label string) *AccuracyResult {
	for i := range s.Results {
		if s.Results[i].Label == label {
			return &s.Results[i]
		}
	}
	return nil
}

// Table renders the study: final and best accuracy plus wire volume per
// codec.
func (s *AccuracyStudy) Table() *report.Table {
	t := report.New(fmt.Sprintf("Figure 5 (%s): accuracy under low-precision gradients", s.Task),
		"codec", "final_acc_%", "best_acc_%", "wire_MB")
	for _, r := range s.Results {
		t.Addf("%s\t%.1f\t%.1f\t%.1f", r.Label,
			100*r.History.FinalAccuracy, 100*r.History.BestAccuracy,
			float64(r.History.TotalWireBytes)/1e6)
	}
	return t
}

// ConvergenceTable renders the paper's convergence-rate view: how many
// epochs each codec needs to reach the given absolute test accuracy
// ("-" when never reached within the run).
func (s *AccuracyStudy) ConvergenceTable(target float64) *report.Table {
	t := report.New(
		fmt.Sprintf("Figure 5 (%s): epochs to reach %.0f%% test accuracy", s.Task, 100*target),
		"codec", "epochs_to_target")
	for _, r := range s.Results {
		e := r.History.EpochsToReach(target)
		if e < 0 {
			t.Add(r.Label, "-")
		} else {
			t.Addf("%s\t%d", r.Label, e)
		}
	}
	return t
}

// CurvesTable renders accuracy-per-epoch curves (one row per epoch, one
// column per codec) — the raw series behind the Figure 5 plots.
func (s *AccuracyStudy) CurvesTable() *report.Table {
	header := []string{"epoch"}
	for _, r := range s.Results {
		header = append(header, r.Label)
	}
	t := report.New(fmt.Sprintf("Figure 5 (%s): test accuracy per epoch", s.Task), header...)
	if len(s.Results) == 0 {
		return t
	}
	epochs := len(s.Results[0].History.Epochs)
	for e := 0; e < epochs; e++ {
		row := []string{fmt.Sprintf("%d", e)}
		for _, r := range s.Results {
			acc := r.History.Epochs[e].TestAccuracy
			if acc < 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f", 100*acc))
			}
		}
		t.Add(row...)
	}
	return t
}

// LossTimeTable renders training loss against cumulative wall-clock
// time for each codec — the view of Figure 5(e), where the x-axis is
// seconds rather than epochs, so faster codecs shift their curves left.
func (s *AccuracyStudy) LossTimeTable() *report.Table {
	header := []string{"epoch"}
	for _, r := range s.Results {
		header = append(header, r.Label+"_t(s)", r.Label+"_loss")
	}
	t := report.New(fmt.Sprintf("Figure 5e view (%s): training loss vs time", s.Task), header...)
	if len(s.Results) == 0 {
		return t
	}
	epochs := len(s.Results[0].History.Epochs)
	elapsed := make([]float64, len(s.Results))
	for e := 0; e < epochs; e++ {
		row := []string{fmt.Sprintf("%d", e)}
		for ri, r := range s.Results {
			elapsed[ri] += r.History.Epochs[e].Elapsed.Seconds()
			row = append(row,
				fmt.Sprintf("%.2f", elapsed[ri]),
				fmt.Sprintf("%.4f", r.History.Epochs[e].TrainLoss))
		}
		t.Add(row...)
	}
	return t
}

// ImageModel is the scaled-down convolutional classifier used by the
// image-task accuracy runs (standing in for the paper's ImageNet/CIFAR
// models): conv-BN-ReLU-pool ×2 plus a dense head. Inputs are 3×12×12
// images flattened one per row.
func ImageModel(classes int) func(r *rng.RNG) *nn.Network {
	return func(r *rng.RNG) *nn.Network {
		c1 := nn.NewConv2D("conv1", tensor.ConvShape{
			InC: 3, InH: 12, InW: 12, OutC: 8, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)
		p1 := nn.NewMaxPool2D("pool1", 8, 12, 12, 2, 2, 2, 2)
		c2 := nn.NewConv2D("conv2", tensor.ConvShape{
			InC: 8, InH: 6, InW: 6, OutC: 16, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)
		p2 := nn.NewMaxPool2D("pool2", 16, 6, 6, 2, 2, 2, 2)
		return nn.MustNetwork(
			c1,
			nn.NewBatchNorm("bn1", 8, 12*12),
			nn.NewReLU("relu1"),
			p1,
			c2,
			nn.NewBatchNorm("bn2", 16, 6*6),
			nn.NewReLU("relu2"),
			p2,
			nn.NewDense("fc1", 16*3*3, 64, r),
			nn.NewReLU("relu3"),
			nn.NewDense("fc2", 64, classes, r),
		)
	}
}

// InceptionModel is a miniature BN-Inception stand-in built from two
// Concat modules with 1×1, 3×3 and avg-pool towers — the
// computation-dominated, parameter-light architecture of the study.
// Inputs are 3×12×12 images flattened one per row.
func InceptionModel(classes int) func(r *rng.RNG) *nn.Network {
	return func(r *rng.RNG) *nn.Network {
		// Stem: 3×3 conv to 8 channels.
		stem := nn.NewConv2D("stem", tensor.ConvShape{
			InC: 3, InH: 12, InW: 12, OutC: 8, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)
		// Module 1 on 8×12×12: towers yield 4 + 6 + 8 = 18 channels
		// (pool tower halves the spatial size, so it pools with stride 1
		// via padding-free 2×2 average over same-size output — instead
		// keep spatial size with 1×1 conv after 2x2/1 avg is awkward;
		// use stride-1 3×3-padded towers so shapes align).
		t1 := []nn.Layer{nn.NewConv2D("m1.t1", tensor.ConvShape{
			InC: 8, InH: 12, InW: 12, OutC: 4, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1}, r)}
		t3 := []nn.Layer{nn.NewConv2D("m1.t3", tensor.ConvShape{
			InC: 8, InH: 12, InW: 12, OutC: 6, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)}
		module1 := nn.NewConcat("m1", t1, t3)
		c1 := 4 + 6
		pool1 := nn.NewMaxPool2D("pool1", c1, 12, 12, 2, 2, 2, 2)
		// Module 2 on c1×6×6.
		u1 := []nn.Layer{nn.NewConv2D("m2.t1", tensor.ConvShape{
			InC: c1, InH: 6, InW: 6, OutC: 8, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1}, r)}
		u3 := []nn.Layer{nn.NewConv2D("m2.t3", tensor.ConvShape{
			InC: c1, InH: 6, InW: 6, OutC: 8, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, r)}
		module2 := nn.NewConcat("m2", u1, u3)
		c2 := 8 + 8
		return nn.MustNetwork(
			stem,
			nn.NewBatchNorm("stem.bn", 8, 12*12),
			nn.NewReLU("stem.relu"),
			module1,
			nn.NewBatchNorm("m1.bn", c1, 12*12),
			nn.NewReLU("m1.relu"),
			pool1,
			module2,
			nn.NewBatchNorm("m2.bn", c2, 6*6),
			nn.NewReLU("m2.relu"),
			nn.NewGlobalAvgPool("gap", c2, 6, 6),
			nn.NewDense("fc", c2, classes, r),
		)
	}
}

// SequenceModel is the scaled-down AN4 stand-in: one LSTM plus a
// dense classifier.
func SequenceModel(frames, features, classes int) func(r *rng.RNG) *nn.Network {
	return func(r *rng.RNG) *nn.Network {
		return nn.MustNetwork(
			nn.NewLSTM("lstm1", frames, features, 32, r),
			nn.NewDense("fc", 32, classes, r),
		)
	}
}

// RunImageAccuracy reproduces Figure 5(a)–(d): the image-classification
// accuracy study across the precision ladder.
func RunImageAccuracy(opts AccuracyOptions) (*AccuracyStudy, error) {
	opts.defaults()
	const classes = 10
	train, test := data.MakeImages(data.ImageConfig{
		Classes: classes, Channels: 3, H: 12, W: 12,
		TrainN: opts.TrainN, TestN: opts.TestN,
		Noise: 2.0, Shift: true, Seed: opts.Seed,
	})
	return runStudy("image", ImageModel(classes), train, test, opts, 0.05)
}

// RunSequenceAccuracy reproduces Figure 5(e): the speech-like LSTM
// study, where even aggressive quantisation preserves accuracy.
func RunSequenceAccuracy(opts AccuracyOptions) (*AccuracyStudy, error) {
	opts.defaults()
	const frames, features, classes = 12, 8, 6
	train, test := data.MakeSequences(data.SequenceConfig{
		Classes: classes, Frames: frames, Features: features,
		TrainN: opts.TrainN, TestN: opts.TestN,
		Noise: 1.0, Seed: opts.Seed,
	})
	return runStudy("sequence", SequenceModel(frames, features, classes), train, test, opts, 0.05)
}

func runStudy(task string, build func(r *rng.RNG) *nn.Network,
	train, test *data.Dataset, opts AccuracyOptions, lr float32) (*AccuracyStudy, error) {
	study := &AccuracyStudy{Task: task}
	for _, lc := range opts.Codecs {
		tr, err := parallel.NewTrainer(build, parallel.Config{
			Workers:   opts.Workers,
			Policy:    &quant.Policy{Base: lc.Codec},
			Primitive: parallel.MPI,
			BatchSize: opts.BatchSize,
			Epochs:    opts.Epochs,
			Schedule:  nn.ConstantLR(lr),
			Momentum:  0.9,
			Seed:      opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", task, lc.Label, err)
		}
		h, err := tr.Run(train, test)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s: %w", task, lc.Label, err)
		}
		study.Results = append(study.Results, AccuracyResult{Label: lc.Label, History: h})
	}
	return study, nil
}
