package harness

import (
	"testing"

	"repro/data"
	"repro/nn"
	"repro/parallel"
	"repro/quant"
)

// imageStudy runs the quick Figure 5 image panel once and caches it for
// the assertions below (the run is deterministic).
var imageStudyCache *AccuracyStudy

func imageStudy(t *testing.T) *AccuracyStudy {
	t.Helper()
	if imageStudyCache == nil {
		s, err := RunImageAccuracy(AccuracyOptions{Epochs: 12})
		if err != nil {
			t.Fatal(err)
		}
		imageStudyCache = s
	}
	return imageStudyCache
}

func best(t *testing.T, s *AccuracyStudy, label string) float64 {
	t.Helper()
	r := s.Find(label)
	if r == nil {
		t.Fatalf("missing curve %q", label)
	}
	return r.History.BestAccuracy
}

// TestFig5QuantisedMatchesFullPrecision reproduces the paper's central
// accuracy finding: 1bitSGD and QSGD 4/8-bit reach the same accuracy as
// full precision (within a small margin).
func TestFig5QuantisedMatchesFullPrecision(t *testing.T) {
	s := imageStudy(t)
	fp := best(t, s, "32bit")
	for _, label := range []string{"1bitSGD", "QSGD 4bit", "QSGD 8bit"} {
		if acc := best(t, s, label); acc < fp-0.01 {
			t.Errorf("%s best accuracy %.3f more than 1pt below fp32 %.3f", label, acc, fp)
		}
	}
}

// TestFig5TwoBitDegrades reproduces "quantizing too aggressively can
// lead to significant accuracy loss": 2-bit QSGD loses at least one
// accuracy point on the image task.
func TestFig5TwoBitDegrades(t *testing.T) {
	s := imageStudy(t)
	fp := best(t, s, "32bit")
	q2 := best(t, s, "QSGD 2bit")
	if q2 > fp-0.01 {
		t.Errorf("2-bit QSGD best %.3f not ≥1pt below fp32 %.3f", q2, fp)
	}
}

// TestFig5BucketSizeMatters reproduces the bucket-size sensitivity of
// reshaped 1bitSGD: bucket 512 is visibly worse than bucket 64.
func TestFig5BucketSizeMatters(t *testing.T) {
	s := imageStudy(t)
	d64 := best(t, s, "1bitSGD* (d=64)")
	d512 := best(t, s, "1bitSGD* (d=512)")
	if d512 > d64-0.01 {
		t.Errorf("bucket 512 best %.3f not ≥1pt below bucket 64 %.3f", d512, d64)
	}
}

// TestFig5WireVolumeOrdering: the wire bytes of the runs must follow
// the codec compression ratios.
func TestFig5WireVolumeOrdering(t *testing.T) {
	s := imageStudy(t)
	order := []string{"1bitSGD* (d=64)", "QSGD 2bit", "QSGD 4bit", "QSGD 8bit", "32bit"}
	var prev int64 = -1
	for _, label := range order {
		r := s.Find(label)
		if r == nil {
			t.Fatalf("missing %q", label)
		}
		if r.History.TotalWireBytes <= prev {
			t.Fatalf("wire bytes not increasing at %q", label)
		}
		prev = r.History.TotalWireBytes
	}
}

// TestFig5SequenceLSTMRobust reproduces Figure 5(e): the LSTM task
// tolerates even the most aggressive quantisation (paper: LSTMs "appear
// to be able to handle quantization to very low precision").
func TestFig5SequenceLSTMRobust(t *testing.T) {
	s, err := RunSequenceAccuracy(AccuracyOptions{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	fp := best(t, s, "32bit")
	if fp < 0.85 {
		t.Fatalf("LSTM baseline too weak: %.3f", fp)
	}
	for _, r := range s.Results {
		if r.History.BestAccuracy < fp-0.02 {
			t.Errorf("%s best %.3f more than 2pt below fp32 %.3f on the LSTM task",
				r.Label, r.History.BestAccuracy, fp)
		}
	}
}

func TestFig5Tables(t *testing.T) {
	s := imageStudy(t)
	tb := s.Table()
	if len(tb.Rows) != len(Fig5Codecs()) {
		t.Fatalf("summary table has %d rows", len(tb.Rows))
	}
	curves := s.CurvesTable()
	if len(curves.Rows) != 12 {
		t.Fatalf("curves table has %d epochs, want 12", len(curves.Rows))
	}
	if len(curves.Header) != len(Fig5Codecs())+1 {
		t.Fatalf("curves header has %d columns", len(curves.Header))
	}
}

func TestAccuracyOptionsCustomCodecs(t *testing.T) {
	s, err := RunImageAccuracy(AccuracyOptions{
		Epochs: 2, TrainN: 128, TestN: 64, BatchSize: 32,
		Codecs: []LabelledCodec{{"32bit", nil}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 || s.Results[0].Label != "32bit" {
		t.Fatal("custom codec list not honoured")
	}
}

// TestInceptionModelTrainsQuantised: the Concat-based mini-Inception
// learns the image task under 4-bit gradients (the paper's
// computation-dominated architecture in miniature).
func TestInceptionModelTrainsQuantised(t *testing.T) {
	train, test := data.MakeImages(data.ImageConfig{
		Classes: 4, Channels: 3, H: 12, W: 12,
		TrainN: 256, TestN: 128, Noise: 1.0, Shift: true, Seed: 23,
	})
	tr, err := parallel.NewTrainer(InceptionModel(4), parallel.Config{
		Workers: 2, Policy: &quant.Policy{Base: quant.NewQSGD(4, 512, quant.MaxNorm)},
		BatchSize: 32, Epochs: 8, Schedule: nn.ConstantLR(0.05),
		Momentum: 0.9, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Run(train, test)
	if err != nil {
		t.Fatal(err)
	}
	if h.BestAccuracy < 0.8 {
		t.Fatalf("mini-Inception accuracy %v", h.BestAccuracy)
	}
	if !tr.ReplicasInSync() {
		t.Fatal("replicas diverged")
	}
}

// TestExtensionCodecsTrain: the variants beyond the paper's main ladder
// — 2-norm / uniform / exponential QSGD and sparse top-k with error
// feedback — all train the image task. Top-k at 1% density is expected
// to lag (the paper's related-work discussion: ImageNet-class tasks
// needed >10% density), so it only has to clear a weak bar.
func TestExtensionCodecsTrain(t *testing.T) {
	s, err := RunImageAccuracy(AccuracyOptions{
		Epochs: 12, Codecs: ExtensionCodecs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := best(t, s, "32bit")
	for _, r := range s.Results {
		bar := fp - 0.03
		if r.Label == "TopK 1%" {
			bar = 0.5
		}
		if r.History.BestAccuracy < bar {
			t.Errorf("%s best %.3f below bar %.3f (fp32 %.3f)",
				r.Label, r.History.BestAccuracy, bar, fp)
		}
	}
	// The index overhead must still leave top-k 10% cheaper on the wire
	// than full precision by ~5x.
	fpWire := s.Find("32bit").History.TotalWireBytes
	tkWire := s.Find("TopK 10%").History.TotalWireBytes
	if ratio := float64(fpWire) / float64(tkWire); ratio < 4 || ratio > 6 {
		t.Errorf("TopK 10%% wire reduction %.1fx, want ≈5x (8B per survivor)", ratio)
	}
}
