package harness

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
	"repro/sim"
)

// Claim is one of the paper's §5 quantitative claims evaluated against
// this reproduction.
type Claim struct {
	Name  string
	Ours  float64
	Paper float64
	// Holds reports whether the reproduced value supports the claim
	// qualitatively.
	Holds bool
}

// paperRatio divides two cells of an embedded table, returning 0 when
// either is missing.
func paperRatio(table []workload.PaperRow, net, precA, precB string, gpus int) float64 {
	a, okA := workload.PaperThroughput(table, net, precA, gpus)
	b, okB := workload.PaperThroughput(table, net, precB, gpus)
	if !okA || !okB || b == 0 {
		return 0
	}
	return a / b
}

// simRatio divides simulated throughputs of two precisions.
func simRatio(net workload.Network, m workload.Machine, prim sim.Primitive,
	precA, precB string, gpus int) (float64, error) {
	a, err := simRun(net, m, prim, precA, gpus)
	if err != nil {
		return 0, err
	}
	b, err := simRun(net, m, prim, precB, gpus)
	if err != nil {
		return 0, err
	}
	return a.SamplesPerSec / b.SamplesPerSec, nil
}

// Claims evaluates the paper's headline §5 findings with the simulator
// and pairs each with the value implied by the paper's own tables.
func Claims() ([]Claim, error) {
	var out []Claim
	add := func(name string, ours, paper float64, holds bool) {
		out = append(out, Claim{Name: name, Ours: ours, Paper: paper, Holds: holds})
	}

	// 1. MPI + 4-bit speeds up AlexNet ~3.5× at 8 GPUs.
	r, err := simRatio(workload.AlexNet, workload.EC2P2, sim.MPI, "qsgd4", "32bit", 8)
	if err != nil {
		return nil, err
	}
	add("AlexNet MPI@8: QSGD-4bit speedup over 32bit",
		r, paperRatio(workload.PaperFig10MPI, "AlexNet", "qsgd4", "32bit", 8), r > 2.5)

	// 2. 32-bit NCCL beats 4-bit MPI on AlexNet at 8 GPUs.
	nccl32, err := simRun(workload.AlexNet, workload.EC2P2, sim.NCCL, "32bit", 8)
	if err != nil {
		return nil, err
	}
	mpi4, err := simRun(workload.AlexNet, workload.EC2P2, sim.MPI, "qsgd4", 8)
	if err != nil {
		return nil, err
	}
	p32, _ := workload.PaperThroughput(workload.PaperFig11NCCL, "AlexNet", "32bit", 8)
	p4, _ := workload.PaperThroughput(workload.PaperFig10MPI, "AlexNet", "qsgd4", 8)
	add("AlexNet@8: NCCL-32bit / MPI-4bit",
		nccl32.SamplesPerSec/mpi4.SamplesPerSec, p32/p4,
		nccl32.SamplesPerSec > mpi4.SamplesPerSec)

	// 3. NCCL quantisation gains are small; VGG19 benefits most.
	r, err = simRatio(workload.VGG19, workload.EC2P2, sim.NCCL, "qsgd4", "32bit", 8)
	if err != nil {
		return nil, err
	}
	add("VGG19 NCCL@8: QSGD-4bit speedup",
		r, paperRatio(workload.PaperFig11NCCL, "VGG19", "qsgd4", "32bit", 8),
		r > 1.02 && r < 1.6)
	r, err = simRatio(workload.ResNet50, workload.EC2P2, sim.NCCL, "qsgd4", "32bit", 8)
	if err != nil {
		return nil, err
	}
	add("ResNet50 NCCL@8: QSGD-4bit speedup (should be ~1)",
		r, paperRatio(workload.PaperFig11NCCL, "ResNet50", "qsgd4", "32bit", 8),
		r < 1.25)

	// 4. Classic 1bitSGD is slower than full precision on ResNets.
	r, err = simRatio(workload.ResNet50, workload.EC2P2, sim.MPI, "1bit", "32bit", 8)
	if err != nil {
		return nil, err
	}
	add("ResNet50 MPI@8: classic-1bit / 32bit (<1 = artefact reproduced)",
		r, paperRatio(workload.PaperFig10MPI, "ResNet50", "1bit", "32bit", 8), r < 1)

	// 5. Reshaping fixes it (up to ~4×).
	r, err = simRatio(workload.ResNet152, workload.EC2P2, sim.MPI, "1bit*", "1bit", 8)
	if err != nil {
		return nil, err
	}
	add("ResNet152 MPI@8: reshaped / classic 1bit",
		r, paperRatio(workload.PaperFig10MPI, "ResNet152", "1bit*", "1bit", 8), r > 2)

	// 6. Diminishing returns below 4 bits.
	r, err = simRatio(workload.AlexNet, workload.EC2P2, sim.MPI, "qsgd2", "qsgd4", 8)
	if err != nil {
		return nil, err
	}
	add("AlexNet MPI@8: 2bit / 4bit (diminishing returns)",
		r, paperRatio(workload.PaperFig10MPI, "AlexNet", "qsgd2", "qsgd4", 8), r < 1.3)

	// 7. 16 GPUs rarely pay off: AlexNet fp32 slows down 8→16.
	r16, err := simRun(workload.AlexNet, workload.EC2P2, sim.MPI, "32bit", 16)
	if err != nil {
		return nil, err
	}
	r8, err := simRun(workload.AlexNet, workload.EC2P2, sim.MPI, "32bit", 8)
	if err != nil {
		return nil, err
	}
	p16, _ := workload.PaperThroughput(workload.PaperFig10MPI, "AlexNet", "32bit", 16)
	p8, _ := workload.PaperThroughput(workload.PaperFig10MPI, "AlexNet", "32bit", 8)
	add("AlexNet MPI: 16GPU / 8GPU throughput (<1 = not worth 2x price)",
		r16.SamplesPerSec/r8.SamplesPerSec, p16/p8, r16.SamplesPerSec < r8.SamplesPerSec)

	// 8. Extrapolation: 8-bit speedup approaches ~2× as MB/GFLOPS grows.
	rows, err := SpeedupSweep()
	if err != nil {
		return nil, err
	}
	last := rows[len(rows)-1].Speedup
	add("Fig16R: asymptotic 8bit NCCL speedup (bounded by 4)", last, 2.0, last > 1.4 && last <= 4)

	return out, nil
}

// ClaimsTable renders Claims as a table.
func ClaimsTable() (*report.Table, error) {
	claims, err := Claims()
	if err != nil {
		return nil, err
	}
	t := report.New("Paper claims vs this reproduction", "claim", "ours", "paper", "holds")
	for _, c := range claims {
		paper := "-"
		if c.Paper > 0 {
			paper = fmt.Sprintf("%.2f", c.Paper)
		}
		t.Addf("%s\t%.2f\t%s\t%v", c.Name, c.Ours, paper, c.Holds)
	}
	return t, nil
}
