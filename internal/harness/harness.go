// Package harness assembles the reproduction's experiments: one runner
// per table and figure of the paper, each emitting a report.Table that
// mirrors the original's rows and, where the paper published numbers,
// a side-by-side comparison.
//
// Figure index
//
//	Fig 5 (a–e)   RunImageAccuracy / RunSequenceAccuracy — real training
//	Fig 6–9       EpochTimeTable — simulated epoch hours per codec
//	Fig 10–11     ThroughputTable — simulated vs paper samples/sec
//	Fig 12–15     ScalabilityTable — speedup vs 1 GPU
//	Fig 16 left   CostAccuracyTable — dollars to published accuracy
//	Fig 16 right  SpeedupSweepTable — speedup vs MB/GFLOPS
package harness

import (
	"fmt"

	"repro/internal/workload"
	"repro/quant"
	"repro/sim"
)

// PrecisionLabels is the paper's precision ladder in presentation order
// (Figures 6–10 column order).
var PrecisionLabels = []string{"32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2", "1bit*", "1bit"}

// NCCLPrecisionLabels is the ladder for NCCL figures (no 1-bit rows:
// NCCL cannot carry them, per the paper).
var NCCLPrecisionLabels = []string{"32bit", "qsgd16", "qsgd8", "qsgd4", "qsgd2"}

// CodecByLabel maps a paper row label to its codec via quant.Parse,
// which fills in the paper's tuned bucket sizes (§4.4) when the label
// omits them ("qsgd4" → bucket 512, "1bit*" → bucket 64).
func CodecByLabel(label string) (quant.Codec, error) {
	c, err := quant.Parse(label)
	if err != nil {
		return nil, fmt.Errorf("harness: unknown precision label %q: %w", label, err)
	}
	return c, nil
}

// mustCodec panics on unknown labels (used with the static ladders).
func mustCodec(label string) quant.Codec {
	c, err := CodecByLabel(label)
	if err != nil {
		panic(err)
	}
	return c
}

// simRun wraps sim.Run for a (net, machine, prim, label, gpus)
// tuple.
func simRun(net workload.Network, m workload.Machine, prim sim.Primitive,
	label string, gpus int) (sim.Result, error) {
	c, err := CodecByLabel(label)
	if err != nil {
		return sim.Result{}, err
	}
	return sim.Run(sim.Config{
		Network: net, Machine: m, Primitive: prim, Codec: c, GPUs: gpus,
	})
}
