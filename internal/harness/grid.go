package harness

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workload"
	"repro/sim"
)

// GridRow is one configuration of the study's full cross-product (the
// paper's §1 axes: machine × primitive × network × precision × GPU
// count).
type GridRow struct {
	Machine   string
	Primitive string
	Network   string
	Precision string
	GPUs      int
	Result    sim.Result
}

// FullGrid prices every feasible configuration of the study's axes —
// the complete trade-off space the paper's 1400 machine-hours explored,
// regenerated in milliseconds by the cost model.
func FullGrid() ([]GridRow, error) {
	var rows []GridRow
	for _, m := range workload.Machines() {
		for _, prim := range []sim.Primitive{sim.MPI, sim.NCCL} {
			labels := PrecisionLabels
			if prim == sim.NCCL {
				labels = NCCLPrecisionLabels
			}
			for _, net := range workload.Networks() {
				for _, label := range labels {
					for _, gpus := range workload.GPUCounts {
						if gpus > m.MaxGPUs {
							continue
						}
						if prim == sim.NCCL && !m.SupportsNCCL(gpus) {
							continue
						}
						if _, ok := net.BatchFor(gpus); !ok {
							continue
						}
						if gpus == 1 && label != "32bit" {
							continue // single GPU never quantises
						}
						r, err := simRun(net, m, prim, label, gpus)
						if err != nil {
							return nil, fmt.Errorf("harness: grid %s/%s/%s/%s/%d: %w",
								m.Name, prim, net.Name, label, gpus, err)
						}
						rows = append(rows, GridRow{
							Machine:   m.Name,
							Primitive: prim.String(),
							Network:   net.Name,
							Precision: label,
							GPUs:      gpus,
							Result:    r,
						})
					}
				}
			}
		}
	}
	return rows, nil
}

// GridTable renders the full grid as one flat table (CSV-friendly: the
// dataset behind every figure at once).
func GridTable() (*report.Table, error) {
	rows, err := FullGrid()
	if err != nil {
		return nil, err
	}
	t := report.New("Full study grid: every (machine, primitive, network, precision, GPUs) configuration",
		"machine", "primitive", "network", "precision", "gpus",
		"samples_per_sec", "iter_ms", "compute_ms", "quant_ms", "comm_ms",
		"epoch_hours", "wire_MB")
	for _, r := range rows {
		t.Addf("%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.3f\t%.1f",
			r.Machine, r.Primitive, r.Network, r.Precision, r.GPUs,
			r.Result.SamplesPerSec, 1e3*r.Result.IterSec,
			1e3*r.Result.ComputeSec, 1e3*r.Result.QuantSec, 1e3*r.Result.CommSec,
			r.Result.EpochHours(), float64(r.Result.WireBytes)/1e6)
	}
	t.Note("%d configurations", len(rows))
	return t, nil
}

// BestConfiguration returns the grid row with the highest throughput
// for a network on a machine — "what should I run?" answered by the
// model.
func BestConfiguration(network, machine string) (GridRow, error) {
	rows, err := FullGrid()
	if err != nil {
		return GridRow{}, err
	}
	var best GridRow
	found := false
	for _, r := range rows {
		if r.Network != network || r.Machine != machine {
			continue
		}
		if !found || r.Result.SamplesPerSec > best.Result.SamplesPerSec {
			best = r
			found = true
		}
	}
	if !found {
		return GridRow{}, fmt.Errorf("harness: no grid rows for %s on %s", network, machine)
	}
	return best, nil
}
