package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
	"repro/sim"
)

func TestCodecByLabel(t *testing.T) {
	for _, label := range PrecisionLabels {
		c, err := CodecByLabel(label)
		if err != nil || c == nil {
			t.Errorf("label %q: %v", label, err)
		}
	}
	if _, err := CodecByLabel("qsgd3"); err == nil {
		t.Error("expected error for unknown label")
	}
}

func TestEpochTimeFigurePanels(t *testing.T) {
	tables, err := EpochTimeFigure(workload.EC2P2, sim.MPI, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("Figure 6 has %d panels, want 5", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != len(PrecisionLabels) {
			t.Errorf("%s: %d rows, want %d", tb.Title, len(tb.Rows), len(PrecisionLabels))
		}
	}
}

func TestEpochTimeNCCLExcludesOneBit(t *testing.T) {
	tables, err := EpochTimeFigure(workload.EC2P2, sim.NCCL, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if strings.HasPrefix(row[0], "1bit") {
				t.Errorf("%s: NCCL figure contains 1-bit row", tb.Title)
			}
		}
	}
}

// TestFig6ShapeVGGBenefitsMost: in the MPI epoch-time figure the
// communication-dominated networks must show the largest quantisation
// gains (paper §5.2).
func TestFig6ShapeVGGBenefitsMost(t *testing.T) {
	gain := func(net workload.Network) float64 {
		fp, err := simRun(net, workload.EC2P2, sim.MPI, "32bit", 8)
		if err != nil {
			t.Fatal(err)
		}
		q4, err := simRun(net, workload.EC2P2, sim.MPI, "qsgd4", 8)
		if err != nil {
			t.Fatal(err)
		}
		return fp.EpochSec / q4.EpochSec
	}
	if gain(workload.VGG19) <= gain(workload.BNInception) {
		t.Error("VGG19 must gain more from quantisation than BN-Inception")
	}
	if gain(workload.AlexNet) <= gain(workload.ResNet50) {
		t.Error("AlexNet must gain more from quantisation than ResNet50")
	}
}

func TestThroughputFigureIncludesPaperComparison(t *testing.T) {
	tables, err := ThroughputFigure(workload.EC2P2, sim.MPI)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("Figure 10 has %d blocks, want 6", len(tables))
	}
	// Every block must carry paper ratios for its reported cells.
	foundRatio := false
	for _, tb := range tables {
		for _, row := range tb.Rows {
			if row[4] != "-" {
				foundRatio = true
			}
		}
	}
	if !foundRatio {
		t.Fatal("no paper comparison ratios found")
	}
}

func TestThroughputFigureNCCL(t *testing.T) {
	tables, err := ThroughputFigure(workload.EC2P2, sim.NCCL)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 5 {
		t.Fatalf("Figure 11 has %d blocks, want 5 (no ResNet110)", len(tables))
	}
}

func TestScalabilityFigure(t *testing.T) {
	for _, tc := range []struct {
		m    workload.Machine
		prim sim.Primitive
	}{
		{workload.EC2P2, sim.MPI},
		{workload.EC2P2, sim.NCCL},
		{workload.DGX1, sim.MPI},
		{workload.DGX1, sim.NCCL},
	} {
		tables, err := ScalabilityFigure(tc.m, tc.prim)
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.m.Name, tc.prim, err)
		}
		if len(tables) != 5 {
			t.Fatalf("%s/%s: %d panels", tc.m.Name, tc.prim, len(tables))
		}
	}
}

// TestScalabilityQuantisedBeatsFullPrecisionOnMPI: quantisation
// consistently improves MPI scalability (paper §5.3).
func TestScalabilityQuantisedBeatsFullPrecisionOnMPI(t *testing.T) {
	for _, net := range []workload.Network{workload.AlexNet, workload.ResNet152, workload.VGG19} {
		fp, err := simRun(net, workload.EC2P2, sim.MPI, "32bit", 16)
		if err != nil {
			t.Fatal(err)
		}
		q4, err := simRun(net, workload.EC2P2, sim.MPI, "qsgd4", 16)
		if err != nil {
			t.Fatal(err)
		}
		if q4.SamplesPerSec <= fp.SamplesPerSec {
			t.Errorf("%s: 4-bit must out-scale 32-bit on MPI at 16 GPUs", net.Name)
		}
	}
}

func TestCostAccuracyTable(t *testing.T) {
	tb, err := CostAccuracyTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Figure 16 left has %d rows, want 3", len(tb.Rows))
	}
}

// TestCostAccuracyDiminishingReturns: the paper's monotone
// cost-accuracy curve with diminishing returns — each accuracy point
// gained costs more than the last.
func TestCostAccuracyDiminishingReturns(t *testing.T) {
	alex, err := CheapestTraining(workload.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := CheapestTraining(workload.ResNet50)
	if err != nil {
		t.Fatal(err)
	}
	r152, err := CheapestTraining(workload.ResNet152)
	if err != nil {
		t.Fatal(err)
	}
	if !(alex.CostDollars < r50.CostDollars && r50.CostDollars < r152.CostDollars) {
		t.Fatalf("costs not monotone: %v %v %v", alex.CostDollars, r50.CostDollars, r152.CostDollars)
	}
	if !(alex.Top1 < r50.Top1 && r50.Top1 < r152.Top1) {
		t.Fatal("accuracies not monotone")
	}
	costPerPoint1 := (r50.CostDollars - alex.CostDollars) / (r50.Top1 - alex.Top1)
	costPerPoint2 := (r152.CostDollars - r50.CostDollars) / (r152.Top1 - r50.Top1)
	if costPerPoint2 <= costPerPoint1 {
		t.Errorf("no diminishing returns: %.0f$/pt then %.0f$/pt", costPerPoint1, costPerPoint2)
	}
}

func TestSpeedupSweepMonotone(t *testing.T) {
	rows, err := SpeedupSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("sweep has %d points", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup < rows[i-1].Speedup-1e-9 {
			t.Errorf("speedup not monotone at %d: %v after %v", i, rows[i].Speedup, rows[i-1].Speedup)
		}
		if rows[i].MBPerGFLOP <= rows[i-1].MBPerGFLOP {
			t.Errorf("ratio axis not increasing at %d", i)
		}
	}
	last := rows[len(rows)-1].Speedup
	if last < 1.5 || last > 4 {
		t.Errorf("asymptotic speedup %.2f outside the paper's projected band", last)
	}
	tb, err := SpeedupSweepTable()
	if err != nil || len(tb.Rows) != len(rows) {
		t.Fatal("table rendering mismatch")
	}
}

func TestFullGridCoverage(t *testing.T) {
	rows, err := FullGrid()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity bounds on the cross-product size: 2 machines × 2 primitives
	// × 7 networks × up to 7 precisions × up to 5 GPU counts, minus the
	// infeasible cells.
	if len(rows) < 300 || len(rows) > 900 {
		t.Fatalf("grid has %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Machine + "/" + r.Primitive + "/" + r.Network + "/" + r.Precision
		seen[key] = true
		if r.Result.SamplesPerSec <= 0 {
			t.Fatalf("non-positive throughput in %+v", r)
		}
	}
	for _, must := range []string{
		"EC2-P2/MPI/AlexNet/1bit",
		"EC2-P2/NCCL/VGG19/qsgd4",
		"DGX-1/MPI/ResNet152/1bit*",
		"DGX-1/NCCL/BN-Inception/32bit",
	} {
		if !seen[must] {
			t.Errorf("grid missing %s", must)
		}
	}
	// NCCL must never carry 1-bit rows; single GPUs never quantise.
	for _, r := range rows {
		if r.Primitive == "NCCL" && (r.Precision == "1bit" || r.Precision == "1bit*") {
			t.Fatalf("NCCL row with 1-bit codec: %+v", r)
		}
		if r.GPUs == 1 && r.Precision != "32bit" {
			t.Fatalf("quantised single-GPU row: %+v", r)
		}
	}
}

func TestGridTableRenders(t *testing.T) {
	tb, err := GridTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 300 {
		t.Fatalf("grid table has %d rows", len(tb.Rows))
	}
}

func TestBestConfiguration(t *testing.T) {
	best, err := BestConfiguration("AlexNet", "EC2-P2")
	if err != nil {
		t.Fatal(err)
	}
	// The best AlexNet config on EC2 should be a quantised MPI run or a
	// fast NCCL run at 8 GPUs — certainly not a single GPU.
	if best.GPUs < 8 {
		t.Fatalf("best AlexNet config uses only %d GPUs", best.GPUs)
	}
	if _, err := BestConfiguration("Nope", "EC2-P2"); err == nil {
		t.Fatal("expected error for unknown network")
	}
}

func TestLossTimeTable(t *testing.T) {
	s := imageStudy(t)
	tb := s.LossTimeTable()
	if len(tb.Rows) != 12 {
		t.Fatalf("loss-time table has %d rows", len(tb.Rows))
	}
	if len(tb.Header) != 1+2*len(Fig5Codecs()) {
		t.Fatalf("loss-time header has %d columns", len(tb.Header))
	}
}
