// Package report renders experiment results as aligned text tables and
// CSV, the two output formats of the reproduction's harness and
// command-line tools.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// New returns an empty table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; the cell count should match the header.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// widths computes the column widths over header and rows.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(w) {
				w = append(w, 0)
			}
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		parts := make([]string, 0, len(widths))
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts = append(parts, fmt.Sprintf("%-*s", width, c))
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values (quotes cells that
// contain commas or quotes).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		esc := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			esc[i] = c
		}
		fmt.Fprintln(w, strings.Join(esc, ","))
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
