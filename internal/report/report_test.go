package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Header and separator must be equally wide.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned separator:\n%s", out)
	}
}

func TestAddf(t *testing.T) {
	tb := New("", "a", "b")
	tb.Addf("%d\t%.2f", 7, 3.14159)
	if tb.Rows[0][0] != "7" || tb.Rows[0][1] != "3.14" {
		t.Fatalf("Addf produced %v", tb.Rows[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("", "x", "y")
	tb.Add(`va"l`, "a,b")
	var sb strings.Builder
	tb.CSV(&sb)
	want := "x,y\n\"va\"\"l\",\"a,b\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestNotes(t *testing.T) {
	tb := New("", "a")
	tb.Note("hello %d", 5)
	if !strings.Contains(tb.String(), "note: hello 5") {
		t.Fatal("note missing")
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("1", "2", "3") // extra cell must not panic
	tb.Add("only")
	_ = tb.String()
}
