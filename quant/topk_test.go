package quant

import (
	"math"
	"sort"
	"testing"

	"repro/rng"
)

func TestTopKWireSizeExact(t *testing.T) {
	c := NewTopK(0.1)
	shape := Shape{}
	for _, n := range []int{1, 5, 10, 100, 1000, 1001} {
		src := make([]float32, n)
		wire := c.NewEncoder(n, shape, 0).Encode(src)
		if len(wire) != c.EncodedBytes(n, shape) {
			t.Fatalf("n=%d: wire %d, predicted %d", n, len(wire), c.EncodedBytes(n, shape))
		}
		k := int(math.Ceil(0.1 * float64(n)))
		if k < 1 {
			k = 1
		}
		if want := 4 + 8*k; len(wire) != want {
			t.Fatalf("n=%d: wire %d, formula %d", n, len(wire), want)
		}
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	src := []float32{0.1, -5, 0.2, 3, -0.05, 0.3, -2, 0.01, 0.02, 0.03}
	c := NewTopK(0.3) // k = 3
	shape := Shape{}
	wire := c.NewEncoder(len(src), shape, 0).Encode(src)
	dst := make([]float32, len(src))
	if err := c.Decode(wire, len(src), shape, dst); err != nil {
		t.Fatal(err)
	}
	// Largest magnitudes are -5, 3, -2 at indices 1, 3, 6.
	for i, v := range dst {
		switch i {
		case 1, 3, 6:
			if v != src[i] {
				t.Fatalf("index %d: got %v want %v", i, v, src[i])
			}
		default:
			if v != 0 {
				t.Fatalf("index %d: got %v want 0", i, v)
			}
		}
	}
}

// TestTopKErrorFeedbackResidualBounded: with a constant gradient, the
// undelivered mass per coordinate (cumulative input − cumulative
// output, which equals the residual exactly) stays bounded by the
// selection threshold — error feedback guarantees no coordinate is
// starved indefinitely, only delayed in proportion to the magnitude
// gap.
func TestTopKErrorFeedbackResidualBounded(t *testing.T) {
	const n = 100
	src := make([]float32, n)
	for i := range src {
		src[i] = 0.01 * float32(i+1) // all positive, distinct
	}
	c := NewTopK(0.1)
	shape := Shape{}
	enc := c.NewEncoder(n, shape, 0)
	dst := make([]float32, n)
	sum := make([]float64, n)
	const rounds = 200
	for round := 0; round < rounds; round++ {
		wire := enc.Encode(src)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			sum[i] += float64(v)
		}
	}
	// Steady-state analysis: with inflow Σsrc per round and k winners
	// per round, the selection threshold settles at T = Σsrc/k ≈ 5.05,
	// so no residual can exceed T plus one round of input.
	var totalSrc float64
	for _, v := range src {
		totalSrc += float64(v)
	}
	threshold := totalSrc / 10 // k = density·n = 10
	var totalUndelivered float64
	for i := range sum {
		want := float64(src[i]) * rounds
		undelivered := want - sum[i]
		totalUndelivered += undelivered
		if math.Abs(undelivered) > threshold+1.5 {
			t.Fatalf("coordinate %d: undelivered mass %v exceeds threshold %v",
				i, undelivered, threshold)
		}
	}
	// On average residuals sit well below the threshold.
	if totalUndelivered > float64(n)*threshold*0.8 {
		t.Fatalf("total undelivered %v implausibly high", totalUndelivered)
	}
}

func TestTopKDeterministicWithTies(t *testing.T) {
	src := []float32{1, 1, 1, 1, 1, 1, 1, 1}
	c := NewTopK(0.25) // k = 2
	shape := Shape{}
	w1 := append([]byte(nil), c.NewEncoder(len(src), shape, 1).Encode(src)...)
	w2 := append([]byte(nil), c.NewEncoder(len(src), shape, 2).Encode(src)...)
	if string(w1) != string(w2) {
		t.Fatal("tie-breaking is nondeterministic")
	}
	dst := make([]float32, len(src))
	if err := c.Decode(w1, len(src), shape, dst); err != nil {
		t.Fatal(err)
	}
	// Ties must prefer the lowest indices.
	if dst[0] != 1 || dst[1] != 1 || dst[2] != 0 {
		t.Fatalf("tie-break wrong: %v", dst)
	}
}

func TestTopKDecodeRejectsBadWire(t *testing.T) {
	c := NewTopK(0.5)
	shape := Shape{}
	src := []float32{1, 2, 3, 4}
	wire := append([]byte(nil), c.NewEncoder(4, shape, 0).Encode(src)...)
	if err := c.Decode(wire[:5], 4, shape, make([]float32, 4)); err == nil {
		t.Error("expected length error")
	}
	// Corrupt the index to an out-of-range value.
	wire[4] = 0xff
	if err := c.Decode(wire, 4, shape, make([]float32, 4)); err == nil {
		t.Error("expected index-range error")
	}
}

func TestTopKCompressionRatio(t *testing.T) {
	// Density 1% → 100× fewer values, but 8 bytes each: ratio ≈ 50×.
	c := NewTopK(0.01)
	shape := Shape{Rows: 10000, Cols: 1}
	got := CompressionRatio(c, shape)
	if got < 45 || got > 55 {
		t.Fatalf("1%% density ratio %.1f, want ≈50", got)
	}
	// The paper's point: indices halve the win vs a dense 4-byte value.
	dense := 1 / 0.01
	if got > dense*0.6 {
		t.Fatalf("ratio %.1f does not reflect index overhead", got)
	}
}

func TestTopKDensityOnePassThrough(t *testing.T) {
	r := rng.New(5)
	c := NewTopK(1)
	shape := Shape{}
	src := randVec(r, 64)
	wire := c.NewEncoder(64, shape, 0).Encode(src)
	dst := make([]float32, 64)
	if err := c.Decode(wire, 64, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("density-1 roundtrip differs at %d", i)
		}
	}
}

func TestTopKPanicsOnBadDensity(t *testing.T) {
	for _, d := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("density %v: expected panic", d)
				}
			}()
			NewTopK(d)
		}()
	}
}

func TestSelectTopKAgainstSort(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		vals := randVec(r, n)
		k := 1 + r.Intn(n)
		order := make([]int32, n)
		for i := range order {
			order[i] = int32(i)
		}
		selectTopK(order, vals, k)
		got := append([]int32(nil), order[:k]...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

		ref := make([]int32, n)
		for i := range ref {
			ref[i] = int32(i)
		}
		sort.Slice(ref, func(i, j int) bool { return greater(vals, ref[i], ref[j]) })
		want := append([]int32(nil), ref[:k]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d k=%d): selection %v != sort %v", trial, n, k, got, want)
			}
		}
	}
}

func BenchmarkEncodeTopK(b *testing.B) {
	r := rng.New(1)
	src := randVec(r, 1<<20)
	c := NewTopK(0.01)
	e := c.NewEncoder(len(src), Shape{}, 1)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Encode(src)
	}
}
