package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// TopK is the sparse-communication scheme the paper's related-work
// section discusses (Aji & Heafield, EMNLP 2017): only the largest-
// magnitude density·n gradient components are transmitted, at full
// precision together with their indices, and the untransmitted
// remainder accumulates locally in an error-feedback residual.
//
// The paper did not adopt it — "due to the extra cost of transmitting
// indices, it is not clear that the reduction in communication is
// sufficient", and dense collectives cannot carry it — so this codec is
// provided as the study's natural extension point: it exposes exactly
// that index overhead through its wire format (8 bytes per surviving
// component against 4 for a dense value).
//
// Wire layout for a segment of n values with k = ⌈density·n⌉:
//
//	uint32 k | k × uint32 index | k × float32 value
type TopK struct {
	// density is the fraction of components transmitted, in (0, 1].
	density float64
}

// NewTopK returns a top-k codec transmitting the given fraction of
// components. It panics unless 0 < density ≤ 1 (NaN included).
func NewTopK(density float64) TopK {
	if !(density > 0 && density <= 1) {
		panic(fmt.Sprintf("quant: TopK density %v outside (0,1]", density))
	}
	return TopK{density: density}
}

// Density returns the transmitted fraction.
func (t TopK) Density() float64 { return t.density }

// Name implements Codec.
func (t TopK) Name() string { return fmt.Sprintf("topk%g", t.density) }

// GroupSize implements Codec. Selection is per segment, so any stripe
// boundary is legal; a moderate group keeps stripe arithmetic cheap.
func (t TopK) GroupSize(Shape) int { return 256 }

// keep returns k for a segment of n values.
func (t TopK) keep(n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(t.density * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// EncodedBytes implements Codec.
func (t TopK) EncodedBytes(n int, _ Shape) int {
	if n == 0 {
		return 0
	}
	return 4 + 8*t.keep(n)
}

// NewEncoder implements Codec.
func (t TopK) NewEncoder(n int, shape Shape, _ uint64) Encoder {
	return &topKEncoder{
		t:        t,
		n:        n,
		residual: make([]float32, n),
		work:     make([]float32, n),
		order:    make([]int32, n),
		buf:      make([]byte, t.EncodedBytes(n, shape)),
		framer:   newFramer(t, n, shape),
	}
}

type topKEncoder struct {
	t        TopK
	n        int
	residual []float32
	work     []float32
	order    []int32
	buf      []byte
	framer
}

// Encode implements Encoder: e ← v + ε; transmit the k components of e
// with the largest magnitude (ties broken towards lower indices for
// determinism); ε ← e on the untransmitted coordinates, 0 on the
// transmitted ones.
func (e *topKEncoder) Encode(src []float32) []byte {
	if len(src) != e.n {
		panic(fmt.Sprintf("quant: topk encoder got %d values, want %d", len(src), e.n))
	}
	if e.n == 0 {
		return e.buf[:0]
	}
	for i, v := range src {
		e.work[i] = v + e.residual[i]
		e.order[i] = int32(i)
	}
	k := e.t.keep(e.n)
	selectTopK(e.order, e.work, k)
	// The first k entries of order now index the winners; sort them so
	// the wire format is canonical and decoding is cache-friendly.
	winners := e.order[:k]
	insertionSortInt32(winners)

	binary.LittleEndian.PutUint32(e.buf, uint32(k))
	off := 4
	for _, idx := range winners {
		binary.LittleEndian.PutUint32(e.buf[off:], uint32(idx))
		off += 4
	}
	copy(e.residual, e.work) // keep everything ...
	for _, idx := range winners {
		binary.LittleEndian.PutUint32(e.buf[off:], math.Float32bits(e.work[idx]))
		off += 4
		e.residual[idx] = 0 // ... except what was sent
	}
	return e.buf
}

// EncodeTo implements Encoder.
func (e *topKEncoder) EncodeTo(w io.Writer, src []float32) (int, error) {
	return e.encodeTo(w, e.Encode(src))
}

// Decode implements Codec.
func (t TopK) Decode(wire []byte, n int, shape Shape, dst []float32) error {
	want := t.EncodedBytes(n, shape)
	if len(wire) != want {
		return fmt.Errorf("quant: topk wire length %d, want %d", len(wire), want)
	}
	if len(dst) != n {
		return fmt.Errorf("quant: topk dst length %d, want %d", len(dst), n)
	}
	if n == 0 {
		return nil
	}
	k := int(binary.LittleEndian.Uint32(wire))
	if k != t.keep(n) {
		return fmt.Errorf("quant: topk header k=%d, want %d", k, t.keep(n))
	}
	for i := range dst {
		dst[i] = 0
	}
	idxOff, valOff := 4, 4+4*k
	prev := -1
	for i := 0; i < k; i++ {
		idx := int(binary.LittleEndian.Uint32(wire[idxOff+4*i:]))
		if idx >= n {
			return fmt.Errorf("quant: topk index %d out of range %d", idx, n)
		}
		// The encoder emits indices sorted strictly ascending; enforcing
		// that here rejects corrupted payloads with duplicate indices
		// instead of silently decoding wrong values.
		if idx <= prev {
			return fmt.Errorf("quant: topk indices not strictly ascending (%d after %d)", idx, prev)
		}
		prev = idx
		dst[idx] = math.Float32frombits(binary.LittleEndian.Uint32(wire[valOff+4*i:]))
	}
	return nil
}

// selectTopK partially orders order so that its first k entries index
// the k largest |vals| entries. It is a deterministic quickselect with
// median-of-three pivots; ties prefer lower indices.
func selectTopK(order []int32, vals []float32, k int) {
	lo, hi := 0, len(order)-1
	for lo < hi {
		p := partition(order, vals, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// greater reports whether index a outranks index b (larger magnitude,
// lower index on ties).
func greater(vals []float32, a, b int32) bool {
	av, bv := vals[a], vals[b]
	if av < 0 {
		av = -av
	}
	if bv < 0 {
		bv = -bv
	}
	if av != bv {
		return av > bv
	}
	return a < b
}

func partition(order []int32, vals []float32, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot for deterministic, adversary-resistant
	// behaviour on sorted inputs.
	if greater(vals, order[mid], order[lo]) {
		order[mid], order[lo] = order[lo], order[mid]
	}
	if greater(vals, order[hi], order[lo]) {
		order[hi], order[lo] = order[lo], order[hi]
	}
	if greater(vals, order[hi], order[mid]) {
		order[hi], order[mid] = order[mid], order[hi]
	}
	pivot := order[mid]
	order[mid], order[hi] = order[hi], order[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if greater(vals, order[i], pivot) {
			order[i], order[store] = order[store], order[i]
			store++
		}
	}
	order[store], order[hi] = order[hi], order[store]
	return store
}

func insertionSortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}
