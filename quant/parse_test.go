package quant

import (
	"strings"
	"testing"
)

// TestParseRoundTripsCodecNames: Parse(c.Name()) must reconstruct an
// identical codec for every member of the paper ladder and the
// extension set — this is what lets the framed wire format carry the
// codec identity as a string.
func TestParseRoundTripsCodecNames(t *testing.T) {
	var all []Codec
	all = append(all, PaperCodecs()...)
	all = append(all, ExtensionCodecs()...)
	for _, c := range all {
		got, err := Parse(c.Name())
		if err != nil {
			t.Errorf("Parse(%q): %v", c.Name(), err)
			continue
		}
		if got != c {
			t.Errorf("Parse(%q) = %#v, want %#v", c.Name(), got, c)
		}
		if got.Name() != c.Name() {
			t.Errorf("Parse(%q).Name() = %q", c.Name(), got.Name())
		}
	}
}

// TestParseAliases: the shorthand labels the paper's tables use resolve
// to the codecs with the tuned default parameters, without duplicate
// registry entries.
func TestParseAliases(t *testing.T) {
	cases := []struct {
		in   string
		want Codec
	}{
		{"32bit", FP32{}},
		{"fp32", FP32{}},
		{"1bit", OneBit{}},
		{"1bit*", NewOneBitReshaped(64)},
		{"1bit*64", NewOneBitReshaped(64)},
		{"1bit*512", NewOneBitReshaped(512)},
		{"qsgd2", NewQSGD(2, 128, MaxNorm)},
		{"qsgd4", NewQSGD(4, 512, MaxNorm)},
		{"qsgd8", NewQSGD(8, 512, MaxNorm)},
		{"qsgd16", NewQSGD(16, 8192, MaxNorm)},
		{"qsgd4b512", NewQSGD(4, 512, MaxNorm)},
		{"qsgd4b512mx", NewQSGD(4, 512, MaxNorm)},
		{"qsgd4b512-max", NewQSGD(4, 512, MaxNorm)},
		{"qsgd4b512-l2", NewQSGD(4, 512, TwoNorm)},
		{"qsgd4b512-uni", NewQSGDScheme(4, 512, MaxNorm, Uniform)},
		{"qsgd4b512-exp", NewQSGDScheme(4, 512, MaxNorm, Exponential)},
		{"qsgd4b512-l2-uni", NewQSGDScheme(4, 512, TwoNorm, Uniform)},
		{"qsgd2b64", NewQSGD(2, 64, MaxNorm)},
		{"topk0.01", NewTopK(0.01)},
		{"topk0.001", NewTopK(0.001)},
		{"topk1", NewTopK(1)},
	}
	for _, tc := range cases {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

// TestParseRejectsMalformedNames: bad names return errors, never panic.
func TestParseRejectsMalformedNames(t *testing.T) {
	bad := []string{
		"", "bogus", "qsgd", "qsgd3", "qsgd4b", "qsgd4b0", "qsgd4b-12",
		"qsgd4b512-wat", "qsgd4b512l3", "1bit*0", "1bit*-4", "1bit*x",
		"topk", "topk0", "topk2", "topk-0.5", "topkx", "topkNaN",
		"topk+Inf", "33bit",
	}
	for _, in := range bad {
		if c, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, c.Name())
		}
	}
}

// TestParseErrorListsNames: the error for an unknown family names the
// known codec grammar samples, mirroring the old registry's error.
func TestParseErrorListsNames(t *testing.T) {
	_, err := Parse("bogus")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"32bit", "qsgd4b512", "1bit*64", "topk0.01"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on a bad name did not panic")
		}
	}()
	MustParse("qsgd3")
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"fp32":        "32bit",
		"32bit":       "32bit",
		"qsgd4":       "qsgd4b512",
		"qsgd4b512mx": "qsgd4b512",
		"qsgd2":       "qsgd2b128",
		"1bit*":       "1bit*64",
		"topk0.010":   "topk0.01",
	}
	for in, want := range cases {
		got, err := Canonical(in)
		if err != nil {
			t.Errorf("Canonical(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := Canonical("qsgd3"); err == nil {
		t.Error("Canonical must reject unknown names")
	}
}
