package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// OneBit is CNTK's classic 1bitSGD codec (Seide et al., 2014; paper §2.2
// and §3.2.1). Each matrix column is quantised independently: after
// adding the error-feedback residual from the previous round, every
// component is replaced by the mean of the column's non-negative values
// (avg+) or the mean of its negative values (avg−) according to its sign.
// The residual ε ← v − q is carried to the next round; this error
// correction is what lets a single bit per coordinate preserve accuracy.
//
// Wire layout per column of height h:
//
//	float32 avg+ | float32 avg− | ⌈h/32⌉ × uint32 sign bits
//
// Because the column height equals the tensor's first dimension, a 3-wide
// convolution kernel yields columns of height 3: two floats of scale
// overhead per 3 values, i.e. no compression at all, plus per-column
// kernel cost. That artefact — classic 1bitSGD being slower than full
// precision on heavily convolutional networks — is one of the paper's
// headline observations, and the reshaped variant below is its fix.
type OneBit struct{}

// Name implements Codec.
func (OneBit) Name() string { return "1bit" }

// GroupSize implements Codec: the column height.
func (OneBit) GroupSize(shape Shape) int {
	if shape.Rows <= 0 {
		return 1
	}
	return shape.Rows
}

// EncodedBytes implements Codec.
func (o OneBit) EncodedBytes(n int, shape Shape) int {
	return oneBitBytes(n, o.GroupSize(shape))
}

// NewEncoder implements Codec.
func (o OneBit) NewEncoder(n int, shape Shape, _ uint64) Encoder {
	return newOneBitEncoder(n, o.GroupSize(shape), newFramer(o, n, shape))
}

// Decode implements Codec.
func (o OneBit) Decode(wire []byte, n int, shape Shape, dst []float32) error {
	return oneBitDecode(wire, n, o.GroupSize(shape), dst)
}

// OneBitReshaped is the paper's 1bitSGD* variant (§3.2 "Reshaped
// 1bitSGD"): the tensor is flattened and re-cut into buckets of a fixed
// size before column-wise 1-bit quantisation, so scale overhead and
// kernel-launch cost no longer depend on the network's tensor shapes.
// The paper tunes the bucket to 64 for accuracy parity with full
// precision.
type OneBitReshaped struct {
	bucket int
}

// NewOneBitReshaped returns a reshaped 1bitSGD codec with the given
// bucket size. It panics if bucket is not positive.
func NewOneBitReshaped(bucket int) OneBitReshaped {
	if bucket <= 0 {
		panic("quant: OneBitReshaped bucket must be positive")
	}
	return OneBitReshaped{bucket: bucket}
}

// Bucket returns the configured bucket size.
func (o OneBitReshaped) Bucket() int { return o.bucket }

// Name implements Codec.
func (o OneBitReshaped) Name() string { return fmt.Sprintf("1bit*%d", o.bucket) }

// GroupSize implements Codec: the bucket size, independent of shape.
func (o OneBitReshaped) GroupSize(Shape) int { return o.bucket }

// EncodedBytes implements Codec.
func (o OneBitReshaped) EncodedBytes(n int, _ Shape) int {
	return oneBitBytes(n, o.bucket)
}

// NewEncoder implements Codec.
func (o OneBitReshaped) NewEncoder(n int, shape Shape, _ uint64) Encoder {
	return newOneBitEncoder(n, o.bucket, newFramer(o, n, shape))
}

// Decode implements Codec.
func (o OneBitReshaped) Decode(wire []byte, n int, _ Shape, dst []float32) error {
	return oneBitDecode(wire, n, o.bucket, dst)
}

// oneBitBytes returns the wire size of n elements cut into groups of g.
func oneBitBytes(n, g int) int {
	if n == 0 {
		return 0
	}
	full := n / g
	bytes := full * (8 + 4*words32(g))
	if rem := n % g; rem > 0 {
		bytes += 8 + 4*words32(rem)
	}
	return bytes
}

type oneBitEncoder struct {
	n, g     int
	residual []float32 // error-feedback state ε, one entry per element
	work     []float32 // v + ε for the current group
	buf      []byte
	framer
}

func newOneBitEncoder(n, g int, fr framer) *oneBitEncoder {
	return &oneBitEncoder{
		n:        n,
		g:        g,
		residual: make([]float32, n),
		work:     make([]float32, g),
		buf:      make([]byte, oneBitBytes(n, g)),
		framer:   fr,
	}
}

// Encode implements Encoder. It realises Algorithm 2 of the paper:
// v ← v + ε; q_i ← avg+ if v_i ≥ 0 else avg−; ε_i ← v_i − q_i.
func (e *oneBitEncoder) Encode(src []float32) []byte {
	if len(src) != e.n {
		panic(fmt.Sprintf("quant: 1bit encoder got %d values, want %d", len(src), e.n))
	}
	off := 0
	for start := 0; start < e.n; start += e.g {
		end := start + e.g
		if end > e.n {
			end = e.n
		}
		c := end - start
		work := e.work[:c]
		res := e.residual[start:end]
		var sumPos, sumNeg float64
		var nPos, nNeg int
		for i := 0; i < c; i++ {
			v := src[start+i] + res[i]
			work[i] = v
			if v >= 0 {
				sumPos += float64(v)
				nPos++
			} else {
				sumNeg += float64(v)
				nNeg++
			}
		}
		var avgPos, avgNeg float32
		if nPos > 0 {
			avgPos = float32(sumPos / float64(nPos))
		}
		if nNeg > 0 {
			avgNeg = float32(sumNeg / float64(nNeg))
		}
		binary.LittleEndian.PutUint32(e.buf[off:], math.Float32bits(avgPos))
		binary.LittleEndian.PutUint32(e.buf[off+4:], math.Float32bits(avgNeg))
		off += 8
		nw := words32(c)
		// Zero the bit words, then set sign bits and update residuals.
		for w := 0; w < nw; w++ {
			binary.LittleEndian.PutUint32(e.buf[off+4*w:], 0)
		}
		var word uint32
		for i := 0; i < c; i++ {
			var q float32
			if work[i] >= 0 {
				word |= 1 << (uint(i) & 31)
				q = avgPos
			} else {
				q = avgNeg
			}
			res[i] = work[i] - q
			if (uint(i)&31) == 31 || i == c-1 {
				binary.LittleEndian.PutUint32(e.buf[off+4*(i>>5):], word)
				word = 0
			}
		}
		off += 4 * nw
	}
	return e.buf
}

// EncodeTo implements Encoder.
func (e *oneBitEncoder) EncodeTo(w io.Writer, src []float32) (int, error) {
	return e.encodeTo(w, e.Encode(src))
}

// oneBitDecode unpacks a 1bitSGD wire buffer into dst.
func oneBitDecode(wire []byte, n, g int, dst []float32) error {
	want := oneBitBytes(n, g)
	if len(wire) != want {
		return fmt.Errorf("quant: 1bit wire length %d, want %d", len(wire), want)
	}
	if len(dst) != n {
		return fmt.Errorf("quant: 1bit dst length %d, want %d", len(dst), n)
	}
	off := 0
	for start := 0; start < n; start += g {
		end := start + g
		if end > n {
			end = n
		}
		c := end - start
		avgPos := math.Float32frombits(binary.LittleEndian.Uint32(wire[off:]))
		avgNeg := math.Float32frombits(binary.LittleEndian.Uint32(wire[off+4:]))
		off += 8
		for i := 0; i < c; i++ {
			word := binary.LittleEndian.Uint32(wire[off+4*(i>>5):])
			if word&(1<<(uint(i)&31)) != 0 {
				dst[start+i] = avgPos
			} else {
				dst[start+i] = avgNeg
			}
		}
		off += 4 * words32(c)
	}
	return nil
}
