package quant_test

import (
	"fmt"

	"repro/quant"
)

// ExampleQSGD demonstrates encoding a gradient with 4-bit stochastic
// quantisation and measuring the wire saving.
func ExampleQSGD() {
	codec := quant.NewQSGD(4, 512, quant.MaxNorm)
	grad := make([]float32, 1024)
	for i := range grad {
		grad[i] = float32(i%7) - 3 // some deterministic values
	}
	shape := quant.Shape{Rows: 32, Cols: 32}
	enc := codec.NewEncoder(len(grad), shape, 42)
	wire := enc.Encode(grad)

	decoded := make([]float32, len(grad))
	if err := codec.Decode(wire, len(grad), shape, decoded); err != nil {
		panic(err)
	}
	fmt.Printf("raw: %d bytes, wire: %d bytes, ratio: %.1fx\n",
		4*len(grad), len(wire), float64(4*len(grad))/float64(len(wire)))
	// Output:
	// raw: 4096 bytes, wire: 520 bytes, ratio: 7.9x
}

// ExampleOneBit shows the column-wise 1bitSGD codec replacing every
// value with one of two per-column averages.
func ExampleOneBit() {
	codec := quant.OneBit{}
	grad := []float32{1, 3, -2, -4, 5, 1} // one column of height 6
	shape := quant.Shape{Rows: 6, Cols: 1}
	wire := codec.NewEncoder(len(grad), shape, 0).Encode(grad)
	decoded := make([]float32, len(grad))
	if err := codec.Decode(wire, len(grad), shape, decoded); err != nil {
		panic(err)
	}
	fmt.Printf("avg+ = %.1f, avg- = %.1f\n", decoded[0], decoded[2])
	// Output:
	// avg+ = 2.5, avg- = -3.0
}

// ExampleCompressionRatio shows the shape-dependence of classic 1bitSGD:
// tall FC columns compress ~30x, 3-row conv kernels not at all.
func ExampleCompressionRatio() {
	fc := quant.Shape{Rows: 4096, Cols: 4096}
	conv := quant.Shape{Rows: 3, Cols: 3 * 256 * 384}
	fmt.Printf("FC:   %.0fx\n", quant.CompressionRatio(quant.OneBit{}, fc))
	fmt.Printf("conv: %.0fx\n", quant.CompressionRatio(quant.OneBit{}, conv))
	// Output:
	// FC:   32x
	// conv: 1x
}
