package quant

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse resolves a codec name into a codec, deriving every parameter —
// bits, bucket size, normalisation, level scheme, sparsity — from the
// name itself instead of looking it up in a fixed table. The grammar
// covers both the canonical names produced by Codec.Name() and the
// shorthand labels the paper's tables use:
//
//	32bit | fp32                     full precision
//	1bit                             classic column-wise 1bitSGD
//	1bit*[<bucket>]                  reshaped 1bitSGD* (default bucket 64)
//	qsgd<bits>[b<bucket>][<mods>]    QSGD; bits ∈ {2,4,8,16}
//	topk<density>                    sparse top-k, density ∈ (0,1]
//
// When the bucket is omitted, QSGD uses the paper's tuned default for
// the bit width (§4.4): 128 for 2-bit, 512 for 4/8-bit, 8192 for
// 16-bit — so "qsgd4" and "qsgd4b512" are the same codec. Modifiers
// select the normalisation and level scheme and may be separated by
// dashes: "l2" (2-norm), "max"/"mx" (infinity norm, the default),
// "uni" (uniform levels), "exp" (exponential levels), "sm"
// (sign-magnitude, the default). For example "qsgd4b512mx" and
// "qsgd4b512" name the same codec, and "qsgd4b512-l2-uni" is 4-bit
// QSGD with 2-norm scaling and uniform levels.
//
// Parse(c.Name()) round-trips for every codec in the package, which is
// what lets the framed wire format (frame.go) carry the codec identity
// as a compact string and reconstruct the exact codec on the far side.
func Parse(name string) (Codec, error) {
	s := strings.TrimSpace(name)
	switch {
	case s == "32bit" || s == "fp32":
		return FP32{}, nil
	case s == "1bit":
		return OneBit{}, nil
	case strings.HasPrefix(s, "1bit*"):
		return parseOneBitReshaped(s[len("1bit*"):])
	case strings.HasPrefix(s, "qsgd"):
		return parseQSGD(s[len("qsgd"):])
	case strings.HasPrefix(s, "topk"):
		return parseTopK(s[len("topk"):])
	}
	return nil, fmt.Errorf("quant: unknown codec %q (want one of %s)", name, strings.Join(Names(), ", "))
}

// ByName is an alias for Parse, kept for callers written against the
// old fixed-registry API.
func ByName(name string) (Codec, error) { return Parse(name) }

// MustParse is Parse for static configuration; it panics on error.
func MustParse(name string) Codec {
	c, err := Parse(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Canonical resolves a codec name to its canonical spelling — the one
// Codec.Name() produces — so that aliases compare as equals: "fp32"
// canonicalises to "32bit", "qsgd4" (the paper's tuned default bucket)
// to "qsgd4b512", "qsgd4b512mx" to "qsgd4b512". Capability exchanges
// (cluster policy negotiation, where codec names are the leaves of the
// policy grammar — see CanonicalPolicy) intersect advertised sets by
// canonical spelling, not raw spelling.
func Canonical(name string) (string, error) {
	c, err := Parse(name)
	if err != nil {
		return "", err
	}
	return c.Name(), nil
}

// Names returns canonical example names for every codec family, in the
// paper's presentation order. These are exact Parse inputs, but unlike
// the old fixed registry they are samples of a grammar, not the full
// vocabulary: any bucket, norm, scheme or density spelling that the
// grammar accepts works too.
func Names() []string {
	names := make([]string, 0, 12)
	for _, c := range PaperCodecs() {
		names = append(names, c.Name())
	}
	for _, c := range ExtensionCodecs() {
		names = append(names, c.Name())
	}
	return names
}

// DefaultQSGDBucket returns the paper's tuned bucket size for a QSGD
// bit width (§4.4): 128 for 2 bits, 512 for 4 and 8 bits, 8192 for 16
// bits.
func DefaultQSGDBucket(bits int) int {
	switch bits {
	case 2:
		return 128
	case 16:
		return 8192
	default:
		return 512
	}
}

// parseOneBitReshaped parses the "<bucket>" tail of "1bit*<bucket>".
// An empty tail selects the paper's tuned default bucket of 64.
func parseOneBitReshaped(rest string) (Codec, error) {
	if rest == "" {
		return NewOneBitReshaped(64), nil
	}
	b, err := strconv.Atoi(rest)
	if err != nil || b <= 0 {
		return nil, fmt.Errorf("quant: bad 1bit* bucket %q (want a positive integer)", rest)
	}
	return NewOneBitReshaped(b), nil
}

// parseQSGD parses the "<bits>[b<bucket>][<mods>]" tail of a QSGD name.
func parseQSGD(rest string) (Codec, error) {
	digits := leadingDigits(rest)
	if digits == "" {
		return nil, fmt.Errorf("quant: qsgd codec needs a bit width, e.g. qsgd4")
	}
	bits, err := strconv.Atoi(digits)
	if err != nil {
		return nil, fmt.Errorf("quant: bad qsgd bits %q: %v", digits, err)
	}
	switch bits {
	case 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("quant: qsgd bits must be 2, 4, 8 or 16, got %d", bits)
	}
	rest = rest[len(digits):]

	bucket := DefaultQSGDBucket(bits)
	if strings.HasPrefix(rest, "b") {
		digits = leadingDigits(rest[1:])
		if digits == "" {
			return nil, fmt.Errorf("quant: qsgd bucket suffix %q needs digits, e.g. b512", rest)
		}
		if bucket, err = strconv.Atoi(digits); err != nil || bucket <= 0 {
			return nil, fmt.Errorf("quant: bad qsgd bucket %q (want a positive integer)", digits)
		}
		rest = rest[1+len(digits):]
	}

	norm, scheme := MaxNorm, SignMagnitude
	for rest != "" {
		rest = strings.TrimPrefix(rest, "-")
		switch {
		case strings.HasPrefix(rest, "l2"):
			norm, rest = TwoNorm, rest[2:]
		case strings.HasPrefix(rest, "max"):
			norm, rest = MaxNorm, rest[3:]
		case strings.HasPrefix(rest, "mx"):
			norm, rest = MaxNorm, rest[2:]
		case strings.HasPrefix(rest, "uni"):
			scheme, rest = Uniform, rest[3:]
		case strings.HasPrefix(rest, "exp"):
			scheme, rest = Exponential, rest[3:]
		case strings.HasPrefix(rest, "sm"):
			scheme, rest = SignMagnitude, rest[2:]
		default:
			return nil, fmt.Errorf("quant: unknown qsgd modifier %q (want l2, max/mx, uni, exp or sm)", rest)
		}
	}
	return NewQSGDScheme(bits, bucket, norm, scheme), nil
}

// parseTopK parses the "<density>" tail of "topk<density>".
func parseTopK(rest string) (Codec, error) {
	d, err := strconv.ParseFloat(rest, 64)
	// The negated comparison also rejects NaN, which would pass both
	// "d <= 0" and "d > 1".
	if err != nil || !(d > 0 && d <= 1) {
		return nil, fmt.Errorf("quant: bad topk density %q (want a number in (0,1])", rest)
	}
	return NewTopK(d), nil
}

// leadingDigits returns the maximal ASCII-digit prefix of s.
func leadingDigits(s string) string {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i]
}
