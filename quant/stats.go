package quant

import "math"

// ErrorStats summarises the distortion a codec introduces on one
// gradient vector: per-round root-mean-square error, empirical bias of
// the mean estimate across rounds, and the achieved wire compression.
// It is the measurement behind the study's accuracy reasoning —
// quantisation variance is what slows or derails convergence.
type ErrorStats struct {
	// RMSE is the root-mean-square error of a single encode/decode
	// round (averaged over rounds for stochastic codecs).
	RMSE float64
	// MeanAbsBias is the mean absolute difference between the original
	// vector and the decoded values averaged across rounds; near zero
	// for unbiased codecs (QSGD) and for error-feedback codecs measured
	// over many rounds.
	MeanAbsBias float64
	// CompressionRatio is raw bytes divided by wire bytes.
	CompressionRatio float64
}

// MeasureError runs `rounds` encode/decode cycles of src through a
// fresh encoder and reports the distortion statistics. For
// error-feedback codecs the same encoder is reused so residuals behave
// as they would in training.
func MeasureError(c Codec, src []float32, shape Shape, rounds int, seed uint64) ErrorStats {
	n := len(src)
	if n == 0 || rounds <= 0 {
		return ErrorStats{CompressionRatio: 1}
	}
	enc := c.NewEncoder(n, shape, seed)
	dst := make([]float32, n)
	sum := make([]float64, n)
	var sqErr float64
	var wireBytes int
	for round := 0; round < rounds; round++ {
		wire := enc.Encode(src)
		wireBytes = len(wire)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			// Encoder output must always decode; a failure here is a
			// codec bug and zero stats make it visible in callers.
			return ErrorStats{}
		}
		for i, v := range dst {
			d := float64(v) - float64(src[i])
			sqErr += d * d
			sum[i] += float64(v)
		}
	}
	var bias float64
	for i := range sum {
		bias += math.Abs(sum[i]/float64(rounds) - float64(src[i]))
	}
	ratio := 1.0
	if wireBytes > 0 {
		ratio = float64(4*n) / float64(wireBytes)
	}
	return ErrorStats{
		RMSE:             math.Sqrt(sqErr / float64(n*rounds)),
		MeanAbsBias:      bias / float64(n),
		CompressionRatio: ratio,
	}
}

// GradNorms returns the L2 and max-absolute (inf) norms of one
// gradient vector — the per-tensor convergence signals the telemetry
// plane samples and the adaptive-precision roadmap item consumes.
// Accumulation is in float64 so catastrophic cancellation on large
// tensors does not distort the telemetry.
func GradNorms(src []float32) (l2, inf float64) {
	var sq float64
	for _, v := range src {
		f := float64(v)
		sq += f * f
		if a := math.Abs(f); a > inf {
			inf = a
		}
	}
	return math.Sqrt(sq), inf
}
