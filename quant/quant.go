// Package quant implements the low-precision gradient codecs studied by
// the paper: full-precision (32-bit), 1bitSGD (Seide et al., Interspeech
// 2014) with error feedback, the bucket-reshaped 1bitSGD* variant the
// paper introduces, and QSGD (Alistarh et al., NIPS 2017) stochastic
// quantisation at 2/4/8/16 bits with tunable bucket sizes and
// normalisation.
//
// Every codec produces a real, bit-packed wire format whose exact byte
// length is exposed through EncodedBytes. The communication layer
// (internal/comm) moves these bytes, and the performance simulator
// (internal/simulate) prices them; both therefore agree byte-for-byte on
// what low precision costs — which is the crux of the paper's
// performance study.
//
// # Quantisation groups
//
// Following CNTK, a gradient tensor is a matrix in column-major layout
// whose first tensor dimension is the "row" count and whose remaining
// dimensions are flattened into "columns". Classic 1bitSGD quantises each
// column independently; the paper's reshaped variants instead cut the
// flat vector into fixed-size buckets. Both are captured here by a
// codec-defined group size: a codec partitions a flat vector into
// consecutive groups of GroupSize elements (the final group may be
// shorter) and quantises each group independently. This also gives the
// aggregation layer natural stripe boundaries.
//
// # Names and frames
//
// Codecs are selected by name through the Parse grammar ("qsgd4b512",
// "1bit*64", "topk0.01", ...), which derives every parameter from the
// name and round-trips Codec.Name(). Each encoder can also emit a
// self-describing framed message (EncodeTo) carrying a versioned
// header — magic, format version, codec name, shape, element count —
// that DecodeAny reconstructs without any shared configuration; see
// frame.go.
package quant

import (
	"fmt"
	"io"
)

// Shape describes a gradient tensor in CNTK layout: Rows is the first
// tensor dimension, Cols the product of the remaining dimensions. The
// flat data is column-major, so one column occupies Rows consecutive
// elements. For a 3×3 convolution kernel stored as [kW, kH·inC·outC],
// Rows is 3 — the pathological small-column case the paper's §3.2
// "Reshaped 1bitSGD" discussion revolves around.
type Shape struct {
	Rows, Cols int
}

// Len returns the number of elements.
func (s Shape) Len() int { return s.Rows * s.Cols }

// String renders the shape as RxC.
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Rows, s.Cols) }

// Codec quantises flat float32 gradient vectors into compact wire bytes
// and back. Implementations are stateless and safe for concurrent use;
// per-tensor state (error-feedback residuals, RNG streams) lives in the
// Encoder values they mint.
type Codec interface {
	// Name returns a stable identifier such as "qsgd4b512" or "1bit".
	Name() string

	// GroupSize returns the quantisation group length for a tensor of the
	// given shape: the column height for column-wise codecs, the bucket
	// size for bucketed codecs. Group boundaries are also the only legal
	// stripe boundaries for range-partitioned aggregation.
	GroupSize(shape Shape) int

	// EncodedBytes returns the exact wire size for n contiguous elements
	// of a tensor with the given shape. n must start on a group boundary.
	EncodedBytes(n int, shape Shape) int

	// NewEncoder returns a stateful encoder for a fixed-length segment of
	// n elements of a tensor with the given shape. seed disambiguates
	// stochastic rounding streams between (worker, tensor, stripe)
	// triples; deterministic codecs ignore it.
	NewEncoder(n int, shape Shape, seed uint64) Encoder

	// Decode unpacks wire into dst (length n). It returns an error when
	// the wire buffer has the wrong length for (n, shape).
	Decode(wire []byte, n int, shape Shape, dst []float32) error
}

// Encoder quantises one fixed-length gradient segment. Encoders carry the
// codec's per-tensor state: 1bitSGD's error-feedback residual and QSGD's
// random stream. Encoders are not safe for concurrent use.
type Encoder interface {
	// Encode quantises src (whose length was fixed at construction) and
	// returns the wire bytes. The returned buffer is owned by the encoder
	// and reused across calls; callers that retain it must copy. This is
	// the headerless in-process fast path; peers decoding it must know
	// the (codec, n, shape) triple out of band.
	Encode(src []float32) []byte

	// EncodeTo quantises src and writes one self-describing frame —
	// versioned header plus the Encode payload — to w, advancing any
	// error-feedback or RNG state exactly as one Encode call would. The
	// frame decodes with DecodeAny or DecodeFramed on a peer that shares
	// no configuration. It reports the bytes written.
	EncodeTo(w io.Writer, src []float32) (int, error)
}

// Reseeder is implemented by encoders whose only mutable state is a
// stochastic-rounding RNG stream (QSGD's). Reseed repositions that
// stream, which lets the aggregation layer key the stream to the
// training step: when every encoder is reseeded with a seed derived
// from (experiment seed, rank, tensor, stripe, step) at each step
// boundary, a rank's stochastic state becomes a pure function of those
// coordinates — reconstructible by a replacement process after a
// crash, and rewindable on a survivor whose aborted half-step consumed
// draws the uninterrupted run never would have. Error-feedback codecs
// (1bitSGD, top-k) carry data-dependent residuals and deliberately do
// not implement it.
type Reseeder interface {
	// Reseed repositions the encoder's random stream as if it had just
	// been built with NewEncoder(..., seed).
	Reseed(seed uint64)
}

// words32 returns how many uint32 words hold nBits bits.
func words32(nBits int) int { return (nBits + 31) / 32 }

// CompressionRatio returns raw float32 bytes divided by encoded bytes for
// a whole tensor of the given shape under codec c. Ratios below 1 mean
// the codec *expands* the tensor — which really happens for classic
// 1bitSGD on small-row convolution kernels (paper §3.2).
func CompressionRatio(c Codec, shape Shape) float64 {
	n := shape.Len()
	if n == 0 {
		return 1
	}
	enc := c.EncodedBytes(n, shape)
	if enc == 0 {
		return 1
	}
	return float64(4*n) / float64(enc)
}

// PaperCodecs returns the precision ladder the paper sweeps in its
// performance figures, in presentation order: 32bit, Q16, Q8, Q4, Q2,
// 1bitSGD* and 1bitSGD.
func PaperCodecs() []Codec {
	return []Codec{
		FP32{},
		NewQSGD(16, 8192, MaxNorm),
		NewQSGD(8, 512, MaxNorm),
		NewQSGD(4, 512, MaxNorm),
		NewQSGD(2, 128, MaxNorm),
		NewOneBitReshaped(64),
		OneBit{},
	}
}

// ExtensionCodecs returns the variants beyond the paper's main ladder:
// the alternative QSGD normalisation and level schemes it describes in
// §3.2.2, and the sparse top-k scheme its related-work section
// discusses.
func ExtensionCodecs() []Codec {
	return []Codec{
		NewQSGD(4, 512, TwoNorm),
		NewQSGDScheme(4, 512, MaxNorm, Uniform),
		NewQSGDScheme(4, 512, MaxNorm, Exponential),
		NewTopK(0.01),
		NewTopK(0.001),
	}
}
