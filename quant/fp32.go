package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// FP32 is the identity codec: gradients travel as raw little-endian
// float32 values. It is the paper's "32bit full precision" baseline and
// also the fallback used for small tensors under the exemption policy.
type FP32 struct{}

// Name implements Codec.
func (FP32) Name() string { return "32bit" }

// GroupSize implements Codec. Full precision has no quantisation groups;
// a moderate chunk keeps stripe boundaries cheap to compute without
// fragmenting messages.
func (FP32) GroupSize(Shape) int { return 256 }

// EncodedBytes implements Codec.
func (FP32) EncodedBytes(n int, _ Shape) int { return 4 * n }

// NewEncoder implements Codec.
func (f FP32) NewEncoder(n int, shape Shape, _ uint64) Encoder {
	return &fp32Encoder{buf: make([]byte, 4*n), n: n, framer: newFramer(f, n, shape)}
}

type fp32Encoder struct {
	buf []byte
	n   int
	framer
}

func (e *fp32Encoder) Encode(src []float32) []byte {
	if len(src) != e.n {
		panic(fmt.Sprintf("quant: fp32 encoder got %d values, want %d", len(src), e.n))
	}
	for i, v := range src {
		binary.LittleEndian.PutUint32(e.buf[4*i:], math.Float32bits(v))
	}
	return e.buf
}

// EncodeTo implements Encoder.
func (e *fp32Encoder) EncodeTo(w io.Writer, src []float32) (int, error) {
	return e.encodeTo(w, e.Encode(src))
}

// Decode implements Codec.
func (FP32) Decode(wire []byte, n int, _ Shape, dst []float32) error {
	if len(wire) != 4*n {
		return fmt.Errorf("quant: fp32 wire length %d, want %d", len(wire), 4*n)
	}
	if len(dst) != n {
		return fmt.Errorf("quant: fp32 dst length %d, want %d", len(dst), n)
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(wire[4*i:]))
	}
	return nil
}
