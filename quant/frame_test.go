package quant

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/rng"
)

// frameTestCodecs covers every codec family plus parameter variants.
func frameTestCodecs() []Codec {
	var all []Codec
	all = append(all, PaperCodecs()...)
	all = append(all, ExtensionCodecs()...)
	return all
}

// frameVec returns a deterministic random vector (the shared randVec
// helper lives in quant_test.go).
func frameVec(n int, seed uint64) []float32 {
	return randVec(rng.New(seed), n)
}

// TestFrameRoundTrip: EncodeTo writes a frame that DecodeAny decodes to
// exactly the bytes the headerless path produces, for every codec, with
// no configuration shared beyond the frame itself.
func TestFrameRoundTrip(t *testing.T) {
	shape := Shape{Rows: 32, Cols: 40}
	n := shape.Len()
	src := frameVec(n, 7)
	for _, c := range frameTestCodecs() {
		// Two encoders with identical state: one frames, one does not.
		framed := c.NewEncoder(n, shape, 99)
		plain := c.NewEncoder(n, shape, 99)

		var buf bytes.Buffer
		wrote, err := framed.EncodeTo(&buf, src)
		if err != nil {
			t.Fatalf("%s: EncodeTo: %v", c.Name(), err)
		}
		if wrote != buf.Len() {
			t.Fatalf("%s: EncodeTo reported %d bytes, wrote %d", c.Name(), wrote, buf.Len())
		}
		wantOverhead := FrameOverhead(c.Name())
		if got := buf.Len() - c.EncodedBytes(n, shape); got != wantOverhead {
			t.Fatalf("%s: frame overhead %d, want %d", c.Name(), got, wantOverhead)
		}

		got, err := DecodeAny(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: DecodeAny: %v", c.Name(), err)
		}
		want := make([]float32, n)
		if err := c.Decode(plain.Encode(src), n, shape, want); err != nil {
			t.Fatalf("%s: reference decode: %v", c.Name(), err)
		}
		if len(got) != n {
			t.Fatalf("%s: DecodeAny returned %d values, want %d", c.Name(), len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: element %d: framed %v vs headerless %v", c.Name(), i, got[i], want[i])
			}
		}

		// DecodeFramed into a caller buffer agrees and surfaces the header.
		dst := make([]float32, n)
		h, err := DecodeFramed(buf.Bytes(), dst)
		if err != nil {
			t.Fatalf("%s: DecodeFramed: %v", c.Name(), err)
		}
		if h.Codec != c.Name() || h.N != n || h.Shape != shape || h.Version != FrameVersion {
			t.Fatalf("%s: header %+v does not describe the frame", c.Name(), h)
		}
	}
}

// TestFrameStateAdvancesLikeEncode: EncodeTo must advance error-feedback
// state exactly as Encode does, so mixing the two paths (local fast
// path, remote framed path) keeps residuals consistent.
func TestFrameStateAdvancesLikeEncode(t *testing.T) {
	shape := Shape{Rows: 16, Cols: 8}
	n := shape.Len()
	c := NewOneBitReshaped(64)
	framed := c.NewEncoder(n, shape, 0)
	plain := c.NewEncoder(n, shape, 0)
	for round := 0; round < 4; round++ {
		src := frameVec(n, uint64(round+1))
		var buf bytes.Buffer
		if _, err := framed.EncodeTo(&buf, src); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeAny(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float32, n)
		if err := c.Decode(plain.Encode(src), n, shape, want); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d element %d: %v vs %v (residual state diverged)", round, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeAnyRejectsBadFrames: every corruption returns an error —
// wrong magic, future version, unknown codec, inconsistent lengths,
// truncation at each boundary — and never panics.
func TestDecodeAnyRejectsBadFrames(t *testing.T) {
	shape := Shape{Rows: 8, Cols: 8}
	n := shape.Len()
	c := NewQSGD(4, 32, MaxNorm)
	var buf bytes.Buffer
	if _, err := c.NewEncoder(n, shape, 1).EncodeTo(&buf, frameVec(n, 3)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := func(name string, mutate func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), valid...)
		b = mutate(b)
		if _, err := DecodeAny(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: decoded a corrupted frame", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("future version", func(b []byte) []byte { b[4] = FrameVersion + 1; return b })
	corrupt("zero version", func(b []byte) []byte { b[4] = 0; return b })
	corrupt("mangled codec name", func(b []byte) []byte { b[6] = 'z'; return b })
	corrupt("payload length lie", func(b []byte) []byte {
		b[frameFixedBytes+len(c.Name())-4]++ // low byte of payloadLen
		return b
	})
	corrupt("element count lie", func(b []byte) []byte {
		b[frameFixedBytes+len(c.Name())-8]++ // low byte of n
		return b
	})
	for cut := 1; cut < len(valid); cut += 7 {
		cut := cut
		corrupt("truncated", func(b []byte) []byte { return b[:len(b)-cut] })
	}
	if _, err := DecodeAny(bytes.NewReader(nil)); err == nil {
		t.Error("decoded an empty stream")
	}
}

// TestDecodeAnyCapsElementCount: a header announcing an absurd tensor
// size is rejected before any allocation is attempted. The header is
// hand-crafted because the encode side (appendHeader) refuses to build
// one — that refusal is asserted too.
func TestDecodeAnyCapsElementCount(t *testing.T) {
	huge := appendHeader(nil, "32bit", Shape{Rows: 1, Cols: 1}, 1, 4)
	// Overwrite the n and payloadLen fields with an over-cap count.
	off := frameFixedBytes + len("32bit") - 8
	binary.LittleEndian.PutUint32(huge[off:], uint32(MaxFrameElements+1))
	binary.LittleEndian.PutUint32(huge[off+4:], uint32(4*(MaxFrameElements+1)))
	if _, err := DecodeAny(bytes.NewReader(huge)); err == nil {
		t.Fatal("accepted a frame above MaxFrameElements")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("appendHeader built a frame above MaxFrameElements")
		}
	}()
	appendHeader(nil, "32bit", Shape{Rows: 1, Cols: MaxFrameElements + 1},
		MaxFrameElements+1, 4*(MaxFrameElements+1))
}

// FuzzDecodeAny: arbitrary byte streams must produce errors, never
// panics or runaway allocations.
func FuzzDecodeAny(f *testing.F) {
	shape := Shape{Rows: 4, Cols: 8}
	n := shape.Len()
	src := make([]float32, n)
	for i := range src {
		src[i] = float32(i) - 15.5
	}
	for _, c := range []Codec{FP32{}, OneBit{}, NewOneBitReshaped(64), NewQSGD(4, 16, MaxNorm), NewTopK(0.25)} {
		var buf bytes.Buffer
		if _, err := c.NewEncoder(n, shape, 5).EncodeTo(&buf, src); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeAny(bytes.NewReader(data))
		if err == nil {
			// A valid frame must at least re-serialise consistently.
			if len(vals) > MaxFrameElements {
				t.Fatalf("decoded %d elements above cap", len(vals))
			}
		}
		// Truncations of valid frames must also never panic.
		if len(data) > 4 {
			_, _ = DecodeAny(io.LimitReader(bytes.NewReader(data), int64(len(data)/2)))
		}
	})
}
