package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/rng"
)

// TestOneBitTwoValuesPerColumn: a decoded column contains at most two
// distinct values (avg+ and avg−).
func TestOneBitTwoValuesPerColumn(t *testing.T) {
	r := rng.New(10)
	shape := Shape{Rows: 50, Cols: 8}
	n := shape.Len()
	src := randVec(r, n)
	c := OneBit{}
	wire := c.NewEncoder(n, shape, 0).Encode(src)
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	for col := 0; col < shape.Cols; col++ {
		vals := map[float32]bool{}
		for i := 0; i < shape.Rows; i++ {
			vals[dst[col*shape.Rows+i]] = true
		}
		if len(vals) > 2 {
			t.Fatalf("column %d has %d distinct values", col, len(vals))
		}
	}
}

// TestOneBitAverages: avg+ is the mean of non-negative inputs and avg−
// the mean of negative inputs on the first round (zero residual).
func TestOneBitAverages(t *testing.T) {
	src := []float32{1, 2, 3, -3, -1, 0}
	shape := Shape{Rows: 6, Cols: 1}
	c := OneBit{}
	wire := c.NewEncoder(6, shape, 0).Encode(src)
	dst := make([]float32, 6)
	if err := c.Decode(wire, 6, shape, dst); err != nil {
		t.Fatal(err)
	}
	wantPos := float32((1 + 2 + 3 + 0) / 4.0)
	wantNeg := float32((-3 - 1) / 2.0)
	for i, v := range src {
		want := wantPos
		if v < 0 {
			want = wantNeg
		}
		if math.Abs(float64(dst[i]-want)) > 1e-6 {
			t.Fatalf("element %d: got %v want %v", i, dst[i], want)
		}
	}
}

// TestOneBitErrorFeedbackInvariant: across rounds, q_t + ε_t == v_t +
// ε_{t−1} element-wise (Algorithm 2, lines 1 and 4). We verify it by
// checking that the cumulative decoded signal tracks the cumulative
// input signal: sum_t q_t = sum_t v_t − ε_T.
func TestOneBitErrorFeedbackInvariant(t *testing.T) {
	r := rng.New(11)
	const n, rounds = 256, 50
	shape := Shape{Rows: 64, Cols: 4}
	c := OneBit{}
	enc := c.NewEncoder(n, shape, 0).(*oneBitEncoder)
	cumIn := make([]float64, n)
	cumOut := make([]float64, n)
	dst := make([]float32, n)
	for round := 0; round < rounds; round++ {
		src := randVec(r, n)
		for i, v := range src {
			cumIn[i] += float64(v)
		}
		wire := enc.Encode(src)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			cumOut[i] += float64(v)
		}
	}
	for i := 0; i < n; i++ {
		diff := cumIn[i] - cumOut[i] - float64(enc.residual[i])
		if math.Abs(diff) > 1e-3 {
			t.Fatalf("element %d: cumulative drift %v beyond residual", i, diff)
		}
	}
}

// TestOneBitResidualBounded: the error-feedback residual must not blow up
// over many rounds of i.i.d. gradients (it is the mechanism that makes
// 1bitSGD converge; an unbounded residual would mean divergence).
func TestOneBitResidualBounded(t *testing.T) {
	r := rng.New(12)
	const n, rounds = 512, 300
	shape := Shape{Rows: 64, Cols: 8}
	enc := OneBit{}.NewEncoder(n, shape, 0).(*oneBitEncoder)
	for round := 0; round < rounds; round++ {
		enc.Encode(randVec(r, n))
	}
	var maxAbs float64
	for _, v := range enc.residual {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	// Inputs are N(0,1); a healthy residual stays within a few sigma.
	if maxAbs > 10 {
		t.Fatalf("residual grew to %v after %d rounds", maxAbs, rounds)
	}
}

// TestOneBitSignPreserved: the decoded sign matches the sign of v+ε.
func TestOneBitSignPreserved(t *testing.T) {
	src := []float32{5, -5, 0.5, -0.5}
	shape := Shape{Rows: 4, Cols: 1}
	c := OneBit{}
	wire := c.NewEncoder(4, shape, 0).Encode(src)
	dst := make([]float32, 4)
	if err := c.Decode(wire, 4, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range src {
		if v > 0 && dst[i] < 0 || v < 0 && dst[i] > 0 {
			t.Fatalf("sign flipped at %d: %v -> %v", i, v, dst[i])
		}
	}
}

// TestOneBitAllPositiveColumn handles the degenerate case with no
// negative entries: avg− must be 0, not NaN.
func TestOneBitAllPositiveColumn(t *testing.T) {
	src := []float32{1, 2, 3, 4}
	shape := Shape{Rows: 4, Cols: 1}
	c := OneBit{}
	wire := c.NewEncoder(4, shape, 0).Encode(src)
	dst := make([]float32, 4)
	if err := c.Decode(wire, 4, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if math.IsNaN(float64(v)) {
			t.Fatalf("NaN at %d", i)
		}
		if math.Abs(float64(v-2.5)) > 1e-6 {
			t.Fatalf("got %v, want 2.5", v)
		}
	}
}

// TestOneBitZeroVector: quantising zeros yields zeros and zero residual.
func TestOneBitZeroVector(t *testing.T) {
	shape := Shape{Rows: 8, Cols: 2}
	n := shape.Len()
	c := OneBit{}
	enc := c.NewEncoder(n, shape, 0).(*oneBitEncoder)
	wire := enc.Encode(make([]float32, n))
	dst := make([]float32, n)
	if err := c.Decode(wire, n, shape, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 || enc.residual[i] != 0 {
			t.Fatalf("nonzero output/residual at %d", i)
		}
	}
}

// TestOneBitReshapedPartialBucket: sizes that do not divide the bucket
// still roundtrip with the documented wire size.
func TestOneBitReshapedPartialBucket(t *testing.T) {
	r := rng.New(13)
	c := NewOneBitReshaped(64)
	for _, n := range []int{1, 63, 64, 65, 129, 1000} {
		shape := Shape{Rows: n, Cols: 1}
		src := randVec(r, n)
		wire := c.NewEncoder(n, shape, 0).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range dst {
			if math.IsNaN(float64(dst[i])) {
				t.Fatalf("n=%d: NaN at %d", n, i)
			}
		}
	}
}

// TestOneBitReducesQuantisationErrorVsRandomSign: property-style sanity
// check that the decoded value correlates positively with the input.
func TestOneBitCorrelation(t *testing.T) {
	r := rng.New(14)
	f := func(seed uint16) bool {
		rr := r.Fork(uint64(seed))
		n := 64
		shape := Shape{Rows: 64, Cols: 1}
		src := randVec(rr, n)
		c := NewOneBitReshaped(64)
		wire := c.NewEncoder(n, shape, 0).Encode(src)
		dst := make([]float32, n)
		if err := c.Decode(wire, n, shape, dst); err != nil {
			return false
		}
		var dot float64
		for i := range src {
			dot += float64(src[i]) * float64(dst[i])
		}
		return dot > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestOneBitWireOverheadExact pins down the wire layout arithmetic.
func TestOneBitWireOverheadExact(t *testing.T) {
	// 100 columns of height 3: 100 * (8 + 4) = 1200 bytes.
	if got := (OneBit{}).EncodedBytes(300, Shape{Rows: 3, Cols: 100}); got != 1200 {
		t.Errorf("3-row layout: got %d, want 1200", got)
	}
	// 2 columns of height 40: 2 * (8 + 4*ceil(40/32)) = 2*16 = 32.
	if got := (OneBit{}).EncodedBytes(80, Shape{Rows: 40, Cols: 2}); got != 32 {
		t.Errorf("40-row layout: got %d, want 32", got)
	}
	// Reshaped d=64 over 130 elems: 2*(8+8) + (8+4*ceil(2/32)) = 32+12.
	if got := NewOneBitReshaped(64).EncodedBytes(130, Shape{}); got != 44 {
		t.Errorf("reshaped partial: got %d, want 44", got)
	}
}

func TestOneBitReshapedPanicsOnBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOneBitReshaped(0)
}
