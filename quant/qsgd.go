package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/rng"
)

// Norm selects the scaling factor QSGD normalises a bucket by (paper
// §3.2.2): the bucket's maximum absolute value preserves more information
// and gave the paper better accuracy, while the Euclidean norm yields
// sparser quantised vectors and matches the original QSGD analysis.
type Norm int

const (
	// MaxNorm scales by max|v_i| (infinity norm) — the paper's default.
	MaxNorm Norm = iota
	// TwoNorm scales by ‖v‖₂ as in the original QSGD paper.
	TwoNorm
)

// String returns the norm's short label.
func (n Norm) String() string {
	if n == TwoNorm {
		return "l2"
	}
	return "max"
}

// Scheme selects how quantisation levels are laid out (the paper
// implements both, §3.2.2).
type Scheme int

const (
	// SignMagnitude spends one bit on the sign and the rest on a level in
	// [0, s] with s = 2^(bits−1) − 1 — the faithful QSGD construction.
	SignMagnitude Scheme = iota
	// Uniform divides [−scale, +scale] into 2^bits − 1 equal intervals
	// whose endpoints are the levels.
	Uniform
	// Exponential places the positive levels at scale·2^{j−s}
	// (logarithmic spacing), following the non-uniform level
	// distributions the paper references for variance reduction (§2.3:
	// "algorithms in which quantization levels are distributed to
	// further minimize variance"; cf. ZipML and logarithmic data
	// representations). The paper implemented such a variant for
	// gradients and "does not observe significant improvement" — this
	// codec lets that experiment be repeated.
	Exponential
)

// String returns the scheme's short label.
func (s Scheme) String() string {
	switch s {
	case Uniform:
		return "uni"
	case Exponential:
		return "exp"
	default:
		return "sm"
	}
}

// QSGD is the stochastic quantisation codec of Alistarh et al. (paper
// §2.3): each bucket is scaled by its norm and every component is rounded
// stochastically to one of s uniformly spaced levels such that the result
// is unbiased (E[Q(v)] = v) with minimal variance. Unlike 1bitSGD, QSGD
// needs no error feedback — unbiasedness alone guarantees convergence.
//
// Wire layout per bucket of c elements:
//
//	float32 scale | ⌈c·bits/32⌉ × uint32 packed codes
//
// Codes are bits wide, packed LSB-first; since bits ∈ {2,4,8,16} divides
// 32, no code straddles a word — mirroring CNTK's packing of quantised
// values into GPU-friendly integer words.
type QSGD struct {
	bits   int
	bucket int
	norm   Norm
	scheme Scheme
}

// NewQSGD returns a sign-magnitude QSGD codec. bits must be 2, 4, 8 or
// 16; bucket must be positive.
func NewQSGD(bits, bucket int, norm Norm) QSGD {
	return NewQSGDScheme(bits, bucket, norm, SignMagnitude)
}

// NewQSGDScheme returns a QSGD codec with an explicit level scheme.
func NewQSGDScheme(bits, bucket int, norm Norm, scheme Scheme) QSGD {
	switch bits {
	case 2, 4, 8, 16:
	default:
		panic(fmt.Sprintf("quant: QSGD bits must be 2/4/8/16, got %d", bits))
	}
	if bucket <= 0 {
		panic("quant: QSGD bucket must be positive")
	}
	return QSGD{bits: bits, bucket: bucket, norm: norm, scheme: scheme}
}

// Bits returns the per-component wire width, including the sign bit.
func (q QSGD) Bits() int { return q.bits }

// Bucket returns the bucket size.
func (q QSGD) Bucket() int { return q.bucket }

// Levels returns the number of positive quantisation levels s.
func (q QSGD) Levels() int {
	if q.scheme == Uniform {
		return (1 << q.bits) - 2 // index range is [0, 2^bits-2]
	}
	return 1<<(q.bits-1) - 1
}

// Name implements Codec.
func (q QSGD) Name() string {
	name := fmt.Sprintf("qsgd%db%d", q.bits, q.bucket)
	if q.norm != MaxNorm {
		name += "-" + q.norm.String()
	}
	if q.scheme != SignMagnitude {
		name += "-" + q.scheme.String()
	}
	return name
}

// GroupSize implements Codec.
func (q QSGD) GroupSize(Shape) int { return q.bucket }

// EncodedBytes implements Codec.
func (q QSGD) EncodedBytes(n int, _ Shape) int {
	if n == 0 {
		return 0
	}
	full := n / q.bucket
	bytes := full * (4 + 4*words32(q.bucket*q.bits))
	if rem := n % q.bucket; rem > 0 {
		bytes += 4 + 4*words32(rem*q.bits)
	}
	return bytes
}

// NewEncoder implements Codec.
func (q QSGD) NewEncoder(n int, shape Shape, seed uint64) Encoder {
	return &qsgdEncoder{
		q:      q,
		n:      n,
		buf:    make([]byte, q.EncodedBytes(n, shape)),
		rng:    rng.New(seed),
		framer: newFramer(q, n, shape),
	}
}

type qsgdEncoder struct {
	q   QSGD
	n   int
	buf []byte
	rng *rng.RNG
	framer
}

// Reseed implements Reseeder: the RNG stream is the encoder's only
// mutable state, so repositioning it makes the encoder bit-identical
// to a freshly built one with the same seed.
func (e *qsgdEncoder) Reseed(seed uint64) { e.rng.SetState(seed) }

// Encode implements Encoder.
func (e *qsgdEncoder) Encode(src []float32) []byte {
	if len(src) != e.n {
		panic(fmt.Sprintf("quant: qsgd encoder got %d values, want %d", len(src), e.n))
	}
	q := e.q
	s := float64(q.Levels())
	off := 0
	for start := 0; start < e.n; start += q.bucket {
		end := start + q.bucket
		if end > e.n {
			end = e.n
		}
		c := end - start
		grp := src[start:end]
		scale := bucketScale(grp, q.norm)
		binary.LittleEndian.PutUint32(e.buf[off:], math.Float32bits(scale))
		off += 4
		nw := words32(c * q.bits)
		var word uint32
		wi := 0
		bitPos := 0
		flush := func() {
			binary.LittleEndian.PutUint32(e.buf[off+4*wi:], word)
			word = 0
			wi++
			bitPos = 0
		}
		for i := 0; i < c; i++ {
			var code uint32
			if scale > 0 {
				code = e.quantiseOne(grp[i], float64(scale), s)
			}
			word |= code << uint(bitPos)
			bitPos += q.bits
			if bitPos == 32 {
				flush()
			}
		}
		if bitPos > 0 {
			flush()
		}
		if wi != nw {
			panic("quant: qsgd internal packing drift")
		}
		off += 4 * nw
	}
	return e.buf
}

// EncodeTo implements Encoder.
func (e *qsgdEncoder) EncodeTo(w io.Writer, src []float32) (int, error) {
	return e.encodeTo(w, e.Encode(src))
}

// quantiseOne maps one value to its packed code using stochastic
// rounding. scale is strictly positive.
func (e *qsgdEncoder) quantiseOne(v float32, scale, s float64) uint32 {
	if e.q.scheme == Uniform {
		// Position in [0, s] across the symmetric interval.
		x := (float64(v) + scale) / (2 * scale) * s
		return uint32(stochasticRound(x, s, e.rng))
	}
	a := float64(v)
	neg := a < 0
	if neg {
		a = -a
	}
	var lvl int
	if e.q.scheme == Exponential {
		lvl = expRound(a/scale, int(s), e.rng)
	} else {
		lvl = stochasticRound(a/scale*s, s, e.rng)
	}
	code := uint32(lvl)
	if neg {
		code |= 1 << uint(e.q.bits-1)
	}
	return code
}

// expLevel returns the exponential-scheme level value 2^{j−s} for
// j ≥ 1, and 0 for j = 0.
func expLevel(j, s int) float64 {
	if j <= 0 {
		return 0
	}
	return math.Ldexp(1, j-s)
}

// expRound rounds a ∈ [0, 1] to a level index in [0, s] on the
// exponential grid {0, 2^{1−s}, …, ½, 1} such that the expectation of
// the decoded value equals a (unbiased).
func expRound(a float64, s int, r *rng.RNG) int {
	if a <= 0 {
		return 0
	}
	if a >= 1 {
		return s
	}
	// Find j with level(j) ≤ a < level(j+1).
	exp := math.Ilogb(a) // a ∈ [2^exp, 2^{exp+1})
	j := exp + s
	if j < 0 {
		j = 0
	}
	lo, hi := expLevel(j, s), expLevel(j+1, s)
	if r.Float64() < (a-lo)/(hi-lo) {
		j++
	}
	return j
}

// stochasticRound rounds x ∈ [0, s] to an integer level in [0, s] such
// that the expectation equals x: level ℓ = ⌊x⌋ is bumped to ℓ+1 with
// probability x − ℓ. Values outside the range (floating-point spill) are
// clamped.
func stochasticRound(x, s float64, r *rng.RNG) int {
	if x <= 0 {
		return 0
	}
	if x >= s {
		return int(s)
	}
	l := math.Floor(x)
	if r.Float64() < x-l {
		l++
	}
	return int(l)
}

// bucketScale computes the bucket's normalisation factor.
func bucketScale(grp []float32, n Norm) float32 {
	if n == TwoNorm {
		var s float64
		for _, v := range grp {
			s += float64(v) * float64(v)
		}
		return float32(math.Sqrt(s))
	}
	var mx float32
	for _, v := range grp {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Decode implements Codec.
func (q QSGD) Decode(wire []byte, n int, shape Shape, dst []float32) error {
	want := q.EncodedBytes(n, shape)
	if len(wire) != want {
		return fmt.Errorf("quant: qsgd wire length %d, want %d", len(wire), want)
	}
	if len(dst) != n {
		return fmt.Errorf("quant: qsgd dst length %d, want %d", len(dst), n)
	}
	s := float32(q.Levels())
	mask := uint32(1)<<uint(q.bits) - 1
	signBit := uint32(1) << uint(q.bits-1)
	lvlMask := signBit - 1
	off := 0
	for start := 0; start < n; start += q.bucket {
		end := start + q.bucket
		if end > n {
			end = n
		}
		c := end - start
		scale := math.Float32frombits(binary.LittleEndian.Uint32(wire[off:]))
		off += 4
		perWord := 32 / q.bits
		for i := 0; i < c; i++ {
			word := binary.LittleEndian.Uint32(wire[off+4*(i/perWord):])
			code := (word >> (uint(i%perWord) * uint(q.bits))) & mask
			var v float32
			switch q.scheme {
			case Uniform:
				v = -scale + 2*scale*float32(code)/s
			case Exponential:
				v = scale * float32(expLevel(int(code&lvlMask), int(s)))
				if code&signBit != 0 {
					v = -v
				}
			default:
				lvl := float32(code & lvlMask)
				v = scale * lvl / s
				if code&signBit != 0 {
					v = -v
				}
			}
			dst[start+i] = v
		}
		off += 4 * words32(c*q.bits)
	}
	return nil
}
